# Tier-1 gate (see ROADMAP.md): gofmt cleanliness + vet + full build +
# race-mode tests of the
# engine and protocol core — once under the default scheduler and once with
# SIM_FORCE_PARALLEL=1, which reruns the sim suite on the window-based
# parallel scheduler with per-processor conflict domains (the most
# aggressive windowing). The full suite (go test ./...) adds the
# application/harness integration tests, which take ~1 min. The analysis
# line covers the stats shards, the observability layer (including the
# request-span reconstruction and its fuzzed degradation tests) and the
# shastatrace CLI goldens.
.PHONY: check test bench bench-compare gobench

check:
	@unformatted=$$(gofmt -l . 2>/dev/null); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go build ./...
	go test -race ./internal/protocol/ ./internal/sim/
	SIM_FORCE_PARALLEL=1 go test -race ./internal/sim/
	go test ./internal/stats/ ./internal/obsv/ ./cmd/shastatrace/

test:
	go build ./... && go test ./...

# Benchmark workflow (see PERFORMANCE.md). `make bench` runs the scale
# experiment's 16-256 processor sweep and writes BENCH_$(LABEL).json;
# `make bench-compare OLD=BENCH_pr7.json NEW=BENCH_local.json` gates the
# new snapshot against the old one (>10% normalized wall-clock growth or
# any virtual-result divergence fails). PROCS/TOPOLOGY narrow the sweep,
# e.g. `make bench PROCS=64`.
LABEL ?= local
TOL   ?= 0.10
BENCH_FLAGS := -label $(LABEL) -snapshot BENCH_$(LABEL).json
ifdef PROCS
BENCH_FLAGS += -procs $(PROCS)
endif
ifdef TOPOLOGY
BENCH_FLAGS += -topology $(TOPOLOGY)
endif

bench:
	go run ./cmd/shastabench $(BENCH_FLAGS) scale

bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json"; exit 2; }
	go run ./cmd/benchgate -tol $(TOL) $(OLD) $(NEW)

# Host-level Go microbenchmarks (allocation counts, merge heap, stats
# shards); unrelated to the snapshot workflow above.
gobench:
	go test -bench . -benchmem ./...
