# Tier-1 gate (see ROADMAP.md): vet + full build + race-mode tests of the
# engine and protocol core — once under the default scheduler and once with
# SIM_FORCE_PARALLEL=1, which reruns the sim suite on the window-based
# parallel scheduler with per-processor conflict domains (the most
# aggressive windowing). The full suite (go test ./...) adds the
# application/harness integration tests, which take ~1 min.
.PHONY: check test bench

check:
	go vet ./...
	go build ./...
	go test -race ./internal/protocol/ ./internal/sim/
	SIM_FORCE_PARALLEL=1 go test -race ./internal/sim/
	go test ./internal/stats/ ./internal/obsv/ ./cmd/shastatrace/

test:
	go build ./... && go test ./...

bench:
	go test -bench . -benchmem ./...
