# Tier-1 gate (see ROADMAP.md): vet + full build + race-mode tests of the
# engine and protocol core. The full suite (go test ./...) adds the
# application/harness integration tests, which take ~1 min.
.PHONY: check test bench

check:
	go vet ./...
	go build ./...
	go test -race ./internal/protocol/ ./internal/sim/
	go test ./internal/stats/ ./internal/obsv/ ./cmd/shastatrace/

test:
	go build ./... && go test ./...

bench:
	go test -bench . -benchmem
