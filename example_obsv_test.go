package shasta_test

import (
	"bytes"
	"fmt"
	"strings"

	"repro"
)

// twoHopFetch runs a minimal remote fetch: processor 4 (on the second node)
// loads a block homed at processor 0's sharing group.
func twoHopFetch(tr shasta.Tracer) *shasta.Cluster {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	blk := cluster.AllocPlaced(64, 64, 0)
	cluster.SetTracer(tr)
	cluster.Run(func(p *shasta.Proc) {
		p.Barrier()
		if p.ID() == 4 {
			_ = p.LoadF64(blk)
		}
		p.Barrier()
	})
	return cluster
}

// ExampleWriterTracer streams a trace filtered to a single block and shows
// the protocol steps of a two-hop remote fetch (the message names are part
// of the trace schema; timestamps are elided here for brevity).
func ExampleWriterTracer() {
	var buf bytes.Buffer
	twoHopFetch(&shasta.WriterTracer{W: &buf, Blocks: map[int]bool{0: true}})
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		f := strings.Fields(line)
		// Formatted lines read "@<time> p<proc> <op> <msg> blk<n> ...".
		fmt.Println(f[1], f[2], f[3])
	}
	// Output:
	// p4 miss -
	// p4 send ReadReq
	// p4 xmit ReadReq
	// p0 handle ReadReq
	// p0 downgrade -
	// p0 send DataReply
	// p0 xmit DataReply
	// p4 handle DataReply
	// p4 install -
	// p4 privup -
}

// ExampleCollectorTracer records events in memory for programmatic
// inspection, here counting them by kind.
func ExampleCollectorTracer() {
	col := &shasta.CollectorTracer{}
	twoHopFetch(col)
	counts := map[string]int{}
	for _, e := range col.Events {
		counts[e.Op]++
	}
	fmt.Println("events:", len(col.Events))
	fmt.Println("misses:", counts["miss"])
	fmt.Println("installs:", counts["install"])
	// Output:
	// events: 148
	// misses: 1
	// installs: 1
}

// ExampleCluster_metrics snapshots a run's counters into the deterministic
// shasta-metrics document (see OBSERVABILITY.md).
func ExampleCluster_metrics() {
	cluster := twoHopFetch(nil)
	m := cluster.Metrics()
	fmt.Printf("%s v%d, variant %s\n", m.Schema, m.Version, m.Config.Variant)
	fmt.Println("misses:", m.Totals.TotalMisses)
	fmt.Println("remote sends:", m.Network.RemoteSends)
	fmt.Println("handler events:", m.Totals.HandlerEvents)
	// Output:
	// shasta-metrics v1, variant smp
	// misses: 1
	// remote sends: 26
	// handler events: 47
}
