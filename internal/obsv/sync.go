package obsv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
)

// Synchronization contention observatory over coherence traces. The
// protocol brackets every application sync operation in the trace: a lock
// acquire emits "lock-acquire id=<id>" when it starts stalling and
// "lock-acquired id=<id> prev=<p> hops=<h>" at the grant, a release emits
// "lock-release id=<id>", and a barrier emits "barrier gen=<g>" on arrival
// and "barrier-depart gen=<g>" on release (trace schema v1 compatible
// extension; see OBSERVABILITY.md §12). BuildSync reconstructs from those
// events each lock's acquire→grant→release lifecycles and each barrier
// generation's arrival/departure profile, yielding wait and hold
// distributions, ownership hand-off chains, a cycle-weighted wait-for
// summary, arrival-skew straggler attribution, and each primitive's share
// of the trace's critical path.
//
// Lifecycles are matched per (processor, lock): a processor's operations on
// one lock are program-ordered, so within that key the streams pair FIFO —
// the same requester-keyed discipline the race detector uses for lock
// messages. Gapped or sampled traces degrade: unmatched halves are counted
// in Dropped by reason and the rest of the analysis proceeds; BuildSync
// never fails and never panics. Traces from before this extension have no
// "lock-acquired"/"barrier-depart" events; their acquires and arrivals are
// all dropped as unmatched, which is reported, not guessed at.

// LockAcq is one reconstructed lock-acquire lifecycle.
type LockAcq struct {
	// Proc is the acquiring processor; Seq the trace sequence number of
	// its lock-acquired event (a stable identity within one trace).
	Proc int
	Seq  uint64
	// AcquireTime, GrantTime and ReleaseTime are the virtual times of the
	// bracketing events; ReleaseTime is -1 when the trace ends with the
	// lock still held.
	AcquireTime, GrantTime, ReleaseTime int64
	// Prev is the previous holder (-1 for the lock's first grant) and
	// Hops the acquire's hop count: 2 granted immediately by the manager,
	// 3 handed off from a release.
	Prev, Hops int
}

// Wait returns the acquire-to-grant stall time.
func (a *LockAcq) Wait() int64 { return a.GrantTime - a.AcquireTime }

// Hold returns the grant-to-release time, or -1 when unreleased.
func (a *LockAcq) Hold() int64 {
	if a.ReleaseTime < 0 {
		return -1
	}
	return a.ReleaseTime - a.GrantTime
}

// LockSummary aggregates one lock's lifecycles.
type LockSummary struct {
	ID int
	// Acquires lists the completed grants in grant order.
	Acquires []LockAcq
	// Contended counts acquires granted off the release path (hops=3).
	Contended int
	// WaitTotal sums every acquire's wait; HoldTotal sums the hold time
	// of the released acquires.
	WaitTotal, HoldTotal int64
}

// BarrierGen is one barrier generation's arrival/departure profile.
type BarrierGen struct {
	Gen int
	// Arrivals and Departs count the processors seen arriving and
	// departing (fewer than the processor count on gapped traces).
	Arrivals, Departs int
	// ArriveFirst/ArriveLast and DepartFirst/DepartLast are the earliest
	// and latest arrival and departure times.
	ArriveFirst, ArriveLast int64
	DepartFirst, DepartLast int64
	// Straggler is the processor with the latest arrival (lowest id on
	// ties): the processor the whole generation waited for.
	Straggler int
	// WaitTotal sums arrive-to-depart waits over the matched pairs.
	WaitTotal int64
}

// ArriveSkew is the spread between the first and last arrival.
func (g *BarrierGen) ArriveSkew() int64 { return g.ArriveLast - g.ArriveFirst }

// DepartSkew is the spread between the first and last departure (the
// release fan-out's serialization, which the hierarchical barrier shrinks).
func (g *BarrierGen) DepartSkew() int64 {
	if g.Departs == 0 {
		return 0
	}
	return g.DepartLast - g.DepartFirst
}

// WaitFor is one cycle-weighted wait-for edge: Waiter stalled behind
// Holder's lock ownership.
type WaitFor struct {
	Waiter, Holder int
	Cycles         int64
	Waits          int
}

// SyncSet is the result of the synchronization analysis of one trace.
type SyncSet struct {
	// Locks lists the observed locks ascending by id; Gens the barrier
	// generations ascending by generation.
	Locks []LockSummary
	Gens  []BarrierGen
	// WaitFor lists contended-wait edges (who waited on whom), weighted
	// by cycles, descending by cycles (ties by waiter then holder).
	WaitFor []WaitFor
	// CritCycles is the trace's critical-path length and CritSync the
	// portion of critical-path program-order edges spent inside a sync
	// stall, attributed per primitive ("lock <id>" or "barrier").
	CritCycles int64
	CritSync   map[string]int64
	// Dropped counts lifecycle halves the trace evidence could not match,
	// by reason; gapped and pre-extension traces degrade here rather than
	// failing.
	Dropped map[string]int
	// Gapped reports seq gaps (a filtered or sampled trace).
	Gapped bool
	// Warnings lists non-fatal anomalies.
	Warnings []string
	// Events is the total trace length.
	Events int
}

// DroppedTotal sums the drop counts.
func (ss *SyncSet) DroppedTotal() int {
	n := 0
	for _, c := range ss.Dropped {
		n += c
	}
	return n
}

// Barrier wait intervals and lock stalls, per processor, for the
// critical-path attribution.
type syncInterval struct {
	from, to int64
	prim     string
}

// pendingAcq is an un-granted lock-acquire.
type pendingAcq struct {
	time int64
}

// openAcq is a granted, not-yet-released lifecycle.
type openAcq struct {
	acq LockAcq
}

type lockProcKey struct {
	proc, id int
}

type barKey struct {
	proc, gen int
}

// BuildSync reconstructs the synchronization lifecycles of a trace. The
// events must be in trace (seq) order, as read from a trace file. It always
// returns a report — incomplete evidence degrades into Dropped counts.
func BuildSync(events []protocol.TraceEvent) *SyncSet {
	ss := &SyncSet{
		Dropped:  map[string]int{},
		CritSync: map[string]int64{},
		Events:   len(events),
	}
	c := BuildCausal(events)
	ss.Gapped = c.Gapped
	if ss.Gapped {
		ss.Warnings = append(ss.Warnings,
			"trace has seq gaps (filtered or sampled); lifecycles limited to surviving events")
	}

	locks := map[int]*LockSummary{}
	lockOf := func(id int) *LockSummary {
		l := locks[id]
		if l == nil {
			l = &LockSummary{ID: id}
			locks[id] = l
		}
		return l
	}
	pending := map[lockProcKey]pendingAcq{}
	open := map[lockProcKey]openAcq{}
	arrivals := map[barKey]int64{}
	gens := map[int]*BarrierGen{}
	genOf := func(gen int) *BarrierGen {
		g := gens[gen]
		if g == nil {
			g = &BarrierGen{Gen: gen, Straggler: -1}
			gens[gen] = g
		}
		return g
	}
	waitFor := map[[2]int]*WaitFor{}
	intervals := map[int][]syncInterval{}

	for i := range events {
		e := &events[i]
		if e.Op != "sync" {
			continue
		}
		var id, prev, hops, gen int
		switch {
		case scan(e.Detail, "lock-acquire id=%d", &id):
			k := lockProcKey{e.Proc, id}
			if _, dup := pending[k]; dup {
				ss.Dropped["acquire-unmatched"]++
			}
			pending[k] = pendingAcq{time: e.Time}

		case scan3(e.Detail, "lock-acquired id=%d prev=%d hops=%d", &id, &prev, &hops):
			k := lockProcKey{e.Proc, id}
			pa, ok := pending[k]
			if !ok {
				ss.Dropped["acquired-without-acquire"]++
				continue
			}
			delete(pending, k)
			if _, dup := open[k]; dup {
				ss.Dropped["release-missing"]++
			}
			open[k] = openAcq{acq: LockAcq{
				Proc: e.Proc, Seq: e.Seq,
				AcquireTime: pa.time, GrantTime: e.Time, ReleaseTime: -1,
				Prev: prev, Hops: hops,
			}}
			intervals[e.Proc] = append(intervals[e.Proc],
				syncInterval{pa.time, e.Time, fmt.Sprintf("lock %d", id)})

		case scan(e.Detail, "lock-release id=%d", &id):
			k := lockProcKey{e.Proc, id}
			oa, ok := open[k]
			if !ok {
				ss.Dropped["release-without-acquire"]++
				continue
			}
			delete(open, k)
			oa.acq.ReleaseTime = e.Time
			record(ss, lockOf(id), oa.acq, waitFor)

		case scan(e.Detail, "barrier gen=%d", &gen):
			k := barKey{e.Proc, gen}
			if _, dup := arrivals[k]; dup {
				ss.Dropped["barrier-rearrival"]++
			}
			arrivals[k] = e.Time
			g := genOf(gen)
			if g.Arrivals == 0 || e.Time < g.ArriveFirst {
				g.ArriveFirst = e.Time
			}
			if g.Arrivals == 0 || e.Time > g.ArriveLast {
				g.ArriveLast = e.Time
				g.Straggler = e.Proc
			}
			g.Arrivals++

		case scan(e.Detail, "barrier-depart gen=%d", &gen):
			k := barKey{e.Proc, gen}
			at, ok := arrivals[k]
			if !ok {
				ss.Dropped["depart-without-arrive"]++
				continue
			}
			delete(arrivals, k)
			g := genOf(gen)
			if g.Departs == 0 || e.Time < g.DepartFirst {
				g.DepartFirst = e.Time
			}
			if g.Departs == 0 || e.Time > g.DepartLast {
				g.DepartLast = e.Time
			}
			g.Departs++
			g.WaitTotal += e.Time - at
			intervals[e.Proc] = append(intervals[e.Proc],
				syncInterval{at, e.Time, "barrier"})
		}
	}

	// Granted-but-unreleased lifecycles still count as acquires (their
	// wait is known); unmatched halves degrade into Dropped.
	ss.Dropped["unfinished-acquire"] += len(pending)
	if ss.Dropped["unfinished-acquire"] == 0 {
		delete(ss.Dropped, "unfinished-acquire")
	}
	heldKeys := make([]lockProcKey, 0, len(open))
	for k := range open {
		heldKeys = append(heldKeys, k)
	}
	sort.Slice(heldKeys, func(i, j int) bool {
		a, b := heldKeys[i], heldKeys[j]
		if a.id != b.id {
			return a.id < b.id
		}
		return a.proc < b.proc
	})
	for _, k := range heldKeys {
		record(ss, lockOf(k.id), open[k].acq, waitFor)
		ss.Dropped["held-at-end"]++
	}
	if n := len(arrivals); n > 0 {
		ss.Dropped["arrive-without-depart"] += n
	}

	for _, l := range locks {
		sort.Slice(l.Acquires, func(i, j int) bool {
			a, b := &l.Acquires[i], &l.Acquires[j]
			if a.GrantTime != b.GrantTime {
				return a.GrantTime < b.GrantTime
			}
			return a.Seq < b.Seq
		})
		ss.Locks = append(ss.Locks, *l)
	}
	sort.Slice(ss.Locks, func(i, j int) bool { return ss.Locks[i].ID < ss.Locks[j].ID })
	for _, g := range gens {
		ss.Gens = append(ss.Gens, *g)
	}
	sort.Slice(ss.Gens, func(i, j int) bool { return ss.Gens[i].Gen < ss.Gens[j].Gen })
	for _, w := range waitFor {
		ss.WaitFor = append(ss.WaitFor, *w)
	}
	sort.Slice(ss.WaitFor, func(i, j int) bool {
		a, b := &ss.WaitFor[i], &ss.WaitFor[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		return a.Holder < b.Holder
	})

	ss.critAttribute(c, intervals)
	return ss
}

// record finalizes one lifecycle into its lock summary and the wait-for
// edges.
func record(ss *SyncSet, l *LockSummary, a LockAcq, waitFor map[[2]int]*WaitFor) {
	l.Acquires = append(l.Acquires, a)
	l.WaitTotal += a.Wait()
	if h := a.Hold(); h >= 0 {
		l.HoldTotal += h
	}
	if a.Hops == 3 {
		l.Contended++
		if a.Prev >= 0 && a.Prev != a.Proc {
			k := [2]int{a.Proc, a.Prev}
			w := waitFor[k]
			if w == nil {
				w = &WaitFor{Waiter: a.Proc, Holder: a.Prev}
				waitFor[k] = w
			}
			w.Cycles += a.Wait()
			w.Waits++
		}
	}
}

// critAttribute walks the trace's critical path and attributes each
// program-order edge's cycles to the sync stall it falls inside, if any:
// the share of the longest causal chain the run spent waiting on each
// primitive. Message edges (the lock-transfer traffic itself) are not
// attributed to a primitive.
func (ss *SyncSet) critAttribute(c *Causal, intervals map[int][]syncInterval) {
	for p := range intervals {
		iv := intervals[p]
		sort.Slice(iv, func(i, j int) bool { return iv[i].from < iv[j].from })
		intervals[p] = iv
	}
	cp := c.CriticalPath()
	ss.CritCycles = cp.Cycles
	for i := 1; i < len(cp.Path); i++ {
		a, b := &c.Events[cp.Path[i-1]], &c.Events[cp.Path[i]]
		if a.Proc != b.Proc {
			continue
		}
		for _, iv := range intervals[b.Proc] {
			lo, hi := a.Time, b.Time
			if iv.from > lo {
				lo = iv.from
			}
			if iv.to < hi {
				hi = iv.to
			}
			if hi > lo {
				ss.CritSync[iv.prim] += hi - lo
			}
		}
	}
}

// SyncPrim names the synchronization primitive a trace event belongs to:
// "lock <id>" or "barrier" for sync operations and lock/barrier protocol
// messages, "" for everything else. Race witnesses use it to name the sync
// edge a race slipped past.
func SyncPrim(op, msg, detail string) string {
	switch op {
	case "sync":
		switch {
		case strings.HasPrefix(detail, "lock-"):
			if id, ok := detailID(detail); ok {
				return fmt.Sprintf("lock %d", id)
			}
		case strings.HasPrefix(detail, "barrier"):
			return "barrier"
		}
	case "send", "handle":
		switch msg {
		case "LockReq", "LockGrant", "LockRel":
			if id, ok := detailID(detail); ok {
				return fmt.Sprintf("lock %d", id)
			}
			// Pre-extension traces carry no id on lock messages.
			return "lock ?"
		case "BarArrive", "BarGo":
			return "barrier"
		}
	}
	return ""
}

// detailID extracts the "id=<n>" field of a sync event or message detail.
func detailID(detail string) (int, bool) {
	i := strings.Index(detail, "id=")
	if i < 0 {
		return 0, false
	}
	var id int
	if n, err := fmt.Sscanf(detail[i:], "id=%d", &id); n == 1 && err == nil {
		return id, true
	}
	return 0, false
}

// scan is a strict single-int Sscanf that also rejects trailing garbage
// mismatches conservatively (Sscanf already requires the literal prefix).
func scan(detail, format string, a *int) bool {
	n, err := fmt.Sscanf(detail, format, a)
	return n == 1 && err == nil
}

func scan3(detail, format string, a, b, c *int) bool {
	n, err := fmt.Sscanf(detail, format, a, b, c)
	return n == 3 && err == nil
}

// waits and holds return the lock's sorted wait and hold distributions.
func (l *LockSummary) waits() []int64 {
	out := make([]int64, 0, len(l.Acquires))
	for i := range l.Acquires {
		out = append(out, l.Acquires[i].Wait())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (l *LockSummary) holds() []int64 {
	out := make([]int64, 0, len(l.Acquires))
	for i := range l.Acquires {
		if h := l.Acquires[i].Hold(); h >= 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// formatDropped renders the shared dropped/warning preamble.
func (ss *SyncSet) formatDropped(b *strings.Builder) {
	reasons := make([]string, 0, len(ss.Dropped))
	for r := range ss.Dropped {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s %d", r, ss.Dropped[r])
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "dropped: %d (%s)\n", ss.DroppedTotal(), strings.Join(parts, ", "))
	} else {
		fmt.Fprintf(b, "dropped: 0\n")
	}
	for _, w := range ss.Warnings {
		fmt.Fprintf(b, "warning: %s\n", w)
	}
}

// pctLine renders a p50/p90/p99/max summary of a sorted distribution.
func pctLine(sorted []int64) string {
	if len(sorted) == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d/%d/%d",
		pctile(sorted, 0.50), pctile(sorted, 0.90), pctile(sorted, 0.99),
		sorted[len(sorted)-1])
}

// FormatSync renders the per-primitive contention report: the lock table,
// the topK most contended locks with their hand-off chains, the wait-for
// summary, and each primitive's critical-path share. Deterministic for
// identical traces.
func FormatSync(ss *SyncSet, topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sync: %d locks, %d barrier generations, %d events\n",
		len(ss.Locks), len(ss.Gens), ss.Events)
	ss.formatDropped(&b)
	if len(ss.Locks) > 0 {
		fmt.Fprintf(&b, "locks:\n  %-9s %8s %8s %12s %12s  %-23s %-23s\n",
			"", "acq", "cont", "wait-total", "hold-total",
			"wait p50/p90/p99/max", "hold p50/p90/p99/max")
		for i := range ss.Locks {
			l := &ss.Locks[i]
			fmt.Fprintf(&b, "  lock %-4d %8d %8d %12d %12d  %-23s %-23s\n",
				l.ID, len(l.Acquires), l.Contended, l.WaitTotal, l.HoldTotal,
				pctLine(l.waits()), pctLine(l.holds()))
		}
	}
	if barWait := barWaitTotal(ss); len(ss.Gens) > 0 {
		fmt.Fprintf(&b, "barrier: %d generations, wait-total %d (see the skew report for per-generation detail)\n",
			len(ss.Gens), barWait)
	}

	// Top contended locks with their ownership hand-off chains.
	contended := make([]*LockSummary, 0, len(ss.Locks))
	for i := range ss.Locks {
		if ss.Locks[i].Contended > 0 {
			contended = append(contended, &ss.Locks[i])
		}
	}
	sort.Slice(contended, func(i, j int) bool {
		a, c := contended[i], contended[j]
		if a.WaitTotal != c.WaitTotal {
			return a.WaitTotal > c.WaitTotal
		}
		return a.ID < c.ID
	})
	if topK > 0 && len(contended) > topK {
		contended = contended[:topK]
	}
	if len(contended) > 0 {
		fmt.Fprintf(&b, "top contended locks:\n")
		for _, l := range contended {
			fmt.Fprintf(&b, "  lock %d: %d/%d contended acquires, wait-total %d\n",
				l.ID, l.Contended, len(l.Acquires), l.WaitTotal)
			b.WriteString("    chain: ")
			b.WriteString(chainString(l, 16))
			b.WriteString("\n")
		}
	}

	if len(ss.WaitFor) > 0 {
		fmt.Fprintf(&b, "wait-for (waiter <- holder, contended cycles):\n")
		top := ss.WaitFor
		if len(top) > 10 {
			top = top[:10]
		}
		for _, w := range top {
			fmt.Fprintf(&b, "  p%-3d <- p%-3d %12d cycles  %6d waits\n",
				w.Waiter, w.Holder, w.Cycles, w.Waits)
		}
	}

	if ss.CritCycles > 0 && len(ss.CritSync) > 0 {
		var prims []string
		var total int64
		for p, cy := range ss.CritSync {
			prims = append(prims, p)
			total += cy
		}
		sort.Strings(prims)
		fmt.Fprintf(&b, "critical-path share: sync stalls %d of %d cycles (%.1f%%)\n",
			total, ss.CritCycles, 100*float64(total)/float64(ss.CritCycles))
		for _, p := range prims {
			fmt.Fprintf(&b, "  %-10s %12d cycles (%.1f%%)\n",
				p, ss.CritSync[p], 100*float64(ss.CritSync[p])/float64(ss.CritCycles))
		}
	}
	return b.String()
}

// chainString renders a lock's ownership hand-off chain: the holders in
// grant order, the last n of them, with contended hand-offs marked "=>".
func chainString(l *LockSummary, n int) string {
	acqs := l.Acquires
	skipped := 0
	if len(acqs) > n {
		skipped = len(acqs) - n
		acqs = acqs[skipped:]
	}
	var b strings.Builder
	if skipped > 0 {
		fmt.Fprintf(&b, "(%d earlier) ", skipped)
		fmt.Fprintf(&b, "p%d", acqs[0].Prev)
	} else if len(acqs) > 0 && acqs[0].Prev >= 0 {
		fmt.Fprintf(&b, "p%d", acqs[0].Prev)
	} else {
		b.WriteString("-")
	}
	for i := range acqs {
		sep := " -> "
		if acqs[i].Hops == 3 {
			sep = " => "
		}
		fmt.Fprintf(&b, "%sp%d", sep, acqs[i].Proc)
	}
	return b.String()
}

func barWaitTotal(ss *SyncSet) int64 {
	var t int64
	for i := range ss.Gens {
		t += ss.Gens[i].WaitTotal
	}
	return t
}

// FormatSkew renders the barrier report: per-generation arrival and
// departure skew with straggler attribution, then distribution summaries
// and the stragglers ranked by how often the barrier waited for them.
// Deterministic for identical traces.
func FormatSkew(ss *SyncSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "barrier: %d generations, %d events\n", len(ss.Gens), ss.Events)
	ss.formatDropped(&b)
	if len(ss.Gens) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  %-6s %8s %12s %12s %12s  %s\n",
		"gen", "arrived", "arrive-skew", "depart-skew", "wait-total", "straggler")
	arrSkews := make([]int64, 0, len(ss.Gens))
	depSkews := make([]int64, 0, len(ss.Gens))
	stragglers := map[int]int{}
	for i := range ss.Gens {
		g := &ss.Gens[i]
		fmt.Fprintf(&b, "  %-6d %8d %12d %12d %12d  p%d\n",
			g.Gen, g.Arrivals, g.ArriveSkew(), g.DepartSkew(), g.WaitTotal, g.Straggler)
		arrSkews = append(arrSkews, g.ArriveSkew())
		depSkews = append(depSkews, g.DepartSkew())
		if g.Straggler >= 0 {
			stragglers[g.Straggler]++
		}
	}
	sort.Slice(arrSkews, func(i, j int) bool { return arrSkews[i] < arrSkews[j] })
	sort.Slice(depSkews, func(i, j int) bool { return depSkews[i] < depSkews[j] })
	fmt.Fprintf(&b, "arrive-skew p50/p90/p99/max: %s\n", pctLine(arrSkews))
	fmt.Fprintf(&b, "depart-skew p50/p90/p99/max: %s\n", pctLine(depSkews))
	procs := make([]int, 0, len(stragglers))
	for p := range stragglers {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if stragglers[procs[i]] != stragglers[procs[j]] {
			return stragglers[procs[i]] > stragglers[procs[j]]
		}
		return procs[i] < procs[j]
	})
	b.WriteString("stragglers:")
	for _, p := range procs {
		fmt.Fprintf(&b, " p%d x%d", p, stragglers[p])
	}
	b.WriteString("\n")
	return b.String()
}
