package obsv

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/protocol"
)

// chromeEvent is one entry of the Chrome trace-event JSON format (the
// "JSON Array Format" consumed by Perfetto and chrome://tracing). Timestamps
// are microseconds; the simulator's 300 MHz virtual clock converts at 300
// cycles per microsecond.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromeCyclesPerMicro = 300.0

// ExportChrome writes a trace as Chrome trace-event JSON: one track (tid)
// per processor within a single process, an instant event per trace event,
// a flow arrow for every send->handle message edge so Perfetto draws the
// protocol's causality across tracks, and an async event pair per
// reconstructed request span — nested stage slices on the requester's
// track — so the tail of a run can be inspected stage by stage.
// Deterministic for identical traces.
func ExportChrome(events []protocol.TraceEvent, w io.Writer) error {
	c := BuildCausal(events)
	procs := map[int]bool{}
	for _, e := range events {
		procs[e.Proc] = true
	}
	out := make([]chromeEvent, 0, 2*len(events))
	for p := range procs {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("p%d", p)},
		})
	}
	// Map iteration order is random; keep the metadata deterministic.
	sortChromeMeta(out)
	handleOf := map[int]int{}
	for h, s := range c.SendOf {
		handleOf[s] = h
	}
	for i, e := range events {
		name := e.Op
		if e.Msg != "" {
			name = e.Op + " " + e.Msg
		}
		ts := float64(e.Time) / chromeCyclesPerMicro
		args := map[string]any{"seq": e.Seq, "blk": e.BaseLine}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "i", Ts: ts, Pid: 0, Tid: e.Proc, S: "t", Args: args,
		})
		// Flow arrows: "s" at the send, "f" (binding to the enclosing
		// instant) at the handle, keyed by the send's event index.
		if _, ok := handleOf[i]; ok {
			out = append(out, chromeEvent{
				Name: "msg " + e.Msg, Ph: "s", Ts: ts, Pid: 0, Tid: e.Proc, ID: i + 1,
			})
		}
		if s, ok := c.SendOf[i]; ok {
			out = append(out, chromeEvent{
				Name: "msg " + e.Msg, Ph: "f", BP: "e", Ts: ts, Pid: 0, Tid: e.Proc, ID: s + 1,
			})
		}
	}
	// Request spans: async ("b"/"e") events on the requester's track, one
	// outer slice per span and one nested slice per stage. Async ids are
	// the span's anchor seq, unique within a trace.
	ss := BuildSpans(events)
	for i := range ss.Spans {
		s := &ss.Spans[i]
		id := int(s.Seq)
		name := fmt.Sprintf("%s blk%d", s.Kind, s.Block)
		args := map[string]any{
			"home": s.Home, "owner": s.Owner, "hops": s.Hops,
			"route": s.route(), "cycles": s.Total(),
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "span", Ph: "b", Ts: float64(s.Start) / chromeCyclesPerMicro,
			Pid: 0, Tid: s.Requester, ID: id, Args: args,
		})
		t := s.Start
		for _, st := range s.Stages {
			out = append(out, chromeEvent{
				Name: st.Name, Cat: "span", Ph: "b", Ts: float64(t) / chromeCyclesPerMicro,
				Pid: 0, Tid: s.Requester, ID: id,
			})
			t += st.Cycles
			out = append(out, chromeEvent{
				Name: st.Name, Cat: "span", Ph: "e", Ts: float64(t) / chromeCyclesPerMicro,
				Pid: 0, Tid: s.Requester, ID: id,
			})
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "span", Ph: "e", Ts: float64(s.End) / chromeCyclesPerMicro,
			Pid: 0, Tid: s.Requester, ID: id,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// sortChromeMeta orders the leading thread_name metadata events by tid.
func sortChromeMeta(evs []chromeEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].Tid > evs[j].Tid; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}
