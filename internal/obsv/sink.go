package obsv

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/protocol"
)

// SinkOptions configure a JSONLSink.
type SinkOptions struct {
	// MaxEventsPerFile rotates to a new segment after this many events;
	// 0 disables rotation. Each segment begins with its own header line,
	// so segments are independently valid trace files.
	MaxEventsPerFile int
	// BufferBytes sizes the write buffer (default 64 KiB).
	BufferBytes int
}

// JSONLSink is a buffered protocol.Tracer that streams events to JSONL
// trace files, rotating segments when configured. Errors are sticky: the
// first write error stops further output and is reported by Close and Err
// (a Tracer cannot return errors mid-run).
type JSONLSink struct {
	opts  SinkOptions
	path  string
	files []string

	f   *os.File
	bw  *bufio.Writer
	w   io.Writer // non-file mode: write here, no rotation
	n   int       // events in the current segment
	err error
}

// NewJSONLSink creates a sink writing to path. With rotation enabled, the
// first segment is path itself and later segments insert a counter before
// the extension (trace.jsonl, trace.1.jsonl, trace.2.jsonl, ...).
func NewJSONLSink(path string, opts SinkOptions) (*JSONLSink, error) {
	s := &JSONLSink{opts: opts, path: path}
	if err := s.open(path); err != nil {
		return nil, err
	}
	return s, nil
}

// NewJSONLWriterSink creates a sink streaming to an io.Writer (no file
// handling, no rotation), mainly for tests and in-memory pipelines. The
// header is written immediately.
func NewJSONLWriterSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: w}
	s.bw = bufio.NewWriterSize(w, s.bufferSize())
	s.err = WriteHeader(s.bw)
	return s
}

func (s *JSONLSink) bufferSize() int {
	if s.opts.BufferBytes > 0 {
		return s.opts.BufferBytes
	}
	return 64 * 1024
}

// open starts a new segment file.
func (s *JSONLSink) open(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.f = f
	s.bw = bufio.NewWriterSize(f, s.bufferSize())
	s.files = append(s.files, path)
	s.n = 0
	return WriteHeader(s.bw)
}

// segmentPath returns the path of segment i (0 is the configured path).
func (s *JSONLSink) segmentPath(i int) string {
	if i == 0 {
		return s.path
	}
	ext := filepath.Ext(s.path)
	base := strings.TrimSuffix(s.path, ext)
	return fmt.Sprintf("%s.%d%s", base, i, ext)
}

// closeSegment flushes and closes the current segment file.
func (s *JSONLSink) closeSegment() error {
	err := s.bw.Flush()
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// Event implements protocol.Tracer.
func (s *JSONLSink) Event(e protocol.TraceEvent) {
	if s.err != nil {
		return
	}
	if s.f != nil && s.opts.MaxEventsPerFile > 0 && s.n >= s.opts.MaxEventsPerFile {
		if s.err = s.closeSegment(); s.err != nil {
			return
		}
		if s.err = s.open(s.segmentPath(len(s.files))); s.err != nil {
			return
		}
	}
	s.err = WriteEvent(s.bw, e)
	s.n++
}

// Err returns the sink's sticky error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Files returns the segment paths written so far, in order (empty in
// writer mode).
func (s *JSONLSink) Files() []string {
	return append([]string(nil), s.files...)
}

// Close flushes buffers and closes the current segment. It returns the
// sink's sticky error if one occurred earlier.
func (s *JSONLSink) Close() error {
	var err error
	if s.f != nil {
		err = s.closeSegment()
	} else if s.bw != nil {
		err = s.bw.Flush()
	}
	if s.err != nil {
		return s.err
	}
	s.err = fmt.Errorf("obsv: sink closed")
	return err
}
