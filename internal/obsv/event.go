package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/protocol"
)

// TraceSchema names the JSONL trace format in file headers.
const TraceSchema = "shasta-trace"

// Header is the first line of every trace file (and of every rotated
// segment). Readers reject files whose schema name differs or whose version
// is newer than the reader understands.
type Header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
}

// NewHeader returns the header for traces written by this build.
func NewHeader() Header {
	return Header{Schema: TraceSchema, Version: protocol.TraceSchemaVersion}
}

// wireEvent is the stable JSON shape of one trace event. Field names are
// part of the versioned schema (see protocol.TraceSchemaVersion and
// OBSERVABILITY.md); changing or removing one requires a version bump.
type wireEvent struct {
	Seq    uint64 `json:"seq"`
	Time   int64  `json:"t"`
	Proc   int    `json:"p"`
	Op     string `json:"op"`
	Msg    string `json:"msg,omitempty"`
	Block  int    `json:"blk"`
	Detail string `json:"detail,omitempty"`
}

// WriteHeader writes a trace file header line.
func WriteHeader(w io.Writer) error {
	b, err := json.Marshal(NewHeader())
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteEvent writes one event as a JSONL line.
func WriteEvent(w io.Writer, e protocol.TraceEvent) error {
	b, err := json.Marshal(wireEvent{
		Seq: e.Seq, Time: e.Time, Proc: e.Proc, Op: e.Op, Msg: e.Msg,
		Block: e.BaseLine, Detail: e.Detail,
	})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses one JSONL trace stream: a header line followed by event
// lines. Blank lines are skipped.
func ReadTrace(r io.Reader) (Header, []protocol.TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var h Header
	var events []protocol.TraceEvent
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if !sawHeader {
			if err := json.Unmarshal(b, &h); err != nil {
				return h, nil, fmt.Errorf("obsv: line %d: bad trace header: %w", line, err)
			}
			if h.Schema != TraceSchema {
				return h, nil, fmt.Errorf("obsv: not a %s file (schema %q)", TraceSchema, h.Schema)
			}
			if h.Version > protocol.TraceSchemaVersion {
				return h, nil, fmt.Errorf("obsv: trace version %d is newer than supported version %d",
					h.Version, protocol.TraceSchemaVersion)
			}
			sawHeader = true
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(b, &we); err != nil {
			return h, nil, fmt.Errorf("obsv: line %d: bad trace event: %w", line, err)
		}
		events = append(events, protocol.TraceEvent{
			Seq: we.Seq, Time: we.Time, Proc: we.Proc, Op: we.Op, Msg: we.Msg,
			BaseLine: we.Block, Detail: we.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if !sawHeader {
		return h, nil, fmt.Errorf("obsv: empty trace (no header line)")
	}
	return h, events, nil
}
