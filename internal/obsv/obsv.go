// Package obsv is the observability layer: it serializes protocol trace
// events to a stable, versioned JSONL format (with buffered sinks, file
// rotation and a cheap sampling/filtering stage), snapshots the system's
// counters — protocol statistics, interconnect queueing, handler occupancy,
// lock hold times — into a deterministic JSON metrics document, and provides
// the summarize/diff/timeline analyses behind the shastatrace CLI.
//
// The package sits strictly downstream of the simulation: it only reads
// virtual clocks and counters, never advances them, so enabling tracing or
// taking a snapshot cannot perturb a run's virtual timing. Because the
// simulator is deterministic, two runs of the same program and configuration
// produce byte-identical traces and snapshots; the trace/metrics contract is
// documented in OBSERVABILITY.md.
package obsv
