package obsv_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// collectRun executes the fixed workload with a collector attached and
// returns the cluster and the recorded events.
func collectRun(t *testing.T) (*shasta.Cluster, []protocol.TraceEvent) {
	t.Helper()
	col := &shasta.CollectorTracer{}
	cluster := traceRun(t, col)
	if len(col.Events) == 0 {
		t.Fatal("no events collected")
	}
	return cluster, col.Events
}

func TestBreakdownSumsToCycles(t *testing.T) {
	cluster := traceRun(t, nil)
	m := cluster.Metrics()
	if len(m.Breakdown) != 8 {
		t.Fatalf("%d breakdown entries, want 8", len(m.Breakdown))
	}
	for _, e := range m.Breakdown {
		sum := e.Task + e.Read + e.Write + e.Sync + e.Message + e.Other + e.Idle
		if sum != e.Total {
			t.Errorf("p%d: categories sum to %d, total is %d", e.Proc, sum, e.Total)
		}
		if e.Total != m.Cycles {
			t.Errorf("p%d: total %d != parallel time %d", e.Proc, e.Total, m.Cycles)
		}
		for name, v := range map[string]int64{
			"task": e.Task, "read": e.Read, "write": e.Write, "sync": e.Sync,
			"message": e.Message, "other": e.Other, "idle": e.Idle, "downgrade": e.Downgrade,
		} {
			if v < 0 {
				t.Errorf("p%d: negative %s component %d", e.Proc, name, v)
			}
		}
	}
	out := obsv.FormatBreakdown(m)
	if !strings.Contains(out, "dgrade*") || !strings.Contains(out, "parallel time") {
		t.Fatalf("FormatBreakdown output:\n%s", out)
	}
	if out != obsv.FormatBreakdown(m) {
		t.Fatal("FormatBreakdown not deterministic")
	}
}

func TestSnapshotHistograms(t *testing.T) {
	cluster := traceRun(t, nil)
	m := cluster.Metrics()
	if len(m.Histograms) == 0 {
		t.Fatal("no miss-latency histograms recorded")
	}
	sawRemote := false
	for key, h := range m.Histograms {
		var sum int64
		for _, n := range h.Buckets {
			sum += n
		}
		if sum != h.Count {
			t.Errorf("%s: buckets sum to %d, count is %d", key, sum, h.Count)
		}
		if h.Count == 0 {
			t.Errorf("%s: empty histogram should have been omitted", key)
		}
		if len(h.Buckets) > 0 && h.Buckets[len(h.Buckets)-1] == 0 {
			t.Errorf("%s: trailing zero bucket not trimmed", key)
		}
		dash := strings.LastIndex(key, "-")
		if dash < 0 {
			t.Fatalf("histogram key %q not of the form <kind>-<dist>", key)
		}
		if dist := key[dash+1:]; dist != "local" && dist != "remote" {
			t.Fatalf("histogram key %q has distance %q", key, dist)
		} else if dist == "remote" {
			sawRemote = true
		}
	}
	// The contended block forces cross-node fetches on an 8p/4c cluster.
	if !sawRemote {
		t.Fatal("no remote-home histogram despite cross-node sharing")
	}
	out := obsv.FormatHistograms(m.Histograms)
	if !strings.Contains(out, "samples") || out != obsv.FormatHistograms(m.Histograms) {
		t.Fatalf("FormatHistograms not deterministic or empty:\n%s", out)
	}
}

func TestTraceHistograms(t *testing.T) {
	hists, unmatched := obsv.TraceHistograms(fakeEvents())
	if unmatched != 1 {
		t.Fatalf("unmatched = %d, want 1 (the trailing miss)", unmatched)
	}
	h, ok := hists["shared"]
	if !ok || h.Count != 1 {
		t.Fatalf("histograms = %+v, want one shared sample", hists)
	}
	var sum int64
	for _, n := range h.Buckets {
		sum += n
	}
	if sum != 1 {
		t.Fatalf("bucket sum %d != count 1", sum)
	}
}

func TestCheckerCleanRun(t *testing.T) {
	_, events := collectRun(t)
	c := obsv.CheckTrace(events)
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("clean run produced violations:\n%s", c.Report())
	}
	if c.Gapped() {
		t.Fatal("unfiltered trace reported as gapped")
	}
	if !strings.HasPrefix(c.Report(), "ok:") {
		t.Fatalf("report: %q", c.Report())
	}
}

func TestCheckerCatchesCorruption(t *testing.T) {
	_, events := collectRun(t)
	corrupt := func(name, rule string, mutate func([]protocol.TraceEvent) []protocol.TraceEvent) {
		t.Run(name, func(t *testing.T) {
			mutated := mutate(append([]protocol.TraceEvent(nil), events...))
			c := obsv.CheckTrace(mutated)
			found := false
			for _, v := range c.Violations() {
				if v.Rule == rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("corruption not caught; report:\n%s", c.Report())
			}
		})
	}
	corrupt("duplicate-seq", "seq-monotone", func(ev []protocol.TraceEvent) []protocol.TraceEvent {
		ev[10].Seq = ev[9].Seq
		return ev
	})
	corrupt("time-goes-backward", "time-monotone", func(ev []protocol.TraceEvent) []protocol.TraceEvent {
		// Find a processor's second event and rewind it below its first.
		seen := map[int]int64{}
		for i := range ev {
			if first, ok := seen[ev[i].Proc]; ok && ev[i].Time >= first {
				ev[i].Time = first - 1
				return ev
			}
			if _, ok := seen[ev[i].Proc]; !ok {
				seen[ev[i].Proc] = ev[i].Time
			}
		}
		t.Fatal("no event to rewind")
		return ev
	})
	corrupt("orphan-handle", "handle-has-send", func(ev []protocol.TraceEvent) []protocol.TraceEvent {
		// Drop every send of the kind a later handle consumes.
		for i := range ev {
			if ev[i].Op == "handle" && ev[i].Msg == "DataReply" {
				out := ev[:0]
				for _, e := range ev {
					if e.Op == "send" && e.Msg == "DataReply" && e.BaseLine == ev[i].BaseLine {
						continue
					}
					out = append(out, e)
				}
				// Renumber so the only anomaly is the missing send, not a gap.
				for j := range out {
					out[j].Seq = uint64(j + 1)
				}
				return out
			}
		}
		t.Fatal("no DataReply handle in trace")
		return ev
	})
	corrupt("install-without-reply", "install-has-reply", func(ev []protocol.TraceEvent) []protocol.TraceEvent {
		for i := range ev {
			if ev[i].Op == "handle" && ev[i].Msg == "DataReply" {
				ev[i].Msg = "ReadReq" // reply handle vanishes; install is orphaned
				return ev
			}
		}
		t.Fatal("no DataReply handle in trace")
		return ev
	})
	corrupt("double-exclusive", "single-exclusive", func(ev []protocol.TraceEvent) []protocol.TraceEvent {
		// Duplicate an exclusive grant (handle+install) with no intervening
		// downgrade: two live exclusive owners in trace order.
		for i := range ev {
			grant, _, _ := strings.Cut(ev[i].Detail, " ")
			if ev[i].Op == "install" && (grant == "exclusive" || grant == "upgrade") {
				h := ev[i]
				h.Op = "handle"
				h.Msg = map[string]string{"exclusive": "DataExclReply", "upgrade": "UpgradeAck"}[grant]
				h.Detail = ""
				dup := append([]protocol.TraceEvent(nil), ev[:i+1]...)
				dup = append(dup, h, ev[i])
				dup = append(dup, ev[i+1:]...)
				for j := range dup {
					dup[j].Seq = uint64(j + 1)
					dup[j].Time = int64(j + 1) // keep per-proc time monotone
				}
				return dup
			}
		}
		t.Fatal("no exclusive install in trace")
		return ev
	})
}

func TestCheckerGapTolerance(t *testing.T) {
	_, events := collectRun(t)
	// Keep only every third event: state-dependent rules must degrade to
	// warnings, not fire as violations.
	var sampled []protocol.TraceEvent
	for i, e := range events {
		if i%3 == 0 {
			sampled = append(sampled, e)
		}
	}
	c := obsv.CheckTrace(sampled)
	if !c.Gapped() {
		t.Fatal("sampled trace not detected as gapped")
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("gapped trace produced hard violations:\n%s", c.Report())
	}
}

func TestCausalGapTolerance(t *testing.T) {
	_, events := collectRun(t)
	// A block filter is the common way to gap a trace (shastatrace filter);
	// causal pairing must warn rather than mis-pair. Keep the busiest block.
	byBlk := map[int]int{}
	for _, e := range events {
		if e.BaseLine >= 0 {
			byBlk[e.BaseLine]++
		}
	}
	busiest, n := -1, 0
	for blk, c := range byBlk {
		if c > n {
			busiest, n = blk, c
		}
	}
	var filtered []protocol.TraceEvent
	for _, e := range events {
		if e.BaseLine == busiest {
			filtered = append(filtered, e)
		}
	}
	if len(filtered) == 0 || len(filtered) == len(events) {
		t.Fatalf("filter kept %d of %d events", len(filtered), len(events))
	}
	c := obsv.BuildCausal(filtered)
	if !c.Gapped {
		t.Fatal("filtered trace not detected as gapped")
	}
	warned := false
	for _, w := range c.Warnings {
		if strings.Contains(w, "seq gaps") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no gap warning; warnings = %v", c.Warnings)
	}
	// Every recovered message edge must still pair a send with a handle of
	// the same kind and block, send strictly before handle.
	for h, s := range c.SendOf {
		snd, hnd := c.Events[s], c.Events[h]
		if snd.Op != "send" || hnd.Op != "handle" || snd.Msg != hnd.Msg ||
			snd.BaseLine != hnd.BaseLine || snd.Seq >= hnd.Seq {
			t.Fatalf("mis-paired edge: send %+v -> handle %+v", snd, hnd)
		}
	}
	// The critical path still computes on a gapped trace.
	cp := c.CriticalPath()
	if len(cp.Path) == 0 {
		t.Fatal("no critical path on filtered trace")
	}
}

func TestCriticalPath(t *testing.T) {
	_, events := collectRun(t)
	c := obsv.BuildCausal(events)
	if c.Gapped {
		t.Fatal("full trace reported gapped")
	}
	cp := c.CriticalPath()
	if cp.Cycles <= 0 || len(cp.Path) < 2 {
		t.Fatalf("critical path too small: %d cycles, %d events", cp.Cycles, len(cp.Path))
	}
	if cp.MsgEdges == 0 {
		t.Fatal("critical path crosses no messages on a communicating workload")
	}
	// The telescoping edge weights mean the chain's elapsed time is the
	// endpoints' time difference.
	first, last := c.Events[cp.Path[0]], c.Events[cp.Path[len(cp.Path)-1]]
	if got := last.Time - first.Time; got != cp.Cycles {
		t.Fatalf("path cycles %d != endpoint delta %d", cp.Cycles, got)
	}
	// Each step follows a real edge.
	for i := 1; i < len(cp.Path); i++ {
		cur, prev := cp.Path[i], cp.Path[i-1]
		if s, ok := c.SendOf[cur]; ok && s == prev {
			continue
		}
		if c.PrevOf[cur] == prev {
			continue
		}
		t.Fatalf("path step %d -> %d follows no edge", prev, cur)
	}
	out := cp.Format(c)
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "in flight") {
		t.Fatalf("Format output:\n%s", out)
	}
	// Deterministic: a second reconstruction renders identically.
	c2 := obsv.BuildCausal(events)
	if out != c2.CriticalPath().Format(c2) {
		t.Fatal("critical path not deterministic")
	}
}

func TestExportChrome(t *testing.T) {
	_, events := collectRun(t)
	var buf bytes.Buffer
	if err := obsv.ExportChrome(events, &buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byPh := map[string]int{}
	for _, e := range out {
		byPh[e["ph"].(string)]++
	}
	if byPh["M"] != 8 {
		t.Fatalf("%d thread_name metadata events, want 8", byPh["M"])
	}
	if byPh["i"] != len(events) {
		t.Fatalf("%d instant events, want %d", byPh["i"], len(events))
	}
	if byPh["s"] == 0 || byPh["s"] != byPh["f"] {
		t.Fatalf("flow events unbalanced: %d starts, %d finishes", byPh["s"], byPh["f"])
	}
	var buf2 bytes.Buffer
	if err := obsv.ExportChrome(events, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export not deterministic")
	}
}

func TestTraceBreakdown(t *testing.T) {
	out := obsv.TraceBreakdown(fakeEvents())
	for _, want := range []string{"approximate", "p4 ", "install", "events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TraceBreakdown missing %q:\n%s", want, out)
		}
	}
}
