package obsv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
)

// This file reconstructs per-request spans from a trace: one span per
// remote miss (or upgrade), broken into the virtual-time stages the request
// passed through — issue, link queueing, wire transit, inbox wait, directory
// service, forward, owner service, reply transit, install. The evidence is
// the ordinary send/handle/miss/install events plus the xmit extension
// (trace schema v1; see OBSERVABILITY.md §10), which carries the
// interconnect's exact queue/wire/serialization split for every
// miss-protocol message. On traces without xmit events (older runs, or
// filtered ones) the transit stages collapse into coarser "-flight" stages;
// the stage partition always telescopes, so a complete span's stages sum
// exactly to its end-to-end latency.

// SpanStage is one stage of a span with its virtual-time duration. Stage
// names form a fixed vocabulary (see stageFamily); a given span carries only
// the stages its evidence supports, in lifecycle order.
type SpanStage struct {
	Name   string
	Cycles int64
}

// Span is one reconstructed request lifecycle.
type Span struct {
	// Requester, Home and Owner are processor ids; Owner is -1 for
	// two-hop requests served by the home.
	Requester, Home, Owner int
	// Block is the block's base line.
	Block int
	// Kind is the request class: "read", "write" or "upgrade".
	Kind string
	// Hops is 2 when the reply came from the home, 3 via a third
	// processor (the paper's Figure 6 classification).
	Hops int
	// Uplink reports that at least one leg crossed a hierarchical uplink.
	Uplink bool
	// Retries counts protocol retry rounds: a reply superseded by a
	// concurrent invalidation makes the requester re-issue the request,
	// and the span covers every round up to the final install.
	Retries int
	// Start and End are the span's first and last virtual-time points:
	// the miss event (or the request send, when the miss was merged into
	// an earlier entry) and the install event.
	Start, End int64
	// Seq is the trace sequence number of the anchoring event, a stable
	// span identity within one trace.
	Seq uint64
	// Stages partitions [Start, End]: durations sum exactly to End-Start.
	Stages []SpanStage
}

// Total returns the span's end-to-end latency in cycles.
func (s *Span) Total() int64 { return s.End - s.Start }

// SpanSet is the result of reconstructing every span of a trace.
type SpanSet struct {
	// Spans lists complete spans in completion (install seq) order.
	Spans []Span
	// Dropped counts incomplete reconstructions by reason; such requests
	// are reported, never silently omitted or mis-attributed.
	Dropped map[string]int
	// Gapped reports seq gaps in the trace (filtered or sampled), the
	// usual cause of dropped spans.
	Gapped bool
	// UnissuedMisses counts miss events with no visible request; they are
	// informational (e.g. batched blocks already in flight), not drops.
	UnissuedMisses int
	// Warnings lists non-fatal reconstruction anomalies.
	Warnings []string
}

// DroppedTotal sums the drop counts.
func (ss *SpanSet) DroppedTotal() int {
	n := 0
	for _, c := range ss.Dropped {
		n += c
	}
	return n
}

// xmitInfo is the parsed payload of an xmit event.
type xmitInfo struct {
	dst, req                  int
	arrive, queue, wire, xfer int64
	via                       string
}

// parseXmit extracts an xmit event's fields; ok is false on malformed detail.
func parseXmit(detail string) (xmitInfo, bool) {
	var x xmitInfo
	n, err := fmt.Sscanf(detail, "to p%d R%d arrive=%d queue=%d wire=%d xfer=%d via=%s",
		&x.dst, &x.req, &x.arrive, &x.queue, &x.wire, &x.xfer, &x.via)
	return x, n == 7 && err == nil
}

// parseHandleReq extracts the requester from a handle event's detail
// ("from R<req> ..."); ok is false when absent.
func parseHandleReq(detail string) (int, bool) {
	var r int
	if n, err := fmt.Sscanf(detail, "from R%d", &r); n == 1 && err == nil {
		return r, true
	}
	return 0, false
}

// legRole classifies a message leg within a span.
type legRole int

const (
	legReq legRole = iota
	legFwd
	legReply
)

// spanLegKind maps a message kind to its leg role; ok is false for kinds
// that are not part of a miss lifecycle.
func spanLegKind(msg string) (legRole, bool) {
	switch msg {
	case "ReadReq", "ReadExclReq", "UpgradeReq":
		return legReq, true
	case "ReadFwd", "ReadExclFwd":
		return legFwd, true
	case "DataReply", "DataExclReply", "UpgradeAck":
		return legReply, true
	}
	return 0, false
}

// reqKindName maps a request message kind to the span's request class.
func reqKindName(msg string) string {
	switch msg {
	case "ReadReq":
		return "read"
	case "ReadExclReq":
		return "write"
	case "UpgradeReq":
		return "upgrade"
	}
	return "unknown"
}

// spanLeg is one in-flight message of a span, created at its send (or xmit)
// event and resolved at the matching handle.
type spanLeg struct {
	role     legRole
	sendTime int64
	sendProc int
	req      int // requester, -1 until known
	hasXmit  bool
	x        xmitInfo
	b        *spanBuilder // owning span, nil until known (xmit-less forwards)
}

// spanBuilder accumulates one request's checkpoints during the trace walk.
type spanBuilder struct {
	req, blk    int
	kind        string
	seq         uint64 // anchor event seq
	start       int64
	hasMiss     bool
	home, owner int

	reqLeg, fwdLeg, replyLeg *spanLeg

	homeHandle, homeRequeue   int64 // 0 = unset (virtual time > 0 for all protocol events)
	ownerHandle, ownerRequeue int64
	replyHandle               int64

	// rehomed marks a round whose request was re-dispatched at a different
	// processor than the home that first handled it: the block's home
	// migrated mid-flight and a tombstone forwarded the request to the
	// live home (online migration; see internal/protocol).
	rehomed bool

	// prefix holds the stages of completed retry rounds; prefixEnd is the
	// virtual time they cover up to (0 when there are none).
	prefix    []SpanStage
	prefixEnd int64
	retries   int
	uplink    bool
}

// rbKey identifies a span: at most one request per (requester, block) is
// active at a time (stores merge into pending read entries; the follow-up
// upgrade is only issued after the read installs).
type rbKey struct{ req, blk int }

// pbKey identifies a processor/block pair for miss anchoring.
type pbKey struct{ proc, blk int }

// BuildSpans reconstructs the request spans of a trace. The events must be
// in trace (seq) order. The walk mirrors BuildCausal's FIFO send/handle
// matching, extended with the xmit timing decomposition and the protocol's
// request lifecycle; it never fails — requests whose evidence is incomplete
// or inconsistent (gapped traces) are counted in Dropped with a reason.
func BuildSpans(events []protocol.TraceEvent) *SpanSet {
	ss := &SpanSet{Dropped: map[string]int{}}
	var lastSeq uint64
	active := map[rbKey]*spanBuilder{}
	pendingMiss := map[pbKey][]protocol.TraceEvent{}
	fifo := map[sendKey][]*spanLeg{}
	lastLeg := map[int]*spanLeg{} // per-proc send awaiting its xmit
	unparsed := 0

	drop := func(reason string) { ss.Dropped[reason]++ }

	// finish closes a span at an install event, partitions its stages and
	// appends it (or drops it with a reason).
	finish := func(b *spanBuilder, install protocol.TraceEvent) {
		sp, reason := b.finalize(install)
		if reason != "" {
			drop(reason)
			return
		}
		ss.Spans = append(ss.Spans, sp)
	}

	for i, e := range events {
		if i > 0 && e.Seq != lastSeq+1 {
			ss.Gapped = true
		}
		lastSeq = e.Seq

		role, isLeg := spanLegKind(e.Msg)

		switch e.Op {
		case "miss":
			k := pbKey{e.Proc, e.BaseLine}
			pendingMiss[k] = append(pendingMiss[k], e)

		case "send":
			if !isLeg {
				continue
			}
			dst, ok := parseSendDst(e.Detail)
			if !ok {
				unparsed++
				continue
			}
			leg := &spanLeg{role: role, sendTime: e.Time, sendProc: e.Proc, req: -1}
			switch role {
			case legReq:
				leg.req = e.Proc // requests are sent by their requester
			case legReply:
				leg.req = dst // replies travel to their requester
			}
			attachLeg(leg, e, active, pendingMiss, ss)
			fifo[sendKey{e.Msg, e.BaseLine, dst}] = append(fifo[sendKey{e.Msg, e.BaseLine, dst}], leg)
			lastLeg[e.Proc] = leg

		case "xmit":
			x, ok := parseXmit(e.Detail)
			if !ok {
				unparsed++
				continue
			}
			if leg := lastLeg[e.Proc]; leg != nil && !leg.hasXmit && leg.sendTime == e.Time {
				// The usual case: the xmit annotates the send just
				// emitted by this processor.
				leg.hasXmit, leg.x = true, x
				if leg.req < 0 {
					leg.req = x.req
					attachLegX(leg, e, active, ss)
				}
				delete(lastLeg, e.Proc)
				continue
			}
			// The send was sampled out: reconstruct the leg from the
			// xmit alone (it carries destination, requester and timing).
			if !isLeg {
				continue
			}
			leg := &spanLeg{role: role, sendTime: e.Time, sendProc: e.Proc,
				req: x.req, hasXmit: true, x: x}
			attachLegX(leg, e, active, ss)
			fifo[sendKey{e.Msg, e.BaseLine, x.dst}] = append(fifo[sendKey{e.Msg, e.BaseLine, x.dst}], leg)

		case "handle":
			if !isLeg {
				continue
			}
			// Match the handled message to its sent leg. Legs of one
			// (kind, block, destination) key are not a true FIFO: hot
			// blocks draw concurrent requests from many requesters whose
			// messages the interconnect may deliver out of order, and a
			// requeued request re-dispatches with no send event at all —
			// so the match is by the requester the handle names, falling
			// back to positional order only when the trace lacks it.
			k := sendKey{e.Msg, e.BaseLine, e.Proc}
			q := fifo[k]
			r, hasR := parseHandleReq(e.Detail)
			if role == legReply {
				// Replies do not carry a requester field; their
				// destination — this processor — is the requester.
				r, hasR = e.Proc, true
			}
			pick := -1
			if hasR {
				for li, leg := range q {
					if leg.req == r {
						pick = li
						break
					}
				}
			}
			if pick < 0 {
				for li, leg := range q {
					if leg.req < 0 {
						pick = li
						break
					}
				}
			}
			if pick < 0 && !hasR && len(q) > 0 {
				pick = 0
			}
			if pick >= 0 {
				leg := q[pick]
				if len(q) == 1 {
					delete(fifo, k)
				} else {
					fifo[k] = append(q[:pick:pick], q[pick+1:]...)
				}
				resolveLeg(leg, role, e, active, ss)
				continue
			}
			// No visible send for this message: a requeued request or
			// forward re-dispatching after its block unblocked, the
			// direct path (home within the requester's group injects the
			// request without a send event), or a sampled-out send.
			if !hasR {
				unparsed++
				continue
			}
			b := active[rbKey{r, e.BaseLine}]
			switch {
			case role == legReq && b != nil && b.homeHandle != 0:
				if b.replyHandle != 0 && b.foldRetry(e.Time) {
					// A handled reply followed by a fresh request handle
					// with no send in between is the direct path's retry:
					// fold the superseded round and start the next one
					// at this dispatch.
					popMiss(pendingMiss, pbKey{r, e.BaseLine})
					b.homeHandle, b.home = e.Time, e.Proc
				} else if b.ownerHandle != 0 {
					b.ownerRequeue = e.Time
				} else {
					b.homeRequeue = e.Time
					if e.Proc != b.home {
						// Re-dispatched at a different processor than the
						// home that first handled it: the block's home
						// migrated and a tombstone forwarded the request.
						b.rehomed, b.home = true, e.Proc
					}
				}
			case role == legReq:
				// Direct path: open a span anchored at the miss (or here).
				b = &spanBuilder{req: r, blk: e.BaseLine, kind: reqKindName(e.Msg),
					seq: e.Seq, start: e.Time, home: e.Proc, owner: -1, homeHandle: e.Time}
				if mq := pendingMiss[pbKey{r, e.BaseLine}]; len(mq) > 0 {
					b.hasMiss, b.start, b.seq = true, mq[0].Time, mq[0].Seq
					popMiss(pendingMiss, pbKey{r, e.BaseLine})
				}
				replaceActive(active, b, ss, drop)
			case role == legFwd && b != nil:
				if b.ownerHandle == 0 {
					b.ownerHandle, b.owner = e.Time, e.Proc
				} else {
					b.ownerRequeue = e.Time
				}
			case role == legReply && b != nil:
				if b.replyLeg == nil && b.replyHandle == 0 {
					b.replyHandle = e.Time
				}
			default:
				if !ss.Gapped {
					ss.Warnings = append(ss.Warnings,
						fmt.Sprintf("handle without visible send or span: seq=%d %s blk%d at p%d",
							e.Seq, e.Msg, e.BaseLine, e.Proc))
				}
			}

		case "install":
			b := active[rbKey{e.Proc, e.BaseLine}]
			if b == nil {
				continue
			}
			delete(active, rbKey{e.Proc, e.BaseLine})
			finish(b, e)
		}
	}

	for _, q := range pendingMiss {
		ss.UnissuedMisses += len(q)
	}
	for range active {
		drop("incomplete")
	}
	if unparsed > 0 {
		ss.Warnings = append(ss.Warnings,
			fmt.Sprintf("%d events with unparseable span details", unparsed))
	}
	if ss.Gapped {
		ss.Warnings = append(ss.Warnings,
			"trace has seq gaps (filtered or sampled); spans limited to surviving evidence")
	}
	return ss
}

// popMiss removes the head of a pending-miss queue, if any.
func popMiss(pendingMiss map[pbKey][]protocol.TraceEvent, k pbKey) {
	switch q := pendingMiss[k]; len(q) {
	case 0:
	case 1:
		delete(pendingMiss, k)
	default:
		pendingMiss[k] = q[1:]
	}
}

// replaceActive registers a new span builder, dropping any span still active
// for the same (requester, block) — evidence of a gapped trace where the
// earlier request's install was sampled out.
func replaceActive(active map[rbKey]*spanBuilder, b *spanBuilder, ss *SpanSet, drop func(string)) {
	k := rbKey{b.req, b.blk}
	if active[k] != nil {
		drop("superseded")
	}
	active[k] = b
}

// attachLeg connects a freshly sent leg to its span: request legs open a new
// span (anchored at the requester's miss event when visible), reply legs
// attach to the active span of their destination requester. Forward legs
// without an xmit stay unattached until their handle names the requester.
func attachLeg(leg *spanLeg, e protocol.TraceEvent, active map[rbKey]*spanBuilder,
	pendingMiss map[pbKey][]protocol.TraceEvent, ss *SpanSet) {
	switch leg.role {
	case legReq:
		if old := active[rbKey{leg.req, e.BaseLine}]; old != nil &&
			(!ss.Gapped || old.replyHandle != 0) && old.foldRetry(e.Time) {
			// A retry round: the active request's reply was superseded by
			// a concurrent invalidation (its install never came), and the
			// requester re-issued — a fresh miss event and this new send.
			// The logical request is one span covering every round, so
			// fold rather than replace; the retry's own miss event is
			// consumed (the span keeps its original anchor). On gapped
			// traces folding requires the old round's handled reply as
			// evidence, else a sampled-out install would silently merge
			// two independent requests.
			popMiss(pendingMiss, pbKey{leg.req, e.BaseLine})
			old.reqLeg = leg
			leg.b = old
			return
		}
		b := &spanBuilder{req: leg.req, blk: e.BaseLine, kind: reqKindName(e.Msg),
			seq: e.Seq, start: e.Time, owner: -1, reqLeg: leg}
		if mq := pendingMiss[pbKey{leg.req, e.BaseLine}]; len(mq) > 0 {
			b.hasMiss, b.start, b.seq = true, mq[0].Time, mq[0].Seq
			popMiss(pendingMiss, pbKey{leg.req, e.BaseLine})
		}
		replaceActive(active, b, ss, func(r string) { ss.Dropped[r]++ })
		leg.b = b
	case legReply:
		if b := active[rbKey{leg.req, e.BaseLine}]; b != nil {
			// Keep the latest reply: a superseded reply (stale directory
			// sequence) never installs and is overtaken by a newer one.
			b.replyLeg = leg
			leg.b = b
		}
	}
}

// attachLegX attaches a leg whose requester only became known from its xmit
// event (forwards, whose send detail does not carry the requester).
func attachLegX(leg *spanLeg, e protocol.TraceEvent, active map[rbKey]*spanBuilder, ss *SpanSet) {
	if leg.b != nil || leg.req < 0 {
		return
	}
	b := active[rbKey{leg.req, e.BaseLine}]
	if b == nil {
		return
	}
	leg.b = b
	if leg.role == legFwd {
		b.fwdLeg = leg
	} else if leg.role == legReply && b.replyLeg == nil {
		b.replyLeg = leg
	}
}

// resolveLeg applies a handled leg's checkpoint to its span. Legs that never
// found a span (gapped traces) resolve it here from the handle's requester.
func resolveLeg(leg *spanLeg, role legRole, e protocol.TraceEvent,
	active map[rbKey]*spanBuilder, ss *SpanSet) {
	if leg.b == nil {
		r := leg.req
		if r < 0 {
			if hr, ok := parseHandleReq(e.Detail); ok {
				r = hr
			}
		}
		if r >= 0 {
			if b := active[rbKey{r, e.BaseLine}]; b != nil {
				leg.req, leg.b = r, b
				if role == legFwd {
					b.fwdLeg = leg
				} else if role == legReply && b.replyLeg == nil {
					b.replyLeg = leg
				}
			}
		}
		if leg.b == nil {
			return
		}
	}
	b := leg.b
	switch role {
	case legReq:
		if b.homeHandle == 0 {
			b.homeHandle = e.Time
			b.home = e.Proc
		} else if b.ownerHandle != 0 {
			b.ownerRequeue = e.Time
		} else {
			b.homeRequeue = e.Time
		}
	case legFwd:
		if b.ownerHandle == 0 {
			b.ownerHandle = e.Time
			b.owner = e.Proc
		} else {
			b.ownerRequeue = e.Time
		}
	case legReply:
		if leg == b.replyLeg {
			b.replyHandle = e.Time
		}
	}
}

// checkpoint is one named point of a span's lifecycle used to cut stages.
type checkpoint struct {
	name string
	t    int64
}

// roundCheckpoints builds the current round's ordered checkpoint chain
// from whatever evidence the round has.
func (b *spanBuilder) roundCheckpoints() []checkpoint {
	var cps []checkpoint
	add := func(name string, t int64) {
		if t != 0 {
			cps = append(cps, checkpoint{name, t})
		}
	}

	// Request leg: issue, link queue, wire, home inbox.
	if b.reqLeg != nil {
		if b.hasMiss {
			add("issue", b.reqLeg.sendTime)
		}
		if b.reqLeg.hasXmit {
			add("req-queue", b.reqLeg.sendTime+b.reqLeg.x.queue)
			add("req-wire", b.reqLeg.x.arrive)
			add("home-inbox", b.homeHandle)
		} else {
			add("req-flight", b.homeHandle)
		}
	} else if b.hasMiss && b.homeHandle != 0 {
		// Direct path: no message, the handler ran in the requester's
		// own group; miss-to-dispatch is all issue work.
		add("issue", b.homeHandle)
	}
	if b.rehomed {
		// The request reached a tombstoned old home and was forwarded to
		// the block's live home; the interval covers the tombstone wait,
		// the forward hop and the re-dispatch. The "-queued" suffix folds
		// it into the requeue family, so the phases table keeps its fixed
		// columns.
		add("migrate-queued", b.homeRequeue)
	} else {
		add("home-queued", b.homeRequeue)
	}

	// Forward leg (three-hop requests only).
	if b.fwdLeg != nil {
		add("home-serve", b.fwdLeg.sendTime)
		if b.fwdLeg.hasXmit {
			add("fwd-queue", b.fwdLeg.sendTime+b.fwdLeg.x.queue)
			add("fwd-wire", b.fwdLeg.x.arrive)
			add("owner-inbox", b.ownerHandle)
		} else {
			add("fwd-flight", b.ownerHandle)
		}
	} else if b.ownerHandle != 0 {
		// The forward's send was sampled out but its handle survived.
		add("fwd-flight", b.ownerHandle)
	}
	add("owner-queued", b.ownerRequeue)

	// Reply leg.
	serve := "home-serve"
	if b.ownerHandle != 0 {
		serve = "owner-serve"
	}
	if b.replyLeg != nil {
		add(serve, b.replyLeg.sendTime)
		if b.replyLeg.hasXmit {
			add("reply-queue", b.replyLeg.sendTime+b.replyLeg.x.queue)
			add("reply-wire", b.replyLeg.x.arrive)
			add("reply-inbox", b.replyHandle)
		} else {
			add("reply-flight", b.replyHandle)
		}
	} else {
		add("reply-flight", b.replyHandle)
	}
	return cps
}

// roundUplink reports whether any of the round's legs crossed an uplink.
func (b *spanBuilder) roundUplink() bool {
	for _, leg := range []*spanLeg{b.reqLeg, b.fwdLeg, b.replyLeg} {
		if leg != nil && leg.hasXmit && leg.x.via == "uplink" {
			return true
		}
	}
	return false
}

// roundStart is the virtual time the current round's stages continue from:
// the end of the folded retry prefix, or the span's start.
func (b *spanBuilder) roundStart() int64 {
	if b.prefixEnd != 0 {
		return b.prefixEnd
	}
	return b.start
}

// cutStages appends the stages the checkpoint chain cuts out of
// [from, cap] to dst: each stage is the interval between consecutive known
// checkpoints, named after the activity that ends at its right edge.
// Unknown checkpoints were skipped by the caller, so coarser traces yield
// coarser (compound) stages whose durations still telescope exactly.
// Checkpoints are clamped to cap — an xmit arrival can legitimately exceed
// a later handle when a newer reply overtook a superseded one — and ok is
// false on a non-monotone chain (possible only on gapped traces that
// mis-paired evidence).
func cutStages(dst []SpanStage, cps []checkpoint, from, cap int64) ([]SpanStage, int64, bool) {
	last := from
	for _, cp := range cps {
		t := cp.t
		if t > cap {
			t = cap
		}
		if t < last {
			return dst, last, false
		}
		if t > last {
			dst = append(dst, SpanStage{cp.name, t - last})
			last = t
		}
	}
	return dst, last, true
}

// foldRetry closes the current round at a retry: the requester's reply was
// superseded by a concurrent invalidation and it re-issued the request at
// sendTime. The round's stages and a "retry" gap (supersession notice and
// re-issue) are folded into the prefix, and the round state resets for the
// new request. Reports false on a non-monotone round (gapped evidence);
// the caller drops the span.
func (b *spanBuilder) foldRetry(sendTime int64) bool {
	prefix, last, ok := cutStages(b.prefix, b.roundCheckpoints(), b.roundStart(), sendTime)
	if !ok {
		return false
	}
	if last < sendTime {
		prefix = append(prefix, SpanStage{"retry", sendTime - last})
	}
	b.prefix, b.prefixEnd = prefix, sendTime
	b.retries++
	b.uplink = b.uplink || b.roundUplink()
	b.reqLeg, b.fwdLeg, b.replyLeg = nil, nil, nil
	b.homeHandle, b.homeRequeue = 0, 0
	b.ownerHandle, b.ownerRequeue = 0, 0
	b.replyHandle = 0
	b.rehomed = false
	return true
}

// finalize partitions [start, install] into stages: the folded retry-round
// prefix (if any) followed by the final round's checkpoint chain. The
// partition telescopes, so a complete span's stages sum exactly to its
// end-to-end latency.
func (b *spanBuilder) finalize(install protocol.TraceEvent) (Span, string) {
	sp := Span{Requester: b.req, Home: b.home, Owner: b.owner, Block: b.blk,
		Kind: b.kind, Start: b.start, End: install.Time, Seq: b.seq,
		Retries: b.retries}

	stages := append([]SpanStage(nil), b.prefix...)
	stages, last, ok := cutStages(stages, b.roundCheckpoints(), b.roundStart(), install.Time)
	if !ok {
		return Span{}, "non-monotone"
	}
	if last < install.Time {
		// Remaining tail with no checkpoint evidence (e.g. no reply
		// visible at all): attribute to install.
		stages = append(stages, SpanStage{"install", install.Time - last})
	}
	sp.Stages = stages

	// Hops: prefer the install event's own classification.
	sp.Hops = 2
	if b.ownerHandle != 0 || b.fwdLeg != nil {
		sp.Hops = 3
	}
	var seq int64
	var hops int
	if n, err := fmt.Sscanf(install.Detail, "shared seq=%d hops=%d", &seq, &hops); n == 2 && err == nil {
		sp.Hops = hops
	} else if n, err := fmt.Sscanf(install.Detail, "exclusive seq=%d hops=%d", &seq, &hops); n == 2 && err == nil {
		sp.Hops = hops
	}
	sp.Uplink = b.uplink || b.roundUplink()
	return sp, ""
}

// stageOrder fixes the display order of the stage vocabulary.
var stageOrder = []string{
	"issue",
	"req-queue", "req-wire", "req-flight", "home-inbox",
	"home-queued", "migrate-queued", "home-serve",
	"fwd-queue", "fwd-wire", "fwd-flight", "owner-inbox",
	"owner-queued", "owner-serve",
	"reply-queue", "reply-wire", "reply-flight", "reply-inbox",
	"retry",
	"install",
}

// stageFamily groups the stage vocabulary for the phases time-series:
// queue (link-lane waits), wire (serialization + propagation, incl. uplink),
// flight (compound transit on xmit-less traces), inbox (arrival-to-dispatch
// waits), requeue (blocked-request re-dispatches), serve (directory and owner
// handler work), retry (superseded-reply re-issue rounds), and the
// issue/install endpoints.
func stageFamily(name string) string {
	switch {
	case strings.HasSuffix(name, "-queue"):
		return "queue"
	case strings.HasSuffix(name, "-wire"):
		return "wire"
	case strings.HasSuffix(name, "-flight"):
		return "flight"
	case strings.HasSuffix(name, "-inbox"):
		return "inbox"
	case strings.HasSuffix(name, "-queued"):
		return "requeue"
	case strings.HasSuffix(name, "-serve"):
		return "serve"
	}
	return name // issue, install
}

// phaseFamilies fixes the column order of the phases table.
var phaseFamilies = []string{"issue", "queue", "wire", "flight", "inbox", "requeue", "serve", "retry", "install"}

// pctiles computes exact nearest-rank percentiles over a sorted slice.
func pctile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// tailLine renders one percentile row for a group of span totals.
func tailLine(b *strings.Builder, label string, totals []int64) {
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	var sum int64
	for _, t := range totals {
		sum += t
	}
	mean := int64(0)
	if len(totals) > 0 {
		mean = sum / int64(len(totals))
	}
	fmt.Fprintf(b, "  %-22s %8d %10d %10d %10d %10d %10d %10d\n",
		label, len(totals), mean, pctile(totals, 0.50), pctile(totals, 0.90),
		pctile(totals, 0.99), pctile(totals, 0.999), pctile(totals, 1.0))
}

// groupTotals collects span totals keyed by a classifier.
func groupTotals(spans []Span, key func(*Span) string) map[string][]int64 {
	g := map[string][]int64{}
	for i := range spans {
		k := key(&spans[i])
		g[k] = append(g[k], spans[i].Total())
	}
	return g
}

// sortedGroupKeys returns a group map's keys ordered by descending total
// cycles (the hottest groups first), ties by key, truncated to topN (<=0
// means all).
func sortedGroupKeys(g map[string][]int64, topN int) []string {
	keys := make([]string, 0, len(g))
	sums := make(map[string]int64, len(g))
	for k, ts := range g {
		keys = append(keys, k)
		for _, t := range ts {
			sums[k] += t
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if sums[keys[i]] != sums[keys[j]] {
			return sums[keys[i]] > sums[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if topN > 0 && len(keys) > topN {
		keys = keys[:topN]
	}
	return keys
}

// route classifies a span's transit: "uplink" when any leg crossed a
// hierarchical uplink, "remote" otherwise.
func (s *Span) route() string {
	if s.Uplink {
		return "uplink"
	}
	return "remote"
}

// FormatSpans renders the span report: reconstruction accounting, overall
// and per-group tail percentiles, the per-stage cycle breakdown, tail
// composition (which stages dominate the slowest percentile) and the topK
// slowest requests as waterfalls. Deterministic for identical traces.
func FormatSpans(ss *SpanSet, topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "spans: %d complete\n", len(ss.Spans))
	reasons := make([]string, 0, len(ss.Dropped))
	for r := range ss.Dropped {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s %d", r, ss.Dropped[r])
	}
	if len(parts) > 0 {
		fmt.Fprintf(&b, "dropped: %d (%s)\n", ss.DroppedTotal(), strings.Join(parts, ", "))
	} else {
		fmt.Fprintf(&b, "dropped: 0\n")
	}
	if ss.UnissuedMisses > 0 {
		fmt.Fprintf(&b, "misses without visible request: %d\n", ss.UnissuedMisses)
	}
	for _, w := range ss.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if len(ss.Spans) == 0 {
		return b.String()
	}

	header := func(title string) {
		fmt.Fprintf(&b, "%s\n  %-22s %8s %10s %10s %10s %10s %10s %10s\n",
			title, "", "count", "mean", "p50", "p90", "p99", "p99.9", "max")
	}
	all := make([]int64, len(ss.Spans))
	for i := range ss.Spans {
		all[i] = ss.Spans[i].Total()
	}
	header("latency (cycles)")
	tailLine(&b, "all", all)
	for _, grp := range []struct {
		title string
		topN  int
		key   func(*Span) string
	}{
		{"by kind", 0, func(s *Span) string { return s.Kind }},
		{"by hops", 0, func(s *Span) string { return fmt.Sprintf("%d-hop", s.Hops) }},
		{"by route", 0, func(s *Span) string { return s.route() }},
		{"by home (top 8)", 8, func(s *Span) string { return fmt.Sprintf("home p%d", s.Home) }},
		{"by block (top 8)", 8, func(s *Span) string { return fmt.Sprintf("blk%d", s.Block) }},
	} {
		g := groupTotals(ss.Spans, grp.key)
		header(grp.title)
		for _, k := range sortedGroupKeys(g, grp.topN) {
			tailLine(&b, k, g[k])
		}
	}

	// Per-stage breakdown over all complete spans.
	type agg struct {
		count int
		total int64
		durs  []int64
	}
	stages := map[string]*agg{}
	var grand int64
	for i := range ss.Spans {
		for _, st := range ss.Spans[i].Stages {
			a := stages[st.Name]
			if a == nil {
				a = &agg{}
				stages[st.Name] = a
			}
			a.count++
			a.total += st.Cycles
			a.durs = append(a.durs, st.Cycles)
			grand += st.Cycles
		}
	}
	fmt.Fprintf(&b, "stages\n  %-22s %8s %12s %7s %10s %10s\n",
		"", "count", "cycles", "share", "mean", "p99")
	for _, name := range stageOrder {
		a := stages[name]
		if a == nil {
			continue
		}
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		share := 0.0
		if grand > 0 {
			share = 100 * float64(a.total) / float64(grand)
		}
		fmt.Fprintf(&b, "  %-22s %8d %12d %6.1f%% %10d %10d\n",
			name, a.count, a.total, share, a.total/int64(a.count), pctile(a.durs, 0.99))
	}

	// Tail composition: where do the slowest 1% spend their cycles?
	sorted := append([]int64(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p99 := pctile(sorted, 0.99)
	tailStages := map[string]int64{}
	var tailGrand int64
	tailN := 0
	for i := range ss.Spans {
		if ss.Spans[i].Total() < p99 {
			continue
		}
		tailN++
		for _, st := range ss.Spans[i].Stages {
			tailStages[st.Name] += st.Cycles
			tailGrand += st.Cycles
		}
	}
	fmt.Fprintf(&b, "tail composition (%d spans >= p99 %d cycles)\n", tailN, p99)
	for _, name := range stageOrder {
		t := tailStages[name]
		if t == 0 {
			continue
		}
		share := 100 * float64(t) / float64(tailGrand)
		overall := 0.0
		if a := stages[name]; a != nil && grand > 0 {
			overall = 100 * float64(a.total) / float64(grand)
		}
		fmt.Fprintf(&b, "  %-22s %12d %6.1f%%  (overall %5.1f%%)\n", name, t, share, overall)
	}

	// Top-K slowest requests, full waterfalls.
	if topK > 0 {
		idx := make([]int, len(ss.Spans))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, c int) bool {
			sa, sc := &ss.Spans[idx[a]], &ss.Spans[idx[c]]
			if sa.Total() != sc.Total() {
				return sa.Total() > sc.Total()
			}
			return sa.Seq < sc.Seq
		})
		if len(idx) > topK {
			idx = idx[:topK]
		}
		fmt.Fprintf(&b, "slowest %d requests\n", len(idx))
		for _, i := range idx {
			s := &ss.Spans[i]
			owner := "-"
			if s.Owner >= 0 {
				owner = fmt.Sprintf("p%d", s.Owner)
			}
			fmt.Fprintf(&b, "  seq=%d %s blk%d p%d -> home p%d owner %s %d-hop %s: %d cycles @%d..%d\n",
				s.Seq, s.Kind, s.Block, s.Requester, s.Home, owner, s.Hops, s.route(),
				s.Total(), s.Start, s.End)
			for _, st := range s.Stages {
				bar := int(st.Cycles * 40 / s.Total())
				fmt.Fprintf(&b, "    %-22s %10d  %s\n", st.Name, st.Cycles, strings.Repeat("#", bar))
			}
		}
	}
	return b.String()
}

// FormatPhases renders a windowed time-series of stage-family cycle totals:
// complete spans are bucketed by completion time into `windows` equal
// virtual-time windows, exposing phase behaviour (e.g. a contended stage
// appearing mid-run) that the end-of-run aggregate hides. Deterministic for
// identical traces.
func FormatPhases(ss *SpanSet, windows int) string {
	var b strings.Builder
	if len(ss.Spans) == 0 {
		b.WriteString("no complete spans\n")
		for _, w := range ss.Warnings {
			fmt.Fprintf(&b, "warning: %s\n", w)
		}
		return b.String()
	}
	if windows < 1 {
		windows = 1
	}
	lo, hi := ss.Spans[0].End, ss.Spans[0].End
	for i := range ss.Spans {
		if ss.Spans[i].End < lo {
			lo = ss.Spans[i].End
		}
		if ss.Spans[i].End > hi {
			hi = ss.Spans[i].End
		}
	}
	width := (hi - lo + int64(windows)) / int64(windows) // ceil, so hi lands in the last window
	if width < 1 {
		width = 1
	}
	type win struct {
		count  int
		fams   map[string]int64
		totals []int64
	}
	wins := make([]win, windows)
	for i := range ss.Spans {
		s := &ss.Spans[i]
		w := int((s.End - lo) / width)
		if w >= windows {
			w = windows - 1
		}
		if wins[w].fams == nil {
			wins[w].fams = map[string]int64{}
		}
		wins[w].count++
		wins[w].totals = append(wins[w].totals, s.Total())
		for _, st := range s.Stages {
			wins[w].fams[stageFamily(st.Name)] += st.Cycles
		}
	}
	fmt.Fprintf(&b, "phases: %d windows of %d cycles, %d spans (bucketed by completion time)\n",
		windows, width, len(ss.Spans))
	fmt.Fprintf(&b, "%-24s %6s %10s", "window", "spans", "p99")
	for _, f := range phaseFamilies {
		fmt.Fprintf(&b, " %10s", f)
	}
	b.WriteString("\n")
	for w := range wins {
		t0 := lo + int64(w)*width
		t1 := t0 + width
		fmt.Fprintf(&b, "%-24s %6d", fmt.Sprintf("[%d,%d)", t0, t1), wins[w].count)
		if wins[w].count == 0 {
			fmt.Fprintf(&b, " %10s", "-")
			for range phaseFamilies {
				fmt.Fprintf(&b, " %10s", "-")
			}
			b.WriteString("\n")
			continue
		}
		sort.Slice(wins[w].totals, func(i, j int) bool { return wins[w].totals[i] < wins[w].totals[j] })
		fmt.Fprintf(&b, " %10d", pctile(wins[w].totals, 0.99))
		for _, f := range phaseFamilies {
			fmt.Fprintf(&b, " %10d", wins[w].fams[f])
		}
		b.WriteString("\n")
	}
	for _, w := range ss.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}
