package obsv

import (
	"fmt"
	"strings"

	"repro/internal/protocol"
)

// The replay invariant checker validates a trace against protocol
// invariants using nothing but the artifact itself, so a protocol change
// that breaks coherence is caught from a committed trace file alone. The
// enforced rules:
//
//	seq-monotone      Seq is strictly increasing in trace order.
//	time-monotone     each processor's t never decreases.
//	handle-has-send   a handle of a forwarded/reply/invalidation/downgrade
//	                  message requires a prior send of the same kind for
//	                  the same block (request and sync kinds are exempt:
//	                  directory shortcuts and internal requeues deliver
//	                  them without a traced send).
//	install-has-reply an install requires an unconsumed prior handle of
//	                  its granting reply (DataReply for shared,
//	                  DataExclReply for exclusive, UpgradeAck for upgrade).
//	single-exclusive  a new exclusive or upgrade install for a block
//	                  requires an intervening downgrade or invalidate on
//	                  that block since the previous exclusive install.
//	downgrade-target  a downgrade message must target a processor not
//	                  known to have lost its private mapping of the block.
//
// The rules are deliberately one-sided (sound): they tolerate what the
// trace cannot prove wrong — allocation-time ownership precedes tracing, a
// queued message can be re-dispatched, a filtered trace hides events — so a
// violation always indicates a real anomaly in a full trace. On a gapped
// (filtered or sampled) trace the state-dependent rules degrade to
// warnings; only seq/time monotonicity remain hard violations.

// Violation is one invariant breach found during replay.
type Violation struct {
	Rule   string
	Seq    uint64
	Time   int64
	Proc   int
	Block  int
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: seq=%d t=%d p%d blk%d: %s",
		v.Rule, v.Seq, v.Time, v.Proc, v.Block, v.Detail)
}

// privTrack is the checker's knowledge of one processor's private mapping
// of one block.
type privTrack int

const (
	privUnknown privTrack = iota // never observed; tolerated as a holder
	privValid                    // raised by privup/install
	privLost                     // lowered by a downgrade/invalidate
)

// Checker replays a trace against the protocol invariants. It implements
// protocol.Tracer, so it can be attached directly to a live run (zero
// virtual-clock cost: it only reads events) or fed a parsed trace via
// CheckTrace.
type Checker struct {
	violations []Violation
	warnings   []string

	started bool
	lastSeq uint64
	gapped  bool

	procTime map[int]int64
	// sends counts send events per block and message kind; never
	// decremented, because queued messages may legitimately be dispatched
	// more than once.
	sends map[int]map[string]int64
	// replies counts unconsumed granting-reply handles per (proc, blk,
	// reply kind); installs consume them.
	replies map[replyKey]int
	// hasExcl and separated implement the single-exclusive rule.
	hasExcl   map[int]bool
	separated map[int]bool
	priv      map[[2]int]privTrack
}

type replyKey struct {
	proc, blk int
	msg       string
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{
		procTime:  map[int]int64{},
		sends:     map[int]map[string]int64{},
		replies:   map[replyKey]int{},
		hasExcl:   map[int]bool{},
		separated: map[int]bool{},
		priv:      map[[2]int]privTrack{},
	}
}

// CheckTrace replays parsed events through a fresh checker.
func CheckTrace(events []protocol.TraceEvent) *Checker {
	c := NewChecker()
	for _, e := range events {
		c.Event(e)
	}
	return c
}

// sendRequired lists the message kinds whose handle must be preceded by a
// traced send: forwards, replies, invalidations and downgrades always travel
// as real messages. Requests are exempt (the ShareDirectory shortcut and
// queued-request replays deliver them without a send event), as is sync
// traffic (FastSync group barriers short-circuit arrivals).
var sendRequired = map[string]bool{
	"ReadFwd": true, "ReadExclFwd": true,
	"DataReply": true, "DataExclReply": true, "UpgradeAck": true,
	"Inval": true, "InvalAck": true, "SharingUpdate": true,
	"DowngradeToShared": true, "DowngradeToInvalid": true,
}

// grantReply maps an install grant kind (the first word of the install
// event's detail) to the reply message that must have been handled.
var grantReply = map[string]string{
	"shared":    "DataReply",
	"exclusive": "DataExclReply",
	"upgrade":   "UpgradeAck",
}

// fail records a rule breach: a violation on a complete trace, a warning on
// a gapped one (missing events, not protocol bugs, are then the likely
// cause). Monotonicity rules bypass this and always record violations.
func (c *Checker) fail(rule string, e protocol.TraceEvent, format string, args ...any) {
	v := Violation{Rule: rule, Seq: e.Seq, Time: e.Time, Proc: e.Proc,
		Block: e.BaseLine, Detail: fmt.Sprintf(format, args...)}
	if c.gapped {
		c.warnings = append(c.warnings, v.String())
		return
	}
	c.violations = append(c.violations, v)
}

// Event implements protocol.Tracer.
func (c *Checker) Event(e protocol.TraceEvent) {
	if c.started {
		if e.Seq <= c.lastSeq {
			c.violations = append(c.violations, Violation{
				Rule: "seq-monotone", Seq: e.Seq, Time: e.Time, Proc: e.Proc,
				Block:  e.BaseLine,
				Detail: fmt.Sprintf("seq %d not above previous %d", e.Seq, c.lastSeq),
			})
		} else if e.Seq != c.lastSeq+1 && !c.gapped {
			c.gapped = true
			c.warnings = append(c.warnings, fmt.Sprintf(
				"seq gap at %d..%d: filtered/sampled trace; state rules downgraded to warnings",
				c.lastSeq, e.Seq))
		}
	}
	c.started = true
	c.lastSeq = e.Seq
	if t, ok := c.procTime[e.Proc]; ok && e.Time < t {
		c.violations = append(c.violations, Violation{
			Rule: "time-monotone", Seq: e.Seq, Time: e.Time, Proc: e.Proc,
			Block:  e.BaseLine,
			Detail: fmt.Sprintf("t %d below processor's previous %d", e.Time, t),
		})
	}
	c.procTime[e.Proc] = e.Time

	pb := [2]int{e.Proc, e.BaseLine}
	switch e.Op {
	case "send":
		m := c.sends[e.BaseLine]
		if m == nil {
			m = map[string]int64{}
			c.sends[e.BaseLine] = m
		}
		m[e.Msg]++
		if e.Msg == "DowngradeToShared" || e.Msg == "DowngradeToInvalid" {
			if dst, ok := parseSendDst(e.Detail); ok {
				if c.priv[[2]int{dst, e.BaseLine}] == privLost {
					c.fail("downgrade-target", e,
						"%s targets p%d, which no longer holds blk%d", e.Msg, dst, e.BaseLine)
				}
			}
		}
	case "handle":
		if sendRequired[e.Msg] {
			if c.sends[e.BaseLine][e.Msg] == 0 {
				c.fail("handle-has-send", e, "no prior send of %s for blk%d", e.Msg, e.BaseLine)
			}
		}
		switch e.Msg {
		case "DataReply", "DataExclReply", "UpgradeAck":
			c.replies[replyKey{e.Proc, e.BaseLine, e.Msg}]++
		case "DowngradeToInvalid":
			c.priv[pb] = privLost
		case "DowngradeToShared":
			// Shared still holds the block; the mapping stays valid.
		}
	case "install":
		grant, _, _ := strings.Cut(e.Detail, " ")
		if reply, ok := grantReply[grant]; ok {
			k := replyKey{e.Proc, e.BaseLine, reply}
			if c.replies[k] == 0 {
				c.fail("install-has-reply", e,
					"%s install without an unconsumed %s handle", grant, reply)
			} else {
				c.replies[k]--
			}
			if grant == "exclusive" || grant == "upgrade" {
				if c.hasExcl[e.BaseLine] && !c.separated[e.BaseLine] {
					c.fail("single-exclusive", e,
						"%s install with no downgrade/invalidate since the previous exclusive grant", grant)
				}
				c.hasExcl[e.BaseLine] = true
				c.separated[e.BaseLine] = false
			}
		}
		c.priv[pb] = privValid
	case "privup":
		c.priv[pb] = privValid
	case "invalidate":
		c.separated[e.BaseLine] = true
		c.priv[pb] = privLost
	case "downgrade":
		c.separated[e.BaseLine] = true
		// The initiator lowers its own private mapping immediately; only
		// an invalidating downgrade loses it.
		if strings.HasPrefix(e.Detail, "to I") {
			c.priv[pb] = privLost
		}
	}
}

// Violations returns the invariant breaches found so far.
func (c *Checker) Violations() []Violation { return c.violations }

// Warnings returns non-fatal anomalies (gap notices, downgraded rules).
func (c *Checker) Warnings() []string { return c.warnings }

// Gapped reports whether the trace had seq gaps.
func (c *Checker) Gapped() bool { return c.gapped }

// Report renders the checker's findings deterministically. The first line
// is "ok" or "FAIL: n violations".
func (c *Checker) Report() string {
	var b strings.Builder
	if len(c.violations) == 0 {
		fmt.Fprintf(&b, "ok: %d events replayed, no invariant violations\n", c.eventsSeen())
	} else {
		fmt.Fprintf(&b, "FAIL: %d invariant violations\n", len(c.violations))
		for _, v := range c.violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	for _, w := range c.warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

// eventsSeen reports how many events the checker replayed, derived from the
// last sequence number on an unfiltered trace.
func (c *Checker) eventsSeen() uint64 {
	if !c.started {
		return 0
	}
	return c.lastSeq
}
