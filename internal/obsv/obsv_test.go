package obsv_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// fakeEvents builds a small synthetic trace.
func fakeEvents() []protocol.TraceEvent {
	return []protocol.TraceEvent{
		{Seq: 1, Time: 10, Proc: 4, Op: "miss", BaseLine: 0, Detail: "state=Invalid"},
		{Seq: 2, Time: 12, Proc: 4, Op: "send", Msg: "ReadReq", BaseLine: 0, Detail: "to p0"},
		{Seq: 3, Time: 900, Proc: 0, Op: "handle", Msg: "ReadReq", BaseLine: 0},
		{Seq: 4, Time: 905, Proc: 0, Op: "downgrade", BaseLine: 0, Detail: "to shared"},
		{Seq: 5, Time: 950, Proc: 0, Op: "send", Msg: "DataReply", BaseLine: 0},
		{Seq: 6, Time: 2100, Proc: 4, Op: "handle", Msg: "DataReply", BaseLine: 0},
		{Seq: 7, Time: 2110, Proc: 4, Op: "install", BaseLine: 0, Detail: "shared"},
		{Seq: 8, Time: 2200, Proc: 4, Op: "sync", BaseLine: -1, Detail: "barrier gen=1"},
		{Seq: 9, Time: 2300, Proc: 5, Op: "miss", BaseLine: 8},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := fakeEvents()
	var buf bytes.Buffer
	sink := obsv.NewJSONLWriterSink(&buf)
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	h, got, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != obsv.TraceSchema || h.Version != protocol.TraceSchemaVersion {
		t.Fatalf("bad header %+v", h)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", events, got)
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"wrong schema":  `{"schema":"other","version":1}` + "\n",
		"newer version": `{"schema":"shasta-trace","version":99}` + "\n",
		"bad event":     `{"schema":"shasta-trace","version":1}` + "\nnot json\n",
	}
	for name, in := range cases {
		if _, _, err := obsv.ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONLSinkRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	sink, err := obsv.NewJSONLSink(path, obsv.SinkOptions{MaxEventsPerFile: 4})
	if err != nil {
		t.Fatal(err)
	}
	events := fakeEvents()
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	files := sink.Files()
	want := []string{path, filepath.Join(dir, "trace.1.jsonl"), filepath.Join(dir, "trace.2.jsonl")}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("segments %v, want %v", files, want)
	}
	// Each segment is independently valid; concatenated they give back the
	// full event sequence.
	var got []protocol.TraceEvent
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		_, seg, err := obsv.ReadTrace(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got = append(got, seg...)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("concatenated segments mismatch: %d events, want %d", len(got), len(events))
	}
}

func TestSinkErrorSticky(t *testing.T) {
	sink, err := obsv.NewJSONLSink(filepath.Join(t.TempDir(), "t.jsonl"), obsv.SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Event(protocol.TraceEvent{}) // after Close: must not panic
	if sink.Err() == nil {
		t.Fatal("no sticky error after use-after-close")
	}
}

func TestFilter(t *testing.T) {
	events := fakeEvents()
	run := func(f *obsv.Filter) []protocol.TraceEvent {
		var out []protocol.TraceEvent
		f.Next = protocol.TracerFunc(func(e protocol.TraceEvent) { out = append(out, e) })
		for _, e := range events {
			f.Event(e)
		}
		return out
	}
	if got := run(&obsv.Filter{Procs: map[int]bool{0: true}}); len(got) != 3 {
		t.Fatalf("proc filter kept %d, want 3", len(got))
	}
	if got := run(&obsv.Filter{Ops: map[string]bool{"miss": true}}); len(got) != 2 {
		t.Fatalf("op filter kept %d, want 2", len(got))
	}
	// A block filter narrows the data traffic but must never silence the
	// synchronization backbone: BaseLine -1 events (sync, batch markers)
	// always pass Blocks ranges.
	got := run(&obsv.Filter{Blocks: []obsv.BlockRange{{Lo: 1, Hi: 8}}})
	if len(got) != 2 || got[0].BaseLine != -1 || got[0].Op != "sync" || got[1].BaseLine != 8 {
		t.Fatalf("block filter kept %v", got)
	}
	// Even a range that cannot contain -1 keeps them.
	if got := run(&obsv.Filter{Blocks: []obsv.BlockRange{{Lo: 100, Hi: 200}}}); len(got) != 1 || got[0].Op != "sync" {
		t.Fatalf("block filter dropped sync events: %v", got)
	}
	// Conjunction of predicates.
	got = run(&obsv.Filter{Procs: map[int]bool{4: true}, Ops: map[string]bool{"send": true}})
	if len(got) != 1 || got[0].Msg != "ReadReq" {
		t.Fatalf("conjunction kept %v", got)
	}
	// Sampling keeps events 1, 1+3, 1+6, ... of the matching stream.
	got = run(&obsv.Filter{Sample: 3})
	if len(got) != 3 || got[0].Seq != 1 || got[1].Seq != 4 || got[2].Seq != 7 {
		t.Fatalf("sampling kept %v", got)
	}
}

func TestSummarizeAndDiff(t *testing.T) {
	events := fakeEvents()
	s := obsv.Summarize(events)
	if s.Events != 9 || s.FirstSeq != 1 || s.LastSeq != 9 || s.Blocks != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByOp["miss"] != 2 || s.ByMsg["ReadReq"] != 2 || s.ByProc[4] != 5 {
		t.Fatalf("summary counts %+v", s)
	}
	if f1, f2 := s.Format(), obsv.Summarize(events).Format(); f1 != f2 {
		t.Fatal("Format not deterministic")
	}
	if d, equal := obsv.Diff(s, obsv.Summarize(events)); !equal || d != "" {
		t.Fatalf("self-diff not empty: %q", d)
	}
	d, equal := obsv.Diff(s, obsv.Summarize(events[:5]))
	if equal {
		t.Fatal("diff missed truncation")
	}
	if !strings.Contains(d, "events: 9 vs 5") {
		t.Fatalf("diff output %q", d)
	}
}

func TestTimeline(t *testing.T) {
	tl := obsv.Timeline(fakeEvents(), 0)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("timeline has %d lines, want 7:\n%s", len(lines), tl)
	}
	for _, want := range []string{"miss", "ReadReq", "downgrade", "DataReply", "install"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	if strings.Contains(tl, "barrier") {
		t.Fatal("timeline leaked non-block event")
	}
}

// traceRun executes a fixed small workload with a tracer attached and
// returns the cluster.
func traceRun(t *testing.T, tr shasta.Tracer) *shasta.Cluster {
	t.Helper()
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(1024, 64)
	lock := cluster.AllocLock()
	cluster.SetTracer(tr)
	cluster.Run(func(p *shasta.Proc) {
		p.StoreF64(arr+shasta.Addr(p.ID()*8), float64(p.ID()))
		p.Barrier()
		p.LockAcquire(lock)
		p.StoreF64(arr+512, p.LoadF64(arr+512)+1) // contended block in the second page half
		p.LockRelease(lock)
		p.Barrier()
	})
	return cluster
}

func TestTraceAndSnapshotDeterminism(t *testing.T) {
	var trace [2]bytes.Buffer
	var metrics [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		sink := obsv.NewJSONLWriterSink(&trace[i])
		cluster := traceRun(t, sink)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cluster.Metrics().WriteJSON(&metrics[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(trace[0].Bytes(), trace[1].Bytes()) {
		t.Fatal("identical runs produced different traces")
	}
	if !bytes.Equal(metrics[0].Bytes(), metrics[1].Bytes()) {
		t.Fatalf("identical runs produced different metrics:\n%s\nvs\n%s",
			metrics[0].String(), metrics[1].String())
	}
	// Two identical runs also summarize byte-identically (the acceptance
	// property behind shastatrace diff).
	_, e0, err := obsv.ReadTrace(&trace[0])
	if err != nil {
		t.Fatal(err)
	}
	_, e1, err := obsv.ReadTrace(&trace[1])
	if err != nil {
		t.Fatal(err)
	}
	if obsv.Summarize(e0).Format() != obsv.Summarize(e1).Format() {
		t.Fatal("summaries differ")
	}
	if _, equal := obsv.Diff(obsv.Summarize(e0), obsv.Summarize(e1)); !equal {
		t.Fatal("diff of identical runs not empty")
	}
}

func TestSnapshotContents(t *testing.T) {
	cluster := traceRun(t, nil)
	m := cluster.Metrics()
	if m.Schema != obsv.MetricsSchema || m.Version != obsv.MetricsVersion {
		t.Fatalf("bad schema header %q v%d", m.Schema, m.Version)
	}
	if m.Config.Variant != "smp" || m.Config.Procs != 8 || m.Config.Clustering != 4 {
		t.Fatalf("bad config %+v", m.Config)
	}
	if m.Cycles <= 0 || m.Totals.TotalMisses == 0 || m.Totals.TotalMessages == 0 {
		t.Fatalf("empty totals: cycles=%d misses=%d msgs=%d",
			m.Cycles, m.Totals.TotalMisses, m.Totals.TotalMessages)
	}
	if m.Totals.HandlerEvents == 0 || m.Totals.HandlerCycles == 0 {
		t.Fatalf("handler occupancy not recorded: %+v", m.Totals)
	}
	if m.Totals.LockAcquires == 0 || m.Totals.LockHoldCycles == 0 {
		t.Fatalf("lock holds not recorded under SMP-Shasta: %+v", m.Totals)
	}
	if m.Network.RemoteSends == 0 || m.Network.RemoteBytes == 0 {
		t.Fatalf("network counters empty: %+v", m.Network)
	}
	if len(m.Network.LinkBusyCycles) != 2 || len(m.Network.PeakInboxDepth) != 8 {
		t.Fatalf("per-node/per-proc lengths wrong: %+v", m.Network)
	}
	peak := 0
	for _, d := range m.Network.PeakInboxDepth {
		if d > peak {
			peak = d
		}
	}
	if peak == 0 {
		t.Fatal("no inbox depth recorded")
	}
	if len(m.Procs) != 8 {
		t.Fatalf("%d proc entries, want 8", len(m.Procs))
	}
	var sum int64
	for _, p := range m.Procs {
		sum += p.HandlerCycles
	}
	if sum != m.Totals.HandlerCycles {
		t.Fatalf("per-proc handler cycles %d != total %d", sum, m.Totals.HandlerCycles)
	}
	// JSON round trip.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obsv.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatal("snapshot JSON round trip mismatch")
	}
}

func TestSnapshotDoesNotPerturbRun(t *testing.T) {
	// A fully observed run must report exactly the same virtual timing and
	// statistics as an unobserved one.
	var sinkBuf bytes.Buffer
	observed := traceRun(t, obsv.NewJSONLWriterSink(&sinkBuf))
	plain := traceRun(t, nil)
	if o, p := observed.Stats().Cycles, plain.Stats().Cycles; o != p {
		t.Fatalf("tracing perturbed the run: %d vs %d cycles", o, p)
	}
	if o, p := observed.Stats().TotalMessages(), plain.Stats().TotalMessages(); o != p {
		t.Fatalf("tracing perturbed message counts: %d vs %d", o, p)
	}
	// Pin the absolute numbers to the pre-profiler seed: the breakdown
	// capture, latency histograms and privup tracing must not move the
	// virtual clock or the protocol's message stream.
	const seedCycles, seedMessages = 59459, 86
	if c := observed.Stats().Cycles; c != seedCycles {
		t.Fatalf("cycles = %d, seed measured %d: profiling changed virtual timing", c, seedCycles)
	}
	if m := observed.Stats().TotalMessages(); m != seedMessages {
		t.Fatalf("messages = %d, seed measured %d: profiling changed the protocol", m, seedMessages)
	}
}
