package obsv

import (
	"strings"
	"testing"

	"repro/internal/protocol"
)

// traceBuilder assembles synthetic traces with consecutive seq numbers, the
// shape DetectRaces requires of a complete trace.
type traceBuilder struct {
	seq uint64
	evs []protocol.TraceEvent
}

func (b *traceBuilder) ev(proc int, op, msg string, blk int, detail string) {
	b.seq++
	b.evs = append(b.evs, protocol.TraceEvent{
		Seq: b.seq, Time: int64(b.seq) * 7, Proc: proc,
		Op: op, Msg: msg, BaseLine: blk, Detail: detail,
	})
}

func (b *traceBuilder) miss(proc, blk int, kind string, rd, wr uint64) {
	b.ev(proc, "miss", "", blk, kindDetail(kind, rd, wr))
}

func kindDetail(kind string, rd, wr uint64) string {
	return kind + " issued r=" + hex(rd) + " w=" + hex(wr) + ": Invalid"
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var s []byte
	for v > 0 {
		s = append([]byte{digits[v&0xf]}, s...)
		v >>= 4
	}
	return string(s)
}

func (b *traceBuilder) send(proc, dst int, msg string) {
	b.ev(proc, "send", msg, -1, "to p"+itoa(dst)+" seq=0 acks=0")
}

func (b *traceBuilder) handle(proc, requester int, msg string) {
	b.ev(proc, "handle", msg, -1, "from R"+itoa(requester)+" seq=0: ")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var s []byte
	for v > 0 {
		s = append([]byte{byte('0' + v%10)}, s...)
		v /= 10
	}
	return string(s)
}

func detect(t *testing.T, b *traceBuilder) *RaceReport {
	t.Helper()
	rep, err := DetectRaces(b.evs)
	if err != nil {
		t.Fatalf("DetectRaces: %v", err)
	}
	return rep
}

func TestRacesUnsyncedConflict(t *testing.T) {
	b := &traceBuilder{}
	b.miss(0, 3, "write", 0, 0x3)
	b.miss(1, 3, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race, got %d:\n%s", len(rep.Races), rep.Format())
	}
	r := rep.Races[0]
	if r.Block != 3 || r.Overlap != 0x3 || r.First.Proc != 0 || r.Second.Proc != 1 {
		t.Errorf("race misdescribed: %+v", r)
	}
	if r.Witness.Ok {
		t.Errorf("fully concurrent accesses must have no witness: %+v", r.Witness)
	}
	if !strings.HasPrefix(rep.Format(), "RACES: 1 data race:") {
		t.Errorf("report verdict line wrong:\n%s", rep.Format())
	}
}

func TestRacesDisjointMasksNoConflict(t *testing.T) {
	b := &traceBuilder{}
	b.miss(0, 3, "write", 0, 0x3)
	b.miss(1, 3, "write", 0, 0xc)
	rep := detect(t, b)
	if len(rep.Races) != 0 {
		t.Fatalf("disjoint slot masks must not race:\n%s", rep.Format())
	}
}

func TestRacesReadReadNoConflict(t *testing.T) {
	b := &traceBuilder{}
	b.miss(0, 3, "read", 0xff, 0)
	b.miss(1, 3, "read", 0xff, 0)
	rep := detect(t, b)
	if len(rep.Races) != 0 {
		t.Fatalf("read-read overlap must not race:\n%s", rep.Format())
	}
	if !strings.HasPrefix(rep.Format(), "ok: no data races") {
		t.Errorf("clean verdict line wrong:\n%s", rep.Format())
	}
}

func TestRacesLockChainOrders(t *testing.T) {
	// p0 writes, releases; the lock home p2 grants to p1; p1 writes. The
	// release→acquire chain orders the writes through two sync edges.
	b := &traceBuilder{}
	b.miss(0, 3, "write", 0, 0x3)
	b.ev(0, "sync", "", -1, "lock-release id=0")
	b.send(0, 2, "LockRel")
	b.handle(2, 0, "LockRel")
	b.send(2, 1, "LockGrant")
	b.handle(1, 0, "LockGrant")
	b.miss(1, 3, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 0 {
		t.Fatalf("lock-ordered writes must not race:\n%s", rep.Format())
	}
	if rep.SyncEdges != 2 {
		t.Errorf("want 2 sync edges, got %d", rep.SyncEdges)
	}
}

func TestRacesBarrierOrders(t *testing.T) {
	// A pre-barrier write and a post-barrier write are ordered by the
	// barrier-generation rule alone (no BarGo edges, as under FastSync).
	b := &traceBuilder{}
	b.miss(0, 3, "write", 0, 0x3)
	b.ev(0, "sync", "", -1, "barrier gen=0")
	b.ev(1, "sync", "", -1, "barrier gen=0")
	b.miss(1, 3, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 0 {
		t.Fatalf("barrier-separated writes must not race:\n%s", rep.Format())
	}
}

func TestRacesSameSideOfBarrier(t *testing.T) {
	// Both writes after their processors' arrivals: concurrent, and the
	// witness is the arrival event (the last ordered point).
	b := &traceBuilder{}
	b.ev(0, "sync", "", -1, "barrier gen=0")
	b.miss(0, 3, "write", 0, 0x3)
	b.ev(1, "sync", "", -1, "barrier gen=0")
	b.miss(1, 3, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race, got %d:\n%s", len(rep.Races), rep.Format())
	}
	w := rep.Races[0].Witness
	if !w.Ok || w.Op != "sync" || w.Seq != b.evs[0].Seq || w.After != 1 {
		t.Errorf("witness should be p0's barrier arrival one event before the race: %+v", w)
	}
}

func TestRacesShortestWitness(t *testing.T) {
	// Two conflicting writes in p0's unordered suffix: the reported first
	// access is the earliest one (shortest distance from the witness).
	b := &traceBuilder{}
	b.ev(0, "sync", "", -1, "barrier gen=0")
	b.miss(0, 3, "write", 0, 0x3)
	b.miss(0, 3, "write", 0, 0x3)
	b.ev(1, "sync", "", -1, "barrier gen=0")
	b.miss(1, 3, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race (deduplicated), got %d:\n%s", len(rep.Races), rep.Format())
	}
	r := rep.Races[0]
	if r.First.Seq != b.evs[1].Seq {
		t.Errorf("first access should be the earliest unordered conflict (seq %d), got seq %d",
			b.evs[1].Seq, r.First.Seq)
	}
	if r.Witness.After != 1 {
		t.Errorf("want witness distance 1, got %d", r.Witness.After)
	}
}

func TestRacesDedupPerPair(t *testing.T) {
	b := &traceBuilder{}
	for i := 0; i < 3; i++ {
		b.miss(0, 3, "write", 0, 0x3)
		b.miss(1, 3, "write", 0, 0x3)
	}
	b.miss(2, 3, "write", 0, 0x3)
	rep := detect(t, b)
	// One race per processor pair on the block: (0,1), (0,2), (1,2).
	if len(rep.Races) != 3 {
		t.Fatalf("want 3 deduplicated races, got %d:\n%s", len(rep.Races), rep.Format())
	}
}

func TestRacesUpgradeVsRead(t *testing.T) {
	b := &traceBuilder{}
	b.miss(0, 5, "upgrade", 0, 0x10)
	b.miss(1, 5, "read", 0x30, 0)
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race, got %d:\n%s", len(rep.Races), rep.Format())
	}
	if rep.Races[0].Overlap != 0x10 {
		t.Errorf("overlap should be the conflicting slots only: got %x", rep.Races[0].Overlap)
	}
}

func TestRacesRequesterKeyedSyncMatching(t *testing.T) {
	// Two LockRel messages from different requesters reach the lock home
	// out of send order (p2's arrives first). Plain FIFO pairing would
	// give the grant p1's frontier — masking the race between p1's
	// unlocked write and the grantee's. Requester-keyed pairing must
	// attribute the first handle to p2 and detect the race.
	b := &traceBuilder{}
	b.miss(1, 7, "write", 0, 0x3)
	b.ev(1, "sync", "", -1, "lock-release id=0")
	b.send(1, 0, "LockRel")
	b.ev(2, "sync", "", -1, "lock-release id=1")
	b.send(2, 0, "LockRel")
	b.handle(0, 2, "LockRel") // p2's release delivered first
	b.send(0, 3, "LockGrant")
	b.handle(0, 1, "LockRel")
	b.handle(3, 0, "LockGrant")
	b.miss(3, 7, "write", 0, 0x3)
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race (p1 vs p3), got %d:\n%s", len(rep.Races), rep.Format())
	}
	r := rep.Races[0]
	if r.First.Proc != 1 || r.Second.Proc != 3 {
		t.Errorf("race should pair p1's write with p3's, got p%d vs p%d", r.First.Proc, r.Second.Proc)
	}
}

func TestRacesLegacyDetailWidens(t *testing.T) {
	b := &traceBuilder{}
	b.ev(0, "miss", "", 3, "write issued: Invalid")
	b.ev(1, "miss", "", 3, "read issued: Invalid")
	rep := detect(t, b)
	if len(rep.Races) != 1 {
		t.Fatalf("legacy whole-block accesses must conflict:\n%s", rep.Format())
	}
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[0], "no offset masks") {
		t.Errorf("want a pre-mask warning, got %v", rep.Warnings)
	}
}

func TestRacesGappedTraceErrors(t *testing.T) {
	evs := []protocol.TraceEvent{
		{Seq: 1, Proc: 0, Op: "miss", BaseLine: 3, Detail: kindDetail("write", 0, 3)},
		{Seq: 5, Proc: 1, Op: "miss", BaseLine: 3, Detail: kindDetail("write", 0, 3)},
	}
	if _, err := DetectRaces(evs); err == nil {
		t.Fatal("gapped trace must error, not report race-free")
	} else if !strings.Contains(err.Error(), "seq gaps") {
		t.Errorf("diagnostic should name the seq gaps: %v", err)
	}
}

func TestRacesNonMonotoneSeqErrors(t *testing.T) {
	evs := []protocol.TraceEvent{
		{Seq: 2, Proc: 0, Op: "miss", BaseLine: 3, Detail: kindDetail("write", 0, 3)},
		{Seq: 1, Proc: 1, Op: "miss", BaseLine: 3, Detail: kindDetail("write", 0, 3)},
	}
	if _, err := DetectRaces(evs); err == nil {
		t.Fatal("non-monotone seq must error")
	}
}

func TestRacesEmptyTrace(t *testing.T) {
	rep, err := DetectRaces(nil)
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if len(rep.Races) != 0 || rep.Accesses != 0 {
		t.Errorf("empty trace should be trivially clean: %+v", rep)
	}
}
