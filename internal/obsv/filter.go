package obsv

import "repro/internal/protocol"

// BlockRange is an inclusive range of block base lines.
type BlockRange struct {
	Lo, Hi int
}

// Contains reports whether the range covers base line b.
func (r BlockRange) Contains(b int) bool { return b >= r.Lo && b <= r.Hi }

// Filter is a protocol.Tracer stage that forwards only matching events to
// Next, optionally downsampling them. The match predicates are conjunctive;
// an empty predicate matches everything. Filtering costs a few map lookups
// per event and allocates nothing, so a tight filter is cheap enough to
// leave enabled on full benchmark runs.
type Filter struct {
	// Next receives the surviving events.
	Next protocol.Tracer
	// Procs restricts to these emitting processors; empty means all.
	Procs map[int]bool
	// Ops restricts to these event kinds (see protocol.TraceOps); empty
	// means all.
	Ops map[string]bool
	// Blocks restricts to events whose block falls in any of these
	// ranges; empty means all. Non-block events (BaseLine -1, i.e. sync
	// and batch markers) always pass a Blocks filter: a block predicate
	// narrows the data traffic, it must not silence the synchronization
	// backbone the downstream analyzers (races, sync, skew) order the
	// trace by. Use -op to drop sync events explicitly.
	Blocks []BlockRange
	// Sample keeps every Sample-th matching event (1-in-N sampling,
	// counted after the predicates); 0 or 1 keeps all of them. Sequence
	// numbers of kept events stay those of the original stream, so gaps
	// reveal the sampling.
	Sample int

	matched uint64
}

// Match reports whether the event passes the filter's predicates (ignoring
// sampling).
func (f *Filter) Match(e protocol.TraceEvent) bool {
	if len(f.Procs) > 0 && !f.Procs[e.Proc] {
		return false
	}
	if len(f.Ops) > 0 && !f.Ops[e.Op] {
		return false
	}
	if len(f.Blocks) > 0 && e.BaseLine >= 0 {
		ok := false
		for _, r := range f.Blocks {
			if r.Contains(e.BaseLine) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Event implements protocol.Tracer.
func (f *Filter) Event(e protocol.TraceEvent) {
	if !f.Match(e) {
		return
	}
	f.matched++
	if f.Sample > 1 && (f.matched-1)%uint64(f.Sample) != 0 {
		return
	}
	f.Next.Event(e)
}
