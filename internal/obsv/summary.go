package obsv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// TraceSummary aggregates one trace into counts suitable for quick
// inspection and run-to-run comparison.
type TraceSummary struct {
	Events int
	// FirstSeq and LastSeq bound the sequence numbers seen (zero when the
	// trace is empty); gaps relative to Events reveal filtering/sampling.
	FirstSeq, LastSeq uint64
	// FirstTime and LastTime bound the virtual timestamps seen.
	FirstTime, LastTime int64
	// ByOp counts events per kind, ByProc per emitting processor, and
	// ByMsg per message name (send/handle events only).
	ByOp   map[string]int
	ByProc map[int]int
	ByMsg  map[string]int
	// Blocks is the number of distinct block base lines that appear.
	Blocks int
}

// Summarize aggregates events into a TraceSummary.
func Summarize(events []protocol.TraceEvent) *TraceSummary {
	s := &TraceSummary{
		ByOp:   map[string]int{},
		ByProc: map[int]int{},
		ByMsg:  map[string]int{},
	}
	blocks := map[int]bool{}
	for i, e := range events {
		s.Events++
		if i == 0 {
			s.FirstSeq, s.LastSeq = e.Seq, e.Seq
			s.FirstTime, s.LastTime = e.Time, e.Time
		} else {
			if e.Seq < s.FirstSeq {
				s.FirstSeq = e.Seq
			}
			if e.Seq > s.LastSeq {
				s.LastSeq = e.Seq
			}
			if e.Time < s.FirstTime {
				s.FirstTime = e.Time
			}
			if e.Time > s.LastTime {
				s.LastTime = e.Time
			}
		}
		s.ByOp[e.Op]++
		s.ByProc[e.Proc]++
		if e.Msg != "" {
			s.ByMsg[e.Msg]++
		}
		if e.BaseLine >= 0 {
			blocks[e.BaseLine] = true
		}
	}
	s.Blocks = len(blocks)
	return s
}

// Format renders the summary deterministically (sorted keys, fixed layout),
// so summaries of identical traces compare byte-for-byte.
func (s *TraceSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d (seq %d..%d, t %d..%d cycles, %d blocks)\n",
		s.Events, s.FirstSeq, s.LastSeq, s.FirstTime, s.LastTime, s.Blocks)
	b.WriteString("by op:\n")
	for _, op := range stats.SortedKeys(s.ByOp) {
		fmt.Fprintf(&b, "  %-10s %d\n", op, s.ByOp[op])
	}
	if len(s.ByMsg) > 0 {
		b.WriteString("by message:\n")
		for _, m := range stats.SortedKeys(s.ByMsg) {
			fmt.Fprintf(&b, "  %-18s %d\n", m, s.ByMsg[m])
		}
	}
	b.WriteString("by proc:\n")
	procs := make([]int, 0, len(s.ByProc))
	for p := range s.ByProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		fmt.Fprintf(&b, "  p%-2d %d\n", p, s.ByProc[p])
	}
	return b.String()
}

// Diff compares two summaries and renders the differences. It returns an
// empty string and true when they are identical.
func Diff(a, b *TraceSummary) (string, bool) {
	var d strings.Builder
	if a.Events != b.Events {
		fmt.Fprintf(&d, "events: %d vs %d\n", a.Events, b.Events)
	}
	if a.FirstSeq != b.FirstSeq || a.LastSeq != b.LastSeq {
		fmt.Fprintf(&d, "seq range: %d..%d vs %d..%d\n",
			a.FirstSeq, a.LastSeq, b.FirstSeq, b.LastSeq)
	}
	if a.FirstTime != b.FirstTime || a.LastTime != b.LastTime {
		fmt.Fprintf(&d, "time range: %d..%d vs %d..%d\n",
			a.FirstTime, a.LastTime, b.FirstTime, b.LastTime)
	}
	if a.Blocks != b.Blocks {
		fmt.Fprintf(&d, "blocks: %d vs %d\n", a.Blocks, b.Blocks)
	}
	diffStr := func(label string, am, bm map[string]int) {
		keys := map[string]bool{}
		for k := range am {
			keys[k] = true
		}
		for k := range bm {
			keys[k] = true
		}
		for _, k := range stats.SortedKeys(keys) {
			if am[k] != bm[k] {
				fmt.Fprintf(&d, "%s %s: %d vs %d\n", label, k, am[k], bm[k])
			}
		}
	}
	diffStr("op", a.ByOp, b.ByOp)
	diffStr("msg", a.ByMsg, b.ByMsg)
	procs := map[int]bool{}
	for p := range a.ByProc {
		procs[p] = true
	}
	for p := range b.ByProc {
		procs[p] = true
	}
	ps := make([]int, 0, len(procs))
	for p := range procs {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	for _, p := range ps {
		if a.ByProc[p] != b.ByProc[p] {
			fmt.Fprintf(&d, "proc p%d: %d vs %d\n", p, a.ByProc[p], b.ByProc[p])
		}
	}
	out := d.String()
	return out, out == ""
}

// Timeline extracts the events touching one block base line, in trace
// order, rendered one per line: sequence, virtual time, processor, op,
// message and detail. This reconstructs a block's protocol history — e.g.
// the miss/send/handle/downgrade/install chain of a two-hop fetch — from a
// full-run trace.
func Timeline(events []protocol.TraceEvent, block int) string {
	var b strings.Builder
	for _, e := range events {
		if e.BaseLine != block {
			continue
		}
		fmt.Fprintf(&b, "%6d  t=%-8d p%-2d %-10s", e.Seq, e.Time, e.Proc, e.Op)
		if e.Msg != "" {
			fmt.Fprintf(&b, " %-18s", e.Msg)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
