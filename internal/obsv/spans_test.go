package obsv_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// traceBuilder assembles synthetic traces with contiguous sequence numbers.
type traceBuilder struct {
	seq uint64
	evs []protocol.TraceEvent
}

func (b *traceBuilder) ev(t int64, proc int, op, msg string, blk int, detail string) {
	b.seq++
	b.evs = append(b.evs, protocol.TraceEvent{
		Seq: b.seq, Time: t, Proc: proc, Op: op, Msg: msg, BaseLine: blk, Detail: detail,
	})
}

// sumStages asserts that every span's stage durations telescope exactly to
// its end-to-end latency and that no stage is negative.
func sumStages(t *testing.T, ss *obsv.SpanSet) {
	t.Helper()
	for i := range ss.Spans {
		s := &ss.Spans[i]
		var sum int64
		for _, st := range s.Stages {
			if st.Cycles < 0 {
				t.Fatalf("span seq=%d: negative stage %s %d", s.Seq, st.Name, st.Cycles)
			}
			sum += st.Cycles
		}
		if sum != s.Total() {
			t.Fatalf("span seq=%d: stages sum %d, want total %d (%v)", s.Seq, sum, s.Total(), s.Stages)
		}
	}
}

// stageNames extracts a span's stage names in order.
func stageNames(s *obsv.Span) []string {
	names := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		names[i] = st.Name
	}
	return names
}

func TestSpanTwoHopWithXmit(t *testing.T) {
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(110, 4, "send", "ReadReq", 0, "to p0 seq=1 acks=0")
	b.ev(110, 4, "xmit", "ReadReq", 0, "to p0 R4 arrive=1500 queue=40 wire=1200 xfer=150 via=remote")
	b.ev(1600, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Home")
	b.ev(1700, 0, "send", "DataReply", 0, "to p4 seq=2 acks=0")
	b.ev(1700, 0, "xmit", "DataReply", 0, "to p4 R4 arrive=3100 queue=0 wire=1200 xfer=200 via=remote")
	b.ev(3200, 4, "handle", "DataReply", 0, "from R99 seq=2: state=Pending")
	b.ev(3300, 4, "install", "", 0, "shared seq=2 hops=2")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 || len(ss.Warnings) != 0 {
		t.Fatalf("spans=%d dropped=%v warnings=%v", len(ss.Spans), ss.Dropped, ss.Warnings)
	}
	sumStages(t, ss)
	s := &ss.Spans[0]
	if s.Requester != 4 || s.Home != 0 || s.Owner != -1 || s.Kind != "read" || s.Hops != 2 {
		t.Fatalf("span %+v", s)
	}
	if s.Total() != 3200 {
		t.Fatalf("total %d, want 3200", s.Total())
	}
	want := []obsv.SpanStage{
		{Name: "issue", Cycles: 10},        // miss 100 -> send 110
		{Name: "req-queue", Cycles: 40},    // lane wait
		{Name: "req-wire", Cycles: 1350},   // xfer+wire to arrival 1500
		{Name: "home-inbox", Cycles: 100},  // arrival -> dispatch 1600
		{Name: "home-serve", Cycles: 100},  // dispatch -> reply send 1700
		{Name: "reply-wire", Cycles: 1400}, // to arrival 3100
		{Name: "reply-inbox", Cycles: 100}, // arrival -> handle 3200
		{Name: "install", Cycles: 100},     // handle -> install 3300
	}
	if len(s.Stages) != len(want) {
		t.Fatalf("stages %v, want %v", s.Stages, want)
	}
	for i := range want {
		if s.Stages[i] != want[i] {
			t.Fatalf("stage %d: %v, want %v", i, s.Stages[i], want[i])
		}
	}
}

func TestSpanThreeHopForward(t *testing.T) {
	var b traceBuilder
	b.ev(100, 4, "miss", "", 64, "read issued r=1 w=0: state=Invalid")
	b.ev(110, 4, "send", "ReadReq", 64, "to p0 seq=1 acks=0")
	b.ev(110, 4, "xmit", "ReadReq", 64, "to p0 R4 arrive=1500 queue=40 wire=1200 xfer=150 via=remote")
	b.ev(1600, 0, "handle", "ReadReq", 64, "from R4 seq=1: state=Home")
	b.ev(1650, 0, "send", "ReadFwd", 64, "to p2 seq=2 acks=0")
	b.ev(1650, 0, "xmit", "ReadFwd", 64, "to p2 R4 arrive=3000 queue=0 wire=1200 xfer=150 via=remote")
	b.ev(3100, 2, "handle", "ReadFwd", 64, "from R4 seq=2: state=Exclusive")
	b.ev(3200, 2, "send", "DataReply", 64, "to p4 seq=3 acks=0")
	b.ev(3200, 2, "xmit", "DataReply", 64, "to p4 R4 arrive=4600 queue=0 wire=1200 xfer=200 via=remote")
	b.ev(4700, 4, "handle", "DataReply", 64, "from R0 seq=3: state=Pending")
	b.ev(4800, 4, "install", "", 64, "shared seq=3 hops=3")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 {
		t.Fatalf("spans=%d dropped=%v", len(ss.Spans), ss.Dropped)
	}
	sumStages(t, ss)
	s := &ss.Spans[0]
	if s.Hops != 3 || s.Owner != 2 || s.Home != 0 {
		t.Fatalf("span %+v", s)
	}
	names := stageNames(s)
	wantNames := []string{"issue", "req-queue", "req-wire", "home-inbox", "home-serve",
		"fwd-wire", "owner-inbox", "owner-serve", "reply-wire", "reply-inbox", "install"}
	if strings.Join(names, " ") != strings.Join(wantNames, " ") {
		t.Fatalf("stages %v, want %v", names, wantNames)
	}
}

func TestSpanUpgrade(t *testing.T) {
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "upgrade issued r=0 w=1: state=Shared")
	b.ev(110, 4, "send", "UpgradeReq", 0, "to p0 seq=1 acks=0")
	b.ev(110, 4, "xmit", "UpgradeReq", 0, "to p0 R4 arrive=1500 queue=0 wire=1200 xfer=60 via=remote")
	b.ev(1600, 0, "handle", "UpgradeReq", 0, "from R4 seq=1: state=Home")
	b.ev(1700, 0, "send", "UpgradeAck", 0, "to p4 seq=2 acks=0")
	b.ev(1700, 0, "xmit", "UpgradeAck", 0, "to p4 R4 arrive=3100 queue=0 wire=1200 xfer=60 via=remote")
	b.ev(3200, 4, "handle", "UpgradeAck", 0, "from R0 seq=2: state=Pending")
	b.ev(3250, 4, "install", "", 0, "upgrade seq=2 acks=0")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 {
		t.Fatalf("spans=%d dropped=%v", len(ss.Spans), ss.Dropped)
	}
	sumStages(t, ss)
	if s := &ss.Spans[0]; s.Kind != "upgrade" || s.Total() != 3150 {
		t.Fatalf("span %+v", s)
	}
}

func TestSpanDirectPath(t *testing.T) {
	// The home shares the requester's group: the request is dispatched
	// without a send event and only the handle names the requester.
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(200, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Home")
	b.ev(250, 0, "send", "DataReply", 0, "to p4 seq=2 acks=0")
	b.ev(400, 4, "handle", "DataReply", 0, "from R0 seq=2: state=Pending")
	b.ev(450, 4, "install", "", 0, "shared seq=2 hops=1")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 {
		t.Fatalf("spans=%d dropped=%v", len(ss.Spans), ss.Dropped)
	}
	sumStages(t, ss)
	s := &ss.Spans[0]
	if s.Hops != 1 || s.Total() != 350 {
		t.Fatalf("span %+v", s)
	}
	names := stageNames(s)
	want := []string{"issue", "home-serve", "reply-flight", "install"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("stages %v, want %v", names, want)
	}
}

func TestSpanRequeueWithoutXmit(t *testing.T) {
	// A request blocked at a busy home re-dispatches with no second send
	// event; without xmit evidence the transits collapse into compound
	// "-flight" stages that still telescope exactly.
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(110, 4, "send", "ReadReq", 0, "to p0 seq=1 acks=0")
	b.ev(1600, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Busy")
	b.ev(2000, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Home")
	b.ev(2100, 0, "send", "DataReply", 0, "to p4 seq=2 acks=0")
	b.ev(3200, 4, "handle", "DataReply", 0, "from R0 seq=2: state=Pending")
	b.ev(3300, 4, "install", "", 0, "shared seq=2 hops=2")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 || len(ss.Warnings) != 0 {
		t.Fatalf("spans=%d dropped=%v warnings=%v", len(ss.Spans), ss.Dropped, ss.Warnings)
	}
	sumStages(t, ss)
	names := stageNames(&ss.Spans[0])
	want := []string{"issue", "req-flight", "home-queued", "home-serve", "reply-flight", "install"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("stages %v, want %v", names, want)
	}
}

func TestSpanRetryFolding(t *testing.T) {
	// A reply superseded by a concurrent invalidation never installs; the
	// requester re-issues (fresh miss, new request) and only the retry
	// round's reply installs. The two rounds fold into one span with an
	// explicit "retry" stage, still summing exactly.
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(110, 4, "send", "ReadReq", 0, "to p0 seq=1 acks=0")
	b.ev(110, 4, "xmit", "ReadReq", 0, "to p0 R4 arrive=1500 queue=40 wire=1200 xfer=150 via=remote")
	b.ev(1600, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Home")
	b.ev(1700, 0, "send", "DataReply", 0, "to p4 seq=2 acks=0")
	b.ev(1700, 0, "xmit", "DataReply", 0, "to p4 R4 arrive=3100 queue=0 wire=1200 xfer=200 via=remote")
	b.ev(3200, 4, "handle", "DataReply", 0, "from R0 seq=2: state=Pending") // superseded: no install
	b.ev(3250, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(3300, 4, "send", "ReadReq", 0, "to p0 seq=3 acks=0")
	b.ev(3300, 4, "xmit", "ReadReq", 0, "to p0 R4 arrive=4700 queue=0 wire=1200 xfer=200 via=remote")
	b.ev(4800, 0, "handle", "ReadReq", 0, "from R4 seq=3: state=Home")
	b.ev(4900, 0, "send", "DataReply", 0, "to p4 seq=4 acks=0")
	b.ev(4900, 0, "xmit", "DataReply", 0, "to p4 R4 arrive=6300 queue=0 wire=1200 xfer=200 via=remote")
	b.ev(6400, 4, "handle", "DataReply", 0, "from R0 seq=4: state=Pending")
	b.ev(6500, 4, "install", "", 0, "shared seq=4 hops=2")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 1 || ss.DroppedTotal() != 0 || len(ss.Warnings) != 0 {
		t.Fatalf("spans=%d dropped=%v warnings=%v", len(ss.Spans), ss.Dropped, ss.Warnings)
	}
	sumStages(t, ss)
	s := &ss.Spans[0]
	if s.Retries != 1 {
		t.Fatalf("retries %d, want 1 (%+v)", s.Retries, s)
	}
	if s.Start != 100 || s.End != 6500 {
		t.Fatalf("span covers [%d,%d], want [100,6500]", s.Start, s.End)
	}
	retry := int64(-1)
	for _, st := range s.Stages {
		if st.Name == "retry" {
			retry = st.Cycles
		}
	}
	if retry != 100 { // superseded reply handled 3200 -> re-issue send 3300
		t.Fatalf("retry stage %d, want 100 (%v)", retry, s.Stages)
	}
	// The retry's own miss event must not surface as an unissued miss or
	// open a second span.
	if ss.UnissuedMisses != 0 {
		t.Fatalf("unissued misses %d, want 0", ss.UnissuedMisses)
	}
}

func TestSpanConcurrentRequestersSameBlock(t *testing.T) {
	// Two requesters miss the same block; their replies are delivered out
	// of order, so positional send/handle matching would mis-pair them.
	// The requester named by each handle keeps the pairing straight.
	var b traceBuilder
	b.ev(100, 4, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(110, 4, "send", "ReadReq", 0, "to p0 seq=1 acks=0")
	b.ev(120, 5, "miss", "", 0, "read issued r=1 w=0: state=Invalid")
	b.ev(130, 5, "send", "ReadReq", 0, "to p0 seq=1 acks=0")
	b.ev(1600, 0, "handle", "ReadReq", 0, "from R5 seq=1: state=Home") // p5 first
	b.ev(1700, 0, "send", "DataReply", 0, "to p5 seq=2 acks=0")
	b.ev(1800, 0, "handle", "ReadReq", 0, "from R4 seq=1: state=Home")
	b.ev(1900, 0, "send", "DataReply", 0, "to p4 seq=3 acks=0")
	b.ev(3100, 5, "handle", "DataReply", 0, "from R0 seq=2: state=Pending")
	b.ev(3150, 5, "install", "", 0, "shared seq=2 hops=2")
	b.ev(3300, 4, "handle", "DataReply", 0, "from R0 seq=3: state=Pending")
	b.ev(3350, 4, "install", "", 0, "shared seq=3 hops=2")

	ss := obsv.BuildSpans(b.evs)
	if len(ss.Spans) != 2 || ss.DroppedTotal() != 0 || len(ss.Warnings) != 0 {
		t.Fatalf("spans=%d dropped=%v warnings=%v", len(ss.Spans), ss.Dropped, ss.Warnings)
	}
	sumStages(t, ss)
	if ss.Spans[0].Requester != 5 || ss.Spans[0].Total() != 3030 {
		t.Fatalf("first span %+v", ss.Spans[0])
	}
	if ss.Spans[1].Requester != 4 || ss.Spans[1].Total() != 3250 {
		t.Fatalf("second span %+v", ss.Spans[1])
	}
}

// spanAppTrace memoizes one observed application run for the trace-level
// span tests.
var spanAppEvents []protocol.TraceEvent

func appTrace(t *testing.T) []protocol.TraceEvent {
	t.Helper()
	if spanAppEvents == nil {
		col := &protocol.CollectorTracer{}
		cfg := shasta.Config{Procs: 8, Clustering: 4}
		if _, err := apps.ExecuteObserved(apps.Registry["Water-Nsq"](1), cfg, false, col); err != nil {
			t.Fatal(err)
		}
		spanAppEvents = col.Events
	}
	return spanAppEvents
}

func TestSpansRealRunExactAndComplete(t *testing.T) {
	ss := obsv.BuildSpans(appTrace(t))
	if len(ss.Spans) < 1000 {
		t.Fatalf("only %d spans", len(ss.Spans))
	}
	if ss.DroppedTotal() != 0 || ss.Gapped || len(ss.Warnings) != 0 {
		t.Fatalf("complete trace: dropped=%v gapped=%v warnings=%v",
			ss.Dropped, ss.Gapped, ss.Warnings)
	}
	sumStages(t, ss)
	// The report is deterministic for identical traces.
	a := obsv.FormatSpans(ss, 5)
	bb := obsv.FormatSpans(obsv.BuildSpans(appTrace(t)), 5)
	if a != bb {
		t.Fatal("FormatSpans not deterministic")
	}
	if !strings.Contains(a, "dropped: 0") {
		t.Fatalf("report lacks dropped accounting:\n%s", a[:200])
	}
}

func TestSpansGappedTraceDegradesGracefully(t *testing.T) {
	events := appTrace(t)
	check := func(t *testing.T, sub []protocol.TraceEvent) {
		ss := obsv.BuildSpans(sub) // must never panic
		sumStages(t, ss)
		out := obsv.FormatSpans(ss, 2)
		if !strings.Contains(out, "dropped:") {
			t.Fatal("report lacks the dropped line")
		}
		_ = obsv.FormatPhases(ss, 4)
	}
	t.Run("no-xmit", func(t *testing.T) {
		var sub []protocol.TraceEvent
		for _, e := range events {
			if e.Op != "xmit" {
				sub = append(sub, e)
			}
		}
		check(t, sub)
		ss := obsv.BuildSpans(sub)
		if len(ss.Spans) == 0 {
			t.Fatal("no spans from xmit-less trace")
		}
		for i := range ss.Spans {
			for _, st := range ss.Spans[i].Stages {
				if strings.HasSuffix(st.Name, "-queue") || strings.HasSuffix(st.Name, "-wire") {
					t.Fatalf("xmit-less trace produced transit stage %q", st.Name)
				}
			}
		}
	})
	t.Run("no-install", func(t *testing.T) {
		var sub []protocol.TraceEvent
		for _, e := range events {
			if e.Op != "install" {
				sub = append(sub, e)
			}
		}
		check(t, sub)
		// Without installs no span can complete; all must be accounted.
		if ss := obsv.BuildSpans(sub); len(ss.Spans) != 0 || ss.DroppedTotal() == 0 {
			t.Fatalf("spans=%d dropped=%v", len(ss.Spans), ss.Dropped)
		}
	})
	t.Run("random-drops", func(t *testing.T) {
		for _, rate := range []float64{0.05, 0.3, 0.7} {
			rng := rand.New(rand.NewSource(42))
			var sub []protocol.TraceEvent
			for _, e := range events {
				if rng.Float64() >= rate {
					sub = append(sub, e)
				}
			}
			check(t, sub)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		check(t, events[:len(events)/3])
	})
}

func TestSpansSampledSinkNoOrphans(t *testing.T) {
	// Satellite: span events flowing through the sink's filter/sampling
	// pipeline must degrade into accounted drops, not orphan spans. Every
	// span reconstructed from a sampled trace still sums exactly.
	events := appTrace(t)
	for _, sample := range []int{2, 7} {
		var kept []protocol.TraceEvent
		f := &obsv.Filter{Sample: sample,
			Next: protocol.TracerFunc(func(e protocol.TraceEvent) { kept = append(kept, e) })}
		for _, e := range events {
			f.Event(e)
		}
		ss := obsv.BuildSpans(kept)
		if !ss.Gapped {
			t.Fatalf("sample=%d: trace not marked gapped", sample)
		}
		sumStages(t, ss)
	}
}

func TestSpansSinkRotationRoundTrip(t *testing.T) {
	// Satellite: spans survive segment rotation — the concatenated
	// segments reconstruct byte-identically to the in-memory trace.
	events := appTrace(t)[:5000]
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	sink, err := obsv.NewJSONLSink(path, obsv.SinkOptions{MaxEventsPerFile: 1200})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	files := sink.Files()
	if len(files) < 2 {
		t.Fatalf("expected rotation, got %v", files)
	}
	var got []protocol.TraceEvent
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		_, seg, err := obsv.ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got = append(got, seg...)
	}
	want := obsv.FormatSpans(obsv.BuildSpans(events), 3)
	have := obsv.FormatSpans(obsv.BuildSpans(got), 3)
	if want != have {
		t.Fatal("span report differs after sink rotation round trip")
	}
}

func TestHistogramEstimatedPercentiles(t *testing.T) {
	// 99 samples in [8,16), 1 in the open top bucket: p50 interpolates to
	// ~12 cycles, p99 stays inside [8,16).
	buckets := make([]int64, 28)
	buckets[4] = 99
	buckets[27] = 1
	out := obsv.FormatHistograms(map[string]obsv.Histogram{
		"read remote": {Buckets: buckets, Count: 100},
	})
	if !strings.Contains(out, "est p50 ~12 cycles, p99 ~15 cycles (bucket interpolation)") {
		t.Fatalf("missing or wrong estimate line:\n%s", out)
	}
	// All samples in the open bucket: the estimate degrades to its lower
	// edge rather than inventing an upper one.
	open := make([]int64, 28)
	open[27] = 4
	out = obsv.FormatHistograms(map[string]obsv.Histogram{
		"write remote": {Buckets: open, Count: 4},
	})
	if !strings.Contains(out, "est p50 ~67108864 cycles, p99 ~67108864 cycles") {
		t.Fatalf("open-bucket estimate wrong:\n%s", out)
	}
}
