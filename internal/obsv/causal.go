package obsv

import (
	"fmt"
	"strings"

	"repro/internal/protocol"
)

// Causal is the happens-before structure reconstructed from a trace. Two
// kinds of edges order events: program order (consecutive events of the same
// processor, in seq order) and message order (each send to the handle that
// dispatched the sent message). Because Seq is a deterministic total order
// consistent with both, the reconstruction is itself deterministic.
type Causal struct {
	Events []protocol.TraceEvent
	// SendOf maps the index of a handle event to the index of its
	// matching send event; handles with no recoverable send (filtered
	// traces, or directory-shortcut deliveries that bypass the send path)
	// are absent.
	SendOf map[int]int
	// PrevOf maps an event index to the index of the same processor's
	// previous event, -1 for a processor's first event.
	PrevOf []int
	// Gapped reports that the trace has seq gaps (a filtered or sampled
	// trace): pairing then degrades gracefully — unmatched events become
	// warnings, never mis-paired edges.
	Gapped bool
	// Warnings lists non-fatal reconstruction anomalies.
	Warnings []string
}

// sendKey identifies the FIFO stream a protocol message travels on, as far
// as the trace can see: message kind, block and destination processor. The
// destination is parsed from the send event's detail ("to p<dst> ...");
// handles name their own processor. Matching within a key is FIFO in seq
// order, which is consistent for latency analysis even if the interconnect
// reordered two identical messages: the edge weights telescope either way.
type sendKey struct {
	msg string
	blk int
	dst int
}

// parseSendDst extracts the destination processor from a send event's
// detail; ok is false when the detail does not carry one.
func parseSendDst(detail string) (int, bool) {
	var dst int
	if n, err := fmt.Sscanf(detail, "to p%d", &dst); n == 1 && err == nil {
		return dst, true
	}
	return 0, false
}

// BuildCausal reconstructs the happens-before edges of a trace. The events
// must be in trace (seq) order, as read from a trace file.
func BuildCausal(events []protocol.TraceEvent) *Causal {
	c := &Causal{
		Events: events,
		SendOf: map[int]int{},
		PrevOf: make([]int, len(events)),
	}
	var lastSeq uint64
	lastOf := map[int]int{}
	pending := map[sendKey][]int{}
	unparsedSends := 0
	for i, e := range events {
		if i > 0 {
			if e.Seq <= lastSeq {
				c.Warnings = append(c.Warnings,
					fmt.Sprintf("seq not increasing at event %d (%d after %d)", i, e.Seq, lastSeq))
			} else if e.Seq != lastSeq+1 {
				c.Gapped = true
			}
		}
		lastSeq = e.Seq

		if prev, ok := lastOf[e.Proc]; ok {
			c.PrevOf[i] = prev
		} else {
			c.PrevOf[i] = -1
		}
		lastOf[e.Proc] = i

		switch e.Op {
		case "send":
			dst, ok := parseSendDst(e.Detail)
			if !ok {
				unparsedSends++
				continue
			}
			k := sendKey{e.Msg, e.BaseLine, dst}
			pending[k] = append(pending[k], i)
		case "handle":
			k := sendKey{e.Msg, e.BaseLine, e.Proc}
			q := pending[k]
			if len(q) == 0 {
				// No visible send: a filtered trace, or an internal
				// requeue/directory shortcut that legitimately bypasses
				// the send path. Leave the handle without a message edge.
				if !c.Gapped {
					c.Warnings = append(c.Warnings,
						fmt.Sprintf("handle without visible send: seq=%d %s blk%d at p%d",
							e.Seq, e.Msg, e.BaseLine, e.Proc))
				}
				continue
			}
			c.SendOf[i] = q[0]
			if len(q) == 1 {
				delete(pending, k)
			} else {
				pending[k] = q[1:]
			}
		}
	}
	if unparsedSends > 0 {
		c.Warnings = append(c.Warnings,
			fmt.Sprintf("%d send events without parseable destination", unparsedSends))
	}
	if c.Gapped {
		c.Warnings = append(c.Warnings,
			"trace has seq gaps (filtered or sampled); causal edges limited to surviving events")
	}
	n := 0
	for _, q := range pending {
		n += len(q)
	}
	if n > 0 && !c.Gapped {
		c.Warnings = append(c.Warnings, fmt.Sprintf("%d sends never handled (truncated trace?)", n))
	}
	return c
}

// CritPath is the longest causal chain of a trace: the sequence of events,
// linked by program-order and message edges, with the largest elapsed
// virtual time. Edge weights are the virtual-time deltas between linked
// events, so they telescope: Cycles equals the end event's time minus the
// start event's.
type CritPath struct {
	// Path holds event indices from chain start to chain end.
	Path []int
	// Cycles is the chain's elapsed virtual time.
	Cycles int64
	// MsgEdges counts message (send->handle) crossings on the chain.
	MsgEdges int
}

// CriticalPath computes the longest causal chain by dynamic programming in
// seq order (every edge goes from a lower to a higher index, so one forward
// pass suffices). Ties break toward the smaller event index, keeping the
// result deterministic.
func (c *Causal) CriticalPath() CritPath {
	n := len(c.Events)
	if n == 0 {
		return CritPath{}
	}
	dist := make([]int64, n)
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	relax := func(from, to int) {
		w := c.Events[to].Time - c.Events[from].Time
		if w < 0 {
			w = 0
		}
		if d := dist[from] + w; d > dist[to] {
			dist[to] = d
			pred[to] = from
		}
	}
	best := 0
	for i := 0; i < n; i++ {
		if p := c.PrevOf[i]; p >= 0 {
			relax(p, i)
		}
		if s, ok := c.SendOf[i]; ok {
			relax(s, i)
		}
		if dist[i] > dist[best] {
			best = i
		}
	}
	var rev []int
	for i := best; i >= 0; i = pred[i] {
		rev = append(rev, i)
	}
	cp := CritPath{Cycles: dist[best], Path: make([]int, len(rev))}
	for i, idx := range rev {
		cp.Path[len(rev)-1-i] = idx
	}
	for i := 1; i < len(cp.Path); i++ {
		if s, ok := c.SendOf[cp.Path[i]]; ok && s == cp.Path[i-1] {
			cp.MsgEdges++
		}
	}
	return cp
}

// Format renders the critical path with program-order runs collapsed: each
// message crossing shows both endpoints and the edge's cycle cost, and the
// events a processor executes between crossings appear as one summarized
// line. Deterministic for identical traces.
func (cp CritPath) Format(c *Causal) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d cycles, %d events, %d message edges\n",
		cp.Cycles, len(cp.Path), cp.MsgEdges)
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if len(cp.Path) == 0 {
		return b.String()
	}
	line := func(idx int, prefix string, extra string) {
		e := c.Events[idx]
		msg := e.Msg
		if msg == "" {
			msg = "-"
		}
		fmt.Fprintf(&b, "%s seq=%-8d t=%-10d p%-3d %-10s %-18s blk%-5d%s\n",
			prefix, e.Seq, e.Time, e.Proc, e.Op, msg, e.BaseLine, extra)
	}
	i := 0
	for i < len(cp.Path) {
		start := i
		// A program-order run: consecutive path events on one processor,
		// ending before the next message crossing.
		for i+1 < len(cp.Path) {
			next := cp.Path[i+1]
			if s, ok := c.SendOf[next]; ok && s == cp.Path[i] {
				break
			}
			i++
		}
		first, last := cp.Path[start], cp.Path[i]
		if first == last {
			line(first, "  ", "")
		} else {
			e0, e1 := c.Events[first], c.Events[last]
			line(first, "  ", "")
			if i-start > 1 {
				fmt.Fprintf(&b, "     ... %d more events on p%d (+%d cycles) ...\n",
					i-start-1, e0.Proc, e1.Time-e0.Time)
			}
			line(last, "  ", "")
		}
		if i+1 < len(cp.Path) {
			snd, hnd := cp.Path[i], cp.Path[i+1]
			cost := c.Events[hnd].Time - c.Events[snd].Time
			line(hnd, "  ->", fmt.Sprintf("  (+%d cycles in flight)", cost))
			i++
		}
		i++
	}
	return b.String()
}
