package obsv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// trimHistogram converts a fixed bucket array into the wire Histogram,
// dropping trailing zero buckets.
func trimHistogram(buckets [stats.NumLatencyBuckets]int64, count int64) Histogram {
	last := -1
	for b, n := range buckets {
		if n != 0 {
			last = b
		}
	}
	return Histogram{Buckets: append([]int64(nil), buckets[:last+1]...), Count: count}
}

// bucketLabel renders bucket b's cycle range for reports.
func bucketLabel(b int) string {
	lo, hi := stats.BucketRange(b)
	if hi < 0 {
		return fmt.Sprintf(">=%d", lo)
	}
	if lo == hi-1 {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi-1)
}

// estPercentile estimates the q-th percentile (0 < q <= 1) of a bucketed
// histogram by linear interpolation within the bucket the rank lands in.
// The power-of-two buckets make this coarse — at worst off by half the
// bucket width — but it turns existing histograms into tail summaries
// without re-running; the span layer (BuildSpans) computes exact
// percentiles when a trace is available. The top (open) bucket has no upper
// edge, so ranks landing there estimate as its lower edge.
//
// ok is false for an empty histogram (Count <= 0 or no buckets), and also
// for a malformed document whose Count exceeds the bucket sum — the rank
// then lands past every bucket and there is nothing to interpolate within.
// Zero buckets are skipped before the interpolation divide, so a
// single-bucket histogram (the smallest valid input) always interpolates
// with n >= 1: no divide-by-zero or NaN path exists for any input.
func estPercentile(h Histogram, q float64) (int64, bool) {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0, false
	}
	rank := int64(float64(h.Count)*q + 0.999999) // nearest-rank, 1-based
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for bi, n := range h.Buckets {
		if n <= 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := stats.BucketRange(bi)
			if hi < 0 {
				return lo, true
			}
			// Interpolate the rank's position within the bucket; n >= 1 here.
			frac := (float64(rank-cum) - 0.5) / float64(n)
			return lo + int64(frac*float64(hi-lo)), true
		}
		cum += n
	}
	return 0, false // Count > bucket sum: malformed, decline to estimate
}

// FormatHistograms renders a histogram map deterministically: keys sorted,
// one line per non-empty bucket with its cycle range, count and a
// proportional bar, and a trailing line with estimated (bucket-interpolated)
// p50/p99. Identical runs format byte-identically.
func FormatHistograms(hists map[string]Histogram) string {
	var b strings.Builder
	for _, key := range stats.SortedKeys(hists) {
		h := hists[key]
		fmt.Fprintf(&b, "%s: %d samples\n", key, h.Count)
		var peak int64
		for _, n := range h.Buckets {
			if n > peak {
				peak = n
			}
		}
		for bi, n := range h.Buckets {
			if n == 0 {
				continue
			}
			bar := ""
			if peak > 0 {
				bar = strings.Repeat("#", int(1+n*39/peak))
			}
			fmt.Fprintf(&b, "  %16s  %8d  %s\n", bucketLabel(bi), n, bar)
		}
		p50, ok50 := estPercentile(h, 0.50)
		p99, ok99 := estPercentile(h, 0.99)
		if ok50 && ok99 {
			fmt.Fprintf(&b, "  est p50 ~%d cycles, p99 ~%d cycles (bucket interpolation)\n", p50, p99)
		}
	}
	return b.String()
}

// TraceHistograms derives miss-latency histograms from a trace alone, by
// pairing each miss event with the first later install event of the same
// processor and block and bucketing the elapsed virtual time. The keys are
// the install grant kinds ("shared", "exclusive", "upgrade"); home-node
// distance is not recoverable from the trace, so unlike the exact
// Snapshot.Histograms there is no local/remote split. Misses that never
// install (e.g. merged or superseded requests, or a truncated trace) are
// reported in the returned unmatched count.
func TraceHistograms(events []protocol.TraceEvent) (map[string]Histogram, int) {
	type pb struct{ proc, blk int }
	pending := map[pb][]protocol.TraceEvent{}
	var counts = map[string][stats.NumLatencyBuckets]int64{}
	var totals = map[string]int64{}
	unmatched := 0
	for _, e := range events {
		switch e.Op {
		case "miss":
			k := pb{e.Proc, e.BaseLine}
			pending[k] = append(pending[k], e)
		case "install":
			k := pb{e.Proc, e.BaseLine}
			q := pending[k]
			if len(q) == 0 {
				continue
			}
			m := q[0]
			if len(q) == 1 {
				delete(pending, k)
			} else {
				pending[k] = q[1:]
			}
			kind, _, _ := strings.Cut(e.Detail, " ")
			if kind == "" {
				kind = "unknown"
			}
			c := counts[kind]
			c[stats.LatencyBucket(e.Time-m.Time)]++
			counts[kind] = c
			totals[kind]++
		}
	}
	for _, q := range pending {
		unmatched += len(q)
	}
	hists := map[string]Histogram{}
	for kind, c := range counts {
		hists[kind] = trimHistogram(c, totals[kind])
	}
	return hists, unmatched
}

// FormatBreakdown renders a snapshot's per-processor breakdown as an aligned
// table: cycles per category, idle slack, the downgrade memo and the exact
// total. Deterministic for identical snapshots.
func FormatBreakdown(s *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %10s %10s %10s %10s %10s %10s %10s %12s\n",
		"proc", "task", "read", "write", "sync", "message", "other", "idle", "dgrade*", "total")
	var tot BreakdownEntry
	for _, e := range s.Breakdown {
		fmt.Fprintf(&b, "p%-4d %10d %10d %10d %10d %10d %10d %10d %10d %12d\n",
			e.Proc, e.Task, e.Read, e.Write, e.Sync, e.Message, e.Other,
			e.Idle, e.Downgrade, e.Total)
		tot.Task += e.Task
		tot.Read += e.Read
		tot.Write += e.Write
		tot.Sync += e.Sync
		tot.Message += e.Message
		tot.Other += e.Other
		tot.Idle += e.Idle
		tot.Downgrade += e.Downgrade
		tot.Total += e.Total
	}
	fmt.Fprintf(&b, "%-5s %10d %10d %10d %10d %10d %10d %10d %10d %12d\n",
		"sum", tot.Task, tot.Read, tot.Write, tot.Sync, tot.Message, tot.Other,
		tot.Idle, tot.Downgrade, tot.Total)
	fmt.Fprintf(&b, "parallel time %d cycles x %d procs; *downgrade overlaps message/stall time\n",
		s.Cycles, len(s.Breakdown))
	return b.String()
}

// TraceBreakdown approximates a per-processor activity profile from a trace
// alone: for each processor, the span between its first and last event and
// the number of events per op. It cannot reproduce the exact cycle
// attribution of the metrics document (use shastatrace breakdown on a
// BENCH_*.json for that); it exists so a bare trace still yields a rough
// where-did-time-go view.
func TraceBreakdown(events []protocol.TraceEvent) string {
	type span struct {
		first, last int64
		byOp        map[string]int
		n           int
	}
	procs := map[int]*span{}
	for _, e := range events {
		s := procs[e.Proc]
		if s == nil {
			s = &span{first: e.Time, last: e.Time, byOp: map[string]int{}}
			procs[e.Proc] = s
		}
		if e.Time < s.first {
			s.first = e.Time
		}
		if e.Time > s.last {
			s.last = e.Time
		}
		s.byOp[e.Op]++
		s.n++
	}
	ids := make([]int, 0, len(procs))
	for p := range procs {
		ids = append(ids, p)
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString("trace-derived activity (approximate; use a metrics snapshot for exact cycles)\n")
	for _, p := range ids {
		s := procs[p]
		fmt.Fprintf(&b, "p%-3d %8d events, active t=%d..%d (%d cycles)\n",
			p, s.n, s.first, s.last, s.last-s.first)
		for _, op := range stats.SortedKeys(s.byOp) {
			fmt.Fprintf(&b, "       %-10s %d\n", op, s.byOp[op])
		}
	}
	return b.String()
}
