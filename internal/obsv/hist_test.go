package obsv

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestEstPercentileEdgeCases pins the estimator's contract on degenerate
// inputs: empty and malformed histograms decline to estimate (ok=false)
// rather than divide by zero or return NaN-derived garbage, and the
// smallest valid input — a single non-zero bucket — interpolates within it.
func TestEstPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		h      Histogram
		q      float64
		want   int64
		wantOK bool
	}{
		{"empty", Histogram{}, 0.50, 0, false},
		{"zero-count-with-buckets", Histogram{Buckets: []int64{3}, Count: 0}, 0.50, 0, false},
		{"count-without-buckets", Histogram{Buckets: nil, Count: 7}, 0.50, 0, false},
		{"all-zero-buckets", Histogram{Buckets: []int64{0, 0, 0}, Count: 7}, 0.99, 0, false},
		{"count-exceeds-bucket-sum", Histogram{Buckets: []int64{0, 2}, Count: 10}, 0.99, 0, false},
		// Single bucket 4 covers cycles [8,16): rank 3 of 5 lands at
		// 8 + (3-0.5)/5*8 = 12; rank 5 at 8 + (5-0.5)/5*8 = 15.
		{"single-bucket-p50", Histogram{Buckets: []int64{0, 0, 0, 0, 5}, Count: 5}, 0.50, 12, true},
		{"single-bucket-p99", Histogram{Buckets: []int64{0, 0, 0, 0, 5}, Count: 5}, 0.99, 15, true},
		// One sample: every percentile interpolates inside its bucket.
		{"one-sample", Histogram{Buckets: []int64{1}, Count: 1}, 0.99, 0, true},
		// Ranks landing in the open top bucket estimate as its lower edge.
		{"open-top-bucket", Histogram{Buckets: topBucketOnly(), Count: 4}, 0.99, topBucketLo(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := estPercentile(tc.h, tc.q)
			if got != tc.want || ok != tc.wantOK {
				t.Fatalf("estPercentile(%+v, %v) = (%d, %v), want (%d, %v)",
					tc.h, tc.q, got, ok, tc.want, tc.wantOK)
			}
		})
	}
}

func topBucketOnly() []int64 {
	b := make([]int64, stats.NumLatencyBuckets)
	b[stats.NumLatencyBuckets-1] = 4
	return b
}

func topBucketLo() int64 {
	lo, _ := stats.BucketRange(stats.NumLatencyBuckets - 1)
	return lo
}

// TestFormatHistogramsDegenerate verifies rendering of empty and malformed
// histograms: sample-count lines appear, but no bar or est line does, and
// nothing NaN-like leaks into the output.
func TestFormatHistogramsDegenerate(t *testing.T) {
	out := FormatHistograms(map[string]Histogram{
		"empty":     {},
		"malformed": {Buckets: []int64{0, 0}, Count: 9},
	})
	want := "empty: 0 samples\nmalformed: 9 samples\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "est p50") {
		t.Fatalf("degenerate histograms must not produce estimates: %q", out)
	}
}
