package obsv_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/protocol"
)

// syncTraceRun executes a workload with real lock and barrier contention
// and returns its trace events plus the metrics snapshot.
func syncTraceRun(t *testing.T) ([]protocol.TraceEvent, *obsv.Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	sink := obsv.NewJSONLWriterSink(&buf)
	cluster := traceRun(t, sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	_, events, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events, cluster.Metrics()
}

func TestBuildSyncLifecycles(t *testing.T) {
	events, snap := syncTraceRun(t)
	ss := obsv.BuildSync(events)
	if ss.Gapped {
		t.Fatal("complete trace reported gapped")
	}
	if got := ss.DroppedTotal(); got != 0 {
		t.Fatalf("complete trace dropped %d lifecycles: %v", got, ss.Dropped)
	}
	// traceRun: 8 processors, one lock acquired once each, two barriers.
	if len(ss.Locks) != 1 || ss.Locks[0].ID != 0 {
		t.Fatalf("locks %+v", ss.Locks)
	}
	l := &ss.Locks[0]
	if len(l.Acquires) != 8 {
		t.Fatalf("lock 0 has %d acquires, want 8", len(l.Acquires))
	}
	if l.Contended == 0 {
		t.Fatal("8 processors on one lock produced no contended acquire")
	}
	for i := range l.Acquires {
		a := &l.Acquires[i]
		if a.Wait() < 0 || a.Hold() < 0 {
			t.Fatalf("acquire %d has negative wait/hold: %+v", i, a)
		}
		if i > 0 && a.Prev != l.Acquires[i-1].Proc {
			t.Fatalf("hand-off chain broken at %d: prev=%d, previous holder p%d",
				i, a.Prev, l.Acquires[i-1].Proc)
		}
	}
	if l.Acquires[0].Prev != -1 {
		t.Fatalf("first grant's prev is %d, want -1", l.Acquires[0].Prev)
	}
	// Two explicit barriers plus the run's implicit final barrier.
	if len(ss.Gens) != 3 {
		t.Fatalf("barrier generations %d, want 3", len(ss.Gens))
	}
	for _, g := range ss.Gens {
		if g.Arrivals != 8 || g.Departs != 8 {
			t.Fatalf("gen %d arrivals/departs %d/%d, want 8/8", g.Gen, g.Arrivals, g.Departs)
		}
		if g.Straggler < 0 || g.ArriveSkew() < 0 || g.DepartSkew() <= 0 {
			t.Fatalf("gen %d profile %+v", g.Gen, g)
		}
	}
	if len(ss.WaitFor) == 0 {
		t.Fatal("contended lock produced no wait-for edges")
	}

	// The trace-derived totals must reconcile exactly with the metrics
	// registry's per-primitive counters: both record the same instants.
	var sm *obsv.SyncMetrics
	var barWait int64
	for i := range snap.Sync {
		s := &snap.Sync[i]
		switch s.Kind {
		case "lock":
			sm = s
		case "barrier":
			barWait = s.WaitCycles
		}
	}
	if sm == nil {
		t.Fatal("snapshot has no lock sync metrics")
	}
	if int64(len(l.Acquires)) != sm.Acquires || int64(l.Contended) != sm.Contended {
		t.Fatalf("acquires %d/%d vs metrics %d/%d",
			len(l.Acquires), l.Contended, sm.Acquires, sm.Contended)
	}
	if l.WaitTotal != sm.WaitCycles || l.HoldTotal != sm.HoldCycles {
		t.Fatalf("trace wait/hold %d/%d, metrics %d/%d",
			l.WaitTotal, l.HoldTotal, sm.WaitCycles, sm.HoldCycles)
	}
	var traceBarWait int64
	for _, g := range ss.Gens {
		traceBarWait += g.WaitTotal
	}
	if traceBarWait != barWait {
		t.Fatalf("trace barrier wait %d, metrics %d", traceBarWait, barWait)
	}

	// Deterministic, non-empty reports.
	rep := obsv.FormatSync(ss, 3)
	if rep != obsv.FormatSync(obsv.BuildSync(events), 3) {
		t.Fatal("FormatSync not deterministic")
	}
	for _, want := range []string{"lock 0", "chain:", "wait-for", "critical-path share"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("sync report missing %q:\n%s", want, rep)
		}
	}
	skew := obsv.FormatSkew(ss)
	if skew != obsv.FormatSkew(obsv.BuildSync(events)) {
		t.Fatal("FormatSkew not deterministic")
	}
	for _, want := range []string{"arrive-skew", "depart-skew", "stragglers:"} {
		if !strings.Contains(skew, want) {
			t.Fatalf("skew report missing %q:\n%s", want, skew)
		}
	}
}

// TestBuildSyncGapped pins graceful degradation: a sampled trace with seq
// gaps and half-missing lifecycles yields Dropped accounting, a gapped
// warning, and a renderable report — never an error or panic.
func TestBuildSyncGapped(t *testing.T) {
	events, _ := syncTraceRun(t)
	// Drop every grant and every barrier departure: all acquires become
	// unmatched, all releases orphaned, all arrivals unmatched.
	var gapped []protocol.TraceEvent
	for _, e := range events {
		if e.Op == "sync" && (strings.HasPrefix(e.Detail, "lock-acquired") ||
			strings.HasPrefix(e.Detail, "barrier-depart")) {
			continue
		}
		gapped = append(gapped, e)
	}
	ss := obsv.BuildSync(gapped)
	if !ss.Gapped {
		t.Fatal("seq-gapped trace not flagged")
	}
	if ss.Dropped["unfinished-acquire"] != 8 {
		t.Fatalf("unfinished acquires %d, want 8: %v", ss.Dropped["unfinished-acquire"], ss.Dropped)
	}
	if ss.Dropped["release-without-acquire"] != 8 {
		t.Fatalf("orphan releases %d, want 8: %v", ss.Dropped["release-without-acquire"], ss.Dropped)
	}
	if ss.Dropped["arrive-without-depart"] != 24 {
		t.Fatalf("unmatched arrivals %d, want 24: %v", ss.Dropped["arrive-without-depart"], ss.Dropped)
	}
	if len(ss.Locks) != 0 {
		t.Fatalf("no lifecycle should survive, got %+v", ss.Locks)
	}
	// Arrival-side skew is still measurable without departures.
	if len(ss.Gens) != 3 || ss.Gens[0].Arrivals != 8 || ss.Gens[0].Departs != 0 {
		t.Fatalf("gens %+v", ss.Gens)
	}
	for _, rep := range []string{obsv.FormatSync(ss, 5), obsv.FormatSkew(ss)} {
		if !strings.Contains(rep, "dropped:") {
			t.Fatalf("degraded report lacks dropped accounting:\n%s", rep)
		}
	}
}

// TestBuildSyncPreExtension pins behavior on traces from before the sync
// enrichment: plain "lock-acquire"/"barrier" events with no grant or
// depart markers degrade to dropped lifecycles, not guesses.
func TestBuildSyncPreExtension(t *testing.T) {
	ss := obsv.BuildSync([]protocol.TraceEvent{
		{Seq: 1, Time: 10, Proc: 0, Op: "sync", BaseLine: -1, Detail: "lock-acquire id=3"},
		{Seq: 2, Time: 40, Proc: 0, Op: "sync", BaseLine: -1, Detail: "lock-release id=3"},
		{Seq: 3, Time: 50, Proc: 0, Op: "sync", BaseLine: -1, Detail: "barrier gen=0"},
		{Seq: 4, Time: 55, Proc: 1, Op: "sync", BaseLine: -1, Detail: "barrier gen=0"},
	})
	if len(ss.Locks) != 0 || len(ss.Gens) != 1 {
		t.Fatalf("locks %v gens %v", ss.Locks, ss.Gens)
	}
	if ss.Dropped["unfinished-acquire"] != 1 || ss.Dropped["release-without-acquire"] != 1 ||
		ss.Dropped["arrive-without-depart"] != 2 {
		t.Fatalf("dropped %v", ss.Dropped)
	}
}

// FuzzBuildSync feeds arbitrary event streams to the analyzer: it must
// never panic and must stay deterministic, whatever the trace claims.
func FuzzBuildSync(f *testing.F) {
	f.Add([]byte("sync\x00lock-acquire id=1\x01sync\x00lock-acquired id=1 prev=0 hops=3"))
	f.Add([]byte("sync\x00barrier gen=2\x01sync\x00barrier-depart gen=2"))
	f.Add([]byte("sync\x00lock-release id=9\x01send\x00to p1 seq=4 acks=0 id=9"))
	f.Add([]byte("sync\x00lock-acquired id=-1 prev=-5 hops=99"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var events []protocol.TraceEvent
		for i, rec := range bytes.Split(data, []byte{1}) {
			op, detail, _ := bytes.Cut(rec, []byte{0})
			events = append(events, protocol.TraceEvent{
				Seq: uint64(i * 2), Time: int64(i % 7), Proc: i % 3,
				Op: string(op), BaseLine: -1, Detail: string(detail),
			})
		}
		ss := obsv.BuildSync(events)
		if got := obsv.FormatSync(ss, 3); got != obsv.FormatSync(obsv.BuildSync(events), 3) {
			t.Fatal("FormatSync not deterministic")
		}
		if got := obsv.FormatSkew(ss); got != obsv.FormatSkew(obsv.BuildSync(events)) {
			t.Fatal("FormatSkew not deterministic")
		}
	})
}
