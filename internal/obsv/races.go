package obsv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
)

// Data-race detection over coherence traces. Shasta's fine-grain access
// control instruments every shared load and store, so the trace already
// carries the signal a race detector needs: each miss event names the block,
// the sub-block slots the triggering access touches (the r=/w= masks in its
// detail), and the issuing processor, while the synchronization traffic
// (lock and barrier messages) carries the happens-before order the program
// established. DetectRaces joins the two halves: it reconstructs
// happens-before from the trace and reports conflicting access pairs —
// same block, overlapping slot masks, at least one writer — that no
// synchronization orders.
//
// # The happens-before model
//
// Two accesses are ordered when a chain of program order and
// synchronization edges connects them:
//
//   - program order: consecutive events of one processor, in seq order
//     (BuildCausal's PrevOf edges);
//   - sync message order: a send of a LockReq/LockGrant/LockRel/
//     BarArrive/BarGo message happens before the handle that dispatched
//     it. Release→acquire ordering composes from these: the releaser's
//     LockRel reaches the lock home, whose LockGrant reaches the next
//     holder, all within the home's program order;
//   - barrier generations: every processor traces a "barrier gen=k" sync
//     event on arrival, so an access a processor issues after its own
//     gen-k arrival is ordered after everything any processor did up to
//     that processor's own gen-k arrival. This rule is what orders
//     accesses across FastSync barriers, whose intra-group release is
//     invisible shared-memory state (no BarGo reaches the members); it is
//     sound because barriers are global — a processor past its arrival
//     can only issue the access once every other processor has arrived.
//
// Data coherence messages are deliberately NOT happens-before edges. They
// order events in this execution, but the ordering is transport timing,
// not program synchronization: a race the coherence protocol happened to
// serialize this run is still a race. Excluding them is what lets the
// detector flag an unlocked counter even when the invalidation traffic
// totally ordered the conflicting writes.
//
// The sync edges are matched send→handle per message kind. BuildCausal's
// block-keyed FIFO pairing is right for latency analysis, but sync
// messages all share block -1, and two concurrent lock messages of the
// same kind from different requesters can be delivered out of send order
// (local and remote hops have different latencies). The detector therefore
// pairs LockReq/LockRel/BarArrive streams per requester — the handle's
// "from R<p>" detail names the sender — and only falls back to plain FIFO
// for LockGrant/BarGo, where the protocol guarantees at most one message
// in flight per destination (an acquirer stalls until granted; barrier
// rounds are serialized by the processor's own arrival).
//
// # Soundness caveats
//
// The trace sees misses, not loads and stores. Accesses that hit in the
// local (or sharing-group) copy of a block leave no event, as do accesses
// merged into an outstanding miss and — under SMP-Shasta — accesses
// served by hardware coherence within a sharing group. A race whose every
// conflicting access hits is invisible; a reported race is real evidence
// of unsynchronized conflicting misses, but a clean report is not a proof
// of race freedom. Private-state upgrades (privup events) carry no offset
// information and are ignored. Batch fetches record the batch's declared
// reference ranges on their miss events ("issued declared"), which
// over-approximate the body's accesses; the detector ignores those masks
// and uses the batch's touch events — the exact slots the body accessed —
// instead, so a conservative declaration cannot manufacture a conflict.
// Detection requires the complete event stream: a filtered or sampled
// trace (seq gaps) makes DetectRaces fail rather than report a spurious
// "race-free".

// syncMsgs are the message kinds whose send→handle edges carry
// happens-before; see the package commentary above.
var syncMsgs = map[string]bool{
	"LockReq": true, "LockGrant": true, "LockRel": true,
	"BarArrive": true, "BarGo": true,
}

// syncSenderIsRequester marks the sync kinds whose handle detail ("from
// R<p>") names the sending processor, enabling exact per-sender pairing.
var syncSenderIsRequester = map[string]bool{
	"LockReq": true, "LockRel": true, "BarArrive": true,
}

// AccessSite is one side of a racing pair: a miss event standing in for
// the access that triggered it.
type AccessSite struct {
	Proc int
	Seq  uint64
	Time int64
	// Kind is the miss kind ("read", "write", "upgrade"), or "batched"
	// for the exact accesses of a batched body (a touch event).
	Kind string
	// RdMask and WrMask are the sub-block slots read and written (see
	// stats.SlotMask). Legacy traces without masks widen to the full
	// block.
	RdMask, WrMask uint64
}

// RaceWitness explains why the two accesses are unordered: the latest
// event of the first access's processor that IS ordered before the second
// access. Everything that processor did afterwards — including the racing
// access, After events later — is concurrent with the second access.
type RaceWitness struct {
	// Ok is false when no event of the first processor is ordered before
	// the second access at all (the accesses are fully concurrent).
	Ok   bool
	Seq  uint64
	Time int64
	Op   string
	Msg  string
	// Prim names the synchronization primitive of the witness event
	// ("lock <id>" or "barrier"; see SyncPrim), "" when the witness is
	// not a sync event: the sync edge whose ordering the race escaped.
	Prim string
	// After counts the first processor's events from the witness to the
	// racing access: the length of the unordered suffix the race sits in.
	After int
}

// Race is one detected data race: two conflicting accesses to the same
// block, overlapping in at least one slot with at least one writer, that
// happens-before does not order. First precedes Second in trace order.
// Races are deduplicated per (block, processor pair); the reported pair is
// the one with the shortest unordered witness for that combination.
type Race struct {
	Block int
	// Overlap is the conflicting slot overlap:
	// (First.Wr & Second.RdWr) | (Second.Wr & First.RdWr).
	Overlap uint64
	First   AccessSite
	Second  AccessSite
	Witness RaceWitness
}

// RaceReport is the outcome of a race-detection pass.
type RaceReport struct {
	// Races lists the detected races in trace order of their second
	// access (ties broken by ascending first-access processor).
	Races []Race
	// Accesses counts the miss events examined as accesses.
	Accesses int
	// Blocks counts the distinct blocks with at least one access.
	Blocks int
	// Events is the total trace length.
	Events int
	// SyncEdges counts the matched sync send→handle edges.
	SyncEdges int
	// Warnings lists non-fatal anomalies (legacy mask-less miss details,
	// unmatched sync messages).
	Warnings []string
}

// genPo records one barrier arrival: the generation and the arriving
// processor's program-order index at the arrival event.
type genPo struct {
	gen, po int
}

// access is the detector's record of one miss event.
type access struct {
	po       int // 1-based program-order index within the processor
	eventIdx int
	rd, wr   uint64
	kind     string
}

// syncKey identifies one sync message stream: kind, sending processor
// (-1 for the kinds matched FIFO per destination) and destination.
type syncKey struct {
	msg string
	src int
	dst int
}

// racePair dedups reported races per block and unordered processor pair.
type racePair struct {
	blk, lo, hi int
}

type blockAccesses struct {
	perProc [][]access // indexed by processor
}

type raceDetector struct {
	events []protocol.TraceEvent
	np     int

	po   []int     // per-processor program-order counter
	vc   [][]int   // per-processor happens-before frontier (vector clock)
	evOf [][]int   // per-processor event indices in program order
	arr  [][]genPo // per-processor barrier arrivals, ascending gen

	sendVC      map[int][]int // sync send event index -> frontier snapshot
	pendingSync map[syncKey][]int
	blocks      map[int]*blockAccesses
	seen        map[racePair]bool

	legacyMasks       int
	orphanSyncSends   int
	orphanSyncHandles int

	rep *RaceReport
}

// DetectRaces runs the race-detection pass over a complete trace (events
// in seq order, as read from a trace file). It returns an error — not a
// clean report — when the trace cannot support sound detection: seq gaps
// (a filtered or sampled trace) or a non-monotone seq order.
func DetectRaces(events []protocol.TraceEvent) (*RaceReport, error) {
	c := BuildCausal(events)
	if c.Gapped {
		return nil, fmt.Errorf("trace has seq gaps (filtered or sampled trace): race detection needs the complete event stream; re-record without filtering or sampling")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			return nil, fmt.Errorf("trace seq not strictly increasing at event %d (seq %d after %d): not a valid trace order", i, events[i].Seq, events[i-1].Seq)
		}
	}
	np := 0
	for i := range events {
		if events[i].Proc+1 > np {
			np = events[i].Proc + 1
		}
	}
	d := &raceDetector{
		events:      events,
		np:          np,
		po:          make([]int, np),
		vc:          make([][]int, np),
		evOf:        make([][]int, np),
		arr:         make([][]genPo, np),
		sendVC:      map[int][]int{},
		pendingSync: map[syncKey][]int{},
		blocks:      map[int]*blockAccesses{},
		seen:        map[racePair]bool{},
		rep:         &RaceReport{Events: len(events)},
	}
	for p := range d.vc {
		d.vc[p] = make([]int, np)
	}
	for i := range events {
		d.step(i)
	}
	d.rep.Blocks = len(d.blocks)
	if d.legacyMasks > 0 {
		d.rep.Warnings = append(d.rep.Warnings, fmt.Sprintf(
			"%d miss events carry no offset masks (pre-mask trace); each treated as a whole-block access", d.legacyMasks))
	}
	if d.orphanSyncHandles > 0 {
		d.rep.Warnings = append(d.rep.Warnings, fmt.Sprintf(
			"%d sync handles without a visible send; their happens-before edges are lost", d.orphanSyncHandles))
	}
	if d.orphanSyncSends > 0 {
		d.rep.Warnings = append(d.rep.Warnings, fmt.Sprintf(
			"%d sync sends without a parseable destination", d.orphanSyncSends))
	}
	return d.rep, nil
}

// step advances the detector over one event: program order, sync edges,
// barrier arrivals, and — for misses — the race check.
func (d *raceDetector) step(i int) {
	e := &d.events[i]
	p := e.Proc
	d.po[p]++
	d.evOf[p] = append(d.evOf[p], i)
	d.vc[p][p] = d.po[p]

	switch e.Op {
	case "send":
		if !syncMsgs[e.Msg] {
			return
		}
		dst, ok := parseSendDst(e.Detail)
		if !ok {
			d.orphanSyncSends++
			return
		}
		src := -1
		if syncSenderIsRequester[e.Msg] {
			src = p
		}
		k := syncKey{e.Msg, src, dst}
		d.pendingSync[k] = append(d.pendingSync[k], i)
		snap := make([]int, d.np)
		copy(snap, d.vc[p])
		d.sendVC[i] = snap
	case "handle":
		if !syncMsgs[e.Msg] {
			return
		}
		src := -1
		if syncSenderIsRequester[e.Msg] {
			r, ok := parseHandleRequester(e.Detail)
			if !ok {
				d.orphanSyncHandles++
				return
			}
			src = r
		}
		k := syncKey{e.Msg, src, p}
		q := d.pendingSync[k]
		if len(q) == 0 {
			d.orphanSyncHandles++
			return
		}
		s := q[0]
		if len(q) == 1 {
			delete(d.pendingSync, k)
		} else {
			d.pendingSync[k] = q[1:]
		}
		sv := d.sendVC[s]
		delete(d.sendVC, s)
		for j, v := range sv {
			if v > d.vc[p][j] {
				d.vc[p][j] = v
			}
		}
		d.rep.SyncEdges++
	case "sync":
		var gen int
		if n, err := fmt.Sscanf(e.Detail, "barrier gen=%d", &gen); n == 1 && err == nil {
			d.arr[p] = append(d.arr[p], genPo{gen, d.po[p]})
		}
	case "miss":
		kind, rd, wr, declared, legacy := parseMissMasks(e.Detail)
		if declared {
			// A batch fetch: the masks are the batch's declared reference
			// ranges, which over-approximate. The batch's touch events
			// carry the exact accesses.
			return
		}
		if legacy {
			d.legacyMasks++
		}
		d.access(i, kind, rd, wr)
	case "touch":
		var rd, wr uint64
		if n, err := fmt.Sscanf(e.Detail, "r=%x w=%x", &rd, &wr); n == 2 && err == nil {
			d.access(i, "batched", rd, wr)
		}
	}
}

// access race-checks one access event (a plain miss, or a batch touch)
// against the unordered suffix of every other processor's accesses to the
// same block, then records it.
func (d *raceDetector) access(i int, kind string, rd, wr uint64) {
	e := &d.events[i]
	p := e.Proc
	d.rep.Accesses++
	b := e.BaseLine
	ba := d.blocks[b]
	if ba == nil {
		ba = &blockAccesses{perProc: make([][]access, d.np)}
		d.blocks[b] = ba
	}
	a := access{po: d.po[p], eventIdx: i, rd: rd, wr: wr, kind: kind}
	// barK is the latest barrier generation p has arrived at; since the
	// access is an application event, the barrier has completed by now.
	barK := -1
	if n := len(d.arr[p]); n > 0 {
		barK = d.arr[p][n-1].gen
	}
	for q := 0; q < d.np; q++ {
		if q == p || len(ba.perProc[q]) == 0 {
			continue
		}
		pair := racePair{b, minInt(p, q), maxInt(p, q)}
		if d.seen[pair] {
			continue
		}
		// bound is the highest program-order index of q ordered before
		// this access: the sync-edge frontier, raised by the barrier rule.
		bound := d.vc[p][q]
		if bb := d.barBound(q, barK); bb > bound {
			bound = bb
		}
		// Accesses of q above the bound are concurrent with this one.
		// Scanning the whole unordered suffix and keeping the earliest
		// conflict yields the shortest witness (the race closest to the
		// last ordered point).
		list := ba.perProc[q]
		var conflict *access
		var overlap uint64
		for j := len(list) - 1; j >= 0; j-- {
			f := &list[j]
			if f.po <= bound {
				break
			}
			if ov := (f.wr & (rd | wr)) | (wr & (f.rd | f.wr)); ov != 0 {
				conflict, overlap = f, ov
			}
		}
		if conflict != nil {
			d.seen[pair] = true
			d.record(b, overlap, q, conflict, bound, i, kind, rd, wr)
		}
	}
	ba.perProc[p] = append(ba.perProc[p], a)
}

// barBound returns the highest program-order index of q covered by the
// barrier rule: q's arrival index at the latest generation ≤ barK it
// arrived at (on a complete trace of a completed barrier this is barK
// itself, since barriers are global).
func (d *raceDetector) barBound(q, barK int) int {
	if barK < 0 {
		return 0
	}
	a := d.arr[q]
	j := sort.Search(len(a), func(i int) bool { return a[i].gen > barK }) - 1
	if j < 0 {
		return 0
	}
	return a[j].po
}

// record captures one race: first access by q (earlier in the trace),
// second the current miss event, witness derived from the ordered bound.
func (d *raceDetector) record(b int, overlap uint64, q int, first *access, bound, secondIdx int, kind string, rd, wr uint64) {
	fe := &d.events[first.eventIdx]
	se := &d.events[secondIdx]
	r := Race{
		Block:   b,
		Overlap: overlap,
		First: AccessSite{Proc: fe.Proc, Seq: fe.Seq, Time: fe.Time,
			Kind: first.kind, RdMask: first.rd, WrMask: first.wr},
		Second: AccessSite{Proc: se.Proc, Seq: se.Seq, Time: se.Time,
			Kind: kind, RdMask: rd, WrMask: wr},
	}
	if bound > 0 {
		we := &d.events[d.evOf[q][bound-1]]
		r.Witness = RaceWitness{Ok: true, Seq: we.Seq, Time: we.Time,
			Op: we.Op, Msg: we.Msg, Prim: SyncPrim(we.Op, we.Msg, we.Detail),
			After: first.po - bound}
	}
	d.rep.Races = append(d.rep.Races, r)
}

// parseMissMasks extracts the miss kind and slot masks from a miss event's
// detail ("<kind> issued r=<hex> w=<hex>: <state>"). Batch fetches carry
// "issued declared" and report declared=true. Legacy traces without masks
// degrade to whole-block masks, flagged by legacy.
func parseMissMasks(detail string) (kind string, rd, wr uint64, declared, legacy bool) {
	if n, err := fmt.Sscanf(detail, "%s issued r=%x w=%x", &kind, &rd, &wr); n == 3 && err == nil {
		return kind, rd, wr, false, false
	}
	if n, err := fmt.Sscanf(detail, "%s issued declared r=%x w=%x", &kind, &rd, &wr); n == 3 && err == nil {
		return kind, rd, wr, true, false
	}
	kind, _, _ = strings.Cut(detail, " ")
	const full = ^uint64(0)
	switch kind {
	case "read":
		return kind, full, 0, false, true
	case "write", "upgrade":
		return kind, 0, full, false, true
	default:
		return kind, full, full, false, true
	}
}

// parseHandleRequester extracts the requesting processor from a handle
// event's detail ("from R<p> ...").
func parseHandleRequester(detail string) (int, bool) {
	var r int
	if n, err := fmt.Sscanf(detail, "from R%d", &r); n == 1 && err == nil {
		return r, true
	}
	return 0, false
}

// Format renders the report deterministically: a one-line verdict, the
// warnings, then one stanza per race with both access sites and the
// unordered witness.
func (r *RaceReport) Format() string {
	var b strings.Builder
	if len(r.Races) == 0 {
		fmt.Fprintf(&b, "ok: no data races: %d accesses on %d blocks, %d events, %d sync edges\n",
			r.Accesses, r.Blocks, r.Events, r.SyncEdges)
	} else {
		noun := "data races"
		if len(r.Races) == 1 {
			noun = "data race"
		}
		fmt.Fprintf(&b, "RACES: %d %s: %d accesses on %d blocks, %d events, %d sync edges\n",
			len(r.Races), noun, r.Accesses, r.Blocks, r.Events, r.SyncEdges)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	for i, rc := range r.Races {
		fmt.Fprintf(&b, "race %d: blk%d overlap=%x\n", i+1, rc.Block, rc.Overlap)
		site := func(tag string, s AccessSite) {
			fmt.Fprintf(&b, "  [%s] %-7s by p%-3d seq=%-8d t=%-10d r=%x w=%x\n",
				tag, s.Kind, s.Proc, s.Seq, s.Time, s.RdMask, s.WrMask)
		}
		site("a", rc.First)
		site("b", rc.Second)
		if rc.Witness.Ok {
			ev := rc.Witness.Op
			if rc.Witness.Msg != "" {
				ev += " " + rc.Witness.Msg
			}
			if rc.Witness.Prim != "" {
				ev += " [" + rc.Witness.Prim + "]"
			}
			fmt.Fprintf(&b, "  witness: p%d's last event ordered before [b] is seq=%d t=%d (%s); [a] follows %d p%d events later, unordered with [b]\n",
				rc.First.Proc, rc.Witness.Seq, rc.Witness.Time, ev, rc.Witness.After, rc.First.Proc)
		} else {
			fmt.Fprintf(&b, "  witness: no p%d event is ordered before [b]; the accesses are fully concurrent\n",
				rc.First.Proc)
		}
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
