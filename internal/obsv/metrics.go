package obsv

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// MetricsSchema names the metrics document format, and MetricsVersion its
// current version. The field names of Snapshot and its sub-structs are part
// of the versioned contract (see OBSERVABILITY.md): removing or renaming a
// field requires a version bump; adding fields does not.
const (
	MetricsSchema  = "shasta-metrics"
	MetricsVersion = 1
)

// ConfigInfo records the run configuration a snapshot was taken under.
type ConfigInfo struct {
	Procs        int    `json:"procs"`
	ProcsPerNode int    `json:"procs_per_node"`
	Clustering   int    `json:"clustering"`
	LineSize     int    `json:"line_size"`
	Hardware     bool   `json:"hardware"`
	Variant      string `json:"variant"` // "base", "smp" or "hardware"
}

// Totals aggregates counters across all processors.
type Totals struct {
	// Misses maps "<kind>-<hops>hop" (e.g. "read-2hop") to miss counts,
	// with only non-zero entries present.
	Misses      map[string]int64 `json:"misses"`
	TotalMisses int64            `json:"total_misses"`
	// Messages maps the Figure 7 classes ("remote", "local", "downgrade")
	// to protocol message counts.
	Messages      map[string]int64 `json:"messages"`
	TotalMessages int64            `json:"total_messages"`
	// TimeBy maps the Figure 4/5 breakdown categories ("task", "read",
	// "write", "sync", "message", "other") to cycles summed across
	// processors.
	TimeBy map[string]int64 `json:"time_by"`
	// Downgrades[n] counts block downgrades that required n downgrade
	// messages (Figure 8).
	Downgrades [stats.MaxDowngradeFanout + 1]int64 `json:"downgrades"`

	MergedMisses int64 `json:"merged_misses"`
	LocalHits    int64 `json:"local_hits"`
	Checks       int64 `json:"checks"`
	FalseMisses  int64 `json:"false_misses"`
	StallEvents  int64 `json:"stall_events"`

	// Handler occupancy: cycles spent in top-level protocol message
	// dispatches, and how many there were.
	HandlerCycles int64 `json:"handler_cycles"`
	HandlerEvents int64 `json:"handler_events"`
	// Line-lock hold time (SMP-Shasta only; zero under Base-Shasta).
	LockHoldCycles int64 `json:"lock_hold_cycles"`
	LockAcquires   int64 `json:"lock_acquires"`

	// Online home migrations decided and tombstone forwards relayed
	// (zero unless the protocol's Migrate option is enabled; compatible
	// snapshot extension).
	Migrations  int64 `json:"migrations,omitempty"`
	MigForwards int64 `json:"mig_forwards,omitempty"`

	AvgReadLatencyMicros float64 `json:"avg_read_latency_us"`
}

// NetworkMetrics snapshots the interconnect model's counters.
type NetworkMetrics struct {
	RemoteSends int64 `json:"remote_sends"`
	LocalSends  int64 `json:"local_sends"`
	RemoteBytes int64 `json:"remote_bytes"`
	// LinkWaitCycles is the total time messages queued behind a busy
	// Memory Channel link; MaxLinkBacklogCycles the largest single wait.
	LinkWaitCycles       int64 `json:"link_wait_cycles"`
	MaxLinkBacklogCycles int64 `json:"max_link_backlog_cycles"`
	// LinkBusyCycles is, per node, the cycles its outgoing link spent
	// serializing data.
	LinkBusyCycles []int64 `json:"link_busy_cycles"`
	// PeakInboxDepth is, per processor, the deepest its simulation inbox
	// ever got.
	PeakInboxDepth []int `json:"peak_inbox_depth"`
}

// ProcMetrics is one processor's slice of the counters.
type ProcMetrics struct {
	Proc           int              `json:"proc"`
	TimeBy         map[string]int64 `json:"time_by"`
	Misses         map[string]int64 `json:"misses"`
	Messages       map[string]int64 `json:"messages"`
	HandlerCycles  int64            `json:"handler_cycles"`
	HandlerEvents  int64            `json:"handler_events"`
	LockHoldCycles int64            `json:"lock_hold_cycles"`
	LockAcquires   int64            `json:"lock_acquires"`
	Checks         int64            `json:"checks"`
}

// BreakdownEntry is one processor's row of the measured execution-time
// profile (the paper's Figure 4/5 bars, in cycles rather than fractions).
// The six category fields plus Idle sum exactly to Total, and Total equals
// the snapshot's Cycles; Downgrade is an overlapping memo (cycles already
// counted under Message or the enclosing stall category) isolating the
// SMP-Shasta downgrade machinery. Added in a compatible extension of
// metrics v1.
type BreakdownEntry struct {
	Proc      int   `json:"proc"`
	Task      int64 `json:"task"`
	Read      int64 `json:"read"`
	Write     int64 `json:"write"`
	Sync      int64 `json:"sync"`
	Message   int64 `json:"message"`
	Other     int64 `json:"other"`
	Idle      int64 `json:"idle"`
	Downgrade int64 `json:"downgrade"`
	Total     int64 `json:"total"`
}

// Histogram is a fixed-bucket latency histogram: Buckets[b] counts samples
// in [2^(b-1), 2^b) cycles (bucket 0 counts zero-cycle samples), with
// trailing zero buckets trimmed. The power-of-two buckets make histograms of
// identical runs byte-identical. Added in a compatible extension of metrics
// v1.
type Histogram struct {
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
}

// SyncMetrics is one application synchronization primitive's row of the
// per-primitive contention table: a lock allocated by AllocLock, or the
// global barrier. Counters are summed across processors from the
// requester-side shards; unlike the other counters they cover the whole run
// (they are not reset by mid-run stat resets), so they reconcile exactly
// with totals derived from a full trace. Added in a compatible extension of
// metrics v1 (see OBSERVABILITY.md §12).
type SyncMetrics struct {
	Kind string `json:"kind"` // "lock" or "barrier"
	ID   int    `json:"id"`
	// Acquires counts completed lock acquisitions, Contended the subset
	// granted off the release path (another processor held the lock).
	Acquires  int64 `json:"acquires,omitempty"`
	Contended int64 `json:"contended,omitempty"`
	// WaitCycles is total acquire-to-grant (or barrier arrive-to-depart)
	// stall time; HoldCycles total grant-to-release time.
	WaitCycles int64 `json:"wait_cycles"`
	HoldCycles int64 `json:"hold_cycles,omitempty"`
	// Handoffs classifies lock grants by the previous holder's topological
	// distance ("self", "node", "group", "remote"); only non-zero classes
	// appear.
	Handoffs map[string]int64 `json:"handoffs,omitempty"`
	// Generations is the number of completed barrier generations.
	Generations int64 `json:"generations,omitempty"`
}

// Snapshot is the metrics document: one run's counters frozen at snapshot
// time. Because the simulator is deterministic and JSON object keys are
// emitted in sorted order, two runs of the same program and configuration
// produce byte-identical snapshots.
type Snapshot struct {
	Schema  string     `json:"schema"`
	Version int        `json:"version"`
	Config  ConfigInfo `json:"config"`
	// Cycles is the measured parallel time in cycles; Micros the same in
	// microseconds of the 300 MHz virtual clock.
	Cycles  int64          `json:"cycles"`
	Micros  float64        `json:"micros"`
	Totals  Totals         `json:"totals"`
	Network NetworkMetrics `json:"network"`
	Procs   []ProcMetrics  `json:"procs"`
	// Breakdown is the per-processor execution-time profile of the
	// measured phase (present when the run completed normally).
	Breakdown []BreakdownEntry `json:"breakdown,omitempty"`
	// Histograms maps "<kind>-<local|remote>" (miss request type crossed
	// with home-node distance, e.g. "read-remote") to miss round-trip
	// latency histograms; only non-empty histograms appear.
	Histograms map[string]Histogram `json:"histograms,omitempty"`
	// Blocks is the sharing-pattern observatory: the BlocksCap most active
	// coherence blocks with per-block counters, classified sharing pattern
	// and placement advice; BlocksTotal counts every block with attributed
	// activity. Added in a compatible extension of metrics v1 (see
	// OBSERVABILITY.md §7).
	Blocks      []BlockMetrics `json:"blocks,omitempty"`
	BlocksTotal int            `json:"blocks_total,omitempty"`
	// Sync is the per-primitive application synchronization table, sorted
	// locks-then-barrier by id. Added in a compatible extension of metrics
	// v1 (see OBSERVABILITY.md §12).
	Sync []SyncMetrics `json:"sync,omitempty"`
}

func timeByMap(p *stats.Proc) map[string]int64 {
	m := make(map[string]int64, stats.NumTimeCategories)
	for c := stats.TimeCategory(0); c < stats.NumTimeCategories; c++ {
		m[c.String()] = p.TimeBy[c]
	}
	return m
}

func missMap(p *stats.Proc) map[string]int64 {
	m := map[string]int64{}
	for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
		for i, hops := range []int{2, 3} {
			if n := p.Misses[k][i]; n > 0 {
				m[fmt.Sprintf("%s-%dhop", k, hops)] = n
			}
		}
	}
	return m
}

func msgMap(p *stats.Proc) map[string]int64 {
	m := make(map[string]int64, stats.NumMsgClasses)
	for c := stats.MsgClass(0); c < stats.NumMsgClasses; c++ {
		m[c.String()] = p.Messages[c]
	}
	return m
}

// Snap freezes the system's counters into a Snapshot. It only reads state —
// no virtual clock moves — so it can be taken at any quiescent point; the
// normal place is after System.Run returns.
func Snap(sys *protocol.System) *Snapshot {
	cfg := sys.Config()
	run := sys.Stats()
	net := sys.Network()
	eng := sys.Engine()

	variant := "base"
	switch {
	case cfg.Hardware:
		variant = "hardware"
	case cfg.SMP():
		variant = "smp"
	}

	s := &Snapshot{
		Schema:  MetricsSchema,
		Version: MetricsVersion,
		Config: ConfigInfo{
			Procs:        cfg.NumProcs,
			ProcsPerNode: cfg.ProcsPerNode,
			Clustering:   cfg.Clustering,
			LineSize:     cfg.LineSize,
			Hardware:     cfg.Hardware,
			Variant:      variant,
		},
		Cycles: run.Cycles,
		Micros: run.Microseconds(run.Cycles),
	}

	t := &s.Totals
	t.Misses = map[string]int64{}
	t.Messages = make(map[string]int64, stats.NumMsgClasses)
	t.TimeBy = make(map[string]int64, stats.NumTimeCategories)
	for c := stats.MsgClass(0); c < stats.NumMsgClasses; c++ {
		t.Messages[c.String()] = run.MessagesBy(c)
	}
	for c := stats.TimeCategory(0); c < stats.NumTimeCategories; c++ {
		t.TimeBy[c.String()] = run.TimeBy(c)
	}
	for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
		for _, hops := range []int{2, 3} {
			if n := run.MissesBy(k, hops); n > 0 {
				t.Misses[fmt.Sprintf("%s-%dhop", k, hops)] = n
			}
		}
	}
	t.TotalMisses = run.TotalMisses()
	t.TotalMessages = run.TotalMessages()
	for i := range run.Procs {
		p := &run.Procs[i]
		for n, c := range p.Downgrades {
			t.Downgrades[n] += c
		}
		t.MergedMisses += p.MergedMisses
		t.LocalHits += p.LocalHits
		t.Checks += p.ChecksExecuted
		t.FalseMisses += p.FalseMisses
		t.StallEvents += p.StallEvents
		t.Migrations += p.Migrations
		t.MigForwards += p.MigForwards
	}
	t.HandlerCycles, t.HandlerEvents = run.HandlerOccupancy()
	t.LockHoldCycles, t.LockAcquires = run.LockHolds()
	t.AvgReadLatencyMicros = run.AvgReadLatencyMicros()

	s.Network = NetworkMetrics{
		RemoteSends:          net.RemoteSends(),
		LocalSends:           net.LocalSends(),
		RemoteBytes:          net.RemoteBytes(),
		LinkWaitCycles:       net.LinkWait(),
		MaxLinkBacklogCycles: net.MaxLinkBacklog(),
		LinkBusyCycles:       net.LinkBusy(),
	}
	s.Network.PeakInboxDepth = make([]int, eng.NumProcs())
	for i := 0; i < eng.NumProcs(); i++ {
		s.Network.PeakInboxDepth[i] = eng.Proc(i).PeakInboxDepth()
	}

	for i := range run.Measured {
		m := &run.Measured[i]
		s.Breakdown = append(s.Breakdown, BreakdownEntry{
			Proc:      i,
			Task:      m.TimeBy[stats.Task],
			Read:      m.TimeBy[stats.Read],
			Write:     m.TimeBy[stats.Write],
			Sync:      m.TimeBy[stats.Sync],
			Message:   m.TimeBy[stats.Message],
			Other:     m.TimeBy[stats.Other],
			Idle:      m.Idle,
			Downgrade: m.Downgrade,
			Total:     m.Total(),
		})
	}
	for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
		for d, dist := range []string{"local", "remote"} {
			buckets, count := run.MissLatencyBy(k, d)
			if count == 0 {
				continue
			}
			if s.Histograms == nil {
				s.Histograms = map[string]Histogram{}
			}
			s.Histograms[fmt.Sprintf("%s-%s", k, dist)] = trimHistogram(buckets, count)
		}
	}

	s.Blocks, s.BlocksTotal = buildBlocks(sys)

	ids, syncTotals := run.SyncTotals()
	for i, id := range ids {
		st := &syncTotals[i]
		sm := SyncMetrics{
			Kind:        id.Kind.String(),
			ID:          id.ID,
			Acquires:    st.Acquires,
			Contended:   st.Contended,
			WaitCycles:  st.WaitCycles,
			HoldCycles:  st.HoldCycles,
			Generations: st.Generations,
		}
		for c, n := range st.Handoffs {
			if n > 0 {
				if sm.Handoffs == nil {
					sm.Handoffs = map[string]int64{}
				}
				sm.Handoffs[stats.HandoffClassName(c)] = n
			}
		}
		s.Sync = append(s.Sync, sm)
	}

	s.Procs = make([]ProcMetrics, len(run.Procs))
	for i := range run.Procs {
		p := &run.Procs[i]
		s.Procs[i] = ProcMetrics{
			Proc:           i,
			TimeBy:         timeByMap(p),
			Misses:         missMap(p),
			Messages:       msgMap(p),
			HandlerCycles:  p.HandlerCycles,
			HandlerEvents:  p.HandlerEvents,
			LockHoldCycles: p.LockHoldCycles,
			LockAcquires:   p.LockAcquires,
			Checks:         p.ChecksExecuted,
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (with a trailing newline).
// Go sorts JSON object keys, so the output is deterministic.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSnapshot parses a metrics document, validating its schema name and
// version.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obsv: bad metrics document: %w", err)
	}
	if s.Schema != MetricsSchema {
		return nil, fmt.Errorf("obsv: not a %s document (schema %q)", MetricsSchema, s.Schema)
	}
	if s.Version > MetricsVersion {
		return nil, fmt.Errorf("obsv: metrics version %d is newer than supported version %d",
			s.Version, MetricsVersion)
	}
	return &s, nil
}
