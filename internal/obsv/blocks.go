package obsv

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// The sharing-pattern observatory: aggregates the per-processor per-block
// counter shards into a classified view of how each hot block is shared,
// plus a placement advisor estimating the best home node for its observed
// miss traffic. Everything here is derived purely from the append-only
// counters, so the analysis of identical runs is byte-identical regardless
// of the simulation scheduler.

// BlocksCap bounds the snapshot's blocks section: the BlocksCap most active
// blocks are kept (sorted by activity descending, block ascending) and
// BlocksTotal records how many distinct blocks had attributed activity.
const BlocksCap = 128

// The sharing-pattern labels the classifier assigns.
const (
	PatternReadOnly         = "read-only"
	PatternSingleWriter     = "single-writer"
	PatternProducerConsumer = "producer-consumer"
	PatternMigratory        = "migratory"
	PatternPingPong         = "ping-pong"
	PatternFalselyShared    = "falsely-shared"
	PatternMultiWriter      = "multi-writer"
)

// Leg weights for the placement advisor's hop cost model, in cycles. A
// remote leg crosses the Memory Channel (1200-cycle wire plus send and
// handler occupancy); a local leg stays within an SMP node. The absolute
// values matter less than their ratio: what the advisor minimizes is the
// number of remote legs weighted by how often each leg is traversed.
const (
	remoteLegCycles = 1800
	localLegCycles  = 600
)

// BlockAccess is one processor's attributed activity on a block. The masks
// are the sub-block slot sets of stats.BlockSlots, rendered as hex strings.
type BlockAccess struct {
	Proc        int    `json:"proc"`
	Misses      int64  `json:"misses"`
	WriteMisses int64  `json:"write_misses"`
	InvalsRecv  int64  `json:"invals_recv,omitempty"`
	ReadMask    string `json:"read_mask,omitempty"`
	WriteMask   string `json:"write_mask,omitempty"`
}

// BlockMetrics is one coherence block's row of the metrics document's
// blocks section: aggregated counters, the classified sharing pattern, and
// the placement advisor's verdict. Added in a compatible extension of
// metrics v1.
type BlockMetrics struct {
	// Block is the block's base line index and Bytes its size.
	Block int `json:"block"`
	Bytes int `json:"bytes"`
	// Home is the configured home processor, HomeNode its SMP node.
	Home     int `json:"home"`
	HomeNode int `json:"home_node"`
	// Pattern is the classified sharing pattern (see OBSERVABILITY.md §7).
	Pattern string `json:"pattern"`
	// Misses maps "<kind>-<hops>hop" to miss counts (non-zero entries
	// only), TotalMisses their sum.
	Misses      map[string]int64 `json:"misses"`
	TotalMisses int64            `json:"total_misses"`

	InvalsRecv    int64 `json:"invals_recv"`
	InvalsSent    int64 `json:"invals_sent"`
	Downgrades    int64 `json:"downgrades"`
	DowngradeMsgs int64 `json:"downgrade_msgs"`

	// Readers and Writers are the distinct processors whose missing loads
	// (resp. stores or ownership requests) touched the block.
	Readers []int `json:"readers,omitempty"`
	Writers []int `json:"writers,omitempty"`
	// Accesses breaks the activity down per processor, with the sub-block
	// offset masks that are the false-sharing evidence.
	Accesses []BlockAccess `json:"accesses,omitempty"`

	// The placement advisor: AdvisedNode is the home node minimizing the
	// hop-weighted cost of the block's observed misses, HomeCost and
	// AdvisedCost the estimated cycle costs under the configured and
	// advised homes, and SavingsCycles their difference (zero when the
	// configured home is already optimal).
	AdvisedNode   int   `json:"advised_node"`
	HomeCost      int64 `json:"home_cost"`
	AdvisedCost   int64 `json:"advised_cost"`
	SavingsCycles int64 `json:"savings_cycles"`
	// SizeHint flags blocks whose pattern predicts a different block size
	// would win: "smaller" for falsely-shared blocks, "larger" for runs of
	// adjacent blocks with identical stable sharing.
	SizeHint string `json:"size_hint,omitempty"`
}

// maskHex renders an access mask for the JSON document; zero masks are
// omitted entirely (omitempty).
func maskHex(m uint64) string {
	if m == 0 {
		return ""
	}
	return fmt.Sprintf("0x%x", m)
}

// ParseMask is the inverse of maskHex: it decodes a snapshot's hex access
// mask (empty or malformed strings decode to zero, matching omitempty).
func ParseMask(s string) uint64 {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// disjointMasks reports whether at least two masks are non-zero and all
// non-zero masks are pairwise disjoint — the offset-level evidence that
// writers share the block's coherence unit but not its data.
func disjointMasks(masks []uint64) bool {
	var seen uint64
	n := 0
	for _, m := range masks {
		if m == 0 {
			continue
		}
		if seen&m != 0 {
			return false
		}
		seen |= m
		n++
	}
	return n >= 2
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// classifyBlock assigns the sharing pattern from the aggregated evidence.
// readers and writers are sorted distinct processor sets; wmasks the
// writers' offset masks; upgrades the block's upgrade-miss total.
func classifyBlock(readers, writers []int, wmasks []uint64, misses, invals, upgrades int64) string {
	switch {
	case len(writers) == 0:
		return PatternReadOnly
	case len(writers) == 1:
		if len(readers) == 0 || (len(readers) == 1 && readers[0] == writers[0]) {
			return PatternSingleWriter
		}
		return PatternProducerConsumer
	}
	// Multiple writers invalidating each other. Disjoint offsets mean the
	// contention is an artifact of the block size: false sharing.
	if disjointMasks(wmasks) && (invals > 0 || misses > 0) {
		return PatternFalselyShared
	}
	// Every writer also reads and vice versa: ownership migrates with a
	// read-modify-write pattern (locks, reduction cells).
	if sameInts(readers, writers) {
		return PatternMigratory
	}
	if invals > 0 || upgrades > 0 {
		return PatternPingPong
	}
	return PatternMultiWriter
}

// adviseHome estimates, for each candidate home node, the hop-weighted cost
// of the block's observed misses, and returns the configured home's cost,
// the best node and its cost. A miss travels requester→home, then either
// home→requester (the owner is at home: 2 hops) or home→owner→requester
// (3 hops); each leg costs remoteLegCycles across nodes, localLegCycles
// within one. The probability the owner sits on a given node is estimated
// from the per-processor write/upgrade miss counts (a block's owner is its
// last writer); with no observed writers the block is read-only after init
// and every miss is served by the home in 2 hops.
//
// Tie-breaking is part of the advisor's contract: when candidate homes have
// equal hop-weighted cost, the configured home wins, then the lowest node
// id. The protocol's online migration trigger evaluates the same model with
// the same tie-break (see internal/protocol), so advice and migration
// decisions can never flap between equal-cost homes.
func adviseHome(accesses []BlockAccess, homeNode, numNodes, ppn int) (homeCost, bestCost int64, bestNode int) {
	nodeOf := func(p int) int { return p / ppn }
	leg := func(a, b int) int64 {
		if a == b {
			return localLegCycles
		}
		return remoteLegCycles
	}
	var w int64
	for _, a := range accesses {
		w += a.WriteMisses
	}
	cost := func(h int) int64 {
		var c int64
		for _, r := range accesses {
			if r.Misses == 0 {
				continue
			}
			rn := nodeOf(r.Proc)
			if w == 0 {
				c += r.Misses * (leg(rn, h) + leg(h, rn))
				continue
			}
			for _, o := range accesses {
				if o.WriteMisses == 0 {
					continue
				}
				on := nodeOf(o.Proc)
				path := leg(rn, h)
				if on == h {
					path += leg(h, rn)
				} else {
					path += leg(h, on) + leg(on, rn)
				}
				c += r.Misses * o.WriteMisses * path
			}
		}
		return c
	}
	raw := make([]int64, numNodes)
	for h := 0; h < numNodes; h++ {
		raw[h] = cost(h)
	}
	// Deterministic tie-break: start from the configured home and displace
	// it only for a strictly cheaper candidate; scanning in ascending node
	// order with a strict comparison keeps the lowest id among equal-cost
	// strict improvements.
	bestNode = homeNode
	if bestNode < 0 || bestNode >= numNodes {
		bestNode = 0
	}
	for h := 0; h < numNodes; h++ {
		if raw[h] < raw[bestNode] {
			bestNode = h
		}
	}
	homeCost, bestCost = raw[homeNode], raw[bestNode]
	if w > 0 {
		// The owner weights scaled every term by the total write count;
		// normalize so costs read as cycles over the block's misses.
		homeCost /= w
		bestCost /= w
	}
	return homeCost, bestCost, bestNode
}

// buildBlocks aggregates the per-processor block shards into the snapshot's
// blocks section. It returns the BlocksCap most active blocks and the total
// number of active blocks.
func buildBlocks(sys *protocol.System) ([]BlockMetrics, int) {
	run := sys.Stats()
	lay := sys.Layout()
	cfg := sys.Config()
	ppn := cfg.ProcsPerNode
	if ppn < 1 {
		ppn = 1
	}
	if cfg.NumProcs < ppn {
		ppn = cfg.NumProcs
	}
	numNodes := (cfg.NumProcs + ppn - 1) / ppn

	byBlock := map[int]map[int]*stats.BlockStat{}
	for pid := range run.Procs {
		for blk, b := range run.Procs[pid].Blocks {
			m := byBlock[blk]
			if m == nil {
				m = map[int]*stats.BlockStat{}
				byBlock[blk] = m
			}
			m[pid] = b
		}
	}
	if len(byBlock) == 0 {
		return nil, 0
	}

	ids := make([]int, 0, len(byBlock))
	for blk := range byBlock {
		ids = append(ids, blk)
	}
	sort.Ints(ids)

	entries := make([]BlockMetrics, 0, len(ids))
	byID := map[int]*BlockMetrics{}
	for _, blk := range ids {
		shards := byBlock[blk]
		_, lines := lay.BlockOf(lay.LineAddr(blk))
		home := sys.HomeOf(blk)
		e := BlockMetrics{
			Block:    blk,
			Bytes:    lines * lay.LineSize(),
			Home:     home,
			HomeNode: home / ppn,
			Misses:   map[string]int64{},
		}
		pids := make([]int, 0, len(shards))
		for pid := range shards {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		var wmasks []uint64
		var upgrades int64
		for _, pid := range pids {
			b := shards[pid]
			var miss, wmiss int64
			for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
				for i, hops := range []int{2, 3} {
					n := b.Misses[k][i]
					if n == 0 {
						continue
					}
					miss += n
					e.Misses[fmt.Sprintf("%s-%dhop", k, hops)] += n
					if k != stats.ReadMiss {
						wmiss += n
					}
					if k == stats.UpgradeMiss {
						upgrades += n
					}
				}
			}
			e.TotalMisses += miss
			e.InvalsRecv += b.InvalsRecv
			e.InvalsSent += b.InvalsSent
			e.Downgrades += b.Downgrades
			e.DowngradeMsgs += b.DowngradeMsgs
			e.Accesses = append(e.Accesses, BlockAccess{
				Proc:        pid,
				Misses:      miss,
				WriteMisses: wmiss,
				InvalsRecv:  b.InvalsRecv,
				ReadMask:    maskHex(b.ReadMask),
				WriteMask:   maskHex(b.WriteMask),
			})
			if b.ReadMask != 0 || miss-wmiss > 0 {
				e.Readers = append(e.Readers, pid)
			}
			if b.WriteMask != 0 || wmiss > 0 {
				e.Writers = append(e.Writers, pid)
				wmasks = append(wmasks, b.WriteMask)
			}
		}
		e.Pattern = classifyBlock(e.Readers, e.Writers, wmasks,
			e.TotalMisses, e.InvalsRecv+e.InvalsSent, upgrades)
		e.HomeCost, e.AdvisedCost, e.AdvisedNode =
			adviseHome(e.Accesses, e.HomeNode, numNodes, ppn)
		if e.AdvisedNode != e.HomeNode && e.HomeCost > e.AdvisedCost {
			e.SavingsCycles = e.HomeCost - e.AdvisedCost
		} else {
			// Ties keep the configured home; report it as optimal.
			e.AdvisedNode = e.HomeNode
			e.AdvisedCost = e.HomeCost
		}
		if e.Pattern == PatternFalselyShared {
			e.SizeHint = "smaller"
		}
		entries = append(entries, e)
		byID[blk] = &entries[len(entries)-1]
	}

	// Adjacent blocks with the same stable pattern and identical sharer
	// sets would amortize miss overhead under a coarser granularity.
	for _, e := range entries {
		if e.SizeHint != "" {
			continue
		}
		switch e.Pattern {
		case PatternReadOnly, PatternSingleWriter, PatternProducerConsumer:
		default:
			continue
		}
		next := byID[e.Block+e.Bytes/lay.LineSize()]
		if next == nil || next.SizeHint == "smaller" || next.Pattern != e.Pattern ||
			!sameInts(next.Readers, e.Readers) || !sameInts(next.Writers, e.Writers) {
			continue
		}
		byID[e.Block].SizeHint = "larger"
		next.SizeHint = "larger"
	}

	total := len(entries)
	sort.SliceStable(entries, func(i, j int) bool {
		ai := entries[i].TotalMisses + entries[i].InvalsRecv + entries[i].InvalsSent + entries[i].Downgrades
		aj := entries[j].TotalMisses + entries[j].InvalsRecv + entries[j].InvalsSent + entries[j].Downgrades
		if ai != aj {
			return ai > aj
		}
		return entries[i].Block < entries[j].Block
	})
	if len(entries) > BlocksCap {
		entries = entries[:BlocksCap]
	}
	return entries, total
}

func intList(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// maskSlots renders a slot mask as a fixed-width occupancy string ('x' for
// touched slots), the falseshare report's visual evidence.
func maskSlots(m uint64, slots int) string {
	var b strings.Builder
	for s := 0; s < slots; s++ {
		if m&(1<<uint(s)) != 0 {
			b.WriteByte('x')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// FormatBlocks renders the top-n rows of the snapshot's blocks section as an
// aligned table (n <= 0 means all). Deterministic for identical snapshots.
func FormatBlocks(s *Snapshot, n int) string {
	blocks := s.Blocks
	if n > 0 && n < len(blocks) {
		blocks = blocks[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %6s %-5s %-17s %8s %7s %7s %7s %5s  %s\n",
		"block", "bytes", "home", "pattern", "misses", "invalR", "invalS", "dgrade", "hint", "readers|writers")
	for i := range blocks {
		e := &blocks[i]
		hint := e.SizeHint
		if hint == "" {
			hint = "-"
		}
		fmt.Fprintf(&b, "b%-6d %6d p%-4d %-17s %8d %7d %7d %7d %5s  %s|%s\n",
			e.Block, e.Bytes, e.Home, e.Pattern, e.TotalMisses,
			e.InvalsRecv, e.InvalsSent, e.Downgrades, hint,
			intList(e.Readers), intList(e.Writers))
	}
	fmt.Fprintf(&b, "%d of %d active blocks shown\n", len(blocks), s.BlocksTotal)
	return b.String()
}

// FormatFalseShare renders the offset-overlap evidence for every block the
// classifier flagged as falsely shared: each writer's sub-block slot map,
// which by construction are pairwise disjoint.
func FormatFalseShare(s *Snapshot) string {
	var b strings.Builder
	flagged := 0
	for i := range s.Blocks {
		e := &s.Blocks[i]
		if e.Pattern != PatternFalselyShared {
			continue
		}
		flagged++
		slots, slotBytes := stats.BlockSlots(e.Bytes)
		fmt.Fprintf(&b, "block %d (%d B, home p%d): %d misses, %d invals received; %d slots of %d B\n",
			e.Block, e.Bytes, e.Home, e.TotalMisses, e.InvalsRecv, slots, slotBytes)
		for _, a := range e.Accesses {
			wm := ParseMask(a.WriteMask)
			if wm == 0 {
				continue
			}
			fmt.Fprintf(&b, "  p%-3d writes %s  (%d misses)\n", a.Proc, maskSlots(wm, slots), a.Misses)
		}
	}
	if flagged == 0 {
		return "no falsely-shared blocks: no block has disjoint per-writer sub-block offsets\n"
	}
	return fmt.Sprintf("%d falsely-shared block(s): writers touch disjoint sub-block offsets yet invalidate each other\n%s",
		flagged, b.String())
}

// FormatAdvice renders the placement advisor's recommendations: blocks whose
// observed miss traffic would be cheaper under a different home node, and
// blocks whose pattern predicts a different block size.
func FormatAdvice(s *Snapshot) string {
	var b strings.Builder
	rows := 0
	for i := range s.Blocks {
		e := &s.Blocks[i]
		if e.SavingsCycles <= 0 && e.SizeHint == "" {
			continue
		}
		if rows == 0 {
			fmt.Fprintf(&b, "%-7s %6s %-17s %5s %8s %12s  %s\n",
				"block", "bytes", "pattern", "home", "advised", "est.savings", "size-hint")
		}
		rows++
		adv := "keep"
		if e.SavingsCycles > 0 {
			adv = fmt.Sprintf("node%d", e.AdvisedNode)
		}
		hint := e.SizeHint
		if hint == "" {
			hint = "-"
		}
		fmt.Fprintf(&b, "b%-6d %6d %-17s node%-2d %7s %12d  %s\n",
			e.Block, e.Bytes, e.Pattern, e.HomeNode, adv, e.SavingsCycles, hint)
	}
	if rows == 0 {
		return "no placement advice: configured homes already minimize hop-weighted miss cost\n"
	}
	fmt.Fprintf(&b, "%d block(s) with advice; savings are estimated cycles over the block's observed misses\n", rows)
	return b.String()
}
