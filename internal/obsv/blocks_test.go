package obsv

import "testing"

// TestAdviseHomeTieBreak pins the advisor's documented tie-break on
// constructed equal-cost candidates: the configured home wins a tie, and
// among strictly cheaper candidates of equal cost the lowest node id wins.
// The migration trigger reuses this contract, so a flapping tie here would
// mean oscillating homes there.
func TestAdviseHomeTieBreak(t *testing.T) {
	const ppn = 4
	const numNodes = 4
	// Read-only traffic (no write misses): cost(h) = sum of 2-hop round
	// trips. Equal reader miss counts on nodes 0 and 1 make those two
	// candidates tie, and the all-remote nodes 2 and 3 tie above them.
	accesses := []BlockAccess{
		{Proc: 0, Misses: 10}, // node 0
		{Proc: 4, Misses: 10}, // node 1
	}

	// Home on node 1: node 0 has exactly equal cost, so the configured home
	// must be kept (no migration advice on a tie).
	homeCost, bestCost, bestNode := adviseHome(accesses, 1, numNodes, ppn)
	if bestNode != 1 {
		t.Errorf("home=1: bestNode = %d, want the configured home 1 on an equal-cost tie", bestNode)
	}
	if homeCost != bestCost {
		t.Errorf("home=1: homeCost %d != bestCost %d on a tie", homeCost, bestCost)
	}

	// Home on node 3: nodes 0 and 1 are strictly cheaper and tie with each
	// other; the advisor must deterministically pick the lowest id.
	homeCost, bestCost, bestNode = adviseHome(accesses, 3, numNodes, ppn)
	if bestNode != 0 {
		t.Errorf("home=3: bestNode = %d, want lowest-id node 0 among tied improvements", bestNode)
	}
	if bestCost >= homeCost {
		t.Errorf("home=3: bestCost %d not below homeCost %d", bestCost, homeCost)
	}

	// Repeatability: the same inputs can never flap.
	for i := 0; i < 5; i++ {
		if _, _, n := adviseHome(accesses, 3, numNodes, ppn); n != 0 {
			t.Fatalf("advice flapped to node %d on identical inputs", n)
		}
	}
}
