package obsv

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/protocol"
)

// MigrationReport renders a trace's online home-migration activity: the
// run's hand-off and forward totals, then one row per migrated block with
// its home chain (every home the directory entry visited, in order), the
// number of requests tombstones forwarded for it, and the virtual times of
// its first and last hand-off. The rows are sorted by hand-off count so the
// most mobile blocks lead; a block that migrates often under a stable
// access pattern is the signature of threshold ping-pong, which the
// hysteresis should prevent.
//
// The chain is reconstructed from "migrate" decision events (emitted by the
// old home, with the target and the cost evidence in the detail); "migfwd"
// events attribute forwards. A trace from a run without Config.Migrate
// yields an empty report.
func MigrationReport(events []protocol.TraceEvent) string {
	type chain struct {
		block       int
		homes       []int
		forwards    int
		migs        int
		first, last int64
	}
	chains := map[int]*chain{}
	var migs, installs, forwards int
	for _, e := range events {
		switch e.Op {
		case "migrate":
			var target int
			if _, err := fmt.Sscanf(e.Detail, "to p%d", &target); err != nil {
				// Installation event ("installed from pX"): counted, not
				// chained — the decision event already recorded the hop.
				installs++
				continue
			}
			migs++
			c := chains[e.BaseLine]
			if c == nil {
				c = &chain{block: e.BaseLine, homes: []int{e.Proc}, first: e.Time}
				chains[e.BaseLine] = c
			}
			c.homes = append(c.homes, target)
			c.migs++
			c.last = e.Time
		case "migfwd":
			forwards++
			if c := chains[e.BaseLine]; c != nil {
				c.forwards++
			}
		}
	}
	if migs == 0 {
		return "no migration events in trace\n"
	}

	rows := make([]*chain, 0, len(chains))
	for _, c := range chains {
		rows = append(rows, c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].migs != rows[j].migs {
			return rows[i].migs > rows[j].migs
		}
		return rows[i].block < rows[j].block
	})

	var b strings.Builder
	fmt.Fprintf(&b, "online home migration: %d hand-offs over %d blocks, %d installs, %d forwarded requests\n\n",
		migs, len(rows), installs, forwards)
	tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "block\thand-offs\tforwards\thome chain\tfirst@\tlast@")
	for _, c := range rows {
		parts := make([]string, len(c.homes))
		for i, h := range c.homes {
			parts[i] = fmt.Sprintf("p%d", h)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\n",
			c.block, c.migs, c.forwards, strings.Join(parts, " > "), c.first, c.last)
	}
	tw.Flush()
	return b.String()
}
