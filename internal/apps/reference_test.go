package apps

import (
	"testing"

	"repro"
)

// TestReferenceLU validates the DSM LU kernel against the independent
// host-memory implementation. At one processor the floating-point
// operation order is identical, so the checksums must match exactly; the
// parallel runs are compared with a small tolerance.
func TestReferenceLU(t *testing.T) {
	want := ReferenceLUChecksum(1)
	seq, err := Execute(NewLU(1, false), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum != want {
		t.Fatalf("sequential LU checksum %v != reference %v", seq.Checksum, want)
	}
	contig, err := Execute(NewLU(1, true), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if contig.Checksum != want {
		t.Fatalf("LU-Contig checksum %v != reference %v", contig.Checksum, want)
	}
	par, err := Execute(NewLU(1, false), shasta.Config{Procs: 16, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !CloseEnough(par.Checksum, want, 1e-9) {
		t.Fatalf("parallel LU checksum %v != reference %v", par.Checksum, want)
	}
}

// TestReferenceOcean validates the Ocean kernel the same way.
func TestReferenceOcean(t *testing.T) {
	want := ReferenceOceanChecksum(1)
	seq, err := Execute(NewOcean(1), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !CloseEnough(seq.Checksum, want, 1e-12) {
		t.Fatalf("sequential Ocean checksum %v != reference %v", seq.Checksum, want)
	}
	par, err := Execute(NewOcean(1), shasta.Config{Procs: 16, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !CloseEnough(par.Checksum, want, 1e-9) {
		t.Fatalf("parallel Ocean checksum %v != reference %v", par.Checksum, want)
	}
}

// TestReferenceWaterNsq validates the Water-Nsquared kernel.
func TestReferenceWaterNsq(t *testing.T) {
	want := ReferenceWaterNsqChecksum(1)
	seq, err := Execute(NewWaterNsq(1), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !CloseEnough(seq.Checksum, want, 1e-9) {
		t.Fatalf("sequential Water-Nsq checksum %v != reference %v", seq.Checksum, want)
	}
	par, err := Execute(NewWaterNsq(1), shasta.Config{Procs: 8, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !CloseEnough(par.Checksum, want, 1e-6) {
		t.Fatalf("parallel Water-Nsq checksum %v != reference %v", par.Checksum, want)
	}
}
