package apps

// Independent reference implementations in plain Go (no DSM, no simulator)
// for the kernels whose inputs and arithmetic are exactly reproducible.
// They validate that the parallel DSM kernels compute the right answers by
// a path that shares no code with the protocol or the simulator: the same
// deterministic inputs are regenerated here and the same checksum is
// computed over host memory.

// ReferenceLUChecksum factors the same matrix as the LU workload (either
// layout — they compute identical values) with a plain blocked
// right-looking LU in host memory and returns the workload's weighted
// checksum.
func ReferenceLUChecksum(scale int) float64 {
	w := NewLU(scale, false)
	n, bdim := w.n, w.b
	nb := n / bdim
	mat := make([]float64, n*n)
	// Regenerate the matrix exactly as LU.Body does: per-block
	// generators in block scan order.
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			r := newRNG(uint64(12345 + bi*nb + bj))
			for ii := 0; ii < bdim; ii++ {
				i := bi*bdim + ii
				for jj := 0; jj < bdim; jj++ {
					j := bj*bdim + jj
					v := r.rangeF(0.1, 1.0)
					if i == j {
						v += float64(n)
					}
					mat[i*n+j] = v
				}
			}
		}
	}
	// Blocked factorization with the same loop structure (so the
	// floating-point operation order matches bit for bit).
	get := func(bi, bj int, buf []float64) {
		for ii := 0; ii < bdim; ii++ {
			copy(buf[ii*bdim:(ii+1)*bdim], mat[(bi*bdim+ii)*n+bj*bdim:])
		}
	}
	put := func(bi, bj int, buf []float64) {
		for ii := 0; ii < bdim; ii++ {
			copy(mat[(bi*bdim+ii)*n+bj*bdim:(bi*bdim+ii)*n+(bj+1)*bdim], buf[ii*bdim:])
		}
	}
	diag := make([]float64, bdim*bdim)
	left := make([]float64, bdim*bdim)
	up := make([]float64, bdim*bdim)
	cur := make([]float64, bdim*bdim)
	factorDiag := func(a []float64) {
		for k := 0; k < bdim; k++ {
			pivot := a[k*bdim+k]
			for i := k + 1; i < bdim; i++ {
				a[i*bdim+k] /= pivot
				for j := k + 1; j < bdim; j++ {
					a[i*bdim+j] -= a[i*bdim+k] * a[k*bdim+j]
				}
			}
		}
	}
	solveLower := func(d, c []float64) {
		for i := 1; i < bdim; i++ {
			for k := 0; k < i; k++ {
				l := d[i*bdim+k]
				for j := 0; j < bdim; j++ {
					c[i*bdim+j] -= l * c[k*bdim+j]
				}
			}
		}
	}
	solveUpper := func(d, c []float64) {
		for j := 0; j < bdim; j++ {
			pivot := d[j*bdim+j]
			for i := 0; i < bdim; i++ {
				c[i*bdim+j] /= pivot
			}
			for jj := j + 1; jj < bdim; jj++ {
				u := d[j*bdim+jj]
				for i := 0; i < bdim; i++ {
					c[i*bdim+jj] -= c[i*bdim+j] * u
				}
			}
		}
	}
	for k := 0; k < nb; k++ {
		get(k, k, diag)
		factorDiag(diag)
		put(k, k, diag)
		for j := k + 1; j < nb; j++ {
			get(k, j, cur)
			solveLower(diag, cur)
			put(k, j, cur)
		}
		for i := k + 1; i < nb; i++ {
			get(i, k, cur)
			solveUpper(diag, cur)
			put(i, k, cur)
		}
		for i := k + 1; i < nb; i++ {
			get(i, k, left)
			for j := k + 1; j < nb; j++ {
				get(k, j, up)
				get(i, j, cur)
				for ii := 0; ii < bdim; ii++ {
					for kk := 0; kk < bdim; kk++ {
						l := left[ii*bdim+kk]
						for jj := 0; jj < bdim; jj++ {
							cur[ii*bdim+jj] -= l * up[kk*bdim+jj]
						}
					}
				}
				put(i, j, cur)
			}
		}
	}
	var sum float64
	// Match the workload's per-block accumulation order (block scan
	// order groups terms identically for exact equality at P=1; the
	// parallel runs are compared with tolerance anyway).
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for ii := 0; ii < bdim; ii++ {
				for jj := 0; jj < bdim; jj++ {
					i, j := bi*bdim+ii, bj*bdim+jj
					wgt := 1 + float64((i*31+j*17)%97)/97
					sum += mat[i*n+j] * wgt
				}
			}
		}
	}
	return sum
}

// ReferenceOceanChecksum runs the Ocean red-black sweeps in host memory.
func ReferenceOceanChecksum(scale int) float64 {
	w := NewOcean(scale)
	n := w.n
	grids := [2][]float64{make([]float64, n*n), make([]float64, n*n)}
	for i := 1; i < n-1; i++ {
		for j := 0; j < n; j++ {
			v := float64((i*37+j*11)%100) / 100
			grids[0][i*n+j] = v
			grids[1][i*n+j] = v
		}
	}
	for j := 0; j < n; j++ {
		grids[0][j], grids[1][j] = 1.0, 1.0
		grids[0][(n-1)*n+j], grids[1][(n-1)*n+j] = 0.5, 0.5
	}
	const omega = 1.2
	src, dst := 0, 1
	for it := 0; it < w.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					if (i+j)%2 != color {
						grids[dst][i*n+j] = grids[src][i*n+j]
						continue
					}
					c := grids[src][i*n+j]
					nv := (1-omega)*c + omega*0.25*(grids[src][(i-1)*n+j]+
						grids[src][(i+1)*n+j]+grids[src][i*n+j-1]+grids[src][i*n+j+1])
					grids[dst][i*n+j] = nv
				}
			}
		}
		src, dst = dst, src
	}
	var sum float64
	for i := 1; i < n-1; i++ {
		for j := 0; j < n; j++ {
			sum += grids[src][i*n+j] * (1 + float64((i*13+j*7)%89)/89)
		}
	}
	return sum
}

// ReferenceWaterNsqChecksum runs the Water-Nsquared dynamics in host
// memory: the same O(n^2) three-site pair forces and integration.
func ReferenceWaterNsqChecksum(scale int) float64 {
	w := NewWaterNsq(scale)
	n := w.n
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	sites := make([][6]float64, n)
	frc := make([][3]float64, n)
	side := 0
	for side*side*side < n {
		side++
	}
	// Match the workload's lattice, which uses cbrt(n)+1.
	side = int(cbrtFloor(float64(n))) + 1
	for i := 0; i < n; i++ {
		r := newRNG(uint64(9000 + i))
		pos[i] = [3]float64{
			float64(i%side) + 0.3*r.f64(),
			float64((i/side)%side) + 0.3*r.f64(),
			float64(i/(side*side)) + 0.3*r.f64(),
		}
		vel[i] = [3]float64{r.rangeF(-0.1, 0.1), r.rangeF(-0.1, 0.1), r.rangeF(-0.1, 0.1)}
		for d := 0; d < 6; d++ {
			sites[i][d] = r.rangeF(-0.15, 0.15)
		}
	}
	const dt = 0.002
	var potential float64
	for step := 0; step < w.steps; step++ {
		for i := range frc {
			frc[i] = [3]float64{}
		}
		potential = 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var fx, fy, fz, pot float64
				for a := 0; a < 3; a++ {
					ax, ay, az := pos[i][0], pos[i][1], pos[i][2]
					if a > 0 {
						ax += sites[i][(a-1)*3]
						ay += sites[i][(a-1)*3+1]
						az += sites[i][(a-1)*3+2]
					}
					for b := 0; b < 3; b++ {
						bx, by, bz := pos[j][0], pos[j][1], pos[j][2]
						if b > 0 {
							bx += sites[j][(b-1)*3]
							by += sites[j][(b-1)*3+1]
							bz += sites[j][(b-1)*3+2]
						}
						dx, dy, dz := ax-bx, ay-by, az-bz
						r2 := dx*dx + dy*dy + dz*dz + 0.25
						inv := 1 / r2
						f := inv * inv * (inv - 0.5) / 9
						fx += f * dx
						fy += f * dy
						fz += f * dz
						pot += inv / 9
					}
				}
				frc[i][0] += fx
				frc[i][1] += fy
				frc[i][2] += fz
				frc[j][0] -= fx
				frc[j][1] -= fy
				frc[j][2] -= fz
				potential += pot
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += dt * frc[i][d]
				pos[i][d] += dt * vel[i][d]
			}
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		vals := []float64{pos[i][0], pos[i][1], pos[i][2], vel[i][0], vel[i][1], vel[i][2]}
		for d := 0; d < 6; d++ {
			sum += vals[d] * (1 + float64((i*7+d)%31)/31)
		}
	}
	return sum + potential
}

// cbrtFloor computes the integer cube root used by the lattice sizing.
func cbrtFloor(x float64) float64 {
	c := 0
	for float64((c+1)*(c+1)*(c+1)) <= x {
		c++
	}
	return float64(c)
}
