package apps

import (
	"fmt"
	"math"

	"repro"
)

// FMM models SPLASH-2 FMM: a two-dimensional fast multipole N-body solver
// on a uniform grid of boxes. Each box owner forms the box's multipole
// expansion from its particles (P2M), translates the multipoles of all
// well-separated boxes into its local expansion (M2L — the communication-
// heavy phase that reads other owners' box records), and evaluates the
// local expansion plus direct near-field interactions at its particles
// (L2P + P2P).
//
// A box record is 32 float64s = 256 bytes, exactly the granularity the
// paper selects for FMM's box array in Table 2; the box array uses the home
// placement optimization as in the paper's runs.
type FMM struct {
	n       int
	g       int // boxes per dimension
	terms   int
	partPos F64Array // n * 4: x, y, charge, potential
	box     F64Array // g*g * boxWords
	boxIdx  U32Array // per-box particle lists
	boxCnt  U32Array
	boxCap  int
	partial []float64
	sum     float64
}

const (
	boxWords = 32 // 256 bytes
	xCenterX = 0
	xCenterY = 1
	xMultRe  = 2  // terms real parts
	xMultIm  = 8  // terms imaginary parts
	xLocRe   = 14 // local expansion real
	xLocIm   = 20 // local expansion imaginary
	xCount   = 26
)

// NewFMM builds the workload: 768 particles per scale step on a grid sized
// for ~12 particles per box (the paper runs 32K-64K particles).
func NewFMM(scale int) *FMM {
	if scale < 1 {
		scale = 1
	}
	n := 768 * scale
	g := 1
	for g*g*12 < n {
		g *= 2
	}
	return &FMM{n: n, g: g, terms: 6, boxCap: 96}
}

// Name implements Workload.
func (w *FMM) Name() string { return "FMM" }

// ProblemSize implements Workload.
func (w *FMM) ProblemSize() string { return fmt.Sprintf("%d particles, %dx%d boxes", w.n, w.g, w.g) }

// Setup implements Workload.
func (w *FMM) Setup(c *shasta.Cluster, variableGranularity bool) {
	boxBlock := 64
	if variableGranularity {
		boxBlock = 256 // Table 2: box array
	}
	boxes := w.g * w.g
	procs := c.Procs()
	w.partPos = AllocF64(c, w.n*4, 64)
	// Home placement: boxes homed at their owners, as the paper does for
	// FMM's main structure.
	boxBytes := int64(boxWords * 8)
	w.box = F64Array{Base: c.AllocHomed(int64(boxes)*boxWords*8, boxBlock, func(off int64) int {
		bx := int(off / boxBytes)
		if bx >= boxes {
			bx = boxes - 1
		}
		lo, hi := 0, 0
		for id := 0; id < procs; id++ {
			lo, hi = blockRange(boxes, procs, id)
			if bx >= lo && bx < hi {
				return id
			}
		}
		_ = lo
		_ = hi
		return 0
	}), Len: boxes * boxWords}
	w.boxIdx = AllocU32(c, boxes*w.boxCap, 64)
	w.boxCnt = AllocU32(c, boxes, 64)
	w.partial = make([]float64, procs)
}

func (w *FMM) pf(i, f int) shasta.Addr  { return w.partPos.At(i*4 + f) }
func (w *FMM) xf(bx, f int) shasta.Addr { return w.box.At(bx*boxWords + f) }

func (w *FMM) boxRef(bx int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.box.At(bx * boxWords), Bytes: boxWords * 8, Store: store}
}

// Body implements Workload.
func (w *FMM) Body(p *shasta.Proc) {
	n, g, procs := w.n, w.g, p.NumProcs()
	boxes := g * g
	bLo, bHi := blockRange(boxes, procs, p.ID())
	pLo, pHi := blockRange(n, procs, p.ID())

	// Initialization: owners scatter particles; proc 0 bins them.
	for i := pLo; i < pHi; i++ {
		r := newRNG(uint64(5000 + i))
		p.StoreF64(w.pf(i, 0), r.rangeF(0, float64(g)))
		p.StoreF64(w.pf(i, 1), r.rangeF(0, float64(g)))
		p.StoreF64(w.pf(i, 2), r.rangeF(0.5, 1.5))
		p.StoreF64(w.pf(i, 3), 0)
	}
	p.Barrier()
	if p.ID() == 0 {
		for bx := 0; bx < boxes; bx++ {
			p.StoreU32(w.boxCnt.At(bx), 0)
			p.Batch([]shasta.BatchRef{w.boxRef(bx, true)}, func(b *shasta.Batch) {
				b.StoreF64(w.xf(bx, xCenterX), float64(bx/g)+0.5)
				b.StoreF64(w.xf(bx, xCenterY), float64(bx%g)+0.5)
				for t := 0; t < w.terms; t++ {
					b.StoreF64(w.xf(bx, xMultRe+t), 0)
					b.StoreF64(w.xf(bx, xMultIm+t), 0)
					b.StoreF64(w.xf(bx, xLocRe+t), 0)
					b.StoreF64(w.xf(bx, xLocIm+t), 0)
				}
			})
		}
		for i := 0; i < n; i++ {
			bx := w.boxOf(p.LoadF64(w.pf(i, 0)), p.LoadF64(w.pf(i, 1)))
			cnt := p.LoadU32(w.boxCnt.At(bx))
			if int(cnt) < w.boxCap {
				p.StoreU32(w.boxIdx.At(bx*w.boxCap+int(cnt)), uint32(i))
				p.StoreU32(w.boxCnt.At(bx), cnt+1)
			}
		}
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	// P2M: owners form multipole expansions.
	mre := make([]float64, w.terms)
	mim := make([]float64, w.terms)
	for bx := bLo; bx < bHi; bx++ {
		cnt := int(p.LoadU32(w.boxCnt.At(bx)))
		for t := range mre {
			mre[t], mim[t] = 0, 0
		}
		cx := float64(bx/g) + 0.5
		cy := float64(bx%g) + 0.5
		for a := 0; a < cnt; a++ {
			i := int(p.LoadU32(w.boxIdx.At(bx*w.boxCap + a)))
			q := p.LoadF64(w.pf(i, 2))
			dx := p.LoadF64(w.pf(i, 0)) - cx
			dy := p.LoadF64(w.pf(i, 1)) - cy
			// z^t terms of (dx + i dy).
			zr, zi := 1.0, 0.0
			for t := 0; t < w.terms; t++ {
				mre[t] += q * zr
				mim[t] += q * zi
				zr, zi = zr*dx-zi*dy, zr*dy+zi*dx
				p.Compute(24)
			}
		}
		p.Batch([]shasta.BatchRef{w.boxRef(bx, true)}, func(b *shasta.Batch) {
			for t := 0; t < w.terms; t++ {
				b.StoreF64(w.xf(bx, xMultRe+t), mre[t])
				b.StoreF64(w.xf(bx, xMultIm+t), mim[t])
			}
			b.StoreF64(w.xf(bx, xCount), float64(cnt))
		})
	}
	p.Barrier()

	// M2L: translate multipoles of well-separated boxes into local
	// expansions (reads every far box's record — heavy sharing).
	lre := make([]float64, w.terms)
	lim := make([]float64, w.terms)
	for bx := bLo; bx < bHi; bx++ {
		bi, bj := bx/g, bx%g
		for t := range lre {
			lre[t], lim[t] = 0, 0
		}
		for ox := 0; ox < boxes; ox++ {
			oi, oj := ox/g, ox%g
			di, dj := oi-bi, oj-bj
			if di >= -1 && di <= 1 && dj >= -1 && dj <= 1 {
				continue // near field handled directly
			}
			p.Batch([]shasta.BatchRef{w.boxRef(ox, false)}, func(b *shasta.Batch) {
				// Separation vector from source to target centre.
				zx, zy := float64(-di), float64(-dj)
				r2 := zx*zx + zy*zy
				for t := 0; t < w.terms; t++ {
					sre := b.LoadF64(w.xf(ox, xMultRe+t))
					sim := b.LoadF64(w.xf(ox, xMultIm+t))
					if debugFMM && (sre > 1e100 || sre < -1e100 || sim > 1e100 || sim < -1e100) {
						panic(fmt.Sprintf("FMM M2L: proc %d box %d term %d tainted mult %g/%g", p.ID(), ox, t, sre, sim))
					}
					// Simplified translation kernel: scale by 1/r^(t+1)
					// with rotation by the separation direction.
					sc := 1 / math.Pow(r2, float64(t+1)/2)
					lre[t] += sc * (sre*zx - sim*zy) / math.Sqrt(r2)
					lim[t] += sc * (sre*zy + sim*zx) / math.Sqrt(r2)
					p.Compute(90)
				}
			})
		}
		p.Batch([]shasta.BatchRef{w.boxRef(bx, true)}, func(b *shasta.Batch) {
			for t := 0; t < w.terms; t++ {
				b.StoreF64(w.xf(bx, xLocRe+t), lre[t])
				b.StoreF64(w.xf(bx, xLocIm+t), lim[t])
			}
		})
	}
	p.Barrier()

	// L2P + P2P: evaluate local expansions and near-field interactions.
	for bx := bLo; bx < bHi; bx++ {
		bi, bj := bx/g, bx%g
		cnt := int(p.LoadU32(w.boxCnt.At(bx)))
		var locRe [16]float64
		var locIm [16]float64
		p.Batch([]shasta.BatchRef{w.boxRef(bx, false)}, func(b *shasta.Batch) {
			for t := 0; t < w.terms; t++ {
				locRe[t] = b.LoadF64(w.xf(bx, xLocRe+t))
				locIm[t] = b.LoadF64(w.xf(bx, xLocIm+t))
			}
		})
		for a := 0; a < cnt; a++ {
			i := int(p.LoadU32(w.boxIdx.At(bx*w.boxCap + a)))
			x := p.LoadF64(w.pf(i, 0))
			y := p.LoadF64(w.pf(i, 1))
			if debugFMM && (x > 1e100 || x < -1e100 || y > 1e100 || y < -1e100) {
				panic(fmt.Sprintf("FMM L2P: proc %d particle %d tainted pos %g/%g", p.ID(), i, x, y))
			}
			cx := float64(bi) + 0.5
			cy := float64(bj) + 0.5
			dx, dy := x-cx, y-cy
			pot := 0.0
			zr, zi := 1.0, 0.0
			for t := 0; t < w.terms; t++ {
				pot += locRe[t]*zr - locIm[t]*zi
				zr, zi = zr*dx-zi*dy, zr*dy+zi*dx
				p.Compute(18)
			}
			// Near field: direct interactions with neighbour boxes.
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					ni, nj := bi+di, bj+dj
					if ni < 0 || ni >= g || nj < 0 || nj >= g {
						continue
					}
					nb := ni*g + nj
					ncnt := int(p.LoadU32(w.boxCnt.At(nb)))
					for bidx := 0; bidx < ncnt; bidx++ {
						j := int(p.LoadU32(w.boxIdx.At(nb*w.boxCap + bidx)))
						if j == i {
							continue
						}
						jx := p.LoadF64(w.pf(j, 0))
						jy := p.LoadF64(w.pf(j, 1))
						jq := p.LoadF64(w.pf(j, 2))
						if debugFMM && (jq > 1e100 || jq < -1e100 || jx > 1e100 || jx < -1e100) {
							panic(fmt.Sprintf("FMM P2P: proc %d reads particle %d tainted %g/%g/%g", p.ID(), j, jx, jy, jq))
						}
						d2 := (jx-x)*(jx-x) + (jy-y)*(jy-y) + 1e-6
						pot += jq * 0.5 * math.Log(d2)
						p.Compute(90)
					}
				}
			}
			p.StoreF64(w.pf(i, 3), pot)
		}
	}
	p.Barrier()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification: potential checksum over owned boxes' particles.
	var sum float64
	for bx := bLo; bx < bHi; bx++ {
		cnt := int(p.LoadU32(w.boxCnt.At(bx)))
		for a := 0; a < cnt; a++ {
			i := int(p.LoadU32(w.boxIdx.At(bx*w.boxCap + a)))
			pot := p.LoadF64(w.pf(i, 3))
			if debugFMM && (pot > 1e100 || pot < -1e100) {
				panic(fmt.Sprintf("FMM verify: proc %d particle %d (box %d slot %d) tainted pot %g", p.ID(), i, bx, a, pot))
			}
			sum += pot * (1 + float64(i%41)/41)
		}
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

func (w *FMM) boxOf(x, y float64) int {
	g := w.g
	bi, bj := int(x), int(y)
	if bi < 0 {
		bi = 0
	}
	if bi >= g {
		bi = g - 1
	}
	if bj < 0 {
		bj = 0
	}
	if bj >= g {
		bj = g - 1
	}
	return bi*g + bj
}

// Checksum implements Workload.
func (w *FMM) Checksum() float64 { return w.sum }

// debugFMM enables taint diagnostics in the M2L phase.
var debugFMM = false
