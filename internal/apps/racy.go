package apps

import (
	"fmt"

	"repro"
)

// Racy is a synthetic workload for exercising the race detector
// (internal/obsv, `shastatrace races`). It is deliberately NOT in Registry
// or Names: it is not one of the paper's nine applications, and two of its
// modes are intentionally mis-synchronized.
//
// The clean structure is: every processor fills its own block-aligned slice
// of a shared array, a barrier publishes the fills, every processor then
// increments one contended counter under a lock, a barrier ends the round,
// and a read-only checksum pass covers the whole array. Properly
// synchronized, the detector must report zero races on its trace.
//
// The inject knob plants one classic synchronization bug:
//
//	"drop-lock"        processor 1 increments the contended counter without
//	                   taking the lock — its read-modify-write races with
//	                   every other processor's locked increment.
//	"reorder-publish"  the last processor's update of element 0 is issued
//	                   after the publishing barrier instead of before it, so
//	                   the write races with the other processors' checksum
//	                   reads of that element.
//
// Both bugs leave the protocol and the simulation perfectly deterministic —
// the trace is reproducible — but the mutated accesses have no
// happens-before ordering with their conflicting counterparts, which is
// exactly what the detector reports.
//
// Run the injected modes with Clustering 1 (uniprocessor nodes, base
// Shasta): accesses shared in hardware within an SMP node never become
// protocol events, so under clustering an injected access can be invisible
// to the trace and therefore to the detector (the soundness caveat in
// OBSERVABILITY.md).
type Racy struct {
	inject   string
	blocks   int // data blocks per processor
	data     F64Array
	counter  F64Array
	lock     int
	procs    int
	partial  []float64
	checksum float64
}

// RacyInjectModes lists the accepted inject values: a clean run, a dropped
// lock, and a reordered flag publish.
var RacyInjectModes = []string{"none", "drop-lock", "reorder-publish"}

// NewRacy builds the synthetic detector workload. Scale multiplies the
// per-processor data (scale blocks each); inject is one of RacyInjectModes
// ("" means "none").
func NewRacy(scale int, inject string) *Racy {
	if scale < 1 {
		scale = 1
	}
	if inject == "" {
		inject = "none"
	}
	return &Racy{inject: inject, blocks: scale}
}

// Name implements Workload.
func (w *Racy) Name() string { return "Racy" }

// ProblemSize implements Workload.
func (w *Racy) ProblemSize() string {
	return fmt.Sprintf("%d blocks/proc, inject=%s", w.blocks, w.inject)
}

// Setup implements Workload. The data array is allocated at a fixed 64-byte
// granularity so each processor's slice is block-aligned (8 float64 per
// block): without injection, no two processors ever write the same block in
// the same barrier round. Both structures are homed at processor 0, so the
// injected accesses — processor 1's unlocked increment, the last
// processor's late publish — are remote misses and therefore trace-visible.
func (w *Racy) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.procs = c.Procs()
	w.data = AllocF64Placed(c, w.procs*w.blocks*8, 64, 0)
	w.counter = AllocF64Placed(c, 8, 64, 0)
	w.lock = c.AllocLock()
	w.partial = make([]float64, w.procs)
}

// Body implements Workload.
func (w *Racy) Body(p *shasta.Proc) {
	id, procs := p.ID(), p.NumProcs()
	lo, hi := id*w.blocks*8, (id+1)*w.blocks*8

	p.Barrier()
	if id == 0 {
		p.ResetStats()
	}
	p.Barrier()

	// Fill phase: each processor writes only its own blocks.
	for i := lo; i < hi; i++ {
		p.StoreF64(w.data.At(i), float64(i+1))
	}
	p.Barrier()

	// Contended counter, lock-protected — except that the drop-lock
	// injection lets processor 1 walk straight past the lock.
	locked := !(w.inject == "drop-lock" && id == 1)
	if locked {
		p.LockAcquire(w.lock)
	}
	p.StoreF64(w.counter.At(0), p.LoadF64(w.counter.At(0))+1)
	if locked {
		p.LockRelease(w.lock)
	}
	p.Barrier()

	// The reorder-publish injection: the barrier above was the publish, and
	// this write should have come before it. The last processor is the
	// mutator so the store is a remote miss (processor 0 filled element 0)
	// and therefore visible in the trace.
	if w.inject == "reorder-publish" && id == procs-1 {
		p.StoreF64(w.data.At(0), -1)
	}

	// Read-only checksum pass over the whole array.
	var sum float64
	for i := 0; i < w.procs*w.blocks*8; i++ {
		sum += p.LoadF64(w.data.At(i))
	}
	sum += p.LoadF64(w.counter.At(0))
	w.partial[id] = sum
	p.Barrier()
	if id == 0 {
		p.EndMeasured()
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.checksum = total
	}
}

// Checksum implements Workload.
func (w *Racy) Checksum() float64 { return w.checksum }
