package apps

import (
	"fmt"

	"repro"
)

// Ocean models the SPLASH-2 Ocean simulation: iterative red-black
// successive over-relaxation on two-dimensional grids, with processors
// owning contiguous strips of rows and communicating only at strip
// boundaries. This nearest-neighbour pattern is why the paper's Ocean shows
// the largest clustering gains (neighbouring processors usually share an
// SMP node, so boundary exchange becomes hardware coherence); the grids use
// the home placement optimization, as in the paper's runs.
type Ocean struct {
	n       int // grid dimension (including border)
	iters   int
	grids   [2]F64Array
	res     F64Array // per-processor residual slots
	cluster *shasta.Cluster
	partial []float64
	sum     float64
}

// NewOcean builds an Ocean workload: grid 194x194 at scale 1 (the paper's
// is 514x514), doubling the interior per scale step.
func NewOcean(scale int) *Ocean {
	if scale < 1 {
		scale = 1
	}
	return &Ocean{n: 192*scale + 2, iters: 16}
}

// Name implements Workload.
func (w *Ocean) Name() string { return "Ocean" }

// ProblemSize implements Workload.
func (w *Ocean) ProblemSize() string { return fmt.Sprintf("%dx%d ocean", w.n, w.n) }

// Setup implements Workload.
func (w *Ocean) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.cluster = c
	procs := c.Procs()
	rowBytes := int64(w.n * 8)
	homeOf := func(off int64) int {
		row := int(off / rowBytes)
		if row >= w.n {
			row = w.n - 1
		}
		// Home each strip's rows at its owner.
		for id := 0; id < procs; id++ {
			lo, hi := blockRange(w.n-2, procs, id)
			if row-1 >= lo && row-1 < hi {
				return id
			}
		}
		return 0
	}
	for g := range w.grids {
		w.grids[g] = F64Array{
			Base: c.AllocHomed(int64(w.n*w.n)*8, 64, homeOf),
			Len:  w.n * w.n,
		}
	}
	w.res = AllocF64(c, procs*8, 64) // one line per processor
	w.partial = make([]float64, procs)
}

func (w *Ocean) at(g, i, j int) shasta.Addr { return w.grids[g].At(i*w.n + j) }

// rowRef covers columns [1, n-1) of row i in grid g.
func (w *Ocean) rowRef(g, i int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.at(g, i, 0), Bytes: w.n * 8, Store: store}
}

// Body implements Workload.
func (w *Ocean) Body(p *shasta.Proc) {
	n, procs := w.n, p.NumProcs()
	lo, hi := blockRange(n-2, procs, p.ID())
	lo, hi = lo+1, hi+1 // interior row indices

	// Initialization: each processor fills its own strip (plus proc 0
	// fills the borders), touching its home-placed rows.
	for i := lo; i < hi; i++ {
		p.Batch([]shasta.BatchRef{w.rowRef(0, i, true), w.rowRef(1, i, true)},
			func(b *shasta.Batch) {
				for j := 0; j < n; j++ {
					v := float64((i*37+j*11)%100) / 100
					b.StoreF64(w.at(0, i, j), v)
					b.StoreF64(w.at(1, i, j), v)
				}
			})
	}
	if p.ID() == 0 {
		p.Batch([]shasta.BatchRef{w.rowRef(0, 0, true), w.rowRef(1, 0, true),
			w.rowRef(0, n-1, true), w.rowRef(1, n-1, true)}, func(b *shasta.Batch) {
			for j := 0; j < n; j++ {
				b.StoreF64(w.at(0, 0, j), 1.0)
				b.StoreF64(w.at(1, 0, j), 1.0)
				b.StoreF64(w.at(0, n-1, j), 0.5)
				b.StoreF64(w.at(1, n-1, j), 0.5)
			}
		})
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	// Red-black SOR sweeps between the two grids.
	const omega = 1.2
	src, dst := 0, 1
	for it := 0; it < w.iters; it++ {
		var localRes float64
		row := make([]float64, 3*n)
		for color := 0; color < 2; color++ {
			for i := lo; i < hi; i++ {
				// Load-only batch over the three source rows (the flag
				// technique applies in Base-Shasta), then a store batch
				// over the destination row.
				p.Batch([]shasta.BatchRef{
					w.rowRef(src, i-1, false),
					w.rowRef(src, i, false),
					w.rowRef(src, i+1, false),
				}, func(b *shasta.Batch) {
					for j := 0; j < n; j++ {
						row[j] = b.LoadF64(w.at(src, i-1, j))
						row[n+j] = b.LoadF64(w.at(src, i, j))
						row[2*n+j] = b.LoadF64(w.at(src, i+1, j))
					}
				})
				p.Batch([]shasta.BatchRef{w.rowRef(dst, i, true)}, func(b *shasta.Batch) {
					for j := 1; j < n-1; j++ {
						if (i+j)%2 != color {
							// Copy the other colour unchanged.
							b.Compute(8)
							b.StoreF64(w.at(dst, i, j), row[n+j])
							continue
						}
						c := row[n+j]
						nv := (1-omega)*c + omega*0.25*(row[j]+row[2*n+j]+row[n+j-1]+row[n+j+1])
						b.Compute(26)
						b.StoreF64(w.at(dst, i, j), nv)
						d := nv - c
						if d < 0 {
							d = -d
						}
						localRes += d
					}
				})
			}
			p.Barrier()
		}
		// Residual reduction through shared slots.
		p.StoreF64(w.res.At(p.ID()*8), localRes)
		p.Barrier()
		if p.ID() == 0 {
			total := 0.0
			for q := 0; q < procs; q++ {
				total += p.LoadF64(w.res.At(q * 8))
			}
			p.StoreF64(w.res.At(0), total)
		}
		p.Barrier()
		src, dst = dst, src
	}
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification: checksum of the final grid over this strip.
	var sum float64
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			sum += p.LoadF64(w.at(src, i, j)) * (1 + float64((i*13+j*7)%89)/89)
		}
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *Ocean) Checksum() float64 { return w.sum }
