package apps

import (
	"fmt"

	"repro"
)

// Volrend models SPLASH-2 Volrend: ray-cast volume rendering of a voxel
// data set (the paper's input is a CT "head"; here a synthetic nested-shell
// density field with the same structure). During initialization the
// processors precompute shared opacity and normal(-shading) maps from the
// raw volume; the measured phase casts a ray per image pixel through the
// maps, compositing front to back with early termination. Work is
// distributed through a lock-protected task queue, and the opacity/normal
// maps are the read-mostly structures whose block size the paper raises to
// 1024 bytes in Table 2.
type Volrend struct {
	n       int // volume dimension
	w, h    int // image size
	vol     F64Array
	opac    F64Array
	norm    F64Array // shading factor per voxel
	img     F64Array
	queue   U32Array
	qlock   int
	partial []float64
	sum     float64
}

// NewVolrend builds the workload: a 16^3 volume rendered at 96x96 per
// scale step (the paper renders the 256x256x113 head at full resolution;
// the high ray-per-voxel ratio mirrors its compute-to-data balance, since
// the real opacity map stores single bytes where this one stores floats).
func NewVolrend(scale int) *Volrend {
	if scale < 1 {
		scale = 1
	}
	return &Volrend{n: 16 * scale, w: 96 * scale, h: 96 * scale}
}

// Name implements Workload.
func (w *Volrend) Name() string { return "Volrend" }

// ProblemSize implements Workload.
func (w *Volrend) ProblemSize() string {
	return fmt.Sprintf("%d^3 volume, %dx%d image", w.n, w.w, w.h)
}

// Setup implements Workload.
func (w *Volrend) Setup(c *shasta.Cluster, variableGranularity bool) {
	mapBlock := 64
	if variableGranularity {
		mapBlock = 1024 // Table 2: opacity and normal maps
	}
	vox := w.n * w.n * w.n
	w.vol = AllocF64(c, vox, 64)
	w.opac = AllocF64(c, vox, mapBlock)
	w.norm = AllocF64(c, vox, mapBlock)
	w.img = AllocF64(c, w.w*w.h, 64)
	w.queue = AllocU32(c, 16, 64)
	w.qlock = c.AllocLock()
	w.partial = make([]float64, c.Procs())
}

// vi lays the volume out y-major so the columns of adjacent pixels in an
// image row are adjacent in memory — the locality that makes the larger
// opacity/normal-map blocks of Table 2 profitable.
func (w *Volrend) vi(x, y, z int) int { return (y*w.n+x)*w.n + z }

// Body implements Workload.
func (w *Volrend) Body(p *shasta.Proc) {
	n, procs := w.n, p.NumProcs()
	vox := n * n * n

	// Initialization part 1: owners fill their volume slabs with a
	// nested-shell density field.
	lo, hi := blockRange(vox, procs, p.ID())
	c := float64(n-1) / 2
	for i := lo; i < hi; i++ {
		x, y, z := i/(n*n), (i/n)%n, i%n
		dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
		r := dx*dx + dy*dy + dz*dz
		den := 0.0
		switch {
		case r < c*c/9:
			den = 0.9 // core
		case r < c*c/4:
			den = 0.35
		case r < c*c:
			den = 0.12
		}
		p.StoreF64(w.vol.At(i), den)
	}
	p.Barrier()
	// Initialization part 2: precompute the opacity and shading maps
	// (parallel, still unmeasured, matching the paper's focus on the
	// rendering phase).
	for i := lo; i < hi; i++ {
		x, y, z := i/(n*n), (i/n)%n, i%n
		den := p.LoadF64(w.vol.At(i))
		p.StoreF64(w.opac.At(i), den*den*3)
		grad := 0.0
		if x > 0 && x < n-1 {
			grad += p.LoadF64(w.vol.At(w.vi(x+1, y, z))) - p.LoadF64(w.vol.At(w.vi(x-1, y, z)))
		}
		if y > 0 && y < n-1 {
			grad += p.LoadF64(w.vol.At(w.vi(x, y+1, z))) - p.LoadF64(w.vol.At(w.vi(x, y-1, z)))
		}
		if grad < 0 {
			grad = -grad
		}
		p.StoreF64(w.norm.At(i), 0.3+0.7*grad)
	}
	if p.ID() == 0 {
		p.StoreU32(w.queue.At(0), 0)
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	// Measured phase: ray casting with front-to-back compositing.
	for {
		p.LockAcquire(w.qlock)
		row := int(p.LoadU32(w.queue.At(0)))
		if row < w.h {
			p.StoreU32(w.queue.At(0), uint32(row+1))
		}
		p.LockRelease(w.qlock)
		if row >= w.h {
			break
		}
		for px := 0; px < w.w; px++ {
			x := px * n / w.w
			y := row * n / w.h
			// March along z, compositing opacity and shading, reading
			// the two maps through a load-only batch per ray segment.
			var color, trans float64 = 0, 1
			rowBytes := n * 8
			base := w.vi(x, y, 0)
			p.Batch([]shasta.BatchRef{
				{Base: w.opac.At(base), Bytes: rowBytes},
				{Base: w.norm.At(base), Bytes: rowBytes},
			}, func(b *shasta.Batch) {
				for z := 0; z < n && trans > 0.05; z++ {
					op := b.LoadF64(w.opac.At(base + z))
					if op == 0 {
						p.Compute(10)
						continue
					}
					sh := b.LoadF64(w.norm.At(base + z))
					color += trans * op * sh
					trans *= 1 - op
					if trans < 0 {
						trans = 0
					}
					p.Compute(45)
				}
			})
			p.StoreF64(w.img.At(row*w.w+px), color)
		}
	}
	p.Barrier()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification: image checksum.
	iLo, iHi := blockRange(w.w*w.h, procs, p.ID())
	var sum float64
	for i := iLo; i < iHi; i++ {
		sum += p.LoadF64(w.img.At(i)) * (1 + float64(i%47)/47)
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *Volrend) Checksum() float64 { return w.sum }
