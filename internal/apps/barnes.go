package apps

import (
	"fmt"
	"math"

	"repro"
)

// Barnes models SPLASH-2 Barnes: a Barnes-Hut hierarchical N-body
// simulation. Bodies live in a shared array; the quadtree of cells (with
// centres of mass) lives in a shared cell array that every processor reads
// during the force phase — the read-mostly structure whose coherence
// granularity the paper raises to 512 bytes in Table 2.
//
// The tree is built into shared memory by processor 0 during (unmeasured)
// initialization and reused for the measured force-and-advance steps; the
// paper's parallel tree build contributes little time and its sharing
// pattern (read-mostly cells) is carried by the force phase.
type Barnes struct {
	n       int
	steps   int
	theta   float64
	body    F64Array // n * bodyWords
	cell    F64Array // maxCells * cellWords
	nCells  U32Array // [0] = number of cells in use
	partial []float64
	sum     float64
}

const (
	bodyWords = 8 // x, y, vx, vy, ax, ay, mass, pad (64 bytes)
	bPosX     = 0
	bPosY     = 1
	bVelX     = 2
	bVelY     = 3
	bAccX     = 4
	bAccY     = 5
	bMass     = 6

	cellWords = 16 // 128 bytes: comX, comY, mass, size, child0..3, body0..3, nbody, leaf, pad
	cComX     = 0
	cComY     = 1
	cMass     = 2
	cSize     = 3
	cChild    = 4  // 4 children indices (as float64; -1 = none)
	cBody     = 8  // up to 4 body indices for leaves
	cNBody    = 12 // number of bodies if leaf
	cLeaf     = 13 // 1 if leaf
	cCenterX  = 14
	cCenterY  = 15
)

// NewBarnes builds the workload: 768 bodies per scale step (the paper runs
// 16K-64K particles).
func NewBarnes(scale int) *Barnes {
	if scale < 1 {
		scale = 1
	}
	return &Barnes{n: 768 * scale, steps: 2, theta: 0.6}
}

// Name implements Workload.
func (w *Barnes) Name() string { return "Barnes" }

// ProblemSize implements Workload.
func (w *Barnes) ProblemSize() string { return fmt.Sprintf("%d particles", w.n) }

// Setup implements Workload.
func (w *Barnes) Setup(c *shasta.Cluster, variableGranularity bool) {
	cellBlock := 64
	if variableGranularity {
		cellBlock = 512 // Table 2: cell and leaf arrays
	}
	maxCells := 4 * w.n
	w.body = AllocF64(c, w.n*bodyWords, 64)
	w.cell = AllocF64(c, maxCells*cellWords, cellBlock)
	w.nCells = AllocU32(c, 16, 64)
	w.partial = make([]float64, c.Procs())
}

func (w *Barnes) bf(i, f int) shasta.Addr { return w.body.At(i*bodyWords + f) }
func (w *Barnes) cf(i, f int) shasta.Addr { return w.cell.At(i*cellWords + f) }

func (w *Barnes) bodyRef(i int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.body.At(i * bodyWords), Bytes: bodyWords * 8, Store: store}
}

func (w *Barnes) cellRef(i int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.cell.At(i * cellWords), Bytes: cellWords * 8, Store: store}
}

// buildTree constructs the quadtree sequentially (processor 0, during
// initialization). It returns the root cell index.
func (w *Barnes) buildTree(p *shasta.Proc) {
	next := 0
	alloc := func(cx, cy, size float64) int {
		id := next
		next++
		p.Batch([]shasta.BatchRef{w.cellRef(id, true)}, func(b *shasta.Batch) {
			b.StoreF64(w.cf(id, cComX), 0)
			b.StoreF64(w.cf(id, cComY), 0)
			b.StoreF64(w.cf(id, cMass), 0)
			b.StoreF64(w.cf(id, cSize), size)
			for k := 0; k < 4; k++ {
				b.StoreF64(w.cf(id, cChild+k), -1)
				b.StoreF64(w.cf(id, cBody+k), -1)
			}
			b.StoreF64(w.cf(id, cNBody), 0)
			b.StoreF64(w.cf(id, cLeaf), 1)
			b.StoreF64(w.cf(id, cCenterX), cx)
			b.StoreF64(w.cf(id, cCenterY), cy)
		})
		return id
	}
	const rootSize = 64.0
	root := alloc(rootSize/2, rootSize/2, rootSize)

	var insert func(cellID, bodyID int)
	insert = func(cellID, bodyID int) {
		leaf := p.LoadF64(w.cf(cellID, cLeaf)) != 0
		if leaf {
			nb := int(p.LoadF64(w.cf(cellID, cNBody)))
			if nb < 4 {
				p.StoreF64(w.cf(cellID, cBody+nb), float64(bodyID))
				p.StoreF64(w.cf(cellID, cNBody), float64(nb+1))
				return
			}
			// Split: push existing bodies down.
			old := make([]int, nb)
			for k := 0; k < nb; k++ {
				old[k] = int(p.LoadF64(w.cf(cellID, cBody+k)))
				p.StoreF64(w.cf(cellID, cBody+k), -1)
			}
			p.StoreF64(w.cf(cellID, cLeaf), 0)
			p.StoreF64(w.cf(cellID, cNBody), 0)
			for _, ob := range old {
				insert(cellID, ob)
			}
			insert(cellID, bodyID)
			return
		}
		cx := p.LoadF64(w.cf(cellID, cCenterX))
		cy := p.LoadF64(w.cf(cellID, cCenterY))
		size := p.LoadF64(w.cf(cellID, cSize))
		x := p.LoadF64(w.bf(bodyID, bPosX))
		y := p.LoadF64(w.bf(bodyID, bPosY))
		q := 0
		nx, ny := cx-size/4, cy-size/4
		if x >= cx {
			q |= 1
			nx = cx + size/4
		}
		if y >= cy {
			q |= 2
			ny = cy + size/4
		}
		child := int(p.LoadF64(w.cf(cellID, cChild+q)))
		if child < 0 {
			child = alloc(nx, ny, size/2)
			p.StoreF64(w.cf(cellID, cChild+q), float64(child))
		}
		insert(child, bodyID)
	}
	for i := 0; i < w.n; i++ {
		insert(root, i)
	}

	// Compute centres of mass bottom-up.
	var summarize func(cellID int) (mx, my, m float64)
	summarize = func(cellID int) (float64, float64, float64) {
		var mx, my, m float64
		if p.LoadF64(w.cf(cellID, cLeaf)) != 0 {
			nb := int(p.LoadF64(w.cf(cellID, cNBody)))
			for k := 0; k < nb; k++ {
				b := int(p.LoadF64(w.cf(cellID, cBody+k)))
				bm := p.LoadF64(w.bf(b, bMass))
				mx += bm * p.LoadF64(w.bf(b, bPosX))
				my += bm * p.LoadF64(w.bf(b, bPosY))
				m += bm
			}
		} else {
			for q := 0; q < 4; q++ {
				child := int(p.LoadF64(w.cf(cellID, cChild+q)))
				if child >= 0 {
					cx, cy, cm := summarize(child)
					mx, my, m = mx+cx, my+cy, m+cm
				}
			}
		}
		if m > 0 {
			p.StoreF64(w.cf(cellID, cComX), mx/m)
			p.StoreF64(w.cf(cellID, cComY), my/m)
		}
		p.StoreF64(w.cf(cellID, cMass), m)
		return mx, my, m
	}
	summarize(root)
	p.StoreU32(w.nCells.At(0), uint32(next))
}

// force computes the acceleration on body i by walking the tree.
func (w *Barnes) force(p *shasta.Proc, i int) (ax, ay float64) {
	x := p.LoadF64(w.bf(i, bPosX))
	y := p.LoadF64(w.bf(i, bPosY))
	var walk func(cellID int)
	walk = func(cellID int) {
		p.Batch([]shasta.BatchRef{w.cellRef(cellID, false)}, func(b *shasta.Batch) {
			m := b.LoadF64(w.cf(cellID, cMass))
			if m == 0 {
				return
			}
			size := b.LoadF64(w.cf(cellID, cSize))
			comX := b.LoadF64(w.cf(cellID, cComX))
			comY := b.LoadF64(w.cf(cellID, cComY))
			dx, dy := comX-x, comY-y
			dist2 := dx*dx + dy*dy + 0.05
			b.Compute(60) // traversal arithmetic + opening criterion
			leaf := b.LoadF64(w.cf(cellID, cLeaf)) != 0
			if !leaf && size*size > w.theta*w.theta*dist2 {
				// Too close: recurse into children.
				for q := 0; q < 4; q++ {
					child := int(b.LoadF64(w.cf(cellID, cChild+q)))
					if child >= 0 {
						walk(child)
					}
				}
				return
			}
			if leaf {
				nb := int(b.LoadF64(w.cf(cellID, cNBody)))
				for k := 0; k < nb; k++ {
					j := int(b.LoadF64(w.cf(cellID, cBody+k)))
					if j == i {
						continue
					}
					jm := p.LoadF64(w.bf(j, bMass))
					jx := p.LoadF64(w.bf(j, bPosX))
					jy := p.LoadF64(w.bf(j, bPosY))
					ddx, ddy := jx-x, jy-y
					d2 := ddx*ddx + ddy*ddy + 0.05
					f := jm / (d2 * math.Sqrt(d2))
					ax += f * ddx
					ay += f * ddy
					p.Compute(110) // sqrt + divide on the 21164

				}
				return
			}
			f := m / (dist2 * math.Sqrt(dist2))
			ax += f * dx
			ay += f * dy
			p.Compute(110)
		})
	}
	walk(0)
	return ax, ay
}

// Body implements Workload.
func (w *Barnes) Body(p *shasta.Proc) {
	n, procs := w.n, p.NumProcs()
	lo, hi := blockRange(n, procs, p.ID())

	// Initialization: owners place bodies in a Plummer-like disc; proc 0
	// builds the tree.
	for i := lo; i < hi; i++ {
		r := newRNG(uint64(3000 + i))
		p.Batch([]shasta.BatchRef{w.bodyRef(i, true)}, func(b *shasta.Batch) {
			ang := r.rangeF(0, 2*math.Pi)
			rad := 4 + 24*r.f64()*r.f64()
			b.StoreF64(w.bf(i, bPosX), 32+rad*math.Cos(ang))
			b.StoreF64(w.bf(i, bPosY), 32+rad*math.Sin(ang))
			b.StoreF64(w.bf(i, bVelX), -0.05*math.Sin(ang))
			b.StoreF64(w.bf(i, bVelY), 0.05*math.Cos(ang))
			b.StoreF64(w.bf(i, bMass), r.rangeF(0.5, 1.5))
		})
	}
	p.Barrier()
	if p.ID() == 0 {
		w.buildTree(p)
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	const dt = 0.05
	for step := 0; step < w.steps; step++ {
		// Force phase: everyone walks the shared tree for its bodies.
		for i := lo; i < hi; i++ {
			ax, ay := w.force(p, i)
			p.Batch([]shasta.BatchRef{w.bodyRef(i, true)}, func(b *shasta.Batch) {
				b.StoreF64(w.bf(i, bAccX), ax)
				b.StoreF64(w.bf(i, bAccY), ay)
			})
		}
		p.Barrier()
		// Advance phase: owners integrate.
		for i := lo; i < hi; i++ {
			p.Batch([]shasta.BatchRef{w.bodyRef(i, true)}, func(b *shasta.Batch) {
				vx := b.LoadF64(w.bf(i, bVelX)) + dt*b.LoadF64(w.bf(i, bAccX))
				vy := b.LoadF64(w.bf(i, bVelY)) + dt*b.LoadF64(w.bf(i, bAccY))
				b.StoreF64(w.bf(i, bVelX), vx)
				b.StoreF64(w.bf(i, bVelY), vy)
				b.StoreF64(w.bf(i, bPosX), b.LoadF64(w.bf(i, bPosX))+dt*vx)
				b.StoreF64(w.bf(i, bPosY), b.LoadF64(w.bf(i, bPosY))+dt*vy)
				b.Compute(40)
			})
		}
		p.Barrier()
	}
	if p.ID() == 0 {
		p.EndMeasured()
	}

	var sum float64
	for i := lo; i < hi; i++ {
		for d := 0; d < 4; d++ {
			sum += p.LoadF64(w.bf(i, d)) * (1 + float64((i*3+d)%23)/23)
		}
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *Barnes) Checksum() float64 { return w.sum }
