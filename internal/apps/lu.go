package apps

import (
	"fmt"

	"repro"
)

// LU is the SPLASH-2 dense blocked LU factorization (without pivoting) of
// an n x n matrix, in both layouts the paper evaluates:
//
//   - LU: the matrix is a single row-major array, so a B x B block's rows
//     are scattered across the array and a block update touches many small
//     line-sized pieces (the paper raises this structure's granularity to
//     128 bytes in Table 2);
//   - LU-Contig: each B x B block is contiguous (2 KiB for B=16), the
//     structure the paper allocates with a 2048-byte block size and homes
//     at the owning processor.
//
// Blocks are owned 2D-cyclically; step k factors the diagonal block, then
// owners update the perimeter, then the interior, with barriers between
// phases — the paper's LU communication pattern (each step broadcasts the
// pivot block column/row to the processors owning the interior).
type LU struct {
	n, b       int  // matrix dim, block dim
	contig     bool // contiguous block layout
	misplaced  bool // home the whole matrix at processor 0
	sweeps     int  // measured re-initialize + factor repetitions
	mat        F64Array
	cluster    *shasta.Cluster
	nb         int // blocks per dimension
	checksum   float64
	partial    []float64
	flopCycles int64 // cycles charged per 2 flops (multiply-add)
}

// NewLU builds an LU workload at the given scale (matrix dimension
// 512*scale; the paper factors 1024x1024 and 2048x2048), in the requested
// layout.
func NewLU(scale int, contig bool) *LU {
	if scale < 1 {
		scale = 1
	}
	n := 512 * scale
	return &LU{n: n, b: 16, contig: contig, sweeps: 1, flopCycles: 1}
}

// NewLUIterated builds the row-major LU workload with two benchmarking
// knobs for the home-migration experiment: sweeps repeats the measured
// re-initialize-and-factor cycle (a repeated-factorization harness, as
// solver benchmarks run; every sweep produces the identical factorization,
// so the checksum is the single-sweep one), and misplaced homes the whole
// matrix at processor 0 — the placement a sequential first-touch
// initialization produces, where every directory access pays a remote hop
// to node 0.
func NewLUIterated(scale, sweeps int, misplaced bool) *LU {
	w := NewLU(scale, false)
	if sweeps > 1 {
		w.sweeps = sweeps
	}
	w.misplaced = misplaced
	return w
}

// Name implements Workload.
func (w *LU) Name() string {
	if w.contig {
		return "LU-Contig"
	}
	return "LU"
}

// ProblemSize implements Workload.
func (w *LU) ProblemSize() string { return fmt.Sprintf("%dx%d matrix", w.n, w.n) }

// Setup implements Workload.
func (w *LU) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.cluster = c
	w.nb = w.n / w.b
	elems := w.n * w.n
	blockSize := 64
	if variableGranularity {
		if w.contig {
			blockSize = 2048 // Table 2: matrix block, 2048 bytes
		} else {
			blockSize = 128 // Table 2: matrix array, 128 bytes
		}
	}
	if w.contig {
		// Home placement: each 2 KiB block's pages at its owner.
		blockBytes := int64(w.b * w.b * 8)
		w.mat = F64Array{Base: c.AllocHomed(int64(elems)*8, blockSize, func(off int64) int {
			blk := int(off / blockBytes)
			bi, bj := blk/w.nb, blk%w.nb
			return w.owner(bi, bj, c.Procs())
		}), Len: elems}
	} else if w.misplaced {
		// Sequential-first-touch placement: every page homed at processor 0.
		w.mat = F64Array{Base: c.AllocHomed(int64(elems)*8, blockSize,
			func(int64) int { return 0 }), Len: elems}
	} else {
		w.mat = AllocF64(c, elems, blockSize)
	}
	w.partial = make([]float64, c.Procs())
}

// owner returns the 2D-cyclic owner of block (bi, bj).
func (w *LU) owner(bi, bj, procs int) int {
	pr := 1
	for pr*pr < procs {
		pr *= 2
	}
	for procs%pr != 0 {
		pr /= 2
	}
	pc := procs / pr
	return (bi%pr)*pc + (bj % pc)
}

// elem returns the address of element (i, j).
func (w *LU) elem(i, j int) shasta.Addr {
	if !w.contig {
		return w.mat.At(i*w.n + j)
	}
	bi, bj := i/w.b, j/w.b
	ii, jj := i%w.b, j%w.b
	return w.mat.At(((bi*w.nb+bj)*w.b+ii)*w.b + jj)
}

// blockRefs returns batch references covering block (bi, bj): one per row
// in the scattered layout, one contiguous range in the contiguous layout.
func (w *LU) blockRefs(bi, bj int, store bool) []shasta.BatchRef {
	if w.contig {
		return []shasta.BatchRef{{Base: w.elem(bi*w.b, bj*w.b), Bytes: w.b * w.b * 8, Store: store}}
	}
	refs := make([]shasta.BatchRef, w.b)
	for ii := 0; ii < w.b; ii++ {
		refs[ii] = shasta.BatchRef{Base: w.elem(bi*w.b+ii, bj*w.b), Bytes: w.b * 8, Store: store}
	}
	return refs
}

// loadBlock copies block (bi, bj) into buf (b*b elements) inside a batch.
func (w *LU) loadBlock(b *shasta.Batch, bi, bj int, buf []float64) {
	for ii := 0; ii < w.b; ii++ {
		row := w.elem(bi*w.b+ii, bj*w.b)
		for jj := 0; jj < w.b; jj++ {
			buf[ii*w.b+jj] = b.LoadF64(row + shasta.Addr(jj*8))
		}
	}
}

// storeBlock writes buf back to block (bi, bj) inside a batch.
func (w *LU) storeBlock(b *shasta.Batch, bi, bj int, buf []float64) {
	for ii := 0; ii < w.b; ii++ {
		row := w.elem(bi*w.b+ii, bj*w.b)
		for jj := 0; jj < w.b; jj++ {
			b.StoreF64(row+shasta.Addr(jj*8), buf[ii*w.b+jj])
		}
	}
}

// initBlocks fills every block owned by this processor (as in SPLASH-2 LU),
// with a per-block deterministic generator so the matrix is identical for
// any processor count — and for any repetition, so iterated sweeps all
// factor the same matrix.
func (w *LU) initBlocks(p *shasta.Proc) {
	n, bdim, nb := w.n, w.b, w.nb
	procs := p.NumProcs()
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			if w.owner(bi, bj, procs) != p.ID() {
				continue
			}
			r := newRNG(uint64(12345 + bi*nb + bj))
			p.Batch(w.blockRefs(bi, bj, true), func(b *shasta.Batch) {
				for ii := 0; ii < bdim; ii++ {
					i := bi*bdim + ii
					for jj := 0; jj < bdim; jj++ {
						j := bj*bdim + jj
						v := r.rangeF(0.1, 1.0)
						if i == j {
							v += float64(n)
						}
						b.StoreF64(w.elem(i, j), v)
					}
				}
			})
		}
	}
}

// Body implements Workload.
func (w *LU) Body(p *shasta.Proc) {
	bdim := w.b

	w.initBlocks(p)
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	diag := make([]float64, bdim*bdim)
	left := make([]float64, bdim*bdim)
	up := make([]float64, bdim*bdim)
	cur := make([]float64, bdim*bdim)
	for sweep := 0; sweep < w.sweeps; sweep++ {
		if sweep > 0 {
			// Iterated sweeps re-create the matrix and factor it again:
			// the owners' re-initialization stores and the consumers'
			// re-reads repeat the factorization's sharing pattern.
			w.initBlocks(p)
			p.Barrier()
		}
		w.factor(p, diag, left, up, cur)
	}
	w.finish(p)
}

// factor runs one blocked factorization over the (freshly initialized)
// matrix; the scratch buffers are the caller's so sweeps reuse them.
func (w *LU) factor(p *shasta.Proc, diag, left, up, cur []float64) {
	nb := w.nb
	procs := p.NumProcs()
	for k := 0; k < nb; k++ {
		// Phase 1: the diagonal block's owner factors it in place.
		if w.owner(k, k, procs) == p.ID() {
			p.Batch(w.blockRefs(k, k, true), func(b *shasta.Batch) {
				w.loadBlock(b, k, k, diag)
				w.factorDiag(p, diag)
				w.storeBlock(b, k, k, diag)
			})
		}
		p.Barrier()

		// Phase 2: perimeter updates.
		for j := k + 1; j < nb; j++ {
			if w.owner(k, j, procs) == p.ID() {
				refs := append(w.blockRefs(k, j, true), w.blockRefs(k, k, false)...)
				p.Batch(refs, func(b *shasta.Batch) {
					w.loadBlock(b, k, k, diag)
					w.loadBlock(b, k, j, cur)
					w.solveLower(p, diag, cur)
					w.storeBlock(b, k, j, cur)
				})
			}
		}
		for i := k + 1; i < nb; i++ {
			if w.owner(i, k, procs) == p.ID() {
				refs := append(w.blockRefs(i, k, true), w.blockRefs(k, k, false)...)
				p.Batch(refs, func(b *shasta.Batch) {
					w.loadBlock(b, k, k, diag)
					w.loadBlock(b, i, k, cur)
					w.solveUpper(p, diag, cur)
					w.storeBlock(b, i, k, cur)
				})
			}
		}
		p.Barrier()

		// Phase 3: interior updates A_ij -= A_ik * A_kj.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if w.owner(i, j, procs) != p.ID() {
					continue
				}
				refs := append(w.blockRefs(i, j, true), w.blockRefs(i, k, false)...)
				refs = append(refs, w.blockRefs(k, j, false)...)
				p.Batch(refs, func(b *shasta.Batch) {
					w.loadBlock(b, i, k, left)
					w.loadBlock(b, k, j, up)
					w.loadBlock(b, i, j, cur)
					w.matmulSub(p, cur, left, up)
					w.storeBlock(b, i, j, cur)
				})
			}
		}
		p.Barrier()
	}
}

// finish ends the measured phase and computes the verification checksum.
func (w *LU) finish(p *shasta.Proc) {
	nb, bdim := w.nb, w.b
	procs := p.NumProcs()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification pass: weighted checksum over this processor's blocks.
	var sum float64
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			if w.owner(bi, bj, procs)%procs != p.ID() {
				continue
			}
			for ii := 0; ii < bdim; ii++ {
				for jj := 0; jj < bdim; jj++ {
					i, j := bi*bdim+ii, bj*bdim+jj
					wgt := 1 + float64((i*31+j*17)%97)/97
					sum += p.LoadF64(w.elem(i, j)) * wgt
				}
			}
		}
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.checksum = total
	}
}

// factorDiag factors a diagonal block in place (LU without pivoting).
func (w *LU) factorDiag(p *shasta.Proc, a []float64) {
	b := w.b
	for k := 0; k < b; k++ {
		pivot := a[k*b+k]
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= pivot
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= a[i*b+k] * a[k*b+j]
			}
		}
	}
	p.Compute(w.flopCycles * int64(b*b*b) / 3)
}

// solveLower computes cur = L^-1 * cur for the unit lower triangle of diag.
func (w *LU) solveLower(p *shasta.Proc, diag, cur []float64) {
	b := w.b
	for i := 1; i < b; i++ {
		for k := 0; k < i; k++ {
			l := diag[i*b+k]
			for j := 0; j < b; j++ {
				cur[i*b+j] -= l * cur[k*b+j]
			}
		}
	}
	p.Compute(w.flopCycles * int64(b*b*b) / 2)
}

// solveUpper computes cur = cur * U^-1 for the upper triangle of diag.
func (w *LU) solveUpper(p *shasta.Proc, diag, cur []float64) {
	b := w.b
	for j := 0; j < b; j++ {
		pivot := diag[j*b+j]
		for i := 0; i < b; i++ {
			cur[i*b+j] /= pivot
		}
		for jj := j + 1; jj < b; jj++ {
			u := diag[j*b+jj]
			for i := 0; i < b; i++ {
				cur[i*b+jj] -= cur[i*b+j] * u
			}
		}
	}
	p.Compute(w.flopCycles * int64(b*b*b) / 2)
}

// matmulSub computes cur -= left * up.
func (w *LU) matmulSub(p *shasta.Proc, cur, left, up []float64) {
	b := w.b
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			l := left[i*b+k]
			for j := 0; j < b; j++ {
				cur[i*b+j] -= l * up[k*b+j]
			}
		}
	}
	p.Compute(w.flopCycles * int64(b*b*b))
}

// Checksum implements Workload.
func (w *LU) Checksum() float64 { return w.checksum }
