package apps

import (
	"fmt"
	"testing"
	"time"

	"repro"
)

func TestProfileApps(t *testing.T) {
	for _, name := range Names {
		for _, cfg := range []shasta.Config{
			{Procs: 16, Clustering: 1},
			{Procs: 16, Clustering: 4},
		} {
			name, cfg := name, cfg
			t.Run(fmt.Sprintf("%s-C%d", name, cfg.Clustering), func(t *testing.T) {
				start := time.Now()
				_, err := Execute(Registry[name](1), cfg, false)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%.1fs host", time.Since(start).Seconds())
			})
		}
	}
}
