package apps

import (
	"fmt"
	"testing"

	"repro"
)

// verifyApp checks a workload's parallel result against its sequential
// reference across the protocol variants.
func verifyApp(t *testing.T, name string, scale int, tol float64) {
	t.Helper()
	f, ok := Registry[name]
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	configs := []shasta.Config{
		{Procs: 4, Clustering: 1},
		{Procs: 8, Clustering: 4},
		{Procs: 4, Clustering: 4, Hardware: true},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("P%d-C%d-hw%v", cfg.Procs, cfg.Clustering, cfg.Hardware), func(t *testing.T) {
			if err := VerifyAgainstSequential(f, scale, cfg, tol); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLUCorrectness(t *testing.T)       { verifyApp(t, "LU", 1, 1e-9) }
func TestLUContigCorrectness(t *testing.T) { verifyApp(t, "LU-Contig", 1, 1e-9) }
func TestOceanCorrectness(t *testing.T)    { verifyApp(t, "Ocean", 1, 1e-9) }

func TestLUProducesMisses(t *testing.T) {
	res, err := Execute(NewLU(1, true), shasta.Config{Procs: 8, Clustering: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Stats.TotalMisses() == 0 {
		t.Fatal("LU on 8 processors produced no shared misses")
	}
	if res.Result.ParallelCycles <= 0 {
		t.Fatal("no measured parallel time")
	}
}

func TestOceanClusteringHelps(t *testing.T) {
	// Nearest-neighbour Ocean should see fewer misses with clustering —
	// the effect behind the paper's biggest win.
	r1, err := Execute(NewOcean(1), shasta.Config{Procs: 8, Clustering: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Execute(NewOcean(1), shasta.Config{Procs: 8, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Result.Stats.TotalMisses() >= r1.Result.Stats.TotalMisses() {
		t.Fatalf("clustering did not reduce Ocean misses: C1=%d C4=%d",
			r1.Result.Stats.TotalMisses(), r4.Result.Stats.TotalMisses())
	}
}

func TestCheckingOverheadOrdering(t *testing.T) {
	// Sequential time (no checks) < with Base checks < with SMP checks,
	// on one processor — the structure of Table 1.
	seq, err := Execute(NewLU(1, false), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute(NewLU(1, false), shasta.Config{Procs: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := Execute(NewLU(1, false), shasta.Config{Procs: 1, ForceSMPChecks: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(seq.Result.ParallelCycles < base.Result.ParallelCycles) {
		t.Errorf("base checks not slower than sequential: %d vs %d",
			base.Result.ParallelCycles, seq.Result.ParallelCycles)
	}
	if base.Result.ParallelCycles > smp.Result.ParallelCycles {
		t.Errorf("SMP checks cheaper than base checks: %d vs %d",
			smp.Result.ParallelCycles, base.Result.ParallelCycles)
	}
}

func TestBarnesCorrectness(t *testing.T)   { verifyApp(t, "Barnes", 1, 1e-6) }
func TestFMMCorrectness(t *testing.T)      { verifyApp(t, "FMM", 1, 1e-6) }
func TestRaytraceCorrectness(t *testing.T) { verifyApp(t, "Raytrace", 1, 1e-9) }
func TestVolrendCorrectness(t *testing.T)  { verifyApp(t, "Volrend", 1, 1e-9) }
func TestWaterNsqCorrectness(t *testing.T) { verifyApp(t, "Water-Nsq", 1, 1e-6) }
func TestWaterSpCorrectness(t *testing.T)  { verifyApp(t, "Water-Sp", 1, 1e-6) }

func TestAllAppsVariableGranularity(t *testing.T) {
	// Every app must also verify with the Table 2 block-size hints, and
	// those hints must not change results.
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			f := Registry[name]
			seq, err := Execute(f(1), shasta.Config{Procs: 1, Hardware: true}, false)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Execute(f(1), shasta.Config{Procs: 8, Clustering: 4}, true)
			if err != nil {
				t.Fatal(err)
			}
			if !CloseEnough(seq.Checksum, par.Checksum, 1e-6) {
				t.Fatalf("checksum mismatch with variable granularity: %.12g vs %.12g",
					seq.Checksum, par.Checksum)
			}
		})
	}
}

func TestAllAppsDeterministic(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			f := Registry[name]
			r1, err := Execute(f(1), shasta.Config{Procs: 8, Clustering: 4}, false)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Execute(f(1), shasta.Config{Procs: 8, Clustering: 4}, false)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Checksum != r2.Checksum ||
				r1.Result.ParallelCycles != r2.Result.ParallelCycles ||
				r1.Result.Stats.TotalMisses() != r2.Result.Stats.TotalMisses() {
				t.Fatalf("nondeterministic run: (%v,%d,%d) vs (%v,%d,%d)",
					r1.Checksum, r1.Result.ParallelCycles, r1.Result.Stats.TotalMisses(),
					r2.Checksum, r2.Result.ParallelCycles, r2.Result.Stats.TotalMisses())
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Names) != 9 {
		t.Fatalf("expected the paper's 9 applications, have %d", len(Names))
	}
	for _, name := range Names {
		f, ok := Registry[name]
		if !ok {
			t.Fatalf("app %q missing from registry", name)
		}
		w := f(1)
		if w.Name() != name {
			t.Errorf("factory for %q builds %q", name, w.Name())
		}
		if w.ProblemSize() == "" {
			t.Errorf("app %q has no problem size description", name)
		}
	}
}
