// Package apps implements the nine SPLASH-2 applications of the paper's
// evaluation — Barnes, FMM, LU, LU-Contiguous, Ocean, Raytrace, Volrend,
// Water-Nsquared and Water-Spatial — as parallel kernels over the public
// shasta API. Each kernel reproduces the sharing and communication pattern
// the paper's results depend on (migratory molecule records, read-mostly
// trees and maps, nearest-neighbour grids, falsely-shared matrix rows), and
// verifies its parallel result against a sequential reference.
//
// Problem sizes are scaled down from the paper's (the simulator interprets
// every shared access); every workload records its parameters so the
// experiment harness can report them.
package apps

import (
	"fmt"
	"math"

	"repro"
)

// Workload is one benchmark application instance. A Workload is single-use:
// build, Setup, Run (through a cluster), Verify.
type Workload interface {
	// Name returns the application's SPLASH-2 name.
	Name() string
	// ProblemSize describes the input, e.g. "256x256 matrix".
	ProblemSize() string
	// Setup allocates shared data on the cluster. The variableGranularity
	// flag applies the paper's Table 2 per-structure block size hints.
	Setup(c *shasta.Cluster, variableGranularity bool)
	// Body is the per-processor program: initialization, a ResetStats
	// barrier, the measured parallel phase, an EndMeasured barrier, and a
	// verification pass that records a checksum.
	Body(p *shasta.Proc)
	// Checksum returns the result checksum recorded by Body, for
	// comparison between parallel and sequential runs.
	Checksum() float64
}

// Factory builds a workload at a problem scale. Scale 1 is the default
// experiment size; larger scales approach the paper's inputs.
type Factory func(scale int) Workload

// Registry maps the paper's application names to factories.
var Registry = map[string]Factory{
	"Barnes":    func(s int) Workload { return NewBarnes(s) },
	"FMM":       func(s int) Workload { return NewFMM(s) },
	"LU":        func(s int) Workload { return NewLU(s, false) },
	"LU-Contig": func(s int) Workload { return NewLU(s, true) },
	"Ocean":     func(s int) Workload { return NewOcean(s) },
	"Raytrace":  func(s int) Workload { return NewRaytrace(s) },
	"Volrend":   func(s int) Workload { return NewVolrend(s) },
	"Water-Nsq": func(s int) Workload { return NewWaterNsq(s) },
	"Water-Sp":  func(s int) Workload { return NewWaterSp(s) },
}

// Names lists the applications in the paper's table order.
var Names = []string{
	"Barnes", "FMM", "LU", "LU-Contig", "Ocean",
	"Raytrace", "Volrend", "Water-Nsq", "Water-Sp",
}

// RunResult bundles a completed workload execution.
type RunResult struct {
	Result   shasta.Result
	Checksum float64
	// Metrics is the run's counter snapshot; populated by ExecuteObserved
	// only (plain Execute leaves it nil).
	Metrics *shasta.Metrics
}

// Execute sets up and runs a workload on a fresh cluster with the given
// configuration.
func Execute(w Workload, cfg shasta.Config, variableGranularity bool) (RunResult, error) {
	c, err := shasta.NewCluster(cfg)
	if err != nil {
		return RunResult{}, err
	}
	w.Setup(c, variableGranularity)
	res := c.Run(w.Body)
	return RunResult{Result: res, Checksum: w.Checksum()}, nil
}

// ExecuteObserved is Execute with a tracer attached for the whole run and a
// metrics snapshot taken after it. Tracing never perturbs virtual timing, so
// observed and plain runs report identical cycles and statistics.
func ExecuteObserved(w Workload, cfg shasta.Config, variableGranularity bool, tr shasta.Tracer) (RunResult, error) {
	c, err := shasta.NewCluster(cfg)
	if err != nil {
		return RunResult{}, err
	}
	c.SetTracer(tr)
	w.Setup(c, variableGranularity)
	res := c.Run(w.Body)
	return RunResult{Result: res, Checksum: w.Checksum(), Metrics: c.Metrics()}, nil
}

// VerifyAgainstSequential runs the factory's workload both sequentially
// (one processor, no checks) and with the given parallel configuration, and
// compares checksums within a relative tolerance (parallel reduction orders
// differ slightly in floating point).
func VerifyAgainstSequential(f Factory, scale int, cfg shasta.Config, tol float64) error {
	seq, err := Execute(f(scale), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	par, err := Execute(f(scale), cfg, false)
	if err != nil {
		return fmt.Errorf("parallel run: %w", err)
	}
	if !CloseEnough(seq.Checksum, par.Checksum, tol) {
		return fmt.Errorf("checksum mismatch: sequential %.12g vs parallel %.12g",
			seq.Checksum, par.Checksum)
	}
	return nil
}

// CloseEnough compares two checksums within relative tolerance tol.
func CloseEnough(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// --- Shared-memory array helpers ---

// F64Array is a view of a shared float64 array.
type F64Array struct {
	Base shasta.Addr
	Len  int
}

// AllocF64 allocates a shared float64 array with the given block size.
func AllocF64(c *shasta.Cluster, n int, blockSize int) F64Array {
	return F64Array{Base: c.Alloc(int64(n)*8, blockSize), Len: n}
}

// AllocF64Placed allocates a shared float64 array homed at one processor.
func AllocF64Placed(c *shasta.Cluster, n int, blockSize, home int) F64Array {
	return F64Array{Base: c.AllocPlaced(int64(n)*8, blockSize, home), Len: n}
}

// At returns the address of element i.
func (a F64Array) At(i int) shasta.Addr { return a.Base + shasta.Addr(i*8) }

// Slice returns the address range [i, j) as a batch reference.
func (a F64Array) Slice(i, j int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: a.At(i), Bytes: (j - i) * 8, Store: store}
}

// U32Array is a view of a shared uint32 array.
type U32Array struct {
	Base shasta.Addr
	Len  int
}

// AllocU32 allocates a shared uint32 array.
func AllocU32(c *shasta.Cluster, n int, blockSize int) U32Array {
	return U32Array{Base: c.Alloc(int64(n)*4, blockSize), Len: n}
}

// At returns the address of element i.
func (a U32Array) At(i int) shasta.Addr { return a.Base + shasta.Addr(i*4) }

// blockRange returns the [lo, hi) slice of n items assigned to processor id
// out of nproc, balanced to within one item.
func blockRange(n, nproc, id int) (int, int) {
	per := n / nproc
	rem := n % nproc
	lo := id*per + min(id, rem)
	hi := lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rng is a small deterministic linear congruential generator used by the
// workloads to build inputs identically in every run.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// f64 returns a uniform value in [0, 1).
func (r *rng) f64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// rangeF returns a uniform value in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 { return lo + (hi-lo)*r.f64() }

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
