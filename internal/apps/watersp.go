package apps

import (
	"fmt"
	"math"

	"repro"
)

// WaterSp models SPLASH-2 Water-Spatial: the same molecular dynamics as
// Water-Nsquared, but with molecules binned into a uniform 3D cell grid so
// forces are only computed between molecules in the same or neighbouring
// cells — O(n) work. Processors own contiguous ranges of cells; the cell
// occupancy index is rebuilt each step in shared memory. Communication is
// mostly boundary-cell traffic plus the migratory per-molecule force
// merges.
type WaterSp struct {
	n       int
	steps   int
	g       int // cells per dimension
	cellCap int
	mol     F64Array
	cellCnt U32Array // per-cell occupancy counts
	cellIdx U32Array // per-cell molecule indices (g^3 * cellCap)
	pot     F64Array
	partial []float64
	sum     float64
	lockBak int
	side    float64 // box side length
}

// NewWaterSp builds the workload: 192 molecules per scale step in a box
// sized for ~4 molecules per cell (the paper runs 1728-4096 molecules).
func NewWaterSp(scale int) *WaterSp {
	if scale < 1 {
		scale = 1
	}
	n := 192 * scale
	g := int(math.Cbrt(float64(n)/4)) + 1
	if g < 3 {
		g = 3
	}
	return &WaterSp{n: n, steps: 2, g: g, cellCap: 32, side: float64(g)}
}

// Name implements Workload.
func (w *WaterSp) Name() string { return "Water-Sp" }

// ProblemSize implements Workload.
func (w *WaterSp) ProblemSize() string {
	return fmt.Sprintf("%d molecules, %d^3 cells", w.n, w.g)
}

// Setup implements Workload.
func (w *WaterSp) Setup(c *shasta.Cluster, variableGranularity bool) {
	blockSize := 64
	if variableGranularity {
		blockSize = 2048
	}
	w.mol = AllocF64(c, w.n*molWords, blockSize)
	cells := w.g * w.g * w.g
	w.cellCnt = AllocU32(c, cells, 64)
	w.cellIdx = AllocU32(c, cells*w.cellCap, 64)
	w.pot = AllocF64(c, c.Procs()*8, 64)
	w.partial = make([]float64, c.Procs())
	// Range locks, one per owner, as in Water-Nsq.
	w.lockBak = c.AllocLock()
	for i := 1; i < c.Procs(); i++ {
		c.AllocLock()
	}
}

func (w *WaterSp) field(i, f int) shasta.Addr { return w.mol.At(i*molWords + f) }

func (w *WaterSp) molRef(i int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.mol.At(i * molWords), Bytes: molWords * 8, Store: store}
}

func (w *WaterSp) cellOf(x, y, z float64) int {
	g := w.g
	clamp := func(v float64) int {
		c := int(v)
		if c < 0 {
			c = 0
		}
		if c >= g {
			c = g - 1
		}
		return c
	}
	return (clamp(x)*g+clamp(y))*g + clamp(z)
}

// Body implements Workload.
func (w *WaterSp) Body(p *shasta.Proc) {
	n, procs, g := w.n, p.NumProcs(), w.g
	lo, hi := blockRange(n, procs, p.ID())
	cells := g * g * g
	cLo, cHi := blockRange(cells, procs, p.ID())

	// Initialization: owners scatter their molecules in the box.
	for i := lo; i < hi; i++ {
		r := newRNG(uint64(7000 + i))
		p.Batch([]shasta.BatchRef{w.molRef(i, true)}, func(b *shasta.Batch) {
			b.StoreF64(w.field(i, fPosX), r.rangeF(0, w.side))
			b.StoreF64(w.field(i, fPosY), r.rangeF(0, w.side))
			b.StoreF64(w.field(i, fPosZ), r.rangeF(0, w.side))
			b.StoreF64(w.field(i, fVelX), r.rangeF(-0.05, 0.05))
			b.StoreF64(w.field(i, fVelY), r.rangeF(-0.05, 0.05))
			b.StoreF64(w.field(i, fVelZ), r.rangeF(-0.05, 0.05))
			b.StoreF64(w.field(i, fFrcX), 0)
			b.StoreF64(w.field(i, fFrcY), 0)
			b.StoreF64(w.field(i, fFrcZ), 0)
			for d := 0; d < 6; d++ {
				b.StoreF64(w.field(i, fSites+d), r.rangeF(-0.15, 0.15))
			}
		})
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	const dt = 0.002
	var potential float64
	fbuf := make([]float64, n*3)
	touched := make([]bool, n)
	for step := 0; step < w.steps; step++ {
		// Rebuild the cell index in parallel: every processor scans the
		// molecule positions once and records the occupants of the cells
		// it owns (no locking needed — each cell is written by exactly
		// one owner).
		cnts := make([]uint32, cHi-cLo)
		for i := 0; i < n; i++ {
			mc := w.cellOf(p.LoadF64(w.field(i, fPosX)),
				p.LoadF64(w.field(i, fPosY)), p.LoadF64(w.field(i, fPosZ)))
			p.Compute(20)
			if mc < cLo || mc >= cHi {
				continue
			}
			if int(cnts[mc-cLo]) < w.cellCap {
				p.StoreU32(w.cellIdx.At(mc*w.cellCap+int(cnts[mc-cLo])), uint32(i))
				cnts[mc-cLo]++
			}
		}
		for c := cLo; c < cHi; c++ {
			p.StoreU32(w.cellCnt.At(c), cnts[c-cLo])
		}
		p.Barrier()

		// Force phase over owned cells and their neighbours.
		for i := range fbuf {
			fbuf[i] = 0
		}
		for i := range touched {
			touched[i] = false
		}
		potential = 0
		for c := cLo; c < cHi; c++ {
			cx, cy, cz := c/(g*g), (c/g)%g, c%g
			cnt := int(p.LoadU32(w.cellCnt.At(c)))
			for a := 0; a < cnt; a++ {
				i := int(p.LoadU32(w.cellIdx.At(c*w.cellCap + a)))
				xi := p.LoadF64(w.field(i, fPosX))
				yi := p.LoadF64(w.field(i, fPosY))
				zi := p.LoadF64(w.field(i, fPosZ))
				var si [6]float64
				for d := 0; d < 6; d++ {
					si[d] = p.LoadF64(w.field(i, fSites+d))
				}
				// Neighbour cells with index >= c avoid double counting;
				// within the cell, pairs a<b2.
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							nx, ny, nz := cx+dx, cy+dy, cz+dz
							if nx < 0 || nx >= g || ny < 0 || ny >= g || nz < 0 || nz >= g {
								continue
							}
							nc := (nx*g+ny)*g + nz
							if nc < c {
								continue
							}
							ncnt := int(p.LoadU32(w.cellCnt.At(nc)))
							for b2 := 0; b2 < ncnt; b2++ {
								if nc == c && b2 <= a {
									continue
								}
								j := int(p.LoadU32(w.cellIdx.At(nc*w.cellCap + b2)))
								xj := p.LoadF64(w.field(j, fPosX))
								yj := p.LoadF64(w.field(j, fPosY))
								zj := p.LoadF64(w.field(j, fPosZ))
								ddx, ddy, ddz := xi-xj, yi-yj, zi-zj
								cd2 := ddx*ddx + ddy*ddy + ddz*ddz
								p.Compute(10)
								if cd2 > 2.25 { // cutoff radius 1.5
									continue
								}
								// Within the cutoff, compute the nine
								// site-site interactions (see Water-Nsq).
								var sj [6]float64
								for d := 0; d < 6; d++ {
									sj[d] = p.LoadF64(w.field(j, fSites+d))
								}
								var fx, fy, fz, pot float64
								for av := 0; av < 3; av++ {
									ax, ay, az := xi, yi, zi
									if av > 0 {
										ax += si[(av-1)*3]
										ay += si[(av-1)*3+1]
										az += si[(av-1)*3+2]
									}
									for bv := 0; bv < 3; bv++ {
										bx, by, bz := xj, yj, zj
										if bv > 0 {
											bx += sj[(bv-1)*3]
											by += sj[(bv-1)*3+1]
											bz += sj[(bv-1)*3+2]
										}
										qx, qy, qz := ax-bx, ay-by, az-bz
										r2 := qx*qx + qy*qy + qz*qz + 0.25
										inv := 1 / r2
										f := inv * inv * (inv - 0.5) / 9
										fx += f * qx
										fy += f * qy
										fz += f * qz
										pot += inv / 9
									}
								}
								fbuf[i*3+0] += fx
								fbuf[i*3+1] += fy
								fbuf[i*3+2] += fz
								fbuf[j*3+0] -= fx
								fbuf[j*3+1] -= fy
								fbuf[j*3+2] -= fz
								touched[i], touched[j] = true, true
								potential += pot
								p.Compute(450)
							}
						}
					}
				}
			}
		}
		for dq := 0; dq < procs; dq++ {
			q := (p.ID() + dq) % procs
			qLo, qHi := blockRange(n, procs, q)
			any := false
			for j := qLo; j < qHi; j++ {
				if touched[j] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			p.LockAcquire(w.lockBak + q)
			for j := qLo; j < qHi; j++ {
				if !touched[j] {
					continue
				}
				p.Batch([]shasta.BatchRef{w.molRef(j, true)}, func(b *shasta.Batch) {
					b.StoreF64(w.field(j, fFrcX), b.LoadF64(w.field(j, fFrcX))+fbuf[j*3+0])
					b.StoreF64(w.field(j, fFrcY), b.LoadF64(w.field(j, fFrcY))+fbuf[j*3+1])
					b.StoreF64(w.field(j, fFrcZ), b.LoadF64(w.field(j, fFrcZ))+fbuf[j*3+2])
				})
			}
			p.LockRelease(w.lockBak + q)
		}
		p.Barrier()

		// Integration by the molecule owners, staying inside the box.
		for i := lo; i < hi; i++ {
			p.Batch([]shasta.BatchRef{w.molRef(i, true)}, func(b *shasta.Batch) {
				for d := 0; d < 3; d++ {
					v := b.LoadF64(w.field(i, fVelX+d)) + dt*b.LoadF64(w.field(i, fFrcX+d))
					pos := b.LoadF64(w.field(i, fPosX+d)) + dt*v
					if pos < 0 {
						pos, v = -pos, -v
					}
					if pos > w.side {
						pos, v = 2*w.side-pos, -v
					}
					b.StoreF64(w.field(i, fVelX+d), v)
					b.StoreF64(w.field(i, fPosX+d), pos)
					b.StoreF64(w.field(i, fFrcX+d), 0)
				}
				b.Compute(30)
			})
		}
		p.Barrier()
	}
	p.StoreF64(w.pot.At(p.ID()*8), potential)
	p.Barrier()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	var sum float64
	for i := lo; i < hi; i++ {
		for d := 0; d < 6; d++ {
			sum += p.LoadF64(w.field(i, d)) * (1 + float64((i*5+d)%29)/29)
		}
	}
	sum += p.LoadF64(w.pot.At(p.ID() * 8))
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *WaterSp) Checksum() float64 { return w.sum }
