package apps

import (
	"fmt"
	"math"

	"repro"
)

// Raytrace models SPLASH-2 Raytrace (the "balls" scenes): a ray tracer over
// a shared read-only scene of spheres, with image work distributed through
// a lock-protected task queue. Per ray it intersects every sphere
// (floating-point loads of shared scene data — the reason Raytrace suffers
// the paper's largest SMP-Shasta checking-overhead increase, since its FP
// flag checks and load-only batches get more expensive), casts one shadow
// ray, and one reflection bounce.
type Raytrace struct {
	nSpheres int
	w, h     int
	sph      F64Array // nSpheres * sphWords
	img      F64Array // w*h
	queue    U32Array // task counter
	qlock    int
	partial  []float64
	sum      float64
}

const (
	sphWords = 8 // cx, cy, cz, r, colr, refl, pad, pad (64 bytes)
	sCX      = 0
	sCY      = 1
	sCZ      = 2
	sRad     = 3
	sCol     = 4
	sRefl    = 5
)

// NewRaytrace builds the workload: a 48-sphere scene at 32x32*scale pixels
// (the paper renders balls4 at full resolution).
func NewRaytrace(scale int) *Raytrace {
	if scale < 1 {
		scale = 1
	}
	return &Raytrace{nSpheres: 48, w: 48 * scale, h: 48 * scale}
}

// Name implements Workload.
func (w *Raytrace) Name() string { return "Raytrace" }

// ProblemSize implements Workload.
func (w *Raytrace) ProblemSize() string {
	return fmt.Sprintf("balls scene, %dx%d image", w.w, w.h)
}

// Setup implements Workload.
func (w *Raytrace) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.sph = AllocF64(c, w.nSpheres*sphWords, 64)
	w.img = AllocF64(c, w.w*w.h, 64)
	w.queue = AllocU32(c, 16, 64)
	w.qlock = c.AllocLock()
	w.partial = make([]float64, c.Procs())
}

func (w *Raytrace) sf(i, f int) shasta.Addr { return w.sph.At(i*sphWords + f) }

// sceneRef covers the whole sphere array for load-only batches.
func (w *Raytrace) sceneRef() shasta.BatchRef {
	return shasta.BatchRef{Base: w.sph.Base, Bytes: w.nSpheres * sphWords * 8}
}

// trace returns the shade for a ray from origin o in direction d,
// with at most depth reflection bounces. It runs inside a scene batch.
func (w *Raytrace) trace(p *shasta.Proc, b *shasta.Batch, ox, oy, oz, dx, dy, dz float64, depth int) float64 {
	bestT := math.Inf(1)
	best := -1
	for s := 0; s < w.nSpheres; s++ {
		cx := b.LoadF64(w.sf(s, sCX))
		cy := b.LoadF64(w.sf(s, sCY))
		cz := b.LoadF64(w.sf(s, sCZ))
		r := b.LoadF64(w.sf(s, sRad))
		// Ray-sphere intersection.
		lx, ly, lz := cx-ox, cy-oy, cz-oz
		tca := lx*dx + ly*dy + lz*dz
		d2 := lx*lx + ly*ly + lz*lz - tca*tca
		p.Compute(30)
		if tca < 0 || d2 > r*r {
			continue
		}
		thc := math.Sqrt(r*r - d2)
		t := tca - thc
		if t > 1e-6 && t < bestT {
			bestT, best = t, s
		}
	}
	if best < 0 {
		return 0.1 // background
	}
	// Shade at the hit point: diffuse toward a fixed light + shadow.
	hx, hy, hz := ox+bestT*dx, oy+bestT*dy, oz+bestT*dz
	cx := b.LoadF64(w.sf(best, sCX))
	cy := b.LoadF64(w.sf(best, sCY))
	cz := b.LoadF64(w.sf(best, sCZ))
	nx, ny, nz := hx-cx, hy-cy, hz-cz
	nl := math.Sqrt(nx*nx + ny*ny + nz*nz)
	nx, ny, nz = nx/nl, ny/nl, nz/nl
	const lx, ly, lz = 0.57735, 0.57735, -0.57735 // light direction
	diff := nx*lx + ny*ly + nz*lz
	if diff < 0 {
		diff = 0
	}
	// Shadow ray.
	inShadow := false
	for s := 0; s < w.nSpheres && !inShadow; s++ {
		if s == best {
			continue
		}
		scx := b.LoadF64(w.sf(s, sCX))
		scy := b.LoadF64(w.sf(s, sCY))
		scz := b.LoadF64(w.sf(s, sCZ))
		r := b.LoadF64(w.sf(s, sRad))
		vx, vy, vz := scx-hx, scy-hy, scz-hz
		tca := vx*lx + vy*ly + vz*lz
		d2 := vx*vx + vy*vy + vz*vz - tca*tca
		p.Compute(26)
		if tca > 0 && d2 < r*r {
			inShadow = true
		}
	}
	if inShadow {
		diff *= 0.2
	}
	col := b.LoadF64(w.sf(best, sCol))
	shade := 0.15 + 0.85*diff*col
	if depth > 0 {
		refl := b.LoadF64(w.sf(best, sRefl))
		if refl > 0 {
			dot := dx*nx + dy*ny + dz*nz
			rx, ry, rz := dx-2*dot*nx, dy-2*dot*ny, dz-2*dot*nz
			shade += refl * w.trace(p, b, hx+1e-4*rx, hy+1e-4*ry, hz+1e-4*rz, rx, ry, rz, depth-1)
		}
	}
	return shade
}

// Body implements Workload.
func (w *Raytrace) Body(p *shasta.Proc) {
	procs := p.NumProcs()

	// Initialization: proc 0 builds the scene and resets the task queue.
	if p.ID() == 0 {
		r := newRNG(4242)
		for s := 0; s < w.nSpheres; s++ {
			p.Batch([]shasta.BatchRef{{Base: w.sph.At(s * sphWords), Bytes: sphWords * 8, Store: true}},
				func(b *shasta.Batch) {
					b.StoreF64(w.sf(s, sCX), r.rangeF(-4, 4))
					b.StoreF64(w.sf(s, sCY), r.rangeF(-4, 4))
					b.StoreF64(w.sf(s, sCZ), r.rangeF(6, 16))
					b.StoreF64(w.sf(s, sRad), r.rangeF(0.4, 1.2))
					b.StoreF64(w.sf(s, sCol), r.rangeF(0.3, 1.0))
					b.StoreF64(w.sf(s, sRefl), r.rangeF(0, 0.5))
				})
		}
		p.StoreU32(w.queue.At(0), 0)
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	// Parallel phase: rows claimed from the shared task queue.
	for {
		p.LockAcquire(w.qlock)
		row := int(p.LoadU32(w.queue.At(0)))
		if row < w.h {
			p.StoreU32(w.queue.At(0), uint32(row+1))
		}
		p.LockRelease(w.qlock)
		if row >= w.h {
			break
		}
		for x := 0; x < w.w; x++ {
			// Camera ray through pixel (x, row).
			dx := (float64(x)/float64(w.w) - 0.5) * 1.2
			dy := (float64(row)/float64(w.h) - 0.5) * 1.2
			dz := 1.0
			n := math.Sqrt(dx*dx + dy*dy + dz*dz)
			var shade float64
			p.Batch([]shasta.BatchRef{w.sceneRef()}, func(b *shasta.Batch) {
				shade = w.trace(p, b, 0, 0, 0, dx/n, dy/n, dz/n, 1)
			})
			p.StoreF64(w.img.At(row*w.w+x), shade)
		}
	}
	p.Barrier()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification: image checksum over strided pixels.
	lo, hi := blockRange(w.w*w.h, procs, p.ID())
	var sum float64
	for i := lo; i < hi; i++ {
		sum += p.LoadF64(w.img.At(i)) * (1 + float64(i%53)/53)
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *Raytrace) Checksum() float64 { return w.sum }
