package apps

import (
	"testing"

	"repro"
	"repro/internal/obsv"
)

// TestCheckerAndBreakdownAllApps is the profiler's end-to-end acceptance
// gate: every application's SMP-Shasta trace replays through the invariant
// checker with zero violations, and its measured breakdown sums exactly to
// the parallel time on every processor.
func TestCheckerAndBreakdownAllApps(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			chk := obsv.NewChecker()
			r, err := ExecuteObserved(Registry[name](1), shasta.Config{Procs: 8, Clustering: 4}, false, chk)
			if err != nil {
				t.Fatal(err)
			}
			if v := chk.Violations(); len(v) != 0 {
				t.Fatalf("invariant violations:\n%s", chk.Report())
			}
			if chk.Gapped() {
				t.Fatal("live trace reported as gapped")
			}
			m := r.Metrics
			if len(m.Breakdown) != 8 {
				t.Fatalf("%d breakdown entries, want 8", len(m.Breakdown))
			}
			for _, e := range m.Breakdown {
				sum := e.Task + e.Read + e.Write + e.Sync + e.Message + e.Other + e.Idle
				if sum != e.Total || e.Total != m.Cycles {
					t.Errorf("p%d: categories sum to %d, total %d, parallel time %d",
						e.Proc, sum, e.Total, m.Cycles)
				}
			}
			if len(m.Histograms) == 0 {
				t.Error("no miss-latency histograms recorded")
			}
		})
	}
}
