package apps

import (
	"testing"

	"repro"
	"repro/internal/protocol"
)

func TestFMMDebug(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	defer protocol.SetDebugBatchFlagReads(false)
	protocol.SetDebugBatchFlagReads(true)
	protocol.SetDebugTraceBlock(50)
	defer protocol.SetDebugTraceBlock(-1)
	debugFMM = true
	defer func() { debugFMM = false }()
	res, err := Execute(NewFMM(1), shasta.Config{Procs: 8, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("checksum %v", res.Checksum)
}
