package apps

import (
	"fmt"
	"math"

	"repro"
)

// WaterNsq models SPLASH-2 Water-Nsquared: molecular dynamics over n
// molecules with an O(n^2) pairwise force computation. Each processor owns
// a contiguous range of molecules; it accumulates pair forces into a
// private buffer and then adds its contributions to every other molecule's
// shared force record under a per-molecule lock. The molecule records
// therefore migrate between the nodes — the pattern behind the paper's
// observation that Water's downgrades often need three downgrade messages
// (the record visits every processor of a node before leaving it).
//
// A molecule record is 32 float64s (256 bytes): position, velocity, force
// and padding standing in for SPLASH's full predictor-corrector state.
// Table 2 raises the molecule array's block size to 2048 bytes.
type WaterNsq struct {
	n        int
	steps    int
	mol      F64Array // n * molWords
	pot      F64Array // per-processor potential slots (one line each)
	cluster  *shasta.Cluster
	partial  []float64
	sum      float64
	lockBase int // first of the n per-molecule lock IDs
}

const (
	molWords = 32 // 256 bytes per molecule record
	fPosX    = 0
	fPosY    = 1
	fPosZ    = 2
	fVelX    = 3
	fVelY    = 4
	fVelZ    = 5
	fFrcX    = 6
	fFrcY    = 7
	fFrcZ    = 8
	// fSites holds the two hydrogen site offsets (real SPLASH water
	// molecules have an oxygen and two hydrogens; forces act between all
	// site pairs, making the pair kernel loads- and compute-heavy).
	fSites = 9 // 6 float64s: H1 xyz, H2 xyz
)

// NewWaterNsq builds the workload: 192 molecules per scale step (the paper
// runs 1000-4096).
func NewWaterNsq(scale int) *WaterNsq {
	if scale < 1 {
		scale = 1
	}
	return &WaterNsq{n: 192 * scale, steps: 2}
}

// Name implements Workload.
func (w *WaterNsq) Name() string { return "Water-Nsq" }

// ProblemSize implements Workload.
func (w *WaterNsq) ProblemSize() string { return fmt.Sprintf("%d molecules", w.n) }

// Setup implements Workload.
func (w *WaterNsq) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.cluster = c
	blockSize := 64
	if variableGranularity {
		blockSize = 2048 // Table 2: molecule array
	}
	w.mol = AllocF64(c, w.n*molWords, blockSize)
	w.pot = AllocF64(c, c.Procs()*8, 64)
	w.partial = make([]float64, c.Procs())
	// One lock per owner range, as in SPLASH-2's per-partition force
	// locks; contributions to another processor's molecules are merged
	// under its range lock.
	w.lockBase = c.AllocLock()
	for i := 1; i < c.Procs(); i++ {
		c.AllocLock()
	}
}

func (w *WaterNsq) field(i, f int) shasta.Addr { return w.mol.At(i*molWords + f) }

// molRef covers molecule i's record.
func (w *WaterNsq) molRef(i int, store bool) shasta.BatchRef {
	return shasta.BatchRef{Base: w.mol.At(i * molWords), Bytes: molWords * 8, Store: store}
}

// Body implements Workload.
func (w *WaterNsq) Body(p *shasta.Proc) {
	n, procs := w.n, p.NumProcs()
	lo, hi := blockRange(n, procs, p.ID())

	// Initialization: owners place their molecules on a jittered lattice.
	side := int(math.Cbrt(float64(n))) + 1
	for i := lo; i < hi; i++ {
		r := newRNG(uint64(9000 + i))
		p.Batch([]shasta.BatchRef{w.molRef(i, true)}, func(b *shasta.Batch) {
			b.StoreF64(w.field(i, fPosX), float64(i%side)+0.3*r.f64())
			b.StoreF64(w.field(i, fPosY), float64((i/side)%side)+0.3*r.f64())
			b.StoreF64(w.field(i, fPosZ), float64(i/(side*side))+0.3*r.f64())
			b.StoreF64(w.field(i, fVelX), r.rangeF(-0.1, 0.1))
			b.StoreF64(w.field(i, fVelY), r.rangeF(-0.1, 0.1))
			b.StoreF64(w.field(i, fVelZ), r.rangeF(-0.1, 0.1))
			b.StoreF64(w.field(i, fFrcX), 0)
			b.StoreF64(w.field(i, fFrcY), 0)
			b.StoreF64(w.field(i, fFrcZ), 0)
			for d := 0; d < 6; d++ {
				b.StoreF64(w.field(i, fSites+d), r.rangeF(-0.15, 0.15))
			}
		})
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	const dt = 0.002
	var potential float64
	fbuf := make([]float64, n*3)
	touched := make([]bool, n)
	for step := 0; step < w.steps; step++ {
		// Force phase: O(n^2) pairs; private accumulation, then merge
		// into the shared records under per-molecule locks.
		for i := range fbuf {
			fbuf[i] = 0
		}
		for i := range touched {
			touched[i] = false
		}
		potential = 0
		for i := lo; i < hi; i++ {
			xi := p.LoadF64(w.field(i, fPosX))
			yi := p.LoadF64(w.field(i, fPosY))
			zi := p.LoadF64(w.field(i, fPosZ))
			var si [6]float64
			for d := 0; d < 6; d++ {
				si[d] = p.LoadF64(w.field(i, fSites+d))
			}
			for j := i + 1; j < n; j++ {
				// Read the other molecule's oxygen position and both
				// hydrogen site offsets (nine shared loads per pair, as
				// in SPLASH water's all-site force computation).
				xj := p.LoadF64(w.field(j, fPosX))
				yj := p.LoadF64(w.field(j, fPosY))
				zj := p.LoadF64(w.field(j, fPosZ))
				var sj [6]float64
				for d := 0; d < 6; d++ {
					sj[d] = p.LoadF64(w.field(j, fSites+d))
				}
				// All-pairs site interactions (O, H1, H2) x (O, H1, H2):
				// nine distance computations per molecule pair.
				var fx, fy, fz, pot float64
				for a := 0; a < 3; a++ {
					ax, ay, az := xi, yi, zi
					if a > 0 {
						ax += si[(a-1)*3]
						ay += si[(a-1)*3+1]
						az += si[(a-1)*3+2]
					}
					for b := 0; b < 3; b++ {
						bx, by, bz := xj, yj, zj
						if b > 0 {
							bx += sj[(b-1)*3]
							by += sj[(b-1)*3+1]
							bz += sj[(b-1)*3+2]
						}
						dx, dy, dz := ax-bx, ay-by, az-bz
						r2 := dx*dx + dy*dy + dz*dz + 0.25
						inv := 1 / r2
						f := inv * inv * (inv - 0.5) / 9
						fx += f * dx
						fy += f * dy
						fz += f * dz
						pot += inv / 9
					}
				}
				fbuf[i*3+0] += fx
				fbuf[i*3+1] += fy
				fbuf[i*3+2] += fz
				fbuf[j*3+0] -= fx
				fbuf[j*3+1] -= fy
				fbuf[j*3+2] -= fz
				touched[i], touched[j] = true, true
				potential += pot
				p.Compute(460) // nine site interactions with divides
			}
		}
		// Merge contributions into the shared force fields, one owner
		// range (and range lock) at a time, starting with our own range
		// to stagger lock contention.
		for dq := 0; dq < procs; dq++ {
			q := (p.ID() + dq) % procs
			qLo, qHi := blockRange(n, procs, q)
			any := false
			for j := qLo; j < qHi; j++ {
				if touched[j] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			p.LockAcquire(w.lockBase + q)
			for j := qLo; j < qHi; j++ {
				if !touched[j] {
					continue
				}
				p.Batch([]shasta.BatchRef{w.molRef(j, true)}, func(b *shasta.Batch) {
					b.StoreF64(w.field(j, fFrcX), b.LoadF64(w.field(j, fFrcX))+fbuf[j*3+0])
					b.StoreF64(w.field(j, fFrcY), b.LoadF64(w.field(j, fFrcY))+fbuf[j*3+1])
					b.StoreF64(w.field(j, fFrcZ), b.LoadF64(w.field(j, fFrcZ))+fbuf[j*3+2])
				})
			}
			p.LockRelease(w.lockBase + q)
		}
		p.Barrier()

		// Integration: owners advance their molecules and clear forces.
		for i := lo; i < hi; i++ {
			p.Batch([]shasta.BatchRef{w.molRef(i, true)}, func(b *shasta.Batch) {
				for d := 0; d < 3; d++ {
					v := b.LoadF64(w.field(i, fVelX+d)) + dt*b.LoadF64(w.field(i, fFrcX+d))
					b.StoreF64(w.field(i, fVelX+d), v)
					b.StoreF64(w.field(i, fPosX+d), b.LoadF64(w.field(i, fPosX+d))+dt*v)
					b.StoreF64(w.field(i, fFrcX+d), 0)
				}
				b.Compute(24)
			})
		}
		p.Barrier()
	}
	// Reduce the potential (order-stable: slot per processor).
	p.StoreF64(w.pot.At(p.ID()*8), potential)
	p.Barrier()
	if p.ID() == 0 {
		p.EndMeasured()
	}

	// Verification: positions + velocities checksum over owned range.
	var sum float64
	for i := lo; i < hi; i++ {
		for d := 0; d < 6; d++ {
			sum += p.LoadF64(w.field(i, d)) * (1 + float64((i*7+d)%31)/31)
		}
	}
	for q := 0; q < procs; q++ {
		if q == p.ID() {
			sum += p.LoadF64(w.pot.At(q * 8))
		}
	}
	w.partial[p.ID()] = sum
	p.Barrier()
	if p.ID() == 0 {
		total := 0.0
		for _, v := range w.partial {
			total += v
		}
		w.sum = total
	}
}

// Checksum implements Workload.
func (w *WaterNsq) Checksum() float64 { return w.sum }
