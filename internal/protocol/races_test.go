package protocol

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/stats"
)

// This file holds regression tests for the specific race conditions and
// protocol corner cases found while building the system. Each test encodes
// a scenario that once produced stale data, flag values leaking into
// application reads, lost stores, deadlock or livelock.

// TestConcurrentUnlockedUpgrades hammers one block with read-then-write
// sequences from every processor with no application locking. Release
// consistency makes the final value unpredictable, but three invariants
// must hold: no processor may ever read the invalid-flag bit pattern
// through a checked load of a valid block; after the final barrier all
// processors agree on the value; and the system quiesces.
//
// (Regression: a "late" invalidation — sent for an earlier write
// transaction but arriving after a newer copy on a faster channel — used to
// wipe fresh copies; directory sequence numbers now identify and ignore
// stale invalidations.)
func TestConcurrentUnlockedUpgrades(t *testing.T) {
	for _, cl := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("C%d", cl), func(t *testing.T) {
			s := testSystem(16, cl)
			a := s.Alloc(64, 64)
			var values [16]uint64
			s.Run(func(p *Proc) {
				p.Barrier()
				for i := 0; i < 8; i++ {
					v := p.LoadU64(a)
					if uint32(v) == memory.FlagWord && uint32(v>>32) == memory.FlagWord {
						t.Errorf("proc %d read the flag pattern through a checked load", p.ID())
					}
					p.StoreU64(a, v+1)
					p.Compute(int64(37 * (p.ID() + 1)))
				}
				p.Barrier()
				values[p.ID()] = p.LoadU64(a)
				p.Barrier()
			})
			for q := 1; q < 16; q++ {
				if values[q] != values[0] {
					t.Fatalf("procs disagree after barrier: %v", values)
				}
			}
			if err := s.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
			if err := s.CheckValueCoherence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUpgradeRaceLosesCleanly makes two processors on different nodes race
// an upgrade for the same block from the shared state. Exactly one
// upgrade wins; the loser's request is converted to a read-exclusive at the
// home and must receive full data (regression: the loser used to be
// granted over a flag-filled copy, or to serve forwards from its invalid
// underlying data).
func TestUpgradeRaceLosesCleanly(t *testing.T) {
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.StoreF64(a, 1.0)
			p.StoreF64(a+8, 2.0)
		}
		p.Barrier()
		// Both nodes take shared copies.
		_ = p.LoadF64(a)
		p.Barrier()
		// Concurrent upgrades from both nodes.
		if p.ID() == 1 {
			p.StoreF64(a, 10.0)
		}
		if p.ID() == 5 {
			p.StoreF64(a+8, 20.0)
		}
		p.Barrier()
		if got := p.LoadF64(a); got != 10.0 {
			t.Errorf("proc %d: word 0 = %v, want 10", p.ID(), got)
		}
		if got := p.LoadF64(a + 8); got != 20.0 {
			t.Errorf("proc %d: word 1 = %v, want 20", p.ID(), got)
		}
		p.Barrier()
	})
	if err := s.CheckValueCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestOverlappingStoreBatches makes two processors on different nodes
// repeatedly store-batch overlapping block sets (the Ocean boundary-row
// pattern that once deadlocked full-message deferral and later livelocked
// the re-check loop until staggered backoff was added). The test passes by
// completing with correct per-word values.
func TestOverlappingStoreBatches(t *testing.T) {
	s := testSystem(8, 4)
	// Three blocks; both writers' batches cover all three.
	a := s.Alloc(192, 64)
	const rounds = 6
	s.Run(func(p *Proc) {
		p.Barrier()
		writer := p.ID() == 0 || p.ID() == 4
		for r := 0; r < rounds; r++ {
			if writer {
				// Each writer owns alternate words of every block.
				off := 0
				if p.ID() == 4 {
					off = 8
				}
				p.Batch([]BatchRef{{Base: a, Bytes: 192, Store: true}}, func(b *Batch) {
					for w := 0; w < 12; w++ {
						b.StoreU64(a+memory.Addr(w*16+off), uint64(r*100+w))
					}
				})
			}
			p.Barrier()
			// Everyone validates both writers' words.
			for w := 0; w < 12; w++ {
				if got := p.LoadU64(a + memory.Addr(w*16)); got != uint64(r*100+w) {
					t.Errorf("proc %d round %d: writer-0 word %d = %d", p.ID(), r, w, got)
				}
				if got := p.LoadU64(a + memory.Addr(w*16+8)); got != uint64(r*100+w) {
					t.Errorf("proc %d round %d: writer-4 word %d = %d", p.ID(), r, w, got)
				}
			}
			p.Barrier()
		}
	})
	if err := s.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestReadersHammerStoreBatch runs one store-batching processor against
// fifteen readers of the same block (the FMM box pattern that once
// livelocked: readers kept downgrading the writer's exclusivity while its
// acknowledgement-waiting entries blocked the miss table). The run must
// complete, reads must never see flag data, and the final values must be
// the writer's.
func TestReadersHammerStoreBatch(t *testing.T) {
	s := testSystem(16, 4)
	a := s.AllocPlaced(256, 64, 0)
	const rounds = 5
	s.Run(func(p *Proc) {
		p.Barrier()
		for r := 0; r < rounds; r++ {
			if p.ID() == 0 {
				p.Batch([]BatchRef{{Base: a, Bytes: 256, Store: true}}, func(b *Batch) {
					for w := 0; w < 32; w++ {
						b.StoreU64(a+memory.Addr(w*8), uint64(r*1000+w))
					}
				})
			} else {
				// Concurrent unsynchronized readers: under release
				// consistency they may see the previous round's values,
				// but never the flag pattern.
				for w := 0; w < 32; w += 5 {
					v := p.LoadU64(a + memory.Addr(w*8))
					if uint32(v) == memory.FlagWord && uint32(v>>32) == memory.FlagWord {
						t.Errorf("proc %d read flag pattern at word %d", p.ID(), w)
					}
				}
			}
			p.Barrier()
			if got := p.LoadU64(a + memory.Addr(8)); got != uint64(r*1000+1) {
				t.Errorf("proc %d round %d: word 1 = %d, want %d", p.ID(), r, got, r*1000+1)
			}
			p.Barrier()
		}
	})
}

// TestBatchMarkerLifecycle checks that batch markers never leak or
// underflow: a mix of hitting and missing batches must leave no markers
// behind (regression: batchEnd once decremented markers that were never
// placed, letting later deferrals corrupt flag fills).
func TestBatchMarkerLifecycle(t *testing.T) {
	s := testSystem(8, 4)
	a := s.AllocPlaced(512, 64, 4)
	s.Run(func(p *Proc) {
		p.Barrier()
		for i := 0; i < 6; i++ {
			// Alternate hitting (local after first fetch) and missing
			// batches over the same blocks.
			p.Batch([]BatchRef{{Base: a, Bytes: 512}}, func(b *Batch) {
				_ = b.LoadU64(a)
			})
			if p.ID()%4 == 0 {
				p.Batch([]BatchRef{{Base: a, Bytes: 64, Store: true}}, func(b *Batch) {
					b.StoreU64(a, uint64(i))
				})
			}
			p.Barrier()
		}
	})
	if err := s.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomProgramsMatchOracle generates random barrier-phased
// programs (each phase, each processor writes one slot of its own bank,
// then reads another processor's just-written slot) and checks every read,
// across clusterings.
func TestQuickRandomProgramsMatchOracle(t *testing.T) {
	f := func(raw []uint8, clSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nPhases := len(raw) / 8
		if nPhases == 0 {
			return true
		}
		if nPhases > 6 {
			nPhases = 6
		}
		cl := []int{1, 2, 4}[int(clSel)%3]
		s := testSystem(8, cl)
		const slots = 16
		a := s.Alloc(8*slots*64, 64)
		at := func(proc, slot int) memory.Addr {
			return a + memory.Addr((proc*slots+slot)*64)
		}
		ok := true
		s.Run(func(p *Proc) {
			p.Barrier()
			for ph := 0; ph < nPhases; ph++ {
				slot := int(raw[ph*8+p.ID()]) % slots
				p.StoreU64(at(p.ID(), slot), uint64(ph*100+p.ID()))
				p.Barrier()
				src := (p.ID() + 1 + ph) % 8
				sslot := int(raw[ph*8+src]) % slots
				want := uint64(ph*100 + src)
				if got := p.LoadU64(at(src, sslot)); got != want {
					ok = false
				}
				p.Barrier()
			}
		})
		if err := s.CheckQuiescent(); err != nil {
			return false
		}
		if err := s.CheckValueCoherence(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStallAttributionCategories checks the execution-time breakdown picks
// up each stall category.
func TestStallAttributionCategories(t *testing.T) {
	s := testSystem(8, 1)
	a := s.AllocPlaced(64, 64, 0)
	l := s.AllocLock()
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 4 {
			_ = p.LoadF64(a) // read stall (remote fetch)
		}
		p.LockAcquire(l) // sync stall for contenders
		p.Compute(100)
		p.LockRelease(l)
		p.Barrier()
	})
	st := s.Stats()
	if st.TimeBy(stats.Read) == 0 {
		t.Error("no read stall recorded")
	}
	if st.TimeBy(stats.Sync) == 0 {
		t.Error("no sync stall recorded")
	}
	if st.TimeBy(stats.Task) == 0 {
		t.Error("no task time recorded")
	}
}
