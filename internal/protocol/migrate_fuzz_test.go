package protocol

// Random-program fuzzing for online home migration. Each seeded program is
// race-free by construction — per barrier round every block has exactly one
// designated writer, and readers check the value the previous round's writer
// published — but the writer assignment drifts across nodes mid-program, so
// blocks keep earning migrations while requests from other nodes are in
// flight. The properties checked are the migration soundness conditions:
// no stale read across a migration epoch (readers always see the latest
// barrier-ordered value), no lost or duplicated invalidation (the per-block
// sent/handled invalidation counters balance), full protocol quiescence
// (every tombstone acknowledged and drained), and serial/parallel
// bit-identity of the whole run including migration decisions.

import (
	"testing"

	"repro/internal/memory"
)

const (
	mfuzzProcs  = 12
	mfuzzBlocks = 6
	mfuzzRounds = 24
	mfuzzSeeds  = 8
)

// mfuzzRNG is the deterministic splitmix-style generator used by the race
// fuzz, so every seed builds the same program in every run.
type mfuzzRNG struct{ s uint64 }

func (r *mfuzzRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *mfuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// mfuzzProgram assigns, per round and block, one writer and a reader set.
// The writer is drawn from a "hot node" that advances every few rounds, so
// each block's traffic center of mass moves and migration keeps firing.
type mfuzzProgram struct {
	writer  [mfuzzRounds][mfuzzBlocks]int
	readers [mfuzzRounds][mfuzzBlocks]uint32 // bitset over processors
}

func genMigProgram(seed uint64) mfuzzProgram {
	r := &mfuzzRNG{s: seed}
	var prog mfuzzProgram
	nodes := mfuzzProcs / 4
	for round := 0; round < mfuzzRounds; round++ {
		for b := 0; b < mfuzzBlocks; b++ {
			hot := ((round / 6) + b) % nodes
			prog.writer[round][b] = hot*4 + r.intn(4)
			var set uint32
			for p := 0; p < mfuzzProcs; p++ {
				if r.intn(3) == 0 {
					set |= 1 << p
				}
			}
			prog.readers[round][b] = set
		}
	}
	return prog
}

// mfuzzValue is the value the round's writer publishes: unique per
// (seed, round, block) so a stale read is unambiguous.
func mfuzzValue(seed uint64, round, blk int) uint64 {
	return seed*1_000_000 + uint64(round)*1_000 + uint64(blk) + 1
}

// runMigFuzz executes one seeded program and returns the system for
// post-run inspection. Readers verify, inside the run, that every load
// observes exactly the previous round's published value — a stale copy
// surviving a re-home would surface here.
func runMigFuzz(t *testing.T, seed uint64, parallel bool) *System {
	t.Helper()
	prog := genMigProgram(seed)
	s := New(Config{NumProcs: mfuzzProcs, ProcsPerNode: 4, Clustering: 1,
		HeapBytes: 1 << 20, Migrate: true, Parallel: parallel})
	a := s.AllocPlaced(mfuzzBlocks*64, 64, 0)
	addr := func(blk int) memory.Addr { return a + memory.Addr(blk*64) }
	s.Run(func(p *Proc) {
		for round := 0; round < mfuzzRounds; round++ {
			// Read phase: the previous round's writes are barrier-ordered
			// before these loads, so the expected value is exact.
			for b := 0; b < mfuzzBlocks; b++ {
				if round > 0 && prog.readers[round][b]&(1<<p.ID()) != 0 {
					want := mfuzzValue(seed, round-1, b)
					if got := p.LoadU64(addr(b)); got != want {
						t.Errorf("seed %d round %d block %d: proc %d read %d, want %d (stale copy across migration?)",
							seed, round, b, p.ID(), got, want)
					}
				}
			}
			p.Barrier()
			// Write phase.
			for b := 0; b < mfuzzBlocks; b++ {
				if p.ID() == prog.writer[round][b] {
					p.StoreU64(addr(b), mfuzzValue(seed, round, b))
				}
			}
			p.Barrier()
		}
	})
	return s
}

func TestMigrateFuzzPrograms(t *testing.T) {
	var totalMigs int64
	for seed := uint64(1); seed <= mfuzzSeeds; seed++ {
		s := runMigFuzz(t, seed, false)
		if err := s.CheckQuiescent(); err != nil {
			t.Errorf("seed %d: quiescence: %v", seed, err)
		}
		if err := s.CheckCoherence(); err != nil {
			t.Errorf("seed %d: coherence: %v", seed, err)
		}
		if err := s.CheckValueCoherence(); err != nil {
			t.Errorf("seed %d: value coherence: %v", seed, err)
		}
		var sent, recv, migs int64
		for i := range s.Stats().Procs {
			pr := &s.Stats().Procs[i]
			migs += pr.Migrations
			for _, b := range pr.Blocks {
				sent += b.InvalsSent
				recv += b.InvalsRecv
			}
		}
		if sent != recv {
			t.Errorf("seed %d: invalidation imbalance: sent %d, handled %d", seed, sent, recv)
		}
		totalMigs += migs

		// The parallel scheduler must reproduce the run exactly, migration
		// decisions included.
		ps := runMigFuzz(t, seed, true)
		pmigs, _ := migTotals(ps)
		if smigs, _ := migTotals(s); smigs != pmigs {
			t.Errorf("seed %d: serial migrated %d times, parallel %d", seed, smigs, pmigs)
		}
		if s.Stats().TotalMisses() != ps.Stats().TotalMisses() ||
			s.Stats().TotalMessages() != ps.Stats().TotalMessages() {
			t.Errorf("seed %d: serial/parallel stats diverged", seed)
		}
	}
	if totalMigs == 0 {
		t.Error("no seed ever migrated; the fuzz lost its subject")
	}
	t.Logf("total migrations across %d seeds: %d", mfuzzSeeds, totalMigs)
}
