package protocol

import (
	"fmt"

	"repro/internal/memory"
)

// msgKind enumerates the protocol message types.
type msgKind int

const (
	// Requests to the home processor.
	mReadReq msgKind = iota
	mReadExclReq
	mUpgradeReq

	// Forwards from the home to the owner.
	mReadFwd
	mReadExclFwd

	// Replies to the requester.
	mDataReply     // shared data
	mDataExclReply // exclusive data (+ number of invalidation acks to expect)
	mUpgradeAck    // upgrade granted (+ number of invalidation acks to expect)

	// Invalidations: home -> sharer, acknowledged to the requester.
	mInval
	mInvalAck

	// Owner -> home notification after an exclusive-to-shared downgrade,
	// so the home knows the block is no longer dirty remotely.
	mSharingUpdate

	// Intra-group downgrade messages (SMP-Shasta only).
	mDowngradeToShared
	mDowngradeToInvalid

	// Intra-group wakeup for processors stalled on a pending block.
	mWake

	// Synchronization traffic.
	mLockReq
	mLockGrant
	mLockRel
	mBarArrive
	mBarGo

	// Online home migration handshake: the deciding home hands the
	// directory entry to the new home (mMigrate) and queues requests until
	// the new home confirms installation (mMigrateAck).
	mMigrate
	mMigrateAck
)

var msgKindNames = map[msgKind]string{
	mReadReq: "ReadReq", mReadExclReq: "ReadExclReq", mUpgradeReq: "UpgradeReq",
	mReadFwd: "ReadFwd", mReadExclFwd: "ReadExclFwd",
	mDataReply: "DataReply", mDataExclReply: "DataExclReply", mUpgradeAck: "UpgradeAck",
	mInval: "Inval", mInvalAck: "InvalAck", mSharingUpdate: "SharingUpdate",
	mDowngradeToShared: "DowngradeToShared", mDowngradeToInvalid: "DowngradeToInvalid",
	mWake:    "Wake",
	mLockReq: "LockReq", mLockGrant: "LockGrant", mLockRel: "LockRel",
	mBarArrive: "BarArrive", mBarGo: "BarGo",
	mMigrate: "Migrate", mMigrateAck: "MigrateAck",
}

func (k msgKind) String() string {
	if s, ok := msgKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("msgKind(%d)", int(k))
}

// spanLeg reports whether the message kind is one leg of a miss-request
// lifecycle (request, forward or reply): the kinds whose sends carry an
// xmit trace event with the interconnect's timing decomposition, so the
// span layer can rebuild each request's stage waterfall.
func (k msgKind) spanLeg() bool {
	switch k {
	case mReadReq, mReadExclReq, mUpgradeReq, mReadFwd, mReadExclFwd,
		mDataReply, mDataExclReply, mUpgradeAck:
		return true
	}
	return false
}

// spanReply reports whether the kind is a reply leg, whose span requester
// is its destination (reply messages do not carry a requester field).
func (k msgKind) spanReply() bool {
	return k == mDataReply || k == mDataExclReply || k == mUpgradeAck
}

// syncMsg reports whether the kind is application synchronization traffic,
// whose send and handle trace details carry the primitive id.
func (k msgKind) syncMsg() bool {
	switch k {
	case mLockReq, mLockGrant, mLockRel, mBarArrive, mBarGo:
		return true
	}
	return false
}

// pmsg is the payload of every protocol message.
type pmsg struct {
	kind msgKind
	// baseLine identifies the block (its first line index).
	baseLine int
	// requester is the processor on whose behalf the message travels
	// (for forwards, invalidations and acks).
	requester int
	// data carries block contents for data replies.
	data []byte
	// acks is the number of invalidation acknowledgements the requester
	// should expect (data/upgrade replies).
	acks int
	// hops is 2 when the reply comes from the home, 3 when it comes from
	// a third processor, for the Figure 6 classification.
	hops int
	// id is a lock or barrier identifier for synchronization messages:
	// the lock id for lock traffic, the barrier generation for arrivals
	// and releases.
	id int
	// prev, on lock grants, names the lock's previous holder (-1 for the
	// first-ever grant); with hops (2 = granted immediately by the
	// manager, 3 = handed off from a release) it lets the requester
	// classify the hand-off for the per-primitive sync statistics.
	prev int
	// issueTime is copied from the original request so latency can be
	// measured at reply processing.
	issueTime int64
	// seq is the block's directory sequence number: the home increments
	// it for every exclusivity grant, tags invalidations and replies
	// with it, and groups tag their copies with the sequence that
	// produced them. An invalidation whose sequence does not exceed the
	// copy's is stale — it belongs to a write transaction serialized
	// before the copy was granted — and is acknowledged without effect.
	// (Replies and invalidations travel on independent channels, so a
	// stale invalidation can physically arrive after a newer copy.)
	seq int64
	// homeHint, on replies and invalidations under online migration,
	// names the block's live home plus one (0 means no hint); requesters
	// update their group's home view from it so later misses skip the
	// tombstone forward.
	homeHint int
	// mig carries the directory transfer of a migration handshake.
	mig *migPayload
	// counted marks a request already fed into the home's migration miss
	// model, so queue-and-replay paths do not count it twice.
	counted bool
}

// migPayload is the directory state an mMigrate message hands to the new
// home: the entry itself plus the block's migration count (hysteresis).
type migPayload struct {
	owner   int
	sharers procSet
	seq     int64
	dirty   bool
	moved   int
}

// sizeBytes returns the payload size used for transfer-time modelling:
// control messages are small; data messages carry the block.
func (m *pmsg) sizeBytes() int { return len(m.data) }

// storeRec is one pending store recorded in a miss entry, replayed over the
// reply data when it arrives (the protocol's non-blocking store merge).
type storeRec struct {
	addr memory.Addr
	size int // 4 or 8 bytes
	val  uint64
	proc int // issuing processor (for release tracking)
}
