package protocol

import (
	"fmt"

	"repro/internal/stats"
)

// Application synchronization: message-based queue locks (each lock is
// managed by a home processor) and a centralized barrier managed by
// processor 0. The paper notes its SMP-Shasta lock and barrier primitives
// were not yet tuned; these follow the same message-based design.
//
// Shasta implements eager release consistency: a processor stalls at a
// release point until its previous requests have completed. SMP-Shasta
// complicates this because other group processors may use data whose
// invalidation acknowledgements are outstanding; the epoch-based solution
// (Section 3.4.2) starts a new epoch at each release and waits only for
// store misses issued in earlier epochs, which also guarantees the wait
// terminates while other group members keep issuing stores.

// syncCost returns handler occupancy for sync messages: cheap in hardware
// mode (the ANL-macro comparison) and on a single processor, where lock and
// barrier operations are uncontended local bookkeeping — the Table 1
// checking-overhead measurement must not be polluted by multiprocessor
// synchronization costs.
func (p *Proc) syncCost() int64 {
	if p.sys.cfg.Hardware || p.sys.cfg.NumProcs == 1 {
		return p.sys.cfg.Costs.HWLock
	}
	return p.sys.cfg.Costs.SyncHandler
}

// releaseStores performs the release-side wait: all store misses of this
// processor's group issued in earlier epochs must complete. Waiting is
// attributed to write time, matching the paper's breakdown.
func (p *Proc) releaseStores() {
	if p.sys.cfg.Hardware {
		return
	}
	g := p.grp
	myEpoch := g.epoch
	g.epoch++
	qualifies := func(e *missEntry) bool {
		return e.hasStores && !e.complete && e.epoch <= myEpoch
	}
	clear := func() bool {
		for _, e := range g.miss {
			if qualifies(e) {
				return false
			}
		}
		for _, lst := range g.detached {
			for _, e := range lst {
				if qualifies(e) {
					return false
				}
			}
		}
		return true
	}
	if clear() {
		return
	}
	register := func(e *missEntry) { e.waiters.add(p.id) }
	for _, e := range g.miss {
		if qualifies(e) {
			register(e)
		}
	}
	for _, lst := range g.detached {
		for _, e := range lst {
			if qualifies(e) {
				register(e)
			}
		}
	}
	p.stallUntil(stats.Write, "release", clear)
}

// LockAcquire acquires application lock id, stalling in sync time until the
// lock manager grants it.
//
// The acquire brackets itself in the trace: a "lock-acquire id=<id>" sync
// event at the stall's start and a "lock-acquired id=<id> prev=<p> hops=<h>"
// event at the grant, naming the previous holder (-1 for the first grant)
// and the acquire's hop count (2 = granted immediately by the manager,
// 3 = handed off from a release). The per-primitive sync counters record
// the same instants, so the trace-derived wait and the counted WaitCycles
// reconcile exactly.
func (p *Proc) LockAcquire(id int) {
	p.poll()
	t0 := p.sp.Now()
	p.trace("sync", "", -1, "lock-acquire id=%d", id)
	home := p.sys.lockHome(id)
	p.send(home, &pmsg{kind: mLockReq, baseLine: -1, id: id, requester: p.id}, stats.Sync)
	p.stallUntil(stats.Sync, fmt.Sprintf("lock-%d", id), func() bool {
		return p.lockGranted[id]
	})
	p.lockGranted[id] = false
	prev, hops := p.lockGrantPrev[id], p.lockGrantHops[id]
	t1 := p.sp.Now()
	p.trace("sync", "", -1, "lock-acquired id=%d prev=%d hops=%d", id, prev, hops)
	st := p.st.Sync(stats.SyncLock, id)
	st.Acquires++
	if hops == 3 {
		st.Contended++
	}
	st.WaitCycles += t1 - t0
	if prev >= 0 {
		st.Handoffs[p.handoffClass(prev)]++
	}
	p.lockHeldFrom[id] = t1
}

// handoffClass classifies a lock hand-off by the previous holder's
// topological distance from this processor.
func (p *Proc) handoffClass(prev int) int {
	switch {
	case prev == p.id:
		return stats.HandoffSelf
	case p.sys.net.SameNode(prev, p.id):
		return stats.HandoffNode
	case p.sys.net.Topology().SameNodeGroup(prev, p.id):
		return stats.HandoffGroup
	default:
		return stats.HandoffRemote
	}
}

// LockRelease releases application lock id, first performing the
// release-consistency store wait.
func (p *Proc) LockRelease(id int) {
	p.poll()
	t := p.sp.Now()
	p.trace("sync", "", -1, "lock-release id=%d", id)
	if from, ok := p.lockHeldFrom[id]; ok {
		p.st.Sync(stats.SyncLock, id).HoldCycles += t - from
		delete(p.lockHeldFrom, id)
	}
	p.releaseStores()
	home := p.sys.lockHome(id)
	p.send(home, &pmsg{kind: mLockRel, baseLine: -1, id: id, requester: p.id}, stats.Sync)
}

// Barrier synchronizes all processors. Arrival has release semantics.
//
// With the FastSync extension the barrier is hierarchical: group members
// synchronize through a shared-memory arrival counter, only the last
// arriver of each group exchanges messages with the barrier manager, and
// the group's representative releases its members through shared memory —
// the paper's planned SMP-aware synchronization.
//
// The arrival traces "barrier gen=<g>" and the release "barrier-depart
// gen=<g>", bracketing each processor's wait; the barrier's per-primitive
// counters record the same two instants, so the trace-derived arrival and
// departure skews reconcile exactly with the counted WaitCycles.
func (p *Proc) Barrier() {
	p.poll()
	t0 := p.sp.Now()
	gen := p.barGen
	p.trace("sync", "", -1, "barrier gen=%d", gen)
	p.releaseStores()
	if p.sys.cfg.FastSync && p.sys.cfg.SMP() && !p.sys.cfg.Hardware {
		g := p.grp
		p.charge(stats.Sync, p.sys.cfg.Costs.HWBarrierPerProc)
		g.fsArrived++
		if g.fsArrived == len(g.members) {
			g.fsArrived = 0
			p.send(0, &pmsg{kind: mBarArrive, baseLine: -1, id: gen, requester: p.id}, stats.Sync)
		}
		p.stallUntil(stats.Sync, "barrier", func() bool { return p.barGen > gen })
	} else {
		p.send(0, &pmsg{kind: mBarArrive, baseLine: -1, id: gen, requester: p.id}, stats.Sync)
		p.stallUntil(stats.Sync, "barrier", func() bool { return p.barGen > gen })
	}
	t1 := p.sp.Now()
	p.trace("sync", "", -1, "barrier-depart gen=%d", gen)
	st := p.st.Sync(stats.SyncBarrier, 0)
	st.Generations++
	st.WaitCycles += t1 - t0
}

// handleSync processes lock and barrier messages.
func (p *Proc) handleSync(m *pmsg) {
	p.charge(stats.Message, p.syncCost())
	switch m.kind {
	case mLockReq:
		q := p.lockQueues[m.id]
		if !p.lockHeld[m.id] && len(q) == 0 {
			p.lockHeld[m.id] = true
			p.lockQueues[m.id] = []int{m.requester}
			p.sendGrant(m.id, m.requester, 2)
			return
		}
		p.lockQueues[m.id] = append(q, m.requester)

	case mLockRel:
		q := p.lockQueues[m.id]
		if len(q) == 0 || q[0] != m.requester {
			panic(fmt.Sprintf("protocol: lock %d released by %d which does not hold it", m.id, m.requester))
		}
		q = q[1:]
		p.lockQueues[m.id] = q
		if len(q) > 0 {
			p.sendGrant(m.id, q[0], 3)
		} else {
			p.lockHeld[m.id] = false
		}

	case mLockGrant:
		p.lockGrantPrev[m.id], p.lockGrantHops[m.id] = m.prev, m.hops
		p.lockGranted[m.id] = true

	case mBarArrive:
		p.barCount++
		if p.barCount == p.sys.barrierArrivals() {
			p.barCount = 0
			// The manager's own barGen is the generation being completed
			// (it has not departed yet); releases carry it as the
			// primitive id.
			gen := p.barGen
			if p.sys.fastSyncBarrier() {
				// Release one representative per group; it releases its
				// group members through shared memory.
				for _, g := range p.sys.groups {
					p.send(g.members[0], &pmsg{kind: mBarGo, baseLine: -1, id: gen}, stats.Message)
				}
				return
			}
			for q := 0; q < p.sys.cfg.NumProcs; q++ {
				if q == p.id {
					continue
				}
				p.send(q, &pmsg{kind: mBarGo, baseLine: -1, id: gen}, stats.Message)
			}
			p.barGen++ // the manager's own arrival completes locally
		}

	case mBarGo:
		if p.sys.fastSyncBarrier() {
			for _, mem := range p.grp.members {
				p.sys.procs[mem].barGen++
				p.wake(mem)
			}
			return
		}
		p.barGen++
	}
}

// sendGrant grants lock id to dst, naming the lock's previous holder (-1
// for the first grant) and the acquire's hop count: 2 when the manager
// granted the request immediately, 3 when the grant rode on a release.
func (p *Proc) sendGrant(id, dst, hops int) {
	prev, ok := p.lockPrev[id]
	if !ok {
		prev = -1
	}
	p.lockPrev[id] = dst
	p.send(dst, &pmsg{kind: mLockGrant, baseLine: -1, id: id,
		requester: dst, prev: prev, hops: hops}, stats.Message)
}

// ResetStats zeroes the statistics and marks the start of the measured
// parallel phase. Call it from exactly one processor immediately after a
// barrier, per standard SPLASH-2 methodology.
//
// The reset runs through a simulator fence, which observes every
// processor's counters exactly as of the fence's cut — this call's
// position plus one network lookahead, identical under either scheduler
// (see sim.Proc.Fence). Because all counters are additive, the reset does
// not clear them in place; it records the observed values as per-processor
// baselines that System.Run subtracts once at the end of the run. Live
// counters therefore stay append-only, which is what keeps the two
// schedulers bit-identical.
func (p *Proc) ResetStats() {
	sys := p.sys
	t := p.sp.Now()
	p.sp.Fence(func(q int, at *stats.Proc) {
		// Clone, not a struct copy: the baseline must not alias the live
		// per-block counter map.
		sys.statBase[q] = at.Clone()
		if q == p.id {
			sys.stats.Cycles = 0
			sys.stats.Measured = nil
			sys.startTime = t
			sys.endTime = 0
		}
	})
}

// EndMeasured marks the end of the measured parallel phase, so verification
// code that runs afterwards is excluded from the reported parallel time.
// Call it from exactly one processor immediately after a barrier. The
// per-processor time breakdown is frozen here too (see stats.Run.Measured),
// so post-measurement verification does not pollute the profile. Like
// ResetStats, the capture runs through a simulator fence and reads each
// processor's counters as of this call's position plus one network
// lookahead, net of the reset baseline.
func (p *Proc) EndMeasured() {
	sys := p.sys
	t := p.sp.Now()
	p.sp.Fence(func(q int, at *stats.Proc) {
		if q == p.id {
			sys.endTime = t
		}
		if sys.stats.Measured == nil {
			sys.stats.Measured = make([]stats.MeasuredBreakdown, len(sys.stats.Procs))
		}
		var m stats.MeasuredBreakdown
		base := &sys.statBase[q]
		for c := range at.TimeBy {
			m.TimeBy[c] = at.TimeBy[c] - base.TimeBy[c]
		}
		m.Downgrade = at.DowngradeCycles - base.DowngradeCycles
		sys.stats.Measured[q] = m
	})
}
