// Package protocol implements the Shasta software distributed shared
// memory protocols on the simulated cluster: the Base-Shasta directory
// protocol (per-processor coherence with message passing between all
// processors) and the SMP-Shasta extension that is the paper's
// contribution, in which the processors of a sharing group keep application
// data, the shared state table and the miss table coherent through the SMP
// hardware, and the race conditions between inline checks and protocol
// downgrades are eliminated with explicit intra-node downgrade messages and
// per-processor private state tables.
package protocol

import (
	"fmt"

	"repro/internal/checks"
	"repro/internal/memchan"
)

// Costs are protocol cycle costs (300 cycles = 1 us), calibrated so the
// simulated latencies match the paper's measurements: ~20 us to fetch a
// 64-byte block from a remote node (two hops) and ~11 us from another
// processor on the same node under Base-Shasta.
type Costs struct {
	// Entry is the cost of entering the protocol on a miss (saving
	// registers and dispatching), part of task time per the paper.
	Entry int64
	// HomeHandler is the occupancy of a request handler at the home
	// (directory lookup and update).
	HomeHandler int64
	// OwnerHandler is the occupancy of a forwarded-request handler at
	// the owner.
	OwnerHandler int64
	// ReplyHandler is the occupancy of a reply handler at the requester
	// (copying data, updating states, waking waiters).
	ReplyHandler int64
	// InvalHandler is the occupancy of an invalidation handler at a
	// sharer.
	InvalHandler int64
	// DowngradeHandler is the occupancy of an intra-node downgrade
	// message handler (SMP-Shasta).
	DowngradeHandler int64
	// SendOverhead is per-message send occupancy at the sender.
	SendOverhead int64
	// LockAcquire and LockRelease are the per-operation costs of the
	// protocol line locks (SMP-Shasta only; Base-Shasta needs none).
	LockAcquire, LockRelease int64
	// LockSpin is the busy-wait step while a line lock is held.
	LockSpin int64
	// PrivateUpgrade is the cost of upgrading a private state table
	// entry when the block is already valid in the group.
	PrivateUpgrade int64
	// MissTableOp is the cost of creating or updating a miss entry.
	MissTableOp int64
	// HWLock and HWBarrierPerProc are the synchronization costs of
	// hardware mode (the ANL-macro comparison runs).
	HWLock, HWBarrierPerProc int64
	// SyncHandler is the occupancy of lock-manager and barrier-manager
	// message handlers.
	SyncHandler int64
}

// DefaultCosts returns costs calibrated to the prototype (see package
// comment).
func DefaultCosts() Costs {
	return Costs{
		Entry:            300, // ~1 us: register save + dispatch
		HomeHandler:      900, // ~3 us
		OwnerHandler:     900,
		ReplyHandler:     900,
		InvalHandler:     600,
		DowngradeHandler: 900,
		SendOverhead:     200,
		LockAcquire:      50, // several per protocol op give the paper's
		LockRelease:      50, // "few us" latency increase on misses
		LockSpin:         30,
		PrivateUpgrade:   60,
		MissTableOp:      80,
		HWLock:           60,
		HWBarrierPerProc: 30,
		SyncHandler:      300,
	}
}

// Config describes one simulated run.
type Config struct {
	// NumProcs is the total processor count (1..16 in the paper).
	NumProcs int
	// ProcsPerNode is the SMP node size (4 on the AlphaServer 4100s).
	ProcsPerNode int
	// NodesPerGroup switches the interconnect to a hierarchical topology:
	// nodes are grouped in clusters of this many under a shared uplink,
	// and messages between node groups pay the uplink latency and
	// bandwidth on top of the node link (see memchan.Topology). 0 or 1
	// keeps the historical flat network. Scale experiments beyond ~16
	// processors use this to model realistic switch hierarchies.
	NodesPerGroup int
	// Clustering is the sharing-group size: 1 reproduces Base-Shasta
	// (each processor runs the protocol privately, though intra-node
	// messages still use the fast shared-memory queues); 2 or 4 runs
	// SMP-Shasta with groups of that size. Must divide ProcsPerNode.
	Clustering int
	// LineSize is the coherence line size in bytes (64 in the paper's
	// experiments).
	LineSize int
	// HeapBytes is the shared heap capacity.
	HeapBytes int64
	// Hardware runs without any software protocol or checks: every
	// access hits, and synchronization uses fast hardware primitives.
	// Used for the paper's ANL-macro efficiency comparison.
	Hardware bool
	// Parallel runs the simulation on the engine's conservative
	// window-based parallel scheduler: processors of different SMP nodes
	// execute concurrently on real goroutines within lookahead windows
	// bounded by the inter-node wire latency. Results — cycles,
	// statistics, traces, metrics — are bit-identical to the serial
	// scheduler's; only host wall-clock time changes. The engine falls
	// back to serial when the run has a single conflict domain (one node,
	// or Hardware mode's global sharing group).
	Parallel bool
	// FixedWindows forces the parallel scheduler's original fixed
	// lookahead windows, disabling the adaptive per-domain window
	// extension. Results are bit-identical either way; the knob exists so
	// benchmarks can measure what the adaptive windows buy.
	FixedWindows bool
	// WindowCap bounds how far an adaptive window may run ahead of a
	// domain's own virtual time, in cycles. 0 selects the engine default
	// (64 lookaheads). Only meaningful with Parallel and not FixedWindows.
	WindowCap int64
	// ForceSMPChecks makes the inline checks use the SMP-Shasta code
	// sequences even when Clustering is 1. The Table 1 checking-overhead
	// experiment measures SMP-Shasta checks on a single processor.
	ForceSMPChecks bool
	// ShareDirectory enables the paper's proposed (Section 3.1, "we plan
	// to exploit") optimization of sharing directory state among the
	// processors of a group: a requester colocated with the home
	// consults and updates the directory directly instead of sending an
	// internal message. Only meaningful with Clustering > 1.
	ShareDirectory bool
	// FastSync enables the paper's planned SMP-aware synchronization: a
	// hierarchical barrier in which group members synchronize through
	// shared memory and only one representative per group exchanges
	// messages with the barrier manager. Only meaningful with
	// Clustering > 1.
	FastSync bool
	// BroadcastDowngrades disables the private-state-table selectivity
	// and sends downgrade messages to every other processor of the group
	// on each downgrade, the behaviour of SoftFLASH's TLB shootdowns
	// (Section 5). Used as an ablation to quantify what the private
	// state tables save.
	BroadcastDowngrades bool
	// Migrate enables online home migration: every home keeps a
	// hop-weighted miss model per block (the same cost model as the
	// offline advisor, internal/obsv adviseHome) and, when another node
	// would serve the observed traffic more cheaply by more than
	// MigrateThreshold cycles, transfers the directory entry to the first
	// processor of that node. In-flight requests addressed to the old
	// home are forwarded along a tombstone; requesters learn the new home
	// from a hint piggybacked on replies. Decisions derive only from
	// virtual-time-ordered handler state, so serial and parallel runs
	// migrate identically. No-op under Hardware; incompatible with
	// ShareDirectory (a group reading the directory in place cannot
	// observe a re-home).
	Migrate bool
	// MigrateInterval is the number of home requests per block between
	// migration evaluations (default 16). Smaller reacts faster but
	// decides on noisier windows.
	MigrateInterval int
	// MigrateThreshold is the minimum estimated saving, in hop-weighted
	// cycles per evaluation window, before a migration triggers (default
	// 600, one local leg). Each completed migration of a block doubles
	// its effective threshold (up to 64x) — hysteresis against ping-pong
	// re-homing of genuinely shared blocks.
	MigrateThreshold int64
	// MaxOutstanding is the per-processor limit on outstanding store
	// misses before the processor stalls (write time).
	MaxOutstanding int
	// Net carries the interconnect parameters.
	Net memchan.Params
	// Costs carries protocol costs.
	Costs Costs
	// CheckCosts carries inline-check costs.
	CheckCosts checks.Costs
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.NumProcs == 0 {
		c.NumProcs = 16
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 4
	}
	if c.Clustering == 0 {
		c.Clustering = 1
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 16 << 20
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 4
	}
	if c.MigrateInterval == 0 {
		c.MigrateInterval = 16
	}
	if c.MigrateThreshold == 0 {
		c.MigrateThreshold = 600
	}
	if c.Net == (memchan.Params{}) {
		c.Net = memchan.DefaultParams()
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.CheckCosts == (checks.Costs{}) {
		c.CheckCosts = checks.Default()
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumProcs <= 0 {
		return fmt.Errorf("protocol: NumProcs %d", c.NumProcs)
	}
	if c.NumProcs > MaxProcs {
		return fmt.Errorf("protocol: NumProcs %d exceeds the %d-processor limit (raise procSetWords)",
			c.NumProcs, MaxProcs)
	}
	if c.Clustering > c.ProcsPerNode {
		return fmt.Errorf("protocol: clustering %d exceeds node size %d",
			c.Clustering, c.ProcsPerNode)
	}
	if c.ProcsPerNode%c.Clustering != 0 {
		return fmt.Errorf("protocol: clustering %d does not divide node size %d",
			c.Clustering, c.ProcsPerNode)
	}
	if c.NumProcs > c.Clustering && c.NumProcs%c.Clustering != 0 {
		return fmt.Errorf("protocol: %d processors not divisible into groups of %d",
			c.NumProcs, c.Clustering)
	}
	if c.Migrate && c.ShareDirectory {
		return fmt.Errorf("protocol: Migrate is incompatible with ShareDirectory" +
			" (in-place directory access cannot observe a re-home)")
	}
	return nil
}

// CheckMode returns the checking mode the configuration implies.
func (c Config) CheckMode() checks.Mode {
	switch {
	case c.Hardware:
		return checks.ModeOff
	case c.Clustering > 1 || c.ForceSMPChecks:
		return checks.ModeSMP
	default:
		return checks.ModeBase
	}
}

// SMP reports whether the run uses the SMP-Shasta protocol.
func (c Config) SMP() bool { return c.Clustering > 1 }
