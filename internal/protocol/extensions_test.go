package protocol

import (
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/stats"
)

// extSystem builds a 16-processor SMP-Shasta system with optional
// extensions.
func extSystem(mod func(*Config)) *System {
	cfg := Config{NumProcs: 16, ProcsPerNode: 4, Clustering: 4, HeapBytes: 1 << 20}
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg)
}

// extWorkload runs a mixed workload exercising requests, upgrades and
// barriers, and returns the final counter value for correctness checking.
func extWorkload(s *System) uint64 {
	a := s.Alloc(4096, 64)
	l := s.AllocLock()
	var final uint64
	s.Run(func(p *Proc) {
		p.Barrier()
		for i := 0; i < 10; i++ {
			addr := a + memory.Addr(((p.ID()*13+i*7)%64)*64)
			p.LockAcquire(l)
			p.StoreU64(addr, p.LoadU64(addr)+1)
			p.LockRelease(l)
			if i%3 == 0 {
				p.Barrier()
			}
		}
		p.Barrier()
		var sum uint64
		for b := 0; b < 64; b++ {
			sum += p.LoadU64(a + memory.Addr(b*64))
		}
		if p.ID() == 0 {
			final = sum
		}
		p.Barrier()
	})
	return final
}

func TestShareDirectoryCorrectAndCheaper(t *testing.T) {
	base := extSystem(nil)
	wantSum := extWorkload(base)
	if wantSum != 160 {
		t.Fatalf("baseline sum = %d, want 160", wantSum)
	}
	shared := extSystem(func(c *Config) { c.ShareDirectory = true })
	if got := extWorkload(shared); got != wantSum {
		t.Fatalf("ShareDirectory sum = %d, want %d", got, wantSum)
	}
	// Colocated home requests become direct directory accesses, so the
	// shared-directory run must send fewer protocol messages.
	bm := base.Stats().TotalMessages()
	sm := shared.Stats().TotalMessages()
	if sm >= bm {
		t.Fatalf("ShareDirectory did not reduce messages: %d vs %d", sm, bm)
	}
	if err := shared.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := shared.CheckValueCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestFastSyncBarrierCorrectAndCheaper(t *testing.T) {
	run := func(fast bool) (*System, int64) {
		s := extSystem(func(c *Config) { c.FastSync = fast })
		a := s.Alloc(1024, 64)
		finish := s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() == 0 {
				p.ResetStats()
			}
			p.Barrier()
			for i := 0; i < 20; i++ {
				p.StoreU64(a+memory.Addr(p.ID()*64), uint64(i))
				p.Barrier()
			}
		})
		return s, finish
	}
	slow, _ := run(false)
	fast, _ := run(true)
	// Same result structure; the hierarchical barrier must cut sync time
	// and barrier traffic.
	st, ft := slow.Stats().TimeBy(stats.Sync), fast.Stats().TimeBy(stats.Sync)
	if ft >= st {
		t.Fatalf("FastSync did not reduce sync time: %d vs %d", ft, st)
	}
	sm, fm := slow.Stats().TotalMessages(), fast.Stats().TotalMessages()
	if fm >= sm {
		t.Fatalf("FastSync did not reduce messages: %d vs %d", fm, sm)
	}
	if err := fast.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastDowngradesAblation(t *testing.T) {
	// One processor per node touches a block that then migrates; with
	// selective downgrades (private state tables) no downgrade messages
	// are needed, while SoftFLASH-style broadcast sends three per
	// downgrade. Correctness must hold either way.
	run := func(broadcast bool) *System {
		s := extSystem(func(c *Config) { c.BroadcastDowngrades = broadcast })
		a := s.Alloc(64, 64)
		l := s.AllocLock()
		s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() == 0 {
				p.ResetStats()
			}
			p.Barrier()
			for round := 0; round < 3; round++ {
				if p.ID()%4 == 0 { // one toucher per node
					p.LockAcquire(l)
					p.StoreU64(a, p.LoadU64(a)+1)
					p.LockRelease(l)
				}
				p.Barrier()
			}
			if got := p.LoadU64(a); got != 12 {
				t.Errorf("proc %d: counter = %d, want 12", p.ID(), got)
			}
			p.Barrier()
		})
		return s
	}
	selective := run(false)
	broadcast := run(true)
	sd := selective.Stats().MessagesBy(stats.DowngradeMsg)
	bd := broadcast.Stats().MessagesBy(stats.DowngradeMsg)
	if sd != 0 {
		t.Fatalf("selective downgrades sent %d messages; private state tables should avoid all", sd)
	}
	if bd == 0 {
		t.Fatal("broadcast mode sent no downgrade messages")
	}
	frac, total := broadcast.Stats().DowngradeDistribution()
	if total == 0 || frac[3] == 0 {
		t.Fatalf("broadcast downgrades should be 3-message: %v (total %d)", frac, total)
	}
}

func TestExtensionsComposeWithStress(t *testing.T) {
	// All three extensions together must preserve the stress-test
	// semantics.
	s := extSystem(func(c *Config) {
		c.ShareDirectory = true
		c.FastSync = true
		c.BroadcastDowngrades = true
	})
	if got := extWorkload(s); got != 160 {
		t.Fatalf("combined extensions sum = %d, want 160", got)
	}
	if err := s.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckValueCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterStress(t *testing.T) {
	for _, cl := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("C%d", cl), func(t *testing.T) {
			s := testSystem(16, cl)
			a := s.Alloc(8192, 64)
			l := s.AllocLock()
			s.Run(func(p *Proc) {
				p.Barrier()
				for i := 0; i < 25; i++ {
					addr := a + memory.Addr(((p.ID()*29+i*17)%128)*64)
					p.LockAcquire(l)
					p.StoreU64(addr, p.LoadU64(addr)+uint64(p.ID()))
					p.LockRelease(l)
				}
				p.Barrier()
			})
			if err := s.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
			if err := s.CheckCoherence(); err != nil {
				t.Fatal(err)
			}
			if err := s.CheckValueCoherence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
