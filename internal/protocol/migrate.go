package protocol

import "repro/internal/stats"

// Online home migration.
//
// Every home keeps, per migratable block, an incremental hop-weighted miss
// model — the same cost model the offline advisor applies to a finished
// run's per-block counters (internal/obsv adviseHome) — and re-evaluates it
// every Config.MigrateInterval home requests. When another node would have
// served the window's observed misses more cheaply by more than the
// (hysteresis-scaled) Config.MigrateThreshold, the home hands the directory
// entry to the first processor of that node with an mMigrate message and
// leaves a tombstone behind: requests that still arrive at the old home are
// queued until the new home acknowledges installation (mMigrateAck), then
// forwarded. Requesters learn the new home from a hint piggybacked on
// replies and invalidations, so steady-state traffic goes direct.
//
// Determinism: decisions read only the home's own directory state, which
// the protocol serializes per block, and every handshake or forward crosses
// SMP nodes (a migration target is always on a different node than the
// deciding home), so the messages carry at least the interconnect's
// remote-wire latency — the parallel scheduler's lookahead bound. Serial
// and parallel runs therefore migrate identically.
//
// Liveness: a tombstone always points one step along the block's migration
// chain, whose final element is the live home; a processor that re-becomes
// home deletes its tombstone (re-handling anything queued on it), so
// forwarding chains terminate. A hand-off's acknowledgement can arrive
// after the block has already migrated back and away again; the per-
// processor migSeq carried in mMigrate and echoed in mMigrateAck
// disambiguates, and a stale ack is ignored.

// migLocalLeg and migRemoteLeg are the per-hop cycle estimates of the cost
// model, shared with the offline advisor (internal/obsv).
const (
	migLocalLeg  = 600
	migRemoteLeg = 1800
)

// migRec is the tombstone an old home keeps for a block it migrated away.
type migRec struct {
	// to is the processor the directory entry was handed to.
	to int
	// seq is the hand-off's migSeq, echoed in the acknowledgement.
	seq int
	// acked is set once the new home confirmed installation; until then
	// arriving requests queue here instead of forwarding (a forward could
	// otherwise outrun the directory transfer).
	acked  bool
	queued []*pmsg
}

// migModel is a home's incremental per-node miss model for one block: the
// evidence window behind migration decisions.
type migModel struct {
	// misses[n] counts home requests (of any kind) from node n this
	// window; writes[n] counts the exclusive/upgrade subset. They mirror
	// the Misses and WriteMisses columns the offline advisor reads from
	// the per-block statistics.
	misses, writes []int64
	// reqs counts requests since the last evaluation.
	reqs int
	// moved counts the block's completed migrations, doubling the
	// effective threshold each time (hysteresis against ping-pong).
	moved int
}

// migPPN returns the node size used for migration node arithmetic, clamped
// exactly like the offline advisor clamps it (buildBlocks).
func (p *Proc) migPPN() int {
	ppn := p.sys.cfg.ProcsPerNode
	if ppn < 1 {
		ppn = 1
	}
	if p.sys.cfg.NumProcs < ppn {
		ppn = p.sys.cfg.NumProcs
	}
	return ppn
}

// migNodeOf returns the SMP node of processor q for the cost model.
func (p *Proc) migNodeOf(q int) int { return q / p.migPPN() }

// migNumNodes returns the node count for the cost model.
func (p *Proc) migNumNodes() int {
	ppn := p.migPPN()
	return (p.sys.cfg.NumProcs + ppn - 1) / ppn
}

// migHint returns the home hint this processor attaches to replies and
// invalidations it issues as a block's home: its own id plus one, or 0 when
// migration is off (no hint).
func (p *Proc) migHint() int {
	if p.sys.cfg.Migrate {
		return p.id + 1
	}
	return 0
}

// homeOf returns the processor this group should address home traffic for
// the block to: the group's learned home view under migration, else the
// configured page home. A stale view is harmless — the old home's
// tombstone forwards — and is corrected by the hint on the eventual reply.
func (p *Proc) homeOf(base int) int {
	if p.grp.homeView != nil {
		if h, ok := p.grp.homeView[base]; ok {
			return h
		}
	}
	return p.sys.homeProc(p.sys.lay.LineAddr(base))
}

// applyHomeHint updates the group's home view from a reply's or
// invalidation's piggybacked hint.
func (p *Proc) applyHomeHint(m *pmsg) {
	if m.homeHint == 0 || p.grp.homeView == nil {
		return
	}
	h := m.homeHint - 1
	if h == p.sys.homeProc(p.sys.lay.LineAddr(m.baseLine)) {
		delete(p.grp.homeView, m.baseLine)
	} else {
		p.grp.homeView[m.baseLine] = h
	}
}

// noteHomeMiss feeds one home request into the block's miss model. The
// counted flag keeps requests that get queued and re-dispatched (behind
// downgrades, pending entries or tombstones) from being counted twice.
func (p *Proc) noteHomeMiss(m *pmsg, de *dirEntry, write bool) {
	if !p.sys.cfg.Migrate || m.counted || !p.sys.lay.Migratable(m.baseLine) {
		return
	}
	m.counted = true
	mm := de.mig
	if mm == nil {
		n := p.migNumNodes()
		mm = &migModel{misses: make([]int64, n), writes: make([]int64, n)}
		de.mig = mm
	}
	rn := p.migNodeOf(m.requester)
	mm.misses[rn]++
	if write {
		mm.writes[rn]++
	}
	mm.reqs++
}

// maybeMigrate evaluates the block's miss model once per MigrateInterval
// requests and triggers a hand-off when the advised node's estimated
// saving clears the hysteresis threshold. Deferred by the home request
// handlers so it runs after the block lock is released; it reads only this
// processor's directory, so no lock is needed.
//
// The cost computation is the advisor's, aggregated by node (the leg cost
// depends only on nodes, so summing per-processor counts per node first is
// exact): with observed writers, a miss from node rn costs the request leg
// to the home plus — weighted by where the owner probably is — either the
// home's reply leg (owner at home, 2 hops) or the forward and reply legs
// through the owner's node (3 hops); with no writers every miss is a
// 2-hop round trip. Tie-break as in adviseHome: the current home wins
// ties, then the lowest node id, so advice and migration never flap
// between equal-cost homes.
func (p *Proc) maybeMigrate(base int) {
	cfg := &p.sys.cfg
	if !cfg.Migrate {
		return
	}
	de, ok := p.dir[base]
	if !ok || de.mig == nil || de.mig.reqs < cfg.MigrateInterval {
		return
	}
	mm := de.mig
	n := len(mm.misses)
	var w int64
	for _, x := range mm.writes {
		w += x
	}
	leg := func(a, b int) int64 {
		if a == b {
			return migLocalLeg
		}
		return migRemoteLeg
	}
	cost := func(h int) int64 {
		var c int64
		for rn := 0; rn < n; rn++ {
			miss := mm.misses[rn]
			if miss == 0 {
				continue
			}
			if w == 0 {
				c += miss * (leg(rn, h) + leg(h, rn))
				continue
			}
			for on := 0; on < n; on++ {
				wm := mm.writes[on]
				if wm == 0 {
					continue
				}
				path := leg(rn, h)
				if on == h {
					path += leg(h, rn)
				} else {
					path += leg(h, on) + leg(on, rn)
				}
				c += miss * wm * path
			}
		}
		return c
	}
	raw := make([]int64, n)
	for h := 0; h < n; h++ {
		raw[h] = cost(h)
	}
	homeNode := p.migNodeOf(p.id)
	bestNode := homeNode
	for h := 0; h < n; h++ {
		if raw[h] < raw[bestNode] {
			bestNode = h
		}
	}
	homeCost, bestCost := raw[homeNode], raw[bestNode]
	if w > 0 {
		homeCost /= w
		bestCost /= w
	}
	// Start a fresh evidence window whatever the decision.
	for i := range mm.misses {
		mm.misses[i], mm.writes[i] = 0, 0
	}
	mm.reqs = 0
	shift := mm.moved
	if shift > 6 {
		shift = 6
	}
	thresh := cfg.MigrateThreshold << uint(shift)
	if bestNode == homeNode || homeCost-bestCost <= thresh {
		return
	}
	p.migrateTo(base, de, bestNode*p.migPPN(), homeCost, bestCost, thresh)
}

// migrateTo hands the block's directory entry to the target processor and
// tombstones it locally. The target is always on another SMP node (the
// trigger requires the advised node to differ from the current home's).
func (p *Proc) migrateTo(base int, de *dirEntry, target int, homeCost, bestCost, thresh int64) {
	p.st.Migrations++
	p.blockStat(base).Migrations++
	p.trace("migrate", "", base, "to p%d homeCost=%d bestCost=%d thresh=%d moved=%d",
		target, homeCost, bestCost, thresh, de.mig.moved)
	p.migSeq++
	if p.migrated == nil {
		p.migrated = make(map[int]*migRec)
	}
	p.migrated[base] = &migRec{to: target, seq: p.migSeq}
	moved := de.mig.moved + 1
	delete(p.dir, base)
	p.send(target, &pmsg{kind: mMigrate, baseLine: base, requester: p.id,
		id: p.migSeq, mig: &migPayload{owner: de.owner, sharers: de.sharers,
			seq: de.seq, dirty: de.dirty, moved: moved}}, stats.Message)
}

// handleMigrate installs a migrated directory entry at the new home. If the
// block had previously migrated away from here and came back, the local
// tombstone is dropped and anything queued on it is re-handled right here —
// this processor is the live home again.
func (p *Proc) handleMigrate(m *pmsg) {
	p.charge(stats.Message, p.sys.cfg.Costs.HomeHandler)
	base := m.baseLine
	var replay []*pmsg
	if rec := p.migrated[base]; rec != nil {
		// The hand-off's ack may still be in flight; when it arrives its
		// sequence number will no longer match and it is ignored.
		replay = rec.queued
		delete(p.migrated, base)
	}
	de := &dirEntry{owner: m.mig.owner, sharers: m.mig.sharers,
		seq: m.mig.seq, dirty: m.mig.dirty}
	if p.sys.lay.Migratable(base) {
		n := p.migNumNodes()
		de.mig = &migModel{misses: make([]int64, n), writes: make([]int64, n),
			moved: m.mig.moved}
	}
	p.dir[base] = de
	// Publish the new placement: the group's own view, the global live-
	// home table (distinct slot per block; same-block writes are ordered
	// by the handshake chain) and the layout's migration epoch.
	if p.grp.homeView != nil {
		if p.id == p.sys.homeProc(p.sys.lay.LineAddr(base)) {
			delete(p.grp.homeView, base)
		} else {
			p.grp.homeView[base] = p.id
		}
	}
	p.sys.liveHome[base] = int32(p.id)
	p.sys.lay.BumpMigEpoch(base)
	p.trace("migrate", "", base, "installed from p%d moved=%d", m.requester, m.mig.moved)
	p.send(m.requester, &pmsg{kind: mMigrateAck, baseLine: base, id: m.id}, stats.Message)
	for _, q := range replay {
		p.handle(q)
	}
}

// handleMigrateAck completes a hand-off at the old home: the tombstone
// starts forwarding, beginning with everything queued on it (FIFO, so
// per-block request order through the old home is preserved).
func (p *Proc) handleMigrateAck(m *pmsg) {
	p.charge(stats.Message, p.sys.cfg.Costs.MissTableOp)
	rec := p.migrated[m.baseLine]
	if rec == nil || rec.seq != m.id || rec.acked {
		return // stale ack, superseded by a re-home
	}
	rec.acked = true
	queued := rec.queued
	rec.queued = nil
	for _, q := range queued {
		p.forwardMigrated(rec, q)
	}
}

// divertMigrated intercepts a home-bound message that arrived at a
// tombstoned block: queued until the hand-off is acknowledged, forwarded
// afterwards.
func (p *Proc) divertMigrated(rec *migRec, m *pmsg) {
	p.charge(stats.Message, p.sys.cfg.Costs.MissTableOp)
	if !rec.acked {
		rec.queued = append(rec.queued, m)
		return
	}
	p.forwardMigrated(rec, m)
}

// forwardMigrated relays a diverted message one step along the migration
// chain. The relay is an internal re-injection (no fresh send event; the
// original request's send still accounts for it in the trace), but it does
// occupy the wire, so it is counted in the message statistics and as a
// MigForward.
func (p *Proc) forwardMigrated(rec *migRec, m *pmsg) {
	p.st.MigForwards++
	p.trace("migfwd", m.kind.String(), m.baseLine, "to p%d R%d", rec.to, m.requester)
	if p.sys.net.SameNode(p.id, rec.to) {
		p.st.Messages[stats.LocalMsg]++
	} else {
		p.st.Messages[stats.RemoteMsg]++
	}
	p.sys.net.Send(p.sp, rec.to, 0, m)
}
