package protocol

import (
	"fmt"
	"math/bits"
	"strings"
)

// procSetWords is the fixed word count of a procSet. It bounds the
// processor count the protocol's directory bit vectors and waiter sets can
// represent; raising it is the only change needed to scale further.
const procSetWords = 4

// MaxProcs is the largest processor count a configuration may request: the
// directory sharer vectors, waiter sets and downgrade bookkeeping are fixed
// procSetWords*64-bit sets, sized for the 64-256 processor hierarchical
// topologies of the scale experiments.
const MaxProcs = procSetWords * 64

// procSet is a fixed-size processor bitset. It replaces the historical
// uint32 sharer masks (which capped the simulator at 32 processors) and the
// map[int]bool waiter sets (whose wakeAll scan was O(NumProcs) per protocol
// completion). The zero value is the empty set; all value methods are
// allocation-free.
type procSet [procSetWords]uint64

// bit returns the singleton set {p}.
func bit(p int) procSet {
	var s procSet
	s[uint(p)>>6] = 1 << (uint(p) & 63)
	return s
}

// add inserts p into the set.
func (s *procSet) add(p int) { s[uint(p)>>6] |= 1 << (uint(p) & 63) }

// has reports whether p is in the set.
func (s procSet) has(p int) bool { return s[uint(p)>>6]&(1<<(uint(p)&63)) != 0 }

// or returns the union of s and t.
func (s procSet) or(t procSet) procSet {
	for i := range s {
		s[i] |= t[i]
	}
	return s
}

// and returns the intersection of s and t.
func (s procSet) and(t procSet) procSet {
	for i := range s {
		s[i] &= t[i]
	}
	return s
}

// andNot returns s with t's members removed.
func (s procSet) andNot(t procSet) procSet {
	for i := range s {
		s[i] &^= t[i]
	}
	return s
}

// empty reports whether the set has no members.
func (s procSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// count returns the number of members.
func (s procSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f for every member in ascending processor order — the same
// order the old map-based wakeAll scan produced, so the simulation schedule
// (and therefore every trace and statistic) is unchanged by the
// representation switch.
func (s procSet) forEach(f func(p int)) {
	for i, w := range s {
		base := i << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// String renders the set as hex words, high word first, for debug output.
func (s procSet) String() string {
	var b strings.Builder
	for i := procSetWords - 1; i >= 0; i-- {
		if i < procSetWords-1 {
			b.WriteByte(':')
		}
		fmt.Fprintf(&b, "%x", s[i])
	}
	return b.String()
}
