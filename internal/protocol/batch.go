package protocol

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/memory"
	"repro/internal/stats"
)

// Batching (Sections 2.3 and 3.4.4): when a sequence of loads and stores
// covers a bounded range off a set of base addresses, Shasta emits one
// check per (line, base register) pair instead of one per access. The batch
// miss handler fetches every missing block and the batched code then runs
// without further checks.
//
// Because the batched accesses are not atomic with their checks,
// SMP-Shasta batch checks always consult the private state table (the flag
// technique is unsafe), which the paper identifies as the largest source of
// extra checking overhead. And because blocks can be invalidated while the
// handler waits for replies, blocks touched by a batch are marked:
// invalidation of a marked block is deferred until the batch ends, keeping
// batched loads correct.

// BatchRef describes one base register of a batch: the address range
// [Base, Base+Bytes) it can touch and whether any batched access through it
// is a store.
type BatchRef struct {
	Base  memory.Addr
	Bytes int
	Store bool
}

// Batch is the access context passed to a batched code sequence; its
// operations perform no per-access checks.
type Batch struct {
	p *Proc
	// acc accumulates the slots the batched body actually accesses, per
	// block. It is non-nil only when the batch missed under an attached
	// tracer: the miss events carry the batch's declared ranges, which
	// over-approximate, so the batch emits touch events with these exact
	// masks as the race detector's access evidence (see
	// internal/obsv/races.go).
	acc map[int]*batchAcc
}

// batchAcc is one block's accumulated actual access masks.
type batchAcc struct {
	rd, wr uint64
}

// note records the slots one batched access touches (no-op unless the
// batch is accumulating access evidence).
func (b *Batch) note(addr memory.Addr, size int, write bool) {
	if b.acc == nil {
		return
	}
	lay := b.p.sys.lay
	base, lines := lay.BlockOf(addr)
	lo := int64(addr - lay.LineAddr(base))
	m := stats.SlotMask(lines*lay.LineSize(), lo, lo+int64(size))
	a := b.acc[base]
	if a == nil {
		a = &batchAcc{}
		b.acc[base] = a
	}
	if write {
		a.wr |= m
	} else {
		a.rd |= m
	}
}

// LoadF64 reads a float64 without a per-access check.
func (b *Batch) LoadF64(addr memory.Addr) float64 {
	b.note(addr, 8, false)
	v := b.p.rawRead(addr, 8)
	if debugBatchFlagReads && uint32(v) == memory.FlagWord && uint32(v>>32) == memory.FlagWord {
		base, _ := b.p.sys.lay.BlockOf(addr)
		panic(fmt.Sprintf("batched load of flag value at addr %d (proc %d, block %d state %v, marks %d, inBatch %d)",
			addr, b.p.id, base, b.p.grp.img.State(base), b.p.grp.batchMarks[base], b.p.inBatch))
	}
	return math.Float64frombits(v)
}

// debugBatchFlagReads enables a diagnostic panic when a batched load reads
// the invalid-flag bit pattern, which almost always indicates a protocol
// bug rather than real application data.
var debugBatchFlagReads = false

// LoadU64 reads a 64-bit integer without a per-access check.
func (b *Batch) LoadU64(addr memory.Addr) uint64 {
	b.note(addr, 8, false)
	return b.p.rawRead(addr, 8)
}

// LoadU32 reads a 32-bit integer without a per-access check.
func (b *Batch) LoadU32(addr memory.Addr) uint32 {
	b.note(addr, 4, false)
	return uint32(b.p.rawRead(addr, 4))
}

// StoreF64 writes a float64 without a per-access check.
func (b *Batch) StoreF64(addr memory.Addr, v float64) {
	b.note(addr, 8, true)
	b.p.rawWrite(addr, 8, math.Float64bits(v))
}

// StoreU64 writes a 64-bit integer without a per-access check.
func (b *Batch) StoreU64(addr memory.Addr, v uint64) {
	b.note(addr, 8, true)
	b.p.rawWrite(addr, 8, v)
}

// StoreU32 writes a 32-bit integer without a per-access check.
func (b *Batch) StoreU32(addr memory.Addr, v uint32) {
	b.note(addr, 4, true)
	b.p.rawWrite(addr, 4, uint64(v))
}

// Compute charges application work inside the batch.
func (b *Batch) Compute(cycles int64) { b.p.Compute(cycles) }

// Batch executes f as a batched access sequence over the given references.
// The inline batch checks are charged; if every referenced block is in a
// sufficient state the sequence runs immediately, otherwise the batch miss
// handler fetches the missing blocks first.
func (p *Proc) Batch(refs []BatchRef, f func(*Batch)) {
	b := &Batch{p: p}
	if p.sys.cfg.Hardware {
		f(b)
		return
	}
	p.poll()
	cfg := &p.sys.cfg
	lay := p.sys.lay

	// Collect the (block, needStore) requirements and count line pairs
	// for check-cost purposes.
	linePairs := 0
	loadOnly := true
	needs := make(map[int]need2)
	for _, r := range refs {
		if r.Bytes <= 0 {
			continue
		}
		first := lay.LineOf(r.Base)
		last := lay.LineOf(r.Base + memory.Addr(r.Bytes) - 1)
		linePairs += last - first + 1
		if r.Store {
			loadOnly = false
		}
		for li := first; li <= last; {
			base, lines := lay.BlockOf(lay.LineAddr(li))
			n := needs[base]
			n.store = n.store || r.Store
			// The slots this reference's range covers within the block,
			// for the observatory's access masks. A reference is declared
			// conservatively, so this over-approximates the accesses the
			// batched body actually performs — deterministically so.
			bs := lay.LineAddr(base)
			be := bs + memory.Addr(lines*lay.LineSize())
			lo, hi := r.Base, r.Base+memory.Addr(r.Bytes)
			if lo < bs {
				lo = bs
			}
			if hi > be {
				hi = be
			}
			m := stats.SlotMask(lines*lay.LineSize(), int64(lo-bs), int64(hi-bs))
			if r.Store {
				n.wrMask |= m
			} else {
				n.rdMask |= m
			}
			needs[base] = n
			li = base + lines
		}
	}
	p.charge(stats.Task, cfg.CheckCosts.BatchCheck(cfg.CheckMode(), linePairs, loadOnly))
	p.st.ChecksExecuted++

	bases := make([]int, 0, len(needs))
	for base := range needs {
		bases = append(bases, base)
	}
	sort.Ints(bases)
	ok := true
	for _, base := range bases {
		if !p.batchStateOK(base, needs[base].store) {
			ok = false
			break
		}
	}
	if !ok {
		p.batchMiss(bases, needs)
		if p.sys.tracer != nil {
			b.acc = make(map[int]*batchAcc)
		}
	}
	p.inBatch++
	f(b)
	p.inBatch--
	if !ok {
		// The exact slots the body accessed, per fetched block. The body
		// does not poll, so the touch events' position still reflects the
		// processor's synchronization state when the accesses ran.
		for _, base := range bases {
			if a := b.acc[base]; a != nil && (a.rd|a.wr) != 0 {
				p.trace("touch", "", base, "r=%x w=%x", a.rd, a.wr)
			}
		}
		// Markers exist only when the miss handler ran; a batch whose
		// checks all passed proceeds without them (its body performs no
		// message handling, and in SMP mode any concurrent downgrade
		// waits on this processor's downgrade message, which it handles
		// only after the body).
		p.batchEnd(bases)
	}
}

// batchStateOK reports whether the processor may access the block within a
// batch without protocol intervention: the inline batch check.
func (p *Proc) batchStateOK(base int, store bool) bool {
	st := p.privState(base)
	if store {
		return st == memory.Exclusive
	}
	return st.Valid()
}

// batchMiss is the batch miss handler: it marks every block of the batch,
// issues requests for all insufficient blocks — pipelined, like the real
// handler, which "sends out requests for any missing blocks" and only then
// waits for the replies — and stalls until every block is available.
func (p *Proc) batchMiss(bases []int, needs map[int]need2) {
	c := p.sys.cfg.Costs
	p.charge(stats.Task, c.Entry)
	p.trace("batch", "", -1, "%d blocks", len(bases))
	for _, base := range bases {
		b := p.blockStat(base)
		b.ReadMask |= needs[base].rdMask
		b.WriteMask |= needs[base].wrMask
	}
	// Mark all blocks first so the invalid-flag store for any block
	// invalidated while the handler waits is deferred until the batch
	// ends, keeping batched loads correct (the paper's batch markers).
	for _, base := range bases {
		p.grp.batchMarks[base]++
	}
	// Issue-then-wait rounds. While waiting the handler services
	// incoming requests, so an earlier-acquired store block may be
	// downgraded again; the outer loop re-checks until one pass finds
	// every block sufficient. (Load blocks invalidated during the wait
	// need no re-fetch: their data stays until the deferred flag store.)
	// Once a pass succeeds the batch body is safe: this processor's
	// private state makes it a recipient of any downgrade, and it does
	// not poll again until the body has completed, so a downgrade's data
	// capture cannot precede the batched stores.
	for round := 0; ; round++ {
		if round > 0 {
			// Stagger retries so two batches stealing each other's
			// store blocks cannot alternate forever — the deterministic
			// analogue of the timing jitter that resolves such duels on
			// real hardware. Higher processor IDs and later rounds back
			// off longer, so some batch always completes a full pass.
			backoff := int64((p.id+1)*151 + round*977)
			if backoff > 60000 {
				backoff = 60000
			}
			p.charge(stats.Other, backoff)
		}
		if round > 0 && round%1000 == 0 {
			var detail string
			for _, b := range bases {
				e := p.grp.miss[b]
				es := "-"
				if e != nil {
					es = fmt.Sprintf("%v(iss%d,da%v,eg%v,acks%d/%d,det? n)", e.kind, e.issuer, e.dataArrived, e.exclGranted, e.acksReceived, e.acksExpected)
				}
				detail += fmt.Sprintf(" [%d st=%v priv=%v entry=%s dg=%v]", b, p.grp.img.State(b), p.privState(b), es, p.grp.downgrades[b] != nil)
			}
			panic(fmt.Sprintf("protocol: proc %d batch re-check round %d:%s", p.id, round, detail))
		}
		type waitItem struct {
			base   int
			store  bool
			entry  *missEntry
			dgWait bool
		}
		var waits []waitItem
		for _, base := range bases {
			store := needs[base].store
			if round > 0 && !store && p.batchStateOK(base, false) {
				continue
			}
			if p.batchStateOK(base, store) {
				continue
			}
			entry, dgWait := p.batchIssue(base, needs[base])
			if entry != nil || dgWait {
				waits = append(waits, waitItem{base, store, entry, dgWait})
			}
		}
		if len(waits) == 0 {
			return
		}
		for _, wi := range waits {
			if wi.dgWait {
				p.waitDowngrade(wi.base)
				continue
			}
			entry := wi.entry
			store := wi.store
			cat := stats.Read
			if store {
				cat = stats.Write
			}
			p.stallUntil(cat, "batch-miss", func() bool {
				return entry.complete ||
					(entry.dataArrived && (!store || entry.exclGranted))
			})
			p.upgradePrivate(wi.base, store)
		}
	}
}

// batchIssue brings one block's fetch in flight (or satisfies it locally)
// without stalling, so a batch's misses overlap. It returns the entry to
// wait on (nil if no wait is needed) and whether the block is mid-downgrade
// and must be waited out instead. The need carries the batch's declared
// sub-block ranges so an issued miss event records them as offset evidence.
func (p *Proc) batchIssue(base int, need need2) (*missEntry, bool) {
	store := need.store
	p.lockBlock(base)
	defer p.unlockBlock(base)
	if entry := p.grp.miss[base]; entry != nil && !entry.complete && !entry.acksOnly() {
		// Merge with the pending request. (Acknowledgement-waiting
		// entries are skipped: their data phase is over, so the state
		// switch below decides instead.)
		entry.waiters.add(p.id)
		if store {
			entry.wantExcl = true
		}
		p.st.MergedMisses++
		return entry, false
	}
	st := p.grp.img.State(base)
	switch {
	case st == memory.Exclusive:
		p.charge(stats.Other, p.sys.cfg.Costs.PrivateUpgrade)
		p.setPrivBlock(base, memory.Exclusive)
		p.st.LocalHits++
		return nil, false

	case st == memory.Shared && !store:
		p.charge(stats.Other, p.sys.cfg.Costs.PrivateUpgrade)
		p.setPrivBlock(base, memory.Shared)
		p.st.LocalHits++
		return nil, false

	case st == memory.Shared && store:
		entry := p.newMissEntry(base, stats.UpgradeMiss, need.rdMask, need.wrMask, true)
		entry.dataArrived = true // the shared copy is the data
		entry.hasStores = true
		entry.wantExcl = true
		p.outstandingStores++
		p.grp.img.SetBlockState(base, memory.PendingExcl)
		p.sendHome(p.homeOf(base), &pmsg{kind: mUpgradeReq, baseLine: base,
			requester: p.id, issueTime: p.sp.Now()}, stats.Write)
		return entry, false

	case st == memory.PendingDowngrade:
		return nil, true

	case st == memory.Invalid:
		kind := stats.ReadMiss
		mk := mReadReq
		if store {
			kind = stats.WriteMiss
			mk = mReadExclReq
		}
		entry := p.newMissEntry(base, kind, need.rdMask, need.wrMask, true)
		if store {
			entry.hasStores = true
			entry.wantExcl = true
			p.outstandingStores++
			p.grp.img.SetBlockState(base, memory.PendingExcl)
		} else {
			p.grp.img.SetBlockState(base, memory.PendingRead)
		}
		p.sendHome(p.homeOf(base), &pmsg{kind: mk, baseLine: base,
			requester: p.id, issueTime: p.sp.Now()}, stats.Read)
		return entry, false

	default:
		// A transient state; treat like a downgrade wait and re-check.
		return nil, true
	}
}

// upgradePrivate raises the private state after a batch fetch completes.
func (p *Proc) upgradePrivate(base int, store bool) {
	st := p.grp.img.State(base)
	if st == memory.Exclusive {
		p.setPrivBlock(base, memory.Exclusive)
	} else if st == memory.Shared && !store {
		p.setPrivBlock(base, memory.Shared)
	}
}

// need2 carries one block's batched requirements: whether any reference
// stores to it, and the sub-block slots the batch's reference ranges cover,
// recorded into the per-block access masks when the batch misses.
type need2 struct {
	store          bool
	rdMask, wrMask uint64
}

// batchEnd removes the batch markers and completes any invalid-flag stores
// that were deferred while the batch ran.
func (p *Proc) batchEnd(bases []int) {
	for _, base := range bases {
		p.grp.batchMarks[base]--
		if p.grp.batchMarks[base] == 0 {
			delete(p.grp.batchMarks, base)
			// Complete any flag fill that invalidateLocal deferred.
			if p.grp.img.State(base) == memory.Invalid && !p.grp.img.HasFlagWord(p.sys.lay.LineAddr(base)) {
				p.grp.img.FillFlag(base)
			}
		}
	}
}

// SetDebugBatchFlagReads toggles the batched-load flag-value diagnostic.
func SetDebugBatchFlagReads(on bool) { debugBatchFlagReads = on }
