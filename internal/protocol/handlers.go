package protocol

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/stats"
)

// send transmits a protocol message, charging send occupancy to cat and
// classifying the message for the Figure 7 statistics. Wake messages model
// intra-group notification through shared memory and are not counted.
//
// Miss-lifecycle messages (requests, forwards, replies) additionally emit
// an xmit trace event carrying the interconnect's timing decomposition of
// this delivery — destination, span requester, arrival cycle, and the
// queue/wire/serialization split — immediately after the send event, so
// the span layer (internal/obsv, OBSERVABILITY.md §10) can attribute each
// request's latency to its protocol stages. The components telescope:
// arrive - (send event time) = queue + wire + xfer, exactly.
func (p *Proc) send(dst int, m *pmsg, cat stats.TimeCategory) {
	c := p.sys.cfg.Costs
	p.charge(cat, c.SendOverhead)
	if m.kind != mWake {
		// Sync messages name their primitive (lock id, or barrier
		// generation) so the sync analyzer and race witnesses can
		// attribute them; prefix parsers ("to p<dst>") are unaffected.
		if m.kind.syncMsg() {
			p.trace("send", m.kind.String(), m.baseLine, "to p%d seq=%d acks=%d id=%d", dst, m.seq, m.acks, m.id)
		} else {
			p.trace("send", m.kind.String(), m.baseLine, "to p%d seq=%d acks=%d", dst, m.seq, m.acks)
		}
		switch {
		case m.kind == mDowngradeToShared || m.kind == mDowngradeToInvalid:
			p.st.Messages[stats.DowngradeMsg]++
		case p.sys.net.SameNode(p.id, dst):
			p.st.Messages[stats.LocalMsg]++
		default:
			p.st.Messages[stats.RemoteMsg]++
		}
	}
	info := p.sys.net.Send(p.sp, dst, m.sizeBytes(), m)
	if p.sys.tracer != nil && m.kind.spanLeg() {
		r := m.requester
		if m.kind.spanReply() {
			r = dst
		}
		p.trace("xmit", m.kind.String(), m.baseLine,
			"to p%d R%d arrive=%d queue=%d wire=%d xfer=%d via=%s",
			dst, r, info.Arrival, info.Queue, info.Wire, info.Transfer, info.Via())
	}
}

// sendHome routes a request to its block's home processor: as a protocol
// message normally, or — with the ShareDirectory extension, when the home
// is in the requester's own sharing group — through direct access to the
// shared directory, avoiding the internal message entirely (Section 3.1's
// "eliminating intra-node messages" optimization). The direct path enqueues
// the request on the requester itself with zero latency; any group member
// may execute home handlers when the directory is shared.
func (p *Proc) sendHome(home int, m *pmsg, cat stats.TimeCategory) {
	if p.sys.cfg.ShareDirectory && p.sys.cfg.SMP() && !p.sys.cfg.Hardware &&
		p.sys.procs[home].grp == p.grp {
		p.charge(cat, p.sys.cfg.Costs.MissTableOp)
		p.sys.net.Send(p.sp, p.id, 0, m)
		return
	}
	p.send(home, m, cat)
}

// wake nudges a stalled processor to re-evaluate its stall condition. It
// models the shared-memory visibility of protocol state within a group.
func (p *Proc) wake(dst int) {
	if dst == p.id {
		return
	}
	p.sys.net.Send(p.sp, dst, 0, &pmsg{kind: mWake})
}

// wakeAll wakes every waiter in the set, in processor order so the
// simulation schedule stays deterministic.
func (p *Proc) wakeAll(waiters procSet) {
	waiters.forEach(func(w int) { p.wake(w) })
}

// debugTraceBlock, when nonnegative, logs every protocol message for the
// block with that base line.
var debugTraceBlock = -1

// SetDebugTraceBlock enables message tracing for one block base line.
func SetDebugTraceBlock(base int) { debugTraceBlock = base }

// handle dispatches one protocol message, measuring handler occupancy for
// top-level dispatches (nested replays are part of their enclosing
// dispatch; wakeups are free and not counted).
func (p *Proc) handle(m *pmsg) {
	if m.kind != mWake {
		detail := ""
		if m.baseLine >= 0 {
			detail = p.traceState(m.baseLine)
		} else if m.kind.syncMsg() {
			detail = fmt.Sprintf("id=%d", m.id)
		}
		p.trace("handle", m.kind.String(), m.baseLine, "from R%d seq=%d: %s",
			m.requester, m.seq, detail)
		if p.handlerDepth == 0 {
			start := p.sp.Now()
			p.handlerDepth++
			defer func() {
				p.handlerDepth--
				p.st.HandlerCycles += p.sp.Now() - start
				p.st.HandlerEvents++
			}()
		}
	}
	if debugTraceBlock >= 0 && m.baseLine == debugTraceBlock && m.kind != mWake {
		e := p.grp.miss[m.baseLine]
		ek := "-"
		if e != nil && !e.complete {
			ek = e.kind.String()
		}
		fmt.Printf("[blk%d @%d] proc %d (grp %d) handles %v from R%d seq %d: state %v copySeq %d entry %s\n",
			m.baseLine, p.sp.Now(), p.id, p.grp.id, m.kind, m.requester, m.seq,
			p.grp.img.State(m.baseLine), p.grp.copySeq[m.baseLine], ek)
	}
	if p.sys.cfg.Migrate {
		switch m.kind {
		case mReadReq, mReadExclReq, mUpgradeReq, mSharingUpdate:
			// Home-bound traffic for a block whose directory migrated
			// away chases the live home along the tombstone chain.
			if rec := p.migrated[m.baseLine]; rec != nil {
				p.divertMigrated(rec, m)
				return
			}
		}
	}
	switch m.kind {
	case mWake:
		// Pure notification; the stall loop re-checks its condition.
	case mReadReq:
		p.handleReadReq(m)
	case mReadExclReq:
		p.handleReadExclReq(m)
	case mUpgradeReq:
		p.handleUpgradeReq(m)
	case mReadFwd:
		p.handleReadFwd(m)
	case mReadExclFwd:
		p.handleReadExclFwd(m)
	case mDataReply:
		p.handleDataReply(m)
	case mDataExclReply:
		p.handleDataExclReply(m)
	case mUpgradeAck:
		p.handleUpgradeAck(m)
	case mInval:
		p.handleInval(m)
	case mInvalAck:
		p.handleInvalAck(m)
	case mSharingUpdate:
		p.handleSharingUpdate(m)
	case mDowngradeToShared:
		p.handleDowngrade(m, memory.Shared)
	case mDowngradeToInvalid:
		p.handleDowngrade(m, memory.Invalid)
	case mLockReq, mLockGrant, mLockRel, mBarArrive, mBarGo:
		p.handleSync(m)
	case mMigrate:
		p.handleMigrate(m)
	case mMigrateAck:
		p.handleMigrateAck(m)
	default:
		panic(fmt.Sprintf("protocol: proc %d got unexpected message %v", p.id, m.kind))
	}
}

// --- Home handlers ---

// handleReadReq processes a read request at the home processor. The
// directory — not the group's local state table — decides how to serve it:
// the local state can lag the directory when the home's own copy has an
// invalidation still queued (the directory entry was already updated when
// that invalidation was sent), and serving from such a stale copy would
// leak pre-transaction data.
func (p *Proc) handleReadReq(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.HomeHandler)
	base, R := m.baseLine, m.requester
	sameGroup := p.grp == p.sys.procs[R].grp
	defer p.maybeMigrate(base)
	p.lockBlock(base)
	de := p.getDir(base)
	m.homeHint = p.migHint()
	p.noteHomeMiss(m, de, false)
	ownerInGroup := p.grp == p.sys.procs[de.owner].grp
	homeIsSharer := p.groupSharer(de.sharers) >= 0
	st := p.grp.img.State(base)
	// A granted upgrade waiting only for acknowledgements no longer
	// represents pending block state; serving this request will change
	// the block under it, so detach it first (new accesses then issue
	// fresh requests while releases still await its acks).
	var replay []*pmsg
	if entry := p.grp.miss[base]; entry != nil && !entry.complete && entry.acksOnly() {
		replay = p.detachEntry(entry)
	}
	defer func() { p.replayQueued(replay) }()
	switch {
	case sameGroup:
		// Requester and home are colocated; the data is not on this
		// node (or the requester would not have missed), so forward.
		de.sharers.add(R)
		p.send(de.owner, &pmsg{kind: mReadFwd, baseLine: base, requester: R,
			seq: de.seq, issueTime: m.issueTime, homeHint: m.homeHint}, stats.Message)
		p.unlockBlock(base)

	case homeIsSharer && st == memory.Shared:
		// The home node has a clean copy: serve directly (2 hops),
		// avoiding the forward to the owner.
		de.sharers.add(R)
		m.seq = de.seq
		p.replyData(R, base, m, 2)
		p.unlockBlock(base)

	case ownerInGroup && st == memory.Exclusive:
		// The home group is the owner: downgrade exclusive-to-shared
		// locally and serve (still 2 hops). The data is clean from here
		// on.
		de.sharers.add(R)
		de.dirty = false
		m.seq = de.seq
		p.startDowngrade(base, memory.Shared, memory.Exclusive, func(h *Proc) {
			h.grp.img.SetBlockState(base, memory.Shared)
			h.replyData(R, base, m, 2)
		})
		p.unlockBlock(base)

	case (homeIsSharer || ownerInGroup) && st == memory.PendingDowngrade:
		dg := p.grp.downgrades[base]
		dg.queued = append(dg.queued, m)
		p.unlockBlock(base)

	case homeIsSharer && p.grp.miss[base] != nil && !p.grp.miss[base].complete &&
		p.grp.miss[base].kind == stats.UpgradeMiss && p.grp.miss[base].dataArrived:
		// The home group holds a valid shared copy while its own
		// upgrade is outstanding; the read was serialized at the home
		// before the upgrade, so serve the current data.
		de.sharers.add(R)
		m.seq = de.seq
		p.replyData(R, base, m, 2)
		p.unlockBlock(base)

	case ownerInGroup && p.grp.miss[base] != nil && !p.grp.miss[base].complete:
		// The home group is the owner-to-be: its own fetch of the
		// block is in flight. Serialize the read after it.
		entry := p.grp.miss[base]
		entry.queued = append(entry.queued, m)
		p.unlockBlock(base)

	default:
		// The data is elsewhere (whatever the lagging local state
		// says): forward to the owner.
		de.sharers.add(R)
		p.send(de.owner, &pmsg{kind: mReadFwd, baseLine: base, requester: R,
			seq: de.seq, issueTime: m.issueTime, homeHint: m.homeHint}, stats.Message)
		p.unlockBlock(base)
	}
}

// handleReadExclReq processes a read-exclusive request at the home. As with
// reads, the directory decides; the group's local state only distinguishes
// sub-cases within a directory-confirmed branch.
func (p *Proc) handleReadExclReq(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.HomeHandler)
	base, R := m.baseLine, m.requester
	sameGroup := p.grp == p.sys.procs[R].grp
	defer p.maybeMigrate(base)
	p.lockBlock(base)
	de := p.getDir(base)
	m.homeHint = p.migHint()
	p.noteHomeMiss(m, de, true)
	ownerInGroup := p.grp == p.sys.procs[de.owner].grp
	homeSharer := p.groupSharer(de.sharers)
	st := p.grp.img.State(base)
	var replay []*pmsg
	if e := p.grp.miss[base]; e != nil && !e.complete && e.acksOnly() {
		replay = p.detachEntry(e)
	}
	defer func() { p.replayQueued(replay) }()
	entry := p.grp.miss[base]
	forward := func() {
		owner := de.owner
		targets := de.sharers.andNot(p.sys.groupMask(R).or(bit(owner)))
		acks := targets.count()
		de.seq++
		p.send(owner, &pmsg{kind: mReadExclFwd, baseLine: base, requester: R,
			seq: de.seq, acks: acks, issueTime: m.issueTime, homeHint: m.homeHint}, stats.Message)
		p.sendInvals(base, targets, R, de.seq)
		de.owner, de.sharers = R, bit(R)
	}
	switch {
	case sameGroup:
		// Requester colocated with the home; the node has no copy.
		forward()
		p.unlockBlock(base)

	case ownerInGroup && st == memory.Exclusive:
		// Home group is the dirty owner; downgrade to invalid locally
		// and serve with no external invalidations.
		de.seq++
		seq := de.seq
		p.startDowngrade(base, memory.Invalid, memory.Exclusive, func(h *Proc) {
			data := append([]byte(nil), h.grp.img.BlockData(base)...)
			h.invalidateLocal(base)
			h.send(R, &pmsg{kind: mDataExclReply, baseLine: base, data: data,
				seq: seq, acks: 0, hops: 2, issueTime: m.issueTime,
				homeHint: m.homeHint}, stats.Message)
		})
		de.owner, de.sharers, de.dirty = R, bit(R), true
		p.unlockBlock(base)

	case homeSharer >= 0 && st == memory.Shared:
		// Home group has a clean copy confirmed by the directory:
		// capture and send the data, invalidate every other sharer,
		// and invalidate the home group's own copy locally.
		external := de.sharers.andNot(bit(R).or(bit(homeSharer)))
		data := append([]byte(nil), p.grp.img.BlockData(base)...)
		acks := external.count()
		de.seq++
		p.send(R, &pmsg{kind: mDataExclReply, baseLine: base, data: data,
			seq: de.seq, acks: acks, hops: 2, issueTime: m.issueTime,
			homeHint: m.homeHint}, stats.Message)
		p.sendInvals(base, external, R, de.seq)
		p.startDowngrade(base, memory.Invalid, memory.Shared, func(h *Proc) {
			h.invalidateLocal(base)
		})
		de.owner, de.sharers, de.dirty = R, bit(R), true
		p.unlockBlock(base)

	case (homeSharer >= 0 || ownerInGroup) && st == memory.PendingDowngrade:
		dg := p.grp.downgrades[base]
		dg.queued = append(dg.queued, m)
		p.unlockBlock(base)

	case ownerInGroup && entry != nil && !entry.complete:
		// The home group's own request for the block is outstanding and
		// it is the registered owner; serialize after it completes.
		entry.queued = append(entry.queued, m)
		p.unlockBlock(base)

	default:
		forward()
		p.unlockBlock(base)
	}
}

// handleUpgradeReq processes an upgrade (exclusive) request at the home.
// The decision is directory-only — no data moves on an upgrade — and the
// sharer check is group-wide: the home records the one processor of a node
// that originally requested the block, which may differ from the group
// member now upgrading.
func (p *Proc) handleUpgradeReq(m *pmsg) {
	base, R := m.baseLine, m.requester
	defer p.maybeMigrate(base)
	de := p.getDir(base)
	m.homeHint = p.migHint()
	p.noteHomeMiss(m, de, true)
	gm := p.sys.groupMask(R)
	if de.sharers.and(gm).empty() ||
		(de.dirty && p.sys.procs[de.owner].grp != p.sys.procs[R].grp) {
		// Convert to a read-exclusive when the node's copy was
		// invalidated while the upgrade was in flight (it lost the race
		// at the home), or when another group's owner holds dirty data:
		// a plain upgrade acknowledgement would lose the owner's
		// pending stores, which only travel with a data reply.
		//
		// The conversion invalidates the requester's own stale copy
		// along with the other sharers (its pending stores are replayed
		// when the owner's data reply arrives); until then the
		// requester's pending entry must not satisfy loads or serve
		// forwards from the outdated data.
		c := p.sys.cfg.Costs
		p.charge(stats.Message, c.HomeHandler)
		p.lockBlock(base)
		owner := de.owner
		targets := de.sharers.andNot(bit(owner))
		acks := targets.count()
		de.seq++
		p.send(owner, &pmsg{kind: mReadExclFwd, baseLine: base, requester: R,
			seq: de.seq, acks: acks, issueTime: m.issueTime, homeHint: m.homeHint}, stats.Message)
		p.sendInvals(base, targets, R, de.seq)
		de.owner, de.sharers, de.dirty = R, bit(R), true
		p.unlockBlock(base)
		return
	}
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.HomeHandler)
	p.lockBlock(base)
	targets := de.sharers.andNot(gm)
	acks := targets.count()
	de.seq++
	p.send(R, &pmsg{kind: mUpgradeAck, baseLine: base, seq: de.seq, acks: acks,
		hops: 2, issueTime: m.issueTime, homeHint: m.homeHint}, stats.Message)
	p.sendInvals(base, targets, R, de.seq)
	de.owner, de.sharers, de.dirty = R, bit(R), true
	p.unlockBlock(base)
}

// groupSharer returns the processor ID in p's group present in the sharer
// set, or -1.
func (p *Proc) groupSharer(sharers procSet) int {
	for _, mem := range p.grp.members {
		if sharers.has(mem) {
			return mem
		}
	}
	return -1
}

// sendInvals sends invalidations to every processor in the target set, with
// acknowledgements directed to the requester and the granting transaction's
// sequence number attached.
func (p *Proc) sendInvals(base int, targets procSet, requester int, seq int64) {
	if targets.empty() {
		return
	}
	if debugTraceBlock >= 0 && base == debugTraceBlock {
		fmt.Printf("[blk%d @%d] proc %d sends invals to %v for R%d seq %d\n",
			base, p.sp.Now(), p.id, targets, requester, seq)
	}
	p.blockStat(base).InvalsSent += int64(targets.count())
	targets.forEach(func(t int) {
		p.send(t, &pmsg{kind: mInval, baseLine: base, requester: requester,
			seq: seq, homeHint: p.migHint()}, stats.Message)
	})
}

// replyData sends a shared-data reply for a block. The home hint travels
// from the request (set by the home, even when an owner serves 3-hop).
func (p *Proc) replyData(R, base int, req *pmsg, hops int) {
	data := append([]byte(nil), p.grp.img.BlockData(base)...)
	p.send(R, &pmsg{kind: mDataReply, baseLine: base, data: data, hops: hops,
		seq: req.seq, issueTime: req.issueTime, homeHint: req.homeHint}, stats.Message)
}

// --- Owner handlers ---

// handleReadFwd processes a read request forwarded to the owner.
func (p *Proc) handleReadFwd(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.OwnerHandler)
	base, R := m.baseLine, m.requester
	p.lockBlock(base)
	entry := p.grp.miss[base]
	st := p.grp.img.State(base)
	switch {
	case entry != nil && !entry.complete && entry.acksOnly():
		// Our granted exclusivity is being read: downgrade to shared
		// and detach the acknowledgement-waiting entry so a later store
		// issues a fresh upgrade (the reader must be invalidated then).
		replay := p.detachEntry(entry)
		p.startDowngrade(base, memory.Shared, st, func(h *Proc) {
			h.grp.img.SetBlockState(base, memory.Shared)
			h.replyData(R, base, m, 3)
			h.notifyClean(base, m.seq)
		})
		p.unlockBlock(base)
		p.replayQueued(replay)
		return
	case entry != nil && !entry.complete && entry.kind == stats.UpgradeMiss && entry.dataArrived:
		// Valid shared data underneath a pending, not-yet-granted
		// upgrade; the read was serialized before the upgrade at the
		// home.
		p.replyData(R, base, m, 3)
	case entry != nil && !entry.complete:
		entry.queued = append(entry.queued, m)
	case st == memory.Exclusive:
		p.startDowngrade(base, memory.Shared, memory.Exclusive, func(h *Proc) {
			h.grp.img.SetBlockState(base, memory.Shared)
			h.replyData(R, base, m, 3)
			h.notifyClean(base, m.seq)
		})
	case st == memory.Shared:
		// Already downgraded by an earlier read; serve directly.
		p.replyData(R, base, m, 3)
		p.notifyClean(base, m.seq)
	case st == memory.PendingDowngrade:
		dg := p.grp.downgrades[base]
		dg.queued = append(dg.queued, m)
	default:
		panic(fmt.Sprintf("protocol: read forward found owner %d with state %v for block %d",
			p.id, st, base))
	}
	p.unlockBlock(base)
}

// handleReadExclFwd processes a read-exclusive request forwarded to the
// owner.
func (p *Proc) handleReadExclFwd(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.OwnerHandler)
	base, R := m.baseLine, m.requester
	p.lockBlock(base)
	entry := p.grp.miss[base]
	st := p.grp.img.State(base)
	serve := func(pre memory.State) {
		p.startDowngrade(base, memory.Invalid, pre, func(h *Proc) {
			data := append([]byte(nil), h.grp.img.BlockData(base)...)
			h.invalidateLocal(base)
			h.send(R, &pmsg{kind: mDataExclReply, baseLine: base, data: data,
				seq: m.seq, acks: m.acks, hops: 3, issueTime: m.issueTime,
				homeHint: m.homeHint}, stats.Message)
		})
	}
	switch {
	case entry != nil && !entry.complete && entry.acksOnly():
		// Our exclusivity was granted and only acknowledgements are
		// outstanding, but this transaction (serialized after ours at
		// the home) takes the block away. Serve the data — it includes
		// our merged stores — and detach the entry so later accesses
		// issue fresh requests instead of merging with it.
		pre := memory.Shared
		if st == memory.Exclusive {
			pre = memory.Exclusive
		}
		replay := p.detachEntry(entry)
		serve(pre)
		p.unlockBlock(base)
		p.replayQueued(replay)
		return
	case entry != nil && !entry.complete && entry.kind == stats.UpgradeMiss && entry.dataArrived:
		// Shared data underneath a pending, not-yet-granted upgrade; we
		// lost the race: serve the current data and invalidate. Our
		// upgrade will be converted to a read-exclusive at the home, and
		// until that data reply arrives the entry no longer has usable
		// data (the serve is about to flag-fill the block).
		entry.dataArrived = false
		serve(memory.Shared)
	case entry != nil && !entry.complete:
		entry.queued = append(entry.queued, m)
	case st == memory.Exclusive:
		serve(memory.Exclusive)
	case st == memory.Shared:
		serve(memory.Shared)
	case st == memory.PendingDowngrade:
		dg := p.grp.downgrades[base]
		dg.queued = append(dg.queued, m)
	default:
		panic(fmt.Sprintf("protocol: read-excl forward found owner %d with state %v for block %d",
			p.id, st, base))
	}
	p.unlockBlock(base)
}

// bumpCopySeq raises the group's transaction floor for a block: the group
// has observed (served or been invalidated by) the transaction with this
// sequence number, so any reply tagged with an older sequence is
// superseded.
func (p *Proc) bumpCopySeq(base int, seq int64) {
	if seq > p.grp.copySeq[base] {
		p.grp.copySeq[base] = seq
	}
}

// superseded handles a reply whose transaction was overtaken before its
// data arrived: a later transaction already took the block (capturing this
// group's merged stores with it), so nothing is installed; the entry
// completes so stalled processors re-dispatch and releases stop waiting.
// Must be called with the block lock held; returns the messages to replay.
func (p *Proc) superseded(entry *missEntry) []*pmsg {
	entry.complete = true
	delete(p.grp.miss, entry.baseLine)
	if entry.hasStores {
		p.sys.procs[entry.issuer].outstandingStores--
	}
	// The block belongs to the later transaction's owner now; whatever
	// pending state this entry had left behind becomes invalid.
	if !p.grp.img.State(entry.baseLine).Valid() {
		p.invalidateLocal(entry.baseLine)
	}
	p.wakeAll(entry.waiters)
	queued := entry.queued
	entry.queued = nil
	return queued
}

// notifyClean tells the block's home that the owner's copy has been
// downgraded to shared: the data is clean and plain upgrades may be granted
// again. The sequence number identifies the transaction epoch; the home
// ignores the update if a newer exclusivity grant has intervened.
func (p *Proc) notifyClean(base int, seq int64) {
	home := p.homeOf(base)
	if home == p.id && p.sys.cfg.Migrate && p.migrated[base] != nil {
		// The directory migrated away from us; chase it like any other
		// sharing update. The self-send is traced, so the eventual handle
		// at the live home has a matching send event.
		p.send(p.id, &pmsg{kind: mSharingUpdate, baseLine: base, seq: seq}, stats.Message)
		return
	}
	if home == p.id || (p.sys.cfg.ShareDirectory && p.sys.procs[home].grp == p.grp) {
		de := p.getDir(base)
		if seq == de.seq {
			de.dirty = false
		}
		return
	}
	p.send(home, &pmsg{kind: mSharingUpdate, baseLine: base, seq: seq}, stats.Message)
}

// handleSharingUpdate processes an owner's clean notification at the home.
func (p *Proc) handleSharingUpdate(m *pmsg) {
	p.charge(stats.Message, p.sys.cfg.Costs.MissTableOp)
	de := p.getDir(m.baseLine)
	if m.seq == de.seq {
		de.dirty = false
	}
}

// invalidateLocal fills the invalid flag and marks the block invalid in the
// group, deferring the flag store if a batch has the block marked
// (Section 3.4.4).
func (p *Proc) invalidateLocal(base int) {
	if debugTraceBlock >= 0 && base == debugTraceBlock {
		fmt.Printf("[blk%d @%d] proc %d invalidateLocal (marks %d)\n", base, p.sp.Now(), p.id, p.grp.batchMarks[base])
	}
	p.trace("invalidate", "", base, "deferred=%v", p.grp.batchMarks[base] > 0)
	if p.grp.batchMarks[base] > 0 {
		// The flag store is deferred until the batch ends; state becomes
		// invalid immediately so new protocol entries behave correctly.
		p.grp.img.SetBlockState(base, memory.Invalid)
		return
	}
	p.grp.img.FillFlag(base)
	p.grp.img.SetBlockState(base, memory.Invalid)
}

// --- Invalidation handlers ---

// handleInval processes an invalidation at a sharer.
func (p *Proc) handleInval(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.InvalHandler)
	p.applyHomeHint(m)
	base, R := m.baseLine, m.requester
	p.blockStat(base).InvalsRecv++
	p.lockBlock(base)
	if m.seq <= p.grp.copySeq[base] {
		// Stale invalidation: it belongs to a write transaction
		// serialized before the copy this group currently holds was
		// granted (the copy arrived on a faster channel). Acknowledge
		// without invalidating.
		p.send(R, &pmsg{kind: mInvalAck, baseLine: base}, stats.Message)
		p.unlockBlock(base)
		return
	}
	p.bumpCopySeq(base, m.seq)
	entry := p.grp.miss[base]
	st := p.grp.img.State(base)
	switch {
	case entry != nil && !entry.complete && entry.acksOnly() && st.Valid():
		// The invalidation belongs to a transaction serialized after our
		// grant, whose acknowledgements are still outstanding. Detach
		// the entry (new accesses must re-fetch) and invalidate the copy
		// properly — state and flag together, never one without the
		// other.
		replay := p.detachEntry(entry)
		p.startDowngrade(base, memory.Invalid, st, func(h *Proc) {
			h.invalidateLocal(base)
			h.send(R, &pmsg{kind: mInvalAck, baseLine: base}, stats.Message)
		})
		p.unlockBlock(base)
		p.replayQueued(replay)
		return
	case st == memory.Shared:
		p.startDowngrade(base, memory.Invalid, memory.Shared, func(h *Proc) {
			h.invalidateLocal(base)
			h.send(R, &pmsg{kind: mInvalAck, baseLine: base}, stats.Message)
		})
	case st == memory.PendingDowngrade:
		dg := p.grp.downgrades[base]
		dg.queued = append(dg.queued, m)
	case entry != nil && !entry.complete:
		// Our own request is in flight and our stale copy must go: fill
		// the flag (pending stores are replayed on the reply), downgrade
		// private states, keep the pending state, and acknowledge. A
		// pending upgrade loses its underlying data: it will be
		// converted to a read-exclusive at the home, and until that data
		// arrives the entry must not satisfy loads or serve forwards.
		entry.dataArrived = false
		p.startDowngrade(base, memory.Invalid, memory.Invalid, func(h *Proc) {
			h.grp.img.FillFlag(base)
			h.send(R, &pmsg{kind: mInvalAck, baseLine: base}, stats.Message)
		})
	default:
		// Already invalid (stale invalidation); just acknowledge.
		p.send(R, &pmsg{kind: mInvalAck, baseLine: base}, stats.Message)
	}
	p.unlockBlock(base)
}

// handleInvalAck processes an invalidation acknowledgement at the
// requester.
func (p *Proc) handleInvalAck(m *pmsg) {
	p.charge(stats.Message, p.sys.cfg.Costs.MissTableOp)
	base := m.baseLine
	p.lockBlock(base)
	// Acknowledgements are indistinguishable, and transactions for a
	// block are serialized at the home, so credit the oldest detached
	// entry first.
	if lst := p.grp.detached[base]; len(lst) > 0 {
		e := lst[0]
		e.acksReceived++
		if e.acksReceived >= e.acksExpected {
			e.complete = true
			if e.hasStores {
				p.sys.procs[e.issuer].outstandingStores--
			}
			if len(lst) == 1 {
				delete(p.grp.detached, base)
			} else {
				p.grp.detached[base] = lst[1:]
			}
			p.wakeAll(e.waiters)
		}
		p.unlockBlock(base)
		return
	}
	entry := p.grp.miss[base]
	if entry == nil || entry.complete {
		p.unlockBlock(base)
		return
	}
	entry.acksReceived++
	done := p.completeIfDone(entry)
	p.unlockBlock(base)
	if done {
		p.replayQueued(entry.queued)
	}
}

// --- Reply handlers (at the requester) ---

// mergeStores replays the entry's pending stores over freshly installed
// data, implementing the non-blocking store merge.
func (p *Proc) mergeStores(entry *missEntry) {
	for _, s := range entry.stores {
		p.rawWrite(s.addr, s.size, s.val)
	}
}

// recordMissLatency files one completed miss round trip into the latency
// histograms, keyed by request type and by whether the block's home is on
// this processor's own SMP node. It only reads the clock.
func (p *Proc) recordMissLatency(kind stats.MissKind, base int, issueTime int64) {
	home := p.homeOf(base)
	p.st.RecordMissLatency(kind, !p.sys.net.SameNode(p.id, home), p.sp.Now()-issueTime)
}

// handleDataReply installs shared data at the requester.
func (p *Proc) handleDataReply(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.ReplyHandler)
	p.applyHomeHint(m)
	base := m.baseLine
	p.lockBlock(base)
	entry := p.grp.miss[base]
	if entry == nil || entry.complete {
		panic(fmt.Sprintf("protocol: unexpected data reply for block %d at proc %d", base, p.id))
	}
	p.st.Misses[stats.ReadMiss][m.hops-2]++
	p.blockStat(base).Misses[stats.ReadMiss][m.hops-2]++
	if m.seq < p.grp.copySeq[base] {
		queued := p.superseded(entry)
		p.unlockBlock(base)
		p.replayQueued(queued)
		return
	}
	p.grp.img.CopyBlockIn(base, m.data)
	p.mergeStores(entry)
	p.grp.copySeq[base] = m.seq
	entry.dataArrived = true
	p.trace("install", "", base, "shared seq=%d hops=%d", m.seq, m.hops)
	p.st.ReadLatencySum += p.sp.Now() - m.issueTime
	p.st.ReadLatencyCount++
	p.recordMissLatency(stats.ReadMiss, base, m.issueTime)
	var done bool
	if entry.wantExcl && !entry.upgradeSent {
		// Stores were merged into a read miss; now that the shared copy
		// is here, request exclusivity.
		entry.upgradeSent = true
		p.grp.img.SetBlockState(base, memory.PendingExcl)
		home := p.homeOf(base)
		p.sendHome(home, &pmsg{kind: mUpgradeReq, baseLine: base, requester: p.id,
			issueTime: p.sp.Now()}, stats.Message)
	} else {
		p.grp.img.SetBlockState(base, memory.Shared)
		if entry.issuer == p.id {
			p.setPrivBlock(base, memory.Shared)
		}
		done = p.completeIfDone(entry)
	}
	p.wakeAll(entry.waiters)
	p.unlockBlock(base)
	if done {
		p.replayQueued(entry.queued)
	}
}

// handleDataExclReply installs exclusive data at the requester.
func (p *Proc) handleDataExclReply(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.ReplyHandler)
	p.applyHomeHint(m)
	base := m.baseLine
	p.lockBlock(base)
	entry := p.grp.miss[base]
	if entry == nil || entry.complete {
		panic(fmt.Sprintf("protocol: unexpected exclusive reply for block %d at proc %d", base, p.id))
	}
	p.st.Misses[entry.kind][m.hops-2]++
	p.blockStat(base).Misses[entry.kind][m.hops-2]++
	if m.seq < p.grp.copySeq[base] {
		queued := p.superseded(entry)
		p.unlockBlock(base)
		p.replayQueued(queued)
		return
	}
	p.grp.img.CopyBlockIn(base, m.data)
	p.mergeStores(entry)
	p.grp.copySeq[base] = m.seq
	entry.dataArrived = true
	entry.exclGranted = true
	entry.acksExpected = m.acks
	p.trace("install", "", base, "exclusive seq=%d hops=%d acks=%d", m.seq, m.hops, m.acks)
	if entry.kind == stats.ReadMiss {
		p.st.ReadLatencySum += p.sp.Now() - m.issueTime
		p.st.ReadLatencyCount++
	}
	p.recordMissLatency(entry.kind, base, m.issueTime)
	p.grp.img.SetBlockState(base, memory.Exclusive)
	if entry.issuer == p.id {
		p.setPrivBlock(base, memory.Exclusive)
	}
	done := p.completeIfDone(entry)
	p.wakeAll(entry.waiters)
	p.unlockBlock(base)
	if done {
		p.replayQueued(entry.queued)
	}
}

// handleUpgradeAck grants exclusivity at the requester (data was already
// valid locally).
func (p *Proc) handleUpgradeAck(m *pmsg) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.ReplyHandler)
	p.applyHomeHint(m)
	base := m.baseLine
	p.lockBlock(base)
	entry := p.grp.miss[base]
	if entry == nil || entry.complete {
		panic(fmt.Sprintf("protocol: unexpected upgrade ack for block %d at proc %d", base, p.id))
	}
	p.st.Misses[stats.UpgradeMiss][m.hops-2]++
	p.blockStat(base).Misses[stats.UpgradeMiss][m.hops-2]++
	if m.seq < p.grp.copySeq[base] {
		queued := p.superseded(entry)
		p.unlockBlock(base)
		p.replayQueued(queued)
		return
	}
	entry.dataArrived = true
	entry.exclGranted = true
	entry.acksExpected = m.acks
	p.grp.copySeq[base] = m.seq
	p.trace("install", "", base, "upgrade seq=%d acks=%d", m.seq, m.acks)
	p.recordMissLatency(stats.UpgradeMiss, base, m.issueTime)
	p.grp.img.SetBlockState(base, memory.Exclusive)
	if entry.issuer == p.id {
		p.setPrivBlock(base, memory.Exclusive)
	}
	p.mergeStores(entry)
	done := p.completeIfDone(entry)
	p.wakeAll(entry.waiters)
	p.unlockBlock(base)
	if done {
		p.replayQueued(entry.queued)
	}
}

// completeIfDone finishes a miss entry once data and all acknowledgements
// have arrived; it reports whether completion happened. Must be called with
// the block lock held.
func (p *Proc) completeIfDone(entry *missEntry) bool {
	if !entry.dataArrived || (entry.wantExcl && !entry.exclGranted) ||
		entry.acksReceived < entry.acksExpected {
		return false
	}
	entry.complete = true
	delete(p.grp.miss, entry.baseLine)
	if entry.hasStores {
		p.sys.procs[entry.issuer].outstandingStores--
	}
	p.wakeAll(entry.waiters)
	return true
}

// detachEntry removes an acknowledgement-waiting entry from the miss table
// once the group has lost (or downgraded) the block it covers: the entry no
// longer describes the block's state, so new accesses must issue fresh
// requests, but releases still wait for its outstanding acknowledgements.
// Queued messages serialized behind it are returned for replay. Must be
// called with the block lock held; the caller replays after unlocking.
func (p *Proc) detachEntry(entry *missEntry) []*pmsg {
	delete(p.grp.miss, entry.baseLine)
	p.grp.detached[entry.baseLine] = append(p.grp.detached[entry.baseLine], entry)
	queued := entry.queued
	entry.queued = nil
	p.wakeAll(entry.waiters)
	return queued
}

// acksOnly reports whether the entry waits only for invalidation
// acknowledgements (its data and exclusivity have arrived).
func (e *missEntry) acksOnly() bool {
	return e.dataArrived && (!e.wantExcl || e.exclGranted) &&
		e.acksReceived < e.acksExpected
}

// replayQueued re-dispatches protocol messages that were serialized behind
// a completed entry or downgrade. Must be called without the block lock.
// Home-bound requests must execute at the home processor (the directory is
// not shared within a group), so if the completing processor is not the
// home they are re-injected into the home's queue; everything else operates
// on group-level state and can run right here.
func (p *Proc) replayQueued(queued []*pmsg) {
	for _, q := range queued {
		switch q.kind {
		case mReadReq, mReadExclReq, mUpgradeReq:
			home := p.homeOf(q.baseLine)
			canHandle := home == p.id ||
				(p.sys.cfg.ShareDirectory && p.sys.procs[home].grp == p.grp)
			if !canHandle {
				// Internal requeue, not a new protocol message: bypass
				// the send-side statistics. Under migration a stale view
				// is fine — the addressee's tombstone chases the live
				// home, and a local re-dispatch diverts the same way.
				p.sys.net.Send(p.sp, home, 0, q)
				continue
			}
			p.handle(q)
		default:
			p.handle(q)
		}
	}
}

// --- Downgrades (Section 3.3 / 3.4.3) ---

// startDowngrade begins downgrading a block within the group. The caller
// holds the block's line lock. Downgrade messages are sent selectively to
// the local processors whose private state tables show they have accessed
// the block; the deferred action (the normal protocol behaviour for the
// triggering request) runs immediately if no messages are needed, otherwise
// on the processor that handles the last downgrade message.
//
// preState records the block's pre-downgrade state: while the downgrade is
// in progress, local accesses compatible with preState are still served.
func (p *Proc) startDowngrade(base int, target, preState memory.State, action func(*Proc)) {
	if p.grp.downgrades[base] != nil {
		panic(fmt.Sprintf("protocol: overlapping downgrades for block %d", base))
	}
	var recipients []int
	for _, mem := range p.grp.members {
		if mem == p.id {
			continue
		}
		q := p.sys.procs[mem]
		if q.priv == nil {
			continue // Base-Shasta: single-member groups
		}
		if p.sys.cfg.BroadcastDowngrades {
			// SoftFLASH-style shootdown: every other processor of the
			// node is downgraded regardless of whether it accessed the
			// block (the ablation of the private state tables).
			recipients = append(recipients, mem)
			continue
		}
		ps := q.priv.Get(base)
		need := false
		if target == memory.Shared {
			need = ps == memory.Exclusive
		} else {
			need = ps.Valid()
		}
		if need {
			recipients = append(recipients, mem)
		}
	}
	p.trace("downgrade", "", base, "to %v, %d recipients (pre %v)", target, len(recipients), preState)
	// Downgrade our own private state immediately.
	p.downgradePriv(base, target)
	if p.sys.cfg.SMP() {
		n := len(recipients)
		if n > stats.MaxDowngradeFanout {
			n = stats.MaxDowngradeFanout
		}
		p.st.Downgrades[n]++
		bs := p.blockStat(base)
		bs.Downgrades++
		bs.DowngradeMsgs += int64(len(recipients))
	}
	if len(recipients) == 0 {
		action(p)
		return
	}
	if preState.Valid() {
		p.grp.img.SetBlockState(base, memory.PendingDowngrade)
	}
	dg := &dgEntry{
		baseLine:  base,
		remaining: len(recipients),
		preState:  preState,
		action:    action,
	}
	p.grp.downgrades[base] = dg
	kind := mDowngradeToInvalid
	if target == memory.Shared {
		kind = mDowngradeToShared
	}
	for _, r := range recipients {
		p.send(r, &pmsg{kind: kind, baseLine: base}, stats.Message)
	}
}

// downgradePriv lowers this processor's private state for a block.
func (p *Proc) downgradePriv(base int, target memory.State) {
	if p.priv == nil {
		return
	}
	if target == memory.Shared {
		if p.priv.Get(base) == memory.Exclusive {
			p.priv.SetBlock(p.sys.lay, base, memory.Shared)
		}
		return
	}
	p.priv.SetBlock(p.sys.lay, base, memory.Invalid)
}

// handleDowngrade processes an intra-group downgrade message. The processor
// that handles the last one executes the deferred protocol action
// (Section 3.4.3); processors are never stalled by downgrades.
func (p *Proc) handleDowngrade(m *pmsg, target memory.State) {
	c := p.sys.cfg.Costs
	p.charge(stats.Message, c.DowngradeHandler)
	p.st.DowngradeCycles += c.DowngradeHandler
	base := m.baseLine
	p.lockBlock(base)
	dg := p.grp.downgrades[base]
	if dg == nil {
		panic(fmt.Sprintf("protocol: downgrade message for block %d with no entry at proc %d", base, p.id))
	}
	p.downgradePriv(base, target)
	dg.remaining--
	var finished bool
	if dg.remaining == 0 {
		dg.action(p)
		dg.done = true
		delete(p.grp.downgrades, base)
		p.wakeAll(dg.waiters)
		finished = true
	}
	p.unlockBlock(base)
	if finished {
		p.replayQueued(dg.queued)
	}
}
