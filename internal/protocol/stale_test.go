package protocol

import (
	"fmt"
	"testing"

	"repro/internal/memory"
)

// TestNeighbourExchangeFreshness mimics Ocean's structure: each processor
// owns a row of blocks, repeatedly writes a phase-stamped value into its
// row (batched), and after a barrier reads its neighbours' rows (batched).
// Every read must observe the value written in the current phase — a stale
// value is a coherence violation, since barriers have release/acquire
// semantics.
func TestNeighbourExchangeFreshness(t *testing.T) {
	for _, procs := range []int{8, 16} {
		for _, cl := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("P%d-C%d", procs, cl), func(t *testing.T) {
				const blocksPerRow = 4
				const phases = 6
				s := testSystem(procs, cl)
				rowBytes := int64(blocksPerRow * 64)
				rows := make([]memory.Addr, procs)
				for i := range rows {
					rows[i] = s.AllocPlaced(rowBytes, 64, i)
				}
				at := func(row, blk, word int) memory.Addr {
					return rows[row] + memory.Addr(blk*64+word*8)
				}
				s.Run(func(p *Proc) {
					id := p.ID()
					left := (id + procs - 1) % procs
					right := (id + 1) % procs
					for ph := 1; ph <= phases; ph++ {
						// Write own row.
						p.Batch([]BatchRef{{Base: rows[id], Bytes: int(rowBytes), Store: true}},
							func(b *Batch) {
								for blk := 0; blk < blocksPerRow; blk++ {
									for wd := 0; wd < 8; wd++ {
										b.StoreU64(at(id, blk, wd), uint64(ph*1000+id))
									}
								}
							})
						p.Barrier()
						// Read both neighbours' rows.
						p.Batch([]BatchRef{
							{Base: rows[left], Bytes: int(rowBytes)},
							{Base: rows[right], Bytes: int(rowBytes)},
						}, func(b *Batch) {
							for blk := 0; blk < blocksPerRow; blk++ {
								for wd := 0; wd < 8; wd++ {
									if got := b.LoadU64(at(left, blk, wd)); got != uint64(ph*1000+left) {
										t.Errorf("proc %d phase %d: left row blk %d wd %d = %d, want %d",
											id, ph, blk, wd, got, ph*1000+left)
									}
									if got := b.LoadU64(at(right, blk, wd)); got != uint64(ph*1000+right) {
										t.Errorf("proc %d phase %d: right row blk %d wd %d = %d, want %d",
											id, ph, blk, wd, got, ph*1000+right)
									}
								}
							}
						})
						p.Barrier()
					}
				})
			})
		}
	}
}

// TestSingleAccessFreshness is the unbatched variant.
func TestSingleAccessFreshness(t *testing.T) {
	for _, cl := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("C%d", cl), func(t *testing.T) {
			const phases = 6
			procs := 8
			s := testSystem(procs, cl)
			slots := make([]memory.Addr, procs)
			for i := range slots {
				slots[i] = s.AllocPlaced(64, 64, i)
			}
			s.Run(func(p *Proc) {
				id := p.ID()
				for ph := 1; ph <= phases; ph++ {
					p.StoreU64(slots[id], uint64(ph*100+id))
					p.Barrier()
					for q := 0; q < procs; q++ {
						if got := p.LoadU64(slots[q]); got != uint64(ph*100+q) {
							t.Errorf("proc %d phase %d: slot %d = %d, want %d",
								id, ph, q, got, ph*100+q)
						}
					}
					p.Barrier()
				}
			})
		})
	}
}
