package protocol

import (
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/stats"
)

// migSystem builds a system with online migration enabled.
func migSystem(procs, clustering int, parallel bool) *System {
	return New(Config{
		NumProcs:     procs,
		ProcsPerNode: 4,
		Clustering:   clustering,
		HeapBytes:    1 << 20,
		Migrate:      true,
		Parallel:     parallel,
	})
}

// migTotals sums the migration counters across processors.
func migTotals(s *System) (migs, fwds int64) {
	for i := range s.Stats().Procs {
		migs += s.Stats().Procs[i].Migrations
		fwds += s.Stats().Procs[i].MigForwards
	}
	return
}

// checkInvariants runs the post-run protocol checks.
func checkInvariants(t *testing.T, s *System) {
	t.Helper()
	if err := s.CheckQuiescent(); err != nil {
		t.Errorf("quiescence: %v", err)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Errorf("coherence: %v", err)
	}
	if err := s.CheckValueCoherence(); err != nil {
		t.Errorf("value coherence: %v", err)
	}
}

// skewedWriters ping-pongs stores between two processors of one remote node
// on a block homed (configured) at processor 0 — the canonical misplaced
// block. Returns the shared address.
func skewedWriters(s *System, rounds int) memory.Addr {
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if p.ID() == 4 && i%2 == 0 {
				p.StoreU64(a, uint64(i+1))
			}
			if p.ID() == 5 && i%2 == 1 {
				p.StoreU64(a, uint64(i+1))
			}
			p.Barrier()
		}
	})
	return a
}

// TestMigrateTriggersOnSkew checks that a block whose traffic comes entirely
// from another node migrates there, that the move is recorded in the per-proc
// and per-block counters and the live-home table, and that the protocol
// stays coherent and quiescent.
func TestMigrateTriggersOnSkew(t *testing.T) {
	s := migSystem(8, 1, false)
	a := skewedWriters(s, 48)
	migs, fwds := migTotals(s)
	if migs == 0 {
		t.Fatal("skewed traffic triggered no migration")
	}
	base := s.lay.LineOf(a)
	if h := s.HomeOf(base); h/4 != 1 {
		t.Errorf("live home = p%d, want a node-1 processor", h)
	}
	if got := s.Stats().Procs[0].Blocks[base]; got == nil || got.Migrations == 0 {
		t.Error("old home's per-block Migrations counter not incremented")
	}
	t.Logf("migrations=%d forwards=%d", migs, fwds)
	checkInvariants(t, s)
}

// TestMigratePinnedNeverMoves checks that AllocPinned exempts a block from
// migration under the same skewed traffic that migrates a default
// allocation.
func TestMigratePinnedNeverMoves(t *testing.T) {
	s := migSystem(8, 1, false)
	a := s.AllocPinned(64, 64)
	s.Run(func(p *Proc) {
		for i := 0; i < 48; i++ {
			if p.ID() == 4 && i%2 == 0 {
				p.StoreU64(a, uint64(i+1))
			}
			if p.ID() == 5 && i%2 == 1 {
				p.StoreU64(a, uint64(i+1))
			}
			p.Barrier()
		}
	})
	if migs, _ := migTotals(s); migs != 0 {
		t.Errorf("pinned block migrated %d times", migs)
	}
	checkInvariants(t, s)
}

// TestMigrateReducesCycles compares the skewed-writer workload with
// migration off and on: re-homing the block to its writers' node must lower
// the end-to-end cycle count (the remote home round trips become local).
func TestMigrateReducesCycles(t *testing.T) {
	run := func(migrate bool) int64 {
		s := New(Config{NumProcs: 8, ProcsPerNode: 4, Clustering: 1,
			HeapBytes: 1 << 20, Migrate: migrate})
		a := s.AllocPlaced(64, 64, 0)
		var finish int64
		finish = s.Run(func(p *Proc) {
			for i := 0; i < 200; i++ {
				if p.ID() == 4 && i%2 == 0 {
					p.StoreU64(a, uint64(i+1))
				}
				if p.ID() == 5 && i%2 == 1 {
					p.StoreU64(a, uint64(i+1))
				}
				p.Barrier()
			}
		})
		return finish
	}
	off, on := run(false), run(true)
	if on >= off {
		t.Errorf("migration did not pay: %d cycles with, %d without", on, off)
	}
	t.Logf("cycles: off=%d on=%d (%.1f%% saved)", off, on,
		100*float64(off-on)/float64(off))
}

// TestMigrateRaceLitmus races third-party traffic against the migration
// handshake: two node-1 processors hammer a misplaced block (driving its
// migration) while a node-2 processor loads it continuously, so requests are
// in flight to the old home across the tombstone window and must be queued
// and forwarded, not lost. The final value must be visible everywhere.
func TestMigrateRaceLitmus(t *testing.T) {
	const rounds = 96
	s := migSystem(12, 1, false)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		switch p.ID() {
		case 4, 5:
			for i := 0; i < rounds; i++ {
				if i%2 == p.ID()%2 {
					p.StoreU64(a, uint64(i+1))
				}
				p.Compute(200)
			}
		case 8:
			for i := 0; i < rounds; i++ {
				if v := p.LoadU64(a); v > rounds {
					t.Errorf("impossible value %d", v)
				}
				p.Compute(150)
			}
		}
		p.Barrier()
		if v := p.LoadU64(a); v > rounds {
			t.Errorf("proc %d: impossible final value %d", p.ID(), v)
		}
		p.Barrier()
		// Publish a sentinel through the migrated home: every processor
		// must observe it, proving no stale copy survived the re-home.
		if p.ID() == 0 {
			p.StoreU64(a, rounds+7)
		}
		p.Barrier()
		if v := p.LoadU64(a); v != rounds+7 {
			t.Errorf("proc %d: sentinel read %d, want %d", p.ID(), v, rounds+7)
		}
	})
	migs, fwds := migTotals(s)
	if migs == 0 {
		t.Error("litmus never migrated; workload lost its trigger")
	}
	if fwds == 0 {
		t.Error("litmus never forwarded a request along a tombstone; race window not exercised")
	}
	t.Logf("migrations=%d forwards=%d", migs, fwds)
	checkInvariants(t, s)
}

// TestMigrateInvalBalance re-runs the litmus shape and checks that no
// invalidation was lost or duplicated across migrations: every invalidation
// sent was handled exactly once.
func TestMigrateInvalBalance(t *testing.T) {
	s := migSystem(12, 1, false)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		switch p.ID() {
		case 4, 5:
			for i := 0; i < 64; i++ {
				if i%2 == p.ID()%2 {
					p.StoreU64(a, uint64(i+1))
				}
				p.Compute(180)
			}
		case 8:
			for i := 0; i < 64; i++ {
				_ = p.LoadU64(a)
				p.Compute(140)
			}
		}
		p.Barrier()
	})
	var sent, recv int64
	for i := range s.Stats().Procs {
		for _, b := range s.Stats().Procs[i].Blocks {
			sent += b.InvalsSent
			recv += b.InvalsRecv
		}
	}
	if sent != recv {
		t.Errorf("invalidation imbalance across migration: sent %d, handled %d", sent, recv)
	}
	checkInvariants(t, s)
}

// TestMigrateSerialParallelIdentical pins the determinism contract with
// migration enabled: the serial and window-based parallel schedulers must
// produce byte-identical results on a workload that migrates and forwards.
func TestMigrateSerialParallelIdentical(t *testing.T) {
	run := func(parallel bool) (int64, *stats.Run, int64, int64) {
		s := migSystem(12, 1, parallel)
		a := s.AllocPlaced(64, 64, 0)
		finish := s.Run(func(p *Proc) {
			switch p.ID() {
			case 4, 5:
				for i := 0; i < 96; i++ {
					if i%2 == p.ID()%2 {
						p.StoreU64(a, uint64(i+1))
					}
					p.Compute(200)
				}
			case 8:
				for i := 0; i < 96; i++ {
					_ = p.LoadU64(a)
					p.Compute(150)
				}
			}
			p.Barrier()
		})
		migs, fwds := migTotals(s)
		return finish, s.Stats(), migs, fwds
	}
	sf, ss, sm, sw := run(false)
	pf, ps, pm, pw := run(true)
	if sf != pf || sm != pm || sw != pw {
		t.Fatalf("serial (finish=%d migs=%d fwds=%d) != parallel (finish=%d migs=%d fwds=%d)",
			sf, sm, sw, pf, pm, pw)
	}
	if sm == 0 {
		t.Fatal("determinism workload never migrated")
	}
	if ss.TotalMisses() != ps.TotalMisses() || ss.TotalMessages() != ps.TotalMessages() {
		t.Fatalf("stats diverged: misses %d vs %d, messages %d vs %d",
			ss.TotalMisses(), ps.TotalMisses(), ss.TotalMessages(), ps.TotalMessages())
	}
	for i := range ss.Procs {
		if ss.Procs[i].TimeBy != ps.Procs[i].TimeBy {
			t.Errorf("proc %d time breakdown diverged", i)
		}
	}
}

// TestMigrateChainReturns drives a block's traffic back and forth between
// two nodes so it migrates more than once, exercising the tombstone-chain
// and re-home paths (a processor that becomes home again must drop its own
// tombstone) plus the hysteresis doubling.
func TestMigrateChainReturns(t *testing.T) {
	s := migSystem(8, 1, false)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		// Phase 1: node 1 hammers -> migrate 0 -> 4.
		for i := 0; i < 48; i++ {
			if p.ID() == 4 && i%2 == 0 {
				p.StoreU64(a, 1)
			}
			if p.ID() == 5 && i%2 == 1 {
				p.StoreU64(a, 2)
			}
			p.Barrier()
		}
		// Phase 2: node 0 hammers -> migrate back (threshold doubled).
		for i := 0; i < 96; i++ {
			if p.ID() == 0 && i%2 == 0 {
				p.StoreU64(a, 3)
			}
			if p.ID() == 1 && i%2 == 1 {
				p.StoreU64(a, 4)
			}
			p.Barrier()
		}
	})
	migs, fwds := migTotals(s)
	if migs < 2 {
		t.Errorf("want >= 2 migrations (there and back), got %d", migs)
	}
	base := s.lay.LineOf(a)
	if h := s.HomeOf(base); h/4 != 0 {
		t.Errorf("live home = p%d, want back on node 0", h)
	}
	t.Logf("migrations=%d forwards=%d", migs, fwds)
	checkInvariants(t, s)
}

// TestMigrateEpochAdvances checks the layout's migration epoch moves with
// each installation, giving observers a cheap staleness fence.
func TestMigrateEpochAdvances(t *testing.T) {
	s := migSystem(8, 1, false)
	a := skewedWriters(s, 48)
	base := s.lay.LineOf(a)
	migs, _ := migTotals(s)
	if ep := s.lay.MigEpoch(base); int64(ep) != migs {
		t.Errorf("migration epoch %d != migrations %d", ep, migs)
	}
}

// TestMigrateDeterministicRepeat runs the litmus twice in the same process
// and requires identical cycle counts and counters (no map-iteration or
// allocation-order leakage into decisions).
func TestMigrateDeterministicRepeat(t *testing.T) {
	run := func() string {
		s := migSystem(12, 1, false)
		a := s.AllocPlaced(64, 64, 0)
		finish := s.Run(func(p *Proc) {
			switch p.ID() {
			case 4, 5:
				for i := 0; i < 64; i++ {
					if i%2 == p.ID()%2 {
						p.StoreU64(a, uint64(i+1))
					}
					p.Compute(200)
				}
			case 8:
				for i := 0; i < 64; i++ {
					_ = p.LoadU64(a)
					p.Compute(150)
				}
			}
			p.Barrier()
		})
		migs, fwds := migTotals(s)
		return fmt.Sprintf("%d/%d/%d/%d/%d", finish, migs, fwds,
			s.Stats().TotalMisses(), s.Stats().TotalMessages())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic migration: %s vs %s", a, b)
	}
}
