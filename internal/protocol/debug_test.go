package protocol

import (
	"fmt"
	"testing"
)

// TestDebugBatchDeferred is a tracing variant of the deferred-invalidation
// scenario, kept because it documents the exact message interleaving.
func TestDebugBatchDeferred(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("tracing test; run with -v")
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)
	b2 := s.AllocPlaced(64, 64, 4)
	s.Run(func(p *Proc) {
		log := func(f string, args ...any) {
			fmt.Printf("[p%d @%d] %s\n", p.ID(), p.Now(), fmt.Sprintf(f, args...))
		}
		if p.ID() == 0 {
			p.StoreF64(a, 1.0)
			log("stored A=1")
		}
		if p.ID() == 4 {
			p.StoreF64(b2, 2.0)
			log("stored B=2")
		}
		p.Barrier()
		switch p.ID() {
		case 0:
			log("batch start")
			p.Batch([]BatchRef{{Base: a, Bytes: 8}, {Base: b2, Bytes: 8}}, func(b *Batch) {
				log("batch body: A=%v B=%v", b.LoadF64(a), b.LoadF64(b2))
			})
			log("batch end")
		case 4:
			p.StoreF64(a, 7.0)
			log("stored A=7")
		}
		log("at barrier 2")
		p.Barrier()
		log("after barrier 2")
	})
}
