package protocol

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/memory"
)

// Addr8 offsets an address by i 8-byte words.
func Addr8(i int) memory.Addr { return memory.Addr(i * 8) }

func TestCollectorTracer(t *testing.T) {
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)
	col := &CollectorTracer{}
	s.SetTracer(col)
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 4 {
			_ = p.LoadF64(a) // one remote read miss
		}
		p.Barrier()
	})
	var sawMiss, sawReq, sawReply bool
	for _, e := range col.Events {
		switch {
		case e.Op == "miss":
			sawMiss = true
		case e.Op == "send" && e.Msg == "ReadReq":
			sawReq = true
		case e.Op == "handle" && e.Msg == "DataReply":
			sawReply = true
		}
	}
	if !sawMiss || !sawReq || !sawReply {
		t.Fatalf("trace incomplete: miss=%v req=%v reply=%v (%d events)",
			sawMiss, sawReq, sawReply, len(col.Events))
	}
	// Events are time-ordered per processor.
	last := map[int]int64{}
	for _, e := range col.Events {
		if e.Time < last[e.Proc] {
			t.Fatalf("events out of order for proc %d", e.Proc)
		}
		last[e.Proc] = e.Time
	}
}

func TestCollectorTracerLimit(t *testing.T) {
	s := testSystem(4, 4)
	a := s.Alloc(1024, 64)
	col := &CollectorTracer{Limit: 5}
	s.SetTracer(col)
	s.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.StoreU64(a+Addr8(i), uint64(i))
		}
		p.Barrier()
	})
	if len(col.Events) > 5 {
		t.Fatalf("limit ignored: %d events", len(col.Events))
	}
}

func TestTraceSeqStrictlyIncreasing(t *testing.T) {
	s := testSystem(8, 4)
	a := s.Alloc(1024, 64)
	col := &CollectorTracer{}
	s.SetTracer(col)
	s.Run(func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.StoreU64(a+Addr8(i*4), uint64(p.ID()))
		}
		p.Barrier()
	})
	if len(col.Events) == 0 {
		t.Fatal("no events")
	}
	// Seq is a global total order: strictly increasing across the whole
	// run, starting at 1, with no gaps at the emission point.
	for i, e := range col.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	ops := map[string]bool{}
	for _, op := range TraceOps {
		ops[op] = true
	}
	for _, e := range col.Events {
		if !ops[e.Op] {
			t.Fatalf("event op %q not in TraceOps", e.Op)
		}
	}
}

func TestWriterTracerFilters(t *testing.T) {
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0) // block 0
	b := s.AllocPlaced(64, 64, 4) // separate page/block
	var buf bytes.Buffer
	s.SetTracer(&WriterTracer{W: &buf, Blocks: map[int]bool{0: true}})
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 4 {
			_ = p.LoadF64(a)
			_ = p.LoadF64(b)
		}
		p.Barrier()
	})
	out := buf.String()
	if !strings.Contains(out, "blk0") {
		t.Fatal("filtered trace missing block 0 events")
	}
	if strings.Contains(out, "ReadReq") && strings.Contains(out, "blk64") {
		t.Fatal("filter leaked other blocks")
	}
}
