package protocol

import (
	"fmt"
	"testing"

	"repro/internal/memory"
)

// Memory-consistency litmus tests. Shasta implements eager release
// consistency: ordinary loads and stores are unordered between
// synchronization operations, but a release (lock release, barrier arrival)
// makes all earlier stores visible before the release completes, and an
// acquire (lock acquire, barrier departure) observes everything released
// before it. The paper additionally stresses that Shasta "will correctly
// execute any Alpha program, whether or not the program exhibits races" —
// racy programs get coherent (per-location single-writer) behaviour even
// without synchronization. These litmus tests pin both properties down
// across the protocol variants.

// litmusConfigs are the protocol variants every litmus test must satisfy.
func litmusConfigs() []Config {
	return []Config{
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 1, HeapBytes: 1 << 20},
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 2, HeapBytes: 1 << 20},
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 4, HeapBytes: 1 << 20},
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 4, HeapBytes: 1 << 20,
			ShareDirectory: true, FastSync: true},
	}
}

func litmusName(cfg Config) string {
	return fmt.Sprintf("C%d-dir%v", cfg.Clustering, cfg.ShareDirectory)
}

// TestLitmusMessagePassing: the classic MP pattern with a lock as the
// release/acquire pair. P0 writes data then releases; P1 acquires and must
// see the data. Never allowed to fail under release consistency.
func TestLitmusMessagePassing(t *testing.T) {
	for _, cfg := range litmusConfigs() {
		t.Run(litmusName(cfg), func(t *testing.T) {
			s := New(cfg)
			data := s.Alloc(64, 64)
			flag := s.Alloc(64, 64)
			l := s.AllocLock()
			const rounds = 6
			s.Run(func(p *Proc) {
				p.Barrier()
				for r := 1; r <= rounds; r++ {
					switch p.ID() {
					case 0:
						p.StoreU64(data, uint64(r*11))
						p.LockAcquire(l)
						p.StoreU64(flag, uint64(r))
						p.LockRelease(l)
					case 1:
						for {
							p.LockAcquire(l)
							f := p.LoadU64(flag)
							p.LockRelease(l)
							if f >= uint64(r) {
								break
							}
							p.Compute(200)
						}
						// The data write preceded the release that
						// published flag=r; it must be visible.
						if got := p.LoadU64(data); got < uint64(r*11) {
							t.Errorf("round %d: read data %d after flag, want >= %d",
								r, got, r*11)
						}
					}
					p.Barrier()
				}
			})
		})
	}
}

// TestLitmusBarrierPublication: every processor writes its slot before a
// barrier; after the barrier every processor sees every slot. The barrier's
// release+acquire semantics make any stale read a failure.
func TestLitmusBarrierPublication(t *testing.T) {
	for _, cfg := range litmusConfigs() {
		t.Run(litmusName(cfg), func(t *testing.T) {
			s := New(cfg)
			slots := s.Alloc(8*64, 64)
			const rounds = 5
			s.Run(func(p *Proc) {
				p.Barrier()
				for r := 1; r <= rounds; r++ {
					p.StoreU64(slots+memory.Addr(p.ID()*64), uint64(r*100+p.ID()))
					p.Barrier()
					for q := 0; q < 8; q++ {
						want := uint64(r*100 + q)
						if got := p.LoadU64(slots + memory.Addr(q*64)); got != want {
							t.Errorf("round %d: proc %d read slot %d = %d, want %d",
								r, p.ID(), q, got, want)
						}
					}
					p.Barrier()
				}
			})
		})
	}
}

// TestLitmusCoherencePerLocation: even without synchronization, writes to a
// single location must appear in a single total order to all observers
// (cache coherence). Two writers alternate values; a reader records the
// sequence it observes, which must be non-decreasing in the writers'
// per-value version numbers.
func TestLitmusCoherencePerLocation(t *testing.T) {
	for _, cfg := range litmusConfigs() {
		t.Run(litmusName(cfg), func(t *testing.T) {
			s := New(cfg)
			x := s.Alloc(64, 64)
			l := s.AllocLock()
			var observed []uint64
			s.Run(func(p *Proc) {
				p.Barrier()
				switch p.ID() {
				case 0, 4:
					for i := 1; i <= 10; i++ {
						// Single-location version counter, lock-ordered
						// so versions are a total order.
						p.LockAcquire(l)
						p.StoreU64(x, p.LoadU64(x)+1)
						p.LockRelease(l)
						p.Compute(300)
					}
				case 2:
					for i := 0; i < 40; i++ {
						observed = append(observed, p.LoadU64(x))
						p.Compute(150)
					}
				}
				p.Barrier()
			})
			for i := 1; i < len(observed); i++ {
				if observed[i] < observed[i-1] {
					t.Fatalf("coherence violation: observed %d then %d (position %d)",
						observed[i-1], observed[i], i)
				}
			}
		})
	}
}

// TestLitmusStoreBufferingAllowed: the SB pattern (P0: x=1; r0=y. P1: y=1;
// r1=x) may legitimately produce r0=r1=0 under release consistency with
// non-blocking stores. This test documents that the relaxation exists
// rather than asserting a specific outcome: whatever values are read must
// be 0 or 1, and after a barrier both writes must be visible.
func TestLitmusStoreBufferingAllowed(t *testing.T) {
	for _, cfg := range litmusConfigs() {
		t.Run(litmusName(cfg), func(t *testing.T) {
			s := New(cfg)
			x := s.AllocPlaced(64, 64, 0)
			y := s.AllocPlaced(64, 64, 4)
			var r0, r1 uint64
			s.Run(func(p *Proc) {
				p.Barrier()
				switch p.ID() {
				case 0:
					p.StoreU64(x, 1)
					r0 = p.LoadU64(y)
				case 4:
					p.StoreU64(y, 1)
					r1 = p.LoadU64(x)
				}
				p.Barrier()
				if got := p.LoadU64(x); got != 1 {
					t.Errorf("proc %d: x = %d after barrier", p.ID(), got)
				}
				if got := p.LoadU64(y); got != 1 {
					t.Errorf("proc %d: y = %d after barrier", p.ID(), got)
				}
			})
			if r0 > 1 || r1 > 1 {
				t.Fatalf("out-of-thin-air values: r0=%d r1=%d", r0, r1)
			}
		})
	}
}

// TestLitmusLockHandoffChain passes a token around all processors through a
// chain of locks; each hop must observe the previous hop's increment
// (acquire/release transitivity, "cumulative" release consistency).
func TestLitmusLockHandoffChain(t *testing.T) {
	for _, cfg := range litmusConfigs() {
		t.Run(litmusName(cfg), func(t *testing.T) {
			s := New(cfg)
			token := s.Alloc(64, 64)
			locks := make([]int, 8)
			for i := range locks {
				locks[i] = s.AllocLock()
			}
			const laps = 3
			s.Run(func(p *Proc) {
				p.Barrier()
				for lap := 0; lap < laps; lap++ {
					for {
						p.LockAcquire(locks[p.ID()])
						v := p.LoadU64(token)
						want := uint64(lap*8 + p.ID())
						if v == want {
							p.StoreU64(token, v+1)
							p.LockRelease(locks[p.ID()])
							break
						}
						if v > want {
							t.Errorf("proc %d lap %d: token %d already past %d", p.ID(), lap, v, want)
							p.LockRelease(locks[p.ID()])
							return
						}
						p.LockRelease(locks[p.ID()])
						p.Compute(500)
					}
				}
				p.Barrier()
				if got := p.LoadU64(token); got != laps*8 {
					t.Errorf("proc %d: final token %d, want %d", p.ID(), got, laps*8)
				}
			})
		})
	}
}
