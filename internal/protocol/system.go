package protocol

import (
	"fmt"

	"repro/internal/memchan"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
)

// System is one configured simulated cluster: processors, sharing groups,
// interconnect, shared heap and statistics. Build one with New, allocate
// shared data, then execute a parallel program with Run.
type System struct {
	cfg   Config
	eng   *sim.Engine
	net   *memchan.Network
	lay   *memory.Layout
	stats *stats.Run

	groups []*group
	procs  []*Proc

	// pageHome[pg] is the home processor of virtual page pg.
	pageHome   []int16
	nextHome   int
	numLocks   int
	numBarrier int

	// liveHome[b] (indexed by block base line, allocated only under
	// Migrate) is the block's current home after online migration, or -1
	// while it still lives at the configured pageHome. Written only by a
	// block's new home inside the migration handshake — successive writes
	// to one block are ordered by the handshake's happens-before chain,
	// and distinct blocks use distinct slots — and read by observability
	// code after the run.
	liveHome []int32

	// startTime and endTime bound the measured parallel phase, so the
	// reported parallel time excludes initialization and verification.
	startTime, endTime int64

	// statBase holds the per-processor counter baselines recorded by
	// ResetStats (zero until then). Live counters accumulate from the start
	// of the run; Run subtracts the baselines once at the end.
	statBase []stats.Proc

	// tracer receives protocol events when attached (see trace.go);
	// traceSeq numbers them globally in emission order.
	tracer   Tracer
	traceSeq uint64
}

// group is a sharing group: the processors that share application data, the
// shared state table and the miss table through SMP hardware coherence. In
// Base-Shasta (clustering 1) each group has a single member; in hardware
// mode a single group spans every processor.
type group struct {
	id      int
	members []int
	// mask is the precomputed procSet of members, consulted on every
	// upgrade/forward decision (the old per-call loop showed up in host
	// profiles at high processor counts).
	mask procSet
	img  *memory.Image
	// miss is the group's miss table, keyed by block base line.
	miss map[int]*missEntry
	// locks maps a block base line to the processor holding its line
	// lock (SMP-Shasta protocol locking); absent means free.
	locks map[int]int
	// downgrades tracks blocks with intra-group downgrades in flight.
	downgrades map[int]*dgEntry
	// epoch implements the paper's epoch-based release consistency: a
	// release waits only for store misses issued in earlier epochs.
	epoch int64
	// batchMarks counts active batch markers per block base line; the
	// invalid-flag store for marked blocks is deferred until the batch
	// ends (Section 3.4.4).
	batchMarks map[int]int
	// fsArrived counts group members that reached the current barrier
	// (FastSync hierarchical barriers).
	fsArrived int
	// copySeq tags the group's copy of each block with the directory
	// sequence number that produced it, so stale invalidations are
	// detected (see pmsg.seq).
	copySeq map[int]int64
	// detached holds miss entries whose block the group has already
	// given away while invalidation acknowledgements are still
	// outstanding. They no longer represent the block's pending state
	// (new accesses must start fresh requests) but releases still wait
	// for them and arriving acks are credited to them in FIFO order.
	detached map[int][]*missEntry
	// homeView (online migration only) is the group's learned view of
	// re-homed blocks, keyed by block base line: requests go to the
	// viewed home instead of the configured one. Updated from the home
	// hints on replies and invalidations; absent means the configured
	// home (which forwards along its tombstone if the view is stale).
	homeView map[int]int
}

// missEntry records an outstanding request for a block, shared by the
// group's processors (SMP-Shasta merges requests through it).
type missEntry struct {
	baseLine  int
	kind      stats.MissKind
	issuer    int
	issueTime int64
	epoch     int64

	// wantExcl is set when a store hits a block with a read pending; the
	// protocol issues an upgrade after the read data arrives.
	wantExcl     bool
	upgradeSent  bool
	dataArrived  bool
	exclGranted  bool
	acksExpected int
	acksReceived int
	hasStores    bool

	// stores are the pending non-blocking stores merged into the reply.
	stores []storeRec
	// waiters are processors to wake when the entry's data arrives or
	// the entry completes (merged read misses, release stalls).
	waiters procSet
	// queued holds incoming protocol messages that must wait for this
	// entry to complete (e.g. a forward arriving while our own request
	// for the block is still outstanding).
	queued []*pmsg

	complete bool
}

// ready reports whether stalled loads may proceed (data present and usable).
func (e *missEntry) ready() bool { return e.dataArrived && (!e.wantExcl || e.exclGranted) }

// dgEntry tracks one in-progress block downgrade within a group.
type dgEntry struct {
	baseLine  int
	remaining int
	// preState is the block's state before the downgrade began; loads
	// and stores compatible with it may be served during the downgrade.
	preState memory.State
	// action is the deferred protocol action, executed by the processor
	// that handles the last downgrade message.
	action func(h *Proc)
	// queued holds requests that arrived during the downgrade.
	queued []*pmsg
	// waiters are local processors stalled on the downgrade finishing.
	waiters procSet
	done    bool
}

// dirEntry is the directory information a home processor keeps per block:
// the owner (last processor with an exclusive copy) and a bit vector of
// sharing processors. Only one processor per sharing group appears in the
// vector — the one that requested the data — which keeps per-block protocol
// traffic serialized at one processor per node.
type dirEntry struct {
	owner   int
	sharers procSet
	// seq counts exclusivity grants; see pmsg.seq.
	seq int64
	// dirty records that the owner holds (or has been granted and still
	// awaits) an exclusive copy whose stores the home has not seen
	// downgraded. While dirty, an upgrade request from another group
	// must be converted to a read-exclusive so the owner's data — with
	// its merged stores — flows to the upgrader; granting a plain
	// upgrade would lose them. The owner clears the bit with a
	// SharingUpdate message when a read downgrades it to shared.
	dirty bool
	// mig (online migration only) is the home's incremental per-node
	// miss model for the block; nil until the first counted request, and
	// for blocks excluded from migration. It travels with the directory
	// entry's moved count on a re-home (see migPayload).
	mig *migModel
}

// New builds a system for the configuration. It panics on an invalid
// configuration (a programming error in the experiment setup).
func New(cfg Config) *System {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	topo := memchan.Topology{NumProcs: cfg.NumProcs, ProcsPerNode: cfg.ProcsPerNode,
		NodesPerGroup: cfg.NodesPerGroup}
	if cfg.NumProcs < cfg.ProcsPerNode {
		topo.ProcsPerNode = cfg.NumProcs
	}
	s := &System{
		cfg:   cfg,
		eng:   sim.NewEngine(cfg.NumProcs),
		net:   memchan.New(topo, cfg.Net),
		lay:   memory.NewLayout(cfg.LineSize, cfg.HeapBytes),
		stats: stats.NewRun(cfg.NumProcs),
	}
	s.pageHome = make([]int16, cfg.HeapBytes/memory.PageSize)
	s.statBase = make([]stats.Proc, cfg.NumProcs)
	if cfg.Migrate && !cfg.Hardware {
		s.liveHome = make([]int32, s.lay.NumLines())
		for i := range s.liveHome {
			s.liveHome[i] = -1
		}
	}

	groupSize := cfg.Clustering
	if cfg.Hardware {
		groupSize = cfg.NumProcs
	}
	nGroups := (cfg.NumProcs + groupSize - 1) / groupSize
	s.groups = make([]*group, nGroups)
	for gi := range s.groups {
		g := &group{
			id:         gi,
			img:        memory.NewImage(s.lay),
			miss:       make(map[int]*missEntry),
			locks:      make(map[int]int),
			downgrades: make(map[int]*dgEntry),
			batchMarks: make(map[int]int),
			copySeq:    make(map[int]int64),
			detached:   make(map[int][]*missEntry),
		}
		if cfg.Migrate && !cfg.Hardware {
			g.homeView = make(map[int]int)
		}
		for m := gi * groupSize; m < (gi+1)*groupSize && m < cfg.NumProcs; m++ {
			g.members = append(g.members, m)
			g.mask.add(m)
		}
		s.groups[gi] = g
	}

	s.procs = make([]*Proc, cfg.NumProcs)
	for i := range s.procs {
		p := &Proc{
			sys: s,
			id:  i,
			sp:  s.eng.Proc(i),
			grp: s.groups[i/groupSize],
			st:  &s.stats.Procs[i],
			dir: make(map[int]*dirEntry),
		}
		p.sp.Stats = p.st
		p.holdingLock = -1
		if cfg.SMP() && !cfg.Hardware {
			p.priv = memory.NewPrivateTable(s.lay)
		}
		p.lockQueues = make(map[int][]int)
		p.lockHeld = make(map[int]bool)
		p.lockGranted = make(map[int]bool)
		p.lockPrev = make(map[int]int)
		p.lockGrantPrev = make(map[int]int)
		p.lockGrantHops = make(map[int]int)
		p.lockHeldFrom = make(map[int]int64)
		s.procs[i] = p
	}

	// Parallel-scheduler wiring. Conflict domains are the units that may
	// touch shared simulator-side state at sub-lookahead latencies: the
	// processors of one SMP node (link state, intra-node queues) unioned
	// with those of one sharing group (memory image, miss and downgrade
	// tables). Groups nest inside nodes under every valid configuration
	// except Hardware mode's single global group, so the domains are the
	// nodes — and every cross-domain message is inter-node, which makes
	// the full RemoteWire latency (not the smaller generic
	// Params.Lookahead bound) a valid lookahead.
	s.eng.Parallel = cfg.Parallel
	s.eng.Lookahead = cfg.Net.RemoteWire
	s.eng.FixedWindows = cfg.FixedWindows
	s.eng.WindowCap = cfg.WindowCap
	s.eng.SetDomains(conflictDomains(topo, groupSize, cfg.NumProcs))
	s.eng.SetEmitFunc(s.emitTrace)
	return s
}

// conflictDomains partitions processors by the transitive closure of
// "shares an SMP node" and "shares a sharing group".
func conflictDomains(topo memchan.Topology, groupSize, numProcs int) []int {
	parent := make([]int, numProcs)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	// Nodes and groups are contiguous ID ranges, so adjacent unions
	// suffice to merge each range.
	for i := 1; i < numProcs; i++ {
		if topo.SameNode(i-1, i) {
			union(i-1, i)
		}
		if (i-1)/groupSize == i/groupSize {
			union(i-1, i)
		}
	}
	out := make([]int, numProcs)
	for i := range out {
		out[i] = find(i)
	}
	return out
}

// Config returns the system's (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns the run statistics.
func (s *System) Stats() *stats.Run { return s.stats }

// Network returns the interconnect model, for observability snapshots.
func (s *System) Network() *memchan.Network { return s.net }

// Engine returns the simulation engine, for observability snapshots.
func (s *System) Engine() *sim.Engine { return s.eng }

// Layout returns the shared heap layout.
func (s *System) Layout() *memory.Layout { return s.lay }

// NumProcs returns the processor count.
func (s *System) NumProcs() int { return s.cfg.NumProcs }

// HomeOf returns the home processor of the block with the given base line,
// for observability code that relates per-block activity to placement.
// Under online migration this is the live home, reflecting completed
// re-homes.
func (s *System) HomeOf(baseLine int) int {
	if s.liveHome != nil {
		if h := s.liveHome[baseLine]; h >= 0 {
			return int(h)
		}
	}
	return s.homeProc(s.lay.LineAddr(baseLine))
}

// groupOf returns the sharing group of processor p.
func (s *System) groupOf(p int) *group { return s.procs[p].grp }

// fastSyncBarrier reports whether the hierarchical FastSync barrier is in
// effect.
func (s *System) fastSyncBarrier() bool {
	return s.cfg.FastSync && s.cfg.SMP() && !s.cfg.Hardware
}

// barrierArrivals returns how many arrival messages the barrier manager
// expects per barrier: one per group with FastSync, one per processor
// otherwise.
func (s *System) barrierArrivals() int {
	if s.fastSyncBarrier() {
		return len(s.groups)
	}
	return s.cfg.NumProcs
}

// groupMask returns the bitset of all processors in p's sharing group.
func (s *System) groupMask(p int) procSet { return s.procs[p].grp.mask }

// homeProc returns the home processor of the page containing addr.
func (s *System) homeProc(addr memory.Addr) int {
	return int(s.pageHome[s.lay.PageOf(addr)])
}

// Alloc carves a shared allocation with the given coherence block size
// (0 selects the default policy; see memory.Layout.Alloc), assigning homes
// round-robin across processors page by page, as the base system does.
func (s *System) Alloc(size int64, blockSize int) memory.Addr {
	return s.AllocHomed(size, blockSize, func(off int64) int {
		h := s.nextHome
		s.nextHome = (s.nextHome + 1) % s.cfg.NumProcs
		return h
	})
}

// AllocPlaced allocates with every page homed at the given processor (the
// paper's home placement optimization, used for FMM, LU-Contiguous and
// Ocean).
func (s *System) AllocPlaced(size int64, blockSize int, home int) memory.Addr {
	return s.AllocHomed(size, blockSize, func(int64) int { return home })
}

// AllocPinned allocates like Alloc but pins every block to its configured
// home: online home migration never moves it. Use for data whose placement
// the application already optimized by hand.
func (s *System) AllocPinned(size int64, blockSize int) memory.Addr {
	addr := s.Alloc(size, blockSize)
	s.lay.SetMigratable(addr, size, false)
	return addr
}

// AllocHomed allocates with homes chosen per page by the callback, which
// receives the page-aligned offset from the start of the allocation.
func (s *System) AllocHomed(size int64, blockSize int, home func(off int64) int) memory.Addr {
	if blockSize > memory.PageSize {
		panic(fmt.Sprintf("protocol: block size %d exceeds page size", blockSize))
	}
	// Allocations never share a page, so per-page homes stay consistent.
	s.lay.AlignToPage()
	addr, err := s.lay.Alloc(size, blockSize)
	if err != nil {
		panic(err)
	}
	// Assign page homes.
	firstPage := s.lay.PageOf(addr)
	endAddr := addr + memory.Addr(size)
	lastPage := s.lay.PageOf(endAddr - 1)
	for pg := firstPage; pg <= lastPage; pg++ {
		off := int64(pg-firstPage) * memory.PageSize
		h := home(off) % s.cfg.NumProcs
		if h < 0 {
			h += s.cfg.NumProcs
		}
		s.pageHome[pg] = int16(h)
	}
	// Allocations are migration candidates by default; AllocPinned opts
	// out after the fact.
	s.lay.SetMigratable(addr, size, true)
	// Initialize ownership: each block starts exclusive (zero-filled) at
	// its home processor's group.
	for li := s.lay.LineOf(addr); li < s.lay.LineOf(endAddr-1)+1; {
		base, lines := s.lay.BlockOf(s.lay.LineAddr(li))
		h := s.homeProc(s.lay.LineAddr(base))
		g := s.groupOf(h)
		data := g.img.BlockData(base)
		for i := range data {
			data[i] = 0
		}
		g.img.SetBlockState(base, memory.Exclusive)
		if hp := s.procs[h]; hp.priv != nil {
			hp.priv.SetBlock(s.lay, base, memory.Exclusive)
		}
		li = base + lines
	}
	return addr
}

// AllocLock creates an application lock, homed round-robin.
func (s *System) AllocLock() int {
	id := s.numLocks
	s.numLocks++
	return id
}

// lockHome returns the managing processor of application lock id.
func (s *System) lockHome(id int) int { return id % s.cfg.NumProcs }

// Run executes body on every processor and returns the maximum finish time
// in cycles. It can be called once per System. An implicit final barrier
// keeps every processor servicing protocol messages (directory requests,
// forwards) until all processors have finished their program.
func (s *System) Run(body func(*Proc)) int64 {
	finish := s.eng.Run(func(sp *sim.Proc) {
		p := s.procs[sp.ID]
		body(p)
		p.Barrier()
	})
	// Net out the ResetStats baselines (no-op if stats were never reset).
	for i := range s.stats.Procs {
		s.stats.Procs[i].Sub(&s.statBase[i])
	}
	end := s.endTime
	if end == 0 {
		end = finish
	}
	s.stats.Cycles = end - s.startTime
	s.stats.SealMeasured()
	return finish
}

// getDir returns (creating if needed) the directory entry for the block
// with the given base line. The directory lives at the block's home
// processor; only the home may consult it, unless the ShareDirectory
// extension is enabled, in which case any processor of the home's sharing
// group may (accesses are serialized by the group's line locks).
func (p *Proc) getDir(baseLine int) *dirEntry {
	home := p.sys.homeProc(p.sys.lay.LineAddr(baseLine))
	if p.sys.cfg.Migrate {
		// Under online migration the entry may live away from the
		// configured home. Whoever holds it is the live home; the
		// configured home may lazily create it only while it has not
		// migrated the block away (no tombstone).
		if de, ok := p.dir[baseLine]; ok {
			return de
		}
		if home != p.id || p.migrated[baseLine] != nil {
			panic(fmt.Sprintf("protocol: proc %d consulted directory for migrated block %d", p.id, baseLine))
		}
		de := &dirEntry{owner: home, sharers: bit(home), dirty: true}
		p.dir[baseLine] = de
		return de
	}
	holder := p
	if home != p.id {
		hp := p.sys.procs[home]
		if !(p.sys.cfg.ShareDirectory && hp.grp == p.grp) {
			panic(fmt.Sprintf("protocol: proc %d consulted directory for block homed at %d", p.id, home))
		}
		holder = hp
	}
	de, ok := holder.dir[baseLine]
	if !ok {
		de = &dirEntry{owner: home, sharers: bit(home), dirty: true}
		holder.dir[baseLine] = de
	}
	return de
}

// CheckQuiescent verifies protocol quiescence after a run: no outstanding
// miss entries (live or detached), no downgrades in flight, no line locks
// held, no outstanding stores, and every group's state table free of
// pending states. Tests call it to catch protocol leaks.
func (s *System) CheckQuiescent() error {
	for _, g := range s.groups {
		if n := len(g.miss); n != 0 {
			return fmt.Errorf("group %d: %d live miss entries remain", g.id, n)
		}
		if n := len(g.detached); n != 0 {
			return fmt.Errorf("group %d: %d detached miss entries remain", g.id, n)
		}
		if n := len(g.downgrades); n != 0 {
			return fmt.Errorf("group %d: %d downgrades in flight", g.id, n)
		}
		if n := len(g.locks); n != 0 {
			return fmt.Errorf("group %d: %d line locks held", g.id, n)
		}
		if n := len(g.batchMarks); n != 0 {
			return fmt.Errorf("group %d: %d batch marks remain", g.id, n)
		}
		for li := 0; li < s.lay.NumLines(); li++ {
			if st := g.img.State(li); st != memory.Invalid && !st.Valid() {
				return fmt.Errorf("group %d: line %d left in state %v", g.id, li, st)
			}
		}
	}
	for _, p := range s.procs {
		if p.outstandingStores != 0 {
			return fmt.Errorf("proc %d: %d outstanding stores remain", p.id, p.outstandingStores)
		}
		if p.holdingLock >= 0 {
			return fmt.Errorf("proc %d: still holds line lock %d", p.id, p.holdingLock)
		}
		for base, rec := range p.migrated {
			if !rec.acked {
				return fmt.Errorf("proc %d: migration of block %d never acknowledged", p.id, base)
			}
			if n := len(rec.queued); n != 0 {
				return fmt.Errorf("proc %d: %d requests still queued behind migration of block %d", p.id, n, base)
			}
		}
	}
	return nil
}

// CheckCoherence verifies the single-writer/multi-reader invariant over
// every allocated block: at most one group holds a block Exclusive, and if
// one does, every other group holds it Invalid. Tests call it after a run,
// when the system is quiescent.
func (s *System) CheckCoherence() error {
	if s.cfg.Hardware {
		return nil
	}
	for li := 0; li < s.lay.NumLines(); li++ {
		excl, valid := -1, 0
		for _, g := range s.groups {
			switch g.img.State(li) {
			case memory.Exclusive:
				if excl >= 0 {
					return fmt.Errorf("line %d exclusive in groups %d and %d", li, excl, g.id)
				}
				excl = g.id
				valid++
			case memory.Shared:
				valid++
			}
		}
		if excl >= 0 && valid > 1 {
			return fmt.Errorf("line %d exclusive in group %d but valid in %d groups", li, excl, valid)
		}
	}
	return nil
}

// CheckValueCoherence verifies that all groups holding a valid copy of a
// block agree on its contents.
func (s *System) CheckValueCoherence() error {
	if s.cfg.Hardware {
		return nil
	}
	lineSize := s.lay.LineSize()
	for li := 0; li < s.lay.NumLines(); li++ {
		var ref []byte
		refGroup := -1
		for _, g := range s.groups {
			if !g.img.State(li).Valid() {
				continue
			}
			data := g.img.ReadBytes(s.lay.LineAddr(li), lineSize)
			if ref == nil {
				ref, refGroup = data, g.id
				continue
			}
			for i := range data {
				if data[i] != ref[i] {
					return fmt.Errorf("line %d: groups %d and %d disagree at byte %d",
						li, refGroup, g.id, i)
				}
			}
		}
	}
	return nil
}
