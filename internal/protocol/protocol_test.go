package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memory"
	"repro/internal/stats"
)

// testSystem builds a small system with the given processor count and
// clustering.
func testSystem(procs, clustering int) *System {
	return New(Config{
		NumProcs:     procs,
		ProcsPerNode: 4,
		Clustering:   clustering,
		HeapBytes:    1 << 20,
	})
}

func TestSingleProcStoreLoad(t *testing.T) {
	s := testSystem(1, 1)
	a := s.Alloc(1024, 64)
	s.Run(func(p *Proc) {
		p.StoreF64(a, 3.5)
		p.StoreU32(a+8, 77)
		if got := p.LoadF64(a); got != 3.5 {
			t.Errorf("LoadF64 = %v", got)
		}
		if got := p.LoadU32(a + 8); got != 77 {
			t.Errorf("LoadU32 = %v", got)
		}
	})
	if m := s.Stats().TotalMisses(); m != 0 {
		t.Errorf("single-proc local accesses generated %d misses", m)
	}
}

func TestTwoProcProducerConsumer(t *testing.T) {
	for _, clustering := range []int{1, 2} {
		t.Run(fmt.Sprintf("C%d", clustering), func(t *testing.T) {
			s := testSystem(2, clustering)
			a := s.Alloc(64, 64)
			s.Run(func(p *Proc) {
				if p.ID() == 0 {
					p.StoreF64(a, 42.0)
				}
				p.Barrier()
				if got := p.LoadF64(a); got != 42.0 {
					t.Errorf("proc %d read %v, want 42", p.ID(), got)
				}
			})
		})
	}
}

func TestRemoteReadMissHops(t *testing.T) {
	// 8 procs, 2 nodes, C=1. Block homed at proc 0 (first alloc page).
	// Proc 4 (other node) reads it: data at home -> 2-hop read miss.
	s := testSystem(8, 1)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		if p.ID() == 4 {
			_ = p.LoadF64(a)
		}
	})
	if got := s.Stats().MissesBy(stats.ReadMiss, 2); got != 1 {
		t.Errorf("2-hop read misses = %d, want 1", got)
	}
	if got := s.Stats().MessagesBy(stats.RemoteMsg); got < 2 {
		t.Errorf("remote messages = %d, want >= 2 (request + reply)", got)
	}
}

func TestThreeHopForwarding(t *testing.T) {
	// Home at proc 0; proc 4 takes the block exclusive; proc 8 then
	// reads: home forwards to owner 4 -> 3-hop miss at proc 8.
	s := testSystem(12, 1)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		if p.ID() == 4 {
			p.StoreF64(a, 1.0)
		}
		p.Barrier()
		if p.ID() == 8 {
			if got := p.LoadF64(a); got != 1.0 {
				t.Errorf("proc 8 read %v", got)
			}
		}
		p.Barrier()
	})
	if got := s.Stats().MissesBy(stats.ReadMiss, 3); got != 1 {
		t.Errorf("3-hop read misses = %d, want 1", got)
	}
}

func TestIntraGroupSharingAvoidsMessages(t *testing.T) {
	// C=4: proc 0 fetches a remote block; proc 1 (same group) then reads
	// it with no protocol messages, only a private-state upgrade.
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 4) // homed on node 1
	var before int64
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			_ = p.LoadF64(a)
		}
		p.Barrier()
		if p.ID() == 1 {
			before = s.Stats().TotalMessages()
			_ = p.LoadF64(a) // flag-based load: hits valid group data
			if d := s.Stats().TotalMessages() - before; d != 0 {
				t.Errorf("group-mate read sent %d messages", d)
			}
		}
		p.Barrier()
	})
}

func TestClusteringReducesMisses(t *testing.T) {
	// All 8 processors read the same remotely-homed array. With C=1,
	// every processor on node 0 misses; with C=4 only the first one per
	// group does.
	missesFor := func(clustering int) int64 {
		s := testSystem(8, clustering)
		a := s.AllocPlaced(4096, 64, 4)
		s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() < 4 { // node 0 only
				for off := int64(0); off < 4096; off += 8 {
					_ = p.LoadF64(a + memory.Addr(off))
				}
			}
			p.Barrier()
		})
		return s.Stats().TotalMisses()
	}
	m1, m4 := missesFor(1), missesFor(4)
	if m4 >= m1 {
		t.Fatalf("clustering did not reduce misses: C1=%d C4=%d", m1, m4)
	}
	if m4 > m1/3 {
		t.Errorf("C4 misses %d not close to C1/4 of %d", m4, m1)
	}
}

func TestDowngradeMessagesOnRemoteWrite(t *testing.T) {
	// C=4: procs 0..3 all read a block (private states Shared); proc 4
	// writes it; the invalidation at node 0 must send downgrade messages
	// to the members that accessed the block.
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		if p.ID() < 4 {
			// Touch via store so private state gets set (flag loads do
			// not upgrade private state).
			if p.ID() == 0 {
				p.StoreF64(a, 5.0)
			}
		}
		p.Barrier()
		if p.ID() >= 1 && p.ID() < 4 {
			// Batched load consults and upgrades the private table.
			p.Batch([]BatchRef{{Base: a, Bytes: 8}}, func(b *Batch) {
				if got := b.LoadF64(a); got != 5.0 {
					t.Errorf("proc %d batched read %v", p.ID(), got)
				}
			})
		}
		p.Barrier()
		if p.ID() == 4 {
			p.StoreF64(a, 6.0)
		}
		p.Barrier()
		if got := p.LoadF64(a); got != 6.0 {
			t.Errorf("proc %d final read %v, want 6", p.ID(), got)
		}
	})
	if got := s.Stats().MessagesBy(stats.DowngradeMsg); got == 0 {
		t.Error("no downgrade messages recorded")
	}
	_, total := s.Stats().DowngradeDistribution()
	if total == 0 {
		t.Error("no downgrades recorded")
	}
}

func TestSelectiveDowngrades(t *testing.T) {
	// Only proc 0 in the group accesses the block, so invalidating it
	// must need zero downgrade messages (the private state tables of
	// procs 1-3 are Invalid).
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.StoreF64(a, 5.0)
		}
		p.Barrier()
		if p.ID() == 4 {
			p.StoreF64(a, 6.0)
		}
		p.Barrier()
	})
	if got := s.Stats().MessagesBy(stats.DowngradeMsg); got != 0 {
		t.Errorf("downgrade messages = %d, want 0 (selective downgrades)", got)
	}
	frac, total := s.Stats().DowngradeDistribution()
	if total == 0 || frac[0] != 1.0 {
		t.Errorf("downgrade distribution %v (total %d), want all zero-message", frac, total)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	for _, cl := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("C%d", cl), func(t *testing.T) {
			s := testSystem(8, cl)
			a := s.Alloc(64, 64)
			l := s.AllocLock()
			const iters = 10
			s.Run(func(p *Proc) {
				p.Barrier()
				for i := 0; i < iters; i++ {
					p.LockAcquire(l)
					v := p.LoadU64(a)
					p.Compute(50)
					p.StoreU64(a, v+1)
					p.LockRelease(l)
				}
				p.Barrier()
				if got := p.LoadU64(a); got != 8*iters {
					t.Errorf("proc %d: counter = %d, want %d", p.ID(), got, 8*iters)
				}
			})
		})
	}
}

func TestBarrierOrdering(t *testing.T) {
	s := testSystem(8, 4)
	a := s.Alloc(512, 64)
	s.Run(func(p *Proc) {
		// Phase 1: each proc writes its slot.
		p.StoreU64(a+memory.Addr(p.ID()*8), uint64(p.ID()+1))
		p.Barrier()
		// Phase 2: everyone sums all slots.
		var sum uint64
		for i := 0; i < 8; i++ {
			sum += p.LoadU64(a + memory.Addr(i*8))
		}
		if sum != 36 {
			t.Errorf("proc %d: sum = %d, want 36", p.ID(), sum)
		}
		p.Barrier()
	})
}

func TestNonBlockingStores(t *testing.T) {
	// A store miss must not stall the processor: time advances only by
	// check/entry/bookkeeping costs, far less than a remote round trip.
	s := testSystem(8, 1)
	a := s.AllocPlaced(64, 64, 4)
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 0 {
			t0 := p.Now()
			p.StoreF64(a, 9.0)
			if d := p.Now() - t0; d > 3000 {
				t.Errorf("store miss stalled %d cycles; stores must be non-blocking", d)
			}
		}
		p.Barrier()
		if got := p.LoadF64(a); got != 9.0 {
			t.Errorf("proc %d read %v, want 9", p.ID(), got)
		}
	})
}

func TestFalseMiss(t *testing.T) {
	// Store the flag bit pattern as real data; a load of it triggers the
	// miss routine, which identifies a false miss and returns the value.
	s := testSystem(1, 1)
	a := s.Alloc(64, 64)
	s.Run(func(p *Proc) {
		p.StoreU32(a, memory.FlagWord)
		if got := p.LoadU32(a); got != memory.FlagWord {
			t.Errorf("LoadU32 = %#x, want flag pattern", got)
		}
	})
	if got := s.Stats().Procs[0].FalseMisses; got != 1 {
		t.Errorf("false misses = %d, want 1", got)
	}
	if got := s.Stats().TotalMisses(); got != 0 {
		t.Errorf("false miss counted as real miss: %d", got)
	}
}

func TestUpgradeMiss(t *testing.T) {
	// Proc 4 reads (shared copy), then writes: the write becomes an
	// upgrade request, not a full data fetch.
	s := testSystem(8, 1)
	a := s.AllocPlaced(64, 64, 0)
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 4 {
			_ = p.LoadF64(a)
			p.StoreF64(a, 2.0)
		}
		p.Barrier()
		if got := p.LoadF64(a); got != 2.0 {
			t.Errorf("proc %d read %v, want 2", p.ID(), got)
		}
	})
	if got := s.Stats().MissesBy(stats.UpgradeMiss, 2) + s.Stats().MissesBy(stats.UpgradeMiss, 3); got != 1 {
		t.Errorf("upgrade misses = %d, want 1", got)
	}
}

func TestWriteContention(t *testing.T) {
	// Two procs in different nodes repeatedly write the same block under
	// lock protection; the final sum must be exact.
	s := testSystem(8, 4)
	a := s.Alloc(64, 64)
	l := s.AllocLock()
	s.Run(func(p *Proc) {
		p.Barrier()
		if p.ID() == 0 || p.ID() == 4 {
			for i := 0; i < 20; i++ {
				p.LockAcquire(l)
				p.StoreU64(a, p.LoadU64(a)+1)
				p.LockRelease(l)
			}
		}
		p.Barrier()
		if got := p.LoadU64(a); got != 40 {
			t.Errorf("proc %d: sum = %d, want 40", p.ID(), got)
		}
	})
}

func TestMigratoryDataAllGroups(t *testing.T) {
	// A counter migrates around all 16 processors several times; this
	// exercises forwarding, upgrades, invalidations and downgrades.
	for _, cl := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("C%d", cl), func(t *testing.T) {
			s := testSystem(16, cl)
			a := s.Alloc(64, 64)
			l := s.AllocLock()
			const rounds = 3
			s.Run(func(p *Proc) {
				p.Barrier()
				for r := 0; r < rounds; r++ {
					p.LockAcquire(l)
					p.StoreU64(a, p.LoadU64(a)+uint64(p.ID()))
					p.LockRelease(l)
					p.Barrier()
				}
				want := uint64(rounds * (16 * 15 / 2))
				if got := p.LoadU64(a); got != want {
					t.Errorf("proc %d: sum = %d, want %d", p.ID(), got, want)
				}
				p.Barrier()
			})
		})
	}
}

func TestBatchLoadStore(t *testing.T) {
	s := testSystem(8, 4)
	a := s.AllocPlaced(256, 64, 4)
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Batch([]BatchRef{{Base: a, Bytes: 64, Store: true}}, func(b *Batch) {
				for i := 0; i < 8; i++ {
					b.StoreF64(a+memory.Addr(i*8), float64(i))
				}
			})
		}
		p.Barrier()
		p.Batch([]BatchRef{{Base: a, Bytes: 64}}, func(b *Batch) {
			for i := 0; i < 8; i++ {
				if got := b.LoadF64(a + memory.Addr(i*8)); got != float64(i) {
					t.Errorf("proc %d batch[%d] = %v", p.ID(), i, got)
				}
			}
		})
		p.Barrier()
	})
}

func TestBatchDeferredInvalidation(t *testing.T) {
	// Proc 0 batches over two blocks: one local, one remote (so the
	// batch stalls). While it waits, proc 4 writes the first block; the
	// invalidation is deferred and the batched loads still see the data
	// they fetched.
	s := testSystem(8, 4)
	a := s.AllocPlaced(64, 64, 0)  // block A, homed node 0
	b2 := s.AllocPlaced(64, 64, 4) // block B, homed node 1
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.StoreF64(a, 1.0)
		}
		if p.ID() == 4 {
			p.StoreF64(b2, 2.0)
		}
		p.Barrier()
		switch p.ID() {
		case 0:
			p.Batch([]BatchRef{{Base: a, Bytes: 8}, {Base: b2, Bytes: 8}}, func(b *Batch) {
				va, vb := b.LoadF64(a), b.LoadF64(b2)
				if va != 1.0 && va != 7.0 {
					t.Errorf("batched load of A = %v", va)
				}
				if vb != 2.0 {
					t.Errorf("batched load of B = %v", vb)
				}
			})
		case 4:
			p.StoreF64(a, 7.0)
		}
		p.Barrier()
		if got := p.LoadF64(a); got != 7.0 && p.ID() != 0 {
			t.Errorf("proc %d read A = %v, want 7", p.ID(), got)
		}
		p.Barrier()
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64, int64) {
		s := testSystem(8, 4)
		a := s.Alloc(4096, 64)
		l := s.AllocLock()
		finish := s.Run(func(p *Proc) {
			p.Barrier()
			for i := 0; i < 20; i++ {
				addr := a + memory.Addr(((p.ID()*37+i*13)%512)*8)
				p.LockAcquire(l)
				p.StoreU64(addr, p.LoadU64(addr)+1)
				p.LockRelease(l)
			}
			p.Barrier()
		})
		return finish, s.Stats().TotalMisses(), s.Stats().TotalMessages()
	}
	f1, m1, g1 := run()
	f2, m2, g2 := run()
	if f1 != f2 || m1 != m2 || g1 != g2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", f1, m1, g1, f2, m2, g2)
	}
}

// TestParallelSystemMatchesSerial runs the same contended workload — with a
// measured phase, so the fence-based ResetStats/EndMeasured path is
// exercised — under the serial and the window-based parallel scheduler and
// requires identical results: finish time, misses, messages, and every
// processor's full time breakdown. The 16-processor/clustering-2 shape is
// the regression case for fence observations of processors spinning at a
// barrier in another conflict domain, which slice-granular fence snapshots
// got wrong before fences were deferred to their cut. Runs under
// `make check`'s race-mode pass, so it also verifies the parallel
// scheduler's host-side memory safety through the whole protocol stack.
func TestParallelSystemMatchesSerial(t *testing.T) {
	for _, shape := range []struct{ procs, clustering int }{{8, 4}, {16, 2}} {
		t.Run(fmt.Sprintf("p%d_c%d", shape.procs, shape.clustering), func(t *testing.T) {
			testParallelSystemMatchesSerial(t, shape.procs, shape.clustering)
		})
	}
}

func testParallelSystemMatchesSerial(t *testing.T, procs, clustering int) {
	run := func(parallel bool) (int64, *stats.Run) {
		s := New(Config{
			NumProcs:     procs,
			ProcsPerNode: 4,
			Clustering:   clustering,
			HeapBytes:    1 << 20,
			Parallel:     parallel,
		})
		a := s.Alloc(4096, 64)
		l := s.AllocLock()
		finish := s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() == 0 {
				p.ResetStats()
			}
			p.Barrier()
			for i := 0; i < 20; i++ {
				addr := a + memory.Addr(((p.ID()*37+i*13)%512)*8)
				p.LockAcquire(l)
				p.StoreU64(addr, p.LoadU64(addr)+1)
				p.LockRelease(l)
			}
			p.Barrier()
			if p.ID() == 0 {
				p.EndMeasured()
			}
			p.Barrier()
		})
		return finish, s.Stats()
	}
	sf, ss := run(false)
	pf, ps := run(true)
	if sf != pf {
		t.Fatalf("finish %d vs %d", sf, pf)
	}
	if ss.Cycles != ps.Cycles || ss.TotalMisses() != ps.TotalMisses() ||
		ss.TotalMessages() != ps.TotalMessages() {
		t.Fatalf("stats diverged: cycles %d vs %d, misses %d vs %d, messages %d vs %d",
			ss.Cycles, ps.Cycles, ss.TotalMisses(), ps.TotalMisses(),
			ss.TotalMessages(), ps.TotalMessages())
	}
	for i := range ss.Procs {
		if ss.Procs[i].TimeBy != ps.Procs[i].TimeBy {
			t.Errorf("proc %d time breakdown %v vs %v", i, ss.Procs[i].TimeBy, ps.Procs[i].TimeBy)
		}
	}
	for i := range ss.Measured {
		if ss.Measured[i] != ps.Measured[i] {
			t.Errorf("proc %d measured breakdown %+v vs %+v", i, ss.Measured[i], ps.Measured[i])
		}
	}
}

func TestHardwareMode(t *testing.T) {
	s := New(Config{NumProcs: 4, ProcsPerNode: 4, Clustering: 4,
		HeapBytes: 1 << 20, Hardware: true})
	a := s.Alloc(512, 64)
	s.Run(func(p *Proc) {
		p.StoreU64(a+memory.Addr(p.ID()*8), uint64(p.ID()))
		p.Barrier()
		var sum uint64
		for i := 0; i < 4; i++ {
			sum += p.LoadU64(a + memory.Addr(i*8))
		}
		if sum != 6 {
			t.Errorf("proc %d sum = %d", p.ID(), sum)
		}
	})
	if s.Stats().TotalMisses() != 0 {
		t.Error("hardware mode recorded software misses")
	}
}

// TestRandomSharedCounterStress hammers a handful of blocks from all
// processors under lock protection, across clusterings, and checks the
// totals. This is the main protocol-correctness stress test: it exercises
// merges, upgrades lost to races, invalidation of pending blocks, and
// downgrades, all under the deterministic scheduler.
func TestRandomSharedCounterStress(t *testing.T) {
	for _, cl := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("C%d-seed%d", cl, seed), func(t *testing.T) {
				const nCounters = 8
				const iters = 30
				s := testSystem(16, cl)
				a := s.Alloc(nCounters*64, 64)
				locks := make([]int, nCounters)
				for i := range locks {
					locks[i] = s.AllocLock()
				}
				expect := make([]uint64, nCounters)
				// Precompute each processor's deterministic op sequence.
				seqs := make([][]int, 16)
				for pid := range seqs {
					rng := rand.New(rand.NewSource(seed*100 + int64(pid)))
					seqs[pid] = make([]int, iters)
					for i := range seqs[pid] {
						c := rng.Intn(nCounters)
						seqs[pid][i] = c
						expect[c]++
					}
				}
				s.Run(func(p *Proc) {
					p.Barrier()
					for _, c := range seqs[p.ID()] {
						addr := a + memory.Addr(c*64)
						p.LockAcquire(locks[c])
						p.StoreU64(addr, p.LoadU64(addr)+1)
						p.LockRelease(locks[c])
					}
					p.Barrier()
					for c := 0; c < nCounters; c++ {
						if got := p.LoadU64(a + memory.Addr(c*64)); got != expect[c] {
							t.Errorf("proc %d: counter %d = %d, want %d", p.ID(), c, got, expect[c])
						}
					}
					p.Barrier()
				})
			})
		}
	}
}

func TestReadLatencyCalibration(t *testing.T) {
	// A remote 2-hop 64-byte fetch should take roughly 20 us, and an
	// intra-node fetch roughly 11 us, per the paper's measurements.
	remote := func() float64 {
		s := testSystem(8, 1)
		a := s.AllocPlaced(64, 64, 0)
		s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() == 4 {
				_ = p.LoadF64(a)
			}
			p.Barrier()
		})
		return s.Stats().AvgReadLatencyMicros()
	}()
	local := func() float64 {
		s := testSystem(4, 1)
		a := s.AllocPlaced(64, 64, 0)
		s.Run(func(p *Proc) {
			p.Barrier()
			if p.ID() == 1 {
				_ = p.LoadF64(a)
			}
			p.Barrier()
		})
		return s.Stats().AvgReadLatencyMicros()
	}()
	if remote < 14 || remote > 26 {
		t.Errorf("remote 2-hop latency = %.1f us, want ~20", remote)
	}
	if local < 7 || local > 15 {
		t.Errorf("local fetch latency = %.1f us, want ~11", local)
	}
	if local >= remote {
		t.Errorf("local latency %.1f not below remote %.1f", local, remote)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumProcs: -1},
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 8},
		{NumProcs: 8, ProcsPerNode: 4, Clustering: 3},
	}
	for _, c := range bad {
		if err := c.WithDefaults().Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestStatsResetExcludesInit(t *testing.T) {
	s := testSystem(8, 1)
	a := s.AllocPlaced(4096, 64, 4)
	s.Run(func(p *Proc) {
		// Init phase: proc 0 writes everything (lots of misses).
		if p.ID() == 0 {
			for off := int64(0); off < 4096; off += 8 {
				p.StoreF64(a+memory.Addr(off), 1.0)
			}
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats()
		}
		p.Barrier()
		p.Barrier()
	})
	if m := s.Stats().TotalMisses(); m != 0 {
		t.Errorf("misses after reset = %d, want 0", m)
	}
	if s.Stats().Cycles <= 0 {
		t.Error("parallel time not measured after reset")
	}
}
