package protocol

import (
	"fmt"
	"math"

	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Proc is one processor's protocol context. Application code runs on it and
// accesses shared memory through the Load/Store/Batch methods, which model
// Shasta's inline miss checks and invoke the software protocol on misses.
type Proc struct {
	sys *System
	id  int
	sp  *sim.Proc
	grp *group
	st  *stats.Proc

	// priv is the processor's private state table (SMP-Shasta only; nil
	// under Base-Shasta and hardware mode).
	priv memory.PrivateTable

	// dir holds directory entries for blocks homed at this processor.
	dir map[int]*dirEntry

	// migrated holds tombstones for blocks whose directory this
	// processor handed away by online migration, keyed by base line.
	// Until the new home acknowledges installation, requests queue on
	// the tombstone; afterwards they forward. Allocated lazily.
	migrated map[int]*migRec
	// migSeq numbers this processor's outgoing migrations; echoed in the
	// acknowledgement so a stale ack (from before a block re-homed back
	// here and away again) is recognized and ignored.
	migSeq int

	// outstandingStores counts this processor's incomplete store-miss
	// entries, bounded by Config.MaxOutstanding.
	outstandingStores int

	// stalled marks that the processor is inside a stall loop; handler
	// occupancy is then attributed to the stall's category, matching the
	// paper's accounting ("this time is hidden by the read, write, and
	// synchronization times").
	stalled  bool
	stallCat stats.TimeCategory

	// holdingLock is the base line whose protocol line lock this
	// processor holds, or -1. Protocol code must never block on messages
	// while holding a line lock. lockAcquiredAt is the acquisition time of
	// the held lock, for the hold-time statistics.
	holdingLock    int
	lockAcquiredAt int64

	// handlerDepth is the nesting depth of handle() dispatches, so handler
	// occupancy is attributed once per top-level dispatch.
	handlerDepth int

	// inBatch is nonzero while executing a batched sequence.
	inBatch int

	// Synchronization state.
	lockQueues  map[int][]int // locks homed here: waiting procs; head holds it
	lockHeld    map[int]bool  // locks homed here that are currently held
	lockGranted map[int]bool  // grants received, consumed by LockAcquire
	barCount    int           // arrivals (barrier manager, proc 0)
	barGen      int           // completed barrier generations observed

	// Application sync telemetry. Manager side: lockPrev names each homed
	// lock's previous holder, carried on grants. Requester side:
	// lockGrantPrev/lockGrantHops stage the latest grant's hand-off info
	// for LockAcquire, and lockHeldFrom the grant-completion time of each
	// held lock for the hold-cycle statistics. All are own-proc state, so
	// the per-primitive counters stay domain-local under the parallel
	// scheduler.
	lockPrev      map[int]int
	lockGrantPrev map[int]int
	lockGrantHops map[int]int
	lockHeldFrom  map[int]int64
}

// ID returns the processor's index.
func (p *Proc) ID() int { return p.id }

// NumProcs returns the total processor count.
func (p *Proc) NumProcs() int { return p.sys.cfg.NumProcs }

// Now returns the processor's virtual time in cycles.
func (p *Proc) Now() int64 { return p.sp.Now() }

// System returns the owning system.
func (p *Proc) System() *System { return p.sys }

// Compute charges cycles of application work to task time. Applications
// use it to model their computation between shared accesses.
func (p *Proc) Compute(cycles int64) {
	p.sp.Advance(stats.Task, cycles)
}

// charge attributes protocol cycles, redirecting message-handling time into
// the current stall category while stalled.
func (p *Proc) charge(cat stats.TimeCategory, cycles int64) {
	if p.stalled && cat == stats.Message {
		cat = p.stallCat
	}
	p.sp.Advance(cat, cycles)
}

// poll drains and handles every deliverable message, charging the poll
// cost. It is invoked at the start of every shared access — the analogue of
// Shasta's loop-backedge polling — so no message is ever handled between a
// successful inline check and its load or store.
func (p *Proc) poll() {
	p.charge(stats.Task, p.sys.cfg.CheckCosts.PollCost(p.sys.cfg.CheckMode()))
	for {
		m, ok := p.sp.TryRecv()
		if !ok {
			return
		}
		p.handle(m.Payload.(*pmsg))
	}
}

// Poll gives the protocol a chance to handle incoming messages; apps with
// long computation stretches call it at loop backedges.
func (p *Proc) Poll() { p.poll() }

// stallUntil parks the processor until cond holds, handling protocol
// messages while waiting and attributing the time to cat.
func (p *Proc) stallUntil(cat stats.TimeCategory, where string, cond func() bool) {
	if cond() {
		return
	}
	if p.holdingLock >= 0 {
		panic(fmt.Sprintf("protocol: proc %d stalls at %s while holding line lock %d",
			p.id, where, p.holdingLock))
	}
	p.st.StallEvents++
	wasStalled, wasCat := p.stalled, p.stallCat
	p.stalled, p.stallCat = true, cat
	for !cond() {
		m := p.sp.WaitRecv(cat, where)
		p.handle(m.Payload.(*pmsg))
	}
	p.stalled, p.stallCat = wasStalled, wasCat
}

// lockBlock acquires the protocol line lock for a block (SMP-Shasta only;
// Base-Shasta has one processor per group and needs no protocol locking).
// Lock sections are always bounded — no protocol code blocks on messages
// while holding a lock — so spinning terminates.
func (p *Proc) lockBlock(baseLine int) {
	if !p.sys.cfg.SMP() {
		return
	}
	c := p.sys.cfg.Costs
	p.charge(stats.Other, c.LockAcquire)
	for {
		holder, held := p.grp.locks[baseLine]
		if !held {
			p.grp.locks[baseLine] = p.id
			p.holdingLock = baseLine
			p.lockAcquiredAt = p.sp.Now()
			p.st.LockAcquires++
			return
		}
		if holder == p.id {
			panic(fmt.Sprintf("protocol: proc %d re-locks block %d", p.id, baseLine))
		}
		p.charge(stats.Other, c.LockSpin)
	}
}

// unlockBlock releases the line lock.
func (p *Proc) unlockBlock(baseLine int) {
	if !p.sys.cfg.SMP() {
		return
	}
	if p.grp.locks[baseLine] != p.id {
		panic(fmt.Sprintf("protocol: proc %d unlocks block %d it does not hold", p.id, baseLine))
	}
	delete(p.grp.locks, baseLine)
	p.holdingLock = -1
	p.st.LockHoldCycles += p.sp.Now() - p.lockAcquiredAt
	p.charge(stats.Other, p.sys.cfg.Costs.LockRelease)
}

// privState returns the state consulted by inline store checks: the private
// state table under SMP-Shasta, the (single-member) group's shared table
// under Base-Shasta.
func (p *Proc) privState(li int) memory.State {
	if p.priv != nil {
		return p.priv.Get(li)
	}
	s := p.grp.img.State(li)
	if s == memory.Shared || s == memory.Exclusive {
		return s
	}
	return memory.Invalid
}

// setPrivBlock updates the processor's private state for a block (no-op
// under Base-Shasta, where the shared table is authoritative). Raising the
// private state emits a privup trace event: private-state upgrades are
// otherwise invisible in the trace (local hits generate no miss or install
// event), and the replay invariant checker needs them to know which
// processors hold a block when a downgrade message targets them.
func (p *Proc) setPrivBlock(baseLine int, st memory.State) {
	if p.priv == nil {
		return
	}
	if st.Valid() {
		p.trace("privup", "", baseLine, "to %v", st)
	}
	p.priv.SetBlock(p.sys.lay, baseLine, st)
}

// --- Loads ---

// LoadF64 performs a checked shared load of a float64. The check uses the
// invalid-flag technique; under SMP-Shasta the floating-point variant costs
// extra cycles to make the flag comparison atomic (Section 3.4.1).
func (p *Proc) LoadF64(addr memory.Addr) float64 {
	return math.Float64frombits(p.load(addr, 8, true))
}

// LoadU64 performs a checked shared load of a 64-bit integer.
func (p *Proc) LoadU64(addr memory.Addr) uint64 {
	return p.load(addr, 8, false)
}

// LoadU32 performs a checked shared load of a 32-bit integer.
func (p *Proc) LoadU32(addr memory.Addr) uint32 {
	return uint32(p.load(addr, 4, false))
}

func (p *Proc) load(addr memory.Addr, size int, fp bool) uint64 {
	if p.sys.cfg.Hardware {
		return p.rawRead(addr, size)
	}
	p.poll()
	cfg := &p.sys.cfg
	p.charge(stats.Task, cfg.CheckCosts.LoadCheck(cfg.CheckMode(), fp))
	p.st.ChecksExecuted++
	v := p.rawRead(addr, size)
	if !flagHit(v, size) {
		return v
	}
	return p.loadMiss(addr, size)
}

// flagHit reports whether the loaded value's low longword matches the
// invalid flag — the inline comparison.
func flagHit(v uint64, size int) bool {
	return uint32(v) == memory.FlagWord
}

func (p *Proc) rawRead(addr memory.Addr, size int) uint64 {
	if !p.sys.lay.InHeap(addr, size) {
		panic(fmt.Sprintf("protocol: proc %d reads %d bytes at %d outside the allocated heap (%d bytes used)",
			p.id, size, addr, p.sys.lay.Used()))
	}
	if size == 4 {
		return uint64(p.grp.img.ReadU32(addr))
	}
	return p.grp.img.ReadU64(addr)
}

func (p *Proc) rawWrite(addr memory.Addr, size int, v uint64) {
	if !p.sys.lay.InHeap(addr, size) {
		panic(fmt.Sprintf("protocol: proc %d writes %d bytes at %d outside the allocated heap (%d bytes used)",
			p.id, size, addr, p.sys.lay.Used()))
	}
	if size == 4 {
		p.grp.img.WriteU32(addr, uint32(v))
	} else {
		p.grp.img.WriteU64(addr, v)
	}
}

// loadMiss is the load miss handler: it distinguishes false misses, merges
// with pending requests, serves from pending-downgrade blocks, or issues a
// read request and stalls.
func (p *Proc) loadMiss(addr memory.Addr, size int) uint64 {
	c := p.sys.cfg.Costs
	p.charge(stats.Task, c.Entry)
	base, lines := p.sys.lay.BlockOf(addr)
	mask := p.markAccess(base, lines, addr, size, false)
	if debugTraceBlock >= 0 && base == debugTraceBlock {
		fmt.Printf("[blk%d @%d] proc %d loadMiss addr %d: state %v entry %v\n",
			base, p.sp.Now(), p.id, addr, p.grp.img.State(base), p.grp.miss[base] != nil)
	}
	for {
		p.lockBlock(base)
		// An existing miss entry takes precedence over the state table:
		// the block may transiently read Invalid while a reply is in
		// flight (e.g. after an invalidation raced with our request).
		if entry := p.grp.miss[base]; entry != nil && !entry.complete {
			if entry.dataArrived {
				// The entry's data is present right now (e.g. the valid
				// shared copy underneath a pending upgrade); read it
				// under the lock.
				v := p.rawRead(addr, size)
				p.unlockBlock(base)
				return v
			}
			entry.waiters.add(p.id)
			p.st.MergedMisses++
			p.unlockBlock(base)
			// Once the entry's data arrives — or the entry completes,
			// since a completed entry's block may already have been
			// served away again — loop and re-dispatch on the current
			// state instead of trusting the (possibly re-invalidated)
			// data.
			p.stallUntil(stats.Read, "load-merge", func() bool {
				return entry.dataArrived || entry.complete
			})
			continue
		}
		st := p.grp.img.State(base)
		switch st {
		case memory.Shared, memory.Exclusive:
			// The data is valid: either a false miss (the application
			// data genuinely contains the flag value) or a merged miss
			// re-dispatched after its fetch completed.
			v := p.rawRead(addr, size)
			if flagHit(v, size) {
				p.st.FalseMisses++
				if debugBatchFlagReads && size == 8 && uint32(v>>32) == memory.FlagWord {
					panic(fmt.Sprintf("false miss returns full flag: proc %d addr %d block %d state %v copySeq %d",
						p.id, addr, base, st, p.grp.copySeq[base]))
				}
			}
			p.unlockBlock(base)
			return v

		case memory.PendingDowngrade:
			dg := p.grp.downgrades[base]
			if dg != nil && dg.preState.Valid() {
				// The pre-downgrade state suffices for a load; serve it
				// while holding the lock (Section 3.4.3).
				v := p.rawRead(addr, size)
				if debugBatchFlagReads && uint32(v) == memory.FlagWord && (size == 4 || uint32(v>>32) == memory.FlagWord) {
					panic(fmt.Sprintf("load-during-downgrade returned flag: proc %d block %d pre %v", p.id, base, dg.preState))
				}
				p.unlockBlock(base)
				p.charge(stats.Other, c.MissTableOp)
				return v
			}
			p.unlockBlock(base)
			p.waitDowngrade(base)

		case memory.Invalid:
			entry := p.newMissEntry(base, stats.ReadMiss, mask, 0, false)
			p.grp.img.SetBlockState(base, memory.PendingRead)
			home := p.homeOf(base)
			p.sendHome(home, &pmsg{kind: mReadReq, baseLine: base, requester: p.id,
				issueTime: p.sp.Now()}, stats.Read)
			p.unlockBlock(base)
			p.stallUntil(stats.Read, "load-miss", func() bool {
				return entry.dataArrived || entry.complete
			})
			if entry.dataArrived {
				// The reply handler ran in this processor's own stall
				// loop, so the data is still in place.
				return p.rawRead(addr, size)
			}
			// The request was superseded by a later transaction before
			// its reply arrived; re-fetch.
			continue

		default:
			panic(fmt.Sprintf("protocol: load saw state %v with no miss entry", st))
		}
	}
}

// waitDowngrade stalls until the block's in-progress downgrade completes.
// The wait is charged to Other as before; the duration is also recorded in
// the DowngradeCycles memo for the profiler.
func (p *Proc) waitDowngrade(base int) {
	dg := p.grp.downgrades[base]
	if dg == nil {
		return
	}
	dg.waiters.add(p.id)
	start := p.sp.Now()
	p.stallUntil(stats.Other, "downgrade-wait", func() bool { return dg.done })
	p.st.DowngradeCycles += p.sp.Now() - start
}

// --- Stores ---

// StoreF64 performs a checked shared store of a float64. Stores are
// non-blocking: on a miss the protocol records the store in the miss entry
// and lets the processor continue (release consistency).
func (p *Proc) StoreF64(addr memory.Addr, v float64) {
	p.store(addr, 8, math.Float64bits(v))
}

// StoreU64 performs a checked shared store of a 64-bit integer.
func (p *Proc) StoreU64(addr memory.Addr, v uint64) { p.store(addr, 8, v) }

// StoreU32 performs a checked shared store of a 32-bit integer.
func (p *Proc) StoreU32(addr memory.Addr, v uint32) { p.store(addr, 4, uint64(v)) }

func (p *Proc) store(addr memory.Addr, size int, v uint64) {
	if p.sys.cfg.Hardware {
		p.rawWrite(addr, size, v)
		return
	}
	p.poll()
	cfg := &p.sys.cfg
	p.charge(stats.Task, cfg.CheckCosts.StoreCheck(cfg.CheckMode()))
	p.st.ChecksExecuted++
	li := p.sys.lay.LineOf(addr)
	if p.privState(li) == memory.Exclusive {
		p.rawWrite(addr, size, v)
		return
	}
	p.storeMiss(addr, size, v)
}

// storeMiss is the store miss handler.
func (p *Proc) storeMiss(addr memory.Addr, size int, v uint64) {
	c := p.sys.cfg.Costs
	p.charge(stats.Task, c.Entry)
	base, lines := p.sys.lay.BlockOf(addr)
	mask := p.markAccess(base, lines, addr, size, true)
	for {
		p.lockBlock(base)
		// Merge with an existing pending request for the block: record
		// the store in the shared miss entry and continue without
		// stalling (the protocol's non-blocking store support). Entries
		// waiting only for acknowledgements are excluded: they receive
		// no further data replies, so a store recorded there would be
		// lost if the block is invalidated meanwhile.
		if entry := p.grp.miss[base]; entry != nil && !entry.complete && !entry.acksOnly() {
			p.charge(stats.Other, c.MissTableOp)
			p.rawWrite(addr, size, v)
			entry.stores = append(entry.stores, storeRec{addr: addr, size: size, val: v, proc: p.id})
			if !entry.hasStores {
				entry.hasStores = true
				p.sys.procs[entry.issuer].outstandingStores++
			}
			entry.wantExcl = true
			p.unlockBlock(base)
			return
		}
		st := p.grp.img.State(base)
		switch st {
		case memory.Exclusive:
			// The group already holds the block exclusively; only this
			// processor's private state needs upgrading.
			p.charge(stats.Other, c.PrivateUpgrade)
			p.setPrivBlock(base, memory.Exclusive)
			p.st.LocalHits++
			p.rawWrite(addr, size, v)
			p.unlockBlock(base)
			return

		case memory.PendingDowngrade:
			dg := p.grp.downgrades[base]
			if dg != nil && dg.preState == memory.Exclusive {
				// Pre-downgrade exclusive state suffices; the store is
				// performed under the lock and is included in whatever
				// data the deferred action sends (Section 3.4.3).
				p.rawWrite(addr, size, v)
				p.unlockBlock(base)
				p.charge(stats.Other, c.MissTableOp)
				return
			}
			p.unlockBlock(base)
			p.waitDowngrade(base)

		case memory.Shared:
			if p.outstandingStores >= p.sys.cfg.MaxOutstanding {
				p.unlockBlock(base)
				p.stallOutstanding()
				continue
			}
			entry := p.newMissEntry(base, stats.UpgradeMiss, 0, mask, false)
			// An upgrade's data is the already-present shared copy;
			// dataArrived is cleared if an invalidation takes it away
			// while the upgrade is in flight.
			entry.dataArrived = true
			entry.hasStores = true
			p.outstandingStores++
			p.rawWrite(addr, size, v)
			entry.stores = append(entry.stores, storeRec{addr: addr, size: size, val: v, proc: p.id})
			entry.wantExcl = true
			p.grp.img.SetBlockState(base, memory.PendingExcl)
			home := p.homeOf(base)
			p.sendHome(home, &pmsg{kind: mUpgradeReq, baseLine: base, requester: p.id,
				issueTime: p.sp.Now()}, stats.Other)
			p.unlockBlock(base)
			return

		case memory.Invalid:
			if p.outstandingStores >= p.sys.cfg.MaxOutstanding {
				p.unlockBlock(base)
				p.stallOutstanding()
				continue
			}
			entry := p.newMissEntry(base, stats.WriteMiss, 0, mask, false)
			entry.hasStores = true
			p.outstandingStores++
			p.rawWrite(addr, size, v)
			entry.stores = append(entry.stores, storeRec{addr: addr, size: size, val: v, proc: p.id})
			entry.wantExcl = true
			p.grp.img.SetBlockState(base, memory.PendingExcl)
			home := p.homeOf(base)
			p.sendHome(home, &pmsg{kind: mReadExclReq, baseLine: base, requester: p.id,
				issueTime: p.sp.Now()}, stats.Other)
			p.unlockBlock(base)
			return

		default:
			panic(fmt.Sprintf("protocol: store saw state %v with no miss entry", st))
		}
	}
}

// stallOutstanding blocks (write time) until one of this processor's store
// misses completes, enforcing the outstanding-store limit the paper cites
// as the residual source of write stall time.
func (p *Proc) stallOutstanding() {
	// Register on every incomplete entry this processor issued so any
	// completion wakes us.
	for _, e := range p.grp.miss {
		if e.issuer == p.id && e.hasStores && !e.complete {
			e.waiters.add(p.id)
		}
	}
	p.stallUntil(stats.Write, "store-limit", func() bool {
		return p.outstandingStores < p.sys.cfg.MaxOutstanding
	})
}

// newMissEntry creates and registers a miss entry for a block. rdMask and
// wrMask are the sub-block slots the triggering access touches; they ride in
// the miss event's free-form detail as the race detector's offset evidence
// (see internal/obsv/races.go). Batch misses pass declared=true: their masks
// are the batch's conservatively declared reference ranges, not actual
// accesses (the batch emits touch events with the exact slots instead), and
// the detail marks them so the detector does not mistake them for evidence.
func (p *Proc) newMissEntry(base int, kind stats.MissKind, rdMask, wrMask uint64, declared bool) *missEntry {
	p.charge(stats.Other, p.sys.cfg.Costs.MissTableOp)
	if declared {
		p.trace("miss", "", base, "%v issued declared r=%x w=%x: %s", kind, rdMask, wrMask, p.traceState(base))
	} else {
		p.trace("miss", "", base, "%v issued r=%x w=%x: %s", kind, rdMask, wrMask, p.traceState(base))
	}
	e := &missEntry{
		baseLine:  base,
		kind:      kind,
		issuer:    p.id,
		issueTime: p.sp.Now(),
		epoch:     p.grp.epoch,
	}
	p.grp.miss[base] = e
	return e
}

// blockStat returns this processor's per-block counter shard for a block.
// Every per-block update goes through the executing processor's own
// stats.Proc, which keeps the counters race-free under the parallel
// scheduler and append-only for the determinism contract.
func (p *Proc) blockStat(base int) *stats.BlockStat {
	return p.st.Block(base)
}

// markAccess records the sub-block slots a missing access touched in the
// block's read or write mask, the observatory's false-sharing evidence, and
// returns the slot mask so the miss event can carry the same evidence.
// Aligned scalar accesses are at most 8 bytes, so an access marks one slot
// (or two when it straddles a slot boundary).
func (p *Proc) markAccess(base, lines int, addr memory.Addr, size int, write bool) uint64 {
	blockBytes := lines * p.sys.lay.LineSize()
	lo := int64(addr - p.sys.lay.LineAddr(base))
	m := stats.SlotMask(blockBytes, lo, lo+int64(size))
	b := p.blockStat(base)
	if write {
		b.WriteMask |= m
	} else {
		b.ReadMask |= m
	}
	return m
}
