package protocol

import (
	"fmt"
	"io"

	"repro/internal/memory"
)

// TraceEvent is one protocol-level event, emitted to a Tracer attached to
// the System. Tracing is intended for debugging coherence behaviour and for
// teaching: a filtered trace of a single block reads like the protocol
// walkthroughs in the paper (request, forward, downgrade messages, reply).
type TraceEvent struct {
	// Time is the emitting processor's virtual clock in cycles.
	Time int64
	// Proc is the emitting processor.
	Proc int
	// Op names the event: "send", "handle", "miss", "downgrade",
	// "install", "invalidate".
	Op string
	// Msg is the protocol message kind for send/handle events.
	Msg string
	// BaseLine identifies the block, -1 for non-block events.
	BaseLine int
	// Detail is free-form context (states, sequence numbers, targets).
	Detail string
}

// String renders the event as one line.
func (e TraceEvent) String() string {
	if e.Msg != "" {
		return fmt.Sprintf("@%-10d p%-2d %-10s %-18s blk%-5d %s",
			e.Time, e.Proc, e.Op, e.Msg, e.BaseLine, e.Detail)
	}
	return fmt.Sprintf("@%-10d p%-2d %-10s %-18s blk%-5d %s",
		e.Time, e.Proc, e.Op, "-", e.BaseLine, e.Detail)
}

// Tracer receives protocol events. Implementations must be fast; they run
// inline with the simulation.
type Tracer interface {
	Event(TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(TraceEvent)

// Event implements Tracer.
func (f TracerFunc) Event(e TraceEvent) { f(e) }

// WriterTracer streams formatted events to w, optionally filtered to a set
// of block base lines.
type WriterTracer struct {
	W io.Writer
	// Blocks filters events to these base lines; empty means all.
	Blocks map[int]bool
}

// Event implements Tracer.
func (t *WriterTracer) Event(e TraceEvent) {
	if len(t.Blocks) > 0 && !t.Blocks[e.BaseLine] {
		return
	}
	fmt.Fprintln(t.W, e.String())
}

// CollectorTracer appends events to memory for programmatic inspection.
type CollectorTracer struct {
	Events []TraceEvent
	// Limit caps collection; 0 means unlimited.
	Limit int
}

// Event implements Tracer.
func (t *CollectorTracer) Event(e TraceEvent) {
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		return
	}
	t.Events = append(t.Events, e)
}

// SetTracer attaches a tracer to the system (nil detaches). Call before
// Run.
func (s *System) SetTracer(tr Tracer) { s.tracer = tr }

// trace emits an event if a tracer is attached.
func (p *Proc) trace(op, msg string, base int, format string, args ...any) {
	tr := p.sys.tracer
	if tr == nil {
		return
	}
	tr.Event(TraceEvent{
		Time:     p.sp.Now(),
		Proc:     p.id,
		Op:       op,
		Msg:      msg,
		BaseLine: base,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// traceState summarizes a block's local protocol state for trace details.
func (p *Proc) traceState(base int) string {
	st := p.grp.img.State(base)
	priv := memory.State(0)
	if p.priv != nil {
		priv = p.priv.Get(base)
	}
	e := p.grp.miss[base]
	es := "-"
	if e != nil && !e.complete {
		es = fmt.Sprintf("%v(da=%v,eg=%v,acks=%d/%d)",
			e.kind, e.dataArrived, e.exclGranted, e.acksReceived, e.acksExpected)
	}
	return fmt.Sprintf("state=%v priv=%v seq=%d entry=%s", st, priv, p.grp.copySeq[base], es)
}
