package protocol

import (
	"fmt"
	"io"

	"repro/internal/memory"
)

// TraceSchemaVersion is the version of the trace-event schema: the set of
// TraceEvent fields, the Op vocabulary below, and the message-kind names
// used in Msg. It is carried in the header of serialized traces (see
// internal/obsv) and must be bumped whenever a field is renamed or removed,
// an Op is renamed, or the meaning of an existing field changes. Adding a
// new Op or message kind is a compatible extension and does not require a
// bump. The contract is documented field by field in OBSERVABILITY.md.
const TraceSchemaVersion = 1

// TraceOps lists the event kinds a Tracer can receive, in no particular
// order. The vocabulary is part of the versioned trace schema:
//
//	send        a protocol message leaves a processor
//	handle      a protocol message is dispatched at its destination
//	miss        a shared miss registers a new miss-table entry
//	downgrade   a block downgrade starts within a sharing group
//	install     reply data (or an upgrade grant) is installed at the requester
//	invalidate  a block's local copy is flag-filled and marked invalid
//	sync        an application synchronization point (lock, barrier)
//	batch       the batch miss handler begins fetching a batch's blocks
//	privup      a processor's private state table entry is raised to a
//	            valid state (SMP-Shasta only; compatible v1 extension)
//	touch       the exact sub-block slots a batched body accessed in one
//	            fetched block, emitted at batch end (compatible v1
//	            extension; the race detector's batch access evidence)
//	xmit        the interconnect's timing decomposition for one
//	            miss-protocol message (request, forward or reply),
//	            emitted immediately after its send event: destination,
//	            requester, absolute arrival cycle, and the link-queue /
//	            wire / serialization split (compatible v1 extension; the
//	            span layer's transit evidence, see OBSERVABILITY.md §10)
//	migrate     an online home-migration event: at the old home, the
//	            decision to re-home a block (with the cost-model evidence
//	            that triggered it); at the new home, the installation of
//	            the transferred directory entry (compatible v1 extension,
//	            see OBSERVABILITY.md §11)
//	migfwd      a home-bound message relayed along a migration tombstone
//	            at a previous home toward the block's live home
//	            (compatible v1 extension)
var TraceOps = []string{
	"send", "handle", "miss", "downgrade", "install", "invalidate",
	"sync", "batch", "privup", "touch", "xmit", "migrate", "migfwd",
}

// TraceEvent is one protocol-level event, emitted to a Tracer attached to
// the System. Tracing is intended for debugging coherence behaviour, for
// the observability pipeline (see internal/obsv and cmd/shastatrace), and
// for teaching: a filtered trace of a single block reads like the protocol
// walkthroughs in the paper (request, forward, downgrade messages, reply).
type TraceEvent struct {
	// Seq is a global, strictly increasing sequence number assigned at
	// emission. The simulator is cooperatively scheduled, so Seq gives a
	// deterministic total order over all events of a run, including
	// same-cycle events on different processors.
	Seq uint64
	// Time is the emitting processor's virtual clock in cycles.
	Time int64
	// Proc is the emitting processor.
	Proc int
	// Op names the event; see TraceOps.
	Op string
	// Msg is the protocol message kind for send/handle events, empty
	// otherwise.
	Msg string
	// BaseLine identifies the block, -1 for non-block events.
	BaseLine int
	// Detail is free-form context (states, sequence numbers, targets).
	// Unlike the other fields it is not part of the stable schema: its
	// contents may change between versions without a bump.
	Detail string
}

// String renders the event as one line.
func (e TraceEvent) String() string {
	if e.Msg != "" {
		return fmt.Sprintf("@%-10d p%-2d %-10s %-18s blk%-5d %s",
			e.Time, e.Proc, e.Op, e.Msg, e.BaseLine, e.Detail)
	}
	return fmt.Sprintf("@%-10d p%-2d %-10s %-18s blk%-5d %s",
		e.Time, e.Proc, e.Op, "-", e.BaseLine, e.Detail)
}

// Tracer receives protocol events. Implementations must be fast; they run
// inline with the simulation.
type Tracer interface {
	Event(TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(TraceEvent)

// Event implements Tracer.
func (f TracerFunc) Event(e TraceEvent) { f(e) }

// WriterTracer streams formatted events to w, optionally filtered to a set
// of block base lines.
type WriterTracer struct {
	W io.Writer
	// Blocks filters events to these base lines; empty means all.
	Blocks map[int]bool
}

// Event implements Tracer.
func (t *WriterTracer) Event(e TraceEvent) {
	if len(t.Blocks) > 0 && !t.Blocks[e.BaseLine] {
		return
	}
	fmt.Fprintln(t.W, e.String())
}

// CollectorTracer appends events to memory for programmatic inspection.
type CollectorTracer struct {
	Events []TraceEvent
	// Limit caps collection; 0 means unlimited.
	Limit int
}

// Event implements Tracer.
func (t *CollectorTracer) Event(e TraceEvent) {
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		return
	}
	t.Events = append(t.Events, e)
}

// SetTracer attaches a tracer to the system (nil detaches). Call before
// Run.
func (s *System) SetTracer(tr Tracer) { s.tracer = tr }

// trace emits an event if a tracer is attached. The event is buffered in
// the simulator and delivered to the tracer — with its Seq assigned — on
// the scheduler's control thread once the virtual-time floor passes it, in
// deterministic (Time, Proc, program order) order; see emitTrace. The
// tracer therefore observes an identical event sequence under the serial
// and parallel schedulers.
func (p *Proc) trace(op, msg string, base int, format string, args ...any) {
	if p.sys.tracer == nil {
		return
	}
	p.sp.Emit(TraceEvent{
		Time:     p.sp.Now(),
		Proc:     p.id,
		Op:       op,
		Msg:      msg,
		BaseLine: base,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// emitTrace is the engine's emit sink: it assigns the global sequence
// number at merge time and forwards the event to the attached tracer. It
// runs single-threaded on the scheduler's control thread.
func (s *System) emitTrace(_ int64, _ int, payload any) {
	if s.tracer == nil {
		return
	}
	s.traceSeq++
	ev := payload.(TraceEvent)
	ev.Seq = s.traceSeq
	s.tracer.Event(ev)
}

// traceState summarizes a block's local protocol state for trace details.
func (p *Proc) traceState(base int) string {
	st := p.grp.img.State(base)
	priv := memory.State(0)
	if p.priv != nil {
		priv = p.priv.Get(base)
	}
	e := p.grp.miss[base]
	es := "-"
	if e != nil && !e.complete {
		es = fmt.Sprintf("%v(da=%v,eg=%v,acks=%d/%d)",
			e.kind, e.dataArrived, e.exclGranted, e.acksReceived, e.acksExpected)
	}
	return fmt.Sprintf("state=%v priv=%v seq=%d entry=%s", st, priv, p.grp.copySeq[base], es)
}
