package memory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	l := NewLayout(64, 1<<20)
	a, err := l.Alloc(1000, 0) // <1024: single block of the whole object
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("first alloc at %d, want 0", a)
	}
	base, lines := l.BlockOf(a + 500)
	if base != 0 || lines != 16 { // 1000 rounded to 16 lines (1024 bytes)
		t.Fatalf("BlockOf = (%d,%d), want (0,16)", base, lines)
	}
}

func TestAllocDefaultGranularityLargeObject(t *testing.T) {
	l := NewLayout(64, 1<<20)
	a, err := l.Alloc(8192, 0) // >=1024: line-sized blocks
	if err != nil {
		t.Fatal(err)
	}
	_, lines := l.BlockOf(a)
	if lines != 1 {
		t.Fatalf("large object block lines = %d, want 1", lines)
	}
}

func TestAllocVariableGranularity(t *testing.T) {
	l := NewLayout(64, 1<<20)
	a, err := l.Alloc(8192, 2048)
	if err != nil {
		t.Fatal(err)
	}
	base, lines := l.BlockOf(a + 2048 + 5)
	if lines != 32 {
		t.Fatalf("block lines = %d, want 32 (2048/64)", lines)
	}
	if l.LineAddr(base) != a+2048 {
		t.Fatalf("second block base addr = %d, want %d", l.LineAddr(base), a+2048)
	}
}

func TestAllocAlignmentAndAdjacency(t *testing.T) {
	l := NewLayout(64, 1<<20)
	a1, _ := l.Alloc(100, 0) // one 128-byte block (2 lines)
	a2, _ := l.Alloc(64, 64) // one line
	if a2 != a1+128 {
		t.Fatalf("second alloc at %d, want %d", a2, a1+128)
	}
	b1, _ := l.BlockOf(a1)
	b2, _ := l.BlockOf(a2)
	if b1 == b2 {
		t.Fatal("distinct allocations share a block")
	}
}

func TestAllocExhaustion(t *testing.T) {
	l := NewLayout(64, 1024)
	if _, err := l.Alloc(2048, 64); err == nil {
		t.Fatal("expected heap exhaustion error")
	}
	if _, err := l.Alloc(-1, 64); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestImageStartsFlagFilled(t *testing.T) {
	l := NewLayout(64, 4096)
	img := NewImage(l)
	for a := Addr(0); a < 4096; a += 4 {
		if !img.HasFlagWord(a) {
			t.Fatalf("address %d not flag-filled at start", a)
		}
	}
	if img.State(0) != Invalid {
		t.Fatal("lines should start Invalid")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	l := NewLayout(64, 4096)
	img := NewImage(l)
	img.WriteF64(8, 3.25)
	if got := img.ReadF64(8); got != 3.25 {
		t.Fatalf("ReadF64 = %v", got)
	}
	img.WriteU32(100, 0xCAFE)
	if got := img.ReadU32(100); got != 0xCAFE {
		t.Fatalf("ReadU32 = %#x", got)
	}
	img.WriteU64(200, 1<<40)
	if got := img.ReadU64(200); got != 1<<40 {
		t.Fatalf("ReadU64 = %d", got)
	}
}

func TestFillFlagAndCopyIn(t *testing.T) {
	l := NewLayout(64, 4096)
	a, _ := l.Alloc(128, 128)
	img := NewImage(l)
	base, _ := l.BlockOf(a)
	img.WriteF64(a, 42.0)
	img.FillFlag(base)
	if !img.HasFlagWord(a) {
		t.Fatal("FillFlag did not store the flag")
	}
	fresh := make([]byte, 128)
	for i := range fresh {
		fresh[i] = byte(i)
	}
	img.CopyBlockIn(base, fresh)
	got := img.BlockData(base)
	for i := range fresh {
		if got[i] != fresh[i] {
			t.Fatalf("byte %d = %d after CopyBlockIn", i, got[i])
		}
	}
}

func TestBlockStateCoversWholeBlock(t *testing.T) {
	l := NewLayout(64, 4096)
	a, _ := l.Alloc(256, 256) // 4-line block
	img := NewImage(l)
	base, lines := l.BlockOf(a)
	img.SetBlockState(base, Exclusive)
	for i := 0; i < lines; i++ {
		if img.State(base+i) != Exclusive {
			t.Fatalf("line %d state = %v", base+i, img.State(base+i))
		}
	}
	if img.BlockState(a+200) != Exclusive {
		t.Fatal("BlockState on interior address wrong")
	}
}

func TestFlagF64Pattern(t *testing.T) {
	bits := math.Float64bits(FlagF64)
	if uint32(bits) != FlagWord || uint32(bits>>32) != FlagWord {
		t.Fatalf("FlagF64 bits = %#x, want both halves %#x", bits, FlagWord)
	}
}

func TestPrivateTable(t *testing.T) {
	l := NewLayout(64, 4096)
	a, _ := l.Alloc(256, 256)
	pt := NewPrivateTable(l)
	base, lines := l.BlockOf(a)
	if pt.Get(base) != Invalid {
		t.Fatal("private table should start Invalid")
	}
	pt.SetBlock(l, base, Shared)
	for i := 0; i < lines; i++ {
		if pt.Get(base+i) != Shared {
			t.Fatalf("line %d private state = %v", base+i, pt.Get(base+i))
		}
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E",
		PendingRead: "Pr", PendingExcl: "Px", PendingDowngrade: "Pd",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !Shared.Valid() || !Exclusive.Valid() || Invalid.Valid() || PendingRead.Valid() {
		t.Error("Valid() classification wrong")
	}
}

// Property: every address within an allocation maps to a block fully
// contained in that allocation, block bases are block-size aligned relative
// to the allocation start, and all lines of a block agree on their base.
func TestQuickBlockMapping(t *testing.T) {
	f := func(sz, bsz uint16, probe uint16) bool {
		size := int64(sz%5000) + 1
		blockSize := int(bsz%1024) + 1
		l := NewLayout(64, 1<<20)
		a, err := l.Alloc(size, blockSize)
		if err != nil {
			return false
		}
		off := int64(probe) % size
		base, lines := l.BlockOf(a + Addr(off))
		baseAddr := l.LineAddr(base)
		// Block contains the address.
		if baseAddr > a+Addr(off) || baseAddr+Addr(lines*64) <= a+Addr(off) {
			return false
		}
		// All lines in the block agree.
		for i := 0; i < lines; i++ {
			b2, n2 := l.BlockOf(baseAddr + Addr(i*64))
			if b2 != base || n2 != lines {
				return false
			}
		}
		// Block length covers the rounded block size.
		bLines := (blockSize + 63) / 64
		return lines == bLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: data written with WriteU32 at a flag-free location never reads
// back as the flag unless the written value is the flag itself.
func TestQuickFlagDetection(t *testing.T) {
	l := NewLayout(64, 4096)
	f := func(v uint32, off uint8) bool {
		img := NewImage(l)
		addr := Addr(int(off)%1000) &^ 3
		img.WriteU32(addr, v)
		return img.HasFlagWord(addr) == (v == FlagWord)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
