// Package memory models Shasta's shared virtual address space.
//
// Shared data lives in a flat heap of virtual addresses. The heap is
// divided into fixed-size lines (64 or 128 bytes; the experiments use 64),
// and a per-line state table records each line's coherence state. Blocks —
// the units of coherence and transfer — consist of one or more consecutive
// lines; uniquely among software DSM systems, Shasta lets the block size
// differ between allocations ("variable granularity"), chosen with a hint
// at allocation time.
//
// Every sharing group (a set of processors that share memory through the
// SMP hardware; size 1 in Base-Shasta) holds an Image: its own copy of the
// heap data plus the group's shared state table. SMP-Shasta additionally
// gives every processor a private state table (PrivateTable), consulted by
// the inline checks without any synchronization or fence instructions.
//
// When a line becomes invalid the protocol stores a designated flag value
// in each longword of the line, which lets load miss checks compare the
// loaded value against the flag instead of consulting the state table —
// making the load and its check effectively atomic.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Addr is a virtual address in the shared heap.
type Addr int64

// FlagWord is the invalid-flag value stored in every longword (4 bytes) of
// an invalidated line.
const FlagWord uint32 = 0xDEADBEEF

// FlagF64 is the float64 whose representation consists of two flag words;
// loads of float64 data compare against this pattern.
var FlagF64 = math.Float64frombits(uint64(FlagWord)<<32 | uint64(FlagWord))

// State is a line's coherence state in a group's shared state table.
type State uint8

// Line states. The three base states mirror a hardware protocol; the
// pending states mark lines with an outstanding request or an in-progress
// downgrade (SMP-Shasta).
const (
	// Invalid: the data is not valid in this group.
	Invalid State = iota
	// Shared: valid here, and other groups may hold copies.
	Shared
	// Exclusive: valid here and nowhere else.
	Exclusive
	// PendingRead: a read request for the block is outstanding.
	PendingRead
	// PendingExcl: a read-exclusive or upgrade request is outstanding.
	PendingExcl
	// PendingDowngrade: the block is being downgraded; intra-group
	// downgrade messages are still in flight (SMP-Shasta only).
	PendingDowngrade
)

// String returns a short name for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case PendingRead:
		return "Pr"
	case PendingExcl:
		return "Px"
	case PendingDowngrade:
		return "Pd"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether data in this state may satisfy a load.
func (s State) Valid() bool { return s == Shared || s == Exclusive }

// PageSize is the granularity of home assignment (a virtual page).
const PageSize = 4096

// Layout describes the structure of the shared heap: allocations and their
// block sizes. A single Layout is shared by every group's Image, since all
// groups see the same virtual address space.
type Layout struct {
	lineSize int
	heapSize Addr
	brk      Addr
	// blockBase[l] is the line index of the first line of the block
	// containing line l; blockLines[b] (indexed by a block's first line)
	// is the block's length in lines.
	blockBase  []int32
	blockLines []int32
	// allocated[l] marks lines covered by an allocation; accesses to
	// alignment gaps between allocations are programming errors and are
	// rejected by InHeap.
	allocated []bool
	// migratable[b] (indexed by a block's first line) marks blocks whose
	// home the protocol may move at runtime (online home migration);
	// migEpoch[b] counts completed migrations of the block. Both are
	// written only by protocol code under the block's happens-before
	// chain, so the layout itself needs no locking.
	migratable []bool
	migEpoch   []int32
}

// NewLayout creates a layout with the given line size (which must be a
// multiple of 8) and total heap capacity in bytes.
func NewLayout(lineSize int, heapSize int64) *Layout {
	if lineSize < 8 || lineSize%8 != 0 {
		panic(fmt.Sprintf("memory: invalid line size %d", lineSize))
	}
	if heapSize%int64(lineSize) != 0 {
		panic(fmt.Sprintf("memory: heap size %d not a multiple of line size", heapSize))
	}
	nLines := heapSize / int64(lineSize)
	l := &Layout{
		lineSize:   lineSize,
		heapSize:   Addr(heapSize),
		blockBase:  make([]int32, nLines),
		blockLines: make([]int32, nLines),
		allocated:  make([]bool, nLines),
		migratable: make([]bool, nLines),
		migEpoch:   make([]int32, nLines),
	}
	for i := range l.blockBase {
		l.blockBase[i] = int32(i)
		l.blockLines[i] = 1
	}
	return l
}

// LineSize returns the line size in bytes.
func (l *Layout) LineSize() int { return l.lineSize }

// HeapSize returns the heap capacity in bytes.
func (l *Layout) HeapSize() int64 { return int64(l.heapSize) }

// Used returns the number of heap bytes allocated so far.
func (l *Layout) Used() int64 { return int64(l.brk) }

// NumLines returns the number of lines in the heap.
func (l *Layout) NumLines() int { return int(l.heapSize) / l.lineSize }

// AlignToPage advances the allocation pointer to the next page boundary.
// The heap allocator calls it before every allocation so that no two
// allocations share a virtual page: home assignment is per page, and a page
// shared between allocations with different placement policies would let a
// later allocation silently re-home an earlier one's data.
func (l *Layout) AlignToPage() {
	if rem := int64(l.brk) % PageSize; rem != 0 {
		l.brk += Addr(PageSize - rem)
	}
}

// Alloc carves size bytes out of the heap, kept coherent in blocks of
// blockSize bytes. Following the paper's policy, blockSize is rounded up to
// a whole number of lines; a blockSize of 0 selects the default policy
// (objects smaller than 1024 bytes become a single block, larger objects
// use one line per block). The allocation is aligned to a block boundary.
func (l *Layout) Alloc(size int64, blockSize int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memory: alloc of non-positive size %d", size)
	}
	if blockSize == 0 {
		if size < 1024 {
			blockSize = int(size)
		} else {
			blockSize = l.lineSize
		}
	}
	// Round the block size up to whole lines.
	bLines := (blockSize + l.lineSize - 1) / l.lineSize
	bBytes := int64(bLines * l.lineSize)
	// Round the allocation up to whole blocks.
	nBlocks := (size + bBytes - 1) / bBytes
	total := nBlocks * bBytes
	start := l.brk
	if int64(start)+total > int64(l.heapSize) {
		return 0, fmt.Errorf("memory: heap exhausted: need %d, have %d",
			total, int64(l.heapSize)-int64(start))
	}
	l.brk += Addr(total)
	firstLine := int(start) / l.lineSize
	for li := firstLine; li < firstLine+int(total)/l.lineSize; li++ {
		l.allocated[li] = true
	}
	for b := 0; b < int(nBlocks); b++ {
		base := firstLine + b*bLines
		l.blockLines[base] = int32(bLines)
		for i := 0; i < bLines; i++ {
			l.blockBase[base+i] = int32(base)
		}
	}
	return start, nil
}

// LineOf returns the index of the line containing addr.
func (l *Layout) LineOf(addr Addr) int { return int(addr) / l.lineSize }

// LineAddr returns the starting address of line index li.
func (l *Layout) LineAddr(li int) Addr { return Addr(li * l.lineSize) }

// BlockOf returns the first line index and length in lines of the block
// containing addr.
func (l *Layout) BlockOf(addr Addr) (baseLine, lines int) {
	li := l.LineOf(addr)
	base := int(l.blockBase[li])
	return base, int(l.blockLines[base])
}

// BlockBytes returns the block's starting address and size in bytes.
func (l *Layout) BlockBytes(addr Addr) (Addr, int) {
	base, lines := l.BlockOf(addr)
	return l.LineAddr(base), lines * l.lineSize
}

// InHeap reports whether [addr, addr+size) lies inside an allocation.
func (l *Layout) InHeap(addr Addr, size int) bool {
	if addr < 0 || addr+Addr(size) > l.brk {
		return false
	}
	return l.allocated[int(addr)/l.lineSize] && l.allocated[(int(addr)+size-1)/l.lineSize]
}

// PageOf returns the virtual page number of addr, used for home assignment.
func (l *Layout) PageOf(addr Addr) int { return int(addr) / PageSize }

// SetMigratable marks (or unmarks) every block of [addr, addr+size) as a
// candidate for online home migration. Called at allocation time; the flag
// is immutable once the run starts.
func (l *Layout) SetMigratable(addr Addr, size int64, on bool) {
	first := int(addr) / l.lineSize
	last := (int64(addr) + size - 1) / int64(l.lineSize)
	for li := first; li <= int(last); li++ {
		l.migratable[l.blockBase[li]] = on
	}
}

// Migratable reports whether the block with the given base line may be
// re-homed at runtime.
func (l *Layout) Migratable(baseLine int) bool { return l.migratable[baseLine] }

// BumpMigEpoch records one completed migration of the block. Only the
// block's new home calls it, inside the migration handshake, so successive
// bumps of one block are ordered by the protocol's happens-before chain.
func (l *Layout) BumpMigEpoch(baseLine int) { l.migEpoch[baseLine]++ }

// MigEpoch returns how many times the block has been re-homed.
func (l *Layout) MigEpoch(baseLine int) int { return int(l.migEpoch[baseLine]) }

// Image is one sharing group's copy of the heap: its data bytes and the
// group's shared state table.
type Image struct {
	lay   *Layout
	data  []byte
	state []State
}

// NewImage creates a group image. Lines start Invalid with the flag value
// filled in, except for groups that are homes of the data; protocol code
// arranges initial ownership.
func NewImage(lay *Layout) *Image {
	img := &Image{
		lay:   lay,
		data:  make([]byte, lay.HeapSize()),
		state: make([]State, lay.NumLines()),
	}
	for i := 0; i+4 <= len(img.data); i += 4 {
		binary.LittleEndian.PutUint32(img.data[i:], FlagWord)
	}
	return img
}

// Layout returns the image's layout.
func (img *Image) Layout() *Layout { return img.lay }

// State returns the state of line li.
func (img *Image) State(li int) State { return img.state[li] }

// SetState sets the state of line li.
func (img *Image) SetState(li int, s State) { img.state[li] = s }

// SetBlockState sets the state of every line of the block whose first line
// is baseLine.
func (img *Image) SetBlockState(baseLine int, s State) {
	n := int(img.lay.blockLines[baseLine])
	for i := 0; i < n; i++ {
		img.state[baseLine+i] = s
	}
}

// BlockState returns the state of the block containing addr (all lines of a
// block share one state).
func (img *Image) BlockState(addr Addr) State {
	base, _ := img.lay.BlockOf(addr)
	return img.state[base]
}

// FillFlag stores the invalid-flag value into every longword of the block
// whose first line is baseLine, as the protocol does when invalidating.
func (img *Image) FillFlag(baseLine int) {
	start := baseLine * img.lay.lineSize
	n := int(img.lay.blockLines[baseLine]) * img.lay.lineSize
	for i := start; i < start+n; i += 4 {
		binary.LittleEndian.PutUint32(img.data[i:], FlagWord)
	}
}

// BlockData returns the block's bytes (aliasing the image).
func (img *Image) BlockData(baseLine int) []byte {
	start := baseLine * img.lay.lineSize
	n := int(img.lay.blockLines[baseLine]) * img.lay.lineSize
	return img.data[start : start+n]
}

// CopyBlockIn installs data (a protocol reply) into the block starting at
// baseLine.
func (img *Image) CopyBlockIn(baseLine int, data []byte) {
	copy(img.BlockData(baseLine), data)
}

// HasFlagWord reports whether the aligned longword containing addr holds
// the invalid-flag value — the comparison performed by flag-based load miss
// checks.
func (img *Image) HasFlagWord(addr Addr) bool {
	a := int(addr) &^ 3
	return binary.LittleEndian.Uint32(img.data[a:]) == FlagWord
}

// ReadU32 reads a 32-bit longword.
func (img *Image) ReadU32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(img.data[addr:])
}

// WriteU32 writes a 32-bit longword.
func (img *Image) WriteU32(addr Addr, v uint32) {
	binary.LittleEndian.PutUint32(img.data[addr:], v)
}

// ReadU64 reads a 64-bit quadword.
func (img *Image) ReadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(img.data[addr:])
}

// WriteU64 writes a 64-bit quadword.
func (img *Image) WriteU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(img.data[addr:], v)
}

// ReadF64 reads a float64.
func (img *Image) ReadF64(addr Addr) float64 {
	return math.Float64frombits(img.ReadU64(addr))
}

// WriteF64 writes a float64.
func (img *Image) WriteF64(addr Addr, v float64) {
	img.WriteU64(addr, math.Float64bits(v))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (img *Image) ReadBytes(addr Addr, n int) []byte {
	out := make([]byte, n)
	copy(out, img.data[addr:int(addr)+n])
	return out
}

// WriteBytes stores b at addr.
func (img *Image) WriteBytes(addr Addr, b []byte) {
	copy(img.data[addr:], b)
}

// PrivateState is a processor's view of a line in its private state table.
// Unlike the shared table it has only the three base states; pending
// conditions are tracked in the shared table and miss table.
type PrivateState = State

// PrivateTable is a processor's private state table (SMP-Shasta). Inline
// checks read it without synchronization; it is modified only by protocol
// code under the same locks as the shared table.
type PrivateTable []State

// NewPrivateTable creates an all-Invalid private table for the layout.
func NewPrivateTable(lay *Layout) PrivateTable {
	return make(PrivateTable, lay.NumLines())
}

// Get returns the private state of line li.
func (t PrivateTable) Get(li int) State { return t[li] }

// Set sets the private state of line li.
func (t PrivateTable) Set(li int, s State) { t[li] = s }

// SetBlock sets the private state of a whole block.
func (t PrivateTable) SetBlock(lay *Layout, baseLine int, s State) {
	n := int(lay.blockLines[baseLine])
	for i := 0; i < n; i++ {
		t[baseLine+i] = s
	}
}
