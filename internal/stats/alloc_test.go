package stats

// Tests for the per-block shard hot path: the last-block lookup cache, the
// chunked arena, and their interaction with Clone, Sub and Reset.

import "testing"

// TestBlockLookupCacheNoAllocs pins the steady-state cost of the inline
// counter path: once a block's shard exists, repeated Block calls — the
// pattern protocol handlers generate — allocate nothing.
func TestBlockLookupCacheNoAllocs(t *testing.T) {
	var p Proc
	p.Block(4096).InvalsRecv++ // first touch: map + arena chunk
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			p.Block(4096).InvalsSent++
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Block lookups allocate %.1f objects, want 0", allocs)
	}
}

// TestBlockArenaAmortizesAllocation bounds the allocation count of
// first-touching many blocks: the arena hands out BlockStat values in
// chunks of blockArenaChunk, so 4096 fresh blocks must cost far fewer than
// the 4096 individual allocations the pre-arena code performed (what
// remains is ~64 chunks plus map growth).
func TestBlockArenaAmortizesAllocation(t *testing.T) {
	const blocks = 4096
	allocs := testing.AllocsPerRun(5, func() {
		var p Proc
		for i := 0; i < blocks; i++ {
			p.Block(i*64).InvalsRecv++
		}
	})
	if allocs > blocks/4 {
		t.Fatalf("first-touching %d blocks allocates %.0f objects, want < %d", blocks, allocs, blocks/4)
	}
}

// TestBlockCacheConsistency exercises the cache's edge cases: block base 0
// (whose base aliases the cache's zero value), hits after misses on other
// blocks, and pointer identity with the map.
func TestBlockCacheConsistency(t *testing.T) {
	var p Proc
	b0 := p.Block(0)
	if p.Block(0) != b0 {
		t.Fatal("block 0 not cached correctly")
	}
	b64 := p.Block(64)
	if p.Block(0) != b0 || p.Block(64) != b64 {
		t.Fatal("alternating lookups return wrong shards")
	}
	for base, b := range p.Blocks {
		if p.Block(base) != b {
			t.Fatalf("Block(%d) disagrees with map entry", base)
		}
	}
}

// TestCloneDoesNotAliasArena writes through the original's cache after
// cloning and checks the clone is unaffected — the clone must own copies,
// not pointers into the original's arena.
func TestCloneDoesNotAliasArena(t *testing.T) {
	var p Proc
	p.Block(64).InvalsRecv = 5
	c := p.Clone()
	p.Block(64).InvalsRecv = 7
	if got := c.Blocks[64].InvalsRecv; got != 5 {
		t.Fatalf("clone sees %d after original mutated, want 5", got)
	}
	c.Block(64).InvalsRecv = 9
	if got := p.Blocks[64].InvalsRecv; got != 7 {
		t.Fatalf("original sees %d after clone mutated, want 7", got)
	}
}

// TestSubInvalidatesBlockCache subtracts a baseline that zeroes a block
// (dropping its map entry) and checks the next Block call re-creates a
// fresh entry instead of resurrecting the deleted shard through the cache.
func TestSubInvalidatesBlockCache(t *testing.T) {
	var p, base Proc
	p.Block(64).InvalsRecv = 3 // also primes the cache for base 64
	base.Block(64).InvalsRecv = 3
	p.Sub(&base)
	if _, ok := p.Blocks[64]; ok {
		t.Fatal("zeroed block survived Sub")
	}
	b := p.Block(64)
	if got, ok := p.Blocks[64]; !ok || got != b {
		t.Fatal("Block after Sub did not re-create the map entry")
	}
	if b.InvalsRecv != 0 {
		t.Fatalf("re-created shard carries stale count %d", b.InvalsRecv)
	}
}
