// Package stats collects the counters and time breakdowns reported in the
// evaluation of the SMP-Shasta paper: shared-miss counts classified by
// request type and hop count (Figure 6), protocol message counts classified
// as remote / local / downgrade (Figure 7), the distribution of downgrade
// messages sent per block downgrade (Figure 8), and per-processor execution
// time breakdowns (Figures 4 and 5).
//
// All times are in processor cycles; the simulator runs virtual 300 MHz
// clocks, so 300 cycles equal one microsecond.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// TimeCategory labels one component of the execution-time breakdown used in
// Figures 4 and 5 of the paper.
type TimeCategory int

// The breakdown categories, in the order the paper stacks them.
const (
	// Task is time spent executing application code, including inline
	// miss checks and the cost of entering the protocol.
	Task TimeCategory = iota
	// Read is stall time for read misses satisfied by the software
	// protocol.
	Read
	// Write is stall time attributable to stores (outstanding-store
	// limits and waiting for store completions at releases).
	Write
	// Sync is stall time for application locks and barriers.
	Sync
	// Message is time spent handling protocol messages while not
	// already stalled.
	Message
	// Other covers non-blocking-store bookkeeping, private state table
	// upgrades and pending-downgrade handling.
	Other

	// NumTimeCategories is the number of breakdown categories.
	NumTimeCategories
)

// String returns the paper's label for the category.
func (c TimeCategory) String() string {
	switch c {
	case Task:
		return "task"
	case Read:
		return "read"
	case Write:
		return "write"
	case Sync:
		return "sync"
	case Message:
		return "message"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("TimeCategory(%d)", int(c))
	}
}

// MissKind classifies a shared miss by the protocol request it generated,
// matching the request types of the Shasta protocol.
type MissKind int

// The three request types of the protocol.
const (
	ReadMiss MissKind = iota
	WriteMiss
	UpgradeMiss

	// NumMissKinds is the number of miss classifications.
	NumMissKinds
)

// String returns a short label for the miss kind.
func (k MissKind) String() string {
	switch k {
	case ReadMiss:
		return "read"
	case WriteMiss:
		return "write"
	case UpgradeMiss:
		return "upgrade"
	default:
		return fmt.Sprintf("MissKind(%d)", int(k))
	}
}

// MsgClass classifies a protocol message for Figure 7.
type MsgClass int

// Message classes.
const (
	// RemoteMsg is a protocol message between processors on different
	// physical nodes.
	RemoteMsg MsgClass = iota
	// LocalMsg is a protocol message between processors on the same
	// physical node, excluding downgrade messages.
	LocalMsg
	// DowngradeMsg is an intra-node downgrade message (SMP-Shasta only).
	DowngradeMsg

	// NumMsgClasses is the number of message classifications.
	NumMsgClasses
)

// String returns the paper's label for the message class.
func (c MsgClass) String() string {
	switch c {
	case RemoteMsg:
		return "remote"
	case LocalMsg:
		return "local"
	case DowngradeMsg:
		return "downgrade"
	default:
		return fmt.Sprintf("MsgClass(%d)", int(c))
	}
}

// MaxDowngradeFanout is the largest number of downgrade messages a single
// block downgrade can require (the other processors of a 4-processor node).
const MaxDowngradeFanout = 3

// SyncKind classifies an application synchronization primitive.
type SyncKind int

// The application synchronization primitive kinds.
const (
	// SyncLock is a message-based queue lock allocated by AllocLock.
	SyncLock SyncKind = iota
	// SyncBarrier is the global barrier (there is exactly one, id 0).
	SyncBarrier

	// NumSyncKinds is the number of primitive kinds.
	NumSyncKinds
)

// String returns a short label for the primitive kind.
func (k SyncKind) String() string {
	switch k {
	case SyncLock:
		return "lock"
	case SyncBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("SyncKind(%d)", int(k))
	}
}

// SyncID identifies one application synchronization primitive: a lock id
// from AllocLock, or the global barrier (kind SyncBarrier, ID 0).
type SyncID struct {
	Kind SyncKind
	ID   int
}

// Less orders primitives for deterministic reports: locks first by id, then
// the barrier.
func (a SyncID) Less(b SyncID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

// Lock hand-off hop-distance classes: how far a lock travelled from its
// previous holder to the processor it was granted to, in units of the
// cluster topology. A grant with no previous holder (the lock's first
// acquisition) is not a hand-off and is not classified.
const (
	// HandoffSelf: the previous holder is the new holder (re-acquisition).
	HandoffSelf = iota
	// HandoffNode: previous holder on the same SMP node.
	HandoffNode
	// HandoffGroup: same uplink group, different node (hierarchical
	// topologies only; on flat topologies every cross-node hand-off is
	// HandoffRemote).
	HandoffGroup
	// HandoffRemote: previous holder across the interconnect.
	HandoffRemote

	// NumHandoffClasses is the number of hand-off classes.
	NumHandoffClasses
)

// HandoffClassName returns the report label of a hand-off class.
func HandoffClassName(c int) string {
	switch c {
	case HandoffSelf:
		return "self"
	case HandoffNode:
		return "node"
	case HandoffGroup:
		return "group"
	case HandoffRemote:
		return "remote"
	default:
		return fmt.Sprintf("handoff(%d)", c)
	}
}

// SyncStat accumulates one processor's application-synchronization activity
// on a single primitive, counted on the requester side so each processor
// updates only its own shard (race-free under the parallel scheduler).
//
// Unlike the other counters these are NOT subtracted by mid-run stat resets
// (see Proc.Sub): traces span the whole run, and the observability contract
// requires the per-primitive wait and hold totals here to reconcile exactly
// with the totals the sync analyzer derives from the trace. They therefore
// stay cumulative from the start of the run, like the per-block offset
// masks.
type SyncStat struct {
	// Acquires counts completed lock acquisitions by this processor;
	// Contended the subset granted off the release path (hops=3) rather
	// than immediately by the manager (hops=2).
	Acquires  int64
	Contended int64

	// WaitCycles is the virtual time from the acquire (or barrier arrival)
	// to the grant (or barrier departure); HoldCycles the time from a lock
	// grant to its release.
	WaitCycles int64
	HoldCycles int64

	// Handoffs classifies this processor's lock grants by the previous
	// holder's topological distance (HandoffSelf..HandoffRemote). The
	// lock's first-ever grant has no previous holder and is not counted.
	Handoffs [NumHandoffClasses]int64

	// Generations counts barrier departures by this processor (barrier
	// primitive only; every processor departs every generation).
	Generations int64
}

// add accumulates o into s.
func (s *SyncStat) add(o *SyncStat) {
	s.Acquires += o.Acquires
	s.Contended += o.Contended
	s.WaitCycles += o.WaitCycles
	s.HoldCycles += o.HoldCycles
	for c := range s.Handoffs {
		s.Handoffs[c] += o.Handoffs[c]
	}
	s.Generations += o.Generations
}

// NumLatencyBuckets is the number of power-of-two latency histogram buckets.
// Bucket b counts samples in [2^(b-1), 2^b) cycles (bucket 0 counts
// zero-cycle samples); the last bucket absorbs everything above 2^26 cycles
// (~0.22 virtual seconds), far beyond any single miss round trip.
const NumLatencyBuckets = 28

// LatencyBucket maps a cycle count to its histogram bucket. The buckets are
// fixed powers of two, so histograms of identical runs are byte-identical
// regardless of the latency values' spread.
func LatencyBucket(cycles int64) int {
	if cycles <= 0 {
		return 0
	}
	b := bits.Len64(uint64(cycles))
	if b >= NumLatencyBuckets {
		b = NumLatencyBuckets - 1
	}
	return b
}

// BucketRange describes bucket b's half-open cycle interval [lo, hi) for
// report labels; the top bucket's hi is -1 (unbounded).
func BucketRange(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 1
	}
	if b == NumLatencyBuckets-1 {
		return 1 << uint(b-1), -1
	}
	return 1 << uint(b-1), 1 << uint(b)
}

// Proc accumulates the statistics of a single processor.
type Proc struct {
	// TimeBy breaks the processor's virtual execution time into the
	// paper's categories, in cycles.
	TimeBy [NumTimeCategories]int64

	// Misses counts shared misses that generated a protocol request,
	// classified by request type and by whether the reply came from the
	// home processor (2 hops) or a third processor (3 hops).
	// Misses[kind][0] is 2-hop, Misses[kind][1] is 3-hop.
	Misses [NumMissKinds][2]int64

	// MergedMisses counts misses that were satisfied by merging with a
	// pending request issued by another processor in the same sharing
	// group (SMP-Shasta request combining).
	MergedMisses int64

	// LocalHits counts protocol entries resolved entirely within the
	// sharing group by upgrading the private state table.
	LocalHits int64

	// Messages counts protocol messages sent by this processor.
	Messages [NumMsgClasses]int64

	// Downgrades[n] counts block downgrades initiated by this processor
	// (as the handler of an incoming request) that required n downgrade
	// messages, for n in [0, MaxDowngradeFanout].
	Downgrades [MaxDowngradeFanout + 1]int64

	// ReadLatencySum and ReadLatencyCount track the average latency of
	// read misses satisfied by the software protocol.
	ReadLatencySum   int64
	ReadLatencyCount int64

	// ChecksExecuted counts inline miss checks executed (loads, stores
	// and batch checks), used by the checking-overhead experiments.
	ChecksExecuted int64

	// FalseMisses counts loads whose value happened to equal the invalid
	// flag while the line was actually valid.
	FalseMisses int64

	// StallEvents counts distinct stall episodes (read stalls, write
	// stalls and sync stalls), for diagnostics.
	StallEvents int64

	// HandlerCycles is the total virtual time this processor spent inside
	// protocol message handlers (top-level dispatches only; nested replays
	// are included in their enclosing dispatch), and HandlerEvents the
	// number of such dispatches. Together they give handler occupancy for
	// the observability snapshots; wakeups are excluded.
	HandlerCycles int64
	HandlerEvents int64

	// LockHoldCycles is the total virtual time this processor held a
	// protocol line lock, and LockAcquires the number of acquisitions
	// (SMP-Shasta only; both stay zero under Base-Shasta, which needs no
	// protocol locking). Spin time waiting for a lock is charged to the
	// time breakdown, not counted here.
	LockHoldCycles int64
	LockAcquires   int64

	// Migrations counts online home migrations this processor decided as
	// the old home (each hands a block's directory entry to a new home),
	// and MigForwards the home-bound messages it relayed along migration
	// tombstones toward a block's live home. Both stay zero unless the
	// protocol's Migrate option is enabled.
	Migrations  int64
	MigForwards int64

	// DowngradeCycles is the virtual time this processor spent on intra-
	// group downgrades: handling downgrade messages plus stalling on a
	// downgrade already in progress. It is a memo sub-component — the same
	// cycles are also charged to the TimeBy categories (message or the
	// enclosing stall) — reported so the profiler can show how much of the
	// protocol overhead the SMP-Shasta downgrade machinery accounts for.
	DowngradeCycles int64

	// MissLatency histograms miss round-trip latency (request issue to
	// reply installation) by request type and home-node distance:
	// MissLatency[kind][0] for a home on this processor's own SMP node,
	// MissLatency[kind][1] for a remote home. Buckets are the fixed
	// power-of-two ranges of LatencyBucket.
	MissLatency [NumMissKinds][2][NumLatencyBuckets]int64

	// Blocks attributes this processor's protocol activity to individual
	// coherence blocks, keyed by block base line. Each processor updates
	// only its own shard, so the per-block counters stay race-free under
	// the parallel scheduler and append-only for the determinism contract;
	// the obsv layer aggregates shards across processors at snapshot time.
	// Allocated lazily by Block.
	Blocks map[int]*BlockStat

	// lastBase/lastBlock memoize the most recent Block lookup: protocol
	// handlers touch the same block's shard several times per transaction,
	// so the cache turns most lookups into a pointer compare instead of a
	// map probe. lastBlock nil means no valid cache entry (never key on
	// lastBase alone: its zero value aliases block 0).
	lastBase  int
	lastBlock *BlockStat

	// blockArena chunk-allocates BlockStat values so block-heavy runs do
	// one heap allocation per blockArenaChunk first-touches instead of one
	// each (a measurable share of host allocation churn at high processor
	// counts).
	blockArena []BlockStat

	// Syncs attributes this processor's application synchronization to
	// individual primitives (locks and the barrier), keyed by primitive.
	// Counted on the requester side only, so like Blocks each processor
	// updates its own shard. Cumulative across mid-run resets — see
	// SyncStat. Allocated lazily by Sync.
	Syncs map[SyncID]*SyncStat
}

// blockArenaChunk is the number of BlockStat values one arena chunk holds.
const blockArenaChunk = 64

// BlockStat accumulates one processor's protocol activity on a single
// coherence block. Like every other Proc field the counters are append-only:
// mid-run resets are baseline subtractions (see Sub), never in-place clears.
type BlockStat struct {
	// Misses counts this processor's shared misses on the block,
	// classified like Proc.Misses: by request type, and by whether the
	// reply came in 2 hops (index 0) or 3 hops (index 1).
	Misses [NumMissKinds][2]int64

	// InvalsRecv counts invalidation messages this processor handled for
	// the block; InvalsSent counts invalidations it sent on the block's
	// behalf while serving a request for exclusive ownership.
	InvalsRecv int64
	InvalsSent int64

	// Downgrades counts intra-group block downgrades this processor
	// initiated for the block, and DowngradeMsgs the downgrade messages
	// they required (SMP-Shasta only).
	Downgrades    int64
	DowngradeMsgs int64

	// Migrations counts online home migrations of the block this
	// processor decided as its (old) home.
	Migrations int64

	// ReadMask and WriteMask record which of the block's sub-block slots
	// (see BlockSlots) this processor's missing loads and stores touched.
	// The masks grow monotonically by bitwise OR, which is commutative, so
	// they are identical under the serial and parallel schedulers; unlike
	// the counters they are not subtractable and therefore remain
	// cumulative from the start of the run across ResetStats.
	ReadMask  uint64
	WriteMask uint64
}

// MissTotal returns the block's total miss count across kinds and hops.
func (b *BlockStat) MissTotal() int64 {
	var t int64
	for k := range b.Misses {
		t += b.Misses[k][0] + b.Misses[k][1]
	}
	return t
}

// countsZero reports whether every counter (not mask) is zero; such entries
// carry no activity for the measured phase and are dropped by Sub.
func (b *BlockStat) countsZero() bool {
	for k := range b.Misses {
		if b.Misses[k][0] != 0 || b.Misses[k][1] != 0 {
			return false
		}
	}
	return b.InvalsRecv == 0 && b.InvalsSent == 0 &&
		b.Downgrades == 0 && b.DowngradeMsgs == 0 && b.Migrations == 0
}

// Block returns the per-block shard for the block with the given base line,
// allocating it (and the Blocks map) on first touch.
func (p *Proc) Block(base int) *BlockStat {
	if p.lastBlock != nil && p.lastBase == base {
		return p.lastBlock
	}
	b := p.Blocks[base]
	if b == nil {
		if p.Blocks == nil {
			p.Blocks = make(map[int]*BlockStat)
		}
		if len(p.blockArena) == 0 {
			p.blockArena = make([]BlockStat, blockArenaChunk)
		}
		b = &p.blockArena[0]
		p.blockArena = p.blockArena[1:]
		p.Blocks[base] = b
	}
	p.lastBase, p.lastBlock = base, b
	return b
}

// Sync returns the per-primitive shard for one synchronization primitive,
// allocating it (and the Syncs map) on first touch.
func (p *Proc) Sync(kind SyncKind, id int) *SyncStat {
	k := SyncID{Kind: kind, ID: id}
	s := p.Syncs[k]
	if s == nil {
		if p.Syncs == nil {
			p.Syncs = make(map[SyncID]*SyncStat)
		}
		s = &SyncStat{}
		p.Syncs[k] = s
	}
	return s
}

// Clone returns a deep copy of the counters. The statistics fence callback
// must use it when recording baselines: a shallow struct copy would alias the
// live Blocks map and the end-of-run subtraction would then zero itself out.
func (p *Proc) Clone() Proc {
	c := *p
	// The clone gets its own shards; drop the lookup cache and arena so it
	// never aliases the live processor's storage.
	c.lastBase, c.lastBlock, c.blockArena = 0, nil, nil
	if p.Blocks != nil {
		c.Blocks = make(map[int]*BlockStat, len(p.Blocks))
		for base, b := range p.Blocks {
			cb := *b
			c.Blocks[base] = &cb
		}
	}
	if p.Syncs != nil {
		c.Syncs = make(map[SyncID]*SyncStat, len(p.Syncs))
		for k, s := range p.Syncs {
			cs := *s
			c.Syncs[k] = &cs
		}
	}
	return c
}

// BlockSlots returns the sub-block resolution of the per-block access masks
// for a block of blockBytes: the block divides into slots chunks of
// slotBytes each. slotBytes is blockBytes/64 but at least 8 (one longword),
// so a mask always fits in a uint64; at the paper's granularities a 64-byte
// block gets 8 slots of 8 bytes and a 256-byte block 32 slots of 8 bytes.
func BlockSlots(blockBytes int) (slots, slotBytes int) {
	slotBytes = blockBytes / 64
	if slotBytes < 8 {
		slotBytes = 8
	}
	slots = (blockBytes + slotBytes - 1) / slotBytes
	if slots > 64 {
		slots = 64
	}
	return slots, slotBytes
}

// SlotMask returns the access-mask bits covering the block-relative byte
// range [lo, hi) of a block of blockBytes.
func SlotMask(blockBytes int, lo, hi int64) uint64 {
	if hi <= lo {
		return 0
	}
	_, sb := BlockSlots(blockBytes)
	first := int(lo) / sb
	last := int(hi-1) / sb
	if first > 63 {
		first = 63
	}
	if last > 63 {
		last = 63
	}
	var m uint64
	for s := first; s <= last; s++ {
		m |= 1 << uint(s)
	}
	return m
}

// RecordMissLatency adds one miss round trip to the latency histograms.
func (p *Proc) RecordMissLatency(kind MissKind, remoteHome bool, cycles int64) {
	d := 0
	if remoteHome {
		d = 1
	}
	p.MissLatency[kind][d][LatencyBucket(cycles)]++
}

// AddTime attributes cycles to one breakdown category.
func (p *Proc) AddTime(c TimeCategory, cycles int64) {
	p.TimeBy[c] += cycles
}

// Total returns the processor's total accounted time in cycles.
func (p *Proc) Total() int64 {
	var t int64
	for _, v := range p.TimeBy {
		t += v
	}
	return t
}

// Run aggregates the statistics of a full parallel run.
type Run struct {
	Procs []Proc

	// Cycles is the parallel execution time of the run in cycles: the
	// maximum finish time across processors, measured from the point the
	// statistics were last reset (normally the end of initialization).
	Cycles int64

	// CyclesPerMicrosecond converts cycles to wall time (300 for the
	// paper's 300 MHz processors).
	CyclesPerMicrosecond int64

	// Measured, when non-nil, holds the per-processor execution-time
	// breakdown of the measured phase, frozen at the EndMeasured instant
	// (or at the end of the run) and sealed so each processor's components
	// sum exactly to Cycles. See CaptureMeasured and SealMeasured.
	Measured []MeasuredBreakdown
}

// MeasuredBreakdown is one processor's share of the measured parallel time,
// partitioned so that the six TimeBy categories plus Idle sum exactly to
// Run.Cycles. Idle covers the slack between a processor's accounted time and
// the parallel time — chiefly waiting at the final measured barrier after
// finishing early. Downgrade is an overlapping memo (see
// Proc.DowngradeCycles), not part of the sum.
type MeasuredBreakdown struct {
	TimeBy    [NumTimeCategories]int64
	Idle      int64
	Downgrade int64
}

// Total returns the partitioned total: the category sum plus idle time.
func (m *MeasuredBreakdown) Total() int64 {
	t := m.Idle
	for _, v := range m.TimeBy {
		t += v
	}
	return t
}

// CaptureMeasured freezes every processor's accumulated time breakdown at
// this instant. EndMeasured calls it so verification code running after the
// measured phase does not leak into the profile; it is idempotent in the
// sense that SealMeasured only captures if no capture has happened.
func (r *Run) CaptureMeasured() {
	r.Measured = make([]MeasuredBreakdown, len(r.Procs))
	for i := range r.Procs {
		r.Measured[i] = MeasuredBreakdown{
			TimeBy:    r.Procs[i].TimeBy,
			Downgrade: r.Procs[i].DowngradeCycles,
		}
	}
}

// sealOrder is the order categories absorb a (rare) accounting deficit when
// a processor's captured time exceeds the parallel time: a processor can run
// slightly ahead of the EndMeasured instant under the simulator's horizon-
// based run-ahead. The clamp is deterministic, so sealed breakdowns of
// identical runs stay byte-identical.
var sealOrder = [NumTimeCategories]TimeCategory{Sync, Read, Write, Message, Other, Task}

// SealMeasured finalizes the measured breakdown against the run's parallel
// time: capturing now if EndMeasured never did, then assigning each
// processor's residual (Cycles minus accounted time) to Idle. A negative
// residual is clamped by deducting the deficit from the categories in
// sealOrder. After sealing, every processor's TimeBy plus Idle sums exactly
// to Cycles. System.Run calls this once Cycles is known.
func (r *Run) SealMeasured() {
	if r.Measured == nil {
		r.CaptureMeasured()
	}
	for i := range r.Measured {
		m := &r.Measured[i]
		residual := r.Cycles
		for _, v := range m.TimeBy {
			residual -= v
		}
		if residual >= 0 {
			m.Idle = residual
			continue
		}
		m.Idle = 0
		deficit := -residual
		for _, c := range sealOrder {
			if deficit == 0 {
				break
			}
			take := m.TimeBy[c]
			if take > deficit {
				take = deficit
			}
			m.TimeBy[c] -= take
			deficit -= take
		}
	}
}

// NewRun returns a Run with storage for n processors.
func NewRun(n int) *Run {
	return &Run{Procs: make([]Proc, n), CyclesPerMicrosecond: 300}
}

// Microseconds converts a cycle count into microseconds of virtual time.
func (r *Run) Microseconds(cycles int64) float64 {
	return float64(cycles) / float64(r.CyclesPerMicrosecond)
}

// TotalMisses sums misses across processors, kinds and hop counts.
func (r *Run) TotalMisses() int64 {
	var t int64
	for i := range r.Procs {
		for k := 0; k < int(NumMissKinds); k++ {
			t += r.Procs[i].Misses[k][0] + r.Procs[i].Misses[k][1]
		}
	}
	return t
}

// MissesBy returns the total number of misses of the given kind and hop
// class (hops must be 2 or 3).
func (r *Run) MissesBy(kind MissKind, hops int) int64 {
	idx := hops - 2
	var t int64
	for i := range r.Procs {
		t += r.Procs[i].Misses[kind][idx]
	}
	return t
}

// TotalMessages sums protocol messages across processors and classes.
func (r *Run) TotalMessages() int64 {
	var t int64
	for i := range r.Procs {
		for c := 0; c < int(NumMsgClasses); c++ {
			t += r.Procs[i].Messages[c]
		}
	}
	return t
}

// MessagesBy returns the total number of messages of one class.
func (r *Run) MessagesBy(c MsgClass) int64 {
	var t int64
	for i := range r.Procs {
		t += r.Procs[i].Messages[c]
	}
	return t
}

// DowngradeDistribution returns, for n in [0, MaxDowngradeFanout], the
// fraction of block downgrades that required n downgrade messages. The
// second return value is the total number of downgrades; if it is zero the
// fractions are all zero.
func (r *Run) DowngradeDistribution() ([MaxDowngradeFanout + 1]float64, int64) {
	var counts [MaxDowngradeFanout + 1]int64
	var total int64
	for i := range r.Procs {
		for n, c := range r.Procs[i].Downgrades {
			counts[n] += c
			total += c
		}
	}
	var frac [MaxDowngradeFanout + 1]float64
	if total > 0 {
		for n, c := range counts {
			frac[n] = float64(c) / float64(total)
		}
	}
	return frac, total
}

// AvgReadLatencyMicros returns the mean read-miss latency in microseconds,
// or zero if no read misses were recorded.
func (r *Run) AvgReadLatencyMicros() float64 {
	var sum, n int64
	for i := range r.Procs {
		sum += r.Procs[i].ReadLatencySum
		n += r.Procs[i].ReadLatencyCount
	}
	if n == 0 {
		return 0
	}
	return r.Microseconds(sum) / float64(n)
}

// HandlerOccupancy returns total handler cycles and dispatch count across
// processors.
func (r *Run) HandlerOccupancy() (cycles, events int64) {
	for i := range r.Procs {
		cycles += r.Procs[i].HandlerCycles
		events += r.Procs[i].HandlerEvents
	}
	return cycles, events
}

// SyncTotals aggregates the per-primitive synchronization shards across
// processors. The returned primitives are sorted (locks by id, then the
// barrier), each paired with the summed counters; the barrier's Generations
// is the maximum across processors — the number of completed generations —
// rather than the sum of every processor's departures.
func (r *Run) SyncTotals() ([]SyncID, []SyncStat) {
	byID := map[SyncID]*SyncStat{}
	for i := range r.Procs {
		for k, s := range r.Procs[i].Syncs {
			t := byID[k]
			if t == nil {
				t = &SyncStat{}
				byID[k] = t
			}
			gens := t.Generations
			t.add(s)
			if k.Kind == SyncBarrier {
				t.Generations = gens
				if s.Generations > t.Generations {
					t.Generations = s.Generations
				}
			}
		}
	}
	ids := make([]SyncID, 0, len(byID))
	for k := range byID {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	out := make([]SyncStat, len(ids))
	for i, k := range ids {
		out[i] = *byID[k]
	}
	return ids, out
}

// LockHolds returns total line-lock hold cycles and acquisition count
// across processors (zero under Base-Shasta).
func (r *Run) LockHolds() (cycles, acquires int64) {
	for i := range r.Procs {
		cycles += r.Procs[i].LockHoldCycles
		acquires += r.Procs[i].LockAcquires
	}
	return cycles, acquires
}

// TimeBy returns the total cycles in one breakdown category summed across
// processors.
func (r *Run) TimeBy(c TimeCategory) int64 {
	var t int64
	for i := range r.Procs {
		t += r.Procs[i].TimeBy[c]
	}
	return t
}

// BreakdownFractions returns, per category, the fraction of the summed
// per-processor accounted time. Used to render the stacked bars of
// Figures 4 and 5.
func (r *Run) BreakdownFractions() [NumTimeCategories]float64 {
	var total int64
	var by [NumTimeCategories]int64
	for i := range r.Procs {
		for c := 0; c < int(NumTimeCategories); c++ {
			by[c] += r.Procs[i].TimeBy[c]
			total += r.Procs[i].TimeBy[c]
		}
	}
	var frac [NumTimeCategories]float64
	if total > 0 {
		for c := range by {
			frac[c] = float64(by[c]) / float64(total)
		}
	}
	return frac
}

// Reset zeroes every processor's counters. Used at the "start of parallel
// phase" barrier so measurements exclude initialization, as in standard
// SPLASH-2 methodology.
func (r *Run) Reset() {
	for i := range r.Procs {
		r.Procs[i] = Proc{}
	}
	r.Cycles = 0
	r.Measured = nil
}

// Sub subtracts a baseline snapshot from the counters, field-wise. Every
// Proc field is an additive counter, so state(t2).Sub(state(t1)) yields
// exactly the activity accumulated in between. The protocol layer's
// statistics fence uses this to implement mid-run resets as baseline
// subtraction: the reset records a snapshot at the fence position and the
// final counters are differenced once at the end of the run, which keeps
// the live counters append-only and therefore identical under the serial
// and parallel schedulers.
func (p *Proc) Sub(base *Proc) {
	for c := range p.TimeBy {
		p.TimeBy[c] -= base.TimeBy[c]
	}
	for k := range p.Misses {
		p.Misses[k][0] -= base.Misses[k][0]
		p.Misses[k][1] -= base.Misses[k][1]
	}
	p.MergedMisses -= base.MergedMisses
	p.LocalHits -= base.LocalHits
	for c := range p.Messages {
		p.Messages[c] -= base.Messages[c]
	}
	for n := range p.Downgrades {
		p.Downgrades[n] -= base.Downgrades[n]
	}
	p.ReadLatencySum -= base.ReadLatencySum
	p.ReadLatencyCount -= base.ReadLatencyCount
	p.ChecksExecuted -= base.ChecksExecuted
	p.FalseMisses -= base.FalseMisses
	p.StallEvents -= base.StallEvents
	p.HandlerCycles -= base.HandlerCycles
	p.HandlerEvents -= base.HandlerEvents
	p.LockHoldCycles -= base.LockHoldCycles
	p.LockAcquires -= base.LockAcquires
	p.Migrations -= base.Migrations
	p.MigForwards -= base.MigForwards
	p.DowngradeCycles -= base.DowngradeCycles
	for k := range p.MissLatency {
		for d := range p.MissLatency[k] {
			for b := range p.MissLatency[k][d] {
				p.MissLatency[k][d][b] -= base.MissLatency[k][d][b]
			}
		}
	}
	// Per-block counters subtract entry-wise; the offset masks are
	// OR-monotone rather than additive and stay cumulative (see BlockStat).
	// Entries with zero net counts and no recorded offsets carry no
	// evidence and are dropped; entries with masks survive even at zero
	// counts — a writer whose stores all hit locally still identifies who
	// writes which offsets, which is exactly the false-sharing evidence.
	// Dropping entries below may orphan the lookup cache; invalidate it.
	p.lastBase, p.lastBlock = 0, nil
	for blk, b := range p.Blocks {
		if bb, ok := base.Blocks[blk]; ok {
			for k := range b.Misses {
				b.Misses[k][0] -= bb.Misses[k][0]
				b.Misses[k][1] -= bb.Misses[k][1]
			}
			b.InvalsRecv -= bb.InvalsRecv
			b.InvalsSent -= bb.InvalsSent
			b.Downgrades -= bb.Downgrades
			b.DowngradeMsgs -= bb.DowngradeMsgs
			b.Migrations -= bb.Migrations
		}
		if b.countsZero() && b.ReadMask == 0 && b.WriteMask == 0 {
			delete(p.Blocks, blk)
		}
	}
	// The per-primitive sync shards are deliberately NOT subtracted: they
	// must reconcile exactly with whole-run traces (see SyncStat), so like
	// the offset masks they stay cumulative across mid-run resets.
}

// MissLatencyBy sums the latency histogram of one miss kind and home
// distance (0 local node, 1 remote) across processors.
func (r *Run) MissLatencyBy(kind MissKind, dist int) (buckets [NumLatencyBuckets]int64, count int64) {
	for i := range r.Procs {
		for b, n := range r.Procs[i].MissLatency[kind][dist] {
			buckets[b] += n
			count += n
		}
	}
	return buckets, count
}

// Summary renders a compact multi-line report of the run, mainly for
// debugging and the CLI's verbose mode.
func (r *Run) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel time: %.1f us (%d cycles)\n",
		r.Microseconds(r.Cycles), r.Cycles)
	fmt.Fprintf(&b, "misses: %d (", r.TotalMisses())
	parts := make([]string, 0, 6)
	for k := MissKind(0); k < NumMissKinds; k++ {
		for _, h := range []int{2, 3} {
			if n := r.MissesBy(k, h); n > 0 {
				parts = append(parts, fmt.Sprintf("%s-%dhop %d", k, h, n))
			}
		}
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(")\n")
	fmt.Fprintf(&b, "messages: %d (remote %d, local %d, downgrade %d)\n",
		r.TotalMessages(), r.MessagesBy(RemoteMsg), r.MessagesBy(LocalMsg),
		r.MessagesBy(DowngradeMsg))
	frac, total := r.DowngradeDistribution()
	if total > 0 {
		fmt.Fprintf(&b, "downgrades: %d (0:%.0f%% 1:%.0f%% 2:%.0f%% 3:%.0f%%)\n",
			total, frac[0]*100, frac[1]*100, frac[2]*100, frac[3]*100)
	}
	fr := r.BreakdownFractions()
	fmt.Fprintf(&b, "breakdown: task %.0f%% read %.0f%% write %.0f%% sync %.0f%% msg %.0f%% other %.0f%%\n",
		fr[Task]*100, fr[Read]*100, fr[Write]*100, fr[Sync]*100,
		fr[Message]*100, fr[Other]*100)
	return b.String()
}

// SortedKeys returns map keys in sorted order; a small helper shared by
// report formatting code.
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
