package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeCategoryNames(t *testing.T) {
	want := map[TimeCategory]string{
		Task: "task", Read: "read", Write: "write",
		Sync: "sync", Message: "message", Other: "other",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if TimeCategory(99).String() == "" {
		t.Error("unknown category should still render")
	}
}

func TestMissKindAndMsgClassNames(t *testing.T) {
	if ReadMiss.String() != "read" || WriteMiss.String() != "write" || UpgradeMiss.String() != "upgrade" {
		t.Error("miss kind names wrong")
	}
	if RemoteMsg.String() != "remote" || LocalMsg.String() != "local" || DowngradeMsg.String() != "downgrade" {
		t.Error("message class names wrong")
	}
}

func TestProcTimeAccounting(t *testing.T) {
	var p Proc
	p.AddTime(Task, 100)
	p.AddTime(Read, 50)
	p.AddTime(Task, 25)
	if p.TimeBy[Task] != 125 || p.TimeBy[Read] != 50 {
		t.Fatalf("TimeBy = %v", p.TimeBy)
	}
	if p.Total() != 175 {
		t.Fatalf("Total = %d, want 175", p.Total())
	}
}

func TestRunAggregation(t *testing.T) {
	r := NewRun(3)
	r.Procs[0].Misses[ReadMiss][0] = 5  // 2-hop
	r.Procs[1].Misses[ReadMiss][1] = 3  // 3-hop
	r.Procs[2].Misses[WriteMiss][0] = 2 // 2-hop
	r.Procs[0].Messages[RemoteMsg] = 10
	r.Procs[1].Messages[LocalMsg] = 7
	r.Procs[2].Messages[DowngradeMsg] = 4
	if got := r.TotalMisses(); got != 10 {
		t.Errorf("TotalMisses = %d, want 10", got)
	}
	if got := r.MissesBy(ReadMiss, 2); got != 5 {
		t.Errorf("MissesBy(read,2) = %d, want 5", got)
	}
	if got := r.MissesBy(ReadMiss, 3); got != 3 {
		t.Errorf("MissesBy(read,3) = %d, want 3", got)
	}
	if got := r.TotalMessages(); got != 21 {
		t.Errorf("TotalMessages = %d, want 21", got)
	}
	if got := r.MessagesBy(DowngradeMsg); got != 4 {
		t.Errorf("MessagesBy(downgrade) = %d, want 4", got)
	}
}

func TestDowngradeDistribution(t *testing.T) {
	r := NewRun(2)
	r.Procs[0].Downgrades[0] = 6
	r.Procs[0].Downgrades[3] = 2
	r.Procs[1].Downgrades[1] = 2
	frac, total := r.DowngradeDistribution()
	if total != 10 {
		t.Fatalf("total downgrades = %d, want 10", total)
	}
	if frac[0] != 0.6 || frac[1] != 0.2 || frac[2] != 0 || frac[3] != 0.2 {
		t.Fatalf("fractions = %v", frac)
	}
	// Empty run: all-zero fractions, not NaN.
	empty := NewRun(1)
	f2, tot := empty.DowngradeDistribution()
	if tot != 0 || f2[0] != 0 {
		t.Fatalf("empty distribution = %v, %d", f2, tot)
	}
}

func TestReadLatency(t *testing.T) {
	r := NewRun(2)
	r.Procs[0].ReadLatencySum = 6000 // 20 us at 300 cycles/us
	r.Procs[0].ReadLatencyCount = 1
	r.Procs[1].ReadLatencySum = 6600
	r.Procs[1].ReadLatencyCount = 1
	if got := r.AvgReadLatencyMicros(); got != 21 {
		t.Fatalf("avg latency = %v us, want 21", got)
	}
	if NewRun(1).AvgReadLatencyMicros() != 0 {
		t.Fatal("empty run should report zero latency")
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	r := NewRun(2)
	r.Procs[0].AddTime(Task, 300)
	r.Procs[0].AddTime(Read, 100)
	r.Procs[1].AddTime(Sync, 600)
	fr := r.BreakdownFractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if fr[Task] != 0.3 || fr[Sync] != 0.6 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestReset(t *testing.T) {
	r := NewRun(2)
	r.Procs[0].AddTime(Task, 100)
	r.Procs[1].Misses[ReadMiss][0] = 4
	r.Cycles = 999
	r.Reset()
	if r.TotalMisses() != 0 || r.Procs[0].Total() != 0 || r.Cycles != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestMicroseconds(t *testing.T) {
	r := NewRun(1)
	if got := r.Microseconds(600); got != 2 {
		t.Fatalf("Microseconds(600) = %v, want 2", got)
	}
}

func TestSummaryContainsSections(t *testing.T) {
	r := NewRun(1)
	r.Cycles = 300000
	r.Procs[0].Misses[UpgradeMiss][1] = 2
	r.Procs[0].Messages[RemoteMsg] = 3
	r.Procs[0].Downgrades[1] = 5
	r.Procs[0].AddTime(Task, 100)
	s := r.Summary()
	for _, want := range []string{"parallel time", "upgrade-3hop 2", "remote 3", "downgrades: 5", "task"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q in:\n%s", want, s)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestLatencyBucket(t *testing.T) {
	cases := []struct {
		cycles int64
		want   int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, NumLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := LatencyBucket(c.cycles); got != c.want {
			t.Errorf("LatencyBucket(%d) = %d, want %d", c.cycles, got, c.want)
		}
	}
	// Every positive latency lands in the bucket whose range contains it.
	for _, cycles := range []int64{1, 2, 3, 5, 100, 4096, 99999} {
		b := LatencyBucket(cycles)
		lo, hi := BucketRange(b)
		if cycles < lo || (hi >= 0 && cycles >= hi) {
			t.Errorf("cycles %d in bucket %d [%d,%d)", cycles, b, lo, hi)
		}
	}
	if lo, hi := BucketRange(NumLatencyBuckets - 1); hi != -1 || lo <= 0 {
		t.Errorf("top bucket range [%d,%d) should be open-ended", lo, hi)
	}
}

func TestRecordMissLatency(t *testing.T) {
	var p Proc
	p.RecordMissLatency(ReadMiss, false, 100)
	p.RecordMissLatency(ReadMiss, true, 100)
	p.RecordMissLatency(ReadMiss, true, 3000)
	if p.MissLatency[ReadMiss][0][LatencyBucket(100)] != 1 {
		t.Error("local sample not recorded")
	}
	if p.MissLatency[ReadMiss][1][LatencyBucket(100)] != 1 ||
		p.MissLatency[ReadMiss][1][LatencyBucket(3000)] != 1 {
		t.Error("remote samples not recorded")
	}
	r := NewRun(2)
	r.Procs[0].RecordMissLatency(UpgradeMiss, true, 50)
	r.Procs[1].RecordMissLatency(UpgradeMiss, true, 60)
	buckets, count := r.MissLatencyBy(UpgradeMiss, 1)
	if count != 2 {
		t.Fatalf("aggregated count = %d, want 2", count)
	}
	var sum int64
	for _, n := range buckets {
		sum += n
	}
	if sum != 2 {
		t.Fatalf("aggregated buckets sum to %d, want 2", sum)
	}
}

func TestSealMeasured(t *testing.T) {
	r := NewRun(2)
	r.Procs[0].AddTime(Task, 700)
	r.Procs[0].AddTime(Read, 100)
	r.Procs[1].AddTime(Sync, 200)
	r.Procs[1].DowngradeCycles = 40
	r.CaptureMeasured()
	r.Cycles = 1000
	r.SealMeasured()
	if len(r.Measured) != 2 {
		t.Fatalf("%d measured entries, want 2", len(r.Measured))
	}
	if m := r.Measured[0]; m.Idle != 200 || m.Total() != 1000 {
		t.Fatalf("p0 measured = %+v", m)
	}
	if m := r.Measured[1]; m.Idle != 800 || m.Downgrade != 40 || m.Total() != 1000 {
		t.Fatalf("p1 measured = %+v", m)
	}
}

func TestSealMeasuredClampsOvershoot(t *testing.T) {
	// A processor that ran past the measured end has more attributed time
	// than Cycles; sealing deducts the overshoot deterministically and the
	// exact sum still holds.
	r := NewRun(1)
	r.Procs[0].AddTime(Task, 600)
	r.Procs[0].AddTime(Sync, 500)
	r.CaptureMeasured()
	r.Cycles = 1000
	r.SealMeasured()
	m := r.Measured[0]
	if m.Total() != 1000 || m.Idle != 0 {
		t.Fatalf("clamped measured = %+v", m)
	}
	if m.TimeBy[Sync] != 400 || m.TimeBy[Task] != 600 {
		t.Fatalf("deficit not taken from Sync first: %+v", m.TimeBy)
	}
}

func TestSealMeasuredWithoutCapture(t *testing.T) {
	// Runs that never call EndMeasured (no explicit measured phase) still
	// seal: capture happens implicitly at the end.
	r := NewRun(1)
	r.Procs[0].AddTime(Task, 250)
	r.Cycles = 300
	r.SealMeasured()
	if len(r.Measured) != 1 || r.Measured[0].Idle != 50 || r.Measured[0].Total() != 300 {
		t.Fatalf("implicit capture measured = %+v", r.Measured)
	}
}

// Property: aggregation equals the sum of per-processor counters for any
// random counter assignment.
func TestQuickAggregation(t *testing.T) {
	f := func(vals []uint16) bool {
		n := 4
		r := NewRun(n)
		var wantMisses, wantMsgs int64
		for i, v := range vals {
			p := &r.Procs[i%n]
			kind := MissKind(int(v) % int(NumMissKinds))
			hop := int(v>>3) % 2
			p.Misses[kind][hop] += int64(v % 7)
			wantMisses += int64(v % 7)
			cls := MsgClass(int(v>>6) % int(NumMsgClasses))
			p.Messages[cls] += int64(v % 5)
			wantMsgs += int64(v % 5)
		}
		return r.TotalMisses() == wantMisses && r.TotalMessages() == wantMsgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
