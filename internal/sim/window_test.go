package sim

// Tests for the adaptive per-domain windows and the host-side hot paths of
// the parallel scheduler: window-count reduction vs fixed windows with
// bit-identical results, fixed-window equivalence fuzzing, and the
// allocation-freedom of the k-way emission merge.

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

// TestAdaptiveWindowsReduceWindowCount runs a lopsided program — one
// domain computes for a long stretch while the other is blocked receiving
// — under fixed and adaptive windows. With fixed windows the busy domain
// is re-dispatched every Lookahead cycles; adaptive windows let it run
// ahead up to the window cap, cutting the number of windows by an order of
// magnitude. Results must stay identical to the serial schedule.
func TestAdaptiveWindowsReduceWindowCount(t *testing.T) {
	const lookahead = 50
	run := func(parallel, fixed bool) (finish, windows, recvAt int64) {
		e := NewEngine(4)
		e.Parallel = parallel
		e.FixedWindows = fixed
		e.Lookahead = lookahead
		e.SetDomains(pairDomains(4))
		finish = e.Run(func(p *Proc) {
			switch p.ID {
			case 0:
				for i := 0; i < 2000; i++ {
					p.Advance(stats.Task, 50)
				}
				p.Send(2, lookahead, "done")
			case 2:
				p.WaitRecv(stats.Read, "t")
				recvAt = p.Now()
			}
		})
		return finish, e.WindowsRun(), recvAt
	}

	sFin, _, sAt := run(false, false)
	fFin, fWin, fAt := run(true, true)
	aFin, aWin, aAt := run(true, false)

	if fFin != sFin || fAt != sAt {
		t.Errorf("fixed windows diverged from serial: finish %d vs %d, recv %d vs %d", fFin, sFin, fAt, sAt)
	}
	if aFin != sFin || aAt != sAt {
		t.Errorf("adaptive windows diverged from serial: finish %d vs %d, recv %d vs %d", aFin, sFin, aAt, sAt)
	}
	// 100000 cycles of compute at lookahead 50: fixed needs ~2000
	// windows; adaptive is capped at 64 lookaheads per window, so ~35.
	if aWin*4 >= fWin {
		t.Errorf("adaptive windows (%d) not substantially fewer than fixed (%d)", aWin, fWin)
	}
}

// TestFixedWindowsEquivalenceFuzz reruns the scheduler fuzz programs with
// adaptive window extension disabled: the FixedWindows knob must select a
// schedule that is still observably identical to the serial one (it is the
// benchmark baseline, so it has to stay correct, not just exist).
func TestFixedWindowsEquivalenceFuzz(t *testing.T) {
	const procs = 6
	const lookahead = 50
	for seed := int64(0); seed < 10; seed++ {
		se := NewEngine(procs)
		se.Lookahead = lookahead
		se.SetDomains(pairDomains(procs))
		sr := runRandomProgram(se, seed, lookahead)

		pe := NewEngine(procs)
		pe.Parallel = true
		pe.FixedWindows = true
		pe.Lookahead = lookahead
		pe.SetDomains(pairDomains(procs))
		pr := runRandomProgram(pe, seed, lookahead)

		compareRuns(t, fmt.Sprintf("fixed windows seed %d", seed), sr, pr)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// fillEmits stages count emissions on every processor with interleaved
// timestamps, as a window flush would find them.
func fillEmits(e *Engine, count int) {
	for i, p := range e.procs {
		for k := 0; k < count; k++ {
			p.emits = append(p.emits, emitRec{time: int64(i + k*e.NumProcs())})
		}
	}
}

// TestMergeEmitsDoesNotAllocate pins the allocation behaviour of the k-way
// emission merge: after the first call has grown the reusable heap buffer,
// draining fully-loaded emission buffers performs zero heap allocations
// per window. This is the hot path of every window flush at high processor
// counts, so an accidental per-event or per-window allocation is a
// regression.
func TestMergeEmitsDoesNotAllocate(t *testing.T) {
	e := NewEngine(64)
	delivered := 0
	e.SetEmitFunc(func(tm int64, proc int, payload any) { delivered++ })
	fillEmits(e, 16)
	e.mergeEmits(1 << 60) // warm: grows emitHeap and the emit buffers
	if delivered != 64*16 {
		t.Fatalf("warmup delivered %d emissions, want %d", delivered, 64*16)
	}
	allocs := testing.AllocsPerRun(20, func() {
		fillEmits(e, 16)
		e.mergeEmits(1 << 60)
	})
	if allocs != 0 {
		t.Fatalf("mergeEmits allocates %.1f objects per window, want 0", allocs)
	}
}

// TestMergeEmitsHeapOrder cross-checks the heap-based merge against the
// specified order — (emission time, processor ID) — on an adversarial
// pattern: equal timestamps across processors and uneven buffer lengths.
func TestMergeEmitsHeapOrder(t *testing.T) {
	e := NewEngine(5)
	var got []string
	e.SetEmitFunc(func(tm int64, proc int, payload any) {
		got = append(got, fmt.Sprintf("%d/%d", tm, proc))
	})
	// Equal times on procs 4..0 (reverse registration), plus extras on
	// the even processors so buffer lengths are uneven.
	for i := 4; i >= 0; i-- {
		p := e.procs[i]
		p.emits = append(p.emits, emitRec{time: 100})
		if i%2 == 0 {
			p.emits = append(p.emits, emitRec{time: 101 + int64(i)})
		}
	}
	e.mergeEmits(1 << 60)
	want := []string{"100/0", "100/1", "100/2", "100/3", "100/4", "101/0", "103/2", "105/4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}
