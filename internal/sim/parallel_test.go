package sim

// Tests for the conservative parallel scheduler and the engine's failure
// paths: serial-vs-parallel equivalence fuzzing, engine reuse, destination
// validation, goroutine cleanup on failed runs, lookahead enforcement,
// serial fallback, and position-exact fences.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// pairDomains labels processors into two-member conflict domains:
// {0,1}, {2,3}, ...
func pairDomains(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = i / 2
	}
	return d
}

// fenceObs is one fence observation: the caller's k-th fence saw processor
// q's time breakdown as at.
type fenceObs struct {
	k      int
	q      int
	timeBy [stats.NumTimeCategories]int64
}

// runResult captures everything observable about a run, for equivalence
// comparisons between schedulers. fences holds every observation each
// caller's fences made; fence observations land at the fence's cut
// (registration time + lookahead) and are scheduler-exact there (see
// sim.Proc.Fence), so the full log must agree between engines configured
// with the same lookahead.
type runResult struct {
	finish int64
	timeBy [][stats.NumTimeCategories]int64
	peaks  []int
	recvs  [][]string
	emits  []string
	fences [][]fenceObs
}

// runRandomProgram executes a pseudo-random program (advances, sends with
// scheduler-safe latencies, polls, emissions, fences) on the engine and
// returns the observable results. The program is a pure function of seed
// and processor ID, so two engines given the same seed run the same
// program. lookahead must match the engine's cross-domain bound and
// domains must be the pairDomains layout.
func runRandomProgram(e *Engine, seed int64, lookahead int64) runResult {
	n := e.NumProcs()
	res := runResult{
		timeBy: make([][stats.NumTimeCategories]int64, n),
		peaks:  make([]int, n),
		recvs:  make([][]string, n),
		fences: make([][]fenceObs, n),
	}
	e.SetEmitFunc(func(tm int64, proc int, payload any) {
		res.emits = append(res.emits, fmt.Sprintf("%d/%d/%v", tm, proc, payload))
	})
	st := stats.NewRun(n)
	for i := 0; i < n; i++ {
		e.Proc(i).Stats = &st.Procs[i]
	}
	res.finish = e.Run(func(p *Proc) {
		rng := rand.New(rand.NewSource(seed*1000003 + int64(p.ID)*7919))
		fenceK := 0
		for step := 0; step < 60; step++ {
			switch rng.Intn(6) {
			case 0, 1:
				p.Advance(stats.Task, int64(rng.Intn(200)))
			case 2:
				dst := rng.Intn(n)
				lat := int64(rng.Intn(40))
				if dst/2 != p.ID/2 {
					// Cross-domain: respect the lookahead bound.
					lat += lookahead
				}
				p.Send(dst, lat, fmt.Sprintf("m%d.%d", p.ID, step))
			case 3:
				if m, ok := p.TryRecv(); ok {
					res.recvs[p.ID] = append(res.recvs[p.ID],
						fmt.Sprintf("%d:%v@%d", m.Src, m.Payload, p.Now()))
				}
				p.Advance(stats.Other, int64(rng.Intn(50)))
			case 4:
				p.Emit(fmt.Sprintf("e%d.%d@%d", p.ID, step, p.Now()))
				p.Advance(stats.Message, int64(rng.Intn(30)))
			case 5:
				if rng.Intn(4) == 0 {
					k := fenceK
					fenceK++
					p.Fence(func(q int, at *stats.Proc) {
						res.fences[p.ID] = append(res.fences[p.ID],
							fenceObs{k: k, q: q, timeBy: at.TimeBy})
					})
				}
				p.Advance(stats.Sync, int64(rng.Intn(60)))
			}
		}
	})
	for i := 0; i < n; i++ {
		res.timeBy[i] = st.Procs[i].TimeBy
		res.peaks[i] = e.Proc(i).PeakInboxDepth()
		// Put each caller's observations in canonical (fence,
		// observed-processor) order. With a nonzero lookahead callbacks
		// resolve in that order already; the inline zero-lookahead path
		// delivers them the same way, so this is belt and braces.
		obs := res.fences[i]
		sort.Slice(obs, func(a, b int) bool {
			if obs[a].k != obs[b].k {
				return obs[a].k < obs[b].k
			}
			return obs[a].q < obs[b].q
		})
	}
	return res
}

// checkFenceSanity verifies the invariants every fence observation must
// satisfy within a single run, regardless of scheduler: successive fences
// by the same caller observe nondecreasing counters for every processor
// (counters are append-only), and no observation exceeds the processor's
// final counters.
func checkFenceSanity(t *testing.T, label string, res runResult) {
	t.Helper()
	for caller, obs := range res.fences {
		last := make(map[int][stats.NumTimeCategories]int64)
		for _, o := range obs { // sorted by (k, q)
			prev := last[o.q]
			for c, v := range o.timeBy {
				if v > res.timeBy[o.q][c] {
					t.Errorf("%s: caller %d fence %d saw proc %d category %d at %d, beyond final %d",
						label, caller, o.k, o.q, c, v, res.timeBy[o.q][c])
				}
				if v < prev[c] {
					t.Errorf("%s: caller %d fence %d saw proc %d category %d go backwards: %d then %d",
						label, caller, o.k, o.q, c, prev[c], v)
				}
			}
			last[o.q] = o.timeBy
		}
	}
}

// compareRuns requires two runs to be observably identical, including every
// fence observation of every processor — the fence contract makes those
// scheduler-exact whenever the two engines share a lookahead.
func compareRuns(t *testing.T, label string, s, p runResult) {
	t.Helper()
	if s.finish != p.finish {
		t.Errorf("%s: finish %d vs %d", label, s.finish, p.finish)
	}
	for i := range s.timeBy {
		if s.timeBy[i] != p.timeBy[i] {
			t.Errorf("%s: proc %d time breakdown %v vs %v", label, i, s.timeBy[i], p.timeBy[i])
		}
		if s.peaks[i] != p.peaks[i] {
			t.Errorf("%s: proc %d peak inbox depth %d vs %d", label, i, s.peaks[i], p.peaks[i])
		}
		if fmt.Sprint(s.recvs[i]) != fmt.Sprint(p.recvs[i]) {
			t.Errorf("%s: proc %d receive log differs:\n%v\n%v", label, i, s.recvs[i], p.recvs[i])
		}
		if fmt.Sprint(s.fences[i]) != fmt.Sprint(p.fences[i]) {
			t.Errorf("%s: proc %d fence observations differ:\n%v\n%v", label, i, s.fences[i], p.fences[i])
		}
	}
	if fmt.Sprint(s.emits) != fmt.Sprint(p.emits) {
		t.Errorf("%s: emission streams differ:\n%v\n%v", label, s.emits, p.emits)
	}
}

// TestSerialParallelEquivalenceFuzz runs pseudo-random programs under both
// schedulers and requires identical finish times, time breakdowns, peak
// inbox depths, receive logs, emission streams and fence observations —
// the programs place fences at arbitrary positions, not synchronization
// points, and the deferred-cut contract makes even those observations
// scheduler-exact. Both engines carry the same lookahead (the fence cut is
// registration time + lookahead, so it is part of the semantics); only
// Parallel differs. Each run's fence log must also satisfy the append-only
// invariants (checkFenceSanity).
func TestSerialParallelEquivalenceFuzz(t *testing.T) {
	const procs = 6
	const lookahead = 50
	for seed := int64(0); seed < 30; seed++ {
		se := NewEngine(procs)
		se.Lookahead = lookahead
		se.SetDomains(pairDomains(procs))
		sr := runRandomProgram(se, seed, lookahead)

		pe := NewEngine(procs)
		pe.Parallel = true
		pe.Lookahead = lookahead
		pe.SetDomains(pairDomains(procs))
		pr := runRandomProgram(pe, seed, lookahead)

		label := fmt.Sprintf("seed %d", seed)
		checkFenceSanity(t, label+" serial", sr)
		checkFenceSanity(t, label+" parallel", pr)
		compareRuns(t, label, sr, pr)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestEngineReuseIsReproducible reruns the same program on the same engine
// and requires identical results — the regression test for Run leaving
// stale per-run state (historically, the global send sequence counter)
// behind. Exercised under both schedulers.
func TestEngineReuseIsReproducible(t *testing.T) {
	const procs = 4
	const lookahead = 50
	for _, parallel := range []bool{false, true} {
		e := NewEngine(procs)
		e.Parallel = parallel
		e.Lookahead = lookahead
		e.SetDomains(pairDomains(procs))
		first := runRandomProgram(e, 7, lookahead)
		second := runRandomProgram(e, 7, lookahead)
		compareRuns(t, fmt.Sprintf("parallel=%v rerun", parallel), first, second)
	}
}

// TestSendInvalidDestinationPanics checks that Send and SendAt reject
// out-of-range destinations with a diagnostic naming the sender, the
// destination and the processor count.
func TestSendInvalidDestinationPanics(t *testing.T) {
	cases := []struct {
		name   string
		dst    int
		sendAt bool
	}{
		{"send-negative", -1, false},
		{"send-beyond-range", 2, false},
		{"sendat-negative", -3, true},
		{"sendat-beyond-range", 9, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic on invalid destination")
				}
				msg := fmt.Sprint(r)
				for _, want := range []string{
					"sim:",
					fmt.Sprintf("invalid destination %d", tc.dst),
					"(NumProcs 2)",
				} {
					if !strings.Contains(msg, want) {
						t.Fatalf("panic %q does not mention %q", msg, want)
					}
				}
			}()
			e := newTestEngine(2)
			e.Run(func(p *Proc) {
				if p.ID != 0 {
					return
				}
				if tc.sendAt {
					p.SendAt(tc.dst, p.Now()+10, "x")
				} else {
					p.Send(tc.dst, 10, "x")
				}
			})
		})
	}
}

// TestFailedRunReleasesGoroutines checks that deadlocked and panicking runs
// leave no processor goroutines behind, under both schedulers — the
// regression test for Run's failure paths abandoning goroutines blocked on
// their resume channels.
func TestFailedRunReleasesGoroutines(t *testing.T) {
	runCase := func(parallel bool, body func(*Proc)) {
		defer func() { recover() }()
		e := NewEngine(4)
		e.Parallel = parallel
		e.Lookahead = 50
		e.SetDomains(pairDomains(4))
		e.Run(body)
	}
	deadlock := func(p *Proc) {
		p.Advance(stats.Task, int64(10*(p.ID+1)))
		p.WaitRecv(stats.Read, "never")
	}
	boom := func(p *Proc) {
		if p.ID == 2 {
			p.Advance(stats.Task, 75)
			panic("boom")
		}
		p.Advance(stats.Task, 10)
		p.WaitRecv(stats.Read, "never")
	}
	before := runtime.NumGoroutine()
	for _, parallel := range []bool{false, true} {
		runCase(parallel, deadlock)
		runCase(parallel, boom)
	}
	// fail() waits for the processor goroutines before panicking, so the
	// count should already be back; allow a brief settle for the runtime
	// to retire exiting goroutines.
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked by failed runs: %d before, %d after", before, after)
}

// TestLookaheadViolationPanics checks that a cross-domain send arriving
// inside the current window is rejected rather than silently reordered.
func TestLookaheadViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected lookahead violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("panic %q does not mention the lookahead violation", r)
		}
	}()
	e := NewEngine(2)
	e.Parallel = true
	e.Lookahead = 100
	e.SetDomains([]int{0, 1})
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Send(1, 10, "too soon") // arrives at 10, inside [0, 100)
		} else {
			p.WaitRecv(stats.Read, "x")
		}
	})
}

// TestSerialFallback checks the silent fallbacks to the serial scheduler:
// zero lookahead and a single conflict domain must both complete and match
// the results of a plain serial engine with the same lookahead (the
// lookahead is part of the fence semantics, so each fallback is compared
// against a serial reference sharing its value).
func TestSerialFallback(t *testing.T) {
	const procs = 4

	zeroRef := NewEngine(procs)
	zeroRef.SetDomains(pairDomains(procs))
	zeroWant := runRandomProgram(zeroRef, 3, 0)

	zeroL := NewEngine(procs)
	zeroL.Parallel = true
	zeroL.Lookahead = 0
	zeroL.SetDomains(pairDomains(procs))
	compareRuns(t, "zero lookahead", zeroWant, runRandomProgram(zeroL, 3, 0))

	lRef := NewEngine(procs)
	lRef.Lookahead = 50
	lRef.SetDomains([]int{0, 0, 0, 0})
	lWant := runRandomProgram(lRef, 3, 0)

	oneDomain := NewEngine(procs)
	oneDomain.Parallel = true
	oneDomain.Lookahead = 50
	oneDomain.SetDomains([]int{0, 0, 0, 0})
	compareRuns(t, "single domain", lWant, runRandomProgram(oneDomain, 3, 0))
}

// TestFenceObservesCutExactly pins the fence cut to the charge level: a
// fence registered at 120 with lookahead 100 observes the state at the cut
// 220, so of the other processor's charges — a 150-cycle wake lump, then
// sync advances starting at 150, 210 and 260 — it must include exactly the
// ones starting before 220 (150 + 60 + 50 = 260 sync cycles), even though
// the last included advance runs past the cut, and even though under the
// parallel scheduler the other processor races ahead in another domain.
func TestFenceObservesCutExactly(t *testing.T) {
	run := func(parallel bool) int64 {
		e := NewEngine(2)
		e.Parallel = parallel
		e.Lookahead = 100
		e.SetDomains([]int{0, 1})
		st := stats.NewRun(2)
		for i := 0; i < 2; i++ {
			e.Proc(i).Stats = &st.Procs[i]
		}
		var seen int64
		e.Run(func(p *Proc) {
			if p.ID == 1 {
				p.SendAt(1, 150, "wake")
				p.WaitRecv(stats.Sync, "self") // lump [0,150) recorded at 150
				p.Advance(stats.Sync, 60)      // starts 150 < 220: included
				p.Advance(stats.Sync, 50)      // starts 210 < 220: included
				p.Advance(stats.Sync, 40)      // starts 260 >= 220: excluded
				return
			}
			p.Advance(stats.Task, 120)
			p.Fence(func(q int, at *stats.Proc) {
				if q == 1 {
					seen = at.TimeBy[stats.Sync]
				}
			})
		})
		if got := st.Procs[1].TimeBy[stats.Sync]; got != 300 {
			t.Fatalf("proc 1 final sync = %d, want 300", got)
		}
		return seen
	}
	serial, parallel := run(false), run(true)
	if serial != 260 {
		t.Fatalf("serial fence saw sync=%d, want 260 (charges starting before the cut at 220)", serial)
	}
	if parallel != serial {
		t.Fatalf("parallel fence saw sync=%d, serial saw %d", parallel, serial)
	}
}
