package sim

// Tests for the serial scheduler's ready heap: ordering (including the
// linear scan's lowest-ID tie-break), staleness handling, steady-state
// allocation behaviour, and a benchmark quantifying the O(P) -> O(log P)
// scheduling-step change at high processor counts.

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

// TestReadyHeapOrder pins the heap's ordering contract: keys pop in
// (time, processor ID) order, so equal-time processors run lowest-ID first —
// exactly the tie-break of the linear scan the heap replaced.
func TestReadyHeapOrder(t *testing.T) {
	e := NewEngine(8)
	// All processors ready at time 0 (the runSerial initial fill), but push
	// in reverse ID order with a mix of times to exercise sifting.
	times := []int64{40, 10, 40, 0, 10, 0, 40, 0}
	for id := 7; id >= 0; id-- {
		e.procs[id].now = times[id]
		e.pqPush(times[id], id)
	}
	var got []string
	for {
		top, ok := e.pqTopValid()
		if !ok {
			break
		}
		e.pqPop()
		got = append(got, fmt.Sprintf("%d/%d", top.t, top.id))
		e.procs[top.id].state = stateDone // invalidate any duplicate entries
	}
	want := "[0/3 0/5 0/7 10/1 10/4 40/0 40/2 40/6]"
	if fmt.Sprint(got) != want {
		t.Fatalf("pop order %v, want %v", got, want)
	}
}

// TestReadyHeapDiscardsStaleEntries verifies lazy invalidation: an entry
// whose processor's next-run time moved on (or which can no longer run) is
// skipped, never returned.
func TestReadyHeapDiscardsStaleEntries(t *testing.T) {
	e := NewEngine(3)
	e.pqPush(5, 0)  // stale: proc 0's clock will have moved to 20
	e.pqPush(10, 1) // stale: proc 1 will be blocked with an empty inbox
	e.pqPush(20, 0) // live
	e.pqPush(30, 2) // live, but behind proc 0
	e.procs[0].now = 20
	e.procs[1].state = stateBlocked
	e.procs[2].now = 30
	top, ok := e.pqTopValid()
	if !ok || top.t != 20 || top.id != 0 {
		t.Fatalf("top = %+v ok=%v, want {20 0} true", top, ok)
	}
	if len(e.readyPQ) != 2 {
		t.Fatalf("stale entries not discarded: heap has %d entries, want 2", len(e.readyPQ))
	}
}

// TestReadyHeapSteadyStateNoAllocs pins the allocation behaviour of the
// scheduling step: once the heap buffer has grown to the run's working set,
// pushing and consuming keys allocates nothing. Every yield of every
// processor goes through this path, so a per-step allocation would be a
// scheduler-wide regression.
func TestReadyHeapSteadyStateNoAllocs(t *testing.T) {
	const n = 64
	e := NewEngine(n)
	for i, p := range e.procs {
		p.now = int64(i)
	}
	// Warm: grow readyPQ to the working set once.
	for i := 0; i < n; i++ {
		e.pqPush(int64(i), i)
	}
	for range e.procs {
		e.pqPop()
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			e.pqPush(int64(i), i)
		}
		for i := 0; i < n; i++ {
			top, ok := e.pqTopValid()
			if !ok || top.id != i {
				t.Fatalf("pop %d: got %+v ok=%v", i, top, ok)
			}
			e.pqPop()
		}
	})
	if allocs != 0 {
		t.Fatalf("ready heap allocates %.1f objects per scheduling round, want 0", allocs)
	}
}

// benchSerialPingPong runs a message-heavy program under the serial
// scheduler: every processor ping-pongs with a partner for rounds
// exchanges. Each receive is one blocked->running transition, i.e. one full
// scheduling step (pickNext + horizonFor), so the benchmark isolates
// scheduler overhead; the former linear scans made each step O(P).
func benchSerialPingPong(b *testing.B, procs, rounds int) {
	b.ReportAllocs()
	e := NewEngine(procs)
	st := stats.NewRun(procs)
	for i := 0; i < procs; i++ {
		e.Proc(i).Stats = &st.Procs[i]
	}
	body := func(p *Proc) {
		partner := p.ID ^ 1
		for r := 0; r < rounds; r++ {
			if p.ID&1 == 0 {
				p.Send(partner, 10, r)
				p.WaitRecv(stats.Other, "pong")
			} else {
				p.WaitRecv(stats.Other, "ping")
				p.Send(partner, 10, r)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(body)
	}
}

func BenchmarkSerialScheduler64(b *testing.B)  { benchSerialPingPong(b, 64, 200) }
func BenchmarkSerialScheduler256(b *testing.B) { benchSerialPingPong(b, 256, 200) }
