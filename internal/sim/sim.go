// Package sim implements a deterministic discrete-event simulation engine
// for a cluster of processors.
//
// Each simulated processor runs its program on its own goroutine, but the
// engine enforces strictly cooperative execution: exactly one processor
// context executes at any instant, and the scheduler always resumes the
// runnable processor with the smallest virtual time (ties broken by
// processor ID). Processors advance their own virtual clocks explicitly and
// exchange timestamped messages; a message sent at time t with latency d is
// visible to the destination no earlier than t+d. The same program and
// configuration therefore always produce the same event order, the same
// protocol statistics and the same virtual execution times.
//
// The engine is the substitute for the paper's physical cluster of four
// AlphaServer 4100s: virtual clocks play the role of the 300 MHz 21164
// processors and message latencies are supplied by a pluggable network
// model (see package memchan).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Message is a timestamped payload in flight between two processors.
type Message struct {
	Src     int   // sending processor ID
	Dst     int   // receiving processor ID
	Arrival int64 // earliest cycle at which the destination may observe it
	seq     uint64
	Payload any
}

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked // waiting for a message
	stateDone
)

type yieldKind int

const (
	yieldReady yieldKind = iota
	yieldBlocked
	yieldDone
)

// Proc is one simulated processor context. All methods must be called only
// from the processor's own body function (the engine enforces cooperative
// single ownership).
type Proc struct {
	// ID is the processor's index in [0, NumProcs).
	ID int

	// Stats receives the processor's time attribution; it may be nil, in
	// which case time is tracked but not attributed to categories.
	Stats *stats.Proc

	eng     *Engine
	now     int64
	horizon int64
	state   procState
	inbox   msgHeap
	resume  chan struct{}
	yielded chan yieldKind
	body    func(*Proc)
	// blockedAt records where a processor blocked, for deadlock reports.
	blockedAt string
	// peakInbox is the deepest the inbox ever got, for observability
	// snapshots of queue depths.
	peakInbox int
}

// PeakInboxDepth returns the largest number of messages ever queued for
// this processor at once.
func (p *Proc) PeakInboxDepth() int { return p.peakInbox }

// Now returns the processor's current virtual time in cycles.
func (p *Proc) Now() int64 { return p.now }

// Advance moves the processor's clock forward by cycles and attributes the
// time to the given breakdown category. It may transfer control to another
// processor whose virtual time is now smaller.
func (p *Proc) Advance(c stats.TimeCategory, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d advanced by negative cycles %d", p.ID, cycles))
	}
	p.now += cycles
	if p.Stats != nil {
		p.Stats.AddTime(c, cycles)
	}
	if p.now > p.horizon {
		p.doYield(yieldReady)
	}
}

// AdvanceTo moves the clock to an absolute time (no-op if already past it),
// attributing the waited interval to the category.
func (p *Proc) AdvanceTo(c stats.TimeCategory, t int64) {
	if t > p.now {
		p.Advance(c, t-p.now)
	}
}

// Yield gives other processors with smaller or equal virtual times a chance
// to run. Programs rarely need it; Advance and the receive calls yield on
// their own.
func (p *Proc) Yield() { p.doYield(yieldReady) }

// Send delivers payload to processor dst with the given latency in cycles.
// The destination can observe the message once its own clock reaches the
// arrival time.
func (p *Proc) Send(dst int, latency int64, payload any) {
	if latency < 0 {
		panic(fmt.Sprintf("sim: proc %d sent with negative latency %d", p.ID, latency))
	}
	arrival := p.now + latency
	p.eng.deliver(Message{Src: p.ID, Dst: dst, Arrival: arrival, Payload: payload})
	// The destination may now need to run before this processor's next
	// scheduling point; shrink the horizon so we hand control back in
	// time.
	if arrival < p.horizon {
		p.horizon = arrival
	}
}

// SendAt is like Send but schedules arrival at an absolute time, which must
// not precede the current time.
func (p *Proc) SendAt(dst int, arrival int64, payload any) {
	if arrival < p.now {
		panic(fmt.Sprintf("sim: proc %d scheduled arrival %d before now %d", p.ID, arrival, p.now))
	}
	p.eng.deliver(Message{Src: p.ID, Dst: dst, Arrival: arrival, Payload: payload})
	if arrival < p.horizon {
		p.horizon = arrival
	}
}

// TryRecv returns the earliest message whose arrival time has been reached,
// if any. It does not advance the clock.
func (p *Proc) TryRecv() (Message, bool) {
	if len(p.inbox) > 0 && p.inbox[0].Arrival <= p.now {
		return heap.Pop(&p.inbox).(Message), true
	}
	return Message{}, false
}

// PendingArrival reports the arrival time of the earliest queued message,
// delivered or not.
func (p *Proc) PendingArrival() (int64, bool) {
	if len(p.inbox) == 0 {
		return 0, false
	}
	return p.inbox[0].Arrival, true
}

// WaitRecv blocks until a message is available, advances the clock to its
// arrival time if needed (attributing the waited time to category c), and
// returns it. A message sent later by another processor with an earlier
// arrival time correctly shortens the wait: the processor is woken at the
// earliest arrival across its whole inbox.
func (p *Proc) WaitRecv(c stats.TimeCategory, where string) Message {
	for {
		if len(p.inbox) > 0 && p.inbox[0].Arrival <= p.now {
			return heap.Pop(&p.inbox).(Message)
		}
		p.blockedAt = where
		prev := p.now
		p.doYield(yieldBlocked)
		// The scheduler resumed us at the earliest pending arrival;
		// attribute the waited interval to the caller's category.
		if p.Stats != nil && p.now > prev {
			p.Stats.AddTime(c, p.now-prev)
		}
	}
}

// doYield transfers control to the scheduler.
func (p *Proc) doYield(k yieldKind) {
	p.yielded <- k
	<-p.resume
}

// Engine owns the processors and runs the cooperative schedule.
type Engine struct {
	procs []*Proc
	seq   uint64
}

// NewEngine creates an engine with n processor contexts. Statistics
// attribution can be attached per processor via Proc.Stats before Run.
func NewEngine(n int) *Engine {
	e := &Engine{procs: make([]*Proc, n)}
	for i := range e.procs {
		e.procs[i] = &Proc{
			ID:      i,
			eng:     e,
			resume:  make(chan struct{}),
			yielded: make(chan yieldKind),
		}
	}
	return e
}

// NumProcs returns the number of processor contexts.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i's context (for wiring Stats before Run).
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

func (e *Engine) deliver(m Message) {
	e.seq++
	m.seq = e.seq
	dst := e.procs[m.Dst]
	heap.Push(&dst.inbox, m)
	if len(dst.inbox) > dst.peakInbox {
		dst.peakInbox = len(dst.inbox)
	}
}

type procPanic struct {
	id    int
	val   any
	stack []byte
}

// Run executes body on every processor until all complete, and returns the
// maximum finish time in cycles. It panics with a diagnostic if the system
// deadlocks (all processors blocked with no messages in flight) or if any
// processor's body panics.
func (e *Engine) Run(body func(*Proc)) int64 {
	panicCh := make(chan procPanic, len(e.procs))
	for _, p := range e.procs {
		p.body = body
		p.state = stateReady
		p.now = 0
		p.horizon = 0
		p.inbox = nil
		p.peakInbox = 0
		go func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					panicCh <- procPanic{p.ID, r, debug.Stack()}
					// Unblock the scheduler, which is waiting on
					// p.yielded.
					p.yielded <- yieldDone
				}
			}()
			<-p.resume
			p.body(p)
			// Terminal yield: signal completion and let the goroutine
			// exit (waiting for a resume that never comes would leak the
			// goroutine and pin the whole engine in memory).
			p.yielded <- yieldDone
		}(p)
	}

	var maxFinish int64
	remaining := len(e.procs)
	for remaining > 0 {
		next := e.pickNext()
		if next == nil {
			panic("sim: deadlock\n" + e.dump())
		}
		// Wake a blocked processor at its earliest message arrival.
		// The interval is attributed inside WaitRecv, which knows the
		// stall category.
		if next.state == stateBlocked {
			if a, ok := next.PendingArrival(); ok && a > next.now {
				next.now = a
			}
		}
		next.state = stateRunning
		next.horizon = e.horizonFor(next)
		next.resume <- struct{}{}
		k := <-next.yielded
		select {
		case pp := <-panicCh:
			panic(fmt.Sprintf("sim: processor %d panicked: %v\n%s\noriginal stack:\n%s",
				pp.id, pp.val, e.dump(), pp.stack))
		default:
		}
		switch k {
		case yieldReady:
			next.state = stateReady
		case yieldBlocked:
			next.state = stateBlocked
		case yieldDone:
			next.state = stateDone
			remaining--
			if next.now > maxFinish {
				maxFinish = next.now
			}
		}
	}
	return maxFinish
}

// nextTime returns the earliest virtual time at which p could run, or
// (0,false) if p cannot run until someone sends it a message.
func (e *Engine) nextTime(p *Proc) (int64, bool) {
	switch p.state {
	case stateReady:
		return p.now, true
	case stateBlocked:
		if a, ok := p.PendingArrival(); ok {
			if a < p.now {
				a = p.now
			}
			return a, true
		}
		return 0, false
	default:
		return 0, false
	}
}

func (e *Engine) pickNext() *Proc {
	var best *Proc
	var bestT int64 = math.MaxInt64
	for _, p := range e.procs {
		if t, ok := e.nextTime(p); ok && t < bestT {
			best, bestT = p, t
		}
	}
	return best
}

// horizonFor computes how far p may run before control must return to the
// scheduler: the earliest next-run time among all other processors.
func (e *Engine) horizonFor(p *Proc) int64 {
	var h int64 = math.MaxInt64
	for _, q := range e.procs {
		if q == p {
			continue
		}
		if t, ok := e.nextTime(q); ok && t < h {
			h = t
		}
	}
	return h
}

// dump renders the engine state for deadlock and panic diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	ids := make([]int, len(e.procs))
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, i := range ids {
		p := e.procs[i]
		st := map[procState]string{
			stateReady: "ready", stateRunning: "running",
			stateBlocked: "blocked", stateDone: "done",
		}[p.state]
		fmt.Fprintf(&b, "  proc %2d: %-7s now=%d inbox=%d", i, st, p.now, len(p.inbox))
		if p.state == stateBlocked {
			fmt.Fprintf(&b, " at %q", p.blockedAt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// msgHeap orders messages by (arrival, seq) so delivery is deterministic.
type msgHeap []Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
