// Package sim implements a deterministic discrete-event simulation engine
// for a cluster of processors.
//
// Each simulated processor runs its program on its own goroutine. Under the
// default serial scheduler the engine enforces strictly cooperative
// execution: exactly one processor context executes at any instant, and the
// scheduler always resumes the runnable processor with the smallest virtual
// time (ties broken by processor ID). Processors advance their own virtual
// clocks explicitly and exchange timestamped messages; a message sent at
// time t with latency d is visible to the destination no earlier than t+d.
//
// The engine also offers a conservative parallel scheduler (see
// parallel.go): when every cross-domain message has a minimum latency L
// (the Lookahead), all processors whose next-run time falls inside the
// window [T, T+L) can execute concurrently on real goroutines without
// violating causality — no message sent inside the window can arrive inside
// it. Message delivery order, statistics, emission order and inbox-depth
// accounting are all defined in terms of virtual time with deterministic
// tie-breaks, so the same program and configuration produce bit-identical
// results under either scheduler.
//
// The engine is the substitute for the paper's physical cluster of four
// AlphaServer 4100s: virtual clocks play the role of the 300 MHz 21164
// processors and message latencies are supplied by a pluggable network
// model (see package memchan).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Message is a timestamped payload in flight between two processors.
type Message struct {
	Src     int   // sending processor ID
	Dst     int   // receiving processor ID
	Arrival int64 // earliest cycle at which the destination may observe it
	// sendTime and srcSeq make delivery order a pure function of virtual
	// time: messages are ordered by (Arrival, sendTime, Src, srcSeq), a
	// total order (srcSeq is a per-sender counter) that does not depend on
	// which scheduler interleaved the sends.
	sendTime int64
	srcSeq   uint64
	Payload  any
}

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked // waiting for a message
	stateDone
)

type yieldKind int

const (
	yieldReady yieldKind = iota
	yieldBlocked
	yieldDone
)

// emitRec is one deferred emission (see Proc.Emit).
type emitRec struct {
	time    int64
	payload any
}

// depthEvent tracks inbox occupancy in virtual time: a message occupies its
// destination's inbox from its send time until the destination pops it.
// Both schedulers record the same (time, kind) multiset, so the peak depth
// is scheduler-independent.
type depthEvent struct {
	time int64
	pop  bool
}

// Proc is one simulated processor context. All methods must be called only
// from the processor's own body function (the engine enforces single
// ownership: cooperative under the serial scheduler, per-conflict-domain
// under the parallel one).
type Proc struct {
	// ID is the processor's index in [0, NumProcs).
	ID int

	// Stats receives the processor's time attribution; it may be nil, in
	// which case time is tracked but not attributed to categories.
	Stats *stats.Proc

	eng     *Engine
	now     int64
	horizon int64
	state   procState
	inbox   msgHeap
	resume  chan struct{}
	yielded chan yieldKind
	body    func(*Proc)
	// blockedAt records where a processor blocked, for deadlock reports.
	blockedAt string
	// sendSeq counts this processor's sends; it is the final tie-break of
	// message delivery order and resets on every Run.
	sendSeq uint64
	// domain is the processor's conflict-domain index (parallel scheduler).
	domain int
	// outbox stages cross-domain sends during a parallel window; the
	// coordinator merges them at the window boundary.
	outbox []Message
	// emits buffers Emit calls until the global virtual-time floor passes
	// them; emitStart is the already-flushed prefix.
	emits     []emitRec
	emitStart int
	// depthPend buffers inbox-depth events until the floor passes them;
	// depthDue is the reusable scratch for folding a batch.
	depthPend []depthEvent
	depthDue  []depthEvent
	depth     int
	peakDepth int
}

// PeakInboxDepth returns the largest number of messages ever simultaneously
// pending for this processor, measured in virtual time: a message counts
// from its send time until the processor receives it. Valid after Run.
func (p *Proc) PeakInboxDepth() int { return p.peakDepth }

// Now returns the processor's current virtual time in cycles.
func (p *Proc) Now() int64 { return p.now }

// Advance moves the processor's clock forward by cycles and attributes the
// time to the given breakdown category. It may transfer control to another
// processor whose virtual time is now smaller.
func (p *Proc) Advance(c stats.TimeCategory, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d advanced by negative cycles %d", p.ID, cycles))
	}
	p.now += cycles
	if p.Stats != nil {
		p.Stats.AddTime(c, cycles)
	}
	// Yield as soon as any other processor could have an action at or
	// before the new time (now >= horizon, not just past it): equal-time
	// actions across processors then always execute in processor-ID order
	// — the scheduler's pick rule — rather than in an order dependent on
	// where earlier slices happened to end. That canonical tie order is
	// what makes the serial and parallel schedulers produce identical
	// results when same-time actions touch shared model state (for
	// example, per-node link reservations in memchan).
	if p.now >= p.horizon {
		p.doYield(yieldReady)
	}
}

// AdvanceTo moves the clock to an absolute time (no-op if already past it),
// attributing the waited interval to the category.
func (p *Proc) AdvanceTo(c stats.TimeCategory, t int64) {
	if t > p.now {
		p.Advance(c, t-p.now)
	}
}

// Yield gives other processors with smaller or equal virtual times a chance
// to run. Programs rarely need it; Advance and the receive calls yield on
// their own.
func (p *Proc) Yield() { p.doYield(yieldReady) }

// Send delivers payload to processor dst with the given latency in cycles.
// The destination can observe the message once its own clock reaches the
// arrival time. Under the parallel scheduler, a send to another conflict
// domain must arrive no earlier than the engine's Lookahead after the start
// of the current window (guaranteed when every cross-domain latency is at
// least the Lookahead).
func (p *Proc) Send(dst int, latency int64, payload any) {
	if latency < 0 {
		panic(fmt.Sprintf("sim: proc %d sent with negative latency %d", p.ID, latency))
	}
	p.post(dst, p.now+latency, payload)
}

// SendAt is like Send but schedules arrival at an absolute time, which must
// not precede the current time.
func (p *Proc) SendAt(dst int, arrival int64, payload any) {
	if arrival < p.now {
		panic(fmt.Sprintf("sim: proc %d scheduled arrival %d before now %d", p.ID, arrival, p.now))
	}
	p.post(dst, arrival, payload)
}

// post validates the destination and routes the message: directly into the
// destination's inbox when the destination is scheduled by the same control
// flow (serial mode, or same conflict domain), staged in the sender's
// outbox for the window-boundary merge otherwise.
func (p *Proc) post(dst int, arrival int64, payload any) {
	e := p.eng
	if dst < 0 || dst >= len(e.procs) {
		panic(fmt.Sprintf("sim: proc %d sent to invalid destination %d (NumProcs %d)",
			p.ID, dst, len(e.procs)))
	}
	p.sendSeq++
	m := Message{Src: p.ID, Dst: dst, Arrival: arrival,
		sendTime: p.now, srcSeq: p.sendSeq, Payload: payload}
	if e.windowed && e.procs[dst].domain != p.domain {
		if dd := e.procs[dst].domain; arrival < e.domEnd[dd] {
			panic(fmt.Sprintf(
				"sim: lookahead violation: proc %d (domain %d) sent to proc %d (domain %d) "+
					"arriving at %d inside the destination's window ending at %d; cross-domain "+
					"latency must be at least the lookahead (%d)",
				p.ID, p.domain, dst, dd, arrival, e.domEnd[dd], e.Lookahead))
		}
		// The receiver may react at arrival and reply with at least one
		// more lookahead of latency, so this domain's extended window
		// must not run to arrival+Lookahead or beyond (see parallel.go).
		// Only this domain's processors and its (currently parked) worker
		// touch the slot, so the write is race-free.
		if rc := arrival + e.Lookahead; rc < e.domReflect[p.domain] {
			e.domReflect[p.domain] = rc
		}
		p.outbox = append(p.outbox, m)
	} else {
		e.procs[dst].enqueue(m)
	}
	// The destination may now need to run before this processor's next
	// scheduling point; shrink the horizon so we hand control back in
	// time. (Cross-domain arrivals lie beyond the window horizon already.)
	if arrival < p.horizon {
		p.horizon = arrival
	}
}

// enqueue pushes a message into the inbox and records its depth event.
func (p *Proc) enqueue(m Message) {
	heap.Push(&p.inbox, m)
	p.depthPend = append(p.depthPend, depthEvent{time: m.sendTime})
	// A blocked processor's next-run time is its earliest pending arrival,
	// which this message may have just established or lowered: give the
	// serial scheduler's ready heap a fresh key. (Ready processors run at
	// their own clock regardless of mail, and a running one re-keys at its
	// yield, so only the blocked state needs the push.)
	if p.eng.pqActive && p.state == stateBlocked {
		if t, ok := p.eng.nextTime(p); ok {
			p.eng.pqPush(t, p.ID)
		}
	}
}

// popInbox removes the earliest deliverable message and records the
// matching depth event at the pop's virtual time.
func (p *Proc) popInbox() Message {
	m := heap.Pop(&p.inbox).(Message)
	p.depthPend = append(p.depthPend, depthEvent{time: p.now, pop: true})
	return m
}

// TryRecv returns the earliest message whose arrival time has been reached,
// if any. It does not advance the clock.
func (p *Proc) TryRecv() (Message, bool) {
	if len(p.inbox) > 0 && p.inbox[0].Arrival <= p.now {
		return p.popInbox(), true
	}
	return Message{}, false
}

// PendingArrival reports the arrival time of the earliest queued message,
// delivered or not. Under the parallel scheduler a cross-domain message
// becomes visible here only at the window boundary (always before the
// receiver's clock could reach its arrival time), so programs must not use
// PendingArrival to detect the presence of future messages — only TryRecv
// and WaitRecv have scheduler-independent semantics.
func (p *Proc) PendingArrival() (int64, bool) {
	if len(p.inbox) == 0 {
		return 0, false
	}
	return p.inbox[0].Arrival, true
}

// WaitRecv blocks until a message is available, advances the clock to its
// arrival time if needed (attributing the waited time to category c), and
// returns it. A message sent later by another processor with an earlier
// arrival time correctly shortens the wait: the processor is woken at the
// earliest arrival across its whole inbox.
func (p *Proc) WaitRecv(c stats.TimeCategory, where string) Message {
	for {
		if len(p.inbox) > 0 && p.inbox[0].Arrival <= p.now {
			return p.popInbox()
		}
		p.blockedAt = where
		prev := p.now
		p.doYield(yieldBlocked)
		// The scheduler resumed us at the earliest pending arrival;
		// attribute the waited interval to the caller's category.
		if p.Stats != nil && p.now > prev {
			p.Stats.AddTime(c, p.now-prev)
		}
	}
}

// Emit buffers a timestamped payload for the engine's emit function (see
// Engine.SetEmitFunc). Emissions are delivered on the scheduler's control
// thread in deterministic (time, proc, emission order) order once the
// global virtual-time floor has passed them, so a run produces the same
// emission sequence under the serial and parallel schedulers. No-op when no
// emit function is set.
func (p *Proc) Emit(payload any) {
	if p.eng.emitFn == nil {
		return
	}
	p.emits = append(p.emits, emitRec{time: p.now, payload: payload})
}

// Fence schedules f(proc, at) to run once per processor, observing the
// global state at the fence's cut: the caller's current time plus
// Engine.Lookahead. At resolution, at points to processor proc's
// statistics (nil when the processor has no Stats attached) containing
// exactly the charges made strictly before the cut — under either
// scheduler. f must treat at as read-only and must not mutate any
// processor's live Stats — record a snapshot or baseline instead (all
// stats counters are additive, so the embedder can difference baselines
// afterwards).
//
// With Lookahead 0 the cut is the call position itself and f runs inline
// for every processor before Fence returns: at the fence call the caller
// holds the earliest position in the canonical schedule (a processor
// yields the moment its clock reaches any other's next-run time, and
// sending shrinks the sender's own horizon), so the live counters are
// exactly the state at the caller's position.
//
// With Lookahead L > 0, resolution is deferred and Fence returns before f
// runs: the callbacks execute on the scheduler's control thread once the
// schedule has passed the cut (or at the end of the run), with multiple
// fences ordered by (registration time, caller ID). Deferral by one
// lookahead is what makes the observation scheduler-exact at an
// affordable cost: a fence registered inside a parallel window races in
// real time with the processors of other domains, which may already have
// run past the registration position — but never past the end of the
// window, which never exceeds the cut. Both schedulers stop every
// processor exactly at pending cuts (the serial scheduler caps slice
// horizons there, the parallel scheduler truncates window ends), so at
// resolution each has recorded the identical set of charges, and a run
// observes byte-identical fence results under both. This is the hook for
// rare cross-processor reads like statistics resets and captures; see
// DESIGN.md.
func (p *Proc) Fence(f func(proc int, at *stats.Proc)) {
	e := p.eng
	if e.Lookahead <= 0 {
		for _, q := range e.procs {
			f(q.ID, q.Stats)
		}
		return
	}
	e.fenceMu.Lock()
	e.fences = append(e.fences, fenceRec{time: p.now, proc: p.ID, f: f})
	e.fenceMu.Unlock()
	// Cap the caller's own running slice at the cut, exactly like post()
	// does for a message arriving before the horizon.
	cut := p.now + e.Lookahead
	if cut < p.horizon {
		p.horizon = cut
	}
	// Under adaptive windows the caller's domain peers may be scheduled
	// beyond the cut (the domain's extended end can exceed it); cap the
	// domain so they stop there, like the serial scheduler caps slice
	// horizons. Other domains' window ends never exceed the cut: they are
	// bounded by this domain's start time plus one lookahead. The slot is
	// only touched by this domain's processors and its parked worker, so
	// the write is race-free.
	if e.windowed && cut < e.domFenceCap[p.domain] {
		e.domFenceCap[p.domain] = cut
	}
}

// abortSentinel is panicked into parked processor goroutines when a run
// fails, so they unwind and exit instead of leaking.
type abortSentinel struct{}

// doYield transfers control to the scheduler. If the engine aborts the run
// (deadlock or a processor panic elsewhere), the goroutine unwinds via
// abortSentinel instead of blocking forever.
func (p *Proc) doYield(k yieldKind) {
	e := p.eng
	select {
	case p.yielded <- k:
	case <-e.abort:
		panic(abortSentinel{})
	}
	select {
	case <-p.resume:
	case <-e.abort:
		panic(abortSentinel{})
	}
}

// fenceRec is one registered fence awaiting resolution at its cut,
// time + Engine.Lookahead. The (time, proc) registration position orders
// the callbacks deterministically when several fences resolve together.
type fenceRec struct {
	time int64
	proc int
	f    func(proc int, at *stats.Proc)
}

// minFenceCut returns the earliest pending fence cut, if any. Called only
// from the scheduler's control thread while no processor is running (serial
// slice picks, window boundaries), where registration cannot race.
func (e *Engine) minFenceCut() (int64, bool) {
	var c int64 = math.MaxInt64
	for _, fr := range e.fences {
		if t := fr.time + e.Lookahead; t < c {
			c = t
		}
	}
	return c, c != math.MaxInt64
}

// resolveFences runs the callbacks of every pending fence whose cut has
// been reached: limit is the earliest next action in the schedule (the next
// serial slice pick, the next window floor, or MaxInt64 at the end of the
// run). Because both schedulers stop every processor's slice at pending
// cuts, the live counters at that point hold exactly the charges starting
// before the cut, so the callbacks read them directly. Runs only on the
// scheduler's control thread with every processor parked.
func (e *Engine) resolveFences(limit int64) {
	if len(e.fences) == 0 {
		return
	}
	var due []fenceRec
	rest := e.fences[:0]
	for _, fr := range e.fences {
		if fr.time+e.Lookahead <= limit {
			due = append(due, fr)
		} else {
			rest = append(rest, fr)
		}
	}
	e.fences = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].time != due[j].time {
			return due[i].time < due[j].time
		}
		return due[i].proc < due[j].proc
	})
	for _, fr := range due {
		for _, p := range e.procs {
			fr.f(p.ID, p.Stats)
		}
	}
}

// Engine owns the processors and runs the schedule.
type Engine struct {
	// Parallel selects the conservative window-based parallel scheduler.
	// It takes effect only when Lookahead is positive and the run has more
	// than one conflict domain; otherwise Run silently falls back to the
	// serial scheduler. Results are bit-identical either way.
	Parallel bool
	// Lookahead is the minimum latency of any cross-domain message, in
	// cycles. It bounds how far processors of different domains may run
	// concurrently: all processors whose next-run time falls in [T, T+L)
	// execute in parallel. The embedder must guarantee the bound; the
	// engine panics on a violating send.
	Lookahead int64
	// FixedWindows forces the original fixed [T, T+L) windows, disabling
	// the adaptive per-domain window extension (see parallel.go). Results
	// are bit-identical either way; the knob exists so benchmarks can
	// measure what the adaptive windows buy.
	FixedWindows bool
	// WindowCap bounds how far an adaptive window may run ahead of a
	// domain's own next-run time, in cycles. 0 selects the default of 64
	// lookaheads; values below the lookahead are raised to it.
	WindowCap int64

	procs    []*Proc
	domainOf []int     // optional processor -> domain label (SetDomains)
	domains  [][]*Proc // built per Run from domainOf

	emitFn func(time int64, proc int, payload any)

	// Per-run state, fully reset by Run.
	windowed  bool
	abort     chan struct{}
	abortOnce sync.Once
	panicCh   chan procPanic
	wg        sync.WaitGroup
	fenceMu   sync.Mutex
	fences    []fenceRec
	// Per-domain window state (see parallel.go). domEnd is immutable
	// while a window's workers run; domFenceCap and domReflect are
	// per-domain truncations written only by the owning domain's
	// processors. All are indexed by domain.
	domNext     []int64
	domEnd      []int64
	domFenceCap []int64
	domReflect  []int64
	// activeBuf and emitHeap are reusable scratch buffers for the window
	// loop and the emission merge (hot paths at high processor counts).
	activeBuf   []int
	emitHeap    []int
	windowCount int64
	// readyPQ is the serial scheduler's (next-run time, processor ID)
	// min-heap; pqActive gates the enqueue-side key pushes to runSerial
	// (the window scheduler keeps its own per-domain schedule). Entries are
	// lazily invalidated — a processor whose key changes gets a fresh entry
	// rather than an in-place update, and consumers discard entries that no
	// longer match the processor's live next-run time.
	readyPQ  []schedEntry
	pqActive bool
}

// schedEntry is one key of the serial scheduler's ready heap. Ordering is
// (time, processor ID), which reproduces the linear scan's tie-break: among
// processors runnable at the same virtual time, the lowest ID runs first.
type schedEntry struct {
	t  int64
	id int
}

func pqLess(a, b schedEntry) bool {
	return a.t < b.t || (a.t == b.t && a.id < b.id)
}

// pqPush inserts a key, sifting up.
func (e *Engine) pqPush(t int64, id int) {
	e.readyPQ = append(e.readyPQ, schedEntry{t, id})
	i := len(e.readyPQ) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(e.readyPQ[i], e.readyPQ[parent]) {
			break
		}
		e.readyPQ[i], e.readyPQ[parent] = e.readyPQ[parent], e.readyPQ[i]
		i = parent
	}
}

// pqPop removes the minimum key, sifting down.
func (e *Engine) pqPop() {
	n := len(e.readyPQ) - 1
	e.readyPQ[0] = e.readyPQ[n]
	e.readyPQ = e.readyPQ[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && pqLess(e.readyPQ[l], e.readyPQ[s]) {
			s = l
		}
		if r < n && pqLess(e.readyPQ[r], e.readyPQ[s]) {
			s = r
		}
		if s == i {
			return
		}
		e.readyPQ[i], e.readyPQ[s] = e.readyPQ[s], e.readyPQ[i]
		i = s
	}
}

// pqTopValid discards stale heap entries until the top one matches its
// processor's live next-run time, and returns it. Because every runnable
// processor always holds at least one live entry (pushed when its key was
// established), an empty result means no processor can run.
func (e *Engine) pqTopValid() (schedEntry, bool) {
	for len(e.readyPQ) > 0 {
		top := e.readyPQ[0]
		if t, ok := e.nextTime(e.procs[top.id]); ok && t == top.t {
			return top, true
		}
		e.pqPop()
	}
	return schedEntry{}, false
}

// NewEngine creates an engine with n processor contexts. Statistics
// attribution can be attached per processor via Proc.Stats before Run.
func NewEngine(n int) *Engine {
	e := &Engine{procs: make([]*Proc, n)}
	for i := range e.procs {
		e.procs[i] = &Proc{ID: i, eng: e}
	}
	return e
}

// NumProcs returns the number of processor contexts.
func (e *Engine) NumProcs() int { return len(e.procs) }

// WindowsRun returns how many parallel windows the last Run executed (0
// under the serial scheduler). It is a host-side scheduling diagnostic —
// never part of simulation results, which are scheduler-independent.
func (e *Engine) WindowsRun() int64 { return e.windowCount }

// Proc returns processor i's context (for wiring Stats before Run).
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// SetEmitFunc installs the sink for Proc.Emit payloads. It is called on
// the scheduler's control thread, strictly ordered by (time, proc,
// per-processor emission order) — identical under both schedulers. Call
// before Run.
func (e *Engine) SetEmitFunc(f func(time int64, proc int, payload any)) { e.emitFn = f }

// SetDomains assigns processors to conflict domains for the parallel
// scheduler: processors sharing a label never execute concurrently (their
// mutual schedule reproduces the serial one exactly), while processors of
// different domains may run in parallel within a lookahead window. All
// communication between domains must go through messages whose latency is
// at least Engine.Lookahead. nil restores the default of one domain per
// processor. Panics if the slice length does not match NumProcs.
func (e *Engine) SetDomains(domainOf []int) {
	if domainOf != nil && len(domainOf) != len(e.procs) {
		panic(fmt.Sprintf("sim: SetDomains got %d labels for %d procs", len(domainOf), len(e.procs)))
	}
	if domainOf == nil {
		e.domainOf = nil
		return
	}
	e.domainOf = append([]int(nil), domainOf...)
}

type procPanic struct {
	id    int
	val   any
	stack []byte
}

// Run executes body on every processor until all complete, and returns the
// maximum finish time in cycles. It panics with a diagnostic if the system
// deadlocks (all processors blocked with no messages in flight) or if any
// processor's body panics; in both cases every processor goroutine is
// released before the panic propagates, so failed runs leak nothing. Run
// fully resets engine and processor state first, so one engine can execute
// the same program repeatedly with identical results.
func (e *Engine) Run(body func(*Proc)) int64 {
	e.resetRun(body)
	e.buildDomains()
	e.windowed = e.Parallel && e.Lookahead > 0 && len(e.domains) > 1
	defer func() { e.windowed = false }()
	e.startProcs()

	var maxFinish int64
	if e.windowed {
		maxFinish = e.runWindows()
	} else {
		maxFinish = e.runSerial()
	}
	// Fences whose cut lies beyond the last action observe the final state.
	e.resolveFences(math.MaxInt64)
	e.flushTo(math.MaxInt64)
	e.wg.Wait()
	return maxFinish
}

// resetRun clears all per-run engine and processor state: clocks, inboxes,
// send sequence counters, staged messages, emission and depth buffers, and
// the failure-handling channels. Reusing an engine is therefore fully
// reproducible.
func (e *Engine) resetRun(body func(*Proc)) {
	e.abort = make(chan struct{})
	e.abortOnce = sync.Once{}
	e.panicCh = make(chan procPanic, len(e.procs))
	e.wg = sync.WaitGroup{}
	e.fences = nil
	e.windowCount = 0
	e.emitHeap = e.emitHeap[:0]
	e.activeBuf = e.activeBuf[:0]
	e.readyPQ = e.readyPQ[:0]
	for _, p := range e.procs {
		p.body = body
		p.state = stateReady
		p.now, p.horizon = 0, 0
		p.inbox = nil
		p.blockedAt = ""
		p.sendSeq = 0
		p.outbox = nil
		p.emits, p.emitStart = nil, 0
		p.depthPend, p.depthDue = nil, nil
		p.depth, p.peakDepth = 0, 0
		p.resume = make(chan struct{})
		p.yielded = make(chan yieldKind)
	}
}

// startProcs launches the processor goroutines. Each waits for its first
// resume, runs the body, and reports completion; a body panic is captured
// for the scheduler and an engine abort unwinds the goroutine silently.
func (e *Engine) startProcs() {
	e.wg.Add(len(e.procs))
	for _, p := range e.procs {
		go func(p *Proc) {
			defer e.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSentinel); ok {
						return
					}
					e.panicCh <- procPanic{p.ID, r, debug.Stack()}
					select {
					case p.yielded <- yieldDone:
					case <-e.abort:
					}
				}
			}()
			select {
			case <-p.resume:
			case <-e.abort:
				return
			}
			p.body(p)
			select {
			case p.yielded <- yieldDone:
			case <-e.abort:
			}
		}(p)
	}
}

// fail aborts the run — releasing every parked processor goroutine and
// waiting for all of them to exit — and then panics with the diagnostic.
func (e *Engine) fail(msg string) {
	e.abortOnce.Do(func() { close(e.abort) })
	e.wg.Wait()
	panic(msg)
}

// checkPanic propagates a captured processor panic, if any.
func (e *Engine) checkPanic() {
	select {
	case pp := <-e.panicCh:
		e.fail(fmt.Sprintf("sim: processor %d panicked: %v\n%s\noriginal stack:\n%s",
			pp.id, pp.val, e.dump(), pp.stack))
	default:
	}
}

// runSerial is the cooperative scheduler: always resume the runnable
// processor with the smallest virtual time. The schedule is driven by the
// ready heap: O(log P) per scheduling step instead of the former O(P)
// linear scans in pickNext and horizonFor.
func (e *Engine) runSerial() int64 {
	var maxFinish int64
	var lastFloor int64 = -1
	e.pqActive = true
	defer func() { e.pqActive = false }()
	for _, p := range e.procs {
		if t, ok := e.nextTime(p); ok {
			e.pqPush(t, p.ID)
		}
	}
	remaining := len(e.procs)
	for remaining > 0 {
		next, bestT := e.pickNext()
		if next == nil {
			e.checkPanic()
			e.fail("sim: deadlock\n" + e.dump())
		}
		// Fences whose cut the schedule has reached observe the live
		// counters before anything at or past the cut runs.
		e.resolveFences(bestT)
		// Everything below the next resume time is final; deliver it.
		if bestT > lastFloor {
			e.flushTo(bestT)
			lastFloor = bestT
		}
		// Wake a blocked processor at its earliest message arrival.
		// The interval is attributed inside WaitRecv, which knows the
		// stall category.
		if next.state == stateBlocked {
			if a, ok := next.PendingArrival(); ok && a > next.now {
				next.now = a
			}
		}
		next.state = stateRunning
		next.horizon = e.horizonFor(next)
		next.resume <- struct{}{}
		k := <-next.yielded
		e.checkPanic()
		switch k {
		case yieldReady:
			next.state = stateReady
		case yieldBlocked:
			next.state = stateBlocked
		case yieldDone:
			next.state = stateDone
			remaining--
			if next.now > maxFinish {
				maxFinish = next.now
			}
		}
		if t, ok := e.nextTime(next); ok {
			e.pqPush(t, next.ID)
		}
	}
	return maxFinish
}

// nextTime returns the earliest virtual time at which p could run, or
// (0,false) if p cannot run until someone sends it a message.
func (e *Engine) nextTime(p *Proc) (int64, bool) {
	switch p.state {
	case stateReady:
		return p.now, true
	case stateBlocked:
		if a, ok := p.PendingArrival(); ok {
			if a < p.now {
				a = p.now
			}
			return a, true
		}
		return 0, false
	default:
		return 0, false
	}
}

// pickNext returns the runnable processor with the smallest (time, ID) key
// and consumes its heap entry; the processor re-enters the heap when it
// yields. Returns nil when no processor can run (deadlock).
func (e *Engine) pickNext() (*Proc, int64) {
	top, ok := e.pqTopValid()
	if !ok {
		return nil, 0
	}
	e.pqPop()
	return e.procs[top.id], top.t
}

// horizonFor computes how far p may run before control must return to the
// scheduler: the earliest next-run time among all other processors, capped
// at the earliest pending fence cut so the fence resolves before anything
// at or past its cut runs. The caller has already marked p running and
// consumed its heap entry, so p's remaining (duplicate) entries fail the
// validity check and the heap top is exactly the other-processor minimum.
func (e *Engine) horizonFor(p *Proc) int64 {
	var h int64 = math.MaxInt64
	if top, ok := e.pqTopValid(); ok {
		h = top.t
	}
	if c, ok := e.minFenceCut(); ok && c < h {
		h = c
	}
	return h
}

// dump renders the engine state for deadlock and panic diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	ids := make([]int, len(e.procs))
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, i := range ids {
		p := e.procs[i]
		st := map[procState]string{
			stateReady: "ready", stateRunning: "running",
			stateBlocked: "blocked", stateDone: "done",
		}[p.state]
		fmt.Fprintf(&b, "  proc %2d: %-7s now=%d inbox=%d", i, st, p.now, len(p.inbox))
		if p.state == stateBlocked {
			fmt.Fprintf(&b, " at %q", p.blockedAt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// msgHeap orders messages by (arrival, send time, sender, per-sender send
// sequence) — a total order over messages that depends only on virtual
// time, never on which scheduler interleaved the sends, so delivery is
// deterministic and identical under the serial and parallel schedulers.
type msgHeap []Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	if h[i].sendTime != h[j].sendTime {
		return h[i].sendTime < h[j].sendTime
	}
	if h[i].Src != h[j].Src {
		return h[i].Src < h[j].Src
	}
	return h[i].srcSeq < h[j].srcSeq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
