package sim

import (
	"os"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// newTestEngine builds an engine under the scheduler selected by the
// environment: with SIM_FORCE_PARALLEL=1 (set by make check) the suite
// re-runs under the parallel scheduler with the minimum lookahead and one
// conflict domain per processor — the most aggressive windowing possible —
// so scheduler-independence bugs surface in ordinary tests. Tests that
// assert the serial schedule itself, or whose bodies share memory across
// processor contexts, construct their engine with NewEngine directly.
func newTestEngine(n int) *Engine {
	e := NewEngine(n)
	if os.Getenv("SIM_FORCE_PARALLEL") == "1" {
		e.Parallel = true
		e.Lookahead = 1
	}
	return e
}

func TestSingleProcAdvance(t *testing.T) {
	e := newTestEngine(1)
	finish := e.Run(func(p *Proc) {
		p.Advance(stats.Task, 100)
		p.Advance(stats.Task, 50)
	})
	if finish != 150 {
		t.Fatalf("finish = %d, want 150", finish)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	e := newTestEngine(1)
	e.Run(func(p *Proc) { p.Advance(stats.Task, -1) })
}

func TestMessageLatency(t *testing.T) {
	e := newTestEngine(2)
	var recvAt int64
	e.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Advance(stats.Task, 10)
			p.Send(1, 25, "ping")
		case 1:
			m := p.WaitRecv(stats.Read, "test")
			recvAt = p.Now()
			if m.Payload.(string) != "ping" {
				t.Errorf("payload = %v", m.Payload)
			}
		}
	})
	if recvAt != 35 {
		t.Fatalf("received at %d, want 35 (send 10 + latency 25)", recvAt)
	}
}

func TestMinTimeSchedulingIsDeterministic(t *testing.T) {
	// Three processors append their IDs on each of several steps with
	// distinct advance amounts; the interleaving must follow virtual
	// time exactly, every run. Pinned to the serial scheduler (NewEngine,
	// not newTestEngine): the body appends to a shared slice, which only
	// the strictly cooperative serial schedule may do.
	run := func() []int {
		e := NewEngine(3)
		var order []int
		steps := map[int][]int64{0: {5, 9, 30}, 1: {7, 7, 7}, 2: {1, 1, 100}}
		e.Run(func(p *Proc) {
			for _, c := range steps[p.ID] {
				p.Advance(stats.Task, c)
				order = append(order, p.ID)
			}
		})
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: length %d != %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: order differs at %d: %v vs %v", i, j, got, first)
			}
		}
	}
}

func TestSchedulerOrdersByVirtualTime(t *testing.T) {
	// Proc 1 does a tiny step and must run before proc 0's second step
	// even though proc 0 was started first. Pinned to the serial
	// scheduler: the body appends to a shared slice.
	e := NewEngine(2)
	var order []struct {
		id int
		at int64
	}
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Advance(stats.Task, 100)
			order = append(order, struct {
				id int
				at int64
			}{0, p.Now()})
		} else {
			p.Advance(stats.Task, 1)
			order = append(order, struct {
				id int
				at int64
			}{1, p.Now()})
		}
	})
	if order[0].id != 1 || order[0].at != 1 {
		t.Fatalf("order = %+v, want proc 1 at time 1 first", order)
	}
}

func TestWaitRecvStallAttribution(t *testing.T) {
	e := newTestEngine(2)
	st := stats.NewRun(2)
	for i := 0; i < 2; i++ {
		e.Proc(i).Stats = &st.Procs[i]
	}
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Advance(stats.Task, 500)
			p.Send(1, 100, "data")
		} else {
			p.WaitRecv(stats.Read, "stall")
		}
	})
	if got := st.Procs[1].TimeBy[stats.Read]; got != 600 {
		t.Fatalf("proc 1 read stall = %d, want 600", got)
	}
}

func TestEarlierMessageShortensWait(t *testing.T) {
	// Proc 2 blocks; proc 0 sends a message arriving at t=1000, then
	// proc 1 sends one arriving at t=200. Proc 2 must wake at 200 and
	// see proc 1's message first.
	e := newTestEngine(3)
	var firstSrc int
	var wake int64
	e.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Send(2, 1000, "slow")
		case 1:
			p.Advance(stats.Task, 100)
			p.Send(2, 100, "fast")
		case 2:
			m := p.WaitRecv(stats.Read, "test")
			firstSrc, wake = m.Src, p.Now()
		}
	})
	if firstSrc != 1 || wake != 200 {
		t.Fatalf("first message from %d at %d, want from 1 at 200", firstSrc, wake)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	// Two messages arriving at the same instant are delivered in send
	// order.
	e := newTestEngine(2)
	var got []string
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Send(1, 50, "a")
			p.Send(1, 50, "b")
		} else {
			got = append(got, p.WaitRecv(stats.Read, "t").Payload.(string))
			got = append(got, p.WaitRecv(stats.Read, "t").Payload.(string))
		}
	})
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("delivery order = %v, want [a b]", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := newTestEngine(2)
	e.Run(func(p *Proc) {
		p.WaitRecv(stats.Read, "forever") // nobody ever sends
	})
}

func TestBodyPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected body panic to propagate")
		}
	}()
	e := newTestEngine(2)
	e.Run(func(p *Proc) {
		if p.ID == 1 {
			panic("boom")
		}
		p.Advance(stats.Task, 10)
	})
}

func TestSelfSend(t *testing.T) {
	e := newTestEngine(1)
	var at int64
	e.Run(func(p *Proc) {
		p.Send(0, 77, "timer")
		p.WaitRecv(stats.Other, "timer")
		at = p.Now()
	})
	if at != 77 {
		t.Fatalf("self-send woke at %d, want 77", at)
	}
}

func TestTryRecvDoesNotAdvance(t *testing.T) {
	e := newTestEngine(2)
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Send(1, 500, "later")
			p.Advance(stats.Task, 1000)
		} else {
			if _, ok := p.TryRecv(); ok {
				t.Error("TryRecv returned an undelivered message")
			}
			p.Advance(stats.Task, 600)
			if _, ok := p.TryRecv(); !ok {
				t.Error("TryRecv missed a delivered message")
			}
		}
	})
}

func TestPendingArrival(t *testing.T) {
	e := newTestEngine(2)
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Send(1, 40, 1)
		} else {
			p.Advance(stats.Task, 1)
			if a, ok := p.PendingArrival(); !ok || a != 40 {
				t.Errorf("PendingArrival = %d,%v want 40,true", a, ok)
			}
		}
	})
}

// Property: for any set of per-processor advance schedules, the global
// completion time equals the maximum per-processor sum, and every
// processor's local clock is monotonic.
func TestQuickCompletionTime(t *testing.T) {
	f := func(raw [][]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		e := newTestEngine(len(raw))
		want := int64(0)
		for _, steps := range raw {
			var sum int64
			for _, s := range steps {
				sum += int64(s % 1000)
			}
			if sum > want {
				want = sum
			}
		}
		// One monotonicity slot per processor: under the forced-parallel
		// scheduler the bodies run concurrently, so they must not share
		// a flag.
		mono := make([]bool, len(raw))
		finish := e.Run(func(p *Proc) {
			last := int64(0)
			ok := true
			for _, s := range raw[p.ID] {
				p.Advance(stats.Task, int64(s%1000))
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
			mono[p.ID] = ok
		})
		if finish != want {
			return false
		}
		for _, ok := range mono {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages between two processors with random latencies are
// always received at send time + latency (when the receiver is idle), and
// in nondecreasing arrival order.
func TestQuickMessageDelivery(t *testing.T) {
	f := func(lat []uint16) bool {
		if len(lat) == 0 {
			return true
		}
		if len(lat) > 64 {
			lat = lat[:64]
		}
		e := newTestEngine(2)
		ok := true
		e.Run(func(p *Proc) {
			if p.ID == 0 {
				for _, l := range lat {
					// Latency at least 1: the forced-parallel mode runs
					// each processor as its own conflict domain with a
					// lookahead of 1, which zero-latency sends would
					// violate.
					d := int64(l%1000) + 1
					p.Send(1, d, d)
					p.Advance(stats.Task, 1)
				}
			} else {
				lastArrival := int64(-1)
				for range lat {
					m := p.WaitRecv(stats.Read, "q")
					if m.Arrival < lastArrival || p.Now() < m.Arrival {
						ok = false
					}
					lastArrival = m.Arrival
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
