package sim

// Conservative window-based parallel scheduler.
//
// The causality argument: every message between conflict domains has a
// latency of at least Engine.Lookahead (L). Let T be the minimum next-run
// time across all processors. Any message sent inside the window [T, T+L)
// arrives at T+L or later, so nothing a processor does inside the window
// can affect what another domain's processor does inside the same window.
// All domains with work in the window can therefore execute concurrently.
//
// Within a domain, processors may share state with latencies below L (the
// protocol layer's sharing groups and per-node link state), so the domain
// runs its members cooperatively with the exact serial rule — smallest
// (virtual time, processor ID) first. Since the serial schedule restricted
// to one domain's processors follows the same rule, and cross-domain input
// only changes at window boundaries (below every in-window observation
// point), each domain's local schedule reproduces its serial schedule
// operation for operation.
//
// Determinism across schedulers then rests on four merge points, all keyed
// purely by virtual time:
//
//   - messages: inbox order is (Arrival, sendTime, Src, srcSeq) — see
//     msgHeap — so heap contents at any virtual time are schedule-free;
//   - emissions: Proc.Emit buffers (time, payload); the coordinator flushes
//     strictly below each new window floor in (time, proc, local order)
//     order, identical to the serial per-step flush because no processor
//     can emit below the floor once the floor has passed;
//   - inbox depth: push/pop events form a virtual-time multiset folded in
//     (time, push-before-pop) order, so the peak is schedule-free;
//   - fences: a fence registered at time t resolves at its cut t+L, which
//     lies at or beyond the current window's end — so while the
//     registration races in real time with processors of other domains,
//     none of them can have run past the cut. Window ends are truncated to
//     the earliest pending cut (the serial scheduler caps slice horizons
//     the same way), so at the window boundary whose floor reaches the cut
//     the live counters hold exactly the charges starting before it, under
//     either scheduler (see Proc.Fence and Engine.resolveFences).

import (
	"math"
	"sort"
	"sync"
)

// buildDomains groups processors into conflict domains from the SetDomains
// labels (default: one domain per processor). Domain indices are assigned
// by first appearance in processor order, so the layout is deterministic.
func (e *Engine) buildDomains() {
	e.domains = e.domains[:0]
	index := map[int]int{}
	for i, p := range e.procs {
		label := i
		if e.domainOf != nil {
			label = e.domainOf[i]
		}
		d, ok := index[label]
		if !ok {
			d = len(e.domains)
			index[label] = d
			e.domains = append(e.domains, nil)
		}
		p.domain = d
		e.domains[d] = append(e.domains[d], p)
	}
}

// defaultWindowCapLookaheads is the adaptive-window run-ahead bound, in
// lookaheads, when Engine.WindowCap is 0.
const defaultWindowCapLookaheads = 64

// satAdd adds two non-negative cycle counts, saturating at MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// runWindows executes the program as a sequence of lookahead windows. The
// coordinator (this goroutine) computes each window, dispatches one worker
// per active domain, and on join merges staged cross-domain messages, runs
// deferred fences, and flushes emissions below the next floor.
//
// Window widths are adaptive per domain unless Engine.FixedWindows is set.
// The fixed window [T, T+L) starves parallelism when domains' virtual times
// drift apart — a domain at T+50L waits idle for tens of windows while the
// laggard catches up. The safe bound is per-receiver: domain i cannot
// receive anything before
//
//	H_i = min over other domains j of (tDom_j + L)
//
// where tDom_j is j's earliest next-run time at the window start (idle
// domains — blocked with an empty inbox — are excluded: they act only after
// being woken by a message, so anything they send arrives at least 2L after
// some running domain's start, beyond every H). Two dynamic truncations
// keep extension safe while the window runs, both written only by the
// owning domain's processors (which alternate strictly with the domain's
// worker, so no synchronization is needed):
//
//   - reflection: once domain i sends a cross-domain message arriving at a,
//     the receiver can react at a and reply with ≥ L more latency, so i
//     must not run to a+L or beyond (Engine.domReflect, written in post);
//   - fences: a fence registered by domain i at time t resolves at cut
//     t+L, which other domains never reach (H_j ≤ tDom_i + L ≤ cut) but
//     i's own extended window could overrun (Engine.domFenceCap, written
//     in Fence).
//
// Every per-domain end also caps at tDom_i + WindowCap (bounding unchecked
// run-ahead when all other domains are idle) and truncates at pending fence
// cuts, and never falls below the fixed T+L, so adaptive windows are a pure
// extension. Results stay bit-identical: all merge points remain keyed by
// virtual time alone, and no domain ever simulates past a time at which a
// message could still arrive.
func (e *Engine) runWindows() int64 {
	nd := len(e.domains)
	if cap(e.domNext) < nd {
		e.domNext = make([]int64, nd)
		e.domEnd = make([]int64, nd)
		e.domFenceCap = make([]int64, nd)
		e.domReflect = make([]int64, nd)
	} else {
		e.domNext = e.domNext[:nd]
		e.domEnd = e.domEnd[:nd]
		e.domFenceCap = e.domFenceCap[:nd]
		e.domReflect = e.domReflect[:nd]
	}
	capWidth := e.WindowCap
	if capWidth <= 0 {
		capWidth = defaultWindowCapLookaheads * e.Lookahead
	}
	if capWidth < e.Lookahead {
		capWidth = e.Lookahead
	}
	var lastFloor int64 = -1
	for {
		// T = earliest next-run time across all processors; per-domain
		// minima feed the adaptive window ends.
		T := int64(math.MaxInt64)
		for di, dom := range e.domains {
			t := int64(math.MaxInt64)
			for _, p := range dom {
				if tt, ok := e.nextTime(p); ok && tt < t {
					t = tt
				}
			}
			e.domNext[di] = t
			if t < T {
				T = t
			}
		}
		if T == math.MaxInt64 {
			done := 0
			for _, p := range e.procs {
				if p.state == stateDone {
					done++
				}
			}
			if done == len(e.procs) {
				break
			}
			e.checkPanic()
			e.fail("sim: deadlock\n" + e.dump())
		}
		// Fences whose cut the floor has reached observe the live
		// counters before the next window runs anything past the cut.
		e.resolveFences(T)
		// Everything below the window start is final; deliver it.
		if T > lastFloor {
			e.flushTo(T)
			lastFloor = T
		}
		fixedEnd := T + e.Lookahead
		// A pending fence cut truncates every window end so no processor
		// records a charge starting at or past the cut before the fence
		// resolves.
		cut, hasCut := e.minFenceCut()
		// Smallest and second-smallest finite domain times, for the
		// min-over-others bound without an O(domains²) pass.
		min1, min2 := int64(math.MaxInt64), int64(math.MaxInt64)
		minIdx := -1
		if !e.FixedWindows {
			for di, t := range e.domNext {
				if t < min1 {
					min1, min2, minIdx = t, min1, di
				} else if t < min2 {
					min2 = t
				}
			}
		}
		for di := range e.domains {
			end := fixedEnd
			if !e.FixedWindows {
				other := min1
				if di == minIdx {
					other = min2
				}
				end = satAdd(other, e.Lookahead)
				if lim := satAdd(e.domNext[di], capWidth); lim < end {
					end = lim
				}
				if end < fixedEnd {
					end = fixedEnd
				}
			}
			if hasCut && cut < end {
				end = cut
			}
			e.domEnd[di] = end
			e.domFenceCap[di] = math.MaxInt64
			e.domReflect[di] = math.MaxInt64
		}

		// Domains with any processor runnable inside their window.
		active := e.activeBuf[:0]
		for di := range e.domains {
			if e.domNext[di] < e.domEnd[di] {
				active = append(active, di)
			}
		}
		e.windowCount++
		// One worker per active domain; the coordinator runs the first
		// domain itself so a single-domain window costs no goroutine.
		if len(active) == 1 {
			e.runDomain(active[0])
		} else {
			var wwg sync.WaitGroup
			wwg.Add(len(active) - 1)
			for _, di := range active[1:] {
				go func(di int) {
					defer wwg.Done()
					e.runDomain(di)
				}(di)
			}
			e.runDomain(active[0])
			wwg.Wait()
		}
		e.activeBuf = active[:0]
		e.checkPanic()

		// Merge staged cross-domain sends. Push order is irrelevant to
		// delivery order (the inbox key is total), but iterate in
		// processor order anyway for reproducible internal layout.
		for _, p := range e.procs {
			for _, m := range p.outbox {
				e.procs[m.Dst].enqueue(m)
			}
			p.outbox = p.outbox[:0]
		}
	}
	var maxFinish int64
	for _, p := range e.procs {
		if p.now > maxFinish {
			maxFinish = p.now
		}
	}
	return maxFinish
}

// domEndNow returns domain di's current effective window end: the window-
// start end truncated by the domain's own in-window fence registrations and
// cross-domain sends (reflection bound). Called only by the domain's worker
// and its processors, which alternate strictly.
func (e *Engine) domEndNow(di int) int64 {
	end := e.domEnd[di]
	if c := e.domFenceCap[di]; c < end {
		end = c
	}
	if r := e.domReflect[di]; r < end {
		end = r
	}
	return end
}

// runDomain runs one conflict domain's processors cooperatively until none
// can act before the domain's window end. Within the domain this is exactly
// the serial rule: smallest (next-run time, processor ID) first. The end is
// re-read each pick: the domain's own sends and fence registrations shrink
// it while the window runs.
func (e *Engine) runDomain(di int) {
	dom := e.domains[di]
	for {
		end := e.domEndNow(di)
		var next *Proc
		bestT := int64(math.MaxInt64)
		for _, p := range dom {
			if t, ok := e.nextTime(p); ok && t < bestT {
				next, bestT = p, t
			}
		}
		if next == nil || bestT >= end {
			return
		}
		if next.state == stateBlocked {
			if a, ok := next.PendingArrival(); ok && a > next.now {
				next.now = a
			}
		}
		next.state = stateRunning
		next.horizon = e.domainHorizon(next, dom, end)
		next.resume <- struct{}{}
		k := <-next.yielded
		switch k {
		case yieldReady:
			next.state = stateReady
		case yieldBlocked:
			next.state = stateBlocked
		case yieldDone:
			next.state = stateDone
		}
	}
}

// domainHorizon bounds how far p may run: the domain's window end or the
// earliest next-run time among its domain peers, whichever is sooner. (A
// processor yields once its clock reaches the horizon, so actions strictly
// inside the window still execute; post() further shrinks the running
// processor's own horizon when it sends.)
func (e *Engine) domainHorizon(p *Proc, dom []*Proc, end int64) int64 {
	h := end
	for _, q := range dom {
		if q == p {
			continue
		}
		if t, ok := e.nextTime(q); ok && t < h {
			h = t
		}
	}
	return h
}

// depthBatch bounds how many pending depth events a processor accumulates
// before a floor advance folds them. Any batching is safe: the events form
// a multiset keyed by virtual time, so folding in chunks commutes.
const depthBatch = 4096

// flushTo delivers all buffered emissions with time strictly below floor
// (in deterministic merge order) and folds pending inbox-depth events below
// floor. Called only from the scheduler's control thread — per serial step
// or per window — when the global virtual-time floor advances, and once
// with floor = MaxInt64 at the end of Run.
func (e *Engine) flushTo(floor int64) {
	if e.emitFn != nil {
		e.mergeEmits(floor)
	}
	final := floor == math.MaxInt64
	for _, p := range e.procs {
		if final || len(p.depthPend) >= depthBatch {
			p.applyDepth(floor)
		}
	}
}

// mergeEmits is a k-way merge of the per-processor emission buffers by
// (time, proc); within one processor, buffer order (program order) is
// already time-sorted because a processor's clock never decreases. The
// merge runs on an index min-heap over the processors with deliverable
// emissions, so each delivery costs O(log P) instead of the O(P) scan the
// original implementation paid — the difference dominates trace-heavy runs
// at high processor counts. The heap's backing array is reused across
// calls (Engine.emitHeap); the merge allocates nothing in steady state.
func (e *Engine) mergeEmits(floor int64) {
	// emitKey orders heap entries by (next emission time, processor ID) —
	// exactly the order the linear scan produced.
	less := func(a, b int) bool {
		pa, pb := e.procs[a], e.procs[b]
		ta, tb := pa.emits[pa.emitStart].time, pb.emits[pb.emitStart].time
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	h := e.emitHeap[:0]
	for i, p := range e.procs {
		if p.emitStart < len(p.emits) && p.emits[p.emitStart].time < floor {
			h = append(h, i)
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && less(h[l], h[s]) {
				s = l
			}
			if r < len(h) && less(h[r], h[s]) {
				s = r
			}
			if s == i {
				return
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		best := h[0]
		p := e.procs[best]
		r := p.emits[p.emitStart]
		p.emits[p.emitStart] = emitRec{} // free the payload
		p.emitStart++
		e.emitFn(r.time, best, r.payload)
		if p.emitStart < len(p.emits) && p.emits[p.emitStart].time < floor {
			siftDown(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			siftDown(0)
		}
	}
	e.emitHeap = h[:0]
	for _, p := range e.procs {
		if p.emitStart == len(p.emits) {
			p.emits = p.emits[:0]
			p.emitStart = 0
		}
	}
}

// applyDepth folds pending depth events with time strictly below floor into
// the running depth, updating the peak. Events at one instant fold pushes
// before pops: a message popped at its own send time (zero-latency receive)
// still occupied the inbox momentarily.
func (p *Proc) applyDepth(floor int64) {
	due := p.depthDue[:0]
	keep := p.depthPend[:0]
	for _, ev := range p.depthPend {
		if ev.time < floor {
			due = append(due, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	p.depthPend = keep
	p.depthDue = due[:0]
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].time != due[j].time {
			return due[i].time < due[j].time
		}
		return !due[i].pop && due[j].pop
	})
	for _, ev := range due {
		if ev.pop {
			p.depth--
		} else {
			p.depth++
			if p.depth > p.peakDepth {
				p.peakDepth = p.depth
			}
		}
	}
}
