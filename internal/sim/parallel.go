package sim

// Conservative window-based parallel scheduler.
//
// The causality argument: every message between conflict domains has a
// latency of at least Engine.Lookahead (L). Let T be the minimum next-run
// time across all processors. Any message sent inside the window [T, T+L)
// arrives at T+L or later, so nothing a processor does inside the window
// can affect what another domain's processor does inside the same window.
// All domains with work in the window can therefore execute concurrently.
//
// Within a domain, processors may share state with latencies below L (the
// protocol layer's sharing groups and per-node link state), so the domain
// runs its members cooperatively with the exact serial rule — smallest
// (virtual time, processor ID) first. Since the serial schedule restricted
// to one domain's processors follows the same rule, and cross-domain input
// only changes at window boundaries (below every in-window observation
// point), each domain's local schedule reproduces its serial schedule
// operation for operation.
//
// Determinism across schedulers then rests on four merge points, all keyed
// purely by virtual time:
//
//   - messages: inbox order is (Arrival, sendTime, Src, srcSeq) — see
//     msgHeap — so heap contents at any virtual time are schedule-free;
//   - emissions: Proc.Emit buffers (time, payload); the coordinator flushes
//     strictly below each new window floor in (time, proc, local order)
//     order, identical to the serial per-step flush because no processor
//     can emit below the floor once the floor has passed;
//   - inbox depth: push/pop events form a virtual-time multiset folded in
//     (time, push-before-pop) order, so the peak is schedule-free;
//   - fences: a fence registered at time t resolves at its cut t+L, which
//     lies at or beyond the current window's end — so while the
//     registration races in real time with processors of other domains,
//     none of them can have run past the cut. Window ends are truncated to
//     the earliest pending cut (the serial scheduler caps slice horizons
//     the same way), so at the window boundary whose floor reaches the cut
//     the live counters hold exactly the charges starting before it, under
//     either scheduler (see Proc.Fence and Engine.resolveFences).

import (
	"math"
	"sort"
	"sync"
)

// buildDomains groups processors into conflict domains from the SetDomains
// labels (default: one domain per processor). Domain indices are assigned
// by first appearance in processor order, so the layout is deterministic.
func (e *Engine) buildDomains() {
	e.domains = e.domains[:0]
	index := map[int]int{}
	for i, p := range e.procs {
		label := i
		if e.domainOf != nil {
			label = e.domainOf[i]
		}
		d, ok := index[label]
		if !ok {
			d = len(e.domains)
			index[label] = d
			e.domains = append(e.domains, nil)
		}
		p.domain = d
		e.domains[d] = append(e.domains[d], p)
	}
}

// runWindows executes the program as a sequence of lookahead windows. The
// coordinator (this goroutine) computes each window, dispatches one worker
// per active domain, and on join merges staged cross-domain messages, runs
// deferred fences, and flushes emissions below the next floor.
func (e *Engine) runWindows() int64 {
	var lastFloor int64 = -1
	for {
		// T = earliest next-run time across all processors.
		T := int64(math.MaxInt64)
		for _, p := range e.procs {
			if t, ok := e.nextTime(p); ok && t < T {
				T = t
			}
		}
		if T == math.MaxInt64 {
			done := 0
			for _, p := range e.procs {
				if p.state == stateDone {
					done++
				}
			}
			if done == len(e.procs) {
				break
			}
			e.checkPanic()
			e.fail("sim: deadlock\n" + e.dump())
		}
		// Fences whose cut the floor has reached observe the live
		// counters before the next window runs anything past the cut.
		e.resolveFences(T)
		// Everything below the window start is final; deliver it.
		if T > lastFloor {
			e.flushTo(T)
			lastFloor = T
		}
		e.windowEnd = T + e.Lookahead
		// A pending fence cut truncates the window so no processor records
		// a charge starting at or past the cut before the fence resolves.
		if c, ok := e.minFenceCut(); ok && c < e.windowEnd {
			e.windowEnd = c
		}

		// Domains with any processor runnable inside the window.
		var active []int
		for di, dom := range e.domains {
			for _, p := range dom {
				if t, ok := e.nextTime(p); ok && t < e.windowEnd {
					active = append(active, di)
					break
				}
			}
		}
		// One worker per active domain; the coordinator runs the first
		// domain itself so a single-domain window costs no goroutine.
		if len(active) == 1 {
			e.runDomain(active[0])
		} else {
			var wwg sync.WaitGroup
			wwg.Add(len(active) - 1)
			for _, di := range active[1:] {
				go func(di int) {
					defer wwg.Done()
					e.runDomain(di)
				}(di)
			}
			e.runDomain(active[0])
			wwg.Wait()
		}
		e.checkPanic()

		// Merge staged cross-domain sends. Push order is irrelevant to
		// delivery order (the inbox key is total), but iterate in
		// processor order anyway for reproducible internal layout.
		for _, p := range e.procs {
			for _, m := range p.outbox {
				e.procs[m.Dst].enqueue(m)
			}
			p.outbox = p.outbox[:0]
		}
	}
	var maxFinish int64
	for _, p := range e.procs {
		if p.now > maxFinish {
			maxFinish = p.now
		}
	}
	return maxFinish
}

// runDomain runs one conflict domain's processors cooperatively until none
// can act before the window end. Within the domain this is exactly the
// serial rule: smallest (next-run time, processor ID) first.
func (e *Engine) runDomain(di int) {
	dom := e.domains[di]
	for {
		var next *Proc
		bestT := int64(math.MaxInt64)
		for _, p := range dom {
			if t, ok := e.nextTime(p); ok && t < bestT {
				next, bestT = p, t
			}
		}
		if next == nil || bestT >= e.windowEnd {
			return
		}
		if next.state == stateBlocked {
			if a, ok := next.PendingArrival(); ok && a > next.now {
				next.now = a
			}
		}
		next.state = stateRunning
		next.horizon = e.domainHorizon(next, dom)
		next.resume <- struct{}{}
		k := <-next.yielded
		switch k {
		case yieldReady:
			next.state = stateReady
		case yieldBlocked:
			next.state = stateBlocked
		case yieldDone:
			next.state = stateDone
		}
	}
}

// domainHorizon bounds how far p may run: the window end or the earliest
// next-run time among its domain peers, whichever is sooner. (A processor
// yields once its clock reaches the horizon, so actions strictly inside
// the window still execute.)
func (e *Engine) domainHorizon(p *Proc, dom []*Proc) int64 {
	h := e.windowEnd
	for _, q := range dom {
		if q == p {
			continue
		}
		if t, ok := e.nextTime(q); ok && t < h {
			h = t
		}
	}
	return h
}

// depthBatch bounds how many pending depth events a processor accumulates
// before a floor advance folds them. Any batching is safe: the events form
// a multiset keyed by virtual time, so folding in chunks commutes.
const depthBatch = 4096

// flushTo delivers all buffered emissions with time strictly below floor
// (in deterministic merge order) and folds pending inbox-depth events below
// floor. Called only from the scheduler's control thread — per serial step
// or per window — when the global virtual-time floor advances, and once
// with floor = MaxInt64 at the end of Run.
func (e *Engine) flushTo(floor int64) {
	if e.emitFn != nil {
		e.mergeEmits(floor)
	}
	final := floor == math.MaxInt64
	for _, p := range e.procs {
		if final || len(p.depthPend) >= depthBatch {
			p.applyDepth(floor)
		}
	}
}

// mergeEmits is a k-way merge of the per-processor emission buffers by
// (time, proc); within one processor, buffer order (program order) is
// already time-sorted because a processor's clock never decreases.
func (e *Engine) mergeEmits(floor int64) {
	for {
		best := -1
		var bestT int64
		for i, p := range e.procs {
			if p.emitStart < len(p.emits) {
				t := p.emits[p.emitStart].time
				if t < floor && (best < 0 || t < bestT) {
					best, bestT = i, t
				}
			}
		}
		if best < 0 {
			break
		}
		p := e.procs[best]
		r := p.emits[p.emitStart]
		p.emits[p.emitStart] = emitRec{} // free the payload
		p.emitStart++
		e.emitFn(r.time, best, r.payload)
	}
	for _, p := range e.procs {
		if p.emitStart == len(p.emits) {
			p.emits = p.emits[:0]
			p.emitStart = 0
		}
	}
}

// applyDepth folds pending depth events with time strictly below floor into
// the running depth, updating the peak. Events at one instant fold pushes
// before pops: a message popped at its own send time (zero-latency receive)
// still occupied the inbox momentarily.
func (p *Proc) applyDepth(floor int64) {
	due := p.depthDue[:0]
	keep := p.depthPend[:0]
	for _, ev := range p.depthPend {
		if ev.time < floor {
			due = append(due, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	p.depthPend = keep
	p.depthDue = due[:0]
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].time != due[j].time {
			return due[i].time < due[j].time
		}
		return !due[i].pop && due[j].pop
	})
	for _, ev := range due {
		if ev.pop {
			p.depth--
		} else {
			p.depth++
			if p.depth > p.peakDepth {
				p.peakDepth = p.depth
			}
		}
	}
}
