// Package memchan models the cluster interconnect of the paper's prototype:
// four AlphaServer 4100 nodes connected by Digital's Memory Channel, plus
// the cache-coherent shared-memory message queues used between processors
// on the same node.
//
// The model reproduces the paper's measured characteristics:
//
//   - one-way user-to-user latency over the Memory Channel of about 4 us;
//   - about 35 MB/s of effective Memory Channel bandwidth for block data,
//     with the processors of a node sharing their node's link (the paper
//     keeps per-processor bandwidth identical between Base-Shasta and
//     SMP-Shasta this way);
//   - much cheaper intra-node messages through per-pair shared-memory
//     queues that need no locking.
//
// Combined with the protocol handler occupancies in package protocol, the
// model yields the paper's ~20 us two-hop remote fetch and ~11 us
// intra-node fetch of a 64-byte block.
package memchan

import (
	"fmt"

	"repro/internal/sim"
)

// Topology maps processors onto physical SMP nodes.
type Topology struct {
	// NumProcs is the total number of processors.
	NumProcs int
	// ProcsPerNode is the number of processors per SMP node (4 for the
	// AlphaServer 4100s of the prototype).
	ProcsPerNode int
}

// Validate checks the topology is well formed.
func (t Topology) Validate() error {
	if t.NumProcs <= 0 || t.ProcsPerNode <= 0 {
		return fmt.Errorf("memchan: non-positive topology %+v", t)
	}
	if t.NumProcs%t.ProcsPerNode != 0 && t.NumProcs > t.ProcsPerNode {
		return fmt.Errorf("memchan: %d processors not divisible into nodes of %d",
			t.NumProcs, t.ProcsPerNode)
	}
	return nil
}

// NumNodes returns the number of SMP nodes.
func (t Topology) NumNodes() int {
	n := (t.NumProcs + t.ProcsPerNode - 1) / t.ProcsPerNode
	if n == 0 {
		n = 1
	}
	return n
}

// NodeOf returns the node index hosting processor p.
func (t Topology) NodeOf(p int) int { return p / t.ProcsPerNode }

// SameNode reports whether two processors share a physical node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Params are the timing parameters of the interconnect, in cycles of the
// 300 MHz processor clock (300 cycles = 1 us).
type Params struct {
	// RemoteWire is the one-way Memory Channel latency for the first
	// byte of a message (the paper's ~4 us).
	RemoteWire int64
	// RemoteBytesPerKCycle is Memory Channel data bandwidth in bytes per
	// 1000 cycles. 35 MB/s at 300 MHz is 35/300*1000 = ~117 bytes per
	// thousand cycles.
	RemoteBytesPerKCycle int64
	// LocalWire is the one-way latency of an intra-node shared-memory
	// queue message.
	LocalWire int64
	// LocalBytesPerKCycle is intra-node data bandwidth (the paper's
	// ~45 MB/s fetch bandwidth, i.e. 150 bytes per thousand cycles).
	LocalBytesPerKCycle int64
	// HeaderBytes is added to every message's payload size for
	// transfer-time purposes.
	HeaderBytes int
}

// DefaultParams returns parameters calibrated to the paper's prototype.
func DefaultParams() Params {
	return Params{
		RemoteWire:           1200, // 4 us
		RemoteBytesPerKCycle: 117,  // ~35 MB/s
		LocalWire:            150,  // 0.5 us
		LocalBytesPerKCycle:  450,  // ~135 MB/s within an SMP
		HeaderBytes:          16,
	}
}

// Network computes message latencies and models per-node Memory Channel
// link occupancy. It is used from inside simulator processor contexts only,
// so it needs no locking.
type Network struct {
	topo Topology
	par  Params
	// linkFree[n] is the earliest cycle node n's outgoing Memory Channel
	// link is free.
	linkFree []int64
	// counters for diagnostics and observability snapshots
	remoteSends, localSends int64
	remoteBytes             int64
	// linkBusy[n] accumulates cycles node n's link spent serializing
	// data; linkWait accumulates cycles messages waited for a busy link,
	// and maxBacklog is the largest single such wait (the deepest the
	// per-node send queue ever got, in cycles).
	linkBusy   []int64
	linkWait   int64
	maxBacklog int64
}

// New builds a network for the topology. It panics on an invalid topology,
// which is a programming error of the embedding configuration code.
func New(topo Topology, par Params) *Network {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		topo:     topo,
		par:      par,
		linkFree: make([]int64, topo.NumNodes()),
		linkBusy: make([]int64, topo.NumNodes()),
	}
}

// Topology returns the network's processor-to-node mapping.
func (n *Network) Topology() Topology { return n.topo }

// SameNode reports whether two processors share a physical node.
func (n *Network) SameNode(a, b int) bool { return n.topo.SameNode(a, b) }

// transferCycles returns the serialization time for a payload.
func transferCycles(bytes int, bytesPerKCycle int64) int64 {
	if bytes <= 0 || bytesPerKCycle <= 0 {
		return 0
	}
	return (int64(bytes)*1000 + bytesPerKCycle - 1) / bytesPerKCycle
}

// Send transmits payload of the given size from processor p to dst,
// computing arrival time from the topology: intra-node messages use the
// shared-memory queues, inter-node messages use (and occupy) the sender
// node's Memory Channel link.
func (n *Network) Send(p *sim.Proc, dst int, payloadBytes int, payload any) {
	size := payloadBytes + n.par.HeaderBytes
	if n.topo.SameNode(p.ID, dst) {
		n.localSends++
		lat := n.par.LocalWire + transferCycles(size, n.par.LocalBytesPerKCycle)
		p.Send(dst, lat, payload)
		return
	}
	n.remoteSends++
	n.remoteBytes += int64(size)
	node := n.topo.NodeOf(p.ID)
	transfer := transferCycles(size, n.par.RemoteBytesPerKCycle)
	start := p.Now()
	if n.linkFree[node] > start {
		wait := n.linkFree[node] - start
		n.linkWait += wait
		if wait > n.maxBacklog {
			n.maxBacklog = wait
		}
		start = n.linkFree[node]
	}
	n.linkBusy[node] += transfer
	n.linkFree[node] = start + transfer
	arrival := start + transfer + n.par.RemoteWire
	p.SendAt(dst, arrival, payload)
}

// RemoteSends returns the number of inter-node messages sent so far.
func (n *Network) RemoteSends() int64 { return n.remoteSends }

// LocalSends returns the number of intra-node messages sent so far.
func (n *Network) LocalSends() int64 { return n.localSends }

// RemoteBytes returns total bytes (including headers) pushed over the
// Memory Channel.
func (n *Network) RemoteBytes() int64 { return n.remoteBytes }

// LinkBusy returns, per node, the cycles its Memory Channel link spent
// serializing outgoing data.
func (n *Network) LinkBusy() []int64 {
	return append([]int64(nil), n.linkBusy...)
}

// LinkWait returns the total cycles messages spent queued behind a busy
// Memory Channel link.
func (n *Network) LinkWait() int64 { return n.linkWait }

// MaxLinkBacklog returns the largest single wait a message incurred behind
// a busy link, in cycles — the deepest any node's send queue got.
func (n *Network) MaxLinkBacklog() int64 { return n.maxBacklog }
