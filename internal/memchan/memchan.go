// Package memchan models the cluster interconnect of the paper's prototype:
// four AlphaServer 4100 nodes connected by Digital's Memory Channel, plus
// the cache-coherent shared-memory message queues used between processors
// on the same node.
//
// The model reproduces the paper's measured characteristics:
//
//   - one-way user-to-user latency over the Memory Channel of about 4 us;
//   - about 35 MB/s of effective Memory Channel bandwidth for block data,
//     with the processors of a node sharing their node's link (the paper
//     keeps per-processor bandwidth identical between Base-Shasta and
//     SMP-Shasta this way);
//   - much cheaper intra-node messages through per-pair shared-memory
//     queues that need no locking.
//
// Combined with the protocol handler occupancies in package protocol, the
// model yields the paper's ~20 us two-hop remote fetch and ~11 us
// intra-node fetch of a 64-byte block.
package memchan

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// Topology maps processors onto physical SMP nodes.
type Topology struct {
	// NumProcs is the total number of processors.
	NumProcs int
	// ProcsPerNode is the number of processors per SMP node (4 for the
	// AlphaServer 4100s of the prototype).
	ProcsPerNode int
}

// Validate checks the topology is well formed.
func (t Topology) Validate() error {
	if t.NumProcs <= 0 || t.ProcsPerNode <= 0 {
		return fmt.Errorf("memchan: non-positive topology %+v", t)
	}
	if t.NumProcs%t.ProcsPerNode != 0 && t.NumProcs > t.ProcsPerNode {
		return fmt.Errorf("memchan: %d processors not divisible into nodes of %d",
			t.NumProcs, t.ProcsPerNode)
	}
	return nil
}

// NumNodes returns the number of SMP nodes.
func (t Topology) NumNodes() int {
	n := (t.NumProcs + t.ProcsPerNode - 1) / t.ProcsPerNode
	if n == 0 {
		n = 1
	}
	return n
}

// NodeOf returns the node index hosting processor p.
func (t Topology) NodeOf(p int) int { return p / t.ProcsPerNode }

// SameNode reports whether two processors share a physical node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Params are the timing parameters of the interconnect, in cycles of the
// 300 MHz processor clock (300 cycles = 1 us).
type Params struct {
	// RemoteWire is the one-way Memory Channel latency for the first
	// byte of a message (the paper's ~4 us).
	RemoteWire int64
	// RemoteBytesPerKCycle is Memory Channel data bandwidth in bytes per
	// 1000 cycles. 35 MB/s at 300 MHz is 35/300*1000 = ~117 bytes per
	// thousand cycles.
	RemoteBytesPerKCycle int64
	// LocalWire is the one-way latency of an intra-node shared-memory
	// queue message.
	LocalWire int64
	// LocalBytesPerKCycle is intra-node data bandwidth (the paper's
	// ~45 MB/s fetch bandwidth, i.e. 150 bytes per thousand cycles).
	LocalBytesPerKCycle int64
	// HeaderBytes is added to every message's payload size for
	// transfer-time purposes.
	HeaderBytes int
}

// DefaultParams returns parameters calibrated to the paper's prototype.
func DefaultParams() Params {
	return Params{
		RemoteWire:           1200, // 4 us
		RemoteBytesPerKCycle: 117,  // ~35 MB/s
		LocalWire:            150,  // 0.5 us
		LocalBytesPerKCycle:  450,  // ~135 MB/s within an SMP
		HeaderBytes:          16,
	}
}

// Lookahead returns the minimum latency of any message under these
// parameters — the wire latency alone, before transfer time. It bounds the
// conservative parallel scheduler's window width (sim.Engine.Lookahead):
// no message sent at time t can arrive before t+Lookahead. Embedders whose
// concurrency domains only ever exchange inter-node messages may use the
// larger RemoteWire bound instead.
func (p Params) Lookahead() int64 {
	if p.LocalWire < p.RemoteWire {
		return p.LocalWire
	}
	return p.RemoteWire
}

// Network computes message latencies and models per-node Memory Channel
// link occupancy. It is used from inside simulator processor contexts.
// Under the parallel scheduler, processors of different nodes may call Send
// concurrently: the per-node link state is only ever touched by the owning
// node's processors (one conflict domain), and the cross-node diagnostic
// counters are atomic sums and maxima, which are order-independent — so
// the reported values match the serial scheduler's exactly.
type Network struct {
	topo Topology
	par  Params
	// linkFree[n] is the earliest cycle node n's outgoing Memory Channel
	// link is free. Accessed only by node n's processors.
	linkFree []int64
	// counters for diagnostics and observability snapshots
	remoteSends, localSends atomic.Int64
	remoteBytes             atomic.Int64
	// linkBusy[n] accumulates cycles node n's link spent serializing
	// data (accessed only by node n's processors); linkWait accumulates
	// cycles messages waited for a busy link, and maxBacklog is the
	// largest single such wait (the deepest the per-node send queue ever
	// got, in cycles).
	linkBusy   []int64
	linkWait   atomic.Int64
	maxBacklog atomic.Int64
}

// New builds a network for the topology. It panics on an invalid topology,
// which is a programming error of the embedding configuration code.
func New(topo Topology, par Params) *Network {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		topo:     topo,
		par:      par,
		linkFree: make([]int64, topo.NumNodes()),
		linkBusy: make([]int64, topo.NumNodes()),
	}
}

// Topology returns the network's processor-to-node mapping.
func (n *Network) Topology() Topology { return n.topo }

// SameNode reports whether two processors share a physical node.
func (n *Network) SameNode(a, b int) bool { return n.topo.SameNode(a, b) }

// transferCycles returns the serialization time for a payload.
func transferCycles(bytes int, bytesPerKCycle int64) int64 {
	if bytes <= 0 || bytesPerKCycle <= 0 {
		return 0
	}
	return (int64(bytes)*1000 + bytesPerKCycle - 1) / bytesPerKCycle
}

// Send transmits payload of the given size from processor p to dst,
// computing arrival time from the topology: intra-node messages use the
// shared-memory queues, inter-node messages use (and occupy) the sender
// node's Memory Channel link.
func (n *Network) Send(p *sim.Proc, dst int, payloadBytes int, payload any) {
	size := payloadBytes + n.par.HeaderBytes
	if n.topo.SameNode(p.ID, dst) {
		n.localSends.Add(1)
		lat := n.par.LocalWire + transferCycles(size, n.par.LocalBytesPerKCycle)
		p.Send(dst, lat, payload)
		return
	}
	n.remoteSends.Add(1)
	n.remoteBytes.Add(int64(size))
	node := n.topo.NodeOf(p.ID)
	transfer := transferCycles(size, n.par.RemoteBytesPerKCycle)
	start := p.Now()
	if n.linkFree[node] > start {
		wait := n.linkFree[node] - start
		n.linkWait.Add(wait)
		for {
			max := n.maxBacklog.Load()
			if wait <= max || n.maxBacklog.CompareAndSwap(max, wait) {
				break
			}
		}
		start = n.linkFree[node]
	}
	n.linkBusy[node] += transfer
	n.linkFree[node] = start + transfer
	arrival := start + transfer + n.par.RemoteWire
	p.SendAt(dst, arrival, payload)
}

// RemoteSends returns the number of inter-node messages sent so far.
func (n *Network) RemoteSends() int64 { return n.remoteSends.Load() }

// LocalSends returns the number of intra-node messages sent so far.
func (n *Network) LocalSends() int64 { return n.localSends.Load() }

// RemoteBytes returns total bytes (including headers) pushed over the
// Memory Channel.
func (n *Network) RemoteBytes() int64 { return n.remoteBytes.Load() }

// LinkBusy returns, per node, the cycles its Memory Channel link spent
// serializing outgoing data.
func (n *Network) LinkBusy() []int64 {
	return append([]int64(nil), n.linkBusy...)
}

// LinkWait returns the total cycles messages spent queued behind a busy
// Memory Channel link.
func (n *Network) LinkWait() int64 { return n.linkWait.Load() }

// MaxLinkBacklog returns the largest single wait a message incurred behind
// a busy link, in cycles — the deepest any node's send queue got.
func (n *Network) MaxLinkBacklog() int64 { return n.maxBacklog.Load() }
