// Package memchan models the cluster interconnect of the paper's prototype:
// four AlphaServer 4100 nodes connected by Digital's Memory Channel, plus
// the cache-coherent shared-memory message queues used between processors
// on the same node.
//
// The model reproduces the paper's measured characteristics:
//
//   - one-way user-to-user latency over the Memory Channel of about 4 us;
//   - about 35 MB/s of effective Memory Channel bandwidth for block data,
//     with the processors of a node sharing their node's link (the paper
//     keeps per-processor bandwidth identical between Base-Shasta and
//     SMP-Shasta this way);
//   - much cheaper intra-node messages through per-pair shared-memory
//     queues that need no locking.
//
// Combined with the protocol handler occupancies in package protocol, the
// model yields the paper's ~20 us two-hop remote fetch and ~11 us
// intra-node fetch of a 64-byte block.
//
// Beyond the paper's flat four-node network, the model scales to
// hierarchical topologies: nodes are clustered into node groups connected
// by shared uplinks (Topology.NodesPerGroup), messages crossing a group
// boundary pay extra first-byte latency (Params.UplinkWire) and are limited
// to a per-node share of the uplink bandwidth
// (Params.UplinkBytesPerKCycle), and each node's link may be split into
// parallel lanes (Params.LinkShards) selected by destination node. All link
// state stays owned by the sending node's processors, so the hierarchy adds
// no cross-domain coupling and the parallel scheduler's determinism is
// preserved.
package memchan

import (
	"fmt"

	"repro/internal/sim"
)

// Topology maps processors onto physical SMP nodes, and optionally nodes
// onto node groups sharing an uplink (hierarchical networks).
type Topology struct {
	// NumProcs is the total number of processors.
	NumProcs int
	// ProcsPerNode is the number of processors per SMP node (4 for the
	// AlphaServer 4100s of the prototype).
	ProcsPerNode int
	// NodesPerGroup clusters nodes under shared uplinks: messages between
	// processors in different node groups traverse an uplink on top of
	// the sender node's link. 0 or 1 means a flat network — every
	// inter-node message behaves exactly as in the original model.
	NodesPerGroup int
}

// Validate checks the topology is well formed.
func (t Topology) Validate() error {
	if t.NumProcs <= 0 || t.ProcsPerNode <= 0 {
		return fmt.Errorf("memchan: non-positive topology %+v", t)
	}
	if t.NumProcs%t.ProcsPerNode != 0 && t.NumProcs > t.ProcsPerNode {
		return fmt.Errorf("memchan: %d processors not divisible into nodes of %d",
			t.NumProcs, t.ProcsPerNode)
	}
	if t.NodesPerGroup < 0 {
		return fmt.Errorf("memchan: negative NodesPerGroup %d", t.NodesPerGroup)
	}
	if t.NodesPerGroup > 1 {
		if n := t.NumNodes(); n%t.NodesPerGroup != 0 && n > t.NodesPerGroup {
			return fmt.Errorf("memchan: %d nodes not divisible into groups of %d",
				n, t.NodesPerGroup)
		}
	}
	return nil
}

// NumNodes returns the number of SMP nodes.
func (t Topology) NumNodes() int {
	n := (t.NumProcs + t.ProcsPerNode - 1) / t.ProcsPerNode
	if n == 0 {
		n = 1
	}
	return n
}

// Hierarchical reports whether the topology has more than one node group.
func (t Topology) Hierarchical() bool {
	return t.NodesPerGroup > 1 && t.NumNodes() > t.NodesPerGroup
}

// NumNodeGroups returns the number of uplink groups (1 for flat networks).
func (t Topology) NumNodeGroups() int {
	if t.NodesPerGroup <= 1 {
		return 1
	}
	g := (t.NumNodes() + t.NodesPerGroup - 1) / t.NodesPerGroup
	if g == 0 {
		g = 1
	}
	return g
}

// NodeOf returns the node index hosting processor p.
func (t Topology) NodeOf(p int) int { return p / t.ProcsPerNode }

// NodeGroupOf returns the uplink group of processor p (0 for flat
// networks).
func (t Topology) NodeGroupOf(p int) int {
	if t.NodesPerGroup <= 1 {
		return 0
	}
	return t.NodeOf(p) / t.NodesPerGroup
}

// SameNode reports whether two processors share a physical node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// SameNodeGroup reports whether two processors share an uplink group.
func (t Topology) SameNodeGroup(a, b int) bool {
	return t.NodeGroupOf(a) == t.NodeGroupOf(b)
}

// Params are the timing parameters of the interconnect, in cycles of the
// 300 MHz processor clock (300 cycles = 1 us).
type Params struct {
	// RemoteWire is the one-way Memory Channel latency for the first
	// byte of a message (the paper's ~4 us).
	RemoteWire int64
	// RemoteBytesPerKCycle is Memory Channel data bandwidth in bytes per
	// 1000 cycles. 35 MB/s at 300 MHz is 35/300*1000 = ~117 bytes per
	// thousand cycles.
	RemoteBytesPerKCycle int64
	// LocalWire is the one-way latency of an intra-node shared-memory
	// queue message.
	LocalWire int64
	// LocalBytesPerKCycle is intra-node data bandwidth (the paper's
	// ~45 MB/s fetch bandwidth, i.e. 150 bytes per thousand cycles).
	LocalBytesPerKCycle int64
	// HeaderBytes is added to every message's payload size for
	// transfer-time purposes.
	HeaderBytes int
	// UplinkWire is the extra one-way first-byte latency a message pays
	// when it crosses a node-group boundary in a hierarchical topology
	// (added on top of RemoteWire). Ignored on flat topologies; 0 makes
	// group crossings latency-free.
	UplinkWire int64
	// UplinkBytesPerKCycle is the total bandwidth of one shared uplink.
	// It is divided statically among the nodes of the group (each node
	// gets an equal share, minimum 1 byte/kcycle), which keeps all link
	// state owned by the sending node — deterministic under the parallel
	// scheduler. A cross-group message serializes at the lesser of its
	// node-link rate and its node's uplink share. 0 means the uplink
	// imposes no bandwidth limit.
	UplinkBytesPerKCycle int64
	// LinkShards splits each node's outgoing link into that many parallel
	// lanes; a message uses the lane indexed by its destination node.
	// 0 or 1 models the historical single serial link.
	LinkShards int
}

// DefaultParams returns parameters calibrated to the paper's prototype,
// with uplink figures for hierarchical runs: crossing a group boundary
// doubles the first-byte latency (a second switch traversal), and one
// uplink carries 8x a node link's bandwidth, shared by the group's nodes.
func DefaultParams() Params {
	return Params{
		RemoteWire:           1200, // 4 us
		RemoteBytesPerKCycle: 117,  // ~35 MB/s
		LocalWire:            150,  // 0.5 us
		LocalBytesPerKCycle:  450,  // ~135 MB/s within an SMP
		HeaderBytes:          16,
		UplinkWire:           1200, // second hop: another 4 us
		UplinkBytesPerKCycle: 936,  // 8 node links' worth per uplink
		LinkShards:           1,
	}
}

// Lookahead returns the minimum latency of any message under these
// parameters — the wire latency alone, before transfer time. It bounds the
// conservative parallel scheduler's window width (sim.Engine.Lookahead):
// no message sent at time t can arrive before t+Lookahead. Embedders whose
// concurrency domains only ever exchange inter-node messages may use the
// larger RemoteWire bound instead. Uplink latency only adds to RemoteWire,
// so it never lowers the bound.
func (p Params) Lookahead() int64 {
	if p.LocalWire < p.RemoteWire {
		return p.LocalWire
	}
	return p.RemoteWire
}

// shards returns the effective lane count per node link.
func (p Params) shards() int {
	if p.LinkShards <= 1 {
		return 1
	}
	return p.LinkShards
}

// Network computes message latencies and models per-node Memory Channel
// link occupancy. It is used from inside simulator processor contexts.
// Under the parallel scheduler, processors of different nodes may call Send
// concurrently: all mutable state — link lanes and diagnostic counters — is
// sharded per node and only ever touched by the owning node's processors
// (one conflict domain), so no synchronization is needed and the reported
// values match the serial scheduler's exactly.
type Network struct {
	topo Topology
	par  Params
	// uplinkShare is each node's static slice of its group uplink's
	// bandwidth (0 when the uplink imposes no limit).
	uplinkShare int64
	// lanes is the number of link shards per node.
	lanes int
	// linkFree[n*lanes+s] is the earliest cycle lane s of node n's
	// outgoing link is free. Accessed only by node n's processors.
	linkFree []int64
	// Diagnostic counters, all sharded per sending node and accessed only
	// by that node's processors; accessors aggregate across nodes, which
	// is order-independent.
	remoteSends []int64
	localSends  []int64
	remoteBytes []int64
	linkBusy    []int64
	linkWait    []int64
	maxBacklog  []int64
}

// New builds a network for the topology. It panics on an invalid topology,
// which is a programming error of the embedding configuration code.
func New(topo Topology, par Params) *Network {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	nodes := topo.NumNodes()
	n := &Network{
		topo:        topo,
		par:         par,
		lanes:       par.shards(),
		remoteSends: make([]int64, nodes),
		localSends:  make([]int64, nodes),
		remoteBytes: make([]int64, nodes),
		linkBusy:    make([]int64, nodes),
		linkWait:    make([]int64, nodes),
		maxBacklog:  make([]int64, nodes),
	}
	n.linkFree = make([]int64, nodes*n.lanes)
	if topo.Hierarchical() && par.UplinkBytesPerKCycle > 0 {
		share := par.UplinkBytesPerKCycle / int64(topo.NodesPerGroup)
		if share < 1 {
			share = 1
		}
		n.uplinkShare = share
	}
	return n
}

// Topology returns the network's processor-to-node mapping.
func (n *Network) Topology() Topology { return n.topo }

// SameNode reports whether two processors share a physical node.
func (n *Network) SameNode(a, b int) bool { return n.topo.SameNode(a, b) }

// transferCycles returns the serialization time for a payload.
func transferCycles(bytes int, bytesPerKCycle int64) int64 {
	if bytes <= 0 || bytesPerKCycle <= 0 {
		return 0
	}
	return (int64(bytes)*1000 + bytesPerKCycle - 1) / bytesPerKCycle
}

// SendInfo decomposes one message's delivery time. The components telescope
// exactly: Arrival = send time + Queue + Transfer + Wire. The span layer
// (internal/obsv) records these components in the trace so per-request
// latency can be attributed to link queueing vs transit vs handler waits.
type SendInfo struct {
	// Arrival is the absolute cycle the message reaches the destination's
	// inbox.
	Arrival int64
	// Queue is the time spent waiting behind earlier messages for a free
	// lane of the sender node's link (always 0 for intra-node messages).
	Queue int64
	// Transfer is the serialization time of the message's bytes.
	Transfer int64
	// Wire is the first-byte latency, including the uplink crossing when
	// the message leaves its node group.
	Wire int64
	// Local marks an intra-node shared-memory queue message.
	Local bool
	// Uplink marks a message that crossed a node-group boundary.
	Uplink bool
}

// Via names the physical route for trace details: "local" (shared-memory
// queue), "remote" (Memory Channel) or "uplink" (Memory Channel plus a
// group-boundary crossing).
func (i SendInfo) Via() string {
	switch {
	case i.Local:
		return "local"
	case i.Uplink:
		return "uplink"
	default:
		return "remote"
	}
}

// Send transmits payload of the given size from processor p to dst,
// computing arrival time from the topology: intra-node messages use the
// shared-memory queues; inter-node messages use (and occupy) a lane of the
// sender node's Memory Channel link; cross-group messages additionally pay
// the uplink latency and are throttled to the node's uplink share. The
// returned SendInfo reports how the delivery time decomposes.
func (n *Network) Send(p *sim.Proc, dst int, payloadBytes int, payload any) SendInfo {
	size := payloadBytes + n.par.HeaderBytes
	if n.topo.SameNode(p.ID, dst) {
		n.localSends[n.topo.NodeOf(p.ID)]++
		transfer := transferCycles(size, n.par.LocalBytesPerKCycle)
		lat := n.par.LocalWire + transfer
		p.Send(dst, lat, payload)
		return SendInfo{Arrival: p.Now() + lat, Transfer: transfer,
			Wire: n.par.LocalWire, Local: true}
	}
	node := n.topo.NodeOf(p.ID)
	n.remoteSends[node]++
	n.remoteBytes[node] += int64(size)
	wire := n.par.RemoteWire
	rate := n.par.RemoteBytesPerKCycle
	uplink := false
	if !n.topo.SameNodeGroup(p.ID, dst) {
		uplink = true
		wire += n.par.UplinkWire
		if n.uplinkShare > 0 && n.uplinkShare < rate {
			rate = n.uplinkShare
		}
	}
	transfer := transferCycles(size, rate)
	lane := node*n.lanes + n.topo.NodeOf(dst)%n.lanes
	now := p.Now()
	start := now
	if n.linkFree[lane] > start {
		wait := n.linkFree[lane] - start
		n.linkWait[node] += wait
		if wait > n.maxBacklog[node] {
			n.maxBacklog[node] = wait
		}
		start = n.linkFree[lane]
	}
	n.linkBusy[node] += transfer
	n.linkFree[lane] = start + transfer
	p.SendAt(dst, start+transfer+wire, payload)
	return SendInfo{Arrival: start + transfer + wire, Queue: start - now,
		Transfer: transfer, Wire: wire, Uplink: uplink}
}

// sum adds up a per-node counter shard.
func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// RemoteSends returns the number of inter-node messages sent so far.
func (n *Network) RemoteSends() int64 { return sum(n.remoteSends) }

// LocalSends returns the number of intra-node messages sent so far.
func (n *Network) LocalSends() int64 { return sum(n.localSends) }

// RemoteBytes returns total bytes (including headers) pushed over the
// Memory Channel.
func (n *Network) RemoteBytes() int64 { return sum(n.remoteBytes) }

// LinkBusy returns, per node, the cycles its Memory Channel link spent
// serializing outgoing data (summed across lanes for sharded links).
func (n *Network) LinkBusy() []int64 {
	return append([]int64(nil), n.linkBusy...)
}

// LinkWait returns the total cycles messages spent queued behind a busy
// Memory Channel link.
func (n *Network) LinkWait() int64 { return sum(n.linkWait) }

// MaxLinkBacklog returns the largest single wait a message incurred behind
// a busy link, in cycles — the deepest any node's send queue got.
func (n *Network) MaxLinkBacklog() int64 {
	var m int64
	for _, x := range n.maxBacklog {
		if x > m {
			m = x
		}
	}
	return m
}
