package memchan

// Tests for the hierarchical interconnect: node-group mapping, uplink
// latency and bandwidth, per-destination link sharding, and flat-topology
// equivalence.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestHierarchicalTopologyMapping(t *testing.T) {
	topo := Topology{NumProcs: 32, ProcsPerNode: 4, NodesPerGroup: 4}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if !topo.Hierarchical() {
		t.Fatal("8 nodes in groups of 4 should be hierarchical")
	}
	if got := topo.NumNodeGroups(); got != 2 {
		t.Fatalf("NumNodeGroups = %d, want 2", got)
	}
	if topo.NodeGroupOf(0) != 0 || topo.NodeGroupOf(15) != 0 ||
		topo.NodeGroupOf(16) != 1 || topo.NodeGroupOf(31) != 1 {
		t.Fatal("NodeGroupOf mapping wrong")
	}
	if !topo.SameNodeGroup(0, 15) || topo.SameNodeGroup(15, 16) {
		t.Fatal("SameNodeGroup wrong")
	}

	// One group of all nodes is not a hierarchy, nor is a flat spec.
	if (Topology{NumProcs: 16, ProcsPerNode: 4, NodesPerGroup: 4}).Hierarchical() {
		t.Fatal("single-group topology should not be hierarchical")
	}
	if (Topology{NumProcs: 32, ProcsPerNode: 4}).Hierarchical() {
		t.Fatal("flat topology should not be hierarchical")
	}
}

func TestHierarchicalTopologyValidate(t *testing.T) {
	// 6 nodes do not divide into groups of 4.
	bad := Topology{NumProcs: 24, ProcsPerNode: 4, NodesPerGroup: 4}
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible node-group arrangement accepted")
	}
}

// sendArrival runs one send from src to dst and returns the arrival time.
func sendArrival(t *testing.T, topo Topology, par Params, src, dst, size int) int64 {
	t.Helper()
	nw := New(topo, par)
	e := sim.NewEngine(topo.NumProcs)
	var at int64
	e.Run(func(p *sim.Proc) {
		switch p.ID {
		case src:
			nw.Send(p, dst, size, "x")
		case dst:
			p.WaitRecv(stats.Read, "t")
			at = p.Now()
		}
	})
	return at
}

// TestUplinkAddsLatency sends the same message across nodes within one
// group and across groups: the cross-group message pays the uplink wire
// time on top of the node-to-node time.
func TestUplinkAddsLatency(t *testing.T) {
	topo := Topology{NumProcs: 32, ProcsPerNode: 4, NodesPerGroup: 4}
	par := DefaultParams()
	intra := sendArrival(t, topo, par, 0, 4, 64)  // node 0 -> node 1, same group
	inter := sendArrival(t, topo, par, 0, 16, 64) // node 0 -> node 4, other group
	if got, want := inter-intra, par.UplinkWire; got != want {
		t.Fatalf("cross-group latency premium = %d cycles, want UplinkWire = %d", got, want)
	}
}

// TestUplinkBandwidthShare caps cross-group transfers at the per-node
// share of the uplink: with the uplink provisioned below the sum of the
// node links, a large cross-group payload streams at
// UplinkBytesPerKCycle/NodesPerGroup instead of the node link rate.
func TestUplinkBandwidthShare(t *testing.T) {
	topo := Topology{NumProcs: 32, ProcsPerNode: 4, NodesPerGroup: 4}
	par := DefaultParams()
	par.UplinkBytesPerKCycle = 400 // share = 100 B/kcycle < node link 117
	const size = 4096
	intra := sendArrival(t, topo, par, 0, 4, size)
	inter := sendArrival(t, topo, par, 0, 16, size)
	wantIntra := transferCycles(size+par.HeaderBytes, par.RemoteBytesPerKCycle) + par.RemoteWire
	wantInter := transferCycles(size+par.HeaderBytes, 100) + par.RemoteWire + par.UplinkWire
	if intra != wantIntra {
		t.Fatalf("intra-group arrival %d, want %d", intra, wantIntra)
	}
	if inter != wantInter {
		t.Fatalf("cross-group arrival %d, want %d", inter, wantInter)
	}
}

// TestLinkShardsReduceContention sends from one node to two different
// remote nodes at once. With one lane the sends serialize on the node
// link; with two lanes the destinations hash to different lanes and both
// stream concurrently.
func TestLinkShardsReduceContention(t *testing.T) {
	topo := Topology{NumProcs: 16, ProcsPerNode: 4}
	gap := func(shards int) int64 {
		par := DefaultParams()
		par.LinkShards = shards
		nw := New(topo, par)
		e := sim.NewEngine(16)
		var first, second int64
		e.Run(func(p *sim.Proc) {
			switch p.ID {
			case 0:
				nw.Send(p, 4, 2048, 1) // node 1: lane 1%shards
				nw.Send(p, 8, 2048, 2) // node 2: lane 2%shards
			case 4, 8:
				p.WaitRecv(stats.Read, "t")
				at := p.Now()
				if first == 0 {
					first = at
				} else {
					second = at
				}
			}
		})
		d := second - first
		if d < 0 {
			d = -d
		}
		return d
	}
	serializedGap := gap(1)
	shardedGap := gap(2)
	par := DefaultParams()
	transfer := int64(2048+par.HeaderBytes) * 1000 / par.RemoteBytesPerKCycle
	if serializedGap < transfer-10 {
		t.Fatalf("single lane did not serialize: gap %d, transfer %d", serializedGap, transfer)
	}
	if shardedGap != 0 {
		t.Fatalf("two lanes should stream concurrently: gap %d, want 0", shardedGap)
	}
}

// TestFlatUnchangedByUplinkParams checks a non-hierarchical topology
// ignores the uplink knobs entirely: arrival times match the defaults even
// with aggressive uplink settings.
func TestFlatUnchangedByUplinkParams(t *testing.T) {
	topo := Topology{NumProcs: 8, ProcsPerNode: 4}
	par := DefaultParams()
	base := sendArrival(t, topo, par, 0, 4, 1024)
	par.UplinkWire = 99999
	par.UplinkBytesPerKCycle = 1
	got := sendArrival(t, topo, par, 0, 4, 1024)
	if got != base {
		t.Fatalf("flat topology affected by uplink params: %d vs %d", got, base)
	}
}
