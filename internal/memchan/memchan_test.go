package memchan

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestTopology(t *testing.T) {
	topo := Topology{NumProcs: 16, ProcsPerNode: 4}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(15) != 3 {
		t.Fatal("NodeOf mapping wrong")
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{NumProcs: 0, ProcsPerNode: 4},
		{NumProcs: 4, ProcsPerNode: 0},
		{NumProcs: 6, ProcsPerNode: 4},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tp)
		}
	}
	// Fewer processors than a full node is fine (2-processor runs use a
	// single node).
	if err := (Topology{NumProcs: 2, ProcsPerNode: 4}).Validate(); err != nil {
		t.Errorf("2-proc topology rejected: %v", err)
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	topo := Topology{NumProcs: 8, ProcsPerNode: 4}
	nw := New(topo, DefaultParams())
	e := sim.NewEngine(8)
	var localAt, remoteAt int64
	e.Run(func(p *sim.Proc) {
		switch p.ID {
		case 0:
			nw.Send(p, 1, 0, "local")
			nw.Send(p, 4, 0, "remote")
		case 1:
			p.WaitRecv(stats.Read, "t")
			localAt = p.Now()
		case 4:
			p.WaitRecv(stats.Read, "t")
			remoteAt = p.Now()
		}
	})
	if localAt >= remoteAt {
		t.Fatalf("local latency %d not cheaper than remote %d", localAt, remoteAt)
	}
	// Remote small message should be about 4 us (1200 cycles) plus the
	// header transfer time.
	if remoteAt < 1200 || remoteAt > 1800 {
		t.Fatalf("remote arrival %d cycles, want ~1200-1800", remoteAt)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two large back-to-back remote sends from the same node must
	// serialize on the node's link: the second arrives a full transfer
	// time after the first.
	topo := Topology{NumProcs: 8, ProcsPerNode: 4}
	par := DefaultParams()
	nw := New(topo, par)
	e := sim.NewEngine(8)
	var first, second int64
	e.Run(func(p *sim.Proc) {
		switch p.ID {
		case 0:
			nw.Send(p, 4, 1024, 1)
			nw.Send(p, 4, 1024, 2)
		case 4:
			p.WaitRecv(stats.Read, "t")
			first = p.Now()
			p.WaitRecv(stats.Read, "t")
			second = p.Now()
		}
	})
	transfer := (int64(1024+par.HeaderBytes) * 1000) / par.RemoteBytesPerKCycle
	gap := second - first
	if gap < transfer-10 || gap > transfer+10 {
		t.Fatalf("gap between serialized sends = %d, want ~%d", gap, transfer)
	}
}

func TestLinkSharedAcrossNodeProcessors(t *testing.T) {
	// Processors 0 and 1 are on the same node; their simultaneous remote
	// sends contend for one link.
	topo := Topology{NumProcs: 8, ProcsPerNode: 4}
	par := DefaultParams()
	nw := New(topo, par)
	e := sim.NewEngine(8)
	arrivals := make([]int64, 0, 2)
	e.Run(func(p *sim.Proc) {
		switch p.ID {
		case 0, 1:
			nw.Send(p, 4+p.ID, 2048, p.ID)
		case 4, 5:
			p.WaitRecv(stats.Read, "t")
			arrivals = append(arrivals, p.Now())
		}
	})
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	transfer := (int64(2048+par.HeaderBytes) * 1000) / par.RemoteBytesPerKCycle
	diff := arrivals[1] - arrivals[0]
	if diff < 0 {
		diff = -diff
	}
	if diff < transfer/2 {
		t.Fatalf("same-node senders did not serialize: arrivals %v", arrivals)
	}
}

func TestLocalSendsBypassLink(t *testing.T) {
	topo := Topology{NumProcs: 4, ProcsPerNode: 4}
	nw := New(topo, DefaultParams())
	e := sim.NewEngine(4)
	e.Run(func(p *sim.Proc) {
		if p.ID == 0 {
			nw.Send(p, 1, 64, "x")
		} else if p.ID == 1 {
			p.WaitRecv(stats.Read, "t")
		}
	})
	if nw.RemoteSends() != 0 || nw.LocalSends() != 1 {
		t.Fatalf("remote=%d local=%d, want 0/1", nw.RemoteSends(), nw.LocalSends())
	}
}

// Property: latency is nonnegative and monotonically nondecreasing in
// payload size for both local and remote sends.
func TestQuickLatencyMonotonicInSize(t *testing.T) {
	topo := Topology{NumProcs: 8, ProcsPerNode: 4}
	f := func(a, b uint16) bool {
		small, big := int(a%4096), int(b%4096)
		if small > big {
			small, big = big, small
		}
		arr := func(dst, size int) int64 {
			nw := New(topo, DefaultParams())
			e := sim.NewEngine(8)
			var at int64
			e.Run(func(p *sim.Proc) {
				if p.ID == 0 {
					nw.Send(p, dst, size, "x")
				} else if p.ID == dst {
					p.WaitRecv(stats.Read, "t")
					at = p.Now()
				}
			})
			return at
		}
		return arr(1, small) <= arr(1, big) && arr(4, small) <= arr(4, big)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
