package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/apps"
)

// hot3hop is the migrate experiment's synthetic fixture: an array of blocks
// whose configured home (node 0) neither reads nor writes them. Node 1's
// processors own and repeatedly update disjoint block ranges; node 2's
// processors read every block each round. With static placement every read
// miss is a three-hop forward (requester -> home -> owner) and every
// upgrade pays remote invalidation round trips through node 0; online
// migration re-homes each block to its writer's node, collapsing the reads
// to two hops and making the writer's directory traffic node-local.
type hot3hop struct {
	blocks, rounds int
	arr            apps.F64Array
	cluster        *shasta.Cluster
	checksum       float64
}

// newHot3hop builds the fixture; scale multiplies the round count.
func newHot3hop(scale int) *hot3hop {
	return &hot3hop{blocks: 16, rounds: 40 * scale}
}

func (w *hot3hop) Name() string { return "hot3hop" }

func (w *hot3hop) ProblemSize() string {
	return fmt.Sprintf("%d blocks, %d rounds, home off-node", w.blocks, w.rounds)
}

func (w *hot3hop) Setup(c *shasta.Cluster, variableGranularity bool) {
	w.cluster = c
	// One 64-byte block per slot, every page homed at processor 0 — the
	// adversarial placement migration must undo.
	w.arr = apps.F64Array{Base: c.AllocPlaced(int64(w.blocks)*64, 64, 0), Len: w.blocks * 8}
}

// slot returns the address of block b's first element.
func (w *hot3hop) slot(b int) shasta.Addr { return w.arr.At(b * 8) }

func (w *hot3hop) Body(p *shasta.Proc) {
	procs := p.NumProcs()
	writers := make([]int, 0, 4)
	readers := make([]int, 0, procs)
	for q := 0; q < procs; q++ {
		switch q / 4 {
		case 1:
			writers = append(writers, q)
		case 2:
			readers = append(readers, q)
		}
	}
	role := func(q int) (writer, reader bool) {
		for _, v := range writers {
			if v == q {
				return true, false
			}
		}
		for _, v := range readers {
			if v == q {
				return false, true
			}
		}
		return false, false
	}
	isWriter, isReader := role(p.ID())
	myBlocks := func() []int {
		var bs []int
		for b := 0; b < w.blocks; b++ {
			if writers[b%len(writers)] == p.ID() {
				bs = append(bs, b)
			}
		}
		return bs
	}()

	// Initialization by the writers, then the measured phase.
	if isWriter {
		for _, b := range myBlocks {
			p.StoreF64(w.slot(b), float64(b))
		}
	}
	p.Barrier()
	if p.ID() == 0 {
		p.ResetStats()
	}
	p.Barrier()

	for round := 0; round < w.rounds; round++ {
		if isWriter {
			for _, b := range myBlocks {
				p.StoreF64(w.slot(b), p.LoadF64(w.slot(b))+1)
			}
		}
		p.Barrier()
		if isReader {
			sum := 0.0
			for b := 0; b < w.blocks; b++ {
				sum += p.LoadF64(w.slot(b))
			}
			_ = sum
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		p.EndMeasured()
	}
	p.Barrier()
	if p.ID() == 0 {
		sum := 0.0
		for b := 0; b < w.blocks; b++ {
			sum += p.LoadF64(w.slot(b))
		}
		w.checksum = sum
	}
	p.Barrier()
}

func (w *hot3hop) Checksum() float64 { return w.checksum }

// migFixtures are the migrate experiment's workloads: the synthetic
// three-hop-heavy fixture, and iterated LU at 256-byte lines (four
// measured re-initialize-and-factor sweeps, the repeated-factorization
// harness solver benchmarks run). LU's matrix pages are homed round-robin,
// so a line's home is unrelated to the block owner that re-writes it every
// sweep and the perimeter consumers that re-read it; migration re-homes
// lines to their owners' nodes during the first sweeps, and the later
// sweeps run with a fraction of the 3-hop misses. LU's burst per line is
// short (one owner plus a handful of perimeter readers per sweep), so the
// fixture sets MigrateInterval to 4 — the evidence window that fits the
// pattern; hot3hop uses the protocol defaults.
var migFixtures = []struct {
	name    string
	procs   int
	factory func(scale int) apps.Workload
	cfg     func(procs int) shasta.Config
}{
	{"hot3hop", 16,
		func(s int) apps.Workload { return newHot3hop(s) },
		func(procs int) shasta.Config { return shasta.Config{Procs: procs, Clustering: 4} }},
	{"LU256", 16,
		func(s int) apps.Workload { return apps.NewLUIterated(s, 4, false) },
		func(procs int) shasta.Config {
			return shasta.Config{Procs: procs, Clustering: 4, LineSize: 256, MigrateInterval: 4}
		}},
}

// Migrate contrasts static home placement with online home migration on
// workloads whose traffic concentrates away from the configured home: the
// synthetic hot3hop fixture and iterated LU at 256-byte lines. Each fixture
// runs with migration off and on; the report gives end-to-end measured
// cycles, the migration and tombstone-forward counts, three-hop miss counts
// and remote message traffic. The experiment fails if migration does not
// reduce either fixture's measured cycles — the optimization must pay on
// its target patterns, not merely stay neutral.
//
// With Options.SnapshotPath set, both runs of every fixture are written as
// shasta-bench/v1 scenarios ("migrate/<fixture>/off|on") for benchgate
// comparison across commits. With observability emission enabled
// (shastabench -obsv), each run also writes its full metrics snapshot as
// BENCH_migrate_<fixture>_{off,on}.json.
func Migrate(o Options, w io.Writer) error {
	o = o.WithDefaults()

	var snap *BenchSnapshot
	if o.SnapshotPath != "" {
		label := o.BenchLabel
		if label == "" {
			label = "local"
		}
		snap = newBenchSnapshot(label)
	}
	sched := "serial"
	if parallel {
		sched = "adaptive"
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "fixture\tmigrate\tcycles\tΔcycles\tmigrations\tforwards\t3-hop misses\tremote msgs")
	for _, fx := range migFixtures {
		var cycles [2]int64
		for i, on := range []bool{false, true} {
			cfg := fx.cfg(fx.procs)
			cfg.Migrate = on
			cfg.Parallel = parallel
			start := time.Now()
			r, err := apps.ExecuteObserved(fx.factory(o.Scale), cfg, false, nil)
			if err != nil {
				return fmt.Errorf("harness: migrate: %s: %w", fx.name, err)
			}
			wall := time.Since(start)
			t := r.Metrics.Totals
			threeHop := t.Misses["read-3hop"] + t.Misses["write-3hop"] + t.Misses["upgrade-3hop"]
			cycles[i] = r.Result.ParallelCycles
			delta := ""
			if on {
				delta = fmt.Sprintf("%+.1f%%", 100*float64(cycles[1]-cycles[0])/float64(cycles[0]))
			}
			mode := "off"
			if on {
				mode = "on"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%d\t%d\t%d\n",
				fx.name, mode, cycles[i], delta, t.Migrations, t.MigForwards,
				threeHop, t.Messages["remote"])
			if snap != nil {
				snap.Scenarios = append(snap.Scenarios, BenchScenario{
					Name:         fmt.Sprintf("migrate/%s/%s", fx.name, mode),
					App:          fx.name,
					Procs:        fx.procs,
					ProcsPerNode: 4,
					Clustering:   fx.cfg(fx.procs).Clustering,
					Scheduler:    sched,
					WallNs:       wall.Nanoseconds(),
					Cycles:       r.Result.ParallelCycles,
					Checksum:     r.Checksum,
				})
			}
			if obsvDir != "" {
				path := filepath.Join(obsvDir, fmt.Sprintf("BENCH_migrate_%s_%s.json", fx.name, mode))
				mf, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := r.Metrics.WriteJSON(mf); err != nil {
					mf.Close()
					return err
				}
				if err := mf.Close(); err != nil {
					return err
				}
			}
		}
		if cycles[1] >= cycles[0] {
			return fmt.Errorf("harness: migrate: %s: migration did not reduce cycles (%d off, %d on)",
				fx.name, cycles[0], cycles[1])
		}
		fmt.Fprintf(tw, "%s\tsaved\t%d\t%.1f%%\t\t\t\t\n", fx.name, cycles[0]-cycles[1],
			100*float64(cycles[0]-cycles[1])/float64(cycles[0]))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if snap != nil {
		if err := snap.WriteFile(o.SnapshotPath); err != nil {
			return fmt.Errorf("harness: migrate: snapshot: %w", err)
		}
		fmt.Fprintf(w, "snapshot written: %s (label %s, %d scenarios)\n",
			o.SnapshotPath, snap.Label, len(snap.Scenarios))
	}
	return nil
}
