package harness

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/stats"
)

// fig3Procs are the processor counts of the speedup curves.
var fig3Procs = []int{1, 2, 4, 8, 16}

// Fig3 reproduces Figure 3: speedup curves over 1-16 processors for
// Base-Shasta and SMP-Shasta (clustering 2 at 2 processors, 4 at 4 and
// above), relative to the original sequential code without miss checks.
func Fig3(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tprotocol\tP=1\tP=2\tP=4\tP=8\tP=16")
	for _, name := range names {
		seq, err := seqCycles(name, o.Scale)
		if err != nil {
			return err
		}
		for _, proto := range []string{"Base", "SMP"} {
			fmt.Fprintf(tw, "%s\t%s", name, proto)
			for _, procs := range fig3Procs {
				cfg := baseConfig(procs)
				if proto == "SMP" {
					cfg = smpConfig(procs)
				}
				r, err := runApp(name, o.Scale, cfg, false)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%.2f", speedup(seq, r.Result.ParallelCycles))
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// breakdownRow renders one normalized stacked bar of Figures 4/5: the run's
// execution time normalized to the Base run, split into the six categories.
func breakdownRow(tw io.Writer, label string, r apps.RunResult, baseCycles int64) {
	norm := float64(r.Result.ParallelCycles) / float64(baseCycles)
	fr := r.Result.Stats.BreakdownFractions()
	fmt.Fprintf(tw, "\t%s\t%.2f", label, norm)
	for c := stats.TimeCategory(0); c < stats.NumTimeCategories; c++ {
		fmt.Fprintf(tw, "\t%.2f", norm*fr[c])
	}
	fmt.Fprintln(tw)
}

// figBreakdown renders Figures 4 and 5: for each application and processor
// count, the execution time of Base-Shasta and SMP-Shasta at clusterings 1,
// 2 and 4, normalized to Base-Shasta and split into task/read/write/sync/
// message/other components.
func figBreakdown(o Options, w io.Writer, defApps []string, varGran bool) error {
	o = o.WithDefaults()
	names := appList(o, defApps)
	tw := newTab(w)
	fmt.Fprintln(tw, "app/procs\trun\ttotal\ttask\tread\twrite\tsync\tmsg\tother")
	for _, name := range names {
		for _, procs := range []int{8, 16} {
			fmt.Fprintf(tw, "%s @%dp\n", name, procs)
			base, err := runApp(name, o.Scale, baseConfig(procs), varGran)
			if err != nil {
				return err
			}
			breakdownRow(tw, "Base", base, base.Result.ParallelCycles)
			for _, cl := range []int{1, 2, 4} {
				cfg := baseConfig(procs)
				cfg.Clustering = cl
				r, err := runApp(name, o.Scale, cfg, varGran)
				if err != nil {
					return err
				}
				label := fmt.Sprintf("SMP C%d", cl)
				if cl == 1 {
					// Clustering 1 under the SMP protocol costs is
					// modelled by Base with SMP checks.
					cfg.ForceSMPChecks = true
					r, err = runApp(name, o.Scale, cfg, varGran)
					if err != nil {
						return err
					}
				}
				breakdownRow(tw, label, r, base.Result.ParallelCycles)
			}
		}
	}
	return tw.Flush()
}

// Fig4 reproduces Figure 4 (default 64-byte granularity).
func Fig4(o Options, w io.Writer) error {
	return figBreakdown(o, w, apps.Names, false)
}

// Fig5 reproduces Figure 5 (the Table 2 variable-granularity hints).
func Fig5(o Options, w io.Writer) error {
	return figBreakdown(o, w, table2Apps(), true)
}

// Fig6 reproduces Figure 6: the number of misses, classified by request
// type (read/write/upgrade) and hop count (2/3), for SMP-Shasta clusterings
// of 2 and 4, normalized to Base-Shasta (=100).
func Fig6(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app/procs\trun\ttotal%\trd2\trd3\twr2\twr3\tup2\tup3")
	for _, name := range names {
		for _, procs := range []int{8, 16} {
			fmt.Fprintf(tw, "%s @%dp\n", name, procs)
			base, err := runApp(name, o.Scale, baseConfig(procs), false)
			if err != nil {
				return err
			}
			baseTotal := base.Result.Stats.TotalMisses()
			row := func(label string, r apps.RunResult) {
				st := r.Result.Stats
				total := st.TotalMisses()
				normPct := 0.0
				if baseTotal > 0 {
					normPct = 100 * float64(total) / float64(baseTotal)
				}
				fmt.Fprintf(tw, "\t%s\t%.0f", label, normPct)
				for _, k := range []stats.MissKind{stats.ReadMiss, stats.WriteMiss, stats.UpgradeMiss} {
					for _, h := range []int{2, 3} {
						fmt.Fprintf(tw, "\t%d", st.MissesBy(k, h))
					}
				}
				fmt.Fprintln(tw)
			}
			row("Base", base)
			for _, cl := range []int{2, 4} {
				cfg := baseConfig(procs)
				cfg.Clustering = cl
				r, err := runApp(name, o.Scale, cfg, false)
				if err != nil {
					return err
				}
				row(fmt.Sprintf("SMP C%d", cl), r)
			}
		}
	}
	return tw.Flush()
}

// Fig7 reproduces Figure 7: protocol messages classified as remote (between
// nodes), local (within a node, excluding downgrades) and downgrade
// messages, for clusterings 2 and 4, normalized to Base-Shasta.
func Fig7(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app/procs\trun\ttotal%\tremote\tlocal\tdowngrade")
	for _, name := range names {
		for _, procs := range []int{8, 16} {
			fmt.Fprintf(tw, "%s @%dp\n", name, procs)
			base, err := runApp(name, o.Scale, baseConfig(procs), false)
			if err != nil {
				return err
			}
			baseTotal := base.Result.Stats.TotalMessages()
			row := func(label string, r apps.RunResult) {
				st := r.Result.Stats
				normPct := 0.0
				if baseTotal > 0 {
					normPct = 100 * float64(st.TotalMessages()) / float64(baseTotal)
				}
				fmt.Fprintf(tw, "\t%s\t%.0f\t%d\t%d\t%d\n", label, normPct,
					st.MessagesBy(stats.RemoteMsg), st.MessagesBy(stats.LocalMsg),
					st.MessagesBy(stats.DowngradeMsg))
			}
			row("Base", base)
			for _, cl := range []int{2, 4} {
				cfg := baseConfig(procs)
				cfg.Clustering = cl
				r, err := runApp(name, o.Scale, cfg, false)
				if err != nil {
					return err
				}
				row(fmt.Sprintf("SMP C%d", cl), r)
			}
		}
	}
	return tw.Flush()
}

// Fig8 reproduces Figure 8: for 8- and 16-processor SMP-Shasta runs with
// clustering 4, the percentage of block downgrades that required 0, 1, 2
// and 3 downgrade messages. Most applications should need 0 or 1 for the
// large majority of downgrades; the Waters are the paper's exceptions
// (migratory molecule records touched by every processor of a node).
func Fig8(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tprocs\tdowngrades\t0 msgs\t1 msg\t2 msgs\t3 msgs")
	for _, name := range names {
		for _, procs := range []int{8, 16} {
			cfg := baseConfig(procs)
			cfg.Clustering = 4
			r, err := runApp(name, o.Scale, cfg, false)
			if err != nil {
				return err
			}
			frac, total := r.Result.Stats.DowngradeDistribution()
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\n",
				name, procs, total,
				frac[0]*100, frac[1]*100, frac[2]*100, frac[3]*100)
		}
	}
	return tw.Flush()
}
