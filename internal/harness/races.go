package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// Races is the race-detection injection experiment: it runs the synthetic
// Racy workload (internal/apps) in every injection mode — clean, dropped
// lock, reordered publish — under Base-Shasta at 8 processors, feeds each
// run's trace to the happens-before detector, and verifies the detector's
// verdict against the known ground truth: zero races on the clean run, at
// least one on each injected one. A verdict mismatch is an experiment
// error, so CI fails loudly on detector regressions in either direction.
//
// Base-Shasta (clustering 1) is deliberate: within an SMP node, hardware
// sharing never becomes protocol events, so under clustering an injected
// access can be invisible to the trace (the soundness caveat in
// OBSERVABILITY.md).
//
// Options.InjectRace restricts the run to one mode (shastabench
// -inject-race). With -obsv, each mode emits TRACE_races_<mode>.jsonl and
// its detector report as RACES_<mode>.txt.
func Races(o Options, w io.Writer) error {
	o = o.WithDefaults()
	modes := apps.RacyInjectModes
	if o.InjectRace != "" {
		found := false
		for _, m := range modes {
			if m == o.InjectRace {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("harness: unknown -inject-race mode %q (want one of %v)",
				o.InjectRace, apps.RacyInjectModes)
		}
		modes = []string{o.InjectRace}
	}
	for _, mode := range modes {
		cfg := baseConfig(8)
		cfg.Parallel = parallel
		col := &shasta.CollectorTracer{}
		r, err := apps.ExecuteObserved(apps.NewRacy(o.Scale, mode), cfg, false, col)
		if err != nil {
			return fmt.Errorf("harness: races inject=%s: %w", mode, err)
		}
		rep, err := obsv.DetectRaces(col.Events)
		if err != nil {
			return fmt.Errorf("harness: races inject=%s: detector: %w", mode, err)
		}
		if mode == "none" && len(rep.Races) != 0 {
			return fmt.Errorf("harness: races inject=none: detector reports %d races on a clean run:\n%s",
				len(rep.Races), rep.Format())
		}
		if mode != "none" && len(rep.Races) == 0 {
			return fmt.Errorf("harness: races inject=%s: detector missed the injected race:\n%s",
				mode, rep.Format())
		}
		fmt.Fprintf(w, "inject=%-15s %d events, %d cycles -> %s",
			mode, len(col.Events), r.Result.ParallelCycles, rep.Format())
		if obsvDir != "" {
			if err := writeRacesArtifacts(mode, col.Events, rep); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(w, "detector verdicts match ground truth for all %d modes\n", len(modes))
	return nil
}

// writeRacesArtifacts emits one mode's trace and detector report into the
// observability directory, for the CI artifact.
func writeRacesArtifacts(mode string, events []protocol.TraceEvent, rep *obsv.RaceReport) error {
	tf, err := os.Create(filepath.Join(obsvDir, "TRACE_races_"+mode+".jsonl"))
	if err != nil {
		return err
	}
	if err := obsv.WriteHeader(tf); err != nil {
		tf.Close()
		return err
	}
	for _, e := range events {
		if err := obsv.WriteEvent(tf, e); err != nil {
			tf.Close()
			return err
		}
	}
	if err := tf.Close(); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(obsvDir, "RACES_"+mode+".txt"),
		[]byte(rep.Format()), 0o644)
}
