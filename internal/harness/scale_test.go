package harness

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec     string
		ppn, npg int
		err      bool
	}{
		{"", 0, 0, false},
		{"4x4", 4, 4, false},
		{"8x2", 8, 2, false},
		{"8", 8, -1, false},
		{"4x1", 4, -1, false}, // explicit flat
		{"x4", 0, 0, true},
		{"4x", 0, 0, true},
		{"4x4x4", 0, 0, true},
		{"0x4", 0, 0, true},
		{"ax4", 0, 0, true},
	}
	for _, c := range cases {
		ppn, npg, err := parseTopology(c.spec)
		if (err != nil) != c.err {
			t.Errorf("parseTopology(%q) error = %v, want error %v", c.spec, err, c.err)
			continue
		}
		if err == nil && (ppn != c.ppn || npg != c.npg) {
			t.Errorf("parseTopology(%q) = (%d, %d), want (%d, %d)", c.spec, ppn, npg, c.ppn, c.npg)
		}
	}
}

func TestScaleConfigDefaults(t *testing.T) {
	if cfg := scaleConfig(16, 0, 0); cfg.NodesPerGroup != 0 || cfg.Clustering != 4 {
		t.Errorf("16-proc default config = %+v, want flat clustering 4", cfg)
	}
	if cfg := scaleConfig(64, 0, 0); cfg.NodesPerGroup != 4 {
		t.Errorf("64-proc default config = %+v, want 4 nodes per group", cfg)
	}
	if cfg := scaleConfig(64, 0, -1); cfg.NodesPerGroup != 0 {
		t.Errorf("explicit flat override ignored: %+v", cfg)
	}
	if cfg := scaleConfig(64, 8, 2); cfg.ProcsPerNode != 8 || cfg.NodesPerGroup != 2 {
		t.Errorf("topology override ignored: %+v", cfg)
	}
}

func TestTopologyName(t *testing.T) {
	if got := topologyName(shasta.Config{Procs: 16}); got != "4n flat" {
		t.Errorf("flat name = %q", got)
	}
	if got := topologyName(shasta.Config{Procs: 64, NodesPerGroup: 4}); got != "4n x 4g" {
		t.Errorf("hierarchical name = %q", got)
	}
}

// TestScaleExperimentSmoke runs the scale experiment at one small
// processor count and checks the report, the bit-identity enforcement
// path, and the snapshot file it writes.
func TestScaleExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three schedulers")
	}
	snap := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	err := Scale(Options{Procs: 8, SnapshotPath: snap, BenchLabel: "test"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LU", "8", "serial", "adaptive", "yes", "snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	s, err := ReadBenchSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "test" || len(s.Scenarios) != 3 {
		t.Fatalf("snapshot label %q with %d scenarios, want test/3", s.Label, len(s.Scenarios))
	}
	for _, sc := range s.Scenarios {
		if sc.WallNs <= 0 || sc.Cycles <= 0 || sc.Procs != 8 {
			t.Errorf("implausible scenario %+v", sc)
		}
	}
	if s.Scenarios[0].Cycles != s.Scenarios[1].Cycles || s.Scenarios[0].Cycles != s.Scenarios[2].Cycles {
		t.Error("schedulers disagree on cycles in snapshot")
	}
}

func TestCompareBenchSnapshots(t *testing.T) {
	old := &BenchSnapshot{
		Schema: BenchSchema, Label: "old", CalibrationNs: 100,
		Scenarios: []BenchScenario{
			{Name: "a", WallNs: 1000, Cycles: 5, Checksum: 1.5},
			{Name: "b", WallNs: 1000, Cycles: 5, Checksum: 1.5},
			{Name: "c", WallNs: 1000, Cycles: 5, Checksum: 1.5},
			{Name: "gone", WallNs: 1000, Cycles: 5, Checksum: 1.5},
		},
	}
	// New host is 2x faster (calibration 50), so equal normalized
	// performance means wall 500.
	new := &BenchSnapshot{
		Schema: BenchSchema, Label: "new", CalibrationNs: 50,
		Scenarios: []BenchScenario{
			{Name: "a", WallNs: 520, Cycles: 5, Checksum: 1.5}, // +4%: ok
			{Name: "b", WallNs: 600, Cycles: 5, Checksum: 1.5}, // +20%: regressed
			{Name: "c", WallNs: 500, Cycles: 6, Checksum: 1.5}, // diverged
			{Name: "new", WallNs: 500, Cycles: 5, Checksum: 1.5},
		},
	}
	cmp := CompareBenchSnapshots(old, new, 0.10)
	if len(cmp.Regressed) != 1 || cmp.Regressed[0] != "b" {
		t.Errorf("Regressed = %v, want [b]", cmp.Regressed)
	}
	if len(cmp.Diverged) != 1 || cmp.Diverged[0] != "c" {
		t.Errorf("Diverged = %v, want [c]", cmp.Diverged)
	}
	for _, want := range []string{"REGRESSED", "DIVERGED", "new scenario", "missing from new snapshot"} {
		if !strings.Contains(cmp.Report, want) {
			t.Errorf("report missing %q:\n%s", want, cmp.Report)
		}
	}
}

func TestReadBenchSnapshotRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	s := &BenchSnapshot{Schema: "other/v9", Label: "x", CalibrationNs: 1}
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchSnapshot(path); err == nil {
		t.Fatal("wrong-schema snapshot accepted")
	}
}
