package harness

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/apps"
)

// MicroDowngradeLatency measures the latency of a remote read request when
// the owning node must perform 0, 1, 2 or 3 downgrades, reproducing the
// Section 4.4 microbenchmark (the paper measures roughly +10 us for the
// first downgrade and +5 us for each additional one). It returns the
// latencies in microseconds indexed by downgrade count.
func MicroDowngradeLatency() ([4]float64, error) {
	var out [4]float64
	for k := 0; k <= 3; k++ {
		c, err := shasta.NewCluster(shasta.Config{Procs: 8, Clustering: 4})
		if err != nil {
			return out, err
		}
		// Home the block away from both the owning group and the
		// reader so the request path is always home -> owner forward.
		blk := c.AllocPlaced(64, 64, 7)
		kk := k
		res := c.Run(func(p *shasta.Proc) {
			// Processor 0 takes the block exclusive; processors 1..k
			// also store to it so their private state tables show
			// exclusive and they must be sent downgrade messages.
			if p.ID() == 0 {
				p.StoreF64(blk, 1.0)
			}
			p.Barrier()
			if p.ID() >= 1 && p.ID() <= kk {
				p.StoreF64(blk, float64(p.ID()))
			}
			p.Barrier()
			if p.ID() == 0 {
				p.ResetStats()
			}
			p.Barrier()
			if p.ID() == 4 {
				_ = p.LoadF64(blk)
			}
			p.Barrier()
		})
		out[k] = res.Stats.AvgReadLatencyMicros()
	}
	return out, nil
}

// Micro renders the downgrade-latency microbenchmark, plus the base fetch
// latencies the paper quotes (about 20 us for a remote two-hop fetch and
// 11 us within a node under Base-Shasta).
func Micro(o Options, w io.Writer) error {
	lat, err := MicroDowngradeLatency()
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "downgrades\tread latency (us)\tdelta (us)")
	for k, l := range lat {
		delta := 0.0
		if k > 0 {
			delta = l - lat[k-1]
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%+.1f\n", k, l, delta)
	}
	remote, local, err := FetchLatencies()
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "\nremote 2-hop 64B fetch\t%.1f us (paper: ~20)\n", remote)
	fmt.Fprintf(tw, "intra-node 64B fetch\t%.1f us (paper: ~11)\n", local)
	return tw.Flush()
}

// FetchLatencies measures the Base-Shasta remote (two-hop) and intra-node
// 64-byte fetch latencies.
func FetchLatencies() (remote, local float64, err error) {
	measure := func(procs, reader int) (float64, error) {
		c, err := shasta.NewCluster(shasta.Config{Procs: procs, Clustering: 1})
		if err != nil {
			return 0, err
		}
		blk := c.AllocPlaced(64, 64, 0)
		res := c.Run(func(p *shasta.Proc) {
			p.Barrier()
			if p.ID() == 0 {
				p.ResetStats()
			}
			p.Barrier()
			if p.ID() == reader {
				_ = p.LoadF64(blk)
			}
			p.Barrier()
		})
		return res.Stats.AvgReadLatencyMicros(), nil
	}
	remote, err = measure(8, 4)
	if err != nil {
		return 0, 0, err
	}
	local, err = measure(4, 1)
	return remote, local, err
}

// ANL reproduces the Section 4.3 comparison: all applications on a single
// 4-processor SMP, hardware-coherent (the efficient ANL-macro baseline)
// versus SMP-Shasta with clustering 4 (communication via hardware shared
// memory; protocol entered only for synchronization and private state
// upgrades). The paper measures SMP-Shasta an average of 12.7% slower,
// mostly due to the inline checking overhead.
func ANL(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tHW 4p speedup\tSMP-Shasta 4p speedup\tSMP slower by")
	var sum float64
	for _, name := range names {
		seq, err := seqCycles(name, o.Scale)
		if err != nil {
			return err
		}
		hw, err := runApp(name, o.Scale, shasta.Config{Procs: 4, Clustering: 4, Hardware: true}, false)
		if err != nil {
			return err
		}
		smp, err := runApp(name, o.Scale, shasta.Config{Procs: 4, Clustering: 4}, false)
		if err != nil {
			return err
		}
		slower := float64(smp.Result.ParallelCycles)/float64(hw.Result.ParallelCycles) - 1
		sum += slower
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\n", name,
			speedup(seq, hw.Result.ParallelCycles),
			speedup(seq, smp.Result.ParallelCycles),
			pct(slower))
	}
	fmt.Fprintf(tw, "average\t\t\t%s (paper: 12.7%%)\n", pct(sum/float64(len(names))))
	return tw.Flush()
}
