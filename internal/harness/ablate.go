package harness

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/apps"
	"repro/internal/stats"
)

// Ablate runs the design-choice ablations DESIGN.md calls out, on the two
// workloads that exercise them hardest:
//
//   - line size 64 vs 128 bytes (the paper's two supported line sizes);
//   - ShareDirectory (colocated home requests through shared memory);
//   - FastSync (hierarchical SMP barriers);
//   - BroadcastDowngrades (SoftFLASH-style shootdowns vs the private
//     state tables' selective downgrades).
func Ablate(o Options, w io.Writer) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "ablation\tworkload\ttime vs base\tmisses vs base\tmessages vs base\tdg msgs vs base")

	type variant struct {
		name string
		app  string
		mod  func(*shasta.Config)
	}
	variants := []variant{
		{"128B lines", "Ocean", func(c *shasta.Config) { c.LineSize = 128 }},
		{"128B lines", "Water-Nsq", func(c *shasta.Config) { c.LineSize = 128 }},
		{"ShareDirectory", "Ocean", func(c *shasta.Config) { c.ShareDirectory = true }},
		{"FastSync", "Ocean", func(c *shasta.Config) { c.FastSync = true }},
		{"BroadcastDowngrades", "Water-Nsq", func(c *shasta.Config) { c.BroadcastDowngrades = true }},
		{"all extensions", "Ocean", func(c *shasta.Config) {
			c.ShareDirectory = true
			c.FastSync = true
		}},
	}

	ratio := func(a, b int64) string {
		if b == 0 {
			if a == 0 {
				return "1.00x"
			}
			return fmt.Sprintf("+%d", a)
		}
		return fmt.Sprintf("%.2fx", float64(a)/float64(b))
	}

	for _, v := range variants {
		baseCfg := shasta.Config{Procs: 16, Clustering: 4}
		base, err := runApp(v.app, o.Scale, baseCfg, false)
		if err != nil {
			return err
		}
		cfg := baseCfg
		v.mod(&cfg)
		mod, err := apps.Execute(apps.Registry[v.app](o.Scale), cfg, false)
		if err != nil {
			return err
		}
		bs, ms := base.Result.Stats, mod.Result.Stats
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			v.name, v.app,
			ratio(mod.Result.ParallelCycles, base.Result.ParallelCycles),
			ratio(ms.TotalMisses(), bs.TotalMisses()),
			ratio(ms.TotalMessages(), bs.TotalMessages()),
			ratio(ms.MessagesBy(stats.DowngradeMsg), bs.MessagesBy(stats.DowngradeMsg)))
	}
	return tw.Flush()
}
