package harness

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/apps"
)

// Table1 reproduces Table 1: the sequential running time of every
// application and the single-processor slowdown caused by Base-Shasta and
// SMP-Shasta inline miss checks. The paper measures 14.7% average for Base
// and 24.0% for SMP, with Raytrace and the two Waters most affected by the
// costlier SMP floating-point and batch checks.
func Table1(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tproblem size\tsequential\twith Base checks\twith SMP checks")
	var baseSum, smpSum float64
	for _, name := range names {
		seq, err := seqCycles(name, o.Scale)
		if err != nil {
			return err
		}
		base, err := runApp(name, o.Scale, shasta.Config{Procs: 1}, false)
		if err != nil {
			return err
		}
		smp, err := runApp(name, o.Scale, shasta.Config{Procs: 1, ForceSMPChecks: true}, false)
		if err != nil {
			return err
		}
		bOver := float64(base.Result.ParallelCycles)/float64(seq) - 1
		sOver := float64(smp.Result.ParallelCycles)/float64(seq) - 1
		baseSum += bOver
		smpSum += sOver
		prob := apps.Registry[name](o.Scale).ProblemSize()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s (%s)\t%s (%s)\n",
			name, prob, secs(seq),
			secs(base.Result.ParallelCycles), pct(bOver),
			secs(smp.Result.ParallelCycles), pct(sOver))
	}
	fmt.Fprintf(tw, "average\t\t\t%s\t%s\n",
		pct(baseSum/float64(len(names))), pct(smpSum/float64(len(names))))
	return tw.Flush()
}

// table2Entries describes the per-structure granularity hints of Table 2.
var table2Entries = []struct {
	App       string
	Structure string
	BlockSize int
}{
	{"Barnes", "cell, leaf arrays", 512},
	{"FMM", "box array", 256},
	{"LU", "matrix array", 128},
	{"LU-Contig", "matrix block", 2048},
	{"Volrend", "opacity, normal maps", 1024},
	{"Water-Nsq", "molecule array", 2048},
}

// table2Apps lists Table 2's applications in order.
func table2Apps() []string {
	out := make([]string, len(table2Entries))
	for i, e := range table2Entries {
		out[i] = e.App
	}
	return out
}

// Table2 reproduces Table 2: for the six applications whose key structures
// get larger coherence blocks, the 16-processor Base-Shasta speedup with
// the default 64-byte blocks versus the specified granularity. Variable
// granularity must improve every application's speedup.
func Table2(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, table2Apps())
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tselected structure(s)\tblock size\t16p speedup (64B)\t16p speedup (specified)")
	for _, e := range table2Entries {
		found := false
		for _, n := range names {
			if n == e.App {
				found = true
			}
		}
		if !found {
			continue
		}
		seq, err := seqCycles(e.App, o.Scale)
		if err != nil {
			return err
		}
		def, err := runApp(e.App, o.Scale, baseConfig(16), false)
		if err != nil {
			return err
		}
		vg, err := runApp(e.App, o.Scale, baseConfig(16), true)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.2f\n",
			e.App, e.Structure, e.BlockSize,
			speedup(seq, def.Result.ParallelCycles),
			speedup(seq, vg.Result.ParallelCycles))
	}
	return tw.Flush()
}

// table3Apps are the seven applications of Table 3.
var table3Apps = []string{"Barnes", "FMM", "LU", "LU-Contig", "Ocean", "Water-Nsq", "Water-Sp"}

// Table3 reproduces Table 3: larger problem sizes (double the default
// scale), with sequential times, checking overheads, and 16-processor
// speedups for Base-Shasta and SMP-Shasta with clustering 4. Speedups must
// improve over the smaller problems of Table 2 / Figure 3, and SMP-Shasta
// should still win for most applications.
func Table3(o Options, w io.Writer) error {
	o = o.WithDefaults()
	scale := o.Scale * 2
	names := appList(o, table3Apps)
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tproblem size\tsequential\tbase ovh\tsmp ovh\t16p speedup base\t16p speedup smp")
	for _, name := range names {
		seq, err := seqCycles(name, scale)
		if err != nil {
			return err
		}
		baseChk, err := runApp(name, scale, shasta.Config{Procs: 1}, false)
		if err != nil {
			return err
		}
		smpChk, err := runApp(name, scale, shasta.Config{Procs: 1, ForceSMPChecks: true}, false)
		if err != nil {
			return err
		}
		base16, err := runApp(name, scale, baseConfig(16), false)
		if err != nil {
			return err
		}
		smp16, err := runApp(name, scale, smpConfig(16), false)
		if err != nil {
			return err
		}
		prob := apps.Registry[name](scale).ProblemSize()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.2f\t%.2f\n",
			name, prob, secs(seq),
			pct(float64(baseChk.Result.ParallelCycles)/float64(seq)-1),
			pct(float64(smpChk.Result.ParallelCycles)/float64(seq)-1),
			speedup(seq, base16.Result.ParallelCycles),
			speedup(seq, smp16.Result.ParallelCycles))
	}
	return tw.Flush()
}
