package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
	"repro/internal/stats"
)

// sharingLineSizes are the two coherence granularities the sharing
// experiment contrasts: the paper's default 64-byte line against 256-byte
// lines, the size at which it reports false sharing hurting LU, Ocean and
// Volrend.
var sharingLineSizes = [2]int{64, 256}

// Sharing runs each selected application at two line sizes under SMP-Shasta
// at 8 processors and prints the sharing observatory's diagnosis of the
// coarse-grained run next to the measured execution-time delta: the pattern
// census, the falsely-shared block evidence, and the placement advisor's
// recommendations. A correct diagnosis attributes the coarse-line slowdown
// to blocks the observatory flags, without re-running the application.
//
// When observability emission is enabled (shastabench -obsv), each run's
// metrics snapshot is written as BENCH_sharing_<app>_l<linesize>.json.
func Sharing(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	if len(o.Apps) == 0 {
		names = []string{"LU"}
	}
	for _, name := range names {
		f, ok := apps.Registry[name]
		if !ok {
			return fmt.Errorf("harness: unknown application %q", name)
		}
		var cycles [2]int64
		var coarse *shasta.Metrics
		for i, ls := range sharingLineSizes {
			cfg := smpConfig(8)
			cfg.LineSize = ls
			r, err := apps.ExecuteObserved(f(o.Scale), cfg, false, nil)
			if err != nil {
				return err
			}
			cycles[i] = r.Metrics.Cycles
			coarse = r.Metrics
			if obsvDir != "" {
				if err := writeSharingMetrics(name, ls, r.Metrics); err != nil {
					return err
				}
			}
		}
		delta := 0.0
		if cycles[0] > 0 {
			delta = 100 * float64(cycles[1]-cycles[0]) / float64(cycles[0])
		}
		fmt.Fprintf(w, "%s @8p C4: %dB lines %d cycles, %dB lines %d cycles (measured delta %+.1f%%)\n",
			name, sharingLineSizes[0], cycles[0], sharingLineSizes[1], cycles[1], delta)

		census := map[string]int64{}
		falselyShared := 0
		for i := range coarse.Blocks {
			census[coarse.Blocks[i].Pattern]++
			if coarse.Blocks[i].Pattern == obsv.PatternFalselyShared {
				falselyShared++
			}
		}
		fmt.Fprintf(w, "observatory @%dB: %d active blocks (%d recorded)", sharingLineSizes[1],
			coarse.BlocksTotal, len(coarse.Blocks))
		for _, p := range stats.SortedKeys(census) {
			fmt.Fprintf(w, "; %s %d", p, census[p])
		}
		fmt.Fprintln(w)
		// Reports show the hottest few blocks; shastatrace falseshare and
		// advise on the emitted BENCH_sharing_*.json files give the rest.
		trimmed := *coarse
		if len(trimmed.Blocks) > 12 {
			trimmed.Blocks = trimmed.Blocks[:12]
			fmt.Fprintf(w, "(reports below cover the 12 hottest of %d recorded blocks)\n", len(coarse.Blocks))
		}
		if falselyShared > 0 {
			fmt.Fprint(w, obsv.FormatFalseShare(&trimmed))
		}
		fmt.Fprint(w, obsv.FormatAdvice(&trimmed))
	}
	return nil
}

// writeSharingMetrics emits one line-size run's metrics snapshot into the
// observability directory, for the CI artifact.
func writeSharingMetrics(app string, lineSize int, m *shasta.Metrics) error {
	path := filepath.Join(obsvDir, fmt.Sprintf("BENCH_sharing_%s_l%d.json", app, lineSize))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
