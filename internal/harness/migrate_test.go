package harness

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestMigrateExperimentSmoke runs the migrate experiment end to end and
// checks the report, the cycle-reduction enforcement path (Migrate itself
// errors if either fixture fails to improve), and the snapshot it writes.
// It also re-runs against the snapshot it just wrote through benchgate's
// comparison, which must come back all-equal — the determinism the
// committed BENCH_migrate.json gate in CI relies on.
func TestMigrateExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both fixtures twice")
	}
	snap := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	if err := Migrate(Options{SnapshotPath: snap, BenchLabel: "test"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hot3hop", "LU256", "saved", "snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	s, err := ReadBenchSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "test" || len(s.Scenarios) != 4 {
		t.Fatalf("snapshot label %q with %d scenarios, want test/4", s.Label, len(s.Scenarios))
	}
	byName := map[string]BenchScenario{}
	for _, sc := range s.Scenarios {
		if sc.WallNs <= 0 || sc.Cycles <= 0 {
			t.Errorf("implausible scenario %+v", sc)
		}
		byName[sc.Name] = sc
	}
	for _, fx := range []string{"hot3hop", "LU256"} {
		off, on := byName["migrate/"+fx+"/off"], byName["migrate/"+fx+"/on"]
		if off.Cycles == 0 || on.Cycles == 0 {
			t.Fatalf("%s: missing off/on scenarios in %v", fx, byName)
		}
		if on.Cycles >= off.Cycles {
			t.Errorf("%s: migration did not reduce cycles (%d off, %d on)", fx, off.Cycles, on.Cycles)
		}
		if off.Checksum != on.Checksum {
			t.Errorf("%s: migration changed the checksum (%v off, %v on)", fx, off.Checksum, on.Checksum)
		}
	}

	// A second run must reproduce the snapshot's cycles and checksums
	// exactly (wall times differ; the comparison normalizes them).
	var buf2 bytes.Buffer
	snap2 := filepath.Join(t.TempDir(), "BENCH_test2.json")
	if err := Migrate(Options{SnapshotPath: snap2, BenchLabel: "test2"}, &buf2); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadBenchSnapshot(snap2)
	if err != nil {
		t.Fatal(err)
	}
	cmp := CompareBenchSnapshots(s, s2, 100) // generous wall tolerance: only cycles/checksums matter here
	if len(cmp.Diverged) != 0 {
		t.Errorf("rerun diverged on %v:\n%s", cmp.Diverged, cmp.Report)
	}
}
