package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestExperimentRegistry(t *testing.T) {
	wantIDs := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "micro", "anl", "ablate", "profile", "pdes",
		"sharing", "races", "scale", "tail", "migrate", "contention"}
	if len(Experiments) != len(wantIDs) {
		t.Fatalf("have %d experiments, want %d", len(Experiments), len(wantIDs))
	}
	for _, id := range wantIDs {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %q missing", id)
			continue
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted an unknown id")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale != 1 {
		t.Fatalf("default scale = %d, want 1", o.Scale)
	}
}

// TestTable1SingleApp runs the checking-overhead experiment for one small
// application and checks the report structure and the Base <= SMP ordering.
func TestTable1SingleApp(t *testing.T) {
	var buf bytes.Buffer
	err := Table1(Options{Scale: 1, Apps: []string{"Volrend"}}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Volrend", "sequential", "Base checks", "SMP checks", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMicroLatencies(t *testing.T) {
	lat, err := MicroDowngradeLatency()
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 4; k++ {
		if lat[k] <= lat[k-1] {
			t.Errorf("latency with %d downgrades (%.1f) not above %d (%.1f)",
				k, lat[k], k-1, lat[k-1])
		}
	}
	remote, local, err := FetchLatencies()
	if err != nil {
		t.Fatal(err)
	}
	if remote < 14 || remote > 26 {
		t.Errorf("remote fetch = %.1f us, want ~20", remote)
	}
	if local < 7 || local > 15 {
		t.Errorf("local fetch = %.1f us, want ~11", local)
	}
}

// TestFig8SingleApp checks the downgrade-distribution report for the
// migratory outlier shape on Water-Nsq.
func TestFig8SingleApp(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(Options{Scale: 1, Apps: []string{"Water-Nsq"}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Water-Nsq") {
		t.Fatalf("report missing app:\n%s", buf.String())
	}
}

// TestProfileSingleApp checks the per-processor measured breakdown report:
// eight rows per app, each with the exact parallel time in the last column.
func TestProfileSingleApp(t *testing.T) {
	var buf bytes.Buffer
	if err := Profile(Options{Scale: 1, Apps: []string{"Volrend"}}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Volrend @8p C4", "dgrade*%", "p0", "p7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestSharingSingleApp checks the sharing-observatory report structure:
// the two line-size runs with a measured delta, and the pattern census.
func TestSharingSingleApp(t *testing.T) {
	var buf bytes.Buffer
	if err := Sharing(Options{Scale: 1, Apps: []string{"Volrend"}}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Volrend @8p C4", "64B lines", "256B lines", "measured delta", "observatory @256B", "active blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRacesExperiment runs the injection experiment end to end: all three
// modes must match ground truth, the report must carry each verdict, and
// the artifacts must land in the observability directory.
func TestRacesExperiment(t *testing.T) {
	dir := t.TempDir()
	SetObsvDir(dir)
	defer SetObsvDir("")
	var buf bytes.Buffer
	if err := Races(Options{Scale: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"inject=none", "ok: no data races",
		"inject=drop-lock", "inject=reorder-publish", "RACES:",
		"verdicts match ground truth for all 3 modes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{
		"TRACE_races_none.jsonl", "RACES_none.txt",
		"TRACE_races_drop-lock.jsonl", "RACES_drop-lock.txt",
		"TRACE_races_reorder-publish.jsonl", "RACES_reorder-publish.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

// TestRacesExperimentSingleMode pins the -inject-race knob: one mode runs,
// unknown modes are rejected.
func TestRacesExperimentSingleMode(t *testing.T) {
	var buf bytes.Buffer
	if err := Races(Options{Scale: 1, InjectRace: "drop-lock"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "inject=drop-lock") || strings.Contains(out, "inject=none") {
		t.Errorf("single-mode report wrong:\n%s", out)
	}
	if err := Races(Options{Scale: 1, InjectRace: "frobnicate"}, &buf); err == nil {
		t.Error("unknown injection mode accepted")
	}
}

func TestAppFilter(t *testing.T) {
	got := appList(Options{Apps: []string{"LU", "Nope"}}, []string{"Barnes", "LU", "Ocean"})
	if len(got) != 1 || got[0] != "LU" {
		t.Fatalf("appList = %v, want [LU]", got)
	}
	all := appList(Options{}, []string{"a", "b"})
	if len(all) != 2 {
		t.Fatalf("empty filter should keep defaults, got %v", all)
	}
}

func TestRunCaching(t *testing.T) {
	ResetCache()
	r1, err := runApp("Volrend", 1, shasta.Config{Procs: 4, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runApp("Volrend", 1, shasta.Config{Procs: 4, Clustering: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Result.Stats != r2.Result.Stats {
		t.Fatal("second identical run was not served from the cache")
	}
	if _, err := runApp("NotAnApp", 1, shasta.Config{Procs: 4}, false); err == nil {
		t.Fatal("unknown application accepted")
	}
}

func TestHelpers(t *testing.T) {
	if speedup(100, 50) != 2 {
		t.Error("speedup wrong")
	}
	if speedup(100, 0) != 0 {
		t.Error("speedup should guard division by zero")
	}
	if pct(0.125) != "12.5%" {
		t.Errorf("pct = %q", pct(0.125))
	}
	if secs(300e6) != "1.0000s" {
		t.Errorf("secs = %q", secs(300e6))
	}
	if smpConfig(2).Clustering != 2 || smpConfig(16).Clustering != 4 {
		t.Error("smpConfig clustering selection wrong")
	}
	if baseConfig(8).Clustering != 1 {
		t.Error("baseConfig clustering wrong")
	}
}
