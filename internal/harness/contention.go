package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
)

// contentionFixtures are the contention experiment's workloads: Water-Nsq
// (per-molecule locks plus barriers — the lock-heaviest application) and LU
// (barrier-only, so its synchronization cost is pure barrier skew). Both
// run at 8 and at 64 processors; 64 is where the flat barrier's serialized
// release fan-out hurts.
var contentionFixtures = []struct {
	app   string
	procs []int
}{
	{"Water-Nsq", []int{8, 64}},
	{"LU", []int{8, 64}},
}

// contentionRun is one measured cell of the experiment.
type contentionRun struct {
	cycles     int64 // end-to-end measured parallel cycles
	barMsgs    int64 // BarArrive + BarGo sends in the trace
	departSkew int64 // total barrier departure skew over generations
	arriveSkew int64 // total barrier arrival skew over generations
	gens       int   // barrier generations observed
	ss         *obsv.SyncSet
	result     apps.RunResult
	wall       time.Duration
}

// contentionConfig builds the cell's configuration: SMP nodes of 4, and at
// 64 processors the hierarchical uplink topology plus the heap the larger
// runs need (matching the scale experiment's arrangement).
func contentionConfig(procs int, fastSync bool) shasta.Config {
	cfg := shasta.Config{Procs: procs, Clustering: 4, FastSync: fastSync}
	if procs > 16 {
		cfg.NodesPerGroup = 4
		cfg.HeapBytes = 4 << 20
	}
	return cfg
}

// execContention runs one cell with a trace collector and derives the sync
// observatory's measurements from the trace.
func execContention(o Options, app string, procs int, fastSync bool) (contentionRun, error) {
	cfg := contentionConfig(procs, fastSync)
	cfg.Parallel = parallel
	col := &shasta.CollectorTracer{}
	start := time.Now()
	r, err := apps.ExecuteObserved(apps.Registry[app](o.Scale), cfg, false, col)
	if err != nil {
		return contentionRun{}, fmt.Errorf("harness: contention: %s p%d: %w", app, procs, err)
	}
	c := contentionRun{result: r, wall: time.Since(start), cycles: r.Result.ParallelCycles}
	for _, e := range col.Events {
		if e.Op == "send" && (e.Msg == "BarArrive" || e.Msg == "BarGo") {
			c.barMsgs++
		}
	}
	c.ss = obsv.BuildSync(col.Events)
	if c.ss.Gapped || c.ss.DroppedTotal() != 0 {
		return contentionRun{}, fmt.Errorf("harness: contention: %s p%d: complete trace degraded (gapped=%v dropped=%v)",
			app, procs, c.ss.Gapped, c.ss.Dropped)
	}
	c.gens = len(c.ss.Gens)
	for i := range c.ss.Gens {
		g := &c.ss.Gens[i]
		c.departSkew += g.DepartSkew()
		c.arriveSkew += g.ArriveSkew()
	}
	return c, nil
}

// writeContentionFiles emits the cell's observability artifacts: the full
// metrics snapshot as BENCH_contention_<cell>.json plus the sync and skew
// reports as SYNC_<cell>.txt and SKEW_<cell>.txt.
func writeContentionFiles(name string, c contentionRun) error {
	mf, err := os.Create(filepath.Join(obsvDir, "BENCH_contention_"+name+".json"))
	if err != nil {
		return err
	}
	if err := c.result.Metrics.WriteJSON(mf); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(obsvDir, "SYNC_"+name+".txt"),
		[]byte(obsv.FormatSync(c.ss, 5)), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(obsvDir, "SKEW_"+name+".txt"),
		[]byte(obsv.FormatSkew(c.ss)), 0o644)
}

// Contention is the synchronization contention observatory's experiment:
// Water-Nsq and LU at 8 and 64 processors, each under the flat centralized
// barrier and the hierarchical FastSync barrier. Every cell's trace feeds
// the sync analyzer; the report gives measured cycles, barrier message
// traffic, and total arrival and departure skew per cell. The experiment
// fails unless the hierarchical barrier wins where it must: fewer barrier
// messages at every processor count, and a smaller total departure skew at
// 64 processors, where the flat barrier serializes 63 release sends through
// the manager (the hierarchical one sends one per group and releases group
// members through shared memory).
//
// With Options.SnapshotPath set, every cell is written as a shasta-bench/v1
// scenario ("contention/<app>/p<procs>/<flat|hier>") for benchgate
// comparison across commits. With observability emission enabled
// (shastabench -obsv), each cell also writes its metrics snapshot as
// BENCH_contention_<app>_p<procs>_<flat|hier>.json and its sync and skew
// reports as SYNC_*.txt and SKEW_*.txt.
func Contention(o Options, w io.Writer) error {
	o = o.WithDefaults()

	var snap *BenchSnapshot
	if o.SnapshotPath != "" {
		label := o.BenchLabel
		if label == "" {
			label = "local"
		}
		snap = newBenchSnapshot(label)
	}
	sched := "serial"
	if parallel {
		sched = "adaptive"
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "app\tprocs\tbarrier\tcycles\tΔcycles\tbar msgs\tgens\tarrive-skew\tdepart-skew")
	for _, fx := range contentionFixtures {
		if len(appList(o, []string{fx.app})) == 0 {
			continue
		}
		for _, procs := range fx.procs {
			if o.Procs != 0 && o.Procs != procs {
				continue
			}
			var cells [2]contentionRun
			for i, fast := range []bool{false, true} {
				c, err := execContention(o, fx.app, procs, fast)
				if err != nil {
					return err
				}
				cells[i] = c
				mode := "flat"
				if fast {
					mode = "hier"
				}
				delta := ""
				if fast {
					delta = fmt.Sprintf("%+.1f%%", 100*float64(c.cycles-cells[0].cycles)/float64(cells[0].cycles))
				}
				fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\t%d\t%d\t%d\t%d\n",
					fx.app, procs, mode, c.cycles, delta, c.barMsgs, c.gens,
					c.arriveSkew, c.departSkew)
				name := fmt.Sprintf("%s_p%d_%s", fx.app, procs, mode)
				if snap != nil {
					cfg := contentionConfig(procs, fast)
					snap.Scenarios = append(snap.Scenarios, BenchScenario{
						Name:         fmt.Sprintf("contention/%s/p%d/%s", fx.app, procs, mode),
						App:          fx.app,
						Procs:        procs,
						ProcsPerNode: cfg.Clustering,
						Clustering:   cfg.Clustering,
						Scheduler:    sched,
						WallNs:       c.wall.Nanoseconds(),
						Cycles:       c.cycles,
						Checksum:     c.result.Checksum,
					})
				}
				if obsvDir != "" {
					if err := writeContentionFiles(name, c); err != nil {
						return err
					}
				}
			}
			flat, hier := &cells[0], &cells[1]
			if flat.gens == 0 || flat.gens != hier.gens {
				return fmt.Errorf("harness: contention: %s p%d: generation counts differ (flat %d, hier %d)",
					fx.app, procs, flat.gens, hier.gens)
			}
			// The hierarchical barrier's win, asserted in-experiment: one
			// arrival and one release message per group instead of per
			// processor, at every scale.
			if hier.barMsgs >= flat.barMsgs {
				return fmt.Errorf("harness: contention: %s p%d: hierarchical barrier did not reduce barrier messages (%d flat, %d hier)",
					fx.app, procs, flat.barMsgs, hier.barMsgs)
			}
			// And at 64 processors the flat manager's serialized release
			// fan-out must show up as departure skew the hierarchy removes.
			if procs >= 64 && hier.departSkew >= flat.departSkew {
				return fmt.Errorf("harness: contention: %s p%d: hierarchical barrier did not reduce departure skew (%d flat, %d hier)",
					fx.app, procs, flat.departSkew, hier.departSkew)
			}
			fmt.Fprintf(tw, "%s\t%d\tsaved\t\t\t%d\t\t\t%d\n", fx.app, procs,
				flat.barMsgs-hier.barMsgs, flat.departSkew-hier.departSkew)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if snap != nil {
		if err := snap.WriteFile(o.SnapshotPath); err != nil {
			return fmt.Errorf("harness: contention: snapshot: %w", err)
		}
		fmt.Fprintf(w, "snapshot written: %s (label %s, %d scenarios)\n",
			o.SnapshotPath, snap.Label, len(snap.Scenarios))
	}
	return nil
}
