// Package harness regenerates the tables and figures of the paper's
// evaluation (Section 4): the checking-overhead table (Table 1), the
// variable-granularity table (Table 2), the larger-problem table (Table 3),
// the speedup curves (Figure 3), the execution-time breakdowns (Figures 4
// and 5), the miss and message statistics (Figures 6 and 7), the downgrade
// distribution (Figure 8), the downgrade-latency microbenchmark, and the
// hardware-coherent ANL comparison.
//
// Absolute numbers differ from the paper's (the substrate is a calibrated
// simulator and the problem sizes are scaled down), but each experiment
// reports the same rows and series the paper does, so the shapes — who
// wins, by what factor, where crossovers fall — can be compared directly.
// EXPERIMENTS.md records that comparison.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"repro"
	"repro/internal/apps"
)

// Options parameterize an experiment run.
type Options struct {
	// Scale multiplies problem sizes (1 = default experiment inputs).
	Scale int
	// Apps restricts the applications run (nil = the paper's set for
	// that experiment).
	Apps []string
	// InjectRace restricts the races experiment to one injection mode
	// (one of apps.RacyInjectModes; empty runs all modes).
	InjectRace string
	// Procs restricts the scale experiment to one processor count
	// (0 = the full 16-256 sweep).
	Procs int
	// Topology overrides the scale experiment's node arrangement, as
	// "NxG" (N processors per SMP node, G nodes per uplink group) or
	// "N" for a flat interconnect; see parseTopology.
	Topology string
	// SnapshotPath, when set, makes the scale experiment write its
	// measurements as a shasta-bench/v1 snapshot (see PERFORMANCE.md).
	SnapshotPath string
	// BenchLabel names the snapshot ("pr7" for BENCH_pr7.json);
	// defaults to "local".
	BenchLabel string
}

// WithDefaults fills unset options.
func (o Options) WithDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	return o
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the CLI name: "table1" .. "table3", "fig3" .. "fig8",
	// "micro", "anl".
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run executes the experiment, writing its report to w.
	Run func(o Options, w io.Writer) error
}

// Experiments lists every experiment in paper order.
var Experiments = []Experiment{
	{"table1", "Sequential times and checking overheads (Table 1)", Table1},
	{"table2", "Effects of variable block size in Base-Shasta (Table 2)", Table2},
	{"table3", "Execution on larger problem sizes (Table 3)", Table3},
	{"fig3", "Speedups, Base-Shasta vs SMP-Shasta, 1-16 processors (Figure 3)", Fig3},
	{"fig4", "Execution time breakdowns at 8 and 16 processors (Figure 4)", Fig4},
	{"fig5", "Breakdowns with variable granularity (Figure 5)", Fig5},
	{"fig6", "Misses by type and hops vs clustering (Figure 6)", Fig6},
	{"fig7", "Messages by class vs clustering (Figure 7)", Fig7},
	{"fig8", "Downgrade message distribution (Figure 8)", Fig8},
	{"micro", "Read latency vs number of downgrades (Section 4.4)", Micro},
	{"anl", "SMP-Shasta vs hardware-coherent execution on one SMP (Section 4.3)", ANL},
	{"ablate", "Design-choice ablations: line size, shared directory, fast sync, broadcast downgrades", Ablate},
	{"profile", "Per-processor execution-time profile, measured breakdown at 8 processors", Profile},
	{"pdes", "Serial vs parallel simulation scheduler: wall-clock comparison, bit-identity verified", Pdes},
	{"sharing", "Sharing-pattern observatory: block classification and placement advice vs measured line-size delta", Sharing},
	{"races", "Race-detector injection: clean and mis-synchronized runs, detector verdict vs ground truth", Races},
	{"scale", "16-256 processor sweep: hierarchical topologies, scheduler wall-clock, bit-identity at scale", Scale},
	{"tail", "Tail-latency observatory: flat vs hierarchical topology, span-derived p99 and stage attribution", Tail},
	{"migrate", "Online home migration: misplaced blocks re-home to their traffic, off vs on", Migrate},
	{"contention", "Synchronization contention observatory: per-lock/barrier telemetry, flat vs hierarchical barrier", Contention},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runKey memoizes application runs within one process, since several
// experiments share configurations.
type runKey struct {
	app      string
	scale    int
	procs    int
	cluster  int
	hardware bool
	smpChk   bool
	varGran  bool
	migrate  bool
}

var runCache = map[runKey]apps.RunResult{}

// obsvDir, when set, makes every (uncached) application run emit a
// TRACE_<run>.jsonl protocol trace and a BENCH_<run>.json metrics snapshot
// into the directory. Process-global like runCache; shastabench sets it from
// its -obsv flag before running experiments.
var obsvDir string

// SetObsvDir enables trace and metrics emission for subsequent runs into
// dir (empty disables it). See OBSERVABILITY.md for the file formats.
func SetObsvDir(dir string) { obsvDir = dir }

// parallel, when set, runs every subsequent application on the simulator's
// conservative window-based parallel scheduler. By contract the results —
// cycles, statistics, traces, metrics, checksums — are bit-identical to
// serial runs (the pdes experiment verifies this); only host wall-clock
// time changes, so runCache is deliberately shared between the modes.
// Process-global like obsvDir; shastabench sets it from its -parallel flag.
var parallel bool

// SetParallel selects the parallel simulation scheduler for subsequent
// runs (false restores the serial scheduler).
func SetParallel(on bool) { parallel = on }

// migrate, when set, enables online home migration (Config.Migrate) for
// every subsequent application run, so any experiment's tables can be
// regenerated under migration for comparison. Unlike the scheduler choice
// this changes simulated results, so migrated runs get their own runCache
// keys and "_mig"-suffixed observability files. Process-global like
// parallel; shastabench sets it from its -migrate flag.
var migrate bool

// SetMigrate enables online home migration for subsequent runs (false
// restores static homes). Hardware-coherence runs ignore it.
func SetMigrate(on bool) { migrate = on }

// obsvName encodes a run key into the file-name fragment shared by that
// run's trace and metrics files.
func obsvName(key runKey) string {
	name := fmt.Sprintf("%s_s%d_p%d_c%d", key.app, key.scale, key.procs, key.cluster)
	if key.hardware {
		name += "_hw"
	}
	if key.smpChk {
		name += "_smpchk"
	}
	if key.varGran {
		name += "_vg"
	}
	if key.migrate {
		name += "_mig"
	}
	return name
}

// runApp executes (or recalls) one application run.
func runApp(app string, scale int, cfg shasta.Config, varGran bool) (apps.RunResult, error) {
	cfg.Parallel = parallel
	if migrate && !cfg.Hardware && !cfg.ShareDirectory {
		cfg.Migrate = true
	}
	key := runKey{app, scale, cfg.Procs, cfg.Clustering, cfg.Hardware, cfg.ForceSMPChecks, varGran, cfg.Migrate}
	if r, ok := runCache[key]; ok {
		return r, nil
	}
	f, ok := apps.Registry[app]
	if !ok {
		return apps.RunResult{}, fmt.Errorf("harness: unknown application %q", app)
	}
	var r apps.RunResult
	var err error
	if obsvDir != "" {
		r, err = runObserved(key, f(scale), cfg, varGran)
	} else {
		r, err = apps.Execute(f(scale), cfg, varGran)
	}
	if err != nil {
		return apps.RunResult{}, err
	}
	runCache[key] = r
	return r, nil
}

// runObserved executes one run with a trace sink attached and writes the
// trace and metrics files. Cached recalls of the same key skip this — the
// files from the first execution already exist and are identical (the
// simulator is deterministic).
func runObserved(key runKey, w apps.Workload, cfg shasta.Config, varGran bool) (apps.RunResult, error) {
	name := obsvName(key)
	sink, err := shasta.NewTraceSink(filepath.Join(obsvDir, "TRACE_"+name+".jsonl"), shasta.SinkOptions{})
	if err != nil {
		return apps.RunResult{}, err
	}
	r, err := apps.ExecuteObserved(w, cfg, varGran, sink)
	if cerr := sink.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("harness: trace sink: %w", cerr)
	}
	if err != nil {
		return apps.RunResult{}, err
	}
	mf, err := os.Create(filepath.Join(obsvDir, "BENCH_"+name+".json"))
	if err != nil {
		return apps.RunResult{}, err
	}
	if err := r.Metrics.WriteJSON(mf); err != nil {
		mf.Close()
		return apps.RunResult{}, err
	}
	if err := mf.Close(); err != nil {
		return apps.RunResult{}, err
	}
	return r, nil
}

// ResetCache clears memoized runs (tests use it to control determinism
// checks across processes).
func ResetCache() { runCache = map[runKey]apps.RunResult{} }

// seqCycles returns the sequential (no checks) execution time.
func seqCycles(app string, scale int) (int64, error) {
	r, err := runApp(app, scale, shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		return 0, err
	}
	return r.Result.ParallelCycles, nil
}

// baseConfig is a Base-Shasta configuration at the given processor count.
func baseConfig(procs int) shasta.Config {
	return shasta.Config{Procs: procs, Clustering: 1}
}

// smpConfig is an SMP-Shasta configuration: clustering 2 at 2 processors,
// 4 at 4 and above (the paper's choice for Figure 3 and beyond).
func smpConfig(procs int) shasta.Config {
	cl := 4
	if procs < 4 {
		cl = procs
	}
	return shasta.Config{Procs: procs, Clustering: cl}
}

// appList resolves the option's application set against a default.
func appList(o Options, def []string) []string {
	if len(o.Apps) == 0 {
		return def
	}
	var out []string
	allowed := map[string]bool{}
	for _, a := range o.Apps {
		allowed[a] = true
	}
	for _, a := range def {
		if allowed[a] {
			out = append(out, a)
		}
	}
	return out
}

// speedup computes sequential/parallel.
func speedup(seq, par int64) float64 {
	if par == 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// pct formats a ratio-1 as a percentage string.
func pct(over float64) string { return fmt.Sprintf("%.1f%%", over*100) }

// secs formats cycles as virtual seconds at 300 MHz.
func secs(cycles int64) string { return fmt.Sprintf("%.4fs", float64(cycles)/300e6) }

// newTab builds a tabwriter for aligned report columns.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
