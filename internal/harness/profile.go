package harness

import (
	"fmt"
	"io"

	"repro/internal/apps"
)

// Profile renders the virtual-time profiler's per-processor execution-time
// breakdown for each application under SMP-Shasta at 8 processors: the
// paper's Figure 4 bars, but resolved to individual processors and to exact
// cycles instead of run-wide fractions. Each row's six categories plus idle
// sum exactly to the measured parallel time; the dgrade* column is an
// overlapping memo isolating the SMP-Shasta downgrade machinery (cycles
// already counted under message or the stalled category).
func Profile(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	tw := newTab(w)
	fmt.Fprintln(tw, "app/proc\ttask%\tread%\twrite%\tsync%\tmsg%\tother%\tidle%\tdgrade*%\tcycles")
	for _, name := range names {
		f, ok := apps.Registry[name]
		if !ok {
			return fmt.Errorf("harness: unknown application %q", name)
		}
		r, err := apps.ExecuteObserved(f(o.Scale), smpConfig(8), false, nil)
		if err != nil {
			return err
		}
		m := r.Metrics
		fmt.Fprintf(tw, "%s @8p C4\n", name)
		for _, e := range m.Breakdown {
			pc := func(v int64) string {
				return fmt.Sprintf("%.1f", 100*float64(v)/float64(e.Total))
			}
			fmt.Fprintf(tw, "\tp%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\n",
				e.Proc, pc(e.Task), pc(e.Read), pc(e.Write), pc(e.Sync),
				pc(e.Message), pc(e.Other), pc(e.Idle), pc(e.Downgrade), e.Total)
		}
	}
	return tw.Flush()
}
