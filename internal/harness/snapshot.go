package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// BenchSchema identifies the benchmark snapshot format. Bump the suffix on
// any incompatible change; benchgate refuses to compare snapshots whose
// schemas differ. PERFORMANCE.md documents the format.
const BenchSchema = "shasta-bench/v1"

// BenchSnapshot is one benchmark session: host metadata, a calibration
// measurement, and the timed scenarios. Snapshots are committed as
// BENCH_<label>.json at the repository root and compared across commits
// with benchgate (wall-clock ratios are normalized by the calibration
// constant, so comparisons across differently-fast hosts stay meaningful).
type BenchSnapshot struct {
	Schema string `json:"schema"`
	// Label names the snapshot, conventionally the PR it belongs to
	// ("pr7" for BENCH_pr7.json).
	Label   string `json:"label"`
	Created string `json:"created"` // RFC 3339
	// Host metadata, recorded for the reader; not used in comparisons.
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CalibrationNs is the wall time of a fixed single-core arithmetic
	// loop on this host (see calibrate). Scenario wall times are divided
	// by it before cross-snapshot comparison.
	CalibrationNs int64           `json:"calibration_ns"`
	Scenarios     []BenchScenario `json:"scenarios"`
}

// BenchScenario is one timed simulator run.
type BenchScenario struct {
	// Name is the stable comparison key, e.g. "scale/LU/p64/adaptive".
	Name          string `json:"name"`
	App           string `json:"app"`
	Procs         int    `json:"procs"`
	ProcsPerNode  int    `json:"procs_per_node"`
	NodesPerGroup int    `json:"nodes_per_group"`
	Clustering    int    `json:"clustering"`
	// Scheduler is "serial", "fixed" (parallel, fixed windows) or
	// "adaptive" (parallel, adaptive windows — the shipped default).
	Scheduler string `json:"scheduler"`
	// WallNs is host wall-clock time for the run.
	WallNs int64 `json:"wall_ns"`
	// Cycles and Checksum pin the virtual result: they must be identical
	// across schedulers and across commits unless the simulated machine
	// deliberately changed.
	Cycles   int64   `json:"cycles"`
	Checksum float64 `json:"checksum"`
}

// newBenchSnapshot stamps a snapshot with host metadata and a fresh
// calibration measurement.
func newBenchSnapshot(label string) *BenchSnapshot {
	return &BenchSnapshot{
		Schema:        BenchSchema,
		Label:         label,
		Created:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CalibrationNs: calibrate(),
	}
}

// WriteFile writes the snapshot as indented JSON.
func (s *BenchSnapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchSnapshot loads and schema-checks a snapshot file.
func ReadBenchSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, BenchSchema)
	}
	if s.CalibrationNs <= 0 {
		return nil, fmt.Errorf("%s: missing calibration_ns", path)
	}
	return &s, nil
}

// calSink defeats dead-code elimination of the calibration loop.
var calSink uint64

// calibrate times a fixed single-core xorshift loop, taking the best of
// three runs. The constant scales with host single-thread speed, which is
// what the simulator's hot paths are bound by, so dividing scenario wall
// times by it makes ratios comparable across hosts of different speeds.
func calibrate() int64 {
	best := int64(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		x := uint64(0x9E3779B97F4A7C15)
		start := time.Now()
		for i := 0; i < 1<<24; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calSink += x
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

// BenchComparison is the outcome of comparing two snapshots.
type BenchComparison struct {
	// Report is the human-readable per-scenario table.
	Report string
	// Regressed lists scenario names whose normalized wall time grew by
	// more than the tolerance.
	Regressed []string
	// Diverged lists scenario names whose virtual results (cycles or
	// checksum) differ — a correctness red flag, not a performance one.
	Diverged []string
}

// CompareBenchSnapshots compares scenarios present in both snapshots.
// Wall times are normalized by each snapshot's calibration constant before
// the ratio is taken; a scenario regresses when
//
//	(newWall/newCal) / (oldWall/oldCal) > 1 + tol.
//
// Scenarios present in only one snapshot are reported but never gate.
func CompareBenchSnapshots(old, new *BenchSnapshot, tol float64) BenchComparison {
	oldBy := map[string]BenchScenario{}
	for _, sc := range old.Scenarios {
		oldBy[sc.Name] = sc
	}
	var cmp BenchComparison
	var b strings.Builder
	fmt.Fprintf(&b, "calibration: old %.1fms, new %.1fms (ratios normalized)\n",
		float64(old.CalibrationNs)/1e6, float64(new.CalibrationNs)/1e6)
	fmt.Fprintf(&b, "%-28s %12s %12s %8s  verdict\n", "scenario", "old wall", "new wall", "ratio")
	seen := map[string]bool{}
	for _, sc := range new.Scenarios {
		seen[sc.Name] = true
		osc, ok := oldBy[sc.Name]
		if !ok {
			fmt.Fprintf(&b, "%-28s %12s %12s %8s  new scenario (not gated)\n",
				sc.Name, "-", fmtNs(sc.WallNs), "-")
			continue
		}
		ratio := (float64(sc.WallNs) / float64(new.CalibrationNs)) /
			(float64(osc.WallNs) / float64(old.CalibrationNs))
		// Failing verdicts name the diverging metric and its delta, so a
		// gate failure is actionable without re-running the benchmark.
		verdict := "ok"
		switch {
		case osc.Cycles != sc.Cycles:
			delta := 100 * (float64(sc.Cycles) - float64(osc.Cycles)) / float64(osc.Cycles)
			verdict = fmt.Sprintf("DIVERGED (cycles %d -> %d, %+.2f%%)", osc.Cycles, sc.Cycles, delta)
			cmp.Diverged = append(cmp.Diverged, sc.Name)
		case osc.Checksum != sc.Checksum:
			verdict = fmt.Sprintf("DIVERGED (checksum %g -> %g)", osc.Checksum, sc.Checksum)
			cmp.Diverged = append(cmp.Diverged, sc.Name)
		case ratio > 1+tol:
			verdict = fmt.Sprintf("REGRESSED (normalized wall %+.1f%%, tolerance +%.0f%%)",
				(ratio-1)*100, tol*100)
			cmp.Regressed = append(cmp.Regressed, sc.Name)
		case ratio < 1-tol:
			verdict = "improved"
		}
		fmt.Fprintf(&b, "%-28s %12s %12s %7.2fx  %s\n",
			sc.Name, fmtNs(osc.WallNs), fmtNs(sc.WallNs), ratio, verdict)
	}
	var missing []string
	for name := range oldBy {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&b, "%-28s %12s %12s %8s  missing from new snapshot\n",
			name, fmtNs(oldBy[name].WallNs), "-", "-")
	}
	cmp.Report = b.String()
	return cmp
}

func fmtNs(ns int64) string { return fmt.Sprintf("%.3fs", float64(ns)/1e9) }
