package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
)

// tailTopologies are the two node arrangements the tail experiment
// contrasts at the same processor count: a flat interconnect of 2-processor
// nodes against a hierarchical one with 16 nodes per uplink group. The
// group size is chosen to make the uplink genuinely bind: each node's
// uplink share is UplinkBytesPerKCycle/16 = 58 bytes/kcycle, half the
// 117 bytes/kcycle node-link rate, so cross-group messages pay the uplink
// crossing latency, serialize at half speed, and hold their sender's link
// lane twice as long — queueing that flat runs never see.
var tailTopologies = []struct {
	name string
	spec string
}{
	{"flat", "2"},
	{"hier", "2x16"},
}

// Tail runs each selected application on a flat and a hierarchical
// interconnect and compares their miss-latency tails using the request-span
// layer: the measured run cycles next to the span-derived exact p50/p99/
// p99.9, the hierarchical run split by route (requests confined to one
// uplink group against those that crossed an uplink), and each topology's
// tail stage composition — which stages the slowest 1% of requests spend
// their cycles in. The expected shape is the uplink route's p99 well above
// both the intra-group route and the flat run, attributed to wire and
// link-queue stages rather than handler service.
//
// With observability emission enabled (shastabench -obsv), each topology's
// run writes BENCH_tail_<app>_<topo>.json (metrics snapshot) and
// SPANS_tail_<app>_<topo>.txt (full span report).
func Tail(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, apps.Names)
	if len(o.Apps) == 0 {
		names = []string{"Water-Nsq"}
	}
	procs := 64
	if o.Procs > 0 {
		procs = o.Procs
	}
	for _, name := range names {
		f, ok := apps.Registry[name]
		if !ok {
			return fmt.Errorf("harness: unknown application %q", name)
		}
		type topoResult struct {
			cycles int64
			ss     *obsv.SpanSet
		}
		results := make([]topoResult, len(tailTopologies))
		fmt.Fprintf(w, "%s @%dp, span-derived miss-latency tails (cycles)\n", name, procs)
		tab := newTab(w)
		fmt.Fprintln(tab, "topology\trun cycles\tspans\tdropped\tp50\tp90\tp99\tp99.9\tmax")
		for i, topo := range tailTopologies {
			ppn, npg, err := parseTopology(topo.spec)
			if err != nil {
				return err
			}
			cfg := scaleConfig(procs, ppn, npg)
			cfg.Parallel = parallel
			col := &shasta.CollectorTracer{}
			r, err := apps.ExecuteObserved(f(o.Scale), cfg, false, col)
			if err != nil {
				return err
			}
			ss := obsv.BuildSpans(col.Events)
			results[i] = topoResult{cycles: r.Metrics.Cycles, ss: ss}
			totals := spanTotals(ss, routeAll)
			fmt.Fprintf(tab, "%s (%s)\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				topo.name, topologyName(cfg), r.Metrics.Cycles, len(ss.Spans),
				ss.DroppedTotal(), spanPct(totals, 0.50), spanPct(totals, 0.90),
				spanPct(totals, 0.99), spanPct(totals, 0.999), spanPct(totals, 1.0))
			// Route split: the span layer attributes the hierarchy's cost
			// to the requests that actually crossed an uplink.
			if up := spanTotals(ss, routeUplink); len(up) > 0 {
				in := spanTotals(ss, routeIntra)
				for _, row := range []struct {
					label  string
					totals []int64
				}{{"· intra-group", in}, {"· uplink", up}} {
					fmt.Fprintf(tab, "  %s\t\t%d\t\t%d\t%d\t%d\t%d\t%d\n",
						row.label, len(row.totals),
						spanPct(row.totals, 0.50), spanPct(row.totals, 0.90),
						spanPct(row.totals, 0.99), spanPct(row.totals, 0.999),
						spanPct(row.totals, 1.0))
				}
			}
			if obsvDir != "" {
				if err := writeTailFiles(name, topo.name, r.Metrics, ss); err != nil {
					return err
				}
			}
		}
		if err := tab.Flush(); err != nil {
			return err
		}
		flat, hier := results[0], results[1]
		fp99 := spanPct(spanTotals(flat.ss, routeAll), 0.99)
		hp99 := spanPct(spanTotals(hier.ss, routeAll), 0.99)
		if fp99 > 0 {
			fmt.Fprintf(w, "p99 inflation hier vs flat: %+.1f%%\n",
				100*(float64(hp99)-float64(fp99))/float64(fp99))
		}
		up99 := spanPct(spanTotals(hier.ss, routeUplink), 0.99)
		in99 := spanPct(spanTotals(hier.ss, routeIntra), 0.99)
		if in99 > 0 && up99 > 0 {
			fmt.Fprintf(w, "hier uplink-route p99 vs intra-group: %+.1f%%\n",
				100*(float64(up99)-float64(in99))/float64(in99))
		}
		upWQ := meanTransit(hier.ss, routeUplink)
		inWQ := meanTransit(hier.ss, routeIntra)
		if upWQ > 0 && inWQ > 0 {
			fmt.Fprintf(w, "hier mean wire+queue cycles per span: uplink route %d, intra-group %d (%+.1f%%)\n",
				upWQ, inWQ, 100*(float64(upWQ)-float64(inWQ))/float64(inWQ))
		}
		for i, topo := range tailTopologies {
			fmt.Fprintf(w, "%s tail (spans >= p99) stage composition:\n", topo.name)
			fmt.Fprint(w, tailComposition(results[i].ss))
		}
	}
	return nil
}

// meanTransit is the mean per-span cycle count spent in link-queue and
// wire stages across the spans matching the filter — the part of a
// request's latency owed to the interconnect rather than to handlers or
// inbox waits.
func meanTransit(ss *obsv.SpanSet, match func(*obsv.Span) bool) int64 {
	var cycles int64
	n := 0
	for i := range ss.Spans {
		s := &ss.Spans[i]
		if !match(s) {
			continue
		}
		n++
		for _, st := range s.Stages {
			if strings.HasSuffix(st.Name, "-queue") || strings.HasSuffix(st.Name, "-wire") {
				cycles += st.Cycles
			}
		}
	}
	if n == 0 {
		return 0
	}
	return cycles / int64(n)
}

// Route filters for spanTotals.
func routeAll(s *obsv.Span) bool    { return true }
func routeUplink(s *obsv.Span) bool { return s.Uplink }
func routeIntra(s *obsv.Span) bool  { return !s.Uplink }

// spanTotals collects the end-to-end latencies of the spans matching the
// filter, sorted.
func spanTotals(ss *obsv.SpanSet, match func(*obsv.Span) bool) []int64 {
	var totals []int64
	for i := range ss.Spans {
		if match(&ss.Spans[i]) {
			totals = append(totals, ss.Spans[i].Total())
		}
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	return totals
}

// spanPct is the exact nearest-rank percentile of sorted latencies.
func spanPct(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// tailComposition renders where the slowest 1% of requests spend their
// cycles, by stage, largest share first, with the share of those requests
// that crossed an uplink.
func tailComposition(ss *obsv.SpanSet) string {
	totals := spanTotals(ss, routeAll)
	p99 := spanPct(totals, 0.99)
	stages := map[string]int64{}
	var grand int64
	n, uplink := 0, 0
	for i := range ss.Spans {
		s := &ss.Spans[i]
		if s.Total() < p99 {
			continue
		}
		n++
		if s.Uplink {
			uplink++
		}
		for _, st := range s.Stages {
			stages[st.Name] += st.Cycles
			grand += st.Cycles
		}
	}
	if n == 0 || grand == 0 {
		return "  (no spans)\n"
	}
	names := make([]string, 0, len(stages))
	for s := range stages {
		names = append(names, s)
	}
	sort.Slice(names, func(i, j int) bool {
		if stages[names[i]] != stages[names[j]] {
			return stages[names[i]] > stages[names[j]]
		}
		return names[i] < names[j]
	})
	out := fmt.Sprintf("  %d spans, %d via uplink\n", n, uplink)
	for _, s := range names {
		out += fmt.Sprintf("  %-14s %5.1f%%\n", s, 100*float64(stages[s])/float64(grand))
	}
	return out
}

// writeTailFiles emits one topology run's metrics snapshot and span report
// into the observability directory, for the CI artifact.
func writeTailFiles(app, topo string, m *shasta.Metrics, ss *obsv.SpanSet) error {
	bp := filepath.Join(obsvDir, fmt.Sprintf("BENCH_tail_%s_%s.json", app, topo))
	bf, err := os.Create(bp)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(bf); err != nil {
		bf.Close()
		return err
	}
	if err := bf.Close(); err != nil {
		return err
	}
	sp := filepath.Join(obsvDir, fmt.Sprintf("SPANS_tail_%s_%s.txt", app, topo))
	return os.WriteFile(sp, []byte(obsv.FormatSpans(ss, 3)), 0o644)
}
