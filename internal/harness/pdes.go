package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/apps"
)

// Pdes compares the serial scheduler against the conservative window-based
// parallel scheduler on the same workloads. Each application runs at 8
// processors with clustering 4 — two SMP nodes, so the parallel scheduler
// genuinely executes two conflict domains concurrently — once per
// scheduler, bypassing the run cache so both runs are actually executed
// and timed. The report shows host wall-clock time under each scheduler
// and the host speedup; virtual results never change between schedulers,
// and the experiment fails if cycles, finish time or checksum differ at
// all (the bit-identity contract, see DESIGN.md).
//
// The host speedup depends on the machine: on a single-core host the
// parallel scheduler degenerates to roughly serial speed (windows add a
// little coordination), while multi-core hosts overlap the domains.
func Pdes(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, []string{"LU", "Ocean"})
	fmt.Fprintf(w, "host cores (GOMAXPROCS): %d\n", runtime.GOMAXPROCS(0))
	tw := newTab(w)
	fmt.Fprintln(tw, "app\tcycles\tserial wall\tparallel wall\thost speedup\tbit-identical")
	for _, name := range names {
		f, ok := apps.Registry[name]
		if !ok {
			return fmt.Errorf("harness: unknown application %q", name)
		}
		cfg := smpConfig(8)

		start := time.Now()
		ser, err := apps.Execute(f(o.Scale), cfg, false)
		if err != nil {
			return err
		}
		serWall := time.Since(start)

		cfg.Parallel = true
		start = time.Now()
		par, err := apps.Execute(f(o.Scale), cfg, false)
		if err != nil {
			return err
		}
		parWall := time.Since(start)

		if ser.Result.FinishCycles != par.Result.FinishCycles ||
			ser.Result.ParallelCycles != par.Result.ParallelCycles ||
			ser.Checksum != par.Checksum {
			return fmt.Errorf("harness: pdes: %s diverged between schedulers: "+
				"finish %d vs %d, cycles %d vs %d, checksum %v vs %v",
				name, ser.Result.FinishCycles, par.Result.FinishCycles,
				ser.Result.ParallelCycles, par.Result.ParallelCycles,
				ser.Checksum, par.Checksum)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3fs\t%.3fs\t%.2fx\tyes\n",
			name, ser.Result.ParallelCycles,
			serWall.Seconds(), parWall.Seconds(),
			serWall.Seconds()/parWall.Seconds())
	}
	return tw.Flush()
}
