package harness

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/apps"
)

// scaleSweep is the default processor sweep of the scale experiment. The
// paper stops at 16 processors (4 AlphaServer nodes); the sweep continues
// to 256 to exercise the hierarchical interconnect and the host-side
// scaling of the simulator itself.
var scaleSweep = []int{16, 64, 128, 256}

// scaleSchedulers are the simulator schedulers the experiment times, in
// report order. "serial" is the reference scheduler, "fixed" the parallel
// scheduler restricted to fixed lookahead windows (the pre-optimization
// behaviour), "adaptive" the shipped default with per-domain window
// extension. All three must produce bit-identical virtual results.
var scaleSchedulers = []string{"serial", "fixed", "adaptive"}

// scaleConfig builds the cluster configuration for one processor count.
// ppn/npg override processors-per-node and nodes-per-group when non-zero
// (npg < 0 forces a flat topology). By default nodes are the paper's
// 4-processor SMPs, clustering is the paper's SMP-Shasta choice, and at 64
// processors and above the interconnect becomes hierarchical with 4 nodes
// per uplink group. The heap is shrunk to 4 MiB: each sharing group holds
// its own heap image, so the default 16 MiB would cost 64 x 16 MiB of host
// memory at 256 processors for no simulation benefit at these problem
// sizes.
func scaleConfig(procs, ppn, npg int) shasta.Config {
	cfg := shasta.Config{Procs: procs, Clustering: 4, HeapBytes: 4 << 20}
	if procs < 4 {
		cfg.Clustering = procs
	}
	if ppn > 0 {
		cfg.ProcsPerNode = ppn
		if ppn < cfg.Clustering {
			// Sharing groups cannot span nodes; a topology override
			// with small nodes caps the clustering with it.
			cfg.Clustering = ppn
		}
	}
	switch {
	case npg > 0:
		cfg.NodesPerGroup = npg
	case npg == 0 && procs >= 64:
		cfg.NodesPerGroup = 4
	}
	return cfg
}

// parseTopology parses a "NxG" topology spec: N processors per SMP node,
// G nodes per uplink group ("4x4"); the "xG" part is optional and omitting
// it ("8") selects a flat interconnect of N-processor nodes. Empty input
// selects the experiment's per-processor-count defaults (npg 0); "Nx1" is
// an explicit flat topology (npg -1, overriding the defaults).
func parseTopology(spec string) (ppn, npg int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	parts := strings.Split(spec, "x")
	if len(parts) > 2 {
		return 0, 0, fmt.Errorf("harness: topology %q: want \"N\" or \"NxG\"", spec)
	}
	if ppn, err = strconv.Atoi(parts[0]); err != nil || ppn < 1 {
		return 0, 0, fmt.Errorf("harness: topology %q: bad processors-per-node", spec)
	}
	npg = -1
	if len(parts) == 2 {
		g, err := strconv.Atoi(parts[1])
		if err != nil || g < 1 {
			return 0, 0, fmt.Errorf("harness: topology %q: bad nodes-per-group", spec)
		}
		if g > 1 {
			npg = g
		}
	}
	return ppn, npg, nil
}

// topologyName renders a configuration's node arrangement for the report.
func topologyName(cfg shasta.Config) string {
	ppn := cfg.ProcsPerNode
	if ppn == 0 {
		ppn = 4
	}
	nodes := (cfg.Procs + ppn - 1) / ppn
	if cfg.NodesPerGroup > 1 && nodes > cfg.NodesPerGroup {
		return fmt.Sprintf("%dn x %dg", cfg.NodesPerGroup, nodes/cfg.NodesPerGroup)
	}
	return fmt.Sprintf("%dn flat", nodes)
}

// Scale sweeps the simulator from 16 to 256 processors and times each run
// under the serial scheduler, the parallel scheduler with fixed windows,
// and the parallel scheduler with adaptive windows (the default). At 64
// processors and above the interconnect is hierarchical (4-processor
// nodes, 4 nodes per uplink group) unless -topology overrides it. Every
// run bypasses the harness cache — wall-clock time is the measurement —
// and the experiment fails if any scheduler's cycles, finish time or
// checksum deviate (the bit-identity contract at scale).
//
// With Options.SnapshotPath set, the measurements are also written as a
// shasta-bench/v1 snapshot for benchgate comparison; see PERFORMANCE.md.
func Scale(o Options, w io.Writer) error {
	o = o.WithDefaults()
	names := appList(o, []string{"LU"})
	counts := scaleSweep
	if o.Procs > 0 {
		counts = []int{o.Procs}
	}
	ppn, npg, err := parseTopology(o.Topology)
	if err != nil {
		return err
	}

	var snap *BenchSnapshot
	if o.SnapshotPath != "" {
		label := o.BenchLabel
		if label == "" {
			label = "local"
		}
		snap = newBenchSnapshot(label)
		fmt.Fprintf(w, "calibration: %.1fms\n", float64(snap.CalibrationNs)/1e6)
	}
	fmt.Fprintf(w, "host cores (GOMAXPROCS): %d\n", runtime.GOMAXPROCS(0))

	tw := newTab(w)
	fmt.Fprintln(tw, "app\tprocs\ttopology\tcycles\tserial\tfixed\tadaptive\tpar speedup\tbit-identical")
	for _, name := range names {
		f, ok := apps.Registry[name]
		if !ok {
			return fmt.Errorf("harness: unknown application %q", name)
		}
		for _, procs := range counts {
			cfg := scaleConfig(procs, ppn, npg)
			walls := map[string]time.Duration{}
			var ref apps.RunResult
			for i, sched := range scaleSchedulers {
				runCfg := cfg
				runCfg.Parallel = sched != "serial"
				runCfg.FixedWindows = sched == "fixed"
				// Best of two executions: the minimum wall time is the
				// least noise-inflated estimate, and host noise is what
				// the 10% regression gate must see through. Identity is
				// checked on every execution, not just the fast one.
				var r apps.RunResult
				for rep := 0; rep < 2; rep++ {
					start := time.Now()
					rr, err := apps.Execute(f(o.Scale), runCfg, false)
					if err != nil {
						return fmt.Errorf("harness: scale: %s p%d %s: %w", name, procs, sched, err)
					}
					wall := time.Since(start)
					if rep == 0 || wall < walls[sched] {
						walls[sched] = wall
					}
					r = rr
					if i == 0 && rep == 0 {
						ref = rr
					} else if rr.Result.FinishCycles != ref.Result.FinishCycles ||
						rr.Result.ParallelCycles != ref.Result.ParallelCycles ||
						rr.Checksum != ref.Checksum {
						return fmt.Errorf("harness: scale: %s p%d: %s scheduler diverged from %s: "+
							"finish %d vs %d, cycles %d vs %d, checksum %v vs %v",
							name, procs, sched, scaleSchedulers[0],
							rr.Result.FinishCycles, ref.Result.FinishCycles,
							rr.Result.ParallelCycles, ref.Result.ParallelCycles,
							rr.Checksum, ref.Checksum)
					}
				}
				if snap != nil {
					rppn := runCfg.ProcsPerNode
					if rppn == 0 {
						rppn = 4
					}
					snap.Scenarios = append(snap.Scenarios, BenchScenario{
						Name:          fmt.Sprintf("scale/%s/p%d/%s", name, procs, sched),
						App:           name,
						Procs:         procs,
						ProcsPerNode:  rppn,
						NodesPerGroup: runCfg.NodesPerGroup,
						Clustering:    runCfg.Clustering,
						Scheduler:     sched,
						WallNs:        walls[sched].Nanoseconds(),
						Cycles:        r.Result.ParallelCycles,
						Checksum:      r.Checksum,
					})
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.2fs\t%.2fs\t%.2fs\t%.2fx\tyes\n",
				name, procs, topologyName(cfg), ref.Result.ParallelCycles,
				walls["serial"].Seconds(), walls["fixed"].Seconds(), walls["adaptive"].Seconds(),
				walls["serial"].Seconds()/walls["adaptive"].Seconds())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if snap != nil {
		if err := snap.WriteFile(o.SnapshotPath); err != nil {
			return fmt.Errorf("harness: scale: snapshot: %w", err)
		}
		fmt.Fprintf(w, "snapshot written: %s (label %s, %d scenarios)\n",
			o.SnapshotPath, snap.Label, len(snap.Scenarios))
	}
	return nil
}
