package checks

import "testing"

func TestModeOffIsFree(t *testing.T) {
	c := Default()
	if c.LoadCheck(ModeOff, false) != 0 || c.LoadCheck(ModeOff, true) != 0 ||
		c.StoreCheck(ModeOff) != 0 || c.BatchCheck(ModeOff, 5, true) != 0 ||
		c.PollCost(ModeOff) != 0 {
		t.Fatal("ModeOff must cost nothing")
	}
}

func TestSMPFPCheckCostsMore(t *testing.T) {
	c := Default()
	if c.LoadCheck(ModeSMP, true) <= c.LoadCheck(ModeBase, true) {
		t.Fatal("SMP FP load check must exceed Base FP load check")
	}
	if c.LoadCheck(ModeSMP, false) != c.LoadCheck(ModeBase, false) {
		t.Fatal("integer flag check should cost the same in both modes")
	}
}

func TestSMPBatchUsesStateTable(t *testing.T) {
	c := Default()
	baseLoadOnly := c.BatchCheck(ModeBase, 4, true)
	smpLoadOnly := c.BatchCheck(ModeSMP, 4, true)
	if smpLoadOnly <= baseLoadOnly {
		t.Fatal("SMP load-only batch checks must exceed Base flag batch checks")
	}
	if got := c.BatchCheck(ModeSMP, 4, true); got != c.BatchCheck(ModeSMP, 4, false) {
		t.Fatalf("SMP batches must cost the same regardless of loadOnly: %d", got)
	}
	if c.BatchCheck(ModeBase, 4, false) != c.BatchCheck(ModeSMP, 4, false) {
		t.Fatal("batches containing stores use the state table in both modes")
	}
}

func TestBatchScalesWithLinePairs(t *testing.T) {
	c := Default()
	if c.BatchCheck(ModeBase, 8, true) != 2*c.BatchCheck(ModeBase, 4, true) {
		t.Fatal("batch cost must be linear in line pairs")
	}
}

func TestStoreCheckSevenInstructions(t *testing.T) {
	c := Default()
	if c.StoreCheck(ModeBase) != 7 || c.StoreCheck(ModeSMP) != 7 {
		t.Fatalf("store check = %d/%d, want 7 (Figure 1)", c.StoreCheck(ModeBase), c.StoreCheck(ModeSMP))
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeBase.String() != "base" || ModeSMP.String() != "smp" {
		t.Fatal("mode names wrong")
	}
}
