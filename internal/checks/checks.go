// Package checks models the cost of Shasta's inline miss checks.
//
// Shasta inserts checking code before loads and stores in the application
// executable. The costs here are cycle counts for each kind of check,
// mirroring the paper's descriptions: the store check of Figure 1 is seven
// instructions; load checks compare the loaded value against the invalid
// flag; SMP-Shasta makes floating-point flag checks atomic by storing the
// FP register to the stack and reloading into an integer register (several
// extra cycles); and SMP-Shasta batch checks must consult the private state
// table instead of using the flag technique, which the paper identifies as
// the largest source of extra checking overhead.
//
// Polling for messages costs three instructions on a Memory Channel
// cluster; the simulator charges it at every access-level poll point, the
// analogue of Shasta's loop-backedge polling.
package checks

// Mode selects which checking code is compiled into the application.
type Mode int

// Checking modes.
const (
	// ModeOff runs without miss checks (original sequential code, or
	// hardware-coherent execution).
	ModeOff Mode = iota
	// ModeBase uses Base-Shasta checks.
	ModeBase
	// ModeSMP uses SMP-Shasta checks (atomic FP flag checks, state-table
	// batch checks).
	ModeSMP
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeBase:
		return "base"
	case ModeSMP:
		return "smp"
	default:
		return "unknown"
	}
}

// Costs holds per-check cycle counts.
type Costs struct {
	// LoadFlag is an integer load's flag-comparison check.
	LoadFlag int64
	// LoadFlagFPBase is a floating-point load's flag check in
	// Base-Shasta (an extra integer load of the same address).
	LoadFlagFPBase int64
	// LoadFlagFPSMP is the atomic SMP-Shasta FP flag check (store the FP
	// value to the stack, reload as integer, compare).
	LoadFlagFPSMP int64
	// Store is the seven-instruction state-table store check.
	Store int64
	// BatchFlagPerLine is a flag-based batch check per line per base
	// register (load-only batches in Base-Shasta).
	BatchFlagPerLine int64
	// BatchStatePerLine is a state-table batch check per line per base
	// register (all SMP-Shasta batches, and Base-Shasta batches with
	// stores).
	BatchStatePerLine int64
	// Poll is the cost of one message poll (three instructions).
	Poll int64
}

// Default returns costs calibrated to the paper's Alpha 21164 code
// sequences.
func Default() Costs {
	return Costs{
		LoadFlag:          2,
		LoadFlagFPBase:    3,
		LoadFlagFPSMP:     9,
		Store:             7,
		BatchFlagPerLine:  3,
		BatchStatePerLine: 7,
		Poll:              3,
	}
}

// LoadCheck returns the cost of a single (non-batched) load check: fp
// selects the floating-point variant.
func (c Costs) LoadCheck(m Mode, fp bool) int64 {
	switch m {
	case ModeOff:
		return 0
	case ModeBase:
		if fp {
			return c.LoadFlagFPBase
		}
		return c.LoadFlag
	default: // ModeSMP
		if fp {
			return c.LoadFlagFPSMP
		}
		return c.LoadFlag
	}
}

// StoreCheck returns the cost of a single store check.
func (c Costs) StoreCheck(m Mode) int64 {
	if m == ModeOff {
		return 0
	}
	return c.Store
}

// BatchCheck returns the cost of checking a batch that touches the given
// number of (line, base-register) pairs; loadOnly batches can use the flag
// technique in Base-Shasta but never in SMP-Shasta.
func (c Costs) BatchCheck(m Mode, linePairs int, loadOnly bool) int64 {
	switch m {
	case ModeOff:
		return 0
	case ModeBase:
		if loadOnly {
			return int64(linePairs) * c.BatchFlagPerLine
		}
		return int64(linePairs) * c.BatchStatePerLine
	default:
		return int64(linePairs) * c.BatchStatePerLine
	}
}

// PollCost returns the polling cost for one poll point.
func (c Costs) PollCost(m Mode) int64 {
	if m == ModeOff {
		return 0
	}
	return c.Poll
}
