package shasta_test

import (
	"strings"
	"testing"

	"repro"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := shasta.NewCluster(shasta.Config{Procs: 8, Clustering: 3}); err == nil {
		t.Fatal("clustering 3 should be rejected (does not divide node size)")
	}
	if _, err := shasta.NewCluster(shasta.Config{Procs: -2}); err == nil {
		t.Fatal("negative processor count should be rejected")
	}
	c, err := shasta.NewCluster(shasta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Procs() != 16 {
		t.Fatalf("default processor count = %d, want 16", c.Procs())
	}
}

func TestMustClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCluster should panic on invalid config")
		}
	}()
	shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 3})
}

func TestEndToEndSharedCounter(t *testing.T) {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	counter := cluster.Alloc(64, 64)
	lock := cluster.AllocLock()
	res := cluster.Run(func(p *shasta.Proc) {
		for i := 0; i < 5; i++ {
			p.LockAcquire(lock)
			p.StoreU64(counter, p.LoadU64(counter)+1)
			p.LockRelease(lock)
		}
		p.Barrier()
		if got := p.LoadU64(counter); got != 40 {
			t.Errorf("proc %d: counter = %d, want 40", p.ID(), got)
		}
	})
	if res.FinishCycles <= 0 || res.ParallelCycles <= 0 {
		t.Fatal("no time measured")
	}
	if res.ParallelSeconds() <= 0 {
		t.Fatal("ParallelSeconds not positive")
	}
}

func TestStatsSummaryRenders(t *testing.T) {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(4096, 64)
	cluster.Run(func(p *shasta.Proc) {
		p.StoreF64(arr+shasta.Addr(p.ID()*8), 1)
		p.Barrier()
		_ = p.LoadF64(arr + shasta.Addr(((p.ID()+1)%8)*8))
	})
	s := cluster.Stats().Summary()
	for _, want := range []string{"parallel time", "misses", "messages", "breakdown"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestVariableGranularityAlloc(t *testing.T) {
	cluster := shasta.MustCluster(shasta.Config{Procs: 4})
	small := cluster.Alloc(512, 0)   // single block (default policy)
	big := cluster.Alloc(8192, 2048) // four 2 KiB blocks
	if small == big {
		t.Fatal("allocations overlap")
	}
	cluster.Run(func(p *shasta.Proc) {
		if p.ID() == 0 {
			p.StoreF64(small, 1)
			p.StoreF64(big, 2)
		}
		p.Barrier()
		if got := p.LoadF64(small); got != 1 {
			t.Errorf("small alloc read %v", got)
		}
		if got := p.LoadF64(big); got != 2 {
			t.Errorf("big alloc read %v", got)
		}
	})
}

func TestHardwareModeConfig(t *testing.T) {
	cluster := shasta.MustCluster(shasta.Config{Procs: 4, Clustering: 4, Hardware: true})
	arr := cluster.Alloc(256, 64)
	cluster.Run(func(p *shasta.Proc) {
		p.StoreU64(arr+shasta.Addr(p.ID()*8), uint64(p.ID()))
		p.Barrier()
		var sum uint64
		for q := 0; q < 4; q++ {
			sum += p.LoadU64(arr + shasta.Addr(q*8))
		}
		if sum != 6 {
			t.Errorf("proc %d: sum = %d", p.ID(), sum)
		}
	})
	if cluster.Stats().TotalMisses() != 0 {
		t.Fatal("hardware mode should record no software misses")
	}
}

func TestBatchAPI(t *testing.T) {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(2048, 64)
	cluster.Run(func(p *shasta.Proc) {
		if p.ID() == 0 {
			p.Batch([]shasta.BatchRef{{Base: arr, Bytes: 2048, Store: true}},
				func(b *shasta.Batch) {
					for i := 0; i < 256; i++ {
						b.StoreF64(arr+shasta.Addr(i*8), float64(i))
					}
				})
		}
		p.Barrier()
		var sum float64
		p.Batch([]shasta.BatchRef{{Base: arr, Bytes: 2048}}, func(b *shasta.Batch) {
			for i := 0; i < 256; i++ {
				sum += b.LoadF64(arr + shasta.Addr(i*8))
			}
		})
		if sum != 256*255/2 {
			t.Errorf("proc %d: batched sum = %v", p.ID(), sum)
		}
	})
}

func TestFalseSharingVsGranularity(t *testing.T) {
	// With one writer per 8 bytes, 2 KiB blocks cause heavy false
	// sharing; line-sized blocks must produce fewer invalidation misses
	// per store. This checks the granularity trade-off cuts both ways.
	missesFor := func(blockSize int) int64 {
		cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 1})
		arr := cluster.Alloc(8*2048, blockSize)
		cluster.Run(func(p *shasta.Proc) {
			p.Barrier()
			for round := 0; round < 4; round++ {
				// Each processor repeatedly writes its own 256-byte-strided
				// slot within each 2 KiB region: a distinct 64-byte block
				// per processor, but one shared 2 KiB block.
				for r := 0; r < 8; r++ {
					p.StoreF64(arr+shasta.Addr(r*2048+p.ID()*256), float64(round))
				}
				p.Barrier()
			}
		})
		return cluster.Stats().TotalMisses()
	}
	fine, coarse := missesFor(64), missesFor(2048)
	if fine >= coarse {
		t.Fatalf("fine granularity should reduce false-sharing misses: 64B=%d 2048B=%d",
			fine, coarse)
	}
}
