// Trace example: a protocol walkthrough of one block, printed live.
//
// The trace below shows the full SMP-Shasta choreography for a single
// 64-byte block: processor 4's read miss, the request to the home, the
// home-side exclusive-to-shared downgrade, the data reply, and then a
// remote write that triggers invalidation with selective downgrade
// messages — the mechanism of Section 3.3 of the paper.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	cluster, err := shasta.NewCluster(shasta.Config{Procs: 8, Clustering: 4})
	if err != nil {
		log.Fatal(err)
	}
	blk := cluster.AllocPlaced(64, 64, 0) // homed at processor 0 (node 0)

	fmt.Println("protocol trace for one block (homed at p0, node 0):")
	fmt.Println()
	cluster.SetTracer(&shasta.WriterTracer{W: os.Stdout, Blocks: map[int]bool{0: true}})

	cluster.Run(func(p *shasta.Proc) {
		// Node 0 writes the block; several of its processors touch it so
		// their private state tables are marked.
		if p.ID() == 0 {
			p.StoreF64(blk, 1.0)
		}
		p.Barrier()
		if p.ID() == 1 || p.ID() == 2 {
			p.StoreF64(blk, float64(p.ID()))
		}
		p.Barrier()
		// A processor on node 1 reads: request -> home -> local
		// downgrade at the owning node -> data reply.
		if p.ID() == 4 {
			_ = p.LoadF64(blk)
		}
		p.Barrier()
		// The same remote processor writes: upgrade converted at the
		// home, invalidation of node 0's copy with downgrade messages to
		// exactly the processors whose private state shows access.
		if p.ID() == 4 {
			p.StoreF64(blk, 42.0)
		}
		p.Barrier()
	})

	st := cluster.Stats()
	frac, total := st.DowngradeDistribution()
	fmt.Println()
	fmt.Printf("downgrades: %d (0/1/2/3 messages: %.0f%%/%.0f%%/%.0f%%/%.0f%%)\n",
		total, frac[0]*100, frac[1]*100, frac[2]*100, frac[3]*100)
}
