// Ocean example: the paper's headline result, reproduced interactively.
//
// Ocean's nearest-neighbour stencil communication makes it the application
// that gains the most from SMP clustering (1.9x at 16 processors in the
// paper): neighbouring strips usually live on the same SMP node, so with
// SMP-Shasta their boundary exchange happens through hardware cache
// coherence instead of the software protocol. This example runs the Ocean
// workload at 16 processors under Base-Shasta and under SMP-Shasta with
// clusterings 2 and 4, and prints the time, miss and message comparison.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/apps"
)

func main() {
	type row struct {
		label string
		cfg   shasta.Config
	}
	rows := []row{
		{"Base-Shasta", shasta.Config{Procs: 16, Clustering: 1}},
		{"SMP-Shasta C=2", shasta.Config{Procs: 16, Clustering: 2}},
		{"SMP-Shasta C=4", shasta.Config{Procs: 16, Clustering: 4}},
	}

	seq, err := apps.Execute(apps.NewOcean(1), shasta.Config{Procs: 1, Hardware: true}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ocean %s, sequential time %.2f ms\n\n",
		apps.NewOcean(1).ProblemSize(), seq.Result.ParallelSeconds()*1e3)

	var baseCycles int64
	fmt.Printf("%-16s %10s %8s %10s %10s %12s\n",
		"run", "time(ms)", "speedup", "misses", "messages", "vs Base")
	for i, r := range rows {
		res, err := apps.Execute(apps.NewOcean(1), r.cfg, false)
		if err != nil {
			log.Fatal(err)
		}
		cycles := res.Result.ParallelCycles
		if i == 0 {
			baseCycles = cycles
		}
		fmt.Printf("%-16s %10.2f %8.2f %10d %10d %11.2fx\n",
			r.label,
			res.Result.ParallelSeconds()*1e3,
			float64(seq.Result.ParallelCycles)/float64(cycles),
			res.Result.Stats.TotalMisses(),
			res.Result.Stats.TotalMessages(),
			float64(baseCycles)/float64(cycles))
	}
	fmt.Println("\nClustering keeps boundary exchange inside each SMP node:")
	fmt.Println("misses and messages drop sharply at C=4, and execution time follows.")
}
