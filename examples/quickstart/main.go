// Quickstart: a parallel sum over a shared array on a simulated two-node
// cluster, showing the shasta API end to end — cluster construction, shared
// allocation, per-processor programs, barriers, and the run statistics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Eight processors on two 4-processor SMP nodes, running the
	// SMP-Shasta protocol with full-node sharing groups.
	cluster, err := shasta.NewCluster(shasta.Config{Procs: 8, Clustering: 4})
	if err != nil {
		log.Fatal(err)
	}

	const n = 4096
	data := cluster.Alloc(n*8, 64)     // n float64s, 64-byte blocks
	partial := cluster.Alloc(8*64, 64) // one cache line per processor

	result := cluster.Run(func(p *shasta.Proc) {
		procs := p.NumProcs()
		lo, hi := p.ID()*n/procs, (p.ID()+1)*n/procs

		// Phase 1: each processor initializes its slice of the array.
		for i := lo; i < hi; i++ {
			p.StoreF64(data+shasta.Addr(i*8), float64(i))
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats() // measure only the parallel phase
		}
		p.Barrier()

		// Phase 2: each processor sums a different slice — written by a
		// different processor, so the reads miss and the protocol
		// fetches the blocks.
		src := (p.ID() + 1) % procs
		slo, shi := src*n/procs, (src+1)*n/procs
		sum := 0.0
		for i := slo; i < shi; i++ {
			sum += p.LoadF64(data + shasta.Addr(i*8))
			p.Compute(4)
		}
		p.StoreF64(partial+shasta.Addr(p.ID()*64), sum)
		p.Barrier()

		// Phase 3: processor 0 reduces the partial sums.
		if p.ID() == 0 {
			total := 0.0
			for q := 0; q < procs; q++ {
				total += p.LoadF64(partial + shasta.Addr(q*64))
			}
			want := float64(n) * float64(n-1) / 2
			fmt.Printf("sum = %.0f (want %.0f)\n", total, want)
		}
	})

	fmt.Printf("parallel time: %.3f ms (virtual, 300 MHz cluster)\n",
		result.ParallelSeconds()*1e3)
	fmt.Print(result.Stats.Summary())
}
