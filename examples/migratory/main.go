// Migratory example: the anatomy of SMP-Shasta downgrades.
//
// A lock-protected counter migrates between processors. When every
// processor of a node touches the counter's block before it migrates to
// another node, the departing invalidation must downgrade all of them —
// three downgrade messages on a 4-processor node. When only one processor
// per node touches it, the private state tables let the protocol send zero
// downgrade messages. This is the mechanism behind Figure 8, where the
// Water applications (whose molecule records behave exactly like this) are
// the outliers with many 3-message downgrades.
package main

import (
	"fmt"
	"log"

	"repro"
)

// run executes rounds of counter increments. Every round, `touchers`
// processors per node increment the shared counter under the lock; the
// counter's block therefore migrates between nodes once per round.
func run(touchers int) *shasta.Stats {
	cluster, err := shasta.NewCluster(shasta.Config{Procs: 16, Clustering: 4})
	if err != nil {
		log.Fatal(err)
	}
	counter := cluster.Alloc(64, 64)
	lock := cluster.AllocLock()
	const rounds = 8
	cluster.Run(func(p *shasta.Proc) {
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats()
		}
		p.Barrier()
		for r := 0; r < rounds; r++ {
			if p.ID()%4 < touchers {
				p.LockAcquire(lock)
				p.StoreU64(counter, p.LoadU64(counter)+1)
				p.LockRelease(lock)
			}
			p.Barrier()
		}
		want := uint64(rounds * 4 * touchers)
		if got := p.LoadU64(counter); p.ID() == 0 && got != want {
			log.Fatalf("counter = %d, want %d", got, want)
		}
		p.Barrier()
	})
	return cluster.Stats()
}

func main() {
	fmt.Println("A counter migrates between 4 nodes under a lock; each node has")
	fmt.Println("'touchers' processors that access it before it moves on.")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %28s\n", "touchers", "downgrades", "dg msgs", "distribution (0/1/2/3 msgs)")
	for touchers := 1; touchers <= 4; touchers++ {
		st := run(touchers)
		frac, total := st.DowngradeDistribution()
		fmt.Printf("%-10d %12d %12d %9.0f%% /%3.0f%% /%3.0f%% /%3.0f%%\n",
			touchers, total, st.MessagesBy(shasta.DowngradeMsg),
			frac[0]*100, frac[1]*100, frac[2]*100, frac[3]*100)
	}
	fmt.Println()
	fmt.Println("With one toucher per node the private state tables let every")
	fmt.Println("downgrade complete with zero messages; with four touchers the")
	fmt.Println("block behaves like Water's molecules: three downgrade messages")
	fmt.Println("whenever it leaves a node.")
}
