// Hierarchical: a 64-processor run on a two-level interconnect, showing
// the topology knobs that scale the simulator beyond the paper's 16
// processors.
//
// # Topology specification
//
// A cluster's shape is given by three Config fields (the shastabench
// -topology flag spells the last two as "NxG", e.g. "4x4"):
//
//	Procs         total processors                  (here 64)
//	ProcsPerNode  processors per SMP node, default 4 (here 4  -> 16 nodes)
//	NodesPerGroup SMP nodes per uplink group         (here 4  ->  4 groups)
//
// With NodesPerGroup of 0 or 1 the interconnect is the paper's flat
// network: every node talks to every other node at the same cost over its
// own link. Setting NodesPerGroup G > 1 arranges the nodes into groups of
// G under shared uplinks, the way large clusters are actually cabled:
//
//	group 0: nodes 0..3    (processors  0..15)
//	group 1: nodes 4..7    (processors 16..31)
//	group 2: nodes 8..11   (processors 32..47)
//	group 3: nodes 12..15  (processors 48..63)
//
// Messages between nodes of the same group cost what they always did.
// Messages that cross a group boundary additionally pay the uplink wire
// latency, and their bandwidth is capped at a per-node share of the uplink
// (the uplink is provisioned per group, not per node). Placement therefore
// matters: this program makes each processor read one slice of data from a
// neighbour inside its group and one from the opposite group, and the
// statistics show the cross-group traffic is the expensive part.
//
// The run uses the parallel simulation scheduler — at 64 processors the
// serial event loop is the bottleneck on the host — which by contract
// produces bit-identical results to the serial one (PERFORMANCE.md covers
// how that is continuously verified and benchmarked).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		procs         = 64
		procsPerNode  = 4
		nodesPerGroup = 4
		perProc       = 512 // float64s per processor slice
	)
	cluster, err := shasta.NewCluster(shasta.Config{
		Procs:         procs,
		ProcsPerNode:  procsPerNode,
		NodesPerGroup: nodesPerGroup,
		Clustering:    4,
		HeapBytes:     4 << 20,
		Parallel:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = procs * perProc
	data := cluster.Alloc(n*8, 64)
	partial := cluster.Alloc(procs*64, 64) // one cache line per processor

	result := cluster.Run(func(p *shasta.Proc) {
		lo := p.ID() * perProc

		// Each processor initializes its own slice.
		for i := 0; i < perProc; i++ {
			p.StoreF64(data+shasta.Addr((lo+i)*8), float64(lo+i))
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats()
		}
		p.Barrier()

		// Read one neighbour slice from inside the group (4 processors
		// away: the next node, same uplink group) and one from the
		// opposite side of the machine (32 away: two groups over, so
		// every fetch crosses an uplink).
		sum := 0.0
		for _, src := range []int{(p.ID() + 4) % procs, (p.ID() + 32) % procs} {
			s := src * perProc
			for i := 0; i < perProc; i++ {
				sum += p.LoadF64(data + shasta.Addr((s+i)*8))
				p.Compute(4)
			}
		}
		p.StoreF64(partial+shasta.Addr(p.ID()*64), sum)
		p.Barrier()

		if p.ID() == 0 {
			total := 0.0
			for q := 0; q < procs; q++ {
				total += p.LoadF64(partial + shasta.Addr(q*64))
			}
			want := 2 * float64(n) * float64(n-1) / 2 // every element read twice
			fmt.Printf("sum = %.0f (want %.0f)\n", total, want)
		}
	})

	fmt.Printf("64 processors = %d nodes x %d procs, %d uplink groups\n",
		procs/procsPerNode, procsPerNode, procs/(procsPerNode*nodesPerGroup))
	fmt.Printf("parallel time: %.3f ms (virtual, 300 MHz cluster)\n",
		result.ParallelSeconds()*1e3)
	fmt.Print(result.Stats.Summary())
}
