// Granularity example: Shasta's variable coherence granularity.
//
// A unique feature of Shasta among software DSM systems is that the
// coherence block size can differ per data structure, chosen with a hint at
// allocation time. This example reproduces the essence of Table 2 on a
// single data structure: 16 processors stream through a large array that a
// remote processor produced. With 64-byte blocks every cache line is a
// separate software miss (~20 us each); with 2048-byte blocks one miss
// fetches 32 lines, so misses drop ~32x and the stall time collapses —
// exactly why the paper's LU-Contig jumps from a speedup of 4.5 to 8.8.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(blockSize int) (ms float64, misses int64) {
	cluster, err := shasta.NewCluster(shasta.Config{Procs: 16, Clustering: 1})
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 15 // 32K float64s = 256 KiB
	arr := cluster.Alloc(n*8, blockSize)
	res := cluster.Run(func(p *shasta.Proc) {
		procs := p.NumProcs()
		lo, hi := p.ID()*n/procs, (p.ID()+1)*n/procs
		// Producer phase: each processor fills its slice.
		for i := lo; i < hi; i++ {
			p.StoreF64(arr+shasta.Addr(i*8), float64(i))
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats()
		}
		p.Barrier()
		// Consumer phase: read a slice produced elsewhere, batched per
		// 2 KiB chunk as a tuned application would.
		src := (p.ID() + 5) % procs
		slo, shi := src*n/procs, (src+1)*n/procs
		sum := 0.0
		for c := slo; c < shi; c += 256 {
			end := c + 256
			if end > shi {
				end = shi
			}
			p.Batch([]shasta.BatchRef{{
				Base:  arr + shasta.Addr(c*8),
				Bytes: (end - c) * 8,
			}}, func(b *shasta.Batch) {
				for i := c; i < end; i++ {
					sum += b.LoadF64(arr + shasta.Addr(i*8))
					b.Compute(4)
				}
			})
		}
		p.Barrier()
	})
	return res.ParallelSeconds() * 1e3, res.Stats.TotalMisses()
}

func main() {
	fmt.Println("16 processors each consume a 16 KiB slice produced on another node.")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s\n", "block size", "misses", "time (ms)")
	var base float64
	for _, bs := range []int{64, 256, 1024, 2048} {
		ms, misses := run(bs)
		if bs == 64 {
			base = ms
		}
		fmt.Printf("%-12d %12d %9.2f  (%.1fx)\n", bs, misses, ms, base/ms)
	}
	fmt.Println()
	fmt.Println("Larger blocks amortize the per-miss protocol cost; the hint is per")
	fmt.Println("allocation, so only the structures that benefit pay the false-sharing")
	fmt.Println("risk of coarse granularity.")
}
