package shasta_test

// Acceptance tests for the sharing observatory (OBSERVABILITY.md section 7):
// on LU at 256-byte lines the false-sharing detector must flag blocks with
// disjoint per-writer sub-block offsets, and on a 3-hop-heavy run the
// placement advisor must propose a home that beats the configured one — with
// identical diagnoses under serial and parallel scheduling.

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
)

// luSnapshot runs LU at 8 processors, clustering 4, 256-byte lines and
// returns its metrics snapshot.
func luSnapshot(t *testing.T, parallel bool) *shasta.Metrics {
	t.Helper()
	cfg := shasta.Config{Procs: 8, Clustering: 4, LineSize: 256, Parallel: parallel}
	r, err := apps.ExecuteObserved(apps.Registry["LU"](1), cfg, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r.Metrics
}

// TestLU256FalseSharingDetected asserts the headline diagnosis: LU's
// row-major matrix with 2D-cyclic 16x16 block ownership puts two owners'
// disjoint halves into every 256-byte coherence block, and the observatory
// must flag at least one such block with the offset evidence.
func TestLU256FalseSharingDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("runs LU twice at 256-byte lines")
	}
	serial := luSnapshot(t, false)
	flagged := 0
	for i := range serial.Blocks {
		e := &serial.Blocks[i]
		if e.Pattern != obsv.PatternFalselyShared {
			continue
		}
		flagged++
		// The evidence must be disjoint nonzero writer masks, not just
		// the label.
		writers := 0
		var union, overlap uint64
		for _, a := range e.Accesses {
			m := obsv.ParseMask(a.WriteMask)
			if m == 0 {
				continue
			}
			writers++
			overlap |= union & m
			union |= m
		}
		if writers < 2 {
			t.Errorf("block %d flagged falsely-shared with %d mask-bearing writers", e.Block, writers)
		}
		if overlap != 0 {
			t.Errorf("block %d flagged falsely-shared but writer masks overlap (0x%x)", e.Block, overlap)
		}
	}
	if flagged == 0 {
		t.Fatal("no falsely-shared block flagged on LU at 256-byte lines")
	}

	parallel := luSnapshot(t, true)
	var sb, pb bytes.Buffer
	if err := serial.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Error("LU@256 metrics differ between serial and parallel scheduling")
	}
	if obsv.FormatFalseShare(serial) != obsv.FormatFalseShare(parallel) {
		t.Error("falseshare report differs between serial and parallel scheduling")
	}
}

// threehopSnapshot reproduces the shastatrace threehop fixture workload: a
// block homed on node 0, written by processor 7 (node 1) and read by node
// 0's processors, so every node-0 read miss takes 3 hops through the
// misplaced home.
func threehopSnapshot(t *testing.T, parallel bool) *shasta.Metrics {
	t.Helper()
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4, Parallel: parallel})
	arr := cluster.Alloc(256, 64)
	cluster.Run(func(p *shasta.Proc) {
		for round := 0; round < 8; round++ {
			if p.ID() == 7 {
				p.StoreF64(arr, float64(round))
			}
			p.Barrier()
			if p.ID() < 4 {
				_ = p.LoadF64(arr)
			}
			p.Barrier()
		}
	})
	return cluster.Metrics()
}

// TestAdvisorBeatsConfiguredHome asserts the advisor proposes a cheaper home
// on a 3-hop-heavy run, identically under both schedulers.
func TestAdvisorBeatsConfiguredHome(t *testing.T) {
	serial := threehopSnapshot(t, false)
	found := false
	for i := range serial.Blocks {
		e := &serial.Blocks[i]
		if e.AdvisedNode == e.HomeNode {
			continue
		}
		found = true
		if e.AdvisedCost >= e.HomeCost || e.SavingsCycles <= 0 {
			t.Errorf("block %d: advised node %d (cost %d) does not beat home node %d (cost %d), savings %d",
				e.Block, e.AdvisedNode, e.AdvisedCost, e.HomeNode, e.HomeCost, e.SavingsCycles)
		}
	}
	if !found {
		t.Fatal("advisor proposed no alternative home on a 3-hop-heavy run")
	}

	parallel := threehopSnapshot(t, true)
	if obsv.FormatAdvice(serial) != obsv.FormatAdvice(parallel) {
		t.Error("advice report differs between serial and parallel scheduling")
	}
}
