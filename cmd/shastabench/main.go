// Command shastabench regenerates the tables and figures of "Fine-Grain
// Software Distributed Shared Memory on SMP Clusters" on the simulated
// cluster.
//
// Usage:
//
//	shastabench [-scale N] [-apps a,b,c] [-obsv DIR] [-parallel auto|on|off] [-inject-race MODE]
//	            [-procs N] [-topology NxG] [-snapshot FILE] [-label NAME] [-migrate]
//	            [list | all | <experiment>...]
//
// Experiments: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 micro anl
// (plus the post-paper ablate, profile, pdes, sharing, races and scale
// experiments; see 'shastabench list').
//
// -procs, -topology, -snapshot and -label drive the scale experiment:
// -procs restricts the 16-256 processor sweep to one count, -topology
// overrides the node arrangement ("NxG" = N processors per SMP node, G
// nodes per uplink group; "N" alone keeps the interconnect flat), and
// -snapshot writes the measurements as a shasta-bench/v1 JSON snapshot
// named by -label for benchgate comparison. See PERFORMANCE.md for the
// benchmarking workflow.
//
// -migrate enables online home migration (see OBSERVABILITY.md §11) for
// every application run, so any experiment's tables can be regenerated
// under migration and compared against the static-home defaults; the
// dedicated migrate experiment reports the off/on contrast directly.
//
// -inject-race restricts the races experiment to one injection mode (none,
// drop-lock, reorder-publish); by default it runs all three and checks each
// detector verdict against ground truth.
//
// With -obsv DIR, every application run additionally emits a
// TRACE_<run>.jsonl protocol trace and a BENCH_<run>.json metrics snapshot
// into DIR; inspect them with the shastatrace command (see OBSERVABILITY.md).
//
// -parallel selects the simulation scheduler: on runs the conservative
// window-based parallel scheduler, off the serial one, and auto (the
// default) picks parallel whenever the host has more than one core. The
// two schedulers produce bit-identical results (the pdes experiment
// verifies this); the choice only affects host wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	scale := flag.Int("scale", 1, "problem size scale factor (1 = default experiment inputs)")
	appsFlag := flag.String("apps", "", "comma-separated application subset (default: the experiment's own set)")
	obsvDir := flag.String("obsv", "", "directory receiving TRACE_*.jsonl traces and BENCH_*.json metrics per run")
	parFlag := flag.String("parallel", "auto", "simulation scheduler: auto (parallel when the host has >1 core), on, off")
	injectRace := flag.String("inject-race", "", "races experiment: run only this injection mode (none, drop-lock, reorder-publish)")
	procs := flag.Int("procs", 0, "scale experiment: run only this processor count (0 = full 16-256 sweep)")
	topology := flag.String("topology", "", "scale experiment: node arrangement NxG (procs per node x nodes per group; \"N\" = flat)")
	snapshot := flag.String("snapshot", "", "scale experiment: write a shasta-bench/v1 snapshot to this file")
	label := flag.String("label", "", "snapshot label (default \"local\")")
	migrateFlag := flag.Bool("migrate", false, "enable online home migration for every application run (see OBSERVABILITY.md §11)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shastabench [-scale N] [-apps a,b,c] [-obsv DIR] [-parallel auto|on|off] [-inject-race MODE] [list | all | <experiment>...]\n\nexperiments:\n")
		for _, e := range harness.Experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "list") {
		flag.Usage()
		if len(args) == 0 {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{
		Scale:        *scale,
		InjectRace:   *injectRace,
		Procs:        *procs,
		Topology:     *topology,
		SnapshotPath: *snapshot,
		BenchLabel:   *label,
	}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	switch *parFlag {
	case "auto":
		harness.SetParallel(runtime.GOMAXPROCS(0) > 1)
	case "on":
		harness.SetParallel(true)
	case "off":
		harness.SetParallel(false)
	default:
		fmt.Fprintf(os.Stderr, "shastabench: -parallel must be auto, on or off (got %q)\n", *parFlag)
		os.Exit(2)
	}
	harness.SetMigrate(*migrateFlag)
	if *obsvDir != "" {
		if err := os.MkdirAll(*obsvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "shastabench: %v\n", err)
			os.Exit(1)
		}
		harness.SetObsvDir(*obsvDir)
	}

	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range harness.Experiments {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	for _, id := range ids {
		exp, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "shastabench: unknown experiment %q (try 'list')\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", exp.ID, exp.Title)
		start := time.Now()
		if err := exp.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "shastabench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
	}
}
