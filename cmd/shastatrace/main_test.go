package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// -update regenerates the committed fixtures and golden outputs from a
// fresh deterministic run: go test ./cmd/shastatrace -update
var update = flag.Bool("update", false, "rewrite testdata fixtures and golden files")

// fixtureRun is the fixed workload behind the committed fixtures: private
// stores, a barrier, a lock-protected increment of one contended block, a
// final barrier — enough traffic to exercise every analysis.
func fixtureRun(tr shasta.Tracer) *shasta.Cluster {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(1024, 64)
	lock := cluster.AllocLock()
	cluster.SetTracer(tr)
	cluster.Run(func(p *shasta.Proc) {
		p.StoreF64(arr+shasta.Addr(p.ID()*8), float64(p.ID()))
		p.Barrier()
		p.LockAcquire(lock)
		p.StoreF64(arr+512, p.LoadF64(arr+512)+1)
		p.LockRelease(lock)
		p.Barrier()
	})
	return cluster
}

// threehopRun is a placement-adverse workload for the advisor fixture: one
// page homed at processor 0 (node 0) whose single hot block is repeatedly
// written by processor 7 (node 1) and read by node 0's processors. Every
// node-0 read miss is a 3-hop forward through the misplaced home; homing the
// page on node 1 would serve the same traffic in 2 hops.
func threehopRun() *shasta.Cluster {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(256, 64)
	cluster.Run(func(p *shasta.Proc) {
		for round := 0; round < 8; round++ {
			if p.ID() == 7 {
				p.StoreF64(arr, float64(round))
			}
			p.Barrier()
			if p.ID() < 4 {
				_ = p.LoadF64(arr)
			}
			p.Barrier()
		}
	})
	return cluster
}

// migrateRun is the threehopRun pattern with online home migration enabled
// and more rounds: the hot block's home (processor 0) sees node 1's writes
// dominating its miss model and hands the directory entry over, so the
// trace carries migrate decision/installation events and tombstone
// forwards for the migrations fixture.
func migrateRun(tr shasta.Tracer) *shasta.Cluster {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4, Migrate: true})
	arr := cluster.Alloc(256, 64)
	cluster.SetTracer(tr)
	cluster.Run(func(p *shasta.Proc) {
		for round := 0; round < 24; round++ {
			if p.ID() == 7 {
				p.StoreF64(arr, float64(round))
			}
			p.Barrier()
			if p.ID() < 4 {
				_ = p.LoadF64(arr)
			}
			p.Barrier()
		}
	})
	return cluster
}

func writeMetrics(t *testing.T, path string, m *shasta.Metrics) {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeTrace(t *testing.T, path string, events []protocol.TraceEvent) {
	t.Helper()
	var buf bytes.Buffer
	if err := obsv.WriteHeader(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := obsv.WriteEvent(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// regenFixtures rewrites the committed input fixtures:
//
//	small.jsonl    full trace of the fixture run
//	bench.json     metrics snapshot of the same run
//	filtered.jsonl the trace filtered to its busiest block (a gapped trace)
//	corrupt.jsonl  the trace with a DataReply send removed and seqs
//	               renumbered — an invariant violation check must catch
//	threehop.json  metrics of the placement-adverse threehopRun workload
//	migrate.jsonl  trace of the migrateRun workload: online home migration
//	               hands the hot block to the writer's node mid-run
//	lu256.json     metrics of LU at 256-byte lines (the paper's
//	               false-sharing granularity for LU)
//	racy.jsonl     trace of the synthetic Racy workload with the drop-lock
//	               injection — the races analysis must flag it
func regenFixtures(t *testing.T) {
	t.Helper()
	col := &shasta.CollectorTracer{}
	cluster := fixtureRun(col)
	writeTrace(t, "testdata/small.jsonl", col.Events)
	writeMetrics(t, "testdata/bench.json", cluster.Metrics())

	// Clustering 1 (base Shasta): intra-node hardware sharing is invisible
	// to the trace, so the injected accesses must all be protocol events.
	rcol := &shasta.CollectorTracer{}
	if _, err := apps.ExecuteObserved(apps.NewRacy(1, "drop-lock"),
		shasta.Config{Procs: 8, Clustering: 1}, false, rcol); err != nil {
		t.Fatal(err)
	}
	writeTrace(t, "testdata/racy.jsonl", rcol.Events)

	writeMetrics(t, "testdata/threehop.json", threehopRun().Metrics())

	mcol := &shasta.CollectorTracer{}
	migrateRun(mcol)
	writeTrace(t, "testdata/migrate.jsonl", mcol.Events)

	r, err := apps.ExecuteObserved(apps.Registry["LU"](1),
		shasta.Config{Procs: 8, Clustering: 4, LineSize: 256}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	writeMetrics(t, "testdata/lu256.json", r.Metrics)

	byBlk := map[int]int{}
	for _, e := range col.Events {
		if e.BaseLine >= 0 {
			byBlk[e.BaseLine]++
		}
	}
	busiest, n := -1, 0
	for blk, c := range byBlk {
		if c > n {
			busiest, n = blk, c
		}
	}
	var filtered []protocol.TraceEvent
	for _, e := range col.Events {
		if e.BaseLine == busiest {
			filtered = append(filtered, e)
		}
	}
	writeTrace(t, "testdata/filtered.jsonl", filtered)

	var corrupt []protocol.TraceEvent
	dropped := false
	for _, e := range col.Events {
		if !dropped && e.Op == "send" && e.Msg == "DataReply" {
			dropped = true
			continue
		}
		corrupt = append(corrupt, e)
	}
	if !dropped {
		t.Fatal("fixture run produced no DataReply send")
	}
	for i := range corrupt {
		corrupt[i].Seq = uint64(i + 1) // close the gap: the anomaly is the orphan handle
	}
	writeTrace(t, "testdata/corrupt.jsonl", corrupt)
}

func TestGolden(t *testing.T) {
	if *update {
		regenFixtures(t)
	}
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"summarize", []string{"summarize", "testdata/small.jsonl"}, 0},
		{"timeline", []string{"timeline", "8", "testdata/small.jsonl"}, 0},
		{"diff-equal", []string{"diff", "testdata/small.jsonl", "testdata/small.jsonl"}, 0},
		{"diff-unequal", []string{"diff", "testdata/small.jsonl", "testdata/filtered.jsonl"}, 1},
		{"breakdown-metrics", []string{"breakdown", "testdata/bench.json"}, 0},
		{"breakdown-trace", []string{"breakdown", "testdata/small.jsonl"}, 0},
		{"hist-metrics", []string{"hist", "testdata/bench.json"}, 0},
		{"hist-trace", []string{"hist", "testdata/small.jsonl"}, 0},
		// hist-empty.json and hist-single.json are hand-written edge-case
		// fixtures (not regenerated by -update): an empty histogram plus a
		// malformed all-zero-bucket one, and a single-bucket histogram. Both
		// must render without est lines going NaN or dividing by zero.
		{"hist-empty", []string{"hist", "testdata/hist-empty.json"}, 0},
		{"hist-single", []string{"hist", "testdata/hist-single.json"}, 0},
		{"critpath", []string{"critpath", "testdata/small.jsonl"}, 0},
		{"critpath-gapped", []string{"critpath", "testdata/filtered.jsonl"}, 0},
		{"spans", []string{"spans", "-top", "3", "testdata/small.jsonl"}, 0},
		{"spans-gapped", []string{"spans", "-top", "0", "testdata/filtered.jsonl"}, 0},
		{"phases", []string{"phases", "-w", "4", "testdata/small.jsonl"}, 0},
		{"check-clean", []string{"check", "testdata/small.jsonl"}, 0},
		{"check-corrupt", []string{"check", "testdata/corrupt.jsonl"}, 1},
		{"check-gapped", []string{"check", "testdata/filtered.jsonl"}, 0},
		{"races-clean", []string{"races", "testdata/small.jsonl"}, 0},
		{"races-racy", []string{"races", "testdata/racy.jsonl"}, 1},
		{"sync", []string{"sync", "-top", "3", "testdata/small.jsonl"}, 0},
		// filtered.jsonl carries no sync events at all: the sync and skew
		// reports must degrade to gapped/empty accounting, still exit 0.
		{"sync-gapped", []string{"sync", "testdata/filtered.jsonl"}, 0},
		{"sync-racy", []string{"sync", "-top", "2", "testdata/racy.jsonl"}, 0},
		{"skew", []string{"skew", "testdata/small.jsonl"}, 0},
		{"skew-gapped", []string{"skew", "testdata/filtered.jsonl"}, 0},
		{"migrations", []string{"migrations", "testdata/migrate.jsonl"}, 0},
		{"migrations-none", []string{"migrations", "testdata/small.jsonl"}, 0},
		{"migrations-timeline", []string{"timeline", "0", "testdata/migrate.jsonl"}, 0},
		{"filter", []string{"filter", "-p", "4", "-op", "send,handle", "testdata/small.jsonl"}, 0},
		{"blocks", []string{"blocks", "-n", "10", "testdata/bench.json"}, 0},
		{"blocks-lu256", []string{"blocks", "-n", "10", "testdata/lu256.json"}, 0},
		{"falseshare", []string{"falseshare", "testdata/bench.json"}, 0},
		{"falseshare-lu256", []string{"falseshare", "testdata/lu256.json"}, 0},
		{"advise", []string{"advise", "testdata/bench.json"}, 0},
		{"advise-threehop", []string{"advise", "testdata/threehop.json"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d; stderr:\n%s", code, tc.wantCode, stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, stdout.String(), want)
			}
		})
	}
}

func TestExportChromeFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"export-chrome", "testdata/small.jsonl"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
	var out []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("empty export")
	}
}

func TestCheckReportsCorruption(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "testdata/corrupt.jsonl"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "FAIL") ||
		!strings.Contains(stdout.String(), "handle-has-send") {
		t.Fatalf("report:\n%s", stdout.String())
	}
}

// TestExitCodes pins the documented contract: 2 for usage/I-O/schema
// problems, 1 only for analyses that found a difference or violation.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-args", nil, 2},
		{"unknown-cmd", []string{"frobnicate"}, 2},
		{"summarize-no-files", []string{"summarize"}, 2},
		{"missing-file", []string{"summarize", "testdata/nope.jsonl"}, 2},
		{"wrong-schema", []string{"summarize", "testdata/bench.json"}, 2},
		{"breakdown-wrong-schema", []string{"breakdown", "main.go"}, 2},
		{"timeline-bad-block", []string{"timeline", "x", "testdata/small.jsonl"}, 2},
		{"filter-bad-flag", []string{"filter", "-sample", "x", "testdata/small.jsonl"}, 2},
		{"diff-one-file", []string{"diff", "testdata/small.jsonl"}, 2},
		{"mixed-metrics-trace", []string{"hist", "testdata/bench.json", "testdata/small.jsonl"}, 2},
		{"blocks-on-trace", []string{"blocks", "testdata/small.jsonl"}, 2},
		{"blocks-no-file", []string{"blocks"}, 2},
		{"falseshare-two-files", []string{"falseshare", "testdata/bench.json", "testdata/threehop.json"}, 2},
		{"advise-on-trace", []string{"advise", "testdata/small.jsonl"}, 2},
		{"races-no-files", []string{"races"}, 2},
		{"races-on-metrics", []string{"races", "testdata/bench.json"}, 2},
		{"races-gapped", []string{"races", "testdata/filtered.jsonl"}, 2},
		{"spans-no-file", []string{"spans"}, 2},
		{"spans-on-metrics", []string{"spans", "testdata/bench.json"}, 2},
		{"phases-bad-flag", []string{"phases", "-w", "x", "testdata/small.jsonl"}, 2},
		{"sync-no-files", []string{"sync"}, 2},
		{"sync-bad-flag", []string{"sync", "-top", "x", "testdata/small.jsonl"}, 2},
		{"sync-on-metrics", []string{"sync", "testdata/bench.json"}, 2},
		{"skew-no-files", []string{"skew"}, 2},
		{"skew-on-metrics", []string{"skew", "testdata/bench.json"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Fatalf("exit code %d, want %d; stderr:\n%s", code, tc.want, stderr.String())
			}
			if tc.want == 2 && stderr.Len() == 0 {
				t.Fatal("usage/schema error produced no stderr diagnostics")
			}
		})
	}
}

// TestUsageDocumentsExitCodes keeps the usage text honest: every subcommand
// is listed with a description and the 0/1/2 exit status contract appears.
func TestUsageDocumentsExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run(nil, &stdout, &stderr)
	for _, want := range []string{
		"exit status", "summarize", "filter", "timeline", "diff", "check",
		"critpath", "export-chrome", "breakdown", "hist",
		"blocks", "falseshare", "advise", "races", "spans", "phases",
		"sync", "skew",
		"0  success", "1  analysis found", "2  usage",
	} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("usage text missing %q", want)
		}
	}
}

// TestHelpFlag pins -h/help: usage on stdout, exit 0.
func TestHelpFlag(t *testing.T) {
	for _, arg := range []string{"-h", "--help", "help"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{arg}, &stdout, &stderr); code != 0 {
			t.Errorf("%s: exit code %d, want 0", arg, code)
		}
		if !strings.Contains(stdout.String(), "usage:") {
			t.Errorf("%s printed no usage on stdout", arg)
		}
	}
}

// TestRacesGappedTraceExits2 pins the detector's soundness guard: a
// filtered (gapped) trace is missing synchronization events, so running
// races over it must be a hard error with a clear diagnostic — never a
// spurious "race-free" verdict.
func TestRacesGappedTraceExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"races", "testdata/filtered.jsonl"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2; stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "seq gaps") {
		t.Fatalf("diagnostic does not name the gapped trace:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "ok:") {
		t.Fatalf("gapped trace must not be reported race-free:\n%s", stdout.String())
	}
}

// TestRacesFlagsInjectedRace is the detector's acceptance check on a real
// workload trace: the drop-lock fixture must produce at least one race whose
// evidence names the contended counter accesses, with witness lines.
func TestRacesFlagsInjectedRace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"races", "testdata/racy.jsonl"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"RACES:", "race 1:", "witness:", "p1"} {
		if !strings.Contains(out, want) {
			t.Errorf("races report missing %q:\n%s", want, out)
		}
	}
}

// TestFalseshareFlagsLU256 is the paper-grounded acceptance check: at
// 256-byte lines, LU's row-major layout puts adjacent 16x16 blocks with
// different 2D-cyclic owners into one coherence block, and falseshare must
// flag at least one such block with disjoint per-writer offset evidence.
func TestFalseshareFlagsLU256(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"falseshare", "testdata/lu256.json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "falsely-shared block") || !strings.Contains(out, "writes") {
		t.Fatalf("no falsely-shared block flagged:\n%s", out)
	}
}

// TestAdviseBeatsConfiguredHome is the advisor's acceptance check: on the
// 3-hop-heavy threehop fixture (home on node 0, owner and traffic pattern
// favoring node 1) advise must propose a home whose hop-weighted cost beats
// the configured one.
func TestAdviseBeatsConfiguredHome(t *testing.T) {
	f, err := os.Open("testdata/threehop.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obsv.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range snap.Blocks {
		e := &snap.Blocks[i]
		if e.AdvisedNode != e.HomeNode && e.SavingsCycles > 0 {
			found = true
			if e.AdvisedCost >= e.HomeCost {
				t.Errorf("block %d: advised cost %d does not beat home cost %d",
					e.Block, e.AdvisedCost, e.HomeCost)
			}
		}
	}
	if !found {
		t.Fatal("advisor proposed no home beating the configured one on a 3-hop-heavy run")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"advise", "testdata/threehop.json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "node1") {
		t.Fatalf("advise output proposes no alternative home:\n%s", stdout.String())
	}
}
