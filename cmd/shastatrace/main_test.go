package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/obsv"
	"repro/internal/protocol"
)

// -update regenerates the committed fixtures and golden outputs from a
// fresh deterministic run: go test ./cmd/shastatrace -update
var update = flag.Bool("update", false, "rewrite testdata fixtures and golden files")

// fixtureRun is the fixed workload behind the committed fixtures: private
// stores, a barrier, a lock-protected increment of one contended block, a
// final barrier — enough traffic to exercise every analysis.
func fixtureRun(tr shasta.Tracer) *shasta.Cluster {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(1024, 64)
	lock := cluster.AllocLock()
	cluster.SetTracer(tr)
	cluster.Run(func(p *shasta.Proc) {
		p.StoreF64(arr+shasta.Addr(p.ID()*8), float64(p.ID()))
		p.Barrier()
		p.LockAcquire(lock)
		p.StoreF64(arr+512, p.LoadF64(arr+512)+1)
		p.LockRelease(lock)
		p.Barrier()
	})
	return cluster
}

func writeTrace(t *testing.T, path string, events []protocol.TraceEvent) {
	t.Helper()
	var buf bytes.Buffer
	if err := obsv.WriteHeader(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := obsv.WriteEvent(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// regenFixtures rewrites the committed input fixtures:
//
//	small.jsonl    full trace of the fixture run
//	bench.json     metrics snapshot of the same run
//	filtered.jsonl the trace filtered to its busiest block (a gapped trace)
//	corrupt.jsonl  the trace with a DataReply send removed and seqs
//	               renumbered — an invariant violation check must catch
func regenFixtures(t *testing.T) {
	t.Helper()
	col := &shasta.CollectorTracer{}
	cluster := fixtureRun(col)
	writeTrace(t, "testdata/small.jsonl", col.Events)

	var mbuf bytes.Buffer
	if err := cluster.Metrics().WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/bench.json", mbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	byBlk := map[int]int{}
	for _, e := range col.Events {
		if e.BaseLine >= 0 {
			byBlk[e.BaseLine]++
		}
	}
	busiest, n := -1, 0
	for blk, c := range byBlk {
		if c > n {
			busiest, n = blk, c
		}
	}
	var filtered []protocol.TraceEvent
	for _, e := range col.Events {
		if e.BaseLine == busiest {
			filtered = append(filtered, e)
		}
	}
	writeTrace(t, "testdata/filtered.jsonl", filtered)

	var corrupt []protocol.TraceEvent
	dropped := false
	for _, e := range col.Events {
		if !dropped && e.Op == "send" && e.Msg == "DataReply" {
			dropped = true
			continue
		}
		corrupt = append(corrupt, e)
	}
	if !dropped {
		t.Fatal("fixture run produced no DataReply send")
	}
	for i := range corrupt {
		corrupt[i].Seq = uint64(i + 1) // close the gap: the anomaly is the orphan handle
	}
	writeTrace(t, "testdata/corrupt.jsonl", corrupt)
}

func TestGolden(t *testing.T) {
	if *update {
		regenFixtures(t)
	}
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"summarize", []string{"summarize", "testdata/small.jsonl"}, 0},
		{"timeline", []string{"timeline", "8", "testdata/small.jsonl"}, 0},
		{"diff-equal", []string{"diff", "testdata/small.jsonl", "testdata/small.jsonl"}, 0},
		{"diff-unequal", []string{"diff", "testdata/small.jsonl", "testdata/filtered.jsonl"}, 1},
		{"breakdown-metrics", []string{"breakdown", "testdata/bench.json"}, 0},
		{"breakdown-trace", []string{"breakdown", "testdata/small.jsonl"}, 0},
		{"hist-metrics", []string{"hist", "testdata/bench.json"}, 0},
		{"hist-trace", []string{"hist", "testdata/small.jsonl"}, 0},
		{"critpath", []string{"critpath", "testdata/small.jsonl"}, 0},
		{"critpath-gapped", []string{"critpath", "testdata/filtered.jsonl"}, 0},
		{"check-clean", []string{"check", "testdata/small.jsonl"}, 0},
		{"check-corrupt", []string{"check", "testdata/corrupt.jsonl"}, 1},
		{"check-gapped", []string{"check", "testdata/filtered.jsonl"}, 0},
		{"filter", []string{"filter", "-p", "4", "-op", "send,handle", "testdata/small.jsonl"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d; stderr:\n%s", code, tc.wantCode, stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, stdout.String(), want)
			}
		})
	}
}

func TestExportChromeFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"export-chrome", "testdata/small.jsonl"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
	var out []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("empty export")
	}
}

func TestCheckReportsCorruption(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "testdata/corrupt.jsonl"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "FAIL") ||
		!strings.Contains(stdout.String(), "handle-has-send") {
		t.Fatalf("report:\n%s", stdout.String())
	}
}

// TestExitCodes pins the documented contract: 2 for usage/I-O/schema
// problems, 1 only for analyses that found a difference or violation.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-args", nil, 2},
		{"unknown-cmd", []string{"frobnicate"}, 2},
		{"summarize-no-files", []string{"summarize"}, 2},
		{"missing-file", []string{"summarize", "testdata/nope.jsonl"}, 2},
		{"wrong-schema", []string{"summarize", "testdata/bench.json"}, 2},
		{"breakdown-wrong-schema", []string{"breakdown", "main.go"}, 2},
		{"timeline-bad-block", []string{"timeline", "x", "testdata/small.jsonl"}, 2},
		{"filter-bad-flag", []string{"filter", "-sample", "x", "testdata/small.jsonl"}, 2},
		{"diff-one-file", []string{"diff", "testdata/small.jsonl"}, 2},
		{"mixed-metrics-trace", []string{"hist", "testdata/bench.json", "testdata/small.jsonl"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Fatalf("exit code %d, want %d; stderr:\n%s", code, tc.want, stderr.String())
			}
			if tc.want == 2 && stderr.Len() == 0 {
				t.Fatal("usage/schema error produced no stderr diagnostics")
			}
		})
	}
}

// TestUsageDocumentsExitCodes keeps the usage text honest about the exit
// status contract.
func TestUsageDocumentsExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run(nil, &stdout, &stderr)
	for _, want := range []string{"exit status", "check", "critpath", "export-chrome", "breakdown", "hist"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("usage text missing %q", want)
		}
	}
}
