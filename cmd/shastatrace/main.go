// Command shastatrace inspects the JSONL traces and metrics snapshots
// emitted by the observability layer (see OBSERVABILITY.md for the formats).
//
// Usage:
//
//	shastatrace summarize <trace.jsonl>...
//	shastatrace filter [-p procs] [-op ops] [-blk lo-hi,...] [-sample N] <trace.jsonl>...
//	shastatrace timeline <block> <trace.jsonl>...
//	shastatrace diff <a.jsonl> <b.jsonl>
//
// Multiple trace files are read in order and concatenated, so rotated
// segments (trace.jsonl trace.1.jsonl ...) can be passed together.
// summarize and diff produce deterministic output: two runs of the same
// program and configuration summarize byte-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obsv"
	"repro/internal/protocol"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  shastatrace summarize <trace.jsonl>...
  shastatrace filter [-p procs] [-op ops] [-blk lo-hi,...] [-sample N] <trace.jsonl>...
  shastatrace timeline <block> <trace.jsonl>...
  shastatrace diff <a.jsonl> <b.jsonl>
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "shastatrace: %v\n", err)
	os.Exit(1)
}

// readTraces reads and concatenates the events of all listed trace files.
func readTraces(paths []string) []protocol.TraceEvent {
	var all []protocol.TraceEvent
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		_, events, err := obsv.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		all = append(all, events...)
	}
	return all
}

func parseIntSet(s string) map[int]bool {
	if s == "" {
		return nil
	}
	set := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad processor list %q: %w", s, err))
		}
		set[n] = true
	}
	return set
}

func parseOpSet(s string) map[string]bool {
	if s == "" {
		return nil
	}
	set := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		set[strings.TrimSpace(part)] = true
	}
	return set
}

func parseRanges(s string) []obsv.BlockRange {
	if s == "" {
		return nil
	}
	var ranges []obsv.BlockRange
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		r := obsv.BlockRange{}
		var err error
		if r.Lo, err = strconv.Atoi(lo); err != nil {
			fatal(fmt.Errorf("bad block range %q: %w", part, err))
		}
		if found {
			if r.Hi, err = strconv.Atoi(hi); err != nil {
				fatal(fmt.Errorf("bad block range %q: %w", part, err))
			}
		} else {
			r.Hi = r.Lo
		}
		ranges = append(ranges, r)
	}
	return ranges
}

func cmdSummarize(args []string) {
	if len(args) == 0 {
		usage()
	}
	fmt.Print(obsv.Summarize(readTraces(args)).Format())
}

func cmdFilter(args []string) {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	procs := fs.String("p", "", "comma-separated processor IDs to keep")
	ops := fs.String("op", "", "comma-separated event kinds to keep (see protocol.TraceOps)")
	blocks := fs.String("blk", "", "comma-separated block base lines or lo-hi ranges to keep")
	sample := fs.Int("sample", 0, "keep every Nth matching event")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	out := os.Stdout
	f := &obsv.Filter{
		Next: protocol.TracerFunc(func(e protocol.TraceEvent) {
			if err := obsv.WriteEvent(out, e); err != nil {
				fatal(err)
			}
		}),
		Procs:  parseIntSet(*procs),
		Ops:    parseOpSet(*ops),
		Blocks: parseRanges(*blocks),
		Sample: *sample,
	}
	events := readTraces(fs.Args())
	if err := obsv.WriteHeader(out); err != nil {
		fatal(err)
	}
	for _, e := range events {
		f.Event(e)
	}
}

func cmdTimeline(args []string) {
	if len(args) < 2 {
		usage()
	}
	block, err := strconv.Atoi(args[0])
	if err != nil {
		fatal(fmt.Errorf("bad block %q: %w", args[0], err))
	}
	fmt.Print(obsv.Timeline(readTraces(args[1:]), block))
}

func cmdDiff(args []string) {
	if len(args) != 2 {
		usage()
	}
	a := obsv.Summarize(readTraces(args[:1]))
	b := obsv.Summarize(readTraces(args[1:]))
	d, equal := obsv.Diff(a, b)
	if equal {
		fmt.Println("traces summarize identically")
		return
	}
	fmt.Print(d)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "summarize":
		cmdSummarize(args)
	case "filter":
		cmdFilter(args)
	case "timeline":
		cmdTimeline(args)
	case "diff":
		cmdDiff(args)
	default:
		usage()
	}
}
