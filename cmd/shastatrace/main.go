// Command shastatrace inspects the JSONL traces and metrics snapshots
// emitted by the observability layer (see OBSERVABILITY.md for the formats).
//
// Usage:
//
//	shastatrace summarize <trace.jsonl>...
//	shastatrace filter [-p procs] [-op ops] [-blk lo-hi,...] [-sample N] <trace.jsonl>...
//	shastatrace timeline <block> <trace.jsonl>...
//	shastatrace diff <a.jsonl> <b.jsonl>
//	shastatrace breakdown <metrics.json | trace.jsonl>...
//	shastatrace hist <metrics.json | trace.jsonl>...
//	shastatrace critpath <trace.jsonl>...
//	shastatrace spans [-top K] <trace.jsonl>...
//	shastatrace phases [-w N] <trace.jsonl>...
//	shastatrace export-chrome <trace.jsonl>...
//	shastatrace check <trace.jsonl>...
//	shastatrace races <trace.jsonl>...
//	shastatrace migrations <trace.jsonl>...
//	shastatrace sync [-top K] <trace.jsonl>...
//	shastatrace skew <trace.jsonl>...
//	shastatrace blocks [-n N] <metrics.json>
//	shastatrace falseshare <metrics.json>
//	shastatrace advise <metrics.json>
//
// Multiple trace files are read in order and concatenated, so rotated
// segments (trace.jsonl trace.1.jsonl ...) can be passed together.
// breakdown and hist accept either document kind: a metrics snapshot gives
// the exact cycle attribution, a bare trace a trace-derived approximation.
// All analysis output is deterministic: two runs of the same program and
// configuration summarize, profile and export byte-identically.
//
// Exit status: 0 on success; 1 when an analysis found a difference or a
// violation (diff on unequal traces, check on a bad trace, races on a racy
// trace); 2 on usage, I/O or schema errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obsv"
	"repro/internal/protocol"
)

const usageText = `usage: shastatrace <command> [args]

trace analysis (one or more trace.jsonl segments, concatenated in order):
  summarize <trace.jsonl>...      per-op and per-processor event counts and spans
  filter [flags] <trace.jsonl>... select events by -p procs, -op ops, -blk ranges,
                                  -sample 1-in-N; emits a filtered trace
  timeline <block> <trace.jsonl>...  one block's protocol history, in order
  diff <a.jsonl> <b.jsonl>        compare two trace summaries
  critpath <trace.jsonl>...       longest causal chain through the run
  spans [-top K] <trace.jsonl>... per-request stage waterfalls: tail percentiles
                                  by kind/hops/route/home/block, per-stage cycle
                                  shares, tail composition, K slowest requests
  phases [-w N] <trace.jsonl>...  windowed time-series of span stage totals
                                  over virtual time (N windows)
  export-chrome <trace.jsonl>...  chrome://tracing JSON of the trace, spans as
                                  async stage slices
  check <trace.jsonl>...          replay the trace through the invariant checker
  races <trace.jsonl>...          happens-before data-race detection over the
                                  trace's accesses and synchronization edges
  migrations <trace.jsonl>...     online home-migration activity: hand-off and
                                  forward totals, per-block home chains
  sync [-top K] <trace.jsonl>...  per-lock/barrier contention: wait and hold
                                  distributions, top-K contended locks with
                                  hand-off chains, wait-for summary,
                                  critical-path share per primitive
  skew <trace.jsonl>...           per-generation barrier arrival and departure
                                  skew with straggler attribution

profiles (metrics.json exact, or approximated from a bare trace):
  breakdown <file>...             per-processor execution-time profile
  hist <file>...                  miss round-trip latency histograms

sharing observatory (metrics.json only):
  blocks [-n N] <metrics.json>    top-N hot blocks with sharing-pattern labels
  falseshare <metrics.json>       per-writer sub-block offset evidence for
                                  falsely-shared blocks
  advise <metrics.json>           home-placement and block-size recommendations
                                  with estimated cycle savings

exit status:
  0  success
  1  analysis found a difference or a violation (diff, check, races)
  2  usage, I/O or schema error
`

// usageError aborts a subcommand with exit status 2; any other error also
// maps to 2 (I/O and schema problems). Analyses that complete but find a
// difference or violation return exit status 1 from their cmd function.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// readTraces reads and concatenates the events of all listed trace files.
func readTraces(paths []string) ([]protocol.TraceEvent, error) {
	var all []protocol.TraceEvent
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, events, err := obsv.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, events...)
	}
	return all, nil
}

// document is a parsed input file of either observability format: exactly
// one of snap and events is set.
type document struct {
	snap   *obsv.Snapshot
	events []protocol.TraceEvent
}

// readDoc opens a file and auto-detects its format by the schema field of
// its first JSON value: a shasta-metrics snapshot or a shasta-trace JSONL
// stream.
func readDoc(path string) (document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := firstJSON(b, &head); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case obsv.MetricsSchema:
		s, err := obsv.ReadSnapshot(bytes.NewReader(b))
		if err != nil {
			return document{}, fmt.Errorf("%s: %w", path, err)
		}
		return document{snap: s}, nil
	case obsv.TraceSchema:
		_, events, err := obsv.ReadTrace(bytes.NewReader(b))
		if err != nil {
			return document{}, fmt.Errorf("%s: %w", path, err)
		}
		return document{events: events}, nil
	}
	return document{}, fmt.Errorf("%s: schema %q is neither %s nor %s",
		path, head.Schema, obsv.MetricsSchema, obsv.TraceSchema)
}

// firstJSON decodes the first JSON value of a file: the header line of a
// JSONL trace, or the whole object of a metrics document.
func firstJSON(b []byte, v any) error {
	return json.NewDecoder(bytes.NewReader(b)).Decode(v)
}

func parseIntSet(s string) (map[int]bool, error) {
	if s == "" {
		return nil, nil
	}
	set := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, usageError{fmt.Sprintf("bad processor list %q: %v", s, err)}
		}
		set[n] = true
	}
	return set, nil
}

func parseOpSet(s string) map[string]bool {
	if s == "" {
		return nil
	}
	set := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		set[strings.TrimSpace(part)] = true
	}
	return set
}

func parseRanges(s string) ([]obsv.BlockRange, error) {
	if s == "" {
		return nil, nil
	}
	var ranges []obsv.BlockRange
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		r := obsv.BlockRange{}
		var err error
		if r.Lo, err = strconv.Atoi(lo); err != nil {
			return nil, usageError{fmt.Sprintf("bad block range %q: %v", part, err)}
		}
		if found {
			if r.Hi, err = strconv.Atoi(hi); err != nil {
				return nil, usageError{fmt.Sprintf("bad block range %q: %v", part, err)}
			}
		} else {
			r.Hi = r.Lo
		}
		ranges = append(ranges, r)
	}
	return ranges, nil
}

func cmdSummarize(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"summarize needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.Summarize(events).Format())
	return 0, nil
}

func cmdFilter(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("filter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.String("p", "", "comma-separated processor IDs to keep")
	ops := fs.String("op", "", "comma-separated event kinds to keep (see protocol.TraceOps)")
	blocks := fs.String("blk", "", "comma-separated block base lines or lo-hi ranges to keep")
	sample := fs.Int("sample", 0, "keep every Nth matching event")
	if err := fs.Parse(args); err != nil {
		return 2, usageError{err.Error()}
	}
	if fs.NArg() == 0 {
		return 2, usageError{"filter needs at least one trace file"}
	}
	procSet, err := parseIntSet(*procs)
	if err != nil {
		return 2, err
	}
	ranges, err := parseRanges(*blocks)
	if err != nil {
		return 2, err
	}
	events, err := readTraces(fs.Args())
	if err != nil {
		return 2, err
	}
	var werr error
	f := &obsv.Filter{
		Next: protocol.TracerFunc(func(e protocol.TraceEvent) {
			if err := obsv.WriteEvent(stdout, e); err != nil && werr == nil {
				werr = err
			}
		}),
		Procs:  procSet,
		Ops:    parseOpSet(*ops),
		Blocks: ranges,
		Sample: *sample,
	}
	if err := obsv.WriteHeader(stdout); err != nil {
		return 2, err
	}
	for _, e := range events {
		f.Event(e)
	}
	if werr != nil {
		return 2, werr
	}
	return 0, nil
}

func cmdTimeline(args []string, stdout io.Writer) (int, error) {
	if len(args) < 2 {
		return 2, usageError{"timeline needs a block and at least one trace file"}
	}
	block, err := strconv.Atoi(args[0])
	if err != nil {
		return 2, usageError{fmt.Sprintf("bad block %q: %v", args[0], err)}
	}
	events, err := readTraces(args[1:])
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.Timeline(events, block))
	return 0, nil
}

func cmdDiff(args []string, stdout io.Writer) (int, error) {
	if len(args) != 2 {
		return 2, usageError{"diff needs exactly two trace files"}
	}
	ea, err := readTraces(args[:1])
	if err != nil {
		return 2, err
	}
	eb, err := readTraces(args[1:])
	if err != nil {
		return 2, err
	}
	d, equal := obsv.Diff(obsv.Summarize(ea), obsv.Summarize(eb))
	if equal {
		fmt.Fprintln(stdout, "traces summarize identically")
		return 0, nil
	}
	fmt.Fprint(stdout, d)
	return 1, nil
}

// cmdBreakdown renders the execution-time profile: exact per-processor cycle
// attribution from a metrics snapshot, or an approximate activity view from
// a bare trace.
func cmdBreakdown(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"breakdown needs a metrics or trace file"}
	}
	doc, events, code, err := gatherDocs(args)
	if err != nil {
		return code, err
	}
	if doc != nil {
		if len(doc.Breakdown) == 0 {
			return 2, fmt.Errorf("metrics document has no breakdown section (pre-profiler snapshot?)")
		}
		fmt.Fprint(stdout, obsv.FormatBreakdown(doc))
		return 0, nil
	}
	fmt.Fprint(stdout, obsv.TraceBreakdown(events))
	return 0, nil
}

// cmdHist renders miss-latency histograms: the exact kind-and-distance
// histograms of a metrics snapshot, or miss-to-install latencies recovered
// from a bare trace.
func cmdHist(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"hist needs a metrics or trace file"}
	}
	doc, events, code, err := gatherDocs(args)
	if err != nil {
		return code, err
	}
	if doc != nil {
		if len(doc.Histograms) == 0 {
			return 2, fmt.Errorf("metrics document has no histograms section (pre-profiler snapshot?)")
		}
		fmt.Fprint(stdout, obsv.FormatHistograms(doc.Histograms))
		return 0, nil
	}
	hists, unmatched := obsv.TraceHistograms(events)
	fmt.Fprint(stdout, obsv.FormatHistograms(hists))
	if unmatched > 0 {
		fmt.Fprintf(stdout, "note: %d misses never installed (merged requests or truncated trace)\n", unmatched)
	}
	return 0, nil
}

// gatherDocs reads the argument files for breakdown/hist: either a single
// metrics snapshot, or one or more trace segments concatenated.
func gatherDocs(args []string) (*obsv.Snapshot, []protocol.TraceEvent, int, error) {
	first, err := readDoc(args[0])
	if err != nil {
		return nil, nil, 2, err
	}
	if first.snap != nil {
		if len(args) > 1 {
			return nil, nil, 2, usageError{"a metrics document cannot be concatenated with other files"}
		}
		return first.snap, nil, 0, nil
	}
	events := first.events
	if len(args) > 1 {
		rest, err := readTraces(args[1:])
		if err != nil {
			return nil, nil, 2, err
		}
		events = append(events, rest...)
	}
	return nil, events, 0, nil
}

func cmdCritPath(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"critpath needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	c := obsv.BuildCausal(events)
	fmt.Fprint(stdout, c.CriticalPath().Format(c))
	return 0, nil
}

// cmdSpans renders the request-span report: reconstruction accounting, tail
// percentiles by group, the per-stage breakdown and the slowest requests.
func cmdSpans(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 5, "number of slowest requests to show with waterfalls (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2, usageError{err.Error()}
	}
	if fs.NArg() == 0 {
		return 2, usageError{"spans needs at least one trace file"}
	}
	events, err := readTraces(fs.Args())
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatSpans(obsv.BuildSpans(events), *top))
	return 0, nil
}

// cmdPhases renders the windowed time-series of span stage totals.
func cmdPhases(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("phases", flag.ContinueOnError)
	fs.SetOutput(stderr)
	w := fs.Int("w", 8, "number of equal virtual-time windows")
	if err := fs.Parse(args); err != nil {
		return 2, usageError{err.Error()}
	}
	if fs.NArg() == 0 {
		return 2, usageError{"phases needs at least one trace file"}
	}
	events, err := readTraces(fs.Args())
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatPhases(obsv.BuildSpans(events), *w))
	return 0, nil
}

func cmdExportChrome(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"export-chrome needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	if err := obsv.ExportChrome(events, stdout); err != nil {
		return 2, err
	}
	return 0, nil
}

func cmdCheck(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"check needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	c := obsv.CheckTrace(events)
	fmt.Fprint(stdout, c.Report())
	if len(c.Violations()) > 0 {
		return 1, nil
	}
	return 0, nil
}

// cmdRaces runs the happens-before data-race detector over the trace. A
// gapped (filtered or sampled) trace is a schema error — the detector needs
// the complete event stream — so it exits 2, never a spurious "race-free".
func cmdRaces(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"races needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	rep, err := obsv.DetectRaces(events)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, rep.Format())
	if len(rep.Races) > 0 {
		return 1, nil
	}
	return 0, nil
}

// cmdMigrations reports the trace's online home-migration activity: hand-off
// and forward totals, then per-block home chains with cost evidence (see
// OBSERVABILITY.md §11).
func cmdMigrations(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"migrations needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.MigrationReport(events))
	return 0, nil
}

// cmdSync renders the synchronization contention report: per-primitive wait
// and hold distributions, the most contended locks with their ownership
// hand-off chains, the cycle-weighted wait-for summary, and each primitive's
// critical-path share (see OBSERVABILITY.md §12). Gapped or pre-extension
// traces degrade into dropped-lifecycle accounting, so the command always
// exits 0 on a readable trace.
func cmdSync(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sync", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 5, "number of most contended locks to show with hand-off chains (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2, usageError{err.Error()}
	}
	if fs.NArg() == 0 {
		return 2, usageError{"sync needs at least one trace file"}
	}
	events, err := readTraces(fs.Args())
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatSync(obsv.BuildSync(events), *top))
	return 0, nil
}

// cmdSkew renders the barrier observatory: per-generation arrival and
// departure skew with straggler attribution.
func cmdSkew(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, usageError{"skew needs at least one trace file"}
	}
	events, err := readTraces(args)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatSkew(obsv.BuildSync(events)))
	return 0, nil
}

// metricsDoc reads the single metrics document the observatory subcommands
// operate on, requiring a non-empty blocks section.
func metricsDoc(cmd string, args []string) (*obsv.Snapshot, error) {
	if len(args) != 1 {
		return nil, usageError{cmd + " needs exactly one metrics file"}
	}
	doc, err := readDoc(args[0])
	if err != nil {
		return nil, err
	}
	if doc.snap == nil {
		return nil, usageError{cmd + " needs a metrics document, not a trace"}
	}
	if len(doc.snap.Blocks) == 0 {
		return nil, fmt.Errorf("metrics document has no blocks section (pre-observatory snapshot, or a run with no attributed block activity)")
	}
	return doc.snap, nil
}

// cmdBlocks renders the top-N rows of the blocks section: the hottest
// coherence blocks with their classified sharing patterns.
func cmdBlocks(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("blocks", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 20, "number of blocks to show (0 = all recorded)")
	if err := fs.Parse(args); err != nil {
		return 2, usageError{err.Error()}
	}
	snap, err := metricsDoc("blocks", fs.Args())
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatBlocks(snap, *n))
	return 0, nil
}

// cmdFalseshare renders the offset-overlap evidence for blocks the
// classifier flagged as falsely shared.
func cmdFalseshare(args []string, stdout io.Writer) (int, error) {
	snap, err := metricsDoc("falseshare", args)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatFalseShare(snap))
	return 0, nil
}

// cmdAdvise renders the placement advisor's home and block-size
// recommendations.
func cmdAdvise(args []string, stdout io.Writer) (int, error) {
	snap, err := metricsDoc("advise", args)
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, obsv.FormatAdvice(snap))
	return 0, nil
}

// run dispatches a full command line (without the program name) and returns
// the process exit status, writing all output to the given streams.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var code int
	var err error
	switch cmd {
	case "-h", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	case "summarize":
		code, err = cmdSummarize(rest, stdout)
	case "filter":
		code, err = cmdFilter(rest, stdout, stderr)
	case "timeline":
		code, err = cmdTimeline(rest, stdout)
	case "diff":
		code, err = cmdDiff(rest, stdout)
	case "breakdown":
		code, err = cmdBreakdown(rest, stdout)
	case "hist":
		code, err = cmdHist(rest, stdout)
	case "critpath":
		code, err = cmdCritPath(rest, stdout)
	case "spans":
		code, err = cmdSpans(rest, stdout, stderr)
	case "phases":
		code, err = cmdPhases(rest, stdout, stderr)
	case "export-chrome":
		code, err = cmdExportChrome(rest, stdout)
	case "check":
		code, err = cmdCheck(rest, stdout)
	case "races":
		code, err = cmdRaces(rest, stdout)
	case "migrations":
		code, err = cmdMigrations(rest, stdout)
	case "sync":
		code, err = cmdSync(rest, stdout, stderr)
	case "skew":
		code, err = cmdSkew(rest, stdout)
	case "blocks":
		code, err = cmdBlocks(rest, stdout, stderr)
	case "falseshare":
		code, err = cmdFalseshare(rest, stdout)
	case "advise":
		code, err = cmdAdvise(rest, stdout)
	default:
		fmt.Fprint(stderr, usageText)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "shastatrace: %v\n", err)
		if _, isUsage := err.(usageError); isUsage {
			fmt.Fprint(stderr, usageText)
		}
	}
	return code
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
