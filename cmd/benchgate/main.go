// Command benchgate compares two shasta-bench/v1 snapshots (see
// PERFORMANCE.md) and fails when performance regressed.
//
// Usage:
//
//	benchgate [-tol FRACTION] OLD.json NEW.json
//
// Each scenario's wall-clock time is divided by its snapshot's calibration
// constant (a fixed arithmetic loop timed on the measuring host), so the
// gate compares host-speed-normalized ratios rather than raw seconds and a
// faster or slower CI machine does not by itself pass or fail the gate.
//
// Exit status:
//
//	0  every common scenario within tolerance
//	1  at least one scenario regressed by more than -tol (default 10%),
//	   or a scenario's virtual results (cycles, checksum) diverged
//	2  usage or snapshot-format error
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	tol := flag.Float64("tol", 0.10, "allowed fractional wall-clock growth per scenario")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-tol FRACTION] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := harness.ReadBenchSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: old snapshot: %v\n", err)
		os.Exit(2)
	}
	new, err := harness.ReadBenchSnapshot(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: new snapshot: %v\n", err)
		os.Exit(2)
	}

	cmp := harness.CompareBenchSnapshots(old, new, *tol)
	fmt.Printf("benchgate: %s (%s) vs %s (%s), tolerance +%.0f%%\n",
		flag.Arg(0), old.Label, flag.Arg(1), new.Label, *tol*100)
	fmt.Print(cmp.Report)
	if len(cmp.Diverged) > 0 {
		fmt.Printf("FAIL: virtual results diverged: %s\n", strings.Join(cmp.Diverged, ", "))
	}
	if len(cmp.Regressed) > 0 {
		fmt.Printf("FAIL: regressed: %s\n", strings.Join(cmp.Regressed, ", "))
	}
	if len(cmp.Diverged)+len(cmp.Regressed) > 0 {
		os.Exit(1)
	}
	// Name the normalization in the pass verdict: a reviewer reading CI
	// logs can see how much host-speed correction the gate applied.
	fmt.Printf("PASS (calibration factor %.2fx: old host %.1fms, new host %.1fms)\n",
		float64(new.CalibrationNs)/float64(old.CalibrationNs),
		float64(old.CalibrationNs)/1e6, float64(new.CalibrationNs)/1e6)
}
