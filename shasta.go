// Package shasta is a library-level reproduction of the Shasta fine-grain
// software distributed shared memory system and its SMP-cluster extension,
// from "Fine-Grain Software Distributed Shared Memory on SMP Clusters"
// (Scales, Gharachorloo, Aggarwal; WRL 97/3, HPCA 1998).
//
// Shasta supports a shared address space across cluster nodes entirely in
// software, at a fine (and per-data-structure variable) coherence
// granularity, by inserting state checks before loads and stores.
// SMP-Shasta — the paper's contribution — lets the processors of one SMP
// node share application data and protocol state through the hardware
// cache coherence, eliminating software protocol intervention for
// intra-node sharing while avoiding the race conditions between the
// non-atomic inline checks and protocol downgrades. It does so without
// putting any synchronization in the inline checks, using explicit
// intra-node downgrade messages delivered by polling, per-block protocol
// locking, and per-processor private state tables that make downgrades
// selective.
//
// Because a managed runtime cannot instrument its own loads and stores,
// this package runs programs on a deterministic discrete-event cluster
// simulator calibrated to the paper's prototype (four 4-processor
// 300 MHz AlphaServer 4100s on a Memory Channel network). Programs access
// shared memory through explicit Load/Store/Batch operations that perform
// exactly the checks Shasta's inline code performs and charge their
// documented costs to virtual 300 MHz clocks. Protocol behaviour — misses,
// message traffic, downgrades, stall time breakdowns — is reproduced
// faithfully and deterministically.
//
// # Quick start
//
//	cluster, err := shasta.NewCluster(shasta.Config{Procs: 8, Clustering: 4})
//	if err != nil { ... }
//	arr := cluster.Alloc(1024, 64) // 1 KiB of shared data, 64-byte blocks
//	result := cluster.Run(func(p *shasta.Proc) {
//	    p.StoreF64(arr+shasta.Addr(p.ID()*8), float64(p.ID()))
//	    p.Barrier()
//	    sum := 0.0
//	    for i := 0; i < p.NumProcs(); i++ {
//	        sum += p.LoadF64(arr + shasta.Addr(i*8))
//	    }
//	    _ = sum
//	})
//	fmt.Println(result.Stats.Summary())
package shasta

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/obsv"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Addr is a virtual address in the shared heap.
type Addr = memory.Addr

// Proc is a processor context. Application code receives one per processor
// from Cluster.Run and uses it for all shared-memory accesses,
// synchronization and (virtual) computation. See the methods of
// protocol.Proc: LoadF64/LoadU64/LoadU32, StoreF64/StoreU64/StoreU32,
// Batch, LockAcquire/LockRelease, Barrier, Compute, Poll, ResetStats.
type Proc = protocol.Proc

// Batch is the unchecked access context passed to batched code sequences.
type Batch = protocol.Batch

// BatchRef describes one base address range of a batched access sequence.
type BatchRef = protocol.BatchRef

// Stats aggregates the statistics of a run: misses by type and hop count,
// message counts by class, downgrade distributions and execution time
// breakdowns.
type Stats = stats.Run

// Tracer receives protocol-level events (requests, forwards, downgrade
// messages, replies) when attached to a cluster with Cluster.SetTracer —
// a filtered single-block trace reads like the protocol walkthroughs in
// the paper. See TracerFunc, WriterTracer and CollectorTracer.
type Tracer = protocol.Tracer

// TraceEvent is one traced protocol event.
type TraceEvent = protocol.TraceEvent

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = protocol.TracerFunc

// WriterTracer streams formatted trace lines to an io.Writer, optionally
// filtered by block.
type WriterTracer = protocol.WriterTracer

// CollectorTracer records trace events in memory.
type CollectorTracer = protocol.CollectorTracer

// TraceSchemaVersion is the version of the JSONL trace schema (see
// OBSERVABILITY.md).
const TraceSchemaVersion = protocol.TraceSchemaVersion

// JSONLSink streams trace events to JSONL trace files with buffering and
// optional rotation; build one with NewTraceSink and attach it with
// Cluster.SetTracer.
type JSONLSink = obsv.JSONLSink

// SinkOptions configure a JSONLSink (rotation threshold, buffer size).
type SinkOptions = obsv.SinkOptions

// TraceFilter forwards only matching events (by processor, op, block range)
// to another tracer, optionally sampling 1-in-N.
type TraceFilter = obsv.Filter

// BlockRange is an inclusive block range for TraceFilter.
type BlockRange = obsv.BlockRange

// Metrics is a frozen counter snapshot of a run (see Cluster.Metrics).
type Metrics = obsv.Snapshot

// NewTraceSink opens a JSONL trace sink writing to path.
func NewTraceSink(path string, opts SinkOptions) (*JSONLSink, error) {
	return obsv.NewJSONLSink(path, opts)
}

// FlagWord is the invalid-flag bit pattern Shasta stores into invalidated
// lines; application data that equals it triggers (correctly handled)
// false misses.
const FlagWord = memory.FlagWord

// Statistics classification constants, re-exported for report code.
const (
	// Message classes (Stats.MessagesBy).
	RemoteMsg    = stats.RemoteMsg
	LocalMsg     = stats.LocalMsg
	DowngradeMsg = stats.DowngradeMsg

	// Miss kinds (Stats.MissesBy).
	ReadMiss    = stats.ReadMiss
	WriteMiss   = stats.WriteMiss
	UpgradeMiss = stats.UpgradeMiss

	// Execution-time breakdown categories (per-processor TimeBy).
	TaskTime    = stats.Task
	ReadTime    = stats.Read
	WriteTime   = stats.Write
	SyncTime    = stats.Sync
	MessageTime = stats.Message
	OtherTime   = stats.Other
)

// Config selects the cluster arrangement and protocol variant.
type Config struct {
	// Procs is the number of processors (the paper uses 1..16).
	Procs int
	// ProcsPerNode is the SMP node size; defaults to 4 (AlphaServer 4100).
	ProcsPerNode int
	// NodesPerGroup switches the interconnect to a hierarchical topology:
	// SMP nodes are clustered in groups of this many under a shared
	// uplink, and messages between node groups pay extra latency and are
	// limited to a per-node share of the uplink bandwidth. 0 or 1 keeps
	// the paper's flat network. Used by the 64-256 processor scale
	// configurations; see PERFORMANCE.md.
	NodesPerGroup int
	// Clustering is the sharing-group size: 1 selects the Base-Shasta
	// protocol (message passing between all processors, but intra-node
	// messages still use fast shared-memory queues); 2 or 4 selects
	// SMP-Shasta with groups of that size. Defaults to 1.
	Clustering int
	// LineSize is the coherence line size in bytes; defaults to 64.
	LineSize int
	// HeapBytes is the shared heap capacity; defaults to 16 MiB (each
	// sharing group holds its own image of the heap).
	HeapBytes int64
	// Hardware disables the software protocol and checks entirely,
	// modelling hardware-coherent execution within one SMP (the paper's
	// ANL-macro comparison baseline).
	Hardware bool
	// MaxOutstanding bounds per-processor outstanding store misses;
	// defaults to 4.
	MaxOutstanding int
	// ForceSMPChecks applies the (costlier) SMP-Shasta inline check code
	// even with Clustering 1; the Table 1 checking-overhead experiment
	// measures SMP checks on one processor.
	ForceSMPChecks bool
	// ShareDirectory lets a requester colocated with a block's home
	// access the directory directly through the SMP shared memory,
	// avoiding the internal request message — one of the paper's
	// proposed extensions (Section 3.1).
	ShareDirectory bool
	// FastSync uses a hierarchical barrier that synchronizes group
	// members through shared memory, with one message-exchanging
	// representative per group — the paper's planned SMP-aware
	// synchronization primitives.
	FastSync bool
	// BroadcastDowngrades sends downgrade messages to every group member
	// on each downgrade instead of only to processors whose private
	// state tables show they accessed the block — the SoftFLASH TLB
	// shootdown behaviour, as an ablation of the private state tables.
	BroadcastDowngrades bool
	// Migrate enables online home migration: each block's home maintains
	// an incremental hop-weighted miss model (the same cost model as the
	// offline placement advisor, see OBSERVABILITY.md §11) and hands the
	// block's directory entry to a better-placed processor when the
	// modelled savings exceed a threshold with hysteresis. Results remain
	// deterministic and serial/parallel bit-identical. Incompatible with
	// ShareDirectory.
	Migrate bool
	// MigrateInterval is the number of home requests per block between
	// migration evaluations; 0 selects the protocol default (16). Lower
	// values react faster to placement skew at the price of more frequent
	// model evaluations.
	MigrateInterval int
	// MigrateThreshold is the minimum modelled per-write saving, in
	// hop-weighted cycles, required to trigger a hand-off; 0 selects the
	// protocol default (600, one node-local leg). Each completed migration
	// of a block doubles its effective threshold (hysteresis).
	MigrateThreshold int64
	// Parallel runs the simulation on the engine's conservative
	// window-based parallel scheduler: the processors of different SMP
	// nodes execute concurrently on real cores. Every result — cycles,
	// statistics, traces, metrics — is bit-identical to the default
	// serial scheduler's; only host wall-clock time changes.
	Parallel bool
	// FixedWindows forces the parallel scheduler's original fixed
	// lookahead windows, disabling adaptive per-domain window extension.
	// Results are bit-identical either way; benchmarks use the knob to
	// measure what the adaptive windows buy.
	FixedWindows bool
	// WindowCap bounds adaptive window run-ahead, in cycles beyond a
	// domain's own virtual time; 0 selects the engine default.
	WindowCap int64
}

// Cluster is a configured simulated cluster. Allocate shared data and
// application locks, then call Run exactly once.
type Cluster struct {
	sys *protocol.System
}

// Result reports a completed run.
type Result struct {
	// FinishCycles is the final virtual time (cycles at 300 MHz).
	FinishCycles int64
	// ParallelCycles is the virtual time of the measured phase (from the
	// last Proc.ResetStats call, or the whole run).
	ParallelCycles int64
	// Stats holds the full protocol statistics of the measured phase.
	Stats *Stats
}

// ParallelSeconds converts the measured phase to virtual seconds.
func (r Result) ParallelSeconds() float64 {
	return float64(r.ParallelCycles) / (300 * 1e6)
}

// NewCluster validates the configuration and builds a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	pcfg := protocol.Config{
		NumProcs:            cfg.Procs,
		ProcsPerNode:        cfg.ProcsPerNode,
		NodesPerGroup:       cfg.NodesPerGroup,
		Clustering:          cfg.Clustering,
		LineSize:            cfg.LineSize,
		HeapBytes:           cfg.HeapBytes,
		Hardware:            cfg.Hardware,
		MaxOutstanding:      cfg.MaxOutstanding,
		ForceSMPChecks:      cfg.ForceSMPChecks,
		ShareDirectory:      cfg.ShareDirectory,
		FastSync:            cfg.FastSync,
		BroadcastDowngrades: cfg.BroadcastDowngrades,
		Migrate:             cfg.Migrate,
		MigrateInterval:     cfg.MigrateInterval,
		MigrateThreshold:    cfg.MigrateThreshold,
		Parallel:            cfg.Parallel,
		FixedWindows:        cfg.FixedWindows,
		WindowCap:           cfg.WindowCap,
	}.WithDefaults()
	if err := pcfg.Validate(); err != nil {
		return nil, fmt.Errorf("shasta: %w", err)
	}
	return &Cluster{sys: protocol.New(pcfg)}, nil
}

// MustCluster is NewCluster for static configurations; it panics on error.
func MustCluster(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Alloc reserves shared memory kept coherent in blocks of blockSize bytes.
// blockSize 0 selects Shasta's default policy: objects under 1 KiB become a
// single block, larger objects use line-sized blocks. Passing an explicit
// blockSize is the paper's variable-granularity hint (a parameter to a
// modified malloc).
func (c *Cluster) Alloc(size int64, blockSize int) Addr {
	return c.sys.Alloc(size, blockSize)
}

// AllocPlaced is Alloc with every page homed at the given processor (the
// home placement optimization).
func (c *Cluster) AllocPlaced(size int64, blockSize, home int) Addr {
	return c.sys.AllocPlaced(size, blockSize, home)
}

// AllocHomed is Alloc with homes chosen per page by the callback, which
// receives the page-aligned byte offset from the start of the allocation.
func (c *Cluster) AllocHomed(size int64, blockSize int, home func(off int64) int) Addr {
	return c.sys.AllocHomed(size, blockSize, home)
}

// AllocPinned is Alloc with every block pinned to its configured home:
// online home migration (Config.Migrate) never moves it. Use for data whose
// placement the application already optimized by hand.
func (c *Cluster) AllocPinned(size int64, blockSize int) Addr {
	return c.sys.AllocPinned(size, blockSize)
}

// AllocLock creates an application lock and returns its identifier.
func (c *Cluster) AllocLock() int { return c.sys.AllocLock() }

// Procs returns the configured processor count.
func (c *Cluster) Procs() int { return c.sys.NumProcs() }

// Run executes body on every processor to completion and returns the
// measured result. Call at most once per Cluster.
func (c *Cluster) Run(body func(*Proc)) Result {
	finish := c.sys.Run(body)
	return Result{
		FinishCycles:   finish,
		ParallelCycles: c.sys.Stats().Cycles,
		Stats:          c.sys.Stats(),
	}
}

// Stats exposes the cluster's statistics (valid after Run).
func (c *Cluster) Stats() *Stats { return c.sys.Stats() }

// SetTracer attaches a protocol tracer (nil detaches); call before Run.
func (c *Cluster) SetTracer(tr Tracer) { c.sys.SetTracer(tr) }

// Metrics freezes the cluster's counters — protocol statistics, interconnect
// queueing, handler occupancy, lock hold times — into a snapshot that
// serializes to the deterministic shasta-metrics JSON document (see
// OBSERVABILITY.md). Call after Run.
func (c *Cluster) Metrics() *Metrics { return obsv.Snap(c.sys) }
