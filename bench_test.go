package shasta_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding harness experiment and
// reports the headline metric the paper's table or figure conveys as
// testing.B custom metrics, so `go test -bench . -benchmem` prints the
// reproduction alongside standard Go benchmarking output.
//
// The full reports (all rows and series) come from `go run ./cmd/shastabench`.

import (
	"io"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/harness"
)

// benchOpts are the default experiment options for benchmarks.
var benchOpts = harness.Options{Scale: 1}

// runExperiment executes one harness experiment, discarding the report
// (the metrics of interest are re-derived below).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := exp.Run(benchOpts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// appMetrics runs one application configuration and reports its virtual
// time and protocol counters.
func appMetrics(b *testing.B, app string, cfg shasta.Config, varGran bool) apps.RunResult {
	b.Helper()
	f := apps.Registry[app]
	var last apps.RunResult
	for i := 0; i < b.N; i++ {
		r, err := apps.Execute(f(1), cfg, varGran)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkTable1CheckingOverheads regenerates Table 1; the reported metric
// is the average SMP-Shasta checking overhead in percent (paper: 24.0%).
func BenchmarkTable1CheckingOverheads(b *testing.B) {
	runExperiment(b, "table1")
	seq, _ := apps.Execute(apps.NewLU(1, false), shasta.Config{Procs: 1, Hardware: true}, false)
	chk, _ := apps.Execute(apps.NewLU(1, false), shasta.Config{Procs: 1, ForceSMPChecks: true}, false)
	b.ReportMetric(100*(float64(chk.Result.ParallelCycles)/float64(seq.Result.ParallelCycles)-1),
		"LU-smp-overhead-%")
}

// BenchmarkTable2VariableGranularity regenerates Table 2; the metric is
// LU-Contig's 16-processor speedup improvement factor from the 2 KiB block
// hint (paper: 8.8/4.5 = 1.96x).
func BenchmarkTable2VariableGranularity(b *testing.B) {
	runExperiment(b, "table2")
	def := appMetrics(b, "LU-Contig", shasta.Config{Procs: 16, Clustering: 1}, false)
	vg := appMetrics(b, "LU-Contig", shasta.Config{Procs: 16, Clustering: 1}, true)
	b.ReportMetric(float64(def.Result.ParallelCycles)/float64(vg.Result.ParallelCycles),
		"LU-Contig-granularity-gain-x")
}

// BenchmarkTable3LargerProblems regenerates Table 3 (double-scale inputs).
func BenchmarkTable3LargerProblems(b *testing.B) {
	runExperiment(b, "table3")
}

// BenchmarkFig3Speedups regenerates the Figure 3 speedup curves; the metric
// is Ocean's 16-processor SMP-Shasta over Base-Shasta improvement (paper:
// ~1.9x, the largest clustering gain).
func BenchmarkFig3Speedups(b *testing.B) {
	runExperiment(b, "fig3")
	base := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 1}, false)
	smp := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 4}, false)
	b.ReportMetric(float64(base.Result.ParallelCycles)/float64(smp.Result.ParallelCycles),
		"Ocean-16p-SMP-gain-x")
}

// BenchmarkFig4Breakdowns regenerates the Figure 4 execution-time
// breakdowns.
func BenchmarkFig4Breakdowns(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5BreakdownsVarGran regenerates Figure 5 (variable
// granularity).
func BenchmarkFig5BreakdownsVarGran(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Misses regenerates Figure 6; the metric is the fraction of
// Base-Shasta misses remaining under clustering 4 for Ocean at 16
// processors (the paper's most dramatic reduction).
func BenchmarkFig6Misses(b *testing.B) {
	runExperiment(b, "fig6")
	base := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 1}, false)
	smp := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 4}, false)
	b.ReportMetric(100*float64(smp.Result.Stats.TotalMisses())/float64(base.Result.Stats.TotalMisses()),
		"Ocean-misses-remaining-%")
}

// BenchmarkFig7Messages regenerates Figure 7; the metric is total messages
// remaining under clustering 4 relative to Base for Ocean at 16 processors.
func BenchmarkFig7Messages(b *testing.B) {
	runExperiment(b, "fig7")
	base := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 1}, false)
	smp := appMetrics(b, "Ocean", shasta.Config{Procs: 16, Clustering: 4}, false)
	b.ReportMetric(100*float64(smp.Result.Stats.TotalMessages())/float64(base.Result.Stats.TotalMessages()),
		"Ocean-messages-remaining-%")
}

// BenchmarkFig8Downgrades regenerates Figure 8; the metric is the share of
// Water-Nsq downgrades needing all three downgrade messages at 16
// processors (the paper's migratory-data outlier).
func BenchmarkFig8Downgrades(b *testing.B) {
	runExperiment(b, "fig8")
	r := appMetrics(b, "Water-Nsq", shasta.Config{Procs: 16, Clustering: 4}, false)
	frac, _ := r.Result.Stats.DowngradeDistribution()
	b.ReportMetric(100*frac[3], "WaterNsq-3msg-downgrades-%")
}

// BenchmarkMicroDowngradeLatency regenerates the Section 4.4
// microbenchmark; the metrics are the added latency of the first and each
// additional downgrade (paper: ~10 us, then ~5 us).
func BenchmarkMicroDowngradeLatency(b *testing.B) {
	var lat [4]float64
	for i := 0; i < b.N; i++ {
		l, err := harness.MicroDowngradeLatency()
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(lat[1]-lat[0], "first-downgrade-us")
	b.ReportMetric((lat[3]-lat[1])/2, "per-extra-downgrade-us")
}

// BenchmarkANLComparison regenerates the Section 4.3 single-SMP
// comparison; the metric is how much slower SMP-Shasta runs than
// hardware-coherent execution on 4 processors, averaged over the
// applications (paper: 12.7%).
func BenchmarkANLComparison(b *testing.B) {
	runExperiment(b, "anl")
	var sum float64
	for _, name := range apps.Names {
		hw, _ := apps.Execute(apps.Registry[name](1),
			shasta.Config{Procs: 4, Clustering: 4, Hardware: true}, false)
		smp, _ := apps.Execute(apps.Registry[name](1),
			shasta.Config{Procs: 4, Clustering: 4}, false)
		sum += float64(smp.Result.ParallelCycles)/float64(hw.Result.ParallelCycles) - 1
	}
	b.ReportMetric(100*sum/float64(len(apps.Names)), "avg-slower-than-hw-%")
}

// --- Parallel simulation scheduler (host-side performance; virtual
// results are bit-identical between schedulers by contract) ---

// BenchmarkSchedulerSerialLU and BenchmarkSchedulerParallelLU run the same
// LU configuration — 8 processors, clustering 4, i.e. two SMP nodes —
// under the serial and the conservative window-based parallel scheduler.
// Comparing their ns/op gives the host speedup of parallel simulation on
// this machine (≈1x on a single core, more with cores to overlap the
// nodes on). The parallel benchmark also asserts the bit-identity
// contract against a serial reference run.
func BenchmarkSchedulerSerialLU(b *testing.B) {
	appMetrics(b, "LU", shasta.Config{Procs: 8, Clustering: 4}, false)
}

func BenchmarkSchedulerParallelLU(b *testing.B) {
	ref, err := apps.Execute(apps.NewLU(1, false), shasta.Config{Procs: 8, Clustering: 4}, false)
	if err != nil {
		b.Fatal(err)
	}
	par := appMetrics(b, "LU", shasta.Config{Procs: 8, Clustering: 4, Parallel: true}, false)
	if par.Result.ParallelCycles != ref.Result.ParallelCycles || par.Checksum != ref.Checksum {
		b.Fatalf("parallel scheduler diverged: cycles %d vs %d, checksum %v vs %v",
			par.Result.ParallelCycles, ref.Result.ParallelCycles, par.Checksum, ref.Checksum)
	}
	b.ReportMetric(float64(par.Result.ParallelCycles), "virtual-cycles")
}

// --- Ablation benchmarks for the paper's proposed extensions (Section 3.1
// optimizations the prototype did not yet implement, built here) ---

// ablationRun executes the Ocean workload at 16 processors, clustering 4,
// with the given extension configuration.
func ablationRun(b *testing.B, mod func(*shasta.Config)) apps.RunResult {
	b.Helper()
	cfg := shasta.Config{Procs: 16, Clustering: 4}
	if mod != nil {
		mod(&cfg)
	}
	var last apps.RunResult
	for i := 0; i < b.N; i++ {
		r, err := apps.Execute(apps.NewOcean(1), cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkAblationShareDirectory measures the message reduction from
// sharing directory state among colocated processors (the paper's
// "eliminating intra-node messages when requester and home are colocated").
func BenchmarkAblationShareDirectory(b *testing.B) {
	base := ablationRun(b, nil)
	shared := ablationRun(b, func(c *shasta.Config) { c.ShareDirectory = true })
	b.ReportMetric(100*float64(shared.Result.Stats.TotalMessages())/
		float64(base.Result.Stats.TotalMessages()), "messages-remaining-%")
	b.ReportMetric(float64(base.Result.ParallelCycles)/float64(shared.Result.ParallelCycles),
		"speedup-x")
}

// BenchmarkAblationFastSync measures the paper's planned SMP-aware
// hierarchical barrier against the message-based baseline.
func BenchmarkAblationFastSync(b *testing.B) {
	base := ablationRun(b, nil)
	fast := ablationRun(b, func(c *shasta.Config) { c.FastSync = true })
	b.ReportMetric(100*float64(fast.Result.Stats.TimeBy(shasta.SyncTime))/
		float64(base.Result.Stats.TimeBy(shasta.SyncTime)), "sync-time-remaining-%")
	b.ReportMetric(float64(base.Result.ParallelCycles)/float64(fast.Result.ParallelCycles),
		"speedup-x")
}

// BenchmarkAblationSelectiveDowngrades quantifies what the private state
// tables save against SoftFLASH-style broadcast shootdowns, on the
// downgrade-heavy Water-Nsquared workload.
func BenchmarkAblationSelectiveDowngrades(b *testing.B) {
	run := func(broadcast bool) apps.RunResult {
		cfg := shasta.Config{Procs: 16, Clustering: 4, BroadcastDowngrades: broadcast}
		var last apps.RunResult
		for i := 0; i < b.N; i++ {
			r, err := apps.Execute(apps.NewWaterNsq(1), cfg, false)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		return last
	}
	selective := run(false)
	broadcast := run(true)
	b.ReportMetric(float64(broadcast.Result.Stats.MessagesBy(shasta.DowngradeMsg))/
		float64(selective.Result.Stats.MessagesBy(shasta.DowngradeMsg)+1), "dg-msg-blowup-x")
	b.ReportMetric(float64(broadcast.Result.ParallelCycles)/float64(selective.Result.ParallelCycles),
		"broadcast-slowdown-x")
}
