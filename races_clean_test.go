package shasta_test

// The race detector's false-positive gate: every seed application is
// properly synchronized, so `shastatrace races` must report zero races on
// each of their traces, under both the serial and the parallel engine (the
// engines are bit-identical, so this doubles as a determinism check on the
// detector's input). A failure here means either a detector false positive
// — a happens-before edge the trace carries but the detector misses — or a
// real synchronization regression in an application.

import (
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
)

func TestNineAppsRaceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all nine applications under both engines")
	}
	for _, app := range apps.Names {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			for _, parallel := range []bool{false, true} {
				f := apps.Registry[app]
				col := &shasta.CollectorTracer{}
				cfg := shasta.Config{Procs: 8, Clustering: 4, Parallel: parallel}
				if _, err := apps.ExecuteObserved(f(1), cfg, false, col); err != nil {
					t.Fatalf("%s (parallel=%v): %v", app, parallel, err)
				}
				rep, err := obsv.DetectRaces(col.Events)
				if err != nil {
					t.Fatalf("%s (parallel=%v): DetectRaces: %v", app, parallel, err)
				}
				if len(rep.Races) != 0 {
					t.Errorf("%s (parallel=%v): detector reports races on a clean application:\n%s",
						app, parallel, rep.Format())
				}
				if rep.Accesses == 0 {
					t.Errorf("%s (parallel=%v): trace carries no accesses; detector input is empty",
						app, parallel)
				}
			}
		})
	}
}
