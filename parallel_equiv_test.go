package shasta_test

// The parallel scheduler's contract is bit-identical results: for every
// application, a run under the conservative window-based parallel scheduler
// must produce exactly the trace bytes, metrics bytes, derived span report,
// cycle count and checksum of the serial run. This test enforces the contract end to end
// over all nine applications at 8 processors (two SMP nodes, so the
// parallel runs genuinely use concurrent windows).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro"
	"repro/internal/apps"
	"repro/internal/obsv"
)

// observedRun executes one application and serializes its observable
// artifacts: the trace JSONL bytes, the metrics JSON bytes, the span and
// sync reports derived from the trace, the parallel cycle count, and the
// workload checksum. As a side effect it asserts two soundness invariants
// on the run: a complete trace reconstructs spans with no drops and every
// span's stage durations sum exactly to its end-to-end latency, and the
// trace-derived sync lifecycles reconcile exactly with the metrics
// registry's per-primitive counters (both record the same instants).
func observedRun(t *testing.T, app string, cfg shasta.Config) (trace, metrics []byte, spans, sync string, cycles int64, sum float64) {
	t.Helper()
	f, ok := apps.Registry[app]
	if !ok {
		t.Fatalf("unknown application %q", app)
	}
	col := &shasta.CollectorTracer{}
	r, err := apps.ExecuteObserved(f(1), cfg, false, col)
	if err != nil {
		t.Fatalf("%s (parallel=%v): %v", app, cfg.Parallel, err)
	}
	var tb bytes.Buffer
	if err := obsv.WriteHeader(&tb); err != nil {
		t.Fatal(err)
	}
	for _, e := range col.Events {
		if err := obsv.WriteEvent(&tb, e); err != nil {
			t.Fatal(err)
		}
	}
	var mb bytes.Buffer
	if err := r.Metrics.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	ss := obsv.BuildSpans(col.Events)
	if len(ss.Spans) == 0 {
		t.Errorf("%s (parallel=%v): no spans reconstructed", app, cfg.Parallel)
	}
	if ss.DroppedTotal() != 0 || len(ss.Warnings) != 0 {
		t.Errorf("%s (parallel=%v): complete trace dropped=%v warnings=%v",
			app, cfg.Parallel, ss.Dropped, ss.Warnings)
	}
	for i := range ss.Spans {
		var stageSum int64
		for _, st := range ss.Spans[i].Stages {
			stageSum += st.Cycles
		}
		if stageSum != ss.Spans[i].Total() {
			t.Fatalf("%s (parallel=%v): span seq=%d stages sum %d, want %d",
				app, cfg.Parallel, ss.Spans[i].Seq, stageSum, ss.Spans[i].Total())
		}
	}
	sync = checkSyncReconciles(t, app, cfg, col, r.Metrics)
	return tb.Bytes(), mb.Bytes(), obsv.FormatSpans(ss, 5), sync, r.Result.ParallelCycles, r.Checksum
}

// checkSyncReconciles builds the sync observatory's report from the trace
// and asserts that its per-lock wait and hold totals (and the barrier wait
// total) equal the metrics registry's per-primitive counters exactly: the
// protocol reads the virtual clock at the same instants it emits the
// bracketing trace events.
func checkSyncReconciles(t *testing.T, app string, cfg shasta.Config, col *shasta.CollectorTracer, m *shasta.Metrics) string {
	t.Helper()
	ss := obsv.BuildSync(col.Events)
	if ss.Gapped || ss.DroppedTotal() != 0 {
		t.Errorf("%s (parallel=%v): complete trace degraded: gapped=%v dropped=%v",
			app, cfg.Parallel, ss.Gapped, ss.Dropped)
	}
	type tot struct {
		acq, cont, wait, hold, gens int64
	}
	counted := map[string]tot{}
	for i := range m.Sync {
		s := &m.Sync[i]
		key := s.Kind
		if s.Kind == "lock" {
			key = fmt.Sprintf("lock %d", s.ID)
		}
		counted[key] = tot{s.Acquires, s.Contended, s.WaitCycles, s.HoldCycles, s.Generations}
	}
	traced := map[string]tot{}
	for i := range ss.Locks {
		l := &ss.Locks[i]
		traced[fmt.Sprintf("lock %d", l.ID)] = tot{
			int64(len(l.Acquires)), int64(l.Contended), l.WaitTotal, l.HoldTotal, 0}
	}
	if len(ss.Gens) > 0 {
		var wait int64
		for i := range ss.Gens {
			wait += ss.Gens[i].WaitTotal
		}
		traced["barrier"] = tot{wait: wait, gens: int64(len(ss.Gens))}
	}
	if !reflect.DeepEqual(counted, traced) {
		t.Errorf("%s (parallel=%v): sync totals do not reconcile:\n  metrics %v\n  trace   %v",
			app, cfg.Parallel, counted, traced)
	}
	return obsv.FormatSync(ss, 5) + obsv.FormatSkew(ss)
}

func TestParallelSchedulerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all nine applications twice")
	}
	for _, app := range apps.Names {
		t.Run(app, func(t *testing.T) {
			cfg := shasta.Config{Procs: 8, Clustering: 4}
			sTrace, sMetrics, sSpans, sSync, sCycles, sSum := observedRun(t, app, cfg)
			cfg.Parallel = true
			pTrace, pMetrics, pSpans, pSync, pCycles, pSum := observedRun(t, app, cfg)
			if sCycles != pCycles {
				t.Errorf("cycles differ: serial %d, parallel %d", sCycles, pCycles)
			}
			if sSum != pSum {
				t.Errorf("checksums differ: serial %v, parallel %v", sSum, pSum)
			}
			if !bytes.Equal(sMetrics, pMetrics) {
				t.Errorf("metrics JSON differs (%d vs %d bytes):\n--- serial ---\n%s\n--- parallel ---\n%s",
					len(sMetrics), len(pMetrics), firstDiffContext(sMetrics, pMetrics), firstDiffContext(pMetrics, sMetrics))
			}
			if !bytes.Equal(sTrace, pTrace) {
				t.Errorf("trace bytes differ (%d vs %d bytes); first divergence:\n%s",
					len(sTrace), len(pTrace), firstDiffContext(sTrace, pTrace))
			}
			// The span report is derived from the trace, but its own
			// byte-identity is pinned separately: reconstruction walks
			// maps and sorts, so this also guards against nondeterminism
			// in the span layer itself.
			if sSpans != pSpans {
				t.Errorf("span report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSpans), []byte(pSpans)))
			}
			if sSync != pSync {
				t.Errorf("sync report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSync), []byte(pSync)))
			}
			// The per-block sharing counters are the newest and most
			// order-sensitive part of the snapshot (mask ORs, per-proc
			// attribution), so the blocks section gets its own explicit
			// byte-identity check in addition to the whole-document one.
			sBlocks := blocksSection(t, sMetrics)
			pBlocks := blocksSection(t, pMetrics)
			if len(sBlocks.Blocks) == 0 || sBlocks.BlocksTotal == 0 {
				t.Errorf("serial metrics have no blocks section (blocks_total=%d)", sBlocks.BlocksTotal)
			}
			if !bytes.Equal(sBlocks.Blocks, pBlocks.Blocks) || sBlocks.BlocksTotal != pBlocks.BlocksTotal {
				t.Errorf("blocks section differs: serial %d bytes total=%d, parallel %d bytes total=%d:\n%s",
					len(sBlocks.Blocks), sBlocks.BlocksTotal, len(pBlocks.Blocks), pBlocks.BlocksTotal,
					firstDiffContext(sBlocks.Blocks, pBlocks.Blocks))
			}
		})
	}
}

// TestParallelSchedulerBitIdenticalMigrate enforces the bit-identity
// contract with online home migration enabled: migration decisions derive
// only from virtual-time-ordered directory state and every handshake or
// tombstone forward crosses SMP nodes (so it pays at least the lookahead
// latency), which must make serial and parallel runs — including the
// migrate/migfwd trace events and the migration counters — byte-identical.
func TestParallelSchedulerBitIdenticalMigrate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all nine applications twice")
	}
	for _, app := range apps.Names {
		t.Run(app, func(t *testing.T) {
			cfg := shasta.Config{Procs: 8, Clustering: 4, Migrate: true}
			sTrace, sMetrics, sSpans, sSync, sCycles, sSum := observedRun(t, app, cfg)
			cfg.Parallel = true
			pTrace, pMetrics, pSpans, pSync, pCycles, pSum := observedRun(t, app, cfg)
			if sCycles != pCycles {
				t.Errorf("cycles differ: serial %d, parallel %d", sCycles, pCycles)
			}
			if sSum != pSum {
				t.Errorf("checksums differ: serial %v, parallel %v", sSum, pSum)
			}
			if !bytes.Equal(sMetrics, pMetrics) {
				t.Errorf("metrics JSON differs (%d vs %d bytes); first divergence:\n%s",
					len(sMetrics), len(pMetrics), firstDiffContext(sMetrics, pMetrics))
			}
			if !bytes.Equal(sTrace, pTrace) {
				t.Errorf("trace bytes differ (%d vs %d bytes); first divergence:\n%s",
					len(sTrace), len(pTrace), firstDiffContext(sTrace, pTrace))
			}
			if sSpans != pSpans {
				t.Errorf("span report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSpans), []byte(pSpans)))
			}
			if sSync != pSync {
				t.Errorf("sync report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSync), []byte(pSync)))
			}
		})
	}
}

// TestParallelSchedulerBitIdenticalAtScale enforces the same contract at 64
// processors on a hierarchical topology (16 four-processor nodes in 4
// uplink groups): the serial scheduler, the parallel scheduler with fixed
// windows, and the parallel scheduler with adaptive windows (the default)
// must all produce identical trace bytes, metrics bytes, cycles and
// checksums. This is the scale regime the interconnect hierarchy and the
// adaptive windows were built for, so both knobs are exercised explicitly.
func TestParallelSchedulerBitIdenticalAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("64-processor runs under three schedulers")
	}
	base := shasta.Config{Procs: 64, Clustering: 4, NodesPerGroup: 4, HeapBytes: 4 << 20}
	sTrace, sMetrics, sSpans, sSync, sCycles, sSum := observedRun(t, "LU", base)
	mTrace, mMetrics, mSpans, mSync, mCycles, mSum := observedRun(t, "LU",
		shasta.Config{Procs: 64, Clustering: 4, NodesPerGroup: 4, HeapBytes: 4 << 20, Migrate: true})
	for _, mode := range []struct {
		name    string
		fixed   bool
		migrate bool
	}{{"fixed-windows", true, false}, {"adaptive-windows", false, false},
		{"migrate", false, true}} {
		t.Run(mode.name, func(t *testing.T) {
			sTrace, sMetrics, sSpans, sSync, sCycles, sSum := sTrace, sMetrics, sSpans, sSync, sCycles, sSum
			if mode.migrate {
				sTrace, sMetrics, sSpans, sSync, sCycles, sSum = mTrace, mMetrics, mSpans, mSync, mCycles, mSum
			}
			cfg := base
			cfg.Parallel = true
			cfg.FixedWindows = mode.fixed
			cfg.Migrate = mode.migrate
			pTrace, pMetrics, pSpans, pSync, pCycles, pSum := observedRun(t, "LU", cfg)
			if sCycles != pCycles {
				t.Errorf("cycles differ: serial %d, parallel %d", sCycles, pCycles)
			}
			if sSum != pSum {
				t.Errorf("checksums differ: serial %v, parallel %v", sSum, pSum)
			}
			if !bytes.Equal(sMetrics, pMetrics) {
				t.Errorf("metrics JSON differs (%d vs %d bytes); first divergence:\n%s",
					len(sMetrics), len(pMetrics), firstDiffContext(sMetrics, pMetrics))
			}
			if !bytes.Equal(sTrace, pTrace) {
				t.Errorf("trace bytes differ (%d vs %d bytes); first divergence:\n%s",
					len(sTrace), len(pTrace), firstDiffContext(sTrace, pTrace))
			}
			if sSpans != pSpans {
				t.Errorf("span report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSpans), []byte(pSpans)))
			}
			if sSync != pSync {
				t.Errorf("sync report differs; first divergence:\n%s",
					firstDiffContext([]byte(sSync), []byte(pSync)))
			}
		})
	}
}

// blocksSection extracts the raw blocks array and its total from a metrics
// document without interpreting the entries.
func blocksSection(t *testing.T, metrics []byte) (s struct {
	Blocks      json.RawMessage `json:"blocks"`
	BlocksTotal int             `json:"blocks_total"`
}) {
	t.Helper()
	if err := json.Unmarshal(metrics, &s); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	return s
}

// firstDiffContext renders the region around the first differing byte so a
// determinism regression is diagnosable from the test log.
func firstDiffContext(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	hi := i + 120
	if hi > len(a) {
		hi = len(a)
	}
	return string(a[lo:hi])
}
