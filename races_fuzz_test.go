package shasta_test

// Random-program fuzzing for the race detector, extending the scheduler
// equivalence fuzz (internal/sim) and the bit-identity suite
// (parallel_equiv_test.go) from "same trace bytes" to "same verdict, and
// the right one". The generator builds synchronized programs whose race
// freedom holds by construction — every block is, per barrier round,
// either written by one designated processor, read-only (and last written
// in an earlier round), or mutated under one global lock — then optionally
// seeds one ordering violation: in one round an attacker processor mutates
// a fresh block without the lock while victims mutate it locked. The
// detector's verdict must match that ground truth on every seed, under
// both the serial and the parallel engine, with identical reports.
//
// The attacker pattern pins down the observed-schedule subtlety: the
// attacker strikes immediately after the round barrier and then computes
// for a long time before arriving at the next one, so no sync message can
// carry its clock to the victims' lock chain — the conflicting pair is
// unordered in the trace itself, not just in some hypothetical schedule.

import (
	"testing"

	"repro"
	"repro/internal/obsv"
)

const (
	fuzzProcs   = 8
	fuzzBlocks  = 8 // shared blocks the clean actions draw from
	fuzzRounds  = 8 // barrier rounds per program
	fuzzActions = 3 // actions attempted per round
	fuzzSeeds   = 6 // programs fuzzed per verdict
)

const (
	aWrite  = iota // one designated processor writes the block
	aRead          // a subset of processors reads the block
	aLocked        // a subset mutates the block under the global lock
	aAttack        // the seeded violation: unlocked vs locked mutation
)

type fuzzAction struct {
	kind  int
	block int   // index into the shared block array
	proc  int   // writer (aWrite) or attacker (aAttack)
	procs []int // readers (aRead) or locked mutators (aLocked, aAttack)
}

type fuzzProgram struct {
	rounds   [][]fuzzAction
	racy     bool
	attacker int
}

// fuzzRNG is the test's deterministic generator (splitmix-style), so every
// seed builds the same program in every run.
type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// subset returns a random non-empty subset of [0, fuzzProcs).
func (r *fuzzRNG) subset() []int {
	var s []int
	for p := 0; p < fuzzProcs; p++ {
		if r.intn(2) == 1 {
			s = append(s, p)
		}
	}
	if len(s) == 0 {
		s = append(s, r.intn(fuzzProcs))
	}
	return s
}

// genProgram builds one program. Clean ground truth is maintained by two
// generator invariants: a block is used by at most one action per round,
// and a read action only targets blocks whose last write is in a strictly
// earlier round (the intervening barrier orders it).
func genProgram(seed uint64, racy bool) fuzzProgram {
	r := &fuzzRNG{s: seed}
	prog := fuzzProgram{racy: racy}
	lastWrite := make([]int, fuzzBlocks)
	for b := range lastWrite {
		lastWrite[b] = -1
	}
	racyRound := 1 + r.intn(fuzzRounds-2)
	for round := 0; round < fuzzRounds; round++ {
		var actions []fuzzAction
		used := make([]bool, fuzzBlocks)
		for i := 0; i < fuzzActions; i++ {
			blk := r.intn(fuzzBlocks)
			if used[blk] {
				continue
			}
			switch r.intn(3) {
			case aWrite:
				used[blk] = true
				lastWrite[blk] = round
				actions = append(actions, fuzzAction{kind: aWrite, block: blk, proc: r.intn(fuzzProcs)})
			case aRead:
				if lastWrite[blk] >= round {
					continue // written this round by an earlier action
				}
				used[blk] = true
				actions = append(actions, fuzzAction{kind: aRead, block: blk, procs: r.subset()})
			case aLocked:
				used[blk] = true
				lastWrite[blk] = round
				actions = append(actions, fuzzAction{kind: aLocked, block: blk, procs: r.subset()})
			}
		}
		if racy && round == racyRound {
			// The violation targets a dedicated fresh block (index
			// fuzzBlocks) no clean action ever touches, so the attacker's
			// unlocked accesses are guaranteed cold misses and therefore
			// trace-visible. The attacker is never the block's home
			// (processor 0); the victims are everyone else.
			attacker := 1 + r.intn(fuzzProcs-1)
			var victims []int
			for p := 0; p < fuzzProcs; p++ {
				if p != attacker {
					victims = append(victims, p)
				}
			}
			prog.attacker = attacker
			actions = append(actions, fuzzAction{kind: aAttack, block: fuzzBlocks, proc: attacker, procs: victims})
		}
		prog.rounds = append(prog.rounds, actions)
	}
	return prog
}

func fuzzContains(s []int, p int) bool {
	for _, v := range s {
		if v == p {
			return true
		}
	}
	return false
}

// runFuzzProgram executes the program on a fresh cluster and returns the
// detector's report. Clustering 1 and home placement at processor 0 keep
// every mutated access a protocol event (intra-node hardware sharing is
// invisible to the trace; see OBSERVABILITY.md).
func runFuzzProgram(t *testing.T, prog fuzzProgram, parallel bool) *obsv.RaceReport {
	t.Helper()
	cluster := shasta.MustCluster(shasta.Config{Procs: fuzzProcs, Clustering: 1, Parallel: parallel})
	base := cluster.AllocPlaced(int64(fuzzBlocks+1)*64, 64, 0)
	lock := cluster.AllocLock()
	col := &shasta.CollectorTracer{}
	cluster.SetTracer(col)
	addr := func(blk int) shasta.Addr { return base + shasta.Addr(blk*64) }
	cluster.Run(func(p *shasta.Proc) {
		for _, actions := range prog.rounds {
			for _, a := range actions {
				switch a.kind {
				case aWrite:
					if p.ID() == a.proc {
						p.StoreF64(addr(a.block), float64(a.block))
					}
				case aRead:
					if fuzzContains(a.procs, p.ID()) {
						_ = p.LoadF64(addr(a.block))
					}
				case aLocked:
					if fuzzContains(a.procs, p.ID()) {
						p.LockAcquire(lock)
						p.StoreF64(addr(a.block), p.LoadF64(addr(a.block))+1)
						p.LockRelease(lock)
					}
				case aAttack:
					if p.ID() == a.proc {
						p.StoreF64(addr(a.block), p.LoadF64(addr(a.block))+1)
						p.Compute(50000) // outlast the victims' lock chain
					} else if fuzzContains(a.procs, p.ID()) {
						p.LockAcquire(lock)
						p.StoreF64(addr(a.block), p.LoadF64(addr(a.block))+1)
						p.LockRelease(lock)
					}
				}
			}
			p.Barrier()
		}
	})
	rep, err := obsv.DetectRaces(col.Events)
	if err != nil {
		t.Fatalf("DetectRaces: %v", err)
	}
	return rep
}

func TestRacesFuzzVerdicts(t *testing.T) {
	for _, racy := range []bool{false, true} {
		racy := racy
		for seed := uint64(1); seed <= fuzzSeeds; seed++ {
			seed := seed
			name := "clean"
			if racy {
				name = "racy"
			}
			t.Run(name+"/seed"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				prog := genProgram(seed*1013, racy)
				serial := runFuzzProgram(t, prog, false)
				parallel := runFuzzProgram(t, prog, true)
				if serial.Format() != parallel.Format() {
					t.Errorf("engines disagree:\n--- serial ---\n%s--- parallel ---\n%s",
						serial.Format(), parallel.Format())
				}
				if !racy {
					if len(serial.Races) != 0 {
						t.Errorf("false positive on a clean program:\n%s", serial.Format())
					}
					return
				}
				if len(serial.Races) == 0 {
					t.Fatalf("missed the seeded violation (attacker p%d):\n%s",
						prog.attacker, serial.Format())
				}
				for _, rc := range serial.Races {
					if rc.First.Proc != prog.attacker && rc.Second.Proc != prog.attacker {
						t.Errorf("race does not involve the attacker p%d:\n%s",
							prog.attacker, serial.Format())
					}
				}
			})
		}
	}
}
