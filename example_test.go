package shasta_test

import (
	"fmt"

	"repro"
)

// ExampleCluster demonstrates the core workflow: configure a cluster,
// allocate shared memory, run a parallel program, and read the statistics.
func ExampleCluster() {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	arr := cluster.Alloc(8*8, 64) // one float64 per processor

	cluster.Run(func(p *shasta.Proc) {
		p.StoreF64(arr+shasta.Addr(p.ID()*8), float64(p.ID()+1))
		p.Barrier()
		if p.ID() == 0 {
			sum := 0.0
			for q := 0; q < p.NumProcs(); q++ {
				sum += p.LoadF64(arr + shasta.Addr(q*8))
			}
			fmt.Printf("sum = %.0f\n", sum)
		}
	})
	// Output:
	// sum = 36
}

// ExampleCluster_locks shows mutual exclusion with application locks.
func ExampleCluster_locks() {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 4})
	counter := cluster.Alloc(64, 64)
	lock := cluster.AllocLock()

	cluster.Run(func(p *shasta.Proc) {
		for i := 0; i < 3; i++ {
			p.LockAcquire(lock)
			p.StoreU64(counter, p.LoadU64(counter)+1)
			p.LockRelease(lock)
		}
		p.Barrier()
		if p.ID() == 0 {
			fmt.Printf("counter = %d\n", p.LoadU64(counter))
		}
	})
	// Output:
	// counter = 24
}

// ExampleCluster_variableGranularity shows Shasta's per-allocation
// coherence block size hint: a large block moves a whole structure in one
// protocol transaction.
func ExampleCluster_variableGranularity() {
	cluster := shasta.MustCluster(shasta.Config{Procs: 8, Clustering: 1})
	record := cluster.AllocPlaced(2048, 2048, 0) // one 2 KiB coherence block

	cluster.Run(func(p *shasta.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 256; i++ {
				p.StoreF64(record+shasta.Addr(i*8), float64(i))
			}
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ResetStats()
		}
		p.Barrier()
		if p.ID() == 4 { // another node reads the whole record
			sum := 0.0
			for i := 0; i < 256; i++ {
				sum += p.LoadF64(record + shasta.Addr(i*8))
			}
			_ = sum
		}
		p.Barrier()
	})
	// One 2 KiB block = one read miss for the whole 256-element record.
	fmt.Printf("misses = %d\n", cluster.Stats().TotalMisses())
	// Output:
	// misses = 1
}

// ExampleBatch shows the batched access API: one check for a whole
// sequence of loads, as Shasta's batching optimization does.
func ExampleBatch() {
	cluster := shasta.MustCluster(shasta.Config{Procs: 4, Clustering: 4})
	arr := cluster.Alloc(512, 64)

	cluster.Run(func(p *shasta.Proc) {
		if p.ID() == 0 {
			p.Batch([]shasta.BatchRef{{Base: arr, Bytes: 512, Store: true}},
				func(b *shasta.Batch) {
					for i := 0; i < 64; i++ {
						b.StoreF64(arr+shasta.Addr(i*8), 0.5)
					}
				})
		}
		p.Barrier()
		var sum float64
		p.Batch([]shasta.BatchRef{{Base: arr, Bytes: 512}}, func(b *shasta.Batch) {
			for i := 0; i < 64; i++ {
				sum += b.LoadF64(arr + shasta.Addr(i*8))
			}
		})
		if p.ID() == 1 {
			fmt.Printf("sum = %.0f\n", sum)
		}
		p.Barrier()
	})
	// Output:
	// sum = 32
}
